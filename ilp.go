// Package ilp is the public face of this reproduction of Jouppi & Wall,
// "Available Instruction-Level Parallelism for Superscalar and
// Superpipelined Machines" (ASPLOS 1989).
//
// It wraps the internal machinery — the TL benchmark language and compiler,
// the parameterizable machine descriptions, and the instruction-level
// simulator — behind a small API shaped like the paper's methodology:
// describe a machine, compile a program for it, simulate, compare.
//
//	m := ilp.Superscalar(4)
//	r, err := ilp.RunBenchmark("yacc", m, ilp.Options{})
//	base, _ := ilp.RunBenchmark("yacc", ilp.BaseMachine(), ilp.Options{})
//	fmt.Printf("speedup %.2f\n", r.SpeedupOver(base))
//
// See the examples directory for complete programs and cmd/ilpbench for
// the full reproduction of the paper's tables and figures.
package ilp

import (
	"context"
	"errors"
	"fmt"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/ilperr"
	"ilp/internal/isa"
	"ilp/internal/lang/interp"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/sim"
	"ilp/internal/trace"
)

// Structured errors. Compilation and simulation failures carry the
// benchmark, machine name, machine fingerprint, and pipeline phase, so
// embedding callers can dispatch on the failure's coordinate:
//
//	var ce *ilp.CompileError
//	if errors.As(err, &ce) { log.Printf("%s broke on %s", ce.Benchmark, ce.Machine) }
//
// The same types flow out of the experiment harness (internal/experiments)
// and the CLIs.
type (
	// CompileError reports a failed (or panicked) compilation.
	CompileError = ilperr.CompileError
	// SimError reports a failed (or panicked) simulation.
	SimError = ilperr.SimError
	// MachineError reports an invalid machine description, rejected by
	// validation before it can produce nonsense cycle counts.
	MachineError = ilperr.MachineError
	// StoreError reports a result-store failure: an I/O error while
	// opening, appending, or compacting, or corruption detected on load
	// (match the cause with ErrCorrupt).
	StoreError = ilperr.StoreError
)

// ErrPanic marks errors recovered from a panicking measurement worker;
// match with errors.Is.
var ErrPanic = ilperr.ErrPanic

// ErrCorrupt marks a result-store record whose checksum or framing does
// not verify; match with errors.Is.
var ErrCorrupt = ilperr.ErrCorrupt

// IsTransient reports whether an error from this package's pipeline is a
// transient failure — one a retry policy may reasonably retry with
// backoff. Panics, cancellations, semantic compile/simulate failures, and
// detected corruption are permanent; store I/O errors and injected faults
// are transient. See internal/ilperr for the full taxonomy.
func IsTransient(err error) bool { return ilperr.IsTransient(err) }

// Machine is a machine description in the paper's §3 sense: issue width,
// superpipelining degree, per-class operation latencies, functional units,
// caches, and the register-file split. Obtain one from a preset and adjust
// its fields before use.
type Machine = machine.Config

// Preset machines from the paper's taxonomy (§2).
func BaseMachine() *Machine      { return machine.Base() }
func Superscalar(n int) *Machine { return machine.IdealSuperscalar(n) }
func Superpipelined(m int) *Machine {
	return machine.Superpipelined(m)
}
func SuperpipelinedSuperscalar(n, m int) *Machine {
	return machine.SuperpipelinedSuperscalar(n, m)
}
func MultiTitan() *Machine     { return machine.MultiTitan() }
func CRAY1() *Machine          { return machine.CRAY1() }
func Underpipelined() *Machine { return machine.Underpipelined() }

// Class identifies one of the fourteen instruction classes (§3); use these
// to adjust a Machine's Latency table or functional units.
type Class = isa.Class

// The fourteen instruction classes.
const (
	ClassLogical   = isa.ClassLogical
	ClassShift     = isa.ClassShift
	ClassAddSub    = isa.ClassAddSub
	ClassIntMul    = isa.ClassIntMul
	ClassIntDiv    = isa.ClassIntDiv
	ClassLoad      = isa.ClassLoad
	ClassStore     = isa.ClassStore
	ClassBranch    = isa.ClassBranch
	ClassJump      = isa.ClassJump
	ClassFPAddSub  = isa.ClassFPAddSub
	ClassFPMul     = isa.ClassFPMul
	ClassFPDiv     = isa.ClassFPDiv
	ClassFPSpecial = isa.ClassFPSpecial
	ClassMove      = isa.ClassMove
)

// OptLevel is the cumulative optimization level of Figure 4-8.
type OptLevel = compiler.Level

// Optimization levels.
const (
	O0 = compiler.O0 // no optimization
	O1 = compiler.O1 // + pipeline scheduling
	O2 = compiler.O2 // + intra-block optimizations
	O3 = compiler.O3 // + global optimizations
	O4 = compiler.O4 // + global register allocation
)

// Options selects compilation behavior.
type Options struct {
	// Level is the optimization level; the zero value means O4, the
	// paper's standard configuration.
	Level OptLevel
	// LevelSet must be true for Level O0 to be honored (Go zero-value
	// ambiguity); use WithLevel to construct.
	LevelSet bool
	// Unroll is the loop unroll factor (0 or 1 = none; benchmarks with a
	// paper-default, i.e. Linpack's 4x, apply it when Unroll is 0).
	Unroll int
	// Careful enables careful unrolling: reduction reassociation and
	// scheduler memory disambiguation (§4.4).
	Careful bool
	// NoSchedule disables the pipeline scheduler regardless of level.
	NoSchedule bool
	// Verify runs the internal static verifier after every compiler pass
	// (machine-code well-formedness, dataflow lints, schedule legality);
	// a violation fails Compile with an error naming the offending pass.
	Verify bool
}

// WithLevel returns Options at an explicit optimization level.
func WithLevel(l OptLevel) Options { return Options{Level: l, LevelSet: true} }

func (o Options) level() compiler.Level {
	if !o.LevelSet && o.Level == compiler.O0 {
		return compiler.O4
	}
	return o.Level
}

// Result is a simulation result: cycle counts, instruction mix, stall
// breakdown, and program output.
type Result = sim.Result

// Value is one program output value.
type Value = isa.Value

// Program is a compiled TL program together with the metadata the
// scheduler and simulator need.
type Program struct {
	compiled *compiler.Compiled
	machine  *Machine
}

// Compile compiles TL source text for the machine. Failures are reported
// as a *CompileError naming the machine and its schedule fingerprint.
func Compile(source string, m *Machine, opts Options) (*Program, error) {
	if m == nil {
		m = machine.Base()
	}
	c, err := compiler.Compile(source, compiler.Options{
		Machine:    m,
		Level:      opts.level(),
		Unroll:     opts.Unroll,
		Careful:    opts.Careful,
		NoSchedule: opts.NoSchedule,
		Verify:     opts.Verify,
	})
	if err != nil {
		return nil, &CompileError{
			Machine: m.Name, Fingerprint: m.ScheduleFingerprint(),
			Phase: ilperr.PhaseCompile, Err: err,
		}
	}
	return &Program{compiled: c, machine: m}, nil
}

// Disassemble returns the final scheduled machine code.
func (p *Program) Disassemble() string { return p.compiled.Prog.Disassemble() }

// StaticInstructions is the program's static instruction count.
func (p *Program) StaticInstructions() int { return len(p.compiled.Prog.Instrs) }

// Run simulates the compiled program on its machine. Failures are reported
// as a *SimError naming the machine and its canonical fingerprint.
func (p *Program) Run() (*Result, error) {
	return p.RunCtx(context.Background())
}

// RunCtx is Run with cancellation: the simulator's timing loop polls ctx
// and abandons the run with the context's cause error once ctx is done,
// so a long simulation embedded in a service can be bounded or aborted.
func (p *Program) RunCtx(ctx context.Context) (*Result, error) {
	res, err := sim.RunCtx(ctx, p.compiled.Prog, sim.Options{Machine: p.machine})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // cancellation, not a simulator fault
		}
		return nil, &SimError{
			Machine: p.machine.Name, Fingerprint: p.machine.Fingerprint(),
			Phase: ilperr.PhaseSimulate, Err: err,
		}
	}
	return res, nil
}

// Interpret runs the program's source semantics through the reference
// interpreter (no compilation, no timing) and returns its output.
func Interpret(source string) ([]Value, error) {
	prog, err := parser.Parse(source)
	if err != nil {
		return nil, err
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return interp.Run(info)
}

// Benchmarks lists the paper's eight-benchmark suite.
func Benchmarks() []string { return benchmarks.Names() }

// BenchmarkSource returns a suite member's TL source.
func BenchmarkSource(name string) (string, error) {
	b, err := benchmarks.ByName(name)
	if err != nil {
		return "", err
	}
	return b.Source, nil
}

// RunBenchmark compiles and simulates one suite benchmark on the machine.
func RunBenchmark(name string, m *Machine, opts Options) (*Result, error) {
	return RunBenchmarkCtx(context.Background(), name, m, opts)
}

// RunBenchmarkCtx is RunBenchmark with cancellation. Structured errors
// (CompileError/SimError) carry the benchmark name.
func RunBenchmarkCtx(ctx context.Context, name string, m *Machine, opts Options) (*Result, error) {
	b, err := benchmarks.ByName(name)
	if err != nil {
		return nil, err
	}
	if opts.Unroll == 0 {
		opts.Unroll = b.DefaultUnroll
	}
	p, err := Compile(b.Source, m, opts)
	if err != nil {
		return nil, withBenchmark(err, name)
	}
	res, err := p.RunCtx(ctx)
	if err != nil {
		return nil, withBenchmark(err, name)
	}
	return res, nil
}

// withBenchmark stamps the benchmark name onto a structured error built
// below the point where the name was known.
func withBenchmark(err error, name string) error {
	var ce *CompileError
	if errors.As(err, &ce) && ce.Benchmark == "" {
		ce.Benchmark = name
	}
	var se *SimError
	if errors.As(err, &se) && se.Benchmark == "" {
		se.Benchmark = name
	}
	return err
}

// Parallelism measures the available instruction-level parallelism of a
// benchmark in the paper's sense: its base-machine cycles divided by its
// cycles on an ideal superscalar machine of the given degree (§4's
// asymptote at degree 8).
func Parallelism(name string, degree int, opts Options) (float64, error) {
	if degree < 1 {
		return 0, fmt.Errorf("ilp: degree %d < 1", degree)
	}
	base, err := RunBenchmark(name, BaseMachine(), opts)
	if err != nil {
		return 0, err
	}
	wide, err := RunBenchmark(name, Superscalar(degree), opts)
	if err != nil {
		return 0, err
	}
	return base.BaseCycles / wide.BaseCycles, nil
}

// HarmonicMean aggregates speedups the way the paper's figures do.
func HarmonicMean(xs []float64) float64 { return metrics.HarmonicMean(xs) }

// TraceLimits holds the two classical trace-study parallelism limits for a
// program (the studies the paper cites in §4.2): Blocked respects
// conditional-branch boundaries (Riseman-Foster inhibition); Oracle assumes
// perfect branch prediction. Both assume infinite width, unit latencies,
// perfect register renaming, and exact memory disambiguation.
type TraceLimits struct {
	Instructions int64
	Blocked      float64
	Oracle       float64
	Truncated    bool
}

// MeasureTraceLimits compiles the benchmark (paper-standard options) and
// computes its trace-driven parallelism limits over at most maxTrace
// dynamic instructions (0 = the package default of 2M).
func MeasureTraceLimits(benchmark string, maxTrace int64) (*TraceLimits, error) {
	b, err := benchmarks.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	c, err := compiler.Compile(b.Source, compiler.Options{
		Machine: machine.Base(), Level: compiler.O4, Unroll: b.DefaultUnroll,
	})
	if err != nil {
		return nil, err
	}
	lim, err := trace.Analyze(c.Prog, trace.Options{MaxTrace: maxTrace})
	if err != nil {
		return nil, err
	}
	return &TraceLimits{
		Instructions: lim.Instructions,
		Blocked:      lim.BlockedParallelism(),
		Oracle:       lim.OracleParallelism(),
		Truncated:    lim.Truncated,
	}, nil
}

// AverageDegreeOfSuperpipelining computes the §2.7 metric for a machine
// given a measured dynamic class mix (Result.ClassCounts).
func AverageDegreeOfSuperpipelining(m *Machine, classCounts [isa.NumClasses]int64) float64 {
	return m.AverageDegreeOfSuperpipelining(classCounts)
}
