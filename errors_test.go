package ilp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ilp"
)

// A program with an infinite loop, for cancellation tests.
const endless = `
var x: int;
func main() {
	x = 1;
	while x > 0 { x = x + 1; x = x - 1; }
	print(x);
}
`

// TestCompileErrorStructured: a source error surfaces as *CompileError
// carrying the machine coordinates, matchable with errors.As.
func TestCompileErrorStructured(t *testing.T) {
	m := ilp.Superscalar(4)
	_, err := ilp.Compile("func main() { this is not TL; }", m, ilp.Options{})
	if err == nil {
		t.Fatal("invalid source compiled")
	}
	var ce *ilp.CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ilp.CompileError, got %T: %v", err, err)
	}
	if ce.Machine != m.Name || ce.Fingerprint == "" || ce.Phase != "compile" {
		t.Fatalf("CompileError missing coordinates: %+v", ce)
	}
}

// TestRunBenchmarkErrorCarriesBenchmark: RunBenchmark stamps the benchmark
// name onto structured errors built below where the name was known.
func TestRunBenchmarkErrorCarriesBenchmark(t *testing.T) {
	m := ilp.BaseMachine()
	m.IssueWidth = -1 // invalid machine: compilation must fail
	_, err := ilp.RunBenchmark("whet", m, ilp.Options{})
	if err == nil {
		t.Skip("invalid machine was accepted; nothing to assert")
	}
	var ce *ilp.CompileError
	if errors.As(err, &ce) && ce.Benchmark != "whet" {
		t.Fatalf("CompileError not stamped with benchmark: %+v", ce)
	}
}

// TestRunCtxCancellable: Program.RunCtx abandons an endless simulation when
// the context is cancelled, returning the context's error unwrapped.
func TestRunCtxCancellable(t *testing.T) {
	p, err := ilp.Compile(endless, ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := p.RunCtx(ctx)
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got res=%v err=%v", res, err)
	}
	var se *ilp.SimError
	if errors.As(err, &se) {
		t.Fatalf("cancellation must not be wrapped as a SimError: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestRunBenchmarkCtxPreCancelled: a done context stops RunBenchmarkCtx
// before any simulation work.
func TestRunBenchmarkCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ilp.RunBenchmarkCtx(ctx, "whet", ilp.BaseMachine(), ilp.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
