# Tier-1 gate: everything `make check` runs must stay green on every
# commit. CI-equivalent for this repo; see README "Verification".
GO ?= go

.PHONY: check fmt vet build test race race-concurrency fuzz-smoke chaos lint cover bench bench-smoke bench-gate bench-quick ilpd-smoke ilpd-loadtest fabric-smoke

check: fmt vet lint build race race-concurrency fuzz-smoke chaos bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy packages — the runner's singleflight/cancellation
# fan-out and the simulator's polled timing loops — always re-run under the
# race detector, bypassing the test cache. The directed sharded-batch and
# cond-trace side-exit tests additionally run at -cpu 4 so the shard
# goroutines are genuinely concurrent even on a single-core host.
race-concurrency:
	$(GO) test -race -count=1 ./internal/experiments/ ./internal/sim/
	$(GO) test -race -count=1 -cpu 4 -run 'TestBatchParallel|TestCondTrace' ./internal/sim/

# A quick pass of the randomized differential harness (with the static
# verifier enabled in-pipeline) as a smoke test, plus a short burst of the
# result-store loader fuzzer; the full 60-seed run is part of `make test`.
fuzz-smoke:
	$(GO) test -short -run 'TestRandomPrograms' ./internal/compiler/
	$(GO) test -run '^$$' -fuzz 'FuzzDecode' -fuzztime 10s ./internal/store/

# Chaos suite: the deterministic fault-injection harness under the race
# detector, at full schedule counts — 300 randomized runner schedules
# (compile faults, sim faults, worker panics, store-write faults, slow
# jobs) plus 720 randomized store-damage schedules, >= 1000 total. Asserts
# no completed result is ever lost, no retried cell double-appends, and
# every fault schedule replays bit-identically from its seed.
chaos:
	ILP_CHAOS_SCHEDULES=300 $(GO) test -race -count=1 \
		-run 'TestChaos|TestConcurrentRetries|TestRetriesExhausted|TestDegradedSweep|TestResumeReproduces' \
		./internal/experiments/
	ILP_STORE_CHAOS_SCHEDULES=720 $(GO) test -race -count=1 \
		-run 'TestChaos|TestConcurrentAppends' ./internal/store/
	ILP_FABRIC_SCHEDULES=100 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestFabricChaosSchedules' ./internal/fabric/

# Run the static verifier over the whole suite at every level and print
# every diagnostic, warnings included.
lint:
	$(GO) run ./cmd/ilplint -all-levels all

# Coverage over every package, with the per-package and total percentages
# printed; the profile is left in /tmp for `go tool cover -html` inspection.
cover:
	$(GO) test -coverprofile=/tmp/ilp_cover.out ./...
	$(GO) tool cover -func=/tmp/ilp_cover.out | tail -1
	@echo "profile at /tmp/ilp_cover.out (go tool cover -html=/tmp/ilp_cover.out)"

# Full benchmark pass: simulator throughput + experiment wall times, written
# to BENCH_sim.json (the baseline section of an existing file is preserved,
# so the perf trajectory stays anchored at the first recorded engine).
# 3-second samples: on a shared 1-core host, sub-second samples are bimodal
# (an unstolen window measures peak, a stolen one measures the thief), so
# best-of-N never converges; 3 s averages the steal and the best sample
# becomes reproducible across invocations.
# Simulator benchmarks are pinned at -cpu 1: the serial engine's number must
# not drift with the host's core count (GOMAXPROCS only changes the name
# suffix, which benchjson strips, but the pin keeps scheduler noise out).
# The sweep benchmarks run at the host's default shape; benchjson records
# GOMAXPROCS in the snapshot so runs are compared like-for-like.
bench:
	$(GO) test -run '^$$' -bench 'Simulator' -benchmem -benchtime 3s -count 3 -cpu 1 ./internal/sim/ | tee /tmp/ilp_bench_sim.txt
	$(GO) test -run '^$$' -bench 'RunAllQuick|RunAllBatched|RunAllParallel|ExperimentCacheSharing' -benchmem -count 1 . | tee /tmp/ilp_bench_exp.txt
	$(GO) run ./cmd/benchjson -out BENCH_sim.json /tmp/ilp_bench_sim.txt /tmp/ilp_bench_exp.txt
	@echo "wrote BENCH_sim.json"

# Regression gate: re-measure the simulator benchmarks and compare their
# Minstr/s against the committed BENCH_sim.json current snapshot. Fails
# (exit 1) if any gated benchmark is more than 10% slower than the recorded
# run or disappeared. Does not rewrite the JSON — run `make bench` for that.
# The suite runs twice in separate invocations and benchjson keeps the best
# sample of each benchmark across both: on a shared host the load regime
# shifts on minute timescales, so one invocation's samples are correlated —
# two spaced invocations (of 3 s samples, see `bench`) de-flake the gate.
bench-gate:
	$(GO) test -run '^$$' -bench 'Simulator' -benchmem -benchtime 3s -count 3 -cpu 1 ./internal/sim/ | tee /tmp/ilp_bench_gate.txt
	$(GO) test -run '^$$' -bench 'Simulator' -benchmem -benchtime 3s -count 3 -cpu 1 ./internal/sim/ | tee /tmp/ilp_bench_gate2.txt
	$(GO) test -run '^$$' -bench 'RunAllBatched|RunAllParallel' -benchmem -count 2 . | tee /tmp/ilp_bench_gate3.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_sim.json /tmp/ilp_bench_gate.txt /tmp/ilp_bench_gate2.txt /tmp/ilp_bench_gate3.txt

# One-iteration smoke of the same benchmarks (no thresholds, no JSON): the
# tier-1 gate just proves they still run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Simulator' -benchtime 1x -cpu 1 ./internal/sim/
	$(GO) test -run '^$$' -bench 'RunAllQuick|RunAllBatched|RunAllParallel|ExperimentCacheSharing' -benchtime 1x .

# One-iteration pass over *every* benchmark in the repo (the per-experiment
# testing.B entry points included, which neither bench nor bench-smoke
# cover). CI runs this as a smoke step: a benchmark that only breaks when
# executed — a stale experiment id, broken metric wiring, a batched sweep
# that stopped batching — fails the build even though the throughput gate
# job is advisory.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/sim/
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Daemon smoke: the full default sweep submitted to an in-process ilpd
# over HTTP must render byte-identical to docs/ilpbench-output.txt — the
# same golden file the CLI is held to, so the daemon can never drift from
# ilpbench. (~10 s; skipped automatically under -short and -race.)
ilpd-smoke:
	$(GO) test -run 'TestIlpdSmoke' -count=1 -v ./cmd/ilpd/

# Fabric smoke: the full default sweep through cmd/ilpfab's sharded
# worker processes — with SIGKILLs injected at commit points — must
# render byte-identical to docs/ilpbench-output.txt, the same golden file
# ilpbench and ilpd are held to. (~30 s; skipped under -short and -race.)
fabric-smoke:
	$(GO) test -run 'TestFabricGolden' -count=1 -v ./cmd/ilpfab/

# Daemon load harness: concurrent clients against an in-process daemon,
# reporting end-to-end sweeps/sec and how much of the offered load the
# shared singleflight cache absorbed.
ilpd-loadtest:
	$(GO) run ./cmd/ilpd -loadtest -loadtest-clients 8 -loadtest-sweeps 4
