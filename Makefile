# Tier-1 gate: everything `make check` runs must stay green on every
# commit. CI-equivalent for this repo; see README "Verification".
GO ?= go

.PHONY: check fmt vet build test race fuzz-smoke lint bench

check: fmt vet build race fuzz-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A quick pass of the randomized differential harness (with the static
# verifier enabled in-pipeline) as a smoke test; the full 60-seed run is
# part of `make test`.
fuzz-smoke:
	$(GO) test -short -run 'TestRandomPrograms' ./internal/compiler/

# Run the static verifier over the whole suite at every level and print
# every diagnostic, warnings included.
lint:
	$(GO) run ./cmd/ilplint -all-levels all

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
