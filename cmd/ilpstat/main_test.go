package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestIlpstatTable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-machine", "superscalar:4", "linpack"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"block", "dep", "width", "unit", "span", "conflict-free"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestIlpstatSimOracle(t *testing.T) {
	for _, m := range []string{"base", "cray1", "conflicts:4", "sp:4"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-machine", m, "-sim", "whet"}, &out, &errb); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", m, code, errb.String())
		}
		if !strings.Contains(out.String(), "timing oracle: ok") {
			t.Errorf("%s: oracle verdict missing:\n%s", m, out.String())
		}
		if !strings.Contains(out.String(), "static bounds: [") {
			t.Errorf("%s: bounds line missing", m)
		}
	}
}

func TestIlpstatBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-machine", "warp-drive", "linpack"}, &out, &errb); code != 1 {
		t.Errorf("unknown machine: exit %d, want 1", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no target: exit %d, want 2", code)
	}
}
