// Command ilpstat prints the static timing analysis of a compiled program:
// one row per basic block with its dependence-height, issue-width and
// functional-unit lower bounds, conflict-freedom, and the exact clean-entry
// span when one is proven. With -sim it also simulates the program and
// reports the measured minor cycles against the static [lower, upper]
// bounds, running the verify timing oracle on the pair.
//
// Usage:
//
//	ilpstat [-machine name] [-level 0..4] [-unroll N] [-sim] <benchmark | file.tl>
//
// Machines: base, multititan, cray1, superscalar:N, superpipelined:M,
// supersuper:N:M, conflicts:N, underpipelined.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/sim"
	"ilp/internal/statictime"
	"ilp/internal/verify"
)

func machineByName(name string) (*machine.Config, error) {
	parts := strings.Split(strings.ToLower(name), ":")
	arg := func(i, def int) int {
		if len(parts) > i {
			if v, err := strconv.Atoi(parts[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "base", "":
		return machine.Base(), nil
	case "multititan", "titan":
		return machine.MultiTitan(), nil
	case "cray1", "cray-1", "cray":
		return machine.CRAY1(), nil
	case "superscalar", "ss":
		return machine.IdealSuperscalar(arg(1, 4)), nil
	case "superpipelined", "sp":
		return machine.Superpipelined(arg(1, 4)), nil
	case "supersuper", "ssp":
		return machine.SuperpipelinedSuperscalar(arg(1, 2), arg(2, 2)), nil
	case "conflicts":
		return machine.SuperscalarWithConflicts(arg(1, 4)), nil
	case "underpipelined":
		return machine.Underpipelined(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilpstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machineName := fs.String("machine", "base", "machine description (base, multititan, cray1, superscalar:N, superpipelined:M, supersuper:N:M, conflicts:N, underpipelined)")
	level := fs.Int("level", 4, "optimization level 0..4")
	unroll := fs.Int("unroll", 0, "loop unroll factor (0 = benchmark default)")
	simulate := fs.Bool("sim", false, "also simulate and check the static bounds against measured cycles")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ilpstat [flags] <benchmark|file.tl>; benchmarks:", strings.Join(benchmarks.Names(), " "))
		return 2
	}
	target := fs.Arg(0)

	var src string
	unrollFactor := *unroll
	if b, err := benchmarks.ByName(target); err == nil {
		src = b.Source
		if unrollFactor == 0 {
			unrollFactor = b.DefaultUnroll
		}
	} else {
		data, ferr := os.ReadFile(target)
		if ferr != nil {
			fmt.Fprintf(stderr, "ilpstat: %q is neither a benchmark (%s) nor a readable file: %v\n",
				target, strings.Join(benchmarks.Names(), " "), ferr)
			return 1
		}
		src = string(data)
	}

	m, err := machineByName(*machineName)
	if err != nil {
		fmt.Fprintln(stderr, "ilpstat:", err)
		return 1
	}
	c, err := compiler.Compile(src, compiler.Options{
		Machine: m, Level: compiler.Level(*level), Unroll: unrollFactor,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ilpstat:", err)
		return 1
	}
	a, err := statictime.Analyze(c.Prog, m)
	if err != nil {
		fmt.Fprintln(stderr, "ilpstat:", err)
		return 1
	}
	fmt.Fprint(stdout, a.Format())

	if !*simulate {
		return 0
	}
	res, err := sim.Run(c.Prog, sim.Options{Machine: m, CountInstrs: true})
	if err != nil {
		fmt.Fprintln(stderr, "ilpstat:", err)
		return 1
	}
	lo := a.LowerBound(res.InstrCounts, res.TakenExits)
	hi := a.UpperBound(res.InstrCounts)
	fmt.Fprintf(stdout, "\nsimulated:    %d minor cycles\n", res.MinorCycles)
	fmt.Fprintf(stdout, "static bounds: [%d, %d]\n", lo, hi)
	fmt.Fprintf(stdout, "slack:         %.3f (simulated / lower bound)\n",
		float64(res.MinorCycles)/float64(lo))
	if ds := verify.CheckTiming(a, res.MinorCycles, res.InstrCounts, res.TakenExits, "ilpstat"); len(ds) > 0 {
		for _, d := range ds {
			fmt.Fprintln(stderr, "ilpstat:", d)
		}
		return 1
	}
	fmt.Fprintln(stdout, "timing oracle: ok")
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
