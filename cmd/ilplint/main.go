// Command ilplint runs the internal/verify static checks over compiled TL
// programs and prints every diagnostic — warnings included — with pass
// provenance and location. It is the standalone face of the -verify compile
// mode: the compiler aborts on the first error, ilplint reports everything.
//
// Usage:
//
//	ilplint [-level 0..4] [-all-levels] [-unroll N] [-careful]
//	        [-machine base|multititan|cray1] <file.tl|benchmark|all>
//
// The target may be a TL source file, the name of one of the paper's eight
// benchmarks, or "all" for the whole suite. Exit status is 1 when any
// error-severity diagnostic is found, 2 on usage errors, and 0 otherwise.
//
// Example diagnostic:
//
//	yacc: V302 error: @41 `addi r11, r10, 1`: scheduled before its producer `li r10, 7` [pass sched]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/verify"
)

func main() {
	level := flag.Int("level", 4, "optimization level 0..4")
	allLevels := flag.Bool("all-levels", false, "check every optimization level 0..4")
	unroll := flag.Int("unroll", 0, "loop unroll factor")
	careful := flag.Bool("careful", false, "careful unrolling")
	machineName := flag.String("machine", "base", "machine description: base, multititan, cray1")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ilplint [flags] <file.tl|benchmark|all>")
		os.Exit(2)
	}

	var cfg *machine.Config
	switch *machineName {
	case "base":
		cfg = machine.Base()
	case "multititan":
		cfg = machine.MultiTitan()
	case "cray1":
		cfg = machine.CRAY1()
	default:
		fmt.Fprintf(os.Stderr, "ilplint: unknown machine %q\n", *machineName)
		os.Exit(2)
	}

	type unit struct {
		name string
		src  string
	}
	var units []unit
	target := flag.Arg(0)
	switch {
	case target == "all":
		for _, b := range benchmarks.All() {
			units = append(units, unit{b.Name, b.Source})
		}
	default:
		if b, err := benchmarks.ByName(target); err == nil {
			units = append(units, unit{b.Name, b.Source})
		} else {
			data, ferr := os.ReadFile(target)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "ilplint:", ferr)
				os.Exit(2)
			}
			units = append(units, unit{target, string(data)})
		}
	}

	levels := []compiler.Level{compiler.Level(*level)}
	if *allLevels {
		levels = []compiler.Level{compiler.O0, compiler.O1, compiler.O2, compiler.O3, compiler.O4}
	}

	failed := false
	for _, u := range units {
		for _, lvl := range levels {
			where := u.name
			if *allLevels {
				where = fmt.Sprintf("%s[O%d]", u.name, int(lvl))
			}
			if lint(where, u.src, cfg, lvl, *unroll, *careful) {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lint compiles one unit with in-pipeline verification on and prints every
// diagnostic. Returns true if any error-severity diagnostic was found.
func lint(where, src string, cfg *machine.Config, lvl compiler.Level, unroll int, careful bool) bool {
	c, err := compiler.Compile(src, compiler.Options{
		Machine: cfg, Level: lvl, Unroll: unroll, Careful: careful, Verify: true,
	})
	if err != nil {
		// A verification failure carries the full diagnostic list; print it
		// with provenance. Anything else (parse, type errors) prints as-is
		// with its own line:col locations.
		var verr *verify.Error
		if errors.As(err, &verr) {
			report(where, verr.Diags)
			return true
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", where, err)
		return true
	}
	// Clean compile: re-run the checker standalone so warnings (which do not
	// abort compilation) are still reported.
	diags := verify.Check(c.Prog, verify.Options{Machine: cfg, Mem: c.Mem})
	report(where, diags)
	return len(verify.Errors(diags)) > 0
}

func report(where string, diags []verify.Diagnostic) {
	for _, d := range diags {
		fmt.Printf("%s: %s\n", where, d)
	}
}
