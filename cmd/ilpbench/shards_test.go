package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ilp/internal/fabric"
)

// TestMain mirrors main's fabric-worker dispatch: the -shards coordinator
// spawns os.Executable(), which under test is this binary, so
// `<testbinary> fabric-worker` must land in WorkerMain.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "fabric-worker" {
		os.Exit(fabric.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestShardedSweepMatchesSingleProcess: `ilpbench -shards 2` renders the
// same bytes as the plain run of the same sweep, and leaves a merged
// store behind.
func TestShardedSweepMatchesSingleProcess(t *testing.T) {
	wantCode, want, _ := runCLI(t, append(quickArgs("-benchmarks", "whet,linpack"), "fig4-1")...)
	if wantCode != 0 {
		t.Fatalf("reference run exited %d", wantCode)
	}
	storePath := filepath.Join(t.TempDir(), "r.jsonl")
	code, got, errOut := runCLI(t, append(quickArgs(
		"-benchmarks", "whet,linpack", "-shards", "2", "-store", storePath, "-stats"), "fig4-1")...)
	if code != 0 {
		t.Fatalf("sharded run exited %d\nstderr: %s", code, errOut)
	}
	// The -stats cells line rides after the tables; the tables themselves
	// must be byte-identical.
	if !strings.HasPrefix(got, want) {
		t.Fatalf("sharded output differs from single-process run:\nsharded %d bytes, reference %d bytes",
			len(got), len(want))
	}
	if !strings.Contains(got, "cells: ") {
		t.Fatalf("-stats did not print the cells line:\n%s", got)
	}
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("merged store missing: %v", err)
	}
	if _, err := os.Stat(storePath + ".shard0"); err != nil {
		t.Fatalf("shard store missing: %v", err)
	}
}

// TestShardedFlagValidation: the -shards flag composes with the store
// flags the same way the single-process path validates them.
func TestShardedFlagValidation(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	// Seed a non-empty store the sharded run must refuse to clobber.
	if code, _, errOut := runCLI(t, append(quickArgs("-store", full), "tab2-1")...); code != 0 {
		t.Fatalf("seeding store failed: %s", errOut)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"shards without store", append(quickArgs("-shards", "2"), "tab2-1"), "-shards requires -store"},
		{"shards with resume", append(quickArgs("-shards", "2", "-store", filepath.Join(dir, "x.jsonl"), "-resume"), "tab2-1"), "drop -resume"},
		{"non-empty store", append(quickArgs("-shards", "2", "-store", full), "tab2-1"), "already holds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exited %d, want 1", code)
			}
			if !strings.Contains(errOut, tc.want) {
				t.Fatalf("stderr does not mention %q:\n%s", tc.want, errOut)
			}
		})
	}
}
