// Command ilpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ilpbench [-degree N] [-benchmarks a,b,c] [-workers N] [experiment ...]
//
// With no experiment arguments it runs everything in paper order. Use
// -list to see the available experiment ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ilp/internal/experiments"
)

func main() {
	degree := flag.Int("degree", 8, "maximum superscalar/superpipelining degree to sweep")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
	workers := flag.Int("workers", 0, "concurrent simulations (default: GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	stats := flag.Bool("stats", false, "print compile/sim cache statistics after the run")
	flag.Parse()

	if *list {
		for _, e := range experiments.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{MaxDegree: *degree, Workers: *workers}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	runner := experiments.NewRunner(cfg)

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		for _, e := range experiments.Experiments() {
			ids = append(ids[:0:0], append(ids, e.ID)...)
		}
		ids = nil
		for _, e := range experiments.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		start := time.Now()
		res, err := runner.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ilpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s: %s ====  (%.1fs)\n\n%s\n", res.ID, res.Title, time.Since(start).Seconds(), res.Text)
	}

	if *stats {
		st := runner.Stats()
		fmt.Printf("cache stats: %d compiles (%d hits), %d simulations (%d hits)\n",
			st.Compiles, st.CompileHits, st.Sims, st.SimHits)
	}
}
