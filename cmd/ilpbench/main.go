// Command ilpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ilpbench [-degree N] [-benchmarks a,b,c] [-workers N] [-timeout D] [experiment ...]
//
// With no experiment arguments it runs everything in paper order. Use
// -list to see the available experiment ids.
//
// The run is cancellable: Ctrl-C (SIGINT) or an elapsed -timeout cancels
// in-flight and queued simulations gracefully — experiments already printed
// stay valid partial output, and -stats still reports the cache counters
// for the work that did happen. A second Ctrl-C kills the process
// immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"ilp/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	degree := flag.Int("degree", 8, "maximum superscalar/superpipelining degree to sweep")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
	workers := flag.Int("workers", 0, "concurrent simulations (default: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this long, e.g. 30s (0 = no limit)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	stats := flag.Bool("stats", false, "print compile/sim cache statistics after the run")
	flag.Parse()

	if *list {
		for _, e := range experiments.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once cancellation starts (first Ctrl-C or timeout), restore default
	// signal handling so a second Ctrl-C terminates immediately.
	context.AfterFunc(ctx, stop)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{MaxDegree: *degree, Workers: *workers}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	runner := experiments.NewRunner(cfg)

	exit := 0
	for _, id := range expandIDs(flag.Args()) {
		start := time.Now()
		res, err := runner.RunCtx(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ilpbench: %s: %v\n", id, err)
			exit = 1
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "ilpbench: run cancelled; results above are complete, the rest were skipped")
			}
			break
		}
		fmt.Printf("==== %s: %s ====  (%.1fs)\n\n%s\n", res.ID, res.Title, time.Since(start).Seconds(), res.Text)
	}

	if *stats {
		st := runner.Stats()
		fmt.Printf("cache stats: %d compiles (%d hits), %d simulations (%d hits)\n",
			st.Compiles, st.CompileHits, st.Sims, st.SimHits)
	}
	return exit
}

// expandIDs resolves the experiment arguments: no arguments (or the single
// word "all") means every registered experiment in the paper's order.
func expandIDs(args []string) []string {
	if len(args) > 0 && !(len(args) == 1 && args[0] == "all") {
		return args
	}
	all := experiments.Experiments()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
