// Command ilpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ilpbench [-degree N] [-benchmarks a,b,c] [-workers N] [-timeout D]
//	         [-store file.jsonl] [-resume] [-retries N] [-max-backoff D]
//	         [-degrade] [-faults spec] [experiment ...]
//
// With no experiment arguments it runs everything in paper order. Use
// -list to see the available experiment ids.
//
// The run is cancellable: Ctrl-C (SIGINT) or an elapsed -timeout cancels
// in-flight and queued simulations gracefully — experiments already printed
// stay valid partial output, and -stats still reports counters for the work
// that did happen. A second Ctrl-C kills the process immediately.
//
// Durability: with -store, every committed measurement is appended to a
// checksummed JSONL result store as part of the measurement itself, so an
// interrupted sweep loses nothing it printed. Re-running with -resume
// serves the committed cells from the store and simulates only the rest;
// the stdout of an interrupted-then-resumed sweep is byte-identical to an
// uninterrupted one (per-experiment timings and the varying cache counters
// go to stderr).
//
// Fault tolerance: transiently failed measurements retry with capped
// exponential backoff (-retries, -max-backoff); with -degrade (the
// default) a permanently failed cell renders as a NaN row instead of
// killing the sweep. The exit status is 0 only for a fully clean sweep: 1
// when an experiment failed or flags were bad, 2 when the sweep completed
// but one or more cells degraded.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"ilp/internal/experiments"
	"ilp/internal/fabric"
	"ilp/internal/faultinject"
	"ilp/internal/store"
)

func main() {
	// `ilpbench fabric-worker` is the re-exec entry the -shards fabric
	// coordinator spawns; it speaks the fabric's stdin/stdout protocol
	// and never parses ilpbench flags.
	if len(os.Args) > 1 && os.Args[1] == "fabric-worker" {
		os.Exit(fabric.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (exit int) {
	fs := flag.NewFlagSet("ilpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	degree := fs.Int("degree", 8, "maximum superscalar/superpipelining degree to sweep")
	benches := fs.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
	workers := fs.Int("workers", 0, "concurrent simulations (default: GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "cancel the whole run after this long, e.g. 30s (0 = no limit)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	stats := fs.Bool("stats", false, "print sweep statistics after the run")
	storePath := fs.String("store", "", "append committed results to this checksummed JSONL store")
	resume := fs.Bool("resume", false, "serve cells already committed to -store instead of refusing a non-empty one")
	retries := fs.Int("retries", 2, "retries per transiently failed compile/measurement")
	maxBackoff := fs.Duration("max-backoff", 250*time.Millisecond, "cap on the exponential retry backoff")
	degrade := fs.Bool("degrade", true, "render permanently failed cells as NaN rows instead of aborting the sweep")
	faults := fs.String("faults", "", `deterministic fault injection spec, e.g. "seed=7,sim=0.3,panic=0.1,store=0.5,slow=0.2,slowdelay=1ms" (testing)`)
	shards := fs.Int("shards", 0, "run the sweep as a crash-tolerant fabric of N supervised worker processes (requires -store; shard stores live beside it)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if err := validateFlags(fs, *retries, *timeout, *maxBackoff); err != nil {
		fmt.Fprintf(stderr, "ilpbench: %v\n", err)
		fs.Usage()
		return 1
	}

	if *list {
		for _, e := range experiments.Experiments() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	inj, err := parseFaults(*faults)
	if err != nil {
		fmt.Fprintf(stderr, "ilpbench: -faults: %v\n", err)
		return 1
	}
	if *resume && *storePath == "" {
		fmt.Fprintln(stderr, "ilpbench: -resume requires -store")
		return 1
	}

	if *shards > 0 {
		// The fabric path: shard stores (not the merged store) carry the
		// crash-resume state, so -resume has no meaning here, and the
		// merged store is rebuilt from the shards — refuse to clobber
		// prior results exactly as the single-process path does.
		switch {
		case *storePath == "":
			fmt.Fprintln(stderr, "ilpbench: -shards requires -store")
			return 1
		case *resume:
			fmt.Fprintln(stderr, "ilpbench: -shards resumes from its shard stores; drop -resume")
			return 1
		}
		if recs, _, err := store.Load(*storePath); err == nil && len(recs) > 0 {
			fmt.Fprintf(stderr, "ilpbench: store %s already holds %d results; remove the file to re-run sharded\n",
				*storePath, len(recs))
			return 1
		}
		return runSharded(fs.Args(), shardedConfig{
			shards: *shards, storePath: *storePath, degree: *degree,
			benches: *benches, workers: *workers, retries: *retries,
			maxBackoff: *maxBackoff, degrade: *degrade, faults: *faults,
			timeout: *timeout, stats: *stats,
		}, stdout, stderr)
	}

	var st *store.Store
	if *storePath != "" {
		st, err = store.Open(*storePath)
		if err != nil {
			fmt.Fprintf(stderr, "ilpbench: %v\n", err)
			return 1
		}
		defer st.Close()
		if !*resume && st.Len() > 0 {
			fmt.Fprintf(stderr, "ilpbench: store %s already holds %d results; pass -resume to continue from it or remove the file\n",
				*storePath, st.Len())
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once cancellation starts (first Ctrl-C or timeout), restore default
	// signal handling so a second Ctrl-C terminates immediately.
	context.AfterFunc(ctx, stop)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{
		MaxDegree: *degree, Workers: *workers,
		Retries: *retries, MaxBackoff: *maxBackoff,
		Degrade: *degrade, Store: st, Faults: inj,
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	runner := experiments.NewRunner(cfg)

	// The stats and degradation accounting run on *every* exit path from
	// here on (deferred, not dangling after the sweep loop): an early
	// return on error or cancellation still reports the counters for the
	// work that did happen, as the doc comment above promises.
	defer func() {
		rep := runner.Report()
		if *stats {
			// The committed/degraded line is resume invariant (identical for a
			// fresh run and an interrupted-then-resumed one); the cache and
			// live/resumed breakdown is not, so it goes to stderr.
			fmt.Fprintf(stdout, "cells: %d committed, %d degraded\n", rep.Cells, rep.Degraded)
			st := runner.Stats()
			fmt.Fprintf(stderr, "cache stats: %d compiles (%d hits), %d simulations (%d hits)\n",
				st.Compiles, st.CompileHits, st.Sims, st.SimHits)
			fmt.Fprintf(stderr, "run stats: %d live simulations, %d resumed from store, %d retry waits\n",
				rep.Live, rep.Resumed, rep.Retried)
			fmt.Fprintf(stderr, "predecode stats: %d artifacts built, %d simulations on shared predecode\n",
				rep.Predecodes, rep.PredecodeShared)
			fmt.Fprintf(stderr, "trace stats: %d superblock traces specialized, %d cells simulated in batches\n",
				rep.Superblocks, rep.BatchedCells)
			fmt.Fprintf(stderr, "parallel stats: %d batch shards, %d profiled cond traces, %d mispath exits\n",
				rep.ParallelShards, rep.CondTraces, rep.MispathExits)
		}
		if exit == 0 && rep.Degraded > 0 {
			fmt.Fprintf(stderr, "ilpbench: %d cell(s) permanently failed and were degraded to NaN rows\n", rep.Degraded)
			exit = 2
		}
	}()

	for _, id := range expandIDs(fs.Args()) {
		start := time.Now()
		res, err := runner.RunCtx(ctx, id)
		if err != nil {
			fmt.Fprintf(stderr, "ilpbench: %s: %v\n", id, err)
			exit = 1
			if ctx.Err() != nil {
				fmt.Fprintln(stderr, "ilpbench: run cancelled; results above are complete, the rest were skipped")
				break
			}
			continue // one broken experiment does not take down the rest
		}
		// The rendition goes to stdout and is resume invariant; the timing
		// varies run to run and goes to stderr.
		fmt.Fprintf(stdout, "==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
		fmt.Fprintf(stderr, "ilpbench: %s done in %.1fs\n", res.ID, time.Since(start).Seconds())
	}

	return exit
}

// validateFlags rejects flag values that earlier versions silently
// papered over (a negative retry count clamped to zero, a negative
// backoff clamped to the default, a non-positive timeout meaning "no
// limit"): passing them is a usage error, not a request. -timeout 0 is
// the documented "no limit" default, so it is only rejected when the user
// explicitly spelled it.
func validateFlags(fs *flag.FlagSet, retries int, timeout, maxBackoff time.Duration) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (have %d)", retries)
	}
	if set["timeout"] && timeout <= 0 {
		return fmt.Errorf("-timeout must be positive (have %v); omit the flag for no limit", timeout)
	}
	if maxBackoff < 0 {
		return fmt.Errorf("-max-backoff must be >= 0 (have %v)", maxBackoff)
	}
	return nil
}

// parseFaults builds the deterministic fault injector from the -faults
// spec. The grammar lives in faultinject.Parse so ilpbench and ilpfab
// accept identical schedules.
func parseFaults(spec string) (*faultinject.Injector, error) {
	return faultinject.Parse(spec)
}

// shardedConfig carries the -shards flag bundle to runSharded.
type shardedConfig struct {
	shards, degree, workers, retries int
	storePath, benches, faults       string
	maxBackoff, timeout              time.Duration
	degrade, stats                   bool
}

// runSharded is the -shards N path: delegate the sweep to the fabric
// coordinator, with this same binary (re-exec'd as `ilpbench
// fabric-worker`) as the worker. Exit codes match the single-process
// contract: 0 clean, 1 failed, 2 completed but degraded.
func runSharded(ids []string, sc shardedConfig, stdout, stderr io.Writer) int {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
	}
	cfg := fabric.Config{
		Shards:      sc.shards,
		StorePath:   sc.storePath,
		MaxDegree:   sc.degree,
		Experiments: ids,
		Workers:     sc.workers,
		Retries:     sc.retries,
		MaxBackoff:  sc.maxBackoff,
		Degrade:     sc.degrade,
		Faults:      sc.faults,
		WorkerArgv:  []string{self, "fabric-worker"},
		Log:         stderr,
	}
	if sc.benches != "" {
		cfg.Benchmarks = strings.Split(sc.benches, ",")
	}
	coord, err := fabric.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "ilpbench: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)
	if sc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.timeout)
		defer cancel()
	}

	sum, err := coord.Run(ctx, stdout)
	if sc.stats {
		fmt.Fprintf(stdout, "cells: %d committed, %d degraded\n", sum.Report.Cells, sum.Report.Degraded)
		fmt.Fprintf(stderr, "fabric stats: %d shards, %d restarts, %d cells merged, %d torn tails repaired\n",
			len(sum.Shards), sum.Restarts, sum.Merge.Records, sum.Merge.TornTails)
	}
	if err != nil {
		fmt.Fprintf(stderr, "ilpbench: %v\n", err)
		return 1
	}
	if sum.Report.Degraded > 0 {
		fmt.Fprintf(stderr, "ilpbench: %d cell(s) permanently failed and were degraded to NaN rows\n", sum.Report.Degraded)
		return 2
	}
	return 0
}

// expandIDs resolves the experiment arguments: no arguments (or the single
// word "all") means every registered experiment in the paper's order.
func expandIDs(args []string) []string {
	if len(args) > 0 && !(len(args) == 1 && args[0] == "all") {
		return args
	}
	all := experiments.Experiments()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
