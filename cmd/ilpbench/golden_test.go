package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// goldenPath is the archived full-harness run backing EXPERIMENTS.md,
// relative to this package directory.
const goldenPath = "../../docs/ilpbench-output.txt"

// TestGoldenFullSweep regenerates the archived harness output in process
// and requires it to be byte-identical to docs/ilpbench-output.txt, so a
// banner, table-format, or measurement drift fails tier-1 instead of
// silently rotting the archive. Timings and cache counters go to stderr
// (see run), so stdout is deterministic across machines.
//
// The full sweep is the most expensive test in the repo (~10 s); it is
// skipped under -short and under the race detector, where the whole
// sweep runs an order of magnitude slower and the plain-build run already
// proves byte identity.
func TestGoldenFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full ilpbench sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full ilpbench sweep skipped under the race detector")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"all"}, &stdout, &stderr); code != 0 {
		t.Fatalf("ilpbench all exited %d\nstderr: %s", code, stderr.String())
	}
	got := stdout.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("ilpbench all stdout drifted from %s\n%s\nregenerate with: go run ./cmd/ilpbench all > docs/ilpbench-output.txt",
		goldenPath, firstDiff(string(want), stdout.String()))
}

// firstDiff locates the first differing line for a readable failure
// message (the full outputs are thousands of lines).
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d lines, got %d lines", len(wl), len(gl))
}
