package main

import (
	"testing"

	"ilp/internal/experiments"
)

// TestExpandIDsDefault: no arguments and the single word "all" both expand
// to every registered experiment in the paper's canonical order.
func TestExpandIDsDefault(t *testing.T) {
	want := experiments.Experiments()
	for _, args := range [][]string{nil, {}, {"all"}} {
		ids := expandIDs(args)
		if len(ids) != len(want) {
			t.Fatalf("expandIDs(%v) returned %d ids, want %d", args, len(ids), len(want))
		}
		for i, e := range want {
			if ids[i] != e.ID {
				t.Fatalf("expandIDs(%v)[%d] = %s, want %s (canonical order)", args, i, ids[i], e.ID)
			}
		}
	}
	if len(want) > 1 && (expandIDs(nil)[0] != "fig2") {
		t.Fatalf("canonical order must start at fig2, got %s", expandIDs(nil)[0])
	}
}

// TestExpandIDsExplicit: explicit experiment arguments pass through
// untouched, including an "all" that is not alone.
func TestExpandIDsExplicit(t *testing.T) {
	got := expandIDs([]string{"tab5-1", "fig2"})
	if len(got) != 2 || got[0] != "tab5-1" || got[1] != "fig2" {
		t.Fatalf("explicit ids rewritten: %v", got)
	}
	got = expandIDs([]string{"all", "fig2"})
	if len(got) != 2 || got[0] != "all" {
		t.Fatalf(`"all" among other args must pass through: %v`, got)
	}
}
