package main

import (
	"fmt"
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/sim"
	"ilp/internal/statictime"
	"ilp/internal/verify"
)

// TestStaticBoundsFullSweep is the static timing oracle over the same
// population the golden sweep measures: every paper benchmark, compiled at
// the harness's settings, simulated on the preset machine matrix — every
// cell's minor cycles must satisfy the static analyzer's lower and upper
// bounds, as checked by the verify timing pass. A violation names the
// guilty blocks.
func TestStaticBoundsFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full static-bounds sweep skipped in -short mode")
	}
	cfgs := []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(2),
		machine.IdealSuperscalar(4),
		machine.IdealSuperscalar(8),
		machine.Superpipelined(4),
		machine.SuperpipelinedSuperscalar(2, 2),
		machine.SuperscalarWithConflicts(4),
		machine.Underpipelined(),
		machine.MultiTitan(),
		machine.CRAY1(),
	}
	for _, b := range benchmarks.All() {
		for _, cfg := range cfgs {
			t.Run(fmt.Sprintf("%s/%s", b.Name, cfg.Name), func(t *testing.T) {
				c, err := compiler.Compile(b.Source, compiler.Options{
					Machine: cfg, Level: compiler.O4, Unroll: b.DefaultUnroll,
				})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				r, err := sim.Run(c.Prog, sim.Options{Machine: cfg, CountInstrs: true})
				if err != nil {
					t.Fatalf("sim: %v", err)
				}
				a, err := statictime.Analyze(c.Prog, cfg)
				if err != nil {
					t.Fatalf("statictime: %v", err)
				}
				ds := verify.CheckTiming(a, r.MinorCycles, r.InstrCounts, r.TakenExits, "sweep")
				for _, d := range ds {
					t.Errorf("%s", d)
				}
				if t.Failed() {
					lo := a.LowerBound(r.InstrCounts, r.TakenExits)
					hi := a.UpperBound(r.InstrCounts)
					t.Logf("simulated %d minor cycles, static bounds [%d, %d]", r.MinorCycles, lo, hi)
				}
			})
		}
	}
}
