package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickArgs is the smallest real sweep: one benchmark, degree 2, one
// experiment id, no parallel workers (single CPU CI).
func quickArgs(extra ...string) []string {
	args := []string{"-degree", "2", "-benchmarks", "whet", "-workers", "2"}
	return append(args, extra...)
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestCleanSweepExitsZero: a fault-free experiment run renders its banner
// on stdout, keeps timings off stdout, and exits 0.
func TestCleanSweepExitsZero(t *testing.T) {
	code, out, errOut := runCLI(t, append(quickArgs("-stats"), "tab2-1")...)
	if code != 0 {
		t.Fatalf("clean run exited %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "==== tab2-1:") {
		t.Fatalf("stdout missing rendition:\n%s", out)
	}
	if strings.Contains(out, "done in") || !strings.Contains(errOut, "done in") {
		t.Fatalf("timing must be on stderr only\nstdout: %q\nstderr: %q", out, errOut)
	}
	if !strings.Contains(out, "cells: ") || strings.Contains(out, "cache stats:") {
		t.Fatalf("-stats stdout must carry only the invariant cells line:\n%s", out)
	}
	if !strings.Contains(errOut, "cache stats:") || !strings.Contains(errOut, "run stats:") {
		t.Fatalf("-stats varying breakdown missing from stderr:\n%s", errOut)
	}
}

// TestDegradedSweepExitsNonzero drives the CLI through the fault injector:
// a panic rate of 1 permanently fails every cell, degradation renders NaN
// rows instead of aborting, and the exit status must still be nonzero (2)
// so scripts cannot mistake a degraded sweep for a clean one.
func TestDegradedSweepExitsNonzero(t *testing.T) {
	code, out, errOut := runCLI(t, append(quickArgs(
		"-faults", "seed=1,panic=1", "-retries", "0", "-stats"), "fig4-1")...)
	if code != 2 {
		t.Fatalf("degraded sweep exited %d, want 2\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "==== fig4-1:") {
		t.Fatalf("degraded sweep did not render the experiment:\n%s", out)
	}
	if !strings.Contains(out, "NaN") {
		t.Fatalf("degraded cells should render NaN rows:\n%s", out)
	}
	if !strings.Contains(errOut, "degraded") {
		t.Fatalf("stderr does not explain the nonzero exit:\n%s", errOut)
	}
}

// TestFailedExperimentExitsOne: with degradation off, injected faults
// surface as an experiment error and exit 1 — and the sweep still goes on
// to later experiment ids rather than dying at the first.
func TestFailedExperimentExitsOne(t *testing.T) {
	code, out, errOut := runCLI(t, append(quickArgs(
		"-faults", "seed=1,sim=1", "-retries", "0", "-degrade=false"),
		"tab2-1", "fig4-1")...)
	if code != 1 {
		t.Fatalf("failed sweep exited %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "ilpbench: tab2-1:") || !strings.Contains(errOut, "ilpbench: fig4-1:") {
		t.Fatalf("a failed experiment stopped the sweep instead of continuing:\n%s", errOut)
	}
	if strings.Contains(out, "====") {
		t.Fatalf("no experiment can render when every sim faults:\n%s", out)
	}
}

// TestResumeRoundTrip is the CLI half of the kill-and-resume acceptance
// check: an interrupted sweep (here: a strict subset of experiments
// committed to the store) resumed with -resume produces stdout — including
// the -stats cells line — byte-identical to an uninterrupted sweep.
func TestResumeRoundTrip(t *testing.T) {
	ids := []string{"fig2", "tab2-1", "fig4-1"}
	fresh := append(quickArgs("-stats"), ids...)
	_, want, _ := runCLI(t, fresh...)
	if !strings.Contains(want, "==== fig4-1:") {
		t.Fatalf("reference run incomplete:\n%s", want)
	}

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	// "Interrupted" leg: only the first two experiments commit to the store.
	code, _, errOut := runCLI(t, append(quickArgs("-store", path, "-stats"), ids[:2]...)...)
	if code != 0 {
		t.Fatalf("partial run exited %d\nstderr: %s", code, errOut)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("partial run committed nothing to the store (%v)", err)
	}

	// Resume leg: the full id list against the same store.
	code, got, errOut := runCLI(t, append(quickArgs("-store", path, "-resume", "-stats"), ids...)...)
	if code != 0 {
		t.Fatalf("resumed run exited %d\nstderr: %s", code, errOut)
	}
	if got != want {
		t.Fatalf("resumed stdout differs from uninterrupted run\nresumed:\n%s\nfresh:\n%s", got, want)
	}
	if !strings.Contains(errOut, "resumed from store") {
		t.Fatalf("resume breakdown missing from stderr:\n%s", errOut)
	}
}

// TestStoreRefusedWithoutResume: an existing non-empty store is refused
// unless -resume is given, so two sweeps cannot silently interleave.
func TestStoreRefusedWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	if code, _, errOut := runCLI(t, append(quickArgs("-store", path), "tab2-1")...); code != 0 {
		t.Fatalf("first run exited %d\nstderr: %s", code, errOut)
	}
	code, _, errOut := runCLI(t, append(quickArgs("-store", path), "tab2-1")...)
	if code != 1 {
		t.Fatalf("non-empty store without -resume exited %d, want 1", code)
	}
	if !strings.Contains(errOut, "-resume") {
		t.Fatalf("refusal does not mention -resume:\n%s", errOut)
	}
}

// TestResumeRequiresStore: -resume without -store is a usage error.
func TestResumeRequiresStore(t *testing.T) {
	code, _, errOut := runCLI(t, append(quickArgs("-resume"), "fig2")...)
	if code != 1 || !strings.Contains(errOut, "-store") {
		t.Fatalf("-resume without -store: exit %d, stderr %q", code, errOut)
	}
}

// TestParseFaults: the spec grammar round-trips and rejects nonsense.
func TestParseFaults(t *testing.T) {
	if inj, err := parseFaults(""); err != nil || inj != nil {
		t.Fatalf("empty spec: %v %v", inj, err)
	}
	inj, err := parseFaults("seed=7,sim=0.5,panic=0.1,store=1,compile=0,slow=0.2,slowdelay=2ms")
	if err != nil || inj == nil {
		t.Fatalf("full spec rejected: %v", err)
	}
	for _, bad := range []string{
		"sim", "sim=abc", "seed=x", "bogus=0.5", "sim=1.5", "slowdelay=fast",
	} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFlagValidation: out-of-range fault-tolerance flags are usage errors
// (exit 1, message naming the flag) instead of being silently clamped to
// the defaults — a negative -retries used to mean 0 and a negative
// -max-backoff used to mean 250ms, so typos passed unnoticed.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		flag string
		ok   bool
	}{
		{"negative retries", []string{"-retries", "-1"}, "-retries", false},
		{"zero timeout explicit", []string{"-timeout", "0"}, "-timeout", false},
		{"negative timeout", []string{"-timeout", "-5s"}, "-timeout", false},
		{"negative max-backoff", []string{"-max-backoff", "-1ms"}, "-max-backoff", false},
		{"zero retries ok", []string{"-retries", "0"}, "", true},
		{"zero max-backoff ok", []string{"-max-backoff", "0"}, "", true},
		{"positive timeout ok", []string{"-timeout", "30s"}, "", true},
		{"timeout omitted ok", nil, "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, append(quickArgs(tc.args...), "fig2")...)
			if tc.ok {
				if code != 0 {
					t.Fatalf("valid flags %v exited %d\nstderr: %s", tc.args, code, errOut)
				}
				return
			}
			if code != 1 {
				t.Fatalf("bad flags %v exited %d, want 1\nstderr: %s", tc.args, code, errOut)
			}
			if !strings.Contains(errOut, tc.flag) {
				t.Fatalf("usage error does not name %s:\n%s", tc.flag, errOut)
			}
			if !strings.Contains(errOut, "Usage") && !strings.Contains(errOut, "-degree") {
				t.Fatalf("usage error did not print flag usage:\n%s", errOut)
			}
		})
	}
}

// TestStatsPrintedOnFailedSweep: -stats reports the counters for work
// actually done even when every experiment errors out (injected sim
// faults with degradation off), matching the package doc's promise.
func TestStatsPrintedOnFailedSweep(t *testing.T) {
	code, out, errOut := runCLI(t, append(quickArgs(
		"-faults", "seed=1,sim=1", "-retries", "0", "-degrade=false", "-stats"),
		"tab2-1")...)
	if code != 1 {
		t.Fatalf("failed sweep exited %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "cells: ") {
		t.Fatalf("failed sweep dropped the -stats cells line from stdout:\n%s", out)
	}
	for _, line := range []string{"cache stats:", "run stats:", "predecode stats:", "trace stats:", "parallel stats:"} {
		if !strings.Contains(errOut, line) {
			t.Fatalf("failed sweep dropped %q from -stats stderr:\n%s", line, errOut)
		}
	}
}

// TestStatsPrintedOnCancelledSweep: a sweep cut short by -timeout still
// reports its counters — the work done before the deadline is real and
// the operator debugging the hang needs to see it.
func TestStatsPrintedOnCancelledSweep(t *testing.T) {
	code, out, errOut := runCLI(t, append(quickArgs("-timeout", "1ns", "-stats"), "tab2-1", "fig4-1")...)
	if code != 1 {
		t.Fatalf("cancelled sweep exited %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "cancelled") {
		t.Fatalf("cancellation not reported:\n%s", errOut)
	}
	if !strings.Contains(out, "cells: ") {
		t.Fatalf("cancelled sweep dropped the -stats cells line from stdout:\n%s", out)
	}
	for _, line := range []string{"cache stats:", "run stats:", "predecode stats:", "trace stats:", "parallel stats:"} {
		if !strings.Contains(errOut, line) {
			t.Fatalf("cancelled sweep dropped %q from -stats stderr:\n%s", line, errOut)
		}
	}
}

// TestBadFlagExitsOne: flag errors are usage errors.
func TestBadFlagExitsOne(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 1 {
		t.Fatalf("bad flag exited %d, want 1", code)
	}
}
