package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
BenchmarkSimulatorThroughput-2   100   10500000 ns/op   95.00 Minstr/s   1024 B/op   19 allocs/op
BenchmarkSimulatorThroughput-2   110    9800000 ns/op  102.00 Minstr/s   1024 B/op   19 allocs/op
BenchmarkSimulatorWideMachine-2   50   16000000 ns/op   44.00 Minstr/s   2048 B/op   19 allocs/op
BenchmarkRunAllQuick-2             1  900000000 ns/op   5500000 allocs/op
PASS
`

func parseSample(t *testing.T, text string) Snapshot {
	t.Helper()
	s := Snapshot{Benchmarks: map[string]Benchmark{}}
	parse(strings.NewReader(text), s.Benchmarks)
	return s
}

func TestParseBestOfN(t *testing.T) {
	s := parseSample(t, sampleBench)
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	tp, ok := s.Benchmarks["BenchmarkSimulatorThroughput"]
	if !ok {
		t.Fatal("BenchmarkSimulatorThroughput missing")
	}
	// -count repeats keep the fastest sample.
	if tp.NsPerOp != 9800000 || tp.Metrics["Minstr/s"] != 102.00 {
		t.Errorf("best-of-N not kept: %+v", tp)
	}
	if s.Benchmarks["BenchmarkRunAllQuick"].Metrics["allocs/op"] != 5500000 {
		t.Errorf("allocs metric lost: %+v", s.Benchmarks["BenchmarkRunAllQuick"])
	}
}

// gateBase is a baseline snapshot with two gated benchmarks (Minstr/s) and
// one ungated allocation tracker.
func gateBase() Snapshot {
	return Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkSimulatorThroughput":  {Metrics: map[string]float64{"Minstr/s": 100}},
		"BenchmarkSimulatorWideMachine": {Metrics: map[string]float64{"Minstr/s": 50}},
		"BenchmarkRunAllQuick":          {Metrics: map[string]float64{"allocs/op": 5500000}},
	}}
}

func TestCompareWithinTolerance(t *testing.T) {
	cur := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkSimulatorThroughput":  {Metrics: map[string]float64{"Minstr/s": 95}}, // -5%: ok
		"BenchmarkSimulatorWideMachine": {Metrics: map[string]float64{"Minstr/s": 60}}, // faster: ok
	}}
	var out strings.Builder
	if !compare(&out, gateBase(), cur, 10) {
		t.Fatalf("compare failed within tolerance:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "bench gate: pass") {
		t.Errorf("missing pass verdict:\n%s", text)
	}
	// The ungated alloc tracker must not appear in the delta table.
	if strings.Contains(text, "RunAllQuick") {
		t.Errorf("ungated benchmark leaked into the gate:\n%s", text)
	}
}

func TestCompareRegression(t *testing.T) {
	cur := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkSimulatorThroughput":  {Metrics: map[string]float64{"Minstr/s": 80}}, // -20%: fail
		"BenchmarkSimulatorWideMachine": {Metrics: map[string]float64{"Minstr/s": 50}},
	}}
	var out strings.Builder
	if compare(&out, gateBase(), cur, 10) {
		t.Fatalf("compare passed a 20%% regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression line not flagged:\n%s", out.String())
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	cur := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkSimulatorThroughput": {Metrics: map[string]float64{"Minstr/s": 100}},
		// WideMachine vanished from the run entirely.
	}}
	var out strings.Builder
	if compare(&out, gateBase(), cur, 10) {
		t.Fatalf("compare passed with a missing gated benchmark:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("missing benchmark not reported:\n%s", out.String())
	}
}

// TestCompareNewBenchmark: a gated benchmark the baseline has never seen is
// reported explicitly — neither a silent pass (dropped from the table) nor a
// spurious failure.
func TestCompareNewBenchmark(t *testing.T) {
	cur := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkSimulatorThroughput":  {Metrics: map[string]float64{"Minstr/s": 100}},
		"BenchmarkSimulatorWideMachine": {Metrics: map[string]float64{"Minstr/s": 50}},
		"BenchmarkSimulatorSuperblock":  {Metrics: map[string]float64{"Minstr/s": 400}},
	}}
	var out strings.Builder
	if !compare(&out, gateBase(), cur, 10) {
		t.Fatalf("new benchmark failed the gate:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "BenchmarkSimulatorSuperblock") ||
		!strings.Contains(text, "new benchmark, no baseline") {
		t.Errorf("new benchmark not reported:\n%s", text)
	}
}

// TestCompareUnusableBaseline: a baseline entry recording 0 (or NaN)
// Minstr/s cannot anchor a percentage delta. The old code divided by it
// and printed NaN/+Inf deltas that could never trip the threshold; now
// the benchmark is reported as "unusable baseline" and the rest of the
// gate still runs — including catching a real regression elsewhere.
func TestCompareUnusableBaseline(t *testing.T) {
	base := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkZeroRecorded": {Metrics: map[string]float64{"Minstr/s": 0}},
		"BenchmarkNaNRecorded":  {Metrics: map[string]float64{"Minstr/s": math.NaN()}},
		"BenchmarkHealthy":      {Metrics: map[string]float64{"Minstr/s": 100}},
	}}
	cur := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkZeroRecorded": {Metrics: map[string]float64{"Minstr/s": 90}},
		"BenchmarkNaNRecorded":  {Metrics: map[string]float64{"Minstr/s": 90}},
		"BenchmarkHealthy":      {Metrics: map[string]float64{"Minstr/s": 98}},
	}}
	var out strings.Builder
	if !compare(&out, base, cur, 10) {
		t.Fatalf("unusable baselines failed a healthy run:\n%s", out.String())
	}
	text := out.String()
	// The recorded (unusable) value may print as NaN; the *delta* column
	// (the %-suffixed number the gate compares) must never.
	if strings.Contains(text, "NaN%") || strings.Contains(text, "Inf%") {
		t.Fatalf("compare emitted NaN/Inf deltas:\n%s", text)
	}
	if strings.Count(text, "unusable baseline") != 2 {
		t.Fatalf("unusable baselines not reported (want 2 mentions):\n%s", text)
	}
	if !strings.Contains(text, "BenchmarkHealthy") {
		t.Fatalf("healthy benchmark dropped from the gate:\n%s", text)
	}

	// An unusable baseline must not mask a genuine regression elsewhere.
	cur.Benchmarks["BenchmarkHealthy"] = Benchmark{Metrics: map[string]float64{"Minstr/s": 50}}
	out.Reset()
	if compare(&out, base, cur, 10) {
		t.Fatalf("regression passed alongside unusable baselines:\n%s", out.String())
	}
}

// TestCompareGeomeanSummary: compare mode prints a geometric-mean Minstr/s
// line over the gated benchmarks usable on both sides — here 100 and 50 vs
// 200 and 100, so geomeans sqrt(100*50)≈70.71 -> sqrt(200*100)≈141.42, a
// +100% trajectory.
func TestCompareGeomeanSummary(t *testing.T) {
	cur := Snapshot{Benchmarks: map[string]Benchmark{
		"BenchmarkSimulatorThroughput":  {Metrics: map[string]float64{"Minstr/s": 200}},
		"BenchmarkSimulatorWideMachine": {Metrics: map[string]float64{"Minstr/s": 100}},
	}}
	var out strings.Builder
	if !compare(&out, gateBase(), cur, 10) {
		t.Fatalf("compare failed a uniformly faster run:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "geomean") {
		t.Fatalf("no geomean summary line:\n%s", text)
	}
	if !strings.Contains(text, "70.71 ->   141.42") || !strings.Contains(text, "+100.0%") {
		t.Errorf("geomean values wrong:\n%s", text)
	}
	if !strings.Contains(text, "over 2 benchmarks") {
		t.Errorf("geomean population missing:\n%s", text)
	}

	// A benchmark missing from the run drops out of the geomean population
	// (and fails the gate) without poisoning the summary line.
	delete(cur.Benchmarks, "BenchmarkSimulatorWideMachine")
	out.Reset()
	if compare(&out, gateBase(), cur, 10) {
		t.Fatalf("missing benchmark passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "over 1 benchmarks") {
		t.Errorf("geomean population not reduced:\n%s", out.String())
	}
}

func TestCompareEmptyBaseline(t *testing.T) {
	var out strings.Builder
	empty := Snapshot{Benchmarks: map[string]Benchmark{}}
	if compare(&out, empty, gateBase(), 10) {
		t.Error("empty baseline must fail the gate, not silently pass")
	}
}
