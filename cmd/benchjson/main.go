// Command benchjson converts `go test -bench` output into the repo's
// BENCH_sim.json, the machine-readable performance trajectory (simulator
// Minstr/s, allocations per run, experiment wall times).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... > bench.txt
//	benchjson -out BENCH_sim.json bench.txt [more.txt ...]
//	benchjson -baseline BENCH_sim.json bench.txt   # compare, don't write
//
// Record mode: if the output file already exists, its "baseline" section is
// preserved verbatim, so the first recorded baseline (the pre-optimization
// engine) keeps anchoring later runs. With no prior file, the current run
// becomes the baseline too.
//
// Compare mode (-baseline): instead of writing anything, the parsed run is
// checked against the "current" snapshot of the given BENCH_sim.json. Every
// benchmark carrying a Minstr/s metric prints a delta line; the exit status
// is 1 when any of them regressed by more than -threshold percent (or went
// missing), so `make bench-gate` can fail a change that slows the simulator.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one recorded run of the benchmark set.
type Snapshot struct {
	Note string `json:"note,omitempty"`
	// GoMaxProcs is the GOMAXPROCS of the recording host: sweep-level
	// benchmarks scale with cores, so a snapshot is only comparable to runs
	// on a similar machine shape.
	GoMaxProcs int                  `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Baseline Snapshot `json:"baseline"`
	Current  Snapshot `json:"current"`
}

// throughputMetric is the unit the gate compares: simulated megainstructions
// per wall second, reported by the simulator benchmarks via b.ReportMetric.
const throughputMetric = "Minstr/s"

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file (record mode)")
	note := flag.String("note", "", "note recorded with the current snapshot")
	baseline := flag.String("baseline", "", "compare the run against this BENCH_sim.json instead of recording; exit 1 on regression")
	threshold := flag.Float64("threshold", 10, "Minstr/s regression tolerance for -baseline, in percent")
	flag.Parse()

	cur := Snapshot{Note: *note, GoMaxProcs: runtime.GOMAXPROCS(0), Benchmarks: map[string]Benchmark{}}
	if flag.NArg() == 0 {
		parse(os.Stdin, cur.Benchmarks)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		parse(f, cur.Benchmarks)
		f.Close()
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base File
		if err := json.Unmarshal(buf, &base); err != nil {
			fatal(fmt.Errorf("%s: %v", *baseline, err))
		}
		if !compare(os.Stdout, base.Current, cur, *threshold) {
			os.Exit(1)
		}
		return
	}

	file := File{Baseline: cur, Current: cur}
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if err := json.Unmarshal(prev, &old); err == nil && len(old.Baseline.Benchmarks) > 0 {
			file.Baseline = old.Baseline
		}
	}

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// compare prints a per-benchmark throughput delta table of cur against base
// and reports whether the run passes: every baseline benchmark carrying a
// Minstr/s metric must be present and within pct percent below its recorded
// value. Faster is always fine; benchmarks without the metric (allocation
// and wall-time trackers) are not gated. Benchmarks in the run that the
// baseline has never seen are reported as "new benchmark, no baseline" —
// informational, not a failure, and never silently dropped — so a freshly
// enrolled benchmark is visible in the gate output until the snapshot is
// re-recorded.
func compare(w io.Writer, base, cur Snapshot, pct float64) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name, b := range base.Benchmarks {
		if _, ok := b.Metrics[throughputMetric]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(w, "benchjson: baseline has no %s benchmarks to gate on\n", throughputMetric)
		return false
	}

	pass := true
	for _, name := range names {
		want := base.Benchmarks[name].Metrics[throughputMetric]
		got, ok := cur.Benchmarks[name]
		gotV, hasMetric := got.Metrics[throughputMetric]
		if !(want > 0) {
			// A baseline that recorded zero (or negative, or NaN)
			// Minstr/s cannot anchor a percentage delta — the division
			// would print NaN/+Inf and the < comparison would silently
			// never fail. Report it and move on; the fix is re-recording
			// the snapshot, not failing every later run.
			fmt.Fprintf(w, "%-34s %8.2f -> unusable baseline, not gated\n", name, want)
			continue
		}
		if !ok || !hasMetric {
			fmt.Fprintf(w, "%-34s %8.2f -> MISSING            FAIL\n", name, want)
			pass = false
			continue
		}
		delta := (gotV - want) / want * 100
		verdict := "ok"
		if delta < -pct {
			verdict = "REGRESSION"
			pass = false
		}
		fmt.Fprintf(w, "%-34s %8.2f -> %8.2f %s  %+6.1f%%  %s\n",
			name, want, gotV, throughputMetric, delta, verdict)
	}
	// Geometric-mean summary over the benchmarks gated above that have a
	// usable value on both sides: the one-line trajectory of the whole set,
	// insensitive to which benchmark dominates in absolute Minstr/s.
	var logBase, logCur float64
	var gm int
	for _, name := range names {
		want := base.Benchmarks[name].Metrics[throughputMetric]
		gotV, hasMetric := cur.Benchmarks[name].Metrics[throughputMetric]
		if want > 0 && hasMetric && gotV > 0 {
			logBase += math.Log(want)
			logCur += math.Log(gotV)
			gm++
		}
	}
	if gm > 0 {
		gb := math.Exp(logBase / float64(gm))
		gc := math.Exp(logCur / float64(gm))
		fmt.Fprintf(w, "%-34s %8.2f -> %8.2f %s  %+6.1f%%  over %d benchmarks\n",
			"geomean", gb, gc, throughputMetric, (gc-gb)/gb*100, gm)
	}
	var fresh []string
	for name, b := range cur.Benchmarks {
		if _, gated := b.Metrics[throughputMetric]; !gated {
			continue
		}
		if _, known := base.Benchmarks[name]; !known {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "%-34s %8s -> %8.2f %s  new benchmark, no baseline\n",
			name, "(none)", cur.Benchmarks[name].Metrics[throughputMetric], throughputMetric)
	}
	if pass {
		fmt.Fprintf(w, "bench gate: pass (tolerance %.0f%%)\n", pct)
	} else {
		fmt.Fprintf(w, "bench gate: FAIL (tolerance %.0f%%)\n", pct)
	}
	return pass
}

// parse extracts benchmark result lines:
//
//	BenchmarkName-8   123   456.7 ns/op   89.0 Minstr/s   280 B/op   2 allocs/op
//
// Every "value unit" pair after ns/op is recorded as a metric. When -count
// produced repeated samples of one benchmark, the fastest (lowest ns/op) is
// kept — best-of-N is the stable statistic on a shared, noisy host.
func parse(r io.Reader, into map[string]Benchmark) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[fields[i+1]] = v
			}
		}
		if prev, ok := into[name]; !ok || b.NsPerOp < prev.NsPerOp {
			into[name] = b
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
