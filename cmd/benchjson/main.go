// Command benchjson converts `go test -bench` output into the repo's
// BENCH_sim.json, the machine-readable performance trajectory (simulator
// Minstr/s, allocations per run, experiment wall times).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... > bench.txt
//	benchjson -out BENCH_sim.json bench.txt [more.txt ...]
//
// If the output file already exists, its "baseline" section is preserved
// verbatim, so the first recorded baseline (the pre-optimization engine)
// keeps anchoring later runs. With no prior file, the current run becomes
// the baseline too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one recorded run of the benchmark set.
type Snapshot struct {
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Baseline Snapshot `json:"baseline"`
	Current  Snapshot `json:"current"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file")
	note := flag.String("note", "", "note recorded with the current snapshot")
	flag.Parse()

	cur := Snapshot{Note: *note, Benchmarks: map[string]Benchmark{}}
	if flag.NArg() == 0 {
		parse(os.Stdin, cur.Benchmarks)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		parse(f, cur.Benchmarks)
		f.Close()
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	file := File{Baseline: cur, Current: cur}
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if err := json.Unmarshal(prev, &old); err == nil && len(old.Baseline.Benchmarks) > 0 {
			file.Baseline = old.Baseline
		}
	}

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines:
//
//	BenchmarkName-8   123   456.7 ns/op   89.0 Minstr/s   280 B/op   2 allocs/op
//
// Every "value unit" pair after ns/op is recorded as a metric. When -count
// produced repeated samples of one benchmark, the fastest (lowest ns/op) is
// kept — best-of-N is the stable statistic on a shared, noisy host.
func parse(r io.Reader, into map[string]Benchmark) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[fields[i+1]] = v
			}
		}
		if prev, ok := into[name]; !ok || b.NsPerOp < prev.NsPerOp {
			into[name] = b
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
