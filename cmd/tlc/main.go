// Command tlc is the TL compiler driver: it parses, checks, optimizes and
// lowers a TL source file, dumping whichever intermediate representation is
// requested — tokens, AST summary, IR, or final scheduled assembly — or
// runs the program through the reference interpreter.
//
// Usage:
//
//	tlc [-level 0..4] [-unroll N] [-careful] [-verify] [-analyze] [-dump ir|asm] [-run] file.tl
package main

import (
	"flag"
	"fmt"
	"os"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/lang/interp"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/statictime"
)

func main() {
	level := flag.Int("level", 4, "optimization level 0..4")
	unroll := flag.Int("unroll", 0, "loop unroll factor")
	careful := flag.Bool("careful", false, "careful unrolling")
	verifyFlag := flag.Bool("verify", false, "run the static verifier after every compiler pass")
	analyze := flag.Bool("analyze", false, "print the static timing analysis (per-block cycle bounds) instead of a dump")
	dump := flag.String("dump", "asm", "what to dump: ir, asm, none")
	run := flag.Bool("run", false, "run with the reference interpreter and print output")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tlc [flags] <file.tl|benchmark>")
		os.Exit(2)
	}
	target := flag.Arg(0)
	var src string
	if b, err := benchmarks.ByName(target); err == nil {
		src = b.Source
	} else {
		data, ferr := os.ReadFile(target)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "tlc:", ferr)
			os.Exit(1)
		}
		src = string(data)
	}

	if *run {
		p, err := parser.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlc:", err)
			os.Exit(1)
		}
		info, err := sem.Analyze(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlc:", err)
			os.Exit(1)
		}
		out, err := interp.Run(info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlc:", err)
			os.Exit(1)
		}
		for _, v := range out {
			fmt.Println(v)
		}
		return
	}

	c, err := compiler.Compile(src, compiler.Options{
		Machine: machine.Base(),
		Level:   compiler.Level(*level),
		Unroll:  *unroll,
		Careful: *careful,
		Verify:  *verifyFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlc:", err)
		os.Exit(1)
	}
	if *analyze {
		a, aerr := statictime.Analyze(c.Prog, machine.Base())
		if aerr != nil {
			fmt.Fprintln(os.Stderr, "tlc:", aerr)
			os.Exit(1)
		}
		fmt.Print(a.Format())
		return
	}
	switch *dump {
	case "ir":
		fmt.Print(c.IR.String())
	case "asm":
		fmt.Print(c.Prog.Disassemble())
	case "none":
		fmt.Printf("%d instructions, %d functions, %d loops unrolled\n",
			len(c.Prog.Instrs), len(c.IR.Funcs), c.UnrolledLoops)
	default:
		fmt.Fprintf(os.Stderr, "tlc: unknown dump kind %q\n", *dump)
		os.Exit(2)
	}
}
