// Command pipeviz prints the paper's pipeline-execution diagrams
// (Figures 2-1..2-8 and the Figure 4-2 start-up comparison).
//
// Usage:
//
//	pipeviz            # all Section 2 diagrams
//	pipeviz startup    # Figure 4-2
package main

import (
	"fmt"
	"os"

	"ilp/internal/pipeviz"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "startup" {
		fmt.Println(pipeviz.Startup(3, 6).Render())
		return
	}
	for _, d := range pipeviz.All() {
		fmt.Println(d.Render())
	}
	fmt.Println(pipeviz.Startup(3, 6).Render())
}
