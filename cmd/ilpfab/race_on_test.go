//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; the full
// golden sweep is skipped under it (≈10× slower, no extra coverage over
// the plain-build run).
const raceEnabled = true
