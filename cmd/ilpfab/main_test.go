package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ilp/internal/experiments"
	"ilp/internal/fabric"
)

// goldenPath is the archived full-harness run backing EXPERIMENTS.md,
// relative to this package directory.
const goldenPath = "../../docs/ilpbench-output.txt"

// TestMain mirrors main's worker dispatch: the coordinator under test
// spawns this test binary with os.Executable(), so `<testbinary> worker`
// must land in WorkerMain exactly as `ilpfab worker` does.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(fabric.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestIlpfabSmallSweep: the CLI end to end on a tiny sweep — exit 0,
// tables byte-identical to the same sweep run in process.
func TestIlpfabSmallSweep(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "r.jsonl")
	code, out, errOut := runCLI(t,
		"-store", storePath, "-shards", "2", "-degree", "2",
		"-benchmarks", "whet,linpack", "-workers", "1", "-quiet",
		"fig4-1")
	if code != 0 {
		t.Fatalf("ilpfab exited %d\nstderr: %s", code, errOut)
	}

	r := experiments.NewRunner(experiments.Config{MaxDegree: 2, Benchmarks: []string{"whet", "linpack"}, Workers: 1})
	res, err := r.RunCtx(context.Background(), "fig4-1")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	if out != want {
		t.Fatalf("ilpfab output differs from in-process run:\ngot %d bytes, want %d", len(out), len(want))
	}
	if !strings.Contains(errOut, "cells merged") {
		t.Fatalf("missing summary line on stderr: %s", errOut)
	}
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("merged store missing: %v", err)
	}
}

// TestIlpfabFlagValidation: usage errors exit 1 with a message naming the
// problem, before any worker spawns.
func TestIlpfabFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing store", []string{"-shards", "2"}, "-store is required"},
		{"zero shards", []string{"-store", "x.jsonl", "-shards", "0"}, "-shards"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exited %d, want 1", code)
			}
			if !strings.Contains(errOut, tc.want) {
				t.Fatalf("stderr does not mention %q:\n%s", tc.want, errOut)
			}
		})
	}
}

// TestIlpfabBadFaultsSpec: an unparsable -faults spec is a permanent
// worker failure — the run fails without restarts burning time.
func TestIlpfabBadFaultsSpec(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "r.jsonl")
	code, _, errOut := runCLI(t,
		"-store", storePath, "-shards", "1", "-degree", "2",
		"-benchmarks", "whet", "-quiet", "-faults", "bogus=1",
		"fig4-5")
	if code != 1 {
		t.Fatalf("bad faults spec exited %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "permanent") {
		t.Fatalf("bad spec not reported permanent:\n%s", errOut)
	}
}

// TestFabricGolden is the fabric's acceptance check: the full paper sweep,
// sharded four ways with SIGKILLs injected at commit points, must merge
// and render byte-identical to docs/ilpbench-output.txt — the same golden
// ilpbench and ilpd are held to. This is `make fabric-smoke`.
//
// Like its siblings, the full sweep is expensive (~15 s) and skipped
// under -short and the race detector.
func TestFabricGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full fabric sweep skipped under the race detector")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}

	storePath := filepath.Join(t.TempDir(), "r.jsonl")
	code, out, errOut := runCLI(t,
		"-store", storePath, "-shards", "4", "-max-restarts", "32",
		"-faults", "seed=11,workerkill=0.004",
		"all")
	if code != 0 {
		t.Fatalf("ilpfab all exited %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "restart") || strings.Contains(errOut, " 0 restarts") {
		t.Fatalf("kill injection caused no restarts — raise the rate or change the seed\nstderr tail: %s",
			tail(errOut))
	}
	if out == string(want) {
		return
	}
	t.Errorf("fabric sweep drifted from %s\n%s", goldenPath, firstDiff(string(want), out))
}

func tail(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > 5 {
		lines = lines[len(lines)-5:]
	}
	return strings.Join(lines, "\n")
}

// firstDiff locates the first differing line for a readable failure
// message (the full outputs are thousands of lines).
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := min(len(wl), len(gl))
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("outputs agree for %d lines, lengths differ (golden %d, got %d)", n, len(wl), len(gl))
}
