// Command ilpfab runs the paper's experiment sweep as a crash-tolerant
// sharded fabric: a coordinator partitions the benchmark suite into
// shards, runs each shard in a supervised worker process ("ilpfab
// worker", a re-exec of this binary), and merges the shards' durable
// stores into one canonical result store whose rendition is
// byte-identical to a single-process `ilpbench all`.
//
// Workers hold heartbeat leases. A worker that crashes, hangs past its
// lease, or exits nonzero is killed and restarted with capped backoff,
// resuming from its shard store — committed cells are never recomputed.
//
//	ilpfab -store results.jsonl -shards 4            # full sweep, 4 ways
//	ilpfab -store r.jsonl -shards 2 fig4-1 tab2-1    # a subset
//	ilpfab -store r.jsonl -faults 'seed=1,workerkill=0.3'  # chaos drill
//
// Exit status: 0 on a clean sweep, 1 when a shard or the merge failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"ilp/internal/fabric"
)

func main() {
	// The worker half: `ilpfab worker` re-enters this binary and speaks
	// the stdin/stdout protocol with the coordinator that spawned it.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(fabric.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilpfab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		storePath   = fs.String("store", "", "merged result store path (required); shard stores live beside it")
		shards      = fs.Int("shards", 2, "number of worker shards")
		concurrency = fs.Int("concurrency", 0, "max simultaneous worker processes (0 = all shards)")
		degree      = fs.Int("degree", 0, "max superscalar/superpipelined degree (0 = paper's 8)")
		benches     = fs.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		workers     = fs.Int("workers", 0, "sim goroutines per worker process (0 = GOMAXPROCS)")
		retries     = fs.Int("retries", 2, "per-cell retries inside each worker")
		degrade     = fs.Bool("degrade", false, "render permanently failed cells as NaN rows")
		faults      = fs.String("faults", "", "fault-injection spec (see ilpbench -faults; adds workerkill/workerhang/workertear)")
		maxRestarts = fs.Int("max-restarts", 0, "max restarts per shard (0 = default 8)")
		lease       = fs.Duration("lease", 5*time.Second, "heartbeat lease TTL: silent workers are killed after this")
		timeout     = fs.Duration("timeout", 0, "overall deadline (0 = none)")
		quiet       = fs.Bool("quiet", false, "suppress supervision narration on stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ilpfab [flags] [experiment ids...]\n       ilpfab worker\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *storePath == "" {
		fmt.Fprintln(stderr, "ilpfab: -store is required")
		return 1
	}
	if *shards < 1 {
		fmt.Fprintln(stderr, "ilpfab: -shards must be at least 1")
		return 1
	}
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}

	ids := fs.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil // parity with `ilpbench all`: every experiment
	}
	cfg := fabric.Config{
		Shards:      *shards,
		Concurrency: *concurrency,
		StorePath:   *storePath,
		MaxDegree:   *degree,
		Experiments: ids,
		Workers:     *workers,
		Retries:     *retries,
		Degrade:     *degrade,
		Faults:      *faults,
		WorkerArgv:  []string{self, "worker"},
		MaxRestarts: *maxRestarts,
		Lease:       *lease,
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if !*quiet {
		cfg.Log = stderr
	}

	coord, err := fabric.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "ilpfab: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	sum, err := coord.Run(ctx, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "ilpfab: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ilpfab: %d shards, %d restarts, %d cells merged (%d torn tails repaired) in %.1fs\n",
		len(sum.Shards), sum.Restarts, sum.Merge.Records, sum.Merge.TornTails, time.Since(start).Seconds())
	return 0
}
