package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// goldenPath is the archived full-harness run backing EXPERIMENTS.md,
// relative to this package directory.
const goldenPath = "../../docs/ilpbench-output.txt"

// TestIlpdSmoke is the daemon half of the golden acceptance check: an
// empty POST /v1/sweeps (every experiment, the paper's defaults) rendered
// through the HTTP API must be byte-identical to docs/ilpbench-output.txt
// — the same file the ilpbench CLI is held to — so the daemon cannot
// drift from the CLI by even a byte. This is `make ilpd-smoke`.
//
// Like TestGoldenFullSweep in cmd/ilpbench, the full sweep is the
// expensive end of the suite (~10 s) and is skipped under -short and the
// race detector.
func TestIlpdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full ilpd sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full ilpd sweep skipped under the race detector")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}

	cfg := DefaultConfig()
	cfg.DefaultBudget = 0 // the golden sweep runs unmetered
	_, ts := newTestServer(t, cfg)
	id := submit(t, ts.URL, SweepRequest{})
	st := waitDone(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("golden sweep ended %s: %s (failed: %v)", st.State, st.Error, st.Failed)
	}
	if st.Rendered == string(want) {
		return
	}
	t.Errorf("daemon sweep drifted from %s\n%s", goldenPath, firstDiff(string(want), st.Rendered))
}

// firstDiff locates the first differing line for a readable failure
// message (the full outputs are thousands of lines).
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := min(len(wl), len(gl))
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("outputs agree for %d lines, lengths differ (golden %d, got %d)", n, len(wl), len(gl))
}
