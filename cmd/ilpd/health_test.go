package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// probe GETs a health endpoint and returns the status code and decoded
// body (either {"status": ...} or {"error": ...}).
func probe(t *testing.T, base, path string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decoding body: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestHealthEndpoints walks the daemon through its lifecycle — booted,
// ready, draining — and checks both probes at each stage. Liveness must
// hold through all of it; readiness is true only in the middle.
func TestHealthEndpoints(t *testing.T) {
	srv, ts := newTestServer(t, testConfig())

	stages := []struct {
		name        string
		enter       func()
		wantHealthz int
		wantReadyz  int
		wantReason  string // substring of the readyz error body when 503
	}{
		{
			name:        "booted but not ready",
			enter:       func() {},
			wantHealthz: http.StatusOK,
			wantReadyz:  http.StatusServiceUnavailable,
			wantReason:  "starting",
		},
		{
			name:        "ready",
			enter:       func() { srv.SetReady(true) },
			wantHealthz: http.StatusOK,
			wantReadyz:  http.StatusOK,
		},
		{
			name: "draining",
			enter: func() {
				if err := srv.Drain(context.Background()); err != nil {
					t.Fatalf("drain: %v", err)
				}
			},
			wantHealthz: http.StatusOK,
			wantReadyz:  http.StatusServiceUnavailable,
			wantReason:  "draining",
		},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			st.enter()
			if code, _ := probe(t, ts.URL, "/healthz"); code != st.wantHealthz {
				t.Errorf("healthz = %d, want %d", code, st.wantHealthz)
			}
			code, body := probe(t, ts.URL, "/readyz")
			if code != st.wantReadyz {
				t.Errorf("readyz = %d, want %d", code, st.wantReadyz)
			}
			if st.wantReason != "" && !strings.Contains(body["error"], st.wantReason) {
				t.Errorf("readyz body %v does not mention %q", body, st.wantReason)
			}
		})
	}
}

// TestReadyzDrainBeatsReady: readiness cannot be turned back on during a
// drain — draining wins over the ready flag, so a stray SetReady(true)
// from a late startup path can't re-admit traffic to a dying daemon.
func TestReadyzDrainBeatsReady(t *testing.T) {
	srv, ts := newTestServer(t, testConfig())
	srv.SetReady(true)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv.SetReady(true)
	code, body := probe(t, ts.URL, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body["error"], "draining") {
		t.Fatalf("readyz after drain = %d %v, want 503 draining", code, body)
	}
}
