package main

import (
	"context"
	"io"
	"strings"
	"testing"
)

// TestLoadTestHarness: the -loadtest harness completes every offered
// sweep, reports a positive throughput, and demonstrates the coalescing
// the daemon exists for — identical requests cost far fewer live
// simulations than cells served.
func TestLoadTestHarness(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSweeps = 2 // small cap so admission control (429 + retry) is exercised too
	rep, err := runLoadTest(context.Background(), cfg, 4, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sweeps != 8 {
		t.Fatalf("completed %d sweeps, want 8", rep.Sweeps)
	}
	if rep.Sims == 0 || rep.TotalCells == 0 {
		t.Fatalf("no work recorded: %+v", rep)
	}
	// Eight identical sweeps share one set of simulations: the live count
	// must be what a single sweep costs, i.e. an eighth of the cells.
	if int(rep.Sims)*8 != rep.TotalCells {
		t.Errorf("coalescing failed: %d live sims for %d cells across 8 identical sweeps",
			rep.Sims, rep.TotalCells)
	}
	text := rep.String()
	for _, want := range []string{"sweeps/sec", "live simulations", "admission control"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestLoadTestRejectsBadShape: non-positive client/sweep counts are usage
// errors, not hangs.
func TestLoadTestRejectsBadShape(t *testing.T) {
	if _, err := runLoadTest(context.Background(), testConfig(), 0, 5, io.Discard); err == nil {
		t.Error("0 clients accepted")
	}
	if _, err := runLoadTest(context.Background(), testConfig(), 2, -1, io.Discard); err == nil {
		t.Error("negative sweeps accepted")
	}
}
