package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ilp/internal/store"
)

// TestDrainWaitsForInflight: Drain with headroom lets a running sweep
// finish (state done, not failed), refuses new submissions with 503
// throughout, keeps reads working, and compacts the store.
func TestDrainWaitsForInflight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ilpd.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := testConfig()
	cfg.StorePath = path
	srv := NewServer(cfg, st)
	defer srv.Close()
	ts := newHTTPServer(t, srv)

	id := submit(t, ts, smallReq)

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Draining rejects new work with 503 while the first sweep runs (or
	// just after it finished — either way admission must be closed).
	waitDraining(t, srv)
	code, body := postSweep(t, ts, smallReq)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain: %d: %s", code, body)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("503 body does not say draining: %s", body)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	// The in-flight sweep was allowed to finish.
	if st := getStatus(t, ts, id); st.State != stateDone {
		t.Fatalf("drained sweep ended %s: %s", st.State, st.Error)
	}
	// And its cells were committed and compacted: a fresh reader sees a
	// valid store with every record intact.
	recs, _, err := store.Load(path)
	if err != nil {
		t.Fatalf("store unreadable after drain: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("store empty after a completed sweep drained")
	}
}

// TestDrainDeadlineCancels: when the drain window expires, in-flight
// sweeps are cancelled with the draining cause instead of holding
// shutdown hostage; Drain still returns cleanly.
func TestDrainDeadlineCancels(t *testing.T) {
	srv := NewServer(testConfig(), nil)
	defer srv.Close()
	ts := newHTTPServer(t, srv)

	// The full default sweep runs for seconds — far past the expired
	// drain window below.
	id := submit(t, ts, SweepRequest{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // window already expired: drain must cancel, not wait
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	st := getStatus(t, ts, id)
	if st.State != stateFailed {
		t.Fatalf("sweep survived an expired drain window: %s", st.State)
	}
	if !strings.Contains(st.Error, "draining") {
		t.Errorf("cancellation cause lost: %q", st.Error)
	}
	// Partial results remain readable after the drain.
	if stats := fetchStatsT(t, ts); stats.Server.Inflight != 0 || !stats.Server.Draining {
		t.Errorf("post-drain stats wrong: %+v", stats.Server)
	}
}

// newHTTPServer wires an existing Server onto an httptest listener.
func newHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func waitDraining(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		d := srv.draining
		srv.mu.Unlock()
		if d {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never entered the draining state")
		}
		time.Sleep(time.Millisecond)
	}
}
