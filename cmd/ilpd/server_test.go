package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ilp/internal/experiments"
)

// testConfig is a small, fast daemon configuration: unmetered budgets (the
// tests that want budget enforcement set one explicitly) and a short but
// safe default timeout.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DefaultBudget = 0
	cfg.DefaultTimeout = time.Minute
	cfg.Workers = 2
	return cfg
}

// newTestServer boots an in-process daemon on an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postSweep(t *testing.T, base string, req SweepRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// submit posts a sweep and returns its id, failing the test on anything
// but 202.
func submit(t *testing.T, base string, req SweepRequest) string {
	t.Helper()
	code, body := postSweep(t, base, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d: %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil || acc.ID == "" {
		t.Fatalf("bad accept body %s: %v", body, err)
	}
	return acc.ID
}

func getStatus(t *testing.T, base, id string) sweepStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/%s: %d", id, resp.StatusCode)
	}
	var st sweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls a sweep to a terminal state.
func waitDone(t *testing.T, base, id string) sweepStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getStatus(t, base, id)
		if st.State != stateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still running after 2m", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// smallReq is the cheapest real sweep: one experiment, one benchmark,
// degree 2.
var smallReq = SweepRequest{
	Experiments: []string{"tab2-1"},
	Benchmarks:  []string{"whet"},
	Degree:      2,
}

// TestSweepRendersLikeIlpbench: the daemon's rendered output for a request
// is byte-identical to what the ilpbench CLI prints for the equivalent
// flags — the daemon is a transport, not a different renderer.
func TestSweepRendersLikeIlpbench(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	id := submit(t, ts.URL, smallReq)
	st := waitDone(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}

	ref := experiments.NewRunner(experiments.Config{
		MaxDegree: smallReq.Degree, Benchmarks: smallReq.Benchmarks, Workers: 2,
	})
	res, err := ref.RunCtx(context.Background(), "tab2-1")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	if st.Rendered != want {
		t.Errorf("daemon rendering differs from ilpbench:\ndaemon:\n%s\nreference:\n%s", st.Rendered, want)
	}
	if len(st.Tables) != 1 || st.Tables[0].ID != "tab2-1" || st.Tables[0].Text != res.Text {
		t.Errorf("tables payload wrong: %+v", st.Tables)
	}
	if st.Cells == 0 || st.Instructions == 0 {
		t.Errorf("sweep accounting empty: %+v cells, %d instructions", st.Cells, st.Instructions)
	}
}

// TestValidationRejects: malformed and over-cap requests are 400s that
// never reach the runner, each counted in the stats.
func TestValidationRejects(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBudget = 1000
	srv, ts := newTestServer(t, cfg)
	cases := []struct {
		name string
		req  SweepRequest
		want string
	}{
		{"unknown experiment", SweepRequest{Experiments: []string{"tab9-9"}}, "unknown experiment"},
		{"unknown benchmark", SweepRequest{Benchmarks: []string{"specint"}}, "unknown benchmark"},
		{"degree beyond cap", SweepRequest{Degree: 64}, "out of range"},
		{"negative degree", SweepRequest{Degree: -1}, "out of range"},
		{"malformed timeout", SweepRequest{Timeout: "soon"}, "bad timeout"},
		{"non-positive timeout", SweepRequest{Timeout: "-1s"}, "must be positive"},
		{"timeout beyond cap", SweepRequest{Timeout: "48h"}, "exceeds the server cap"},
		{"negative budget", SweepRequest{Budget: -5}, "budget -5 must be"},
		{"budget beyond cap", SweepRequest{Budget: 100000}, "exceeds the server cap"},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postSweep(t, ts.URL, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("got %d, want 400: %s", code, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("error body %s does not mention %q", body, tc.want)
			}
			if got := srv.statsSnapshot().RejectedInvalid; got != i+1 {
				t.Errorf("rejected_invalid = %d, want %d", got, i+1)
			}
		})
	}

	// An unknown JSON field is a client error too (schema drift surfaces
	// loudly instead of being ignored).
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"experiment": ["tab2-1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
}

// statsSnapshot reads the server counters the way the handler does.
func (s *Server) statsSnapshot() serverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TestAdmissionControl: at the inflight cap, POST is 429 with Retry-After;
// below it, 202. The counter is forced directly so the test is
// deterministic — the loadtest exercises the organic path.
func TestAdmissionControl(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSweeps = 2
	srv, ts := newTestServer(t, cfg)

	srv.mu.Lock()
	srv.stats.Inflight = cfg.MaxSweeps
	srv.mu.Unlock()

	body, _ := json.Marshal(smallReq)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("at the cap: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if srv.statsSnapshot().RejectedBusy != 1 {
		t.Errorf("rejected_busy = %d, want 1", srv.statsSnapshot().RejectedBusy)
	}

	srv.mu.Lock()
	srv.stats.Inflight = 0
	srv.mu.Unlock()
	id := submit(t, ts.URL, smallReq)
	if st := waitDone(t, ts.URL, id); st.State != stateDone {
		t.Fatalf("post-cap sweep ended %s: %s", st.State, st.Error)
	}
}

// TestConcurrentSweepsSingleflight is the acceptance check for the shared
// cache: two identical sweeps submitted concurrently perform exactly as
// many live simulations as ONE sweep of that request does on a fresh
// runner — every cell the second sweep needs either joins the first
// sweep's in-flight entry or hits the cache, never a duplicate
// simulation. Verified through /v1/stats, the same numbers an operator
// would read.
func TestConcurrentSweepsSingleflight(t *testing.T) {
	// Reference: live sims for this request on a fresh runner.
	ref := experiments.NewRunner(experiments.Config{
		MaxDegree: smallReq.Degree, Benchmarks: smallReq.Benchmarks, Workers: 2,
	})
	if _, err := ref.RunCtx(context.Background(), "tab2-1"); err != nil {
		t.Fatal(err)
	}
	wantSims := ref.Stats().Sims
	if wantSims == 0 {
		t.Fatal("reference run performed no simulations")
	}

	_, ts := newTestServer(t, testConfig())
	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[i] = submit(t, ts.URL, smallReq)
		}()
	}
	wg.Wait()
	var totalCells int
	for _, id := range ids {
		st := waitDone(t, ts.URL, id)
		if st.State != stateDone {
			t.Fatalf("sweep %s ended %s: %s", id, st.State, st.Error)
		}
		totalCells += st.Cells
	}

	stats := fetchStatsT(t, ts.URL)
	if stats.Runner.Sims != wantSims {
		t.Errorf("daemon performed %d live sims for two identical sweeps, want %d (singleflight)",
			stats.Runner.Sims, wantSims)
	}
	if int64(totalCells) != 2*wantSims {
		t.Errorf("observers saw %d cells across both sweeps, want %d", totalCells, 2*wantSims)
	}
	if stats.Server.Submitted != 2 || stats.Server.Completed != 2 || stats.Server.Inflight != 0 {
		t.Errorf("server accounting wrong: %+v", stats.Server)
	}
}

func fetchStatsT(t *testing.T, base string) statsResponse {
	t.Helper()
	st, err := fetchStats(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEventsStream: the NDJSON stream replays history and follows the
// sweep to its done event; seq is dense, cell events match the status
// accounting, and the experiment event carries the rendered text.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	id := submit(t, ts.URL, smallReq)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d (stream must be dense and ordered)", i, ev.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != stateDone {
		t.Fatalf("stream did not end with a done event: %+v", last)
	}

	st := getStatus(t, ts.URL, id)
	var cells, exps int
	for _, ev := range events {
		switch ev.Type {
		case "cell":
			cells++
			if ev.Benchmark == "" || ev.Machine == "" || ev.Fingerprint == "" {
				t.Errorf("cell event missing attribution: %+v", ev)
			}
		case "experiment":
			exps++
			if ev.Experiment != "tab2-1" || ev.Text == "" {
				t.Errorf("experiment event wrong: %+v", ev)
			}
		}
	}
	if cells != st.Cells {
		t.Errorf("stream carried %d cell events, status says %d cells", cells, st.Cells)
	}
	if exps != 1 || last.Cells != st.Cells {
		t.Errorf("stream summary mismatch: %d experiments, done.Cells=%d, status.Cells=%d",
			exps, last.Cells, st.Cells)
	}
}

// TestClientCancel: DELETE on a running sweep drives it to the failed
// state with a cause naming the client.
func TestClientCancel(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	// The full default sweep (every experiment, degree 8) takes several
	// seconds — the DELETE lands long before it finishes.
	id := submit(t, ts.URL, SweepRequest{})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	st := waitDone(t, ts.URL, id)
	if st.State != stateFailed {
		t.Fatalf("cancelled sweep ended %s", st.State)
	}
	if !strings.Contains(st.Error, "cancelled by client") {
		t.Errorf("cancellation cause lost: %q", st.Error)
	}
}

// TestInstructionBudget: a request with a tiny budget fails with the
// budget-exceeded cause; the same request unbudgeted succeeds.
func TestInstructionBudget(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	req := smallReq
	req.Budget = 1
	id := submit(t, ts.URL, req)
	st := waitDone(t, ts.URL, id)
	if st.State != stateFailed || !strings.Contains(st.Error, "budget") {
		t.Fatalf("budget-1 sweep: state %s, error %q", st.State, st.Error)
	}
	if st.Budget != 1 {
		t.Errorf("status budget = %d, want 1", st.Budget)
	}

	id = submit(t, ts.URL, smallReq)
	if st := waitDone(t, ts.URL, id); st.State != stateDone {
		t.Fatalf("unbudgeted rerun ended %s: %s", st.State, st.Error)
	}
}

// TestRequestTimeout: a request-level deadline cancels the sweep.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	req := smallReq
	req.Timeout = "1ns"
	id := submit(t, ts.URL, req)
	st := waitDone(t, ts.URL, id)
	if st.State != stateFailed {
		t.Fatalf("1ns sweep ended %s", st.State)
	}
}

// TestNotFound: unknown sweep ids are 404 on every per-sweep route.
func TestNotFound(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, path := range []string{"/v1/sweeps/s-999999", "/v1/sweeps/s-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestListSweeps: the list endpoint returns every submitted sweep in
// submission order, without the heavyweight rendered payload.
func TestListSweeps(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	id1 := submit(t, ts.URL, smallReq)
	waitDone(t, ts.URL, id1)
	id2 := submit(t, ts.URL, smallReq)
	waitDone(t, ts.URL, id2)

	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Sweeps []sweepStatus `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 2 || list.Sweeps[0].ID != id1 || list.Sweeps[1].ID != id2 {
		t.Fatalf("list wrong: %+v", list.Sweeps)
	}
	for _, st := range list.Sweeps {
		if st.Rendered != "" || st.Tables != nil {
			t.Errorf("list leaked the rendered payload for %s", st.ID)
		}
	}
}

// TestStatsEndpoint: /v1/stats merges runner counters, the sweep report,
// and server accounting.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	id := submit(t, ts.URL, smallReq)
	waitDone(t, ts.URL, id)
	st := fetchStatsT(t, ts.URL)
	if st.Runner.Sims == 0 {
		t.Error("runner sims missing from stats")
	}
	if st.Report.Cells == 0 {
		t.Error("sweep report missing from stats")
	}
	if st.Server.Submitted != 1 || st.Server.Completed != 1 {
		t.Errorf("server accounting wrong: %+v", st.Server)
	}
}

// TestPprofExposed: the profiling index answers.
func TestPprofExposed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: %d", resp.StatusCode)
	}
}
