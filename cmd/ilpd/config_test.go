package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// parseForTest runs the daemon's flag parsing the way run() does, without
// serving.
func parseForTest(t *testing.T, args ...string) (*flag.FlagSet, Config) {
	t.Helper()
	def := DefaultConfig()
	fs := flag.NewFlagSet("ilpd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var flagCfg Config
	fs.StringVar(&flagCfg.Addr, "addr", def.Addr, "")
	fs.IntVar(&flagCfg.Workers, "workers", def.Workers, "")
	fs.IntVar(&flagCfg.MaxSweeps, "max-sweeps", def.MaxSweeps, "")
	fs.DurationVar(&flagCfg.DrainTimeout, "drain-timeout", def.DrainTimeout, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs, flagCfg
}

// TestConfigPrecedence: defaults < config file < explicitly set flags.
func TestConfigPrecedence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ilpd.json")
	if err := os.WriteFile(path, []byte(`{
		"addr": "127.0.0.1:9999",
		"max_sweeps": 7,
		"drain_timeout": "90s"
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// The -addr flag is set explicitly, so it beats the file; max_sweeps
	// comes from the file; drain_timeout from the file; workers from the
	// defaults.
	fs, flagCfg := parseForTest(t, "-addr", ":1234")
	cfg, err := loadConfig(fs, flagCfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":1234" {
		t.Errorf("explicit flag lost to the file: addr %q", cfg.Addr)
	}
	if cfg.MaxSweeps != 7 {
		t.Errorf("file key ignored: max_sweeps %d", cfg.MaxSweeps)
	}
	if cfg.DrainTimeout != 90*time.Second {
		t.Errorf("file duration ignored: drain_timeout %v", cfg.DrainTimeout)
	}
	if cfg.Workers != DefaultConfig().Workers {
		t.Errorf("default clobbered: workers %d", cfg.Workers)
	}
}

// TestConfigFileErrors: unknown keys, bad durations, and unreadable files
// are startup errors, not silent fallbacks to defaults.
func TestConfigFileErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body, want string
	}{
		{"unknown key", `{"max_sweep": 7}`, "unknown field"},
		{"bad duration", `{"drain_timeout": "ninety"}`, "drain_timeout"},
		{"not json", `max_sweeps = 7`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			fs, flagCfg := parseForTest(t)
			if _, err := loadConfig(fs, flagCfg, path); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	fs, flagCfg := parseForTest(t)
	if _, err := loadConfig(fs, flagCfg, filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing config file accepted")
	}
}

// TestValidateConfig: self-contradictory or nonsensical configurations
// are refused at startup.
func TestValidateConfig(t *testing.T) {
	mut := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero max-sweeps", mut(func(c *Config) { c.MaxSweeps = 0 }), "max-sweeps"},
		{"zero max-degree", mut(func(c *Config) { c.MaxDegree = 0 }), "max-degree"},
		{"negative retries", mut(func(c *Config) { c.Retries = -1 }), "retries"},
		{"negative backoff", mut(func(c *Config) { c.MaxBackoff = -time.Second }), "max-backoff"},
		{"default budget over cap", mut(func(c *Config) { c.DefaultBudget = c.MaxBudget + 1 }), "max-budget"},
		{"zero default timeout", mut(func(c *Config) { c.DefaultTimeout = 0 }), "default-timeout"},
		{"default timeout over cap", mut(func(c *Config) { c.DefaultTimeout = c.MaxTimeout + 1 }), "max-timeout"},
		{"negative drain timeout", mut(func(c *Config) { c.DrainTimeout = -time.Second }), "drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateConfig(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if err := validateConfig(DefaultConfig()); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

// TestRunRejectsBadUsage: CLI misuse exits 1 with usage on stderr.
func TestRunRejectsBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"unexpected-arg"},
		{"-max-sweeps", "0"},
		{"-config", filepath.Join(t.TempDir(), "absent.json")},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Errorf("run(%v) exited %d, want 1\nstderr: %s", args, code, stderr.String())
		}
	}
}
