package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"ilp/internal/benchmarks"
	"ilp/internal/experiments"
	"ilp/internal/store"
)

// Config is the daemon's effective configuration, assembled from defaults,
// the optional -config file, and explicitly set flags (in that order).
type Config struct {
	// Addr is the listen address.
	Addr string
	// StorePath, when non-empty, backs the shared runner with the durable
	// result store: committed cells survive restarts and preload the
	// cache on the next boot.
	StorePath string
	// Workers bounds concurrent simulations across all clients.
	Workers int
	// Retries / MaxBackoff / Degrade are the fault-tolerance policy of
	// the shared runner (see experiments.Config).
	Retries    int
	MaxBackoff time.Duration
	Degrade    bool

	// MaxSweeps caps concurrently running sweeps; submissions beyond it
	// are rejected 429 (admission control, not queueing — the client owns
	// the retry policy).
	MaxSweeps int
	// MaxDegree caps the per-request swept degree (400 beyond it).
	MaxDegree int
	// MaxBudget caps the per-request instruction budget (400 beyond it);
	// DefaultBudget applies when a request does not name one. Zero
	// MaxBudget disables budget admission; zero DefaultBudget means
	// unbudgeted requests run unmetered.
	MaxBudget     int64
	DefaultBudget int64
	// DefaultTimeout / MaxTimeout bound the per-request deadline.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds the graceful-shutdown drain: in-flight sweeps
	// get this long to finish before they are cancelled.
	DrainTimeout time.Duration
}

// DefaultConfig returns the daemon defaults.
func DefaultConfig() Config {
	return Config{
		Addr:           ":7743",
		Workers:        0, // GOMAXPROCS
		Retries:        2,
		MaxBackoff:     250 * time.Millisecond,
		Degrade:        true,
		MaxSweeps:      4,
		MaxDegree:      16,
		MaxBudget:      100_000_000_000,
		DefaultBudget:  10_000_000_000,
		DefaultTimeout: 5 * time.Minute,
		MaxTimeout:     30 * time.Minute,
		DrainTimeout:   30 * time.Second,
	}
}

// SweepRequest is the POST /v1/sweeps body: which experiments to render,
// over which benchmarks and machine degrees, under what deadline and
// instruction budget. Empty lists mean "all, in paper order" — the same
// defaulting as the ilpbench CLI, so the rendered tables are byte-
// identical to its stdout.
type SweepRequest struct {
	// Experiments lists experiment ids (empty = every registered
	// experiment in the paper's canonical order).
	Experiments []string `json:"experiments,omitempty"`
	// Benchmarks restricts the suite (empty = all eight).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Degree is the machine axis: the maximum superscalar/superpipelined
	// degree swept (0 = the paper's 8).
	Degree int `json:"degree,omitempty"`
	// Timeout is the per-request deadline ("30s"; empty = server default).
	Timeout string `json:"timeout,omitempty"`
	// Budget caps the live simulated instructions this request may spend
	// (0 = server default). Cells served from the shared cache are free.
	Budget int64 `json:"budget,omitempty"`
}

// Table is one rendered experiment.
type Table struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
}

// Event is one entry of a sweep's progress stream (NDJSON on
// GET /v1/sweeps/{id}/events). Type "cell" reports one measurement cell
// resolving; "experiment" one experiment rendering; "done" is terminal.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// cell fields
	Experiment   string `json:"experiment,omitempty"`
	Benchmark    string `json:"benchmark,omitempty"`
	Machine      string `json:"machine,omitempty"`
	Fingerprint  string `json:"fingerprint,omitempty"`
	Cached       bool   `json:"cached,omitempty"`
	Degraded     bool   `json:"degraded,omitempty"`
	Instructions int64  `json:"instructions,omitempty"`
	Error        string `json:"error,omitempty"`

	// experiment fields
	Title string `json:"title,omitempty"`
	Text  string `json:"text,omitempty"`

	// done fields
	State     string   `json:"state,omitempty"`
	Cells     int      `json:"cells,omitempty"`
	Degradeds int      `json:"degraded_cells,omitempty"`
	Failed    []string `json:"failed,omitempty"`
}

// sweep states.
const (
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// sweep is one submitted request and its accumulated progress. All mutable
// state is guarded by mu; changed is closed-and-replaced on every append so
// streamers can wait without polling.
type sweep struct {
	id      string
	req     SweepRequest
	ids     []string
	budget  int64
	timeout time.Duration

	mu           sync.Mutex
	changed      chan struct{}
	events       []Event
	tables       []Table
	rendered     strings.Builder
	state        string
	errMsg       string
	failed       []string
	cells        int
	cached       int
	degraded     int
	instructions int64
	cancel       context.CancelCauseFunc
}

func (sw *sweep) appendLocked(ev Event) {
	ev.Seq = len(sw.events) + 1
	sw.events = append(sw.events, ev)
	close(sw.changed)
	sw.changed = make(chan struct{})
}

// onCell is the sweep's experiments.Observer: it runs on the runner's
// worker goroutines, so everything it touches is under sw.mu.
func (sw *sweep) onCell(ev experiments.CellEvent) {
	e := Event{
		Type: "cell", Experiment: ev.Experiment,
		Benchmark: ev.Benchmark, Machine: ev.Machine, Fingerprint: ev.Fingerprint,
		Cached: ev.Cached, Degraded: ev.Degraded, Instructions: ev.Instructions,
	}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.cells++
	if ev.Cached {
		sw.cached++
	}
	if ev.Degraded {
		sw.degraded++
	}
	if !ev.Cached {
		sw.instructions += ev.Instructions
	}
	sw.appendLocked(e)
}

func (sw *sweep) addTable(tb Table) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.tables = append(sw.tables, tb)
	fmt.Fprintf(&sw.rendered, "==== %s: %s ====\n\n%s\n", tb.ID, tb.Title, tb.Text)
	sw.appendLocked(Event{Type: "experiment", Experiment: tb.ID, Title: tb.Title, Text: tb.Text})
}

// finalize records the terminal state and the done event atomically, so a
// streamer that observes a terminal state has the complete event log.
func (sw *sweep) finalize(state, errMsg string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.state = state
	sw.errMsg = errMsg
	sw.appendLocked(Event{
		Type: "done", State: state, Error: errMsg,
		Cells: sw.cells, Degradeds: sw.degraded,
		Failed: append([]string(nil), sw.failed...),
	})
}

// sweepStatus is the GET /v1/sweeps/{id} body.
type sweepStatus struct {
	ID           string       `json:"id"`
	State        string       `json:"state"`
	Request      SweepRequest `json:"request"`
	Experiments  []string     `json:"experiments"`
	Cells        int          `json:"cells"`
	CachedCells  int          `json:"cached_cells"`
	Degraded     int          `json:"degraded_cells"`
	Instructions int64        `json:"instructions"`
	Budget       int64        `json:"budget"`
	Failed       []string     `json:"failed,omitempty"`
	Error        string       `json:"error,omitempty"`
	Tables       []Table      `json:"tables,omitempty"`
	Rendered     string       `json:"rendered,omitempty"`
}

func (sw *sweep) status(full bool) sweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sweepStatus{
		ID: sw.id, State: sw.state, Request: sw.req, Experiments: sw.ids,
		Cells: sw.cells, CachedCells: sw.cached, Degraded: sw.degraded,
		Instructions: sw.instructions, Budget: sw.budget,
		Failed: append([]string(nil), sw.failed...), Error: sw.errMsg,
	}
	if full {
		st.Tables = append([]Table(nil), sw.tables...)
		st.Rendered = sw.rendered.String()
	}
	return st
}

// serverStats is the daemon half of GET /v1/stats.
type serverStats struct {
	Submitted       int  `json:"sweeps_submitted"`
	Completed       int  `json:"sweeps_completed"`
	Failed          int  `json:"sweeps_failed"`
	RejectedBusy    int  `json:"rejected_busy"`
	RejectedInvalid int  `json:"rejected_invalid"`
	RejectedDrain   int  `json:"rejected_draining"`
	Inflight        int  `json:"inflight"`
	Draining        bool `json:"draining"`
}

// Server is the ilpd daemon: one shared runner (singleflight caches, one
// worker pool, one optional durable store) serving every HTTP client.
type Server struct {
	cfg    Config
	runner *experiments.Runner
	st     *store.Store
	mux    *http.ServeMux

	// baseCtx parents every sweep; cancelling it is the hard kill.
	baseCtx  context.Context
	hardKill context.CancelFunc

	mu       sync.Mutex
	sweeps   map[string]*sweep
	order    []string
	nextID   int
	draining bool
	ready    bool
	stats    serverStats
	wg       sync.WaitGroup
}

// errDraining is the cancellation cause of sweeps cut short by an expired
// drain deadline.
var errDraining = errors.New("ilpd: server draining: sweep cancelled at the drain deadline")

// NewServer builds the daemon around one shared runner. st may be nil
// (no durability); when set, records already in the store preload the
// cache — the daemon always resumes, that is its point.
func NewServer(cfg Config, st *store.Store) *Server {
	base, kill := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		runner: experiments.NewRunner(experiments.Config{
			Workers: cfg.Workers, Retries: cfg.Retries,
			MaxBackoff: cfg.MaxBackoff, Degrade: cfg.Degrade, Store: st,
		}),
		st:       st,
		mux:      http.NewServeMux(),
		baseCtx:  base,
		hardKill: kill,
		sweeps:   map[string]*sweep{},
	}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips the readiness gate. main calls it once the listener is
// accepting; orchestration probes see /readyz go true only then, so no
// traffic is routed to a daemon still opening its store.
func (s *Server) SetReady(ready bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready = ready
}

// handleHealthz is liveness: the process is up and serving HTTP. It is
// deliberately unconditional — a draining daemon is still alive, and a
// liveness probe that fails during drain would get the process killed
// mid-flight, which is exactly what draining exists to avoid.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: true only between SetReady(true) and the
// start of the drain. Load balancers use it to stop routing new sweeps
// to a daemon that would only answer them with 503s.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready, draining := s.ready, s.draining
	s.mu.Unlock()
	switch {
	case draining:
		httpError(w, http.StatusServiceUnavailable, "draining")
	case !ready:
		httpError(w, http.StatusServiceUnavailable, "starting")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// validate resolves and bounds a request: unknown names, an out-of-range
// degree, a malformed or over-cap timeout, and an over-cap budget are all
// client errors (400). It returns the expanded experiment list and the
// effective timeout and budget.
func (s *Server) validate(req *SweepRequest) (ids []string, timeout time.Duration, budget int64, err error) {
	for _, id := range req.Experiments {
		if _, err := experiments.ByID(id); err != nil {
			return nil, 0, 0, fmt.Errorf("unknown experiment %q", id)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		for _, e := range experiments.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, b := range req.Benchmarks {
		if _, err := benchmarks.ByName(b); err != nil {
			return nil, 0, 0, fmt.Errorf("unknown benchmark %q", b)
		}
	}
	if req.Degree < 0 || req.Degree > s.cfg.MaxDegree {
		return nil, 0, 0, fmt.Errorf("degree %d out of range [0, %d]", req.Degree, s.cfg.MaxDegree)
	}
	timeout = s.cfg.DefaultTimeout
	if req.Timeout != "" {
		timeout, err = time.ParseDuration(req.Timeout)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("bad timeout %q: %v", req.Timeout, err)
		}
		if timeout <= 0 {
			return nil, 0, 0, fmt.Errorf("timeout %q must be positive", req.Timeout)
		}
	}
	if s.cfg.MaxTimeout > 0 && timeout > s.cfg.MaxTimeout {
		return nil, 0, 0, fmt.Errorf("timeout %v exceeds the server cap %v", timeout, s.cfg.MaxTimeout)
	}
	budget = req.Budget
	if budget < 0 {
		return nil, 0, 0, fmt.Errorf("budget %d must be >= 0", budget)
	}
	if budget == 0 {
		budget = s.cfg.DefaultBudget
	}
	if s.cfg.MaxBudget > 0 && budget > s.cfg.MaxBudget {
		return nil, 0, 0, fmt.Errorf("budget %d exceeds the server cap %d", budget, s.cfg.MaxBudget)
	}
	return ids, timeout, budget, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.countInvalid()
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ids, timeout, budget, err := s.validate(&req)
	if err != nil {
		s.countInvalid()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.stats.RejectedDrain++
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining; not admitting new sweeps")
		return
	}
	if s.stats.Inflight >= s.cfg.MaxSweeps {
		s.stats.RejectedBusy++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%d sweeps already in flight (cap %d); retry later", s.cfg.MaxSweeps, s.cfg.MaxSweeps)
		return
	}
	s.nextID++
	sw := &sweep{
		id:  fmt.Sprintf("s-%06d", s.nextID),
		req: req, ids: ids, budget: budget, timeout: timeout,
		changed: make(chan struct{}),
		state:   stateRunning,
	}
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	s.stats.Submitted++
	s.stats.Inflight++
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runSweep(sw)
	w.Header().Set("Location", "/v1/sweeps/"+sw.id)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":     sw.id,
		"url":    "/v1/sweeps/" + sw.id,
		"events": "/v1/sweeps/" + sw.id + "/events",
	})
}

func (s *Server) countInvalid() {
	s.mu.Lock()
	s.stats.RejectedInvalid++
	s.mu.Unlock()
}

// runSweep drives one admitted sweep: the shared runner viewed through the
// request's sweep shape, under the request's deadline and instruction
// budget, streaming progress through the sweep's observer. Per-experiment
// failures are recorded and the sweep moves on (exactly like the ilpbench
// CLI); a cancellation — deadline, budget trip, client cancel, drain —
// stops it.
func (s *Server) runSweep(sw *sweep) {
	defer s.wg.Done()
	ctx, cancelT := context.WithTimeout(s.baseCtx, sw.timeout)
	defer cancelT()
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(context.Canceled)
	sw.mu.Lock()
	sw.cancel = cancel
	sw.mu.Unlock()

	runCtx := experiments.WithObserver(cctx, sw.onCell)
	if sw.budget > 0 {
		var stop context.CancelFunc
		runCtx, stop = experiments.WithInstructionBudget(runCtx, sw.budget)
		defer stop()
	}

	runner := s.runner.WithSweep(sw.req.Degree, sw.req.Benchmarks)
	var cancelled error
	for _, id := range sw.ids {
		res, err := runner.RunCtx(runCtx, id)
		if err != nil {
			if runCtx.Err() != nil {
				cancelled = err
				break
			}
			sw.mu.Lock()
			sw.failed = append(sw.failed, id)
			sw.mu.Unlock()
			continue
		}
		sw.addTable(Table{ID: res.ID, Title: res.Title, Text: res.Text})
	}

	state, errMsg := stateDone, ""
	if cancelled != nil {
		state, errMsg = stateFailed, cancelled.Error()
	}
	sw.finalize(state, errMsg)

	s.mu.Lock()
	s.stats.Inflight--
	if state == stateDone {
		s.stats.Completed++
	} else {
		s.stats.Failed++
	}
	s.mu.Unlock()
}

func (s *Server) lookup(id string) *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sw.status(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]sweepStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sweeps[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	sw.mu.Lock()
	cancel := sw.cancel
	sw.mu.Unlock()
	if cancel != nil {
		cancel(fmt.Errorf("sweep %s cancelled by client", sw.id))
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": sw.id, "state": "cancelling"})
}

// handleEvents streams the sweep's progress as NDJSON: the history so far,
// then each new event as it commits, ending with the "done" event. The
// finalize path appends "done" and sets the terminal state under one lock,
// so a terminal snapshot always carries the full log.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		sw.mu.Lock()
		batch := append([]Event(nil), sw.events[next:]...)
		terminal := sw.state != stateRunning
		ch := sw.changed
		sw.mu.Unlock()
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(batch)
		if len(batch) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// statsResponse is the GET /v1/stats body: the shared runner's cache and
// fault-tolerance counters, the sweep-level report, and the daemon's own
// admission accounting.
type statsResponse struct {
	Runner experiments.RunnerStats `json:"runner"`
	Report experiments.SweepReport `json:"report"`
	Server serverStats             `json:"server"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.stats
	st.Draining = s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{
		Runner: s.runner.Stats(),
		Report: s.runner.Report(),
		Server: st,
	})
}

// Drain is the graceful-shutdown sequence: stop admitting (new POSTs get
// 503), wait for in-flight sweeps to finish until ctx expires, cancel the
// stragglers (they unwind within the simulator's polling interval), and
// compact the store so the next boot loads a deduplicated file. Safe to
// call once; the HTTP listener keeps serving status/stats/events reads
// throughout, so clients can collect partial results of cancelled sweeps.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, sw := range s.sweeps {
			sw.mu.Lock()
			cancel := sw.cancel
			sw.mu.Unlock()
			if cancel != nil {
				cancel(errDraining)
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.st != nil {
		if err := s.st.Compact(); err != nil {
			return fmt.Errorf("compacting store on drain: %w", err)
		}
	}
	return nil
}

// Close hard-kills every sweep context. Call after Drain (or instead of
// it, when tearing down tests).
func (s *Server) Close() { s.hardKill() }
