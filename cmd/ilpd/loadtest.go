package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"
)

// loadReport is what -loadtest prints: end-to-end sweep throughput of an
// in-process daemon under concurrent clients, plus how much of the offered
// load the shared cache absorbed.
type loadReport struct {
	Clients     int
	Sweeps      int           // sweeps completed (== submitted on success)
	Retries429  int           // submissions that hit the admission cap and retried
	Elapsed     time.Duration //
	Sims        int64         // live simulations performed by the runner
	SimHits     int64         // measure requests served from / joined onto the cache
	CachedCells int           // observer-counted cached cells across all sweeps
	TotalCells  int           // observer-counted cells across all sweeps
}

func (r loadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest: %d clients x %d sweeps: %d sweeps in %.2fs = %.1f sweeps/sec\n",
		r.Clients, r.Sweeps/max(r.Clients, 1), r.Sweeps, r.Elapsed.Seconds(),
		float64(r.Sweeps)/r.Elapsed.Seconds())
	fmt.Fprintf(&b, "loadtest: %d live simulations, %d cache joins; %d/%d cells served cached\n",
		r.Sims, r.SimHits, r.CachedCells, r.TotalCells)
	fmt.Fprintf(&b, "loadtest: %d submissions deferred by admission control (429)\n", r.Retries429)
	return b.String()
}

// ltRequest is the sweep every load-test client submits: one small real
// experiment (tab2-1, one benchmark, degree 2), so the first client pays
// for the simulations and everyone else exercises the coalescing path —
// the daemon's intended steady state.
var ltRequest = SweepRequest{
	Experiments: []string{"tab2-1"},
	Benchmarks:  []string{"whet"},
	Degree:      2,
}

// runLoadTest boots an in-process server on an httptest listener and
// hammers it with clients*sweepsEach submissions, polling each sweep to
// completion. 429 responses back off and retry — admission control is part
// of the protocol under test, not a failure.
func runLoadTest(ctx context.Context, cfg Config, clients, sweepsEach int, stderr io.Writer) (loadReport, error) {
	if clients <= 0 || sweepsEach <= 0 {
		return loadReport{}, fmt.Errorf("clients and sweeps must be positive (have %d, %d)", clients, sweepsEach)
	}
	srv := NewServer(cfg, nil)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		mu     sync.Mutex
		rep    loadReport
		firstE error
		wg     sync.WaitGroup
	)
	rep.Clients = clients
	record := func(st sweepStatus, retried int, err error) {
		mu.Lock()
		defer mu.Unlock()
		rep.Retries429 += retried
		if err != nil {
			if firstE == nil {
				firstE = err
			}
			return
		}
		rep.Sweeps++
		rep.TotalCells += st.Cells
		rep.CachedCells += st.CachedCells
	}

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sweepsEach; i++ {
				st, retried, err := runOneSweep(ctx, ts.URL, ltRequest)
				record(st, retried, err)
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	if firstE != nil {
		return rep, firstE
	}
	stats, err := fetchStats(ctx, ts.URL)
	if err != nil {
		return rep, err
	}
	rep.Sims = stats.Runner.Sims
	rep.SimHits = stats.Runner.SimHits
	return rep, nil
}

// runOneSweep submits one sweep and polls it to a terminal state,
// retrying 429 with a short backoff. It returns the final status and how
// many times admission deferred the submission.
func runOneSweep(ctx context.Context, base string, req SweepRequest) (sweepStatus, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return sweepStatus{}, 0, err
	}
	var id string
	retried := 0
	for {
		resp, err := httpDo(ctx, http.MethodPost, base+"/v1/sweeps", body)
		if err != nil {
			return sweepStatus{}, retried, err
		}
		if resp.code == http.StatusTooManyRequests {
			retried++
			select {
			case <-time.After(20 * time.Millisecond):
				continue
			case <-ctx.Done():
				return sweepStatus{}, retried, ctx.Err()
			}
		}
		if resp.code != http.StatusAccepted {
			return sweepStatus{}, retried, fmt.Errorf("POST /v1/sweeps: %d: %s", resp.code, resp.body)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(resp.body, &acc); err != nil {
			return sweepStatus{}, retried, err
		}
		id = acc.ID
		break
	}
	for {
		resp, err := httpDo(ctx, http.MethodGet, base+"/v1/sweeps/"+id, nil)
		if err != nil {
			return sweepStatus{}, retried, err
		}
		if resp.code != http.StatusOK {
			return sweepStatus{}, retried, fmt.Errorf("GET /v1/sweeps/%s: %d: %s", id, resp.code, resp.body)
		}
		var st sweepStatus
		if err := json.Unmarshal(resp.body, &st); err != nil {
			return sweepStatus{}, retried, err
		}
		if st.State != stateRunning {
			if st.State != stateDone {
				return st, retried, fmt.Errorf("sweep %s ended %s: %s", id, st.State, st.Error)
			}
			return st, retried, nil
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return sweepStatus{}, retried, ctx.Err()
		}
	}
}

func fetchStats(ctx context.Context, base string) (statsResponse, error) {
	resp, err := httpDo(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return statsResponse{}, err
	}
	if resp.code != http.StatusOK {
		return statsResponse{}, fmt.Errorf("GET /v1/stats: %d: %s", resp.code, resp.body)
	}
	var st statsResponse
	err = json.Unmarshal(resp.body, &st)
	return st, err
}

type httpResult struct {
	code int
	body []byte
}

func httpDo(ctx context.Context, method, url string, body []byte) (httpResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return httpResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return httpResult{}, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return httpResult{}, err
	}
	return httpResult{code: resp.StatusCode, body: buf}, nil
}
