// Command ilpd serves the paper's experiment sweeps as a long-running
// HTTP/JSON daemon: one shared experiments.Runner — singleflight caches,
// one worker pool, one optional durable store — behind a small REST API,
// so many clients can sweep concurrently and identical requests coalesce
// into one simulation.
//
// API:
//
//	POST   /v1/sweeps             submit a sweep (202 + id; 400 invalid,
//	                              429 at the admission cap, 503 draining)
//	GET    /v1/sweeps             list submitted sweeps
//	GET    /v1/sweeps/{id}        status + rendered tables (byte-identical
//	                              to ilpbench stdout)
//	DELETE /v1/sweeps/{id}        cancel a running sweep
//	GET    /v1/sweeps/{id}/events stream progress as NDJSON: one line per
//	                              resolved cell, per rendered experiment,
//	                              then a terminal "done" line
//	GET    /v1/stats              runner cache/fault counters + sweep report
//	                              + daemon admission accounting
//	GET    /debug/pprof/          live profiling
//
// Every sweep runs under a per-request deadline and instruction budget
// (server-capped); cells served from the shared cache are free against the
// budget. SIGINT/SIGTERM drains gracefully: new submissions get 503,
// in-flight sweeps get -drain-timeout to finish before they are cancelled,
// the store is compacted, and the process exits 0. A second signal kills
// immediately.
//
// Configuration is flags over an optional JSON -config file over built-in
// defaults (an explicitly set flag always wins).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ilp/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileConfig is the JSON shape of -config. Pointers distinguish "absent"
// from zero values, so a file can set exactly the keys it means to.
type fileConfig struct {
	Addr           *string `json:"addr,omitempty"`
	Store          *string `json:"store,omitempty"`
	Workers        *int    `json:"workers,omitempty"`
	Retries        *int    `json:"retries,omitempty"`
	MaxBackoff     *string `json:"max_backoff,omitempty"`
	Degrade        *bool   `json:"degrade,omitempty"`
	MaxSweeps      *int    `json:"max_sweeps,omitempty"`
	MaxDegree      *int    `json:"max_degree,omitempty"`
	MaxBudget      *int64  `json:"max_budget,omitempty"`
	DefaultBudget  *int64  `json:"default_budget,omitempty"`
	DefaultTimeout *string `json:"default_timeout,omitempty"`
	MaxTimeout     *string `json:"max_timeout,omitempty"`
	DrainTimeout   *string `json:"drain_timeout,omitempty"`
}

func (fc *fileConfig) apply(cfg *Config) error {
	setDur := func(key string, v *string, into *time.Duration) error {
		if v == nil {
			return nil
		}
		d, err := time.ParseDuration(*v)
		if err != nil {
			return fmt.Errorf("%s: %v", key, err)
		}
		*into = d
		return nil
	}
	if fc.Addr != nil {
		cfg.Addr = *fc.Addr
	}
	if fc.Store != nil {
		cfg.StorePath = *fc.Store
	}
	if fc.Workers != nil {
		cfg.Workers = *fc.Workers
	}
	if fc.Retries != nil {
		cfg.Retries = *fc.Retries
	}
	if fc.Degrade != nil {
		cfg.Degrade = *fc.Degrade
	}
	if fc.MaxSweeps != nil {
		cfg.MaxSweeps = *fc.MaxSweeps
	}
	if fc.MaxDegree != nil {
		cfg.MaxDegree = *fc.MaxDegree
	}
	if fc.MaxBudget != nil {
		cfg.MaxBudget = *fc.MaxBudget
	}
	if fc.DefaultBudget != nil {
		cfg.DefaultBudget = *fc.DefaultBudget
	}
	if err := setDur("max_backoff", fc.MaxBackoff, &cfg.MaxBackoff); err != nil {
		return err
	}
	if err := setDur("default_timeout", fc.DefaultTimeout, &cfg.DefaultTimeout); err != nil {
		return err
	}
	if err := setDur("max_timeout", fc.MaxTimeout, &cfg.MaxTimeout); err != nil {
		return err
	}
	return setDur("drain_timeout", fc.DrainTimeout, &cfg.DrainTimeout)
}

// loadConfig assembles the effective config: defaults, then the -config
// file's keys, then every flag the command line explicitly set.
func loadConfig(fs *flag.FlagSet, flagCfg Config, configPath string) (Config, error) {
	cfg := DefaultConfig()
	if configPath != "" {
		buf, err := os.ReadFile(configPath)
		if err != nil {
			return cfg, err
		}
		var fc fileConfig
		dec := json.NewDecoder(bytes.NewReader(buf))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&fc); err != nil {
			return cfg, fmt.Errorf("%s: %v", configPath, err)
		}
		if err := fc.apply(&cfg); err != nil {
			return cfg, fmt.Errorf("%s: %v", configPath, err)
		}
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr":
			cfg.Addr = flagCfg.Addr
		case "store":
			cfg.StorePath = flagCfg.StorePath
		case "workers":
			cfg.Workers = flagCfg.Workers
		case "retries":
			cfg.Retries = flagCfg.Retries
		case "max-backoff":
			cfg.MaxBackoff = flagCfg.MaxBackoff
		case "degrade":
			cfg.Degrade = flagCfg.Degrade
		case "max-sweeps":
			cfg.MaxSweeps = flagCfg.MaxSweeps
		case "max-degree":
			cfg.MaxDegree = flagCfg.MaxDegree
		case "max-budget":
			cfg.MaxBudget = flagCfg.MaxBudget
		case "default-budget":
			cfg.DefaultBudget = flagCfg.DefaultBudget
		case "default-timeout":
			cfg.DefaultTimeout = flagCfg.DefaultTimeout
		case "max-timeout":
			cfg.MaxTimeout = flagCfg.MaxTimeout
		case "drain-timeout":
			cfg.DrainTimeout = flagCfg.DrainTimeout
		}
	})
	return cfg, validateConfig(cfg)
}

// validateConfig rejects configurations that would admit nothing or spin:
// the same "usage error, not a request" policy as the ilpbench CLI.
func validateConfig(cfg Config) error {
	if cfg.MaxSweeps <= 0 {
		return fmt.Errorf("max-sweeps must be positive (have %d)", cfg.MaxSweeps)
	}
	if cfg.MaxDegree <= 0 {
		return fmt.Errorf("max-degree must be positive (have %d)", cfg.MaxDegree)
	}
	if cfg.Retries < 0 {
		return fmt.Errorf("retries must be >= 0 (have %d)", cfg.Retries)
	}
	if cfg.MaxBackoff < 0 {
		return fmt.Errorf("max-backoff must be >= 0 (have %v)", cfg.MaxBackoff)
	}
	if cfg.MaxBudget < 0 || cfg.DefaultBudget < 0 {
		return fmt.Errorf("budgets must be >= 0 (have max %d, default %d)", cfg.MaxBudget, cfg.DefaultBudget)
	}
	if cfg.MaxBudget > 0 && cfg.DefaultBudget > cfg.MaxBudget {
		return fmt.Errorf("default-budget %d exceeds max-budget %d", cfg.DefaultBudget, cfg.MaxBudget)
	}
	if cfg.DefaultTimeout <= 0 {
		return fmt.Errorf("default-timeout must be positive (have %v)", cfg.DefaultTimeout)
	}
	if cfg.MaxTimeout > 0 && cfg.DefaultTimeout > cfg.MaxTimeout {
		return fmt.Errorf("default-timeout %v exceeds max-timeout %v", cfg.DefaultTimeout, cfg.MaxTimeout)
	}
	if cfg.DrainTimeout < 0 {
		return fmt.Errorf("drain-timeout must be >= 0 (have %v)", cfg.DrainTimeout)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	def := DefaultConfig()
	fs := flag.NewFlagSet("ilpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var flagCfg Config
	fs.StringVar(&flagCfg.Addr, "addr", def.Addr, "listen address")
	fs.StringVar(&flagCfg.StorePath, "store", "", "durable JSONL result store (resumed on boot, compacted on drain)")
	fs.IntVar(&flagCfg.Workers, "workers", def.Workers, "concurrent simulations across all sweeps (default: GOMAXPROCS)")
	fs.IntVar(&flagCfg.Retries, "retries", def.Retries, "retries per transiently failed compile/measurement")
	fs.DurationVar(&flagCfg.MaxBackoff, "max-backoff", def.MaxBackoff, "cap on the exponential retry backoff")
	fs.BoolVar(&flagCfg.Degrade, "degrade", def.Degrade, "render permanently failed cells as NaN rows instead of failing the experiment")
	fs.IntVar(&flagCfg.MaxSweeps, "max-sweeps", def.MaxSweeps, "concurrently running sweeps admitted before 429")
	fs.IntVar(&flagCfg.MaxDegree, "max-degree", def.MaxDegree, "largest per-request machine degree admitted")
	fs.Int64Var(&flagCfg.MaxBudget, "max-budget", def.MaxBudget, "largest per-request instruction budget admitted (0 = uncapped)")
	fs.Int64Var(&flagCfg.DefaultBudget, "default-budget", def.DefaultBudget, "instruction budget for requests that name none (0 = unmetered)")
	fs.DurationVar(&flagCfg.DefaultTimeout, "default-timeout", def.DefaultTimeout, "deadline for requests that name none")
	fs.DurationVar(&flagCfg.MaxTimeout, "max-timeout", def.MaxTimeout, "largest per-request deadline admitted (0 = uncapped)")
	fs.DurationVar(&flagCfg.DrainTimeout, "drain-timeout", def.DrainTimeout, "graceful-shutdown window before in-flight sweeps are cancelled")
	configPath := fs.String("config", "", "JSON config file (flags explicitly set on the command line win)")
	loadtest := fs.Bool("loadtest", false, "run the load-test harness against an in-process server and exit")
	ltClients := fs.Int("loadtest-clients", 8, "loadtest: concurrent clients")
	ltSweeps := fs.Int("loadtest-sweeps", 4, "loadtest: sweeps submitted per client")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ilpd: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 1
	}
	cfg, err := loadConfig(fs, flagCfg, *configPath)
	if err != nil {
		fmt.Fprintf(stderr, "ilpd: %v\n", err)
		fs.Usage()
		return 1
	}

	if *loadtest {
		rep, err := runLoadTest(context.Background(), cfg, *ltClients, *ltSweeps, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "ilpd: loadtest: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, rep.String())
		return 0
	}

	if err := serve(cfg, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "ilpd: %v\n", err)
		return 1
	}
	return 0
}

// serve runs the daemon until SIGINT/SIGTERM, then drains.
func serve(cfg Config, stdout, stderr io.Writer) error {
	var st *store.Store
	if cfg.StorePath != "" {
		var err error
		st, err = store.Open(cfg.StorePath)
		if err != nil {
			return err
		}
		defer st.Close()
		if st.Len() > 0 {
			fmt.Fprintf(stderr, "ilpd: resuming %d committed cells from %s\n", st.Len(), cfg.StorePath)
		}
	}
	srv := NewServer(cfg, st)
	defer srv.Close()

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// First signal starts the drain; restoring default handling means a
	// second signal kills the process immediately.
	context.AfterFunc(ctx, stop)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	srv.SetReady(true)
	fmt.Fprintf(stdout, "ilpd: listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "ilpd: signal received; draining (timeout %v)\n", cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	// The listener stays up through the drain so clients can read partial
	// results; only now does it stop accepting.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		if drainErr == nil {
			drainErr = err
		}
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(stderr, "ilpd: drained cleanly")
	return nil
}
