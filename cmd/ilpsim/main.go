// Command ilpsim compiles one benchmark (or a TL source file) for a chosen
// machine description, simulates it, and reports cycles, instruction mix,
// stall breakdown, and the program's output.
//
// Usage:
//
//	ilpsim [-machine name] [-level 0..4] [-unroll N] [-careful]
//	       [-width N] [-pipe M] [-temps N] [-print] <benchmark | file.tl>
//
// Machines: base, multititan, cray1, superscalar:N, superpipelined:M,
// supersuper:N:M, underpipelined.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/sim"
)

func machineByName(name string) (*machine.Config, error) {
	parts := strings.Split(strings.ToLower(name), ":")
	arg := func(i, def int) int {
		if len(parts) > i {
			if v, err := strconv.Atoi(parts[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "base", "":
		return machine.Base(), nil
	case "multititan", "titan":
		return machine.MultiTitan(), nil
	case "cray1", "cray-1", "cray":
		return machine.CRAY1(), nil
	case "superscalar", "ss":
		return machine.IdealSuperscalar(arg(1, 4)), nil
	case "superpipelined", "sp":
		return machine.Superpipelined(arg(1, 4)), nil
	case "supersuper", "ssp":
		return machine.SuperpipelinedSuperscalar(arg(1, 2), arg(2, 2)), nil
	case "underpipelined":
		return machine.Underpipelined(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

func main() {
	machineName := flag.String("machine", "base", "machine description (base, multititan, cray1, superscalar:N, superpipelined:M, supersuper:N:M, underpipelined)")
	level := flag.Int("level", 4, "optimization level 0..4 (Figure 4-8's axis)")
	unroll := flag.Int("unroll", 0, "loop unroll factor (0 = benchmark default)")
	careful := flag.Bool("careful", false, "careful unrolling (reassociation + memory disambiguation)")
	temps := flag.Int("temps", 0, "temporary registers per file (0 = default 16)")
	printOut := flag.Bool("print", false, "show program output values")
	disasm := flag.Bool("S", false, "dump disassembly instead of simulating")
	pipeline := flag.Int("pipeline", 0, "render an issue timeline for the first N dynamic instructions")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ilpsim [flags] <benchmark|file.tl>; benchmarks:", strings.Join(benchmarks.Names(), " "))
		os.Exit(2)
	}
	target := flag.Arg(0)

	var src string
	isAsm := strings.HasSuffix(target, ".s")
	unrollFactor := *unroll
	if b, err := benchmarks.ByName(target); err == nil {
		src = b.Source
		if unrollFactor == 0 {
			unrollFactor = b.DefaultUnroll
		}
	} else {
		data, ferr := os.ReadFile(target)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "ilpsim: %q is neither a benchmark (%s) nor a readable file: %v\n",
				target, strings.Join(benchmarks.Names(), " "), ferr)
			os.Exit(1)
		}
		src = string(data)
	}

	m, err := machineByName(*machineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilpsim:", err)
		os.Exit(1)
	}
	if *temps > 0 {
		m.IntTemps, m.FPTemps = *temps, *temps
	}

	var prog *isa.Program
	if isAsm {
		// Raw assembly: assemble directly, no compiler involved.
		prog, err = isa.Assemble(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ilpsim:", err)
			os.Exit(1)
		}
	} else {
		c, cerr := compiler.Compile(src, compiler.Options{
			Machine: m,
			Level:   compiler.Level(*level),
			Unroll:  unrollFactor,
			Careful: *careful,
		})
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "ilpsim:", cerr)
			os.Exit(1)
		}
		prog = c.Prog
	}
	if *disasm {
		fmt.Print(prog.Disassemble())
		return
	}

	opts := sim.Options{Machine: m}
	type slot struct {
		idx             int
		text            string
		issue, complete int64
	}
	var timeline []slot
	if *pipeline > 0 {
		opts.OnIssue = func(idx int, in *isa.Instr, issue, complete int64) {
			if len(timeline) < *pipeline {
				timeline = append(timeline, slot{idx, in.String(), issue, complete})
			}
		}
	}
	res, err := sim.Run(prog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilpsim:", err)
		os.Exit(1)
	}
	if *pipeline > 0 {
		fmt.Printf("issue timeline (first %d dynamic instructions, '#' = executing, minor cycles):\n", len(timeline))
		origin := timeline[0].issue
		for _, s := range timeline {
			width := int(s.complete - s.issue)
			if width < 1 {
				width = 1
			}
			fmt.Printf("  t=%4d  %s%s  @%d %s\n",
				s.issue-origin,
				strings.Repeat(" ", int(s.issue-origin)),
				strings.Repeat("#", width),
				s.idx, s.text)
		}
		fmt.Println()
	}

	fmt.Printf("machine:       %s (issue width %d, degree %d)\n", m.Name, m.IssueWidth, m.Degree)
	fmt.Printf("options:       level=%s unroll=%d careful=%v\n", compiler.Level(*level), unrollFactor, *careful)
	fmt.Printf("instructions:  %d (static %d)\n", res.Instructions, len(prog.Instrs))
	fmt.Printf("minor cycles:  %d\n", res.MinorCycles)
	fmt.Printf("base cycles:   %.1f\n", res.BaseCycles)
	fmt.Printf("CPI (base):    %.3f\n", res.BaseCPI())
	fmt.Printf("stalls:        data %d, write %d, unit %d, width %d, branch %d\n",
		res.Stalls.Data, res.Stalls.Write, res.Stalls.Unit, res.Stalls.Width, res.Stalls.Branch)
	fmt.Printf("class mix:\n")
	for cl, n := range res.ClassCounts {
		if n > 0 {
			fmt.Printf("  %-10s %9d (%5.1f%%)\n", isa.Class(cl), n, 100*float64(n)/float64(res.Instructions))
		}
	}
	if *printOut {
		fmt.Printf("output (%d values):\n", len(res.Output))
		for _, v := range res.Output {
			fmt.Println(" ", v)
		}
	}
}
