package ilp_test

import (
	"fmt"
	"log"

	"ilp"
)

// ExampleCompile shows the core loop: write TL, compile for a machine from
// the paper's taxonomy, simulate, inspect output and cycles.
func ExampleCompile() {
	src := `
var total: int;
func main() {
	var i: int;
	for i = 1 to 100 { total = total + i; }
	print(total);
}
`
	p, err := ilp.Compile(src, ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Output[0])
	// Output: 5050
}

// ExampleInterpret runs the reference interpreter, the semantic oracle the
// whole test suite compares the simulator against.
func ExampleInterpret() {
	out, err := ilp.Interpret(`func main() { print(6 * 7); print(1.5 + 2.0); }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out[0], out[1])
	// Output: 42 3.5
}

// ExampleHarmonicMean aggregates speedups the way the paper's figures do.
func ExampleHarmonicMean() {
	fmt.Printf("%.2f\n", ilp.HarmonicMean([]float64{1, 2, 4}))
	// Output: 1.71
}

// ExampleSuperscalar compares a wide machine against the base machine —
// Figure 4-5's measurement for one benchmark, in miniature.
func ExampleSuperscalar() {
	base, err := ilp.RunBenchmark("yacc", ilp.BaseMachine(), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	wide, err := ilp.RunBenchmark("yacc", ilp.Superscalar(8), ilp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// yacc is the paper's least-parallel benchmark: speedup well under 2.5
	// no matter how wide the machine.
	fmt.Println(wide.SpeedupOver(base) < 2.5)
	// Output: true
}
