// Package isa defines the target instruction set of the reproduction: a
// load/store RISC architecture closely modeled on the DEC WRL MultiTitan,
// the machine used by Jouppi and Wall in the ASPLOS'89 study.
//
// The package provides the instruction classes (the paper groups all
// operations into fourteen classes "selected so that operations in a given
// class are likely to have identical pipeline behavior in any machine"),
// the opcodes, the register model, a structured instruction representation,
// and a disassembler. Timing is deliberately absent: operation and issue
// latencies belong to a machine description (package machine), not to the
// ISA, exactly as in the paper's parameterizable evaluation environment.
package isa

// Class identifies one of the fourteen instruction classes of §3 of the
// paper. All instructions in a class share pipeline behavior: a machine
// description assigns an operation latency to each class and maps each
// class to a functional unit.
type Class uint8

const (
	// ClassLogical covers bitwise operations (AND, OR, XOR, ...).
	ClassLogical Class = iota
	// ClassShift covers shift operations.
	ClassShift
	// ClassAddSub covers integer add, subtract and compare operations.
	ClassAddSub
	// ClassIntMul is integer multiplication (not a "simple" operation).
	ClassIntMul
	// ClassIntDiv is integer division and remainder (not "simple").
	ClassIntDiv
	// ClassLoad covers word loads, integer and floating point.
	ClassLoad
	// ClassStore covers word stores, integer and floating point.
	ClassStore
	// ClassBranch covers conditional branches and direct jumps.
	ClassBranch
	// ClassJump covers calls, indirect jumps and returns.
	ClassJump
	// ClassFPAddSub covers floating-point add, subtract, negate,
	// comparison, and int/float conversion.
	ClassFPAddSub
	// ClassFPMul is floating-point multiplication.
	ClassFPMul
	// ClassFPDiv is floating-point division (not "simple").
	ClassFPDiv
	// ClassFPSpecial covers the long-latency math intrinsics
	// (sqrt, sin, cos, atan, exp, log); not "simple".
	ClassFPSpecial
	// ClassMove covers register moves and immediate loads.
	ClassMove

	// NumClasses is the number of instruction classes.
	NumClasses = int(ClassMove) + 1
)

var classNames = [NumClasses]string{
	"logical", "shift", "addsub", "intmul", "intdiv",
	"load", "store", "branch", "jump",
	"fpaddsub", "fpmul", "fpdiv", "fpspecial", "move",
}

// String returns the lower-case name of the class.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "class?"
}

// Classes lists all instruction classes in order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Simple reports whether the class is a "simple operation" in the paper's
// sense: "the vast majority of operations executed by the machine", such as
// integer add, logical ops, loads, stores, branches, and even floating-point
// addition and multiplication. Divides and the special intrinsics are not
// simple.
func (c Class) Simple() bool {
	switch c {
	case ClassIntDiv, ClassFPDiv, ClassFPSpecial, ClassIntMul:
		return false
	}
	return true
}

// TableGroup maps the fourteen classes onto the seven rows of Table 2-1 of
// the paper (logical, shift, add/sub, load, store, branch, FP). Move is
// folded into logical (register moves issue to the logic/ALU datapath),
// jumps into branch, and all floating point including multiply/divide into
// FP, following the table's granularity. Integer multiply and divide fold
// into FP as well: like the MultiTitan, our machine performs them in the
// floating-point datapath.
type TableGroup uint8

// Rows of Table 2-1.
const (
	GroupLogical TableGroup = iota
	GroupShift
	GroupAddSub
	GroupLoad
	GroupStore
	GroupBranch
	GroupFP

	// NumTableGroups is the number of Table 2-1 rows.
	NumTableGroups = int(GroupFP) + 1
)

var groupNames = [NumTableGroups]string{
	"logical", "shift", "add/sub", "load", "store", "branch", "FP",
}

// String returns the Table 2-1 row label.
func (g TableGroup) String() string {
	if int(g) < NumTableGroups {
		return groupNames[g]
	}
	return "group?"
}

// Group returns the Table 2-1 row for the class.
func (c Class) Group() TableGroup {
	switch c {
	case ClassLogical, ClassMove:
		return GroupLogical
	case ClassShift:
		return GroupShift
	case ClassAddSub:
		return GroupAddSub
	case ClassLoad:
		return GroupLoad
	case ClassStore:
		return GroupStore
	case ClassBranch, ClassJump:
		return GroupBranch
	default:
		return GroupFP
	}
}
