package isa

import "fmt"

// Reg names a machine register. The architecture has 64 integer registers
// r0..r63 and 64 floating-point registers f0..f63, addressed in a single
// 128-entry space so that one scoreboard covers both files: values 0..63
// are the integer file, 64..127 the floating-point file.
//
// By software convention (fixed by the code generator):
//
//	r0       always reads as zero; writes are ignored
//	r1       integer return value
//	r2..r9   integer argument registers
//	r60      stack pointer (SP)
//	r62      link register (RA), written by JAL
//	f1       floating-point return value
//	f2..f9   floating-point argument registers
//
// The remaining registers are split by the register allocator into
// expression temporaries and variable home locations according to the
// machine description, mirroring the paper's compiler: "Our compiler
// divides the register set into two disjoint parts."
type Reg uint8

// NumRegs is the size of the combined register space.
const NumRegs = 128

// Architectural register conventions.
const (
	RZero Reg = 0  // hardwired zero
	RRet  Reg = 1  // integer return value
	RArg0 Reg = 2  // first integer argument
	NArgs     = 8  // number of argument registers per file
	RSP   Reg = 60 // stack pointer
	RRA   Reg = 62 // link register

	FRet  Reg = 64 + 1 // floating-point return value
	FArg0 Reg = 64 + 2 // first floating-point argument
)

// NoReg marks an unused register operand in an instruction.
const NoReg Reg = 255

// R returns the i'th integer register.
func R(i int) Reg {
	if i < 0 || i > 63 {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register.
func F(i int) Reg {
	if i < 0 || i > 63 {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(64 + i)
}

// IsFP reports whether the register is in the floating-point file.
func (r Reg) IsFP() bool { return r >= 64 && r != NoReg }

// Index returns the register's index within its file (0..63).
func (r Reg) Index() int {
	if r.IsFP() {
		return int(r) - 64
	}
	return int(r)
}

// String returns the assembly name of the register (r7, f12, sp, ra, ...).
func (r Reg) String() string {
	switch r {
	case NoReg:
		return "-"
	case RSP:
		return "sp"
	case RRA:
		return "ra"
	}
	if r.IsFP() {
		return fmt.Sprintf("f%d", r.Index())
	}
	return fmt.Sprintf("r%d", r.Index())
}
