package isa

import (
	"fmt"
	"strings"
)

// Program is a fully linked executable image: a flat instruction stream with
// resolved branch targets plus an initialized data segment. Word 0 of the
// data segment corresponds to memory address 0; the code generator places
// globals at low addresses and the stack at the top of memory.
type Program struct {
	Instrs []Instr
	// Data is the initial contents of the data segment, in words.
	// Floating-point values are stored as IEEE-754 bit patterns.
	Data []int64
	// Entry is the index of the first instruction to execute.
	Entry int
	// Symbols maps instruction indices to labels (function entries and
	// basic-block labels), for disassembly.
	Symbols map[int]string
	// StackTop is the initial stack pointer, in words. Zero means the
	// simulator should use its default memory size.
	StackTop int64
	// Blocks lists the indices of basic-block leaders in ascending order,
	// if known. It is informational (used by diagnostics and tests).
	Blocks []int
}

// Validate checks every instruction and every branch target.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Instrs) {
		return fmt.Errorf("program: entry %d out of range (%d instructions)", p.Entry, len(p.Instrs))
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
		if in.Op.Info().Branch && in.Op != OpJr {
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("instruction %d (%s): target %d out of range", i, in.Op, in.Target)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program as assembly text with labels.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i := range p.Instrs {
		if sym, ok := p.Symbols[i]; ok {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		fmt.Fprintf(&b, "%6d\t%s\n", i, p.Instrs[i].String())
	}
	return b.String()
}

// ClassMix counts static instructions per class.
func (p *Program) ClassMix() [NumClasses]int64 {
	var mix [NumClasses]int64
	for i := range p.Instrs {
		mix[p.Instrs[i].Op.Class()]++
	}
	return mix
}
