package isa

import (
	"fmt"
	"strings"
)

// Instr is one machine instruction. The representation is unpacked for
// simulation speed and clarity; there is no binary encoding (the study never
// needed one: the paper's simulator is also instruction-level).
type Instr struct {
	Op   Opcode
	Dst  Reg   // destination register (NoReg if none)
	Src1 Reg   // first source (NoReg if unused)
	Src2 Reg   // second source / store data (NoReg if unused)
	Imm  int64 // integer immediate / address offset in words
	FImm float64
	// Target is the resolved instruction index for branches, jumps and
	// calls.
	Target int
	// Sym is an optional symbol for disassembly: branch label, callee
	// name, or the variable a memory access touches.
	Sym string
}

// Uses returns the registers the instruction reads (zero, one, or two).
// The second return value is NoReg when fewer than two are read.
func (in *Instr) Uses() (Reg, Reg) {
	info := in.Op.Info()
	switch info.NSrc {
	case 0:
		return NoReg, NoReg
	case 1:
		return in.Src1, NoReg
	default:
		return in.Src1, in.Src2
	}
}

// Def returns the register the instruction writes, or NoReg.
func (in *Instr) Def() Reg {
	if in.Op.Info().HasDst {
		return in.Dst
	}
	return NoReg
}

// String disassembles the instruction.
func (in *Instr) String() string {
	info := in.Op.Info()
	var b strings.Builder
	b.WriteString(info.Name)
	sep := " "
	emit := func(s string) { b.WriteString(sep); b.WriteString(s); sep = ", " }
	switch {
	case info.Load:
		emit(in.Dst.String())
		emit(fmt.Sprintf("%d(%s)", in.Imm, in.Src1))
	case info.Store && in.Op != OpPrinti && in.Op != OpPrintf:
		emit(in.Src2.String())
		emit(fmt.Sprintf("%d(%s)", in.Imm, in.Src1))
	default:
		if info.HasDst && in.Op != OpJal {
			emit(in.Dst.String())
		}
		for i := 0; i < info.NSrc; i++ {
			if i == 0 {
				emit(in.Src1.String())
			} else {
				emit(in.Src2.String())
			}
		}
		if info.HasImm {
			emit(fmt.Sprintf("%d", in.Imm))
		}
		if info.FImm {
			emit(fmt.Sprintf("%g", in.FImm))
		}
	}
	if info.Branch && in.Op != OpJr {
		if in.Sym != "" {
			emit(in.Sym)
		} else {
			emit(fmt.Sprintf("@%d", in.Target))
		}
	}
	if in.Sym != "" && !info.Branch {
		b.WriteString("\t; ")
		b.WriteString(in.Sym)
	}
	return b.String()
}

// Validate checks internal consistency of the instruction: that register
// operands are present exactly where the opcode requires them and that they
// live in the correct register file. It returns a descriptive error for the
// first violation found.
func (in *Instr) Validate() error {
	info := in.Op.Info()
	if int(in.Op) >= NumOpcodes {
		return fmt.Errorf("invalid opcode %d", in.Op)
	}
	checkReg := func(what string, r Reg, want bool, fp bool) error {
		if !want {
			if r != NoReg {
				return fmt.Errorf("%s: unexpected %s operand %s", info.Name, what, r)
			}
			return nil
		}
		if r == NoReg {
			return fmt.Errorf("%s: missing %s operand", info.Name, what)
		}
		if r >= NumRegs {
			return fmt.Errorf("%s: %s register %d out of range", info.Name, what, r)
		}
		if r.IsFP() != fp {
			return fmt.Errorf("%s: %s operand %s in wrong register file", info.Name, what, r)
		}
		return nil
	}
	if err := checkReg("dst", in.Dst, info.HasDst, info.DstFP); err != nil {
		return err
	}
	if err := checkReg("src1", in.Src1, info.NSrc >= 1, info.Src1FP); err != nil {
		return err
	}
	if err := checkReg("src2", in.Src2, info.NSrc >= 2, info.Src2FP); err != nil {
		return err
	}
	return nil
}
