package isa

import (
	"fmt"
	"strconv"
)

// Value is one item of program output (produced by the printi/printf
// instructions, and by the reference interpreter for the source language).
// It is the common currency for differential testing: a compiled program
// simulated on any machine configuration must print the same Values as the
// interpreter, because machine timing never changes semantics.
type Value struct {
	IsFloat bool
	I       int64
	F       float64
}

// IntValue wraps an integer output.
func IntValue(i int64) Value { return Value{I: i} }

// FloatValue wraps a floating-point output.
func FloatValue(f float64) Value { return Value{IsFloat: true, F: f} }

// String formats the value the way both the simulator and interpreter
// report it.
func (v Value) String() string {
	if v.IsFloat {
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
	return strconv.FormatInt(v.I, 10)
}

// Equal reports exact equality (bit-for-bit for floats; the compiler and
// interpreter perform identical float64 operations unless reassociation is
// enabled, so exact comparison is the right default).
func (v Value) Equal(w Value) bool {
	if v.IsFloat != w.IsFloat {
		return false
	}
	if v.IsFloat {
		return v.F == w.F || (v.F != v.F && w.F != w.F) // NaN == NaN for testing
	}
	return v.I == w.I
}

// ApproxEqual compares with a relative tolerance, for outputs of
// reassociated (carefully unrolled) floating-point code.
func (v Value) ApproxEqual(w Value, tol float64) bool {
	if v.IsFloat != w.IsFloat {
		return false
	}
	if !v.IsFloat {
		return v.I == w.I
	}
	d := v.F - w.F
	if d < 0 {
		d = -d
	}
	m := v.F
	if m < 0 {
		m = -m
	}
	if wa := w.F; wa < 0 && -wa > m {
		m = -wa
	} else if wa > m {
		m = wa
	}
	return d <= tol*(1+m)
}

// FormatValues renders a slice of values one per line, for diffing.
func FormatValues(vs []Value) string {
	s := ""
	for _, v := range vs {
		s += v.String() + "\n"
	}
	return s
}

var _ = fmt.Stringer(Value{})
