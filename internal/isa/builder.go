package isa

import "fmt"

// Builder assembles a Program incrementally, with symbolic labels resolved
// at Finish. It exists for tests, examples, and the pipeline-diagram tool;
// the compiler's code generator builds Programs directly.
type Builder struct {
	instrs  []Instr
	labels  map[string]int
	fixups  []fixup
	data    []int64
	symbols map[int]string
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{labels: map[string]int{}, symbols: map[int]string{}}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	b.symbols[len(b.instrs)] = name
	return b
}

// Emit appends an instruction.
func (b *Builder) Emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// Op emits a three-register instruction.
func (b *Builder) Op(op Opcode, dst, src1, src2 Reg) *Builder {
	return b.Emit(Instr{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// Op1 emits a two-register instruction.
func (b *Builder) Op1(op Opcode, dst, src Reg) *Builder {
	return b.Emit(Instr{Op: op, Dst: dst, Src1: src, Src2: NoReg})
}

// Imm emits a register-immediate instruction (addi, andi, slli, ...).
func (b *Builder) Imm(op Opcode, dst, src Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: op, Dst: dst, Src1: src, Src2: NoReg, Imm: imm})
}

// Li emits a load-immediate.
func (b *Builder) Li(dst Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpLi, Dst: dst, Src1: NoReg, Src2: NoReg, Imm: imm})
}

// Fli emits a floating-point load-immediate.
func (b *Builder) Fli(dst Reg, imm float64) *Builder {
	return b.Emit(Instr{Op: OpFli, Dst: dst, Src1: NoReg, Src2: NoReg, FImm: imm})
}

// Load emits lw/lf dst, off(base).
func (b *Builder) Load(op Opcode, dst, base Reg, off int64) *Builder {
	return b.Emit(Instr{Op: op, Dst: dst, Src1: base, Src2: NoReg, Imm: off})
}

// Store emits sw/sf val, off(base).
func (b *Builder) Store(op Opcode, val, base Reg, off int64) *Builder {
	return b.Emit(Instr{Op: op, Dst: NoReg, Src1: base, Src2: val, Imm: off})
}

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op Opcode, src1, src2 Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.Emit(Instr{Op: op, Dst: NoReg, Src1: src1, Src2: src2, Sym: label})
}

// Jump emits an unconditional jump to a label.
func (b *Builder) Jump(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.Emit(Instr{Op: OpJ, Dst: NoReg, Src1: NoReg, Src2: NoReg, Sym: label})
}

// Call emits jal to a label, linking through RA.
func (b *Builder) Call(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.Emit(Instr{Op: OpJal, Dst: RRA, Src1: NoReg, Src2: NoReg, Sym: label})
}

// Ret emits jr ra.
func (b *Builder) Ret() *Builder {
	return b.Emit(Instr{Op: OpJr, Dst: NoReg, Src1: RRA, Src2: NoReg})
}

// Halt emits halt.
func (b *Builder) Halt() *Builder {
	return b.Emit(Instr{Op: OpHalt, Dst: NoReg, Src1: NoReg, Src2: NoReg})
}

// Print emits printi rs.
func (b *Builder) Print(src Reg) *Builder {
	return b.Emit(Instr{Op: OpPrinti, Dst: NoReg, Src1: src, Src2: NoReg})
}

// PrintF emits printf fs.
func (b *Builder) PrintF(src Reg) *Builder {
	return b.Emit(Instr{Op: OpPrintf, Dst: NoReg, Src1: src, Src2: NoReg})
}

// Data appends words to the data segment and returns their base address.
func (b *Builder) Data(words ...int64) int64 {
	base := int64(len(b.data))
	b.data = append(b.data, words...)
	return base
}

// Pos returns the index the next instruction will have.
func (b *Builder) Pos() int { return len(b.instrs) }

// Finish resolves labels and returns the program.
func (b *Builder) Finish() (*Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", f.label)
		}
		b.instrs[f.instr].Target = target
	}
	p := &Program{
		Instrs:  b.instrs,
		Data:    b.data,
		Symbols: b.symbols,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustFinish is Finish, panicking on error. For tests and examples.
func (b *Builder) MustFinish() *Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}
