package isa

// Opcode enumerates the operations of the target architecture. The set is
// deliberately MultiTitan-like: a small load/store RISC with reg-reg ALU
// operations, compare-and-branch, and a separate floating-point file.
type Opcode uint8

const (
	// OpNop does nothing. Class move.
	OpNop Opcode = iota

	// Integer arithmetic (class addsub unless noted).
	OpAdd  // Dst = Src1 + Src2
	OpAddi // Dst = Src1 + Imm
	OpSub  // Dst = Src1 - Src2
	OpMul  // Dst = Src1 * Src2 (class intmul)
	OpDiv  // Dst = Src1 / Src2, traps on zero (class intdiv)
	OpRem  // Dst = Src1 % Src2, traps on zero (class intdiv)

	// Integer compares, result 0 or 1 (class addsub).
	OpSlt // Dst = Src1 < Src2
	OpSle // Dst = Src1 <= Src2
	OpSeq // Dst = Src1 == Src2
	OpSne // Dst = Src1 != Src2

	// Logical (class logical).
	OpAnd  // Dst = Src1 & Src2
	OpOr   // Dst = Src1 | Src2
	OpXor  // Dst = Src1 ^ Src2
	OpAndi // Dst = Src1 & Imm
	OpOri  // Dst = Src1 | Imm
	OpXori // Dst = Src1 ^ Imm

	// Shifts (class shift). Shift counts are masked to 6 bits.
	OpSll  // Dst = Src1 << Src2
	OpSrl  // Dst = uint(Src1) >> Src2
	OpSra  // Dst = Src1 >> Src2
	OpSlli // Dst = Src1 << Imm
	OpSrli // Dst = uint(Src1) >> Imm
	OpSrai // Dst = Src1 >> Imm

	// Moves and immediates (class move).
	OpLi   // Dst = Imm
	OpMov  // Dst = Src1
	OpFli  // Dst = FImm (fp file)
	OpFmov // Dst = Src1 (fp file)

	// Memory (classes load / store). Addresses are in words.
	OpLw // Dst = mem[Src1 + Imm]            (integer load)
	OpSw // mem[Src1 + Imm] = Src2           (integer store)
	OpLf // Dst = mem[Src1 + Imm]            (fp load)
	OpSf // mem[Src1 + Imm] = Src2           (fp store)

	// Control transfer (class branch). Conditional branches compare two
	// integer registers, as on the MultiTitan.
	OpBeq // if Src1 == Src2 goto Target
	OpBne // if Src1 != Src2 goto Target
	OpBlt // if Src1 <  Src2 goto Target
	OpBge // if Src1 >= Src2 goto Target
	OpBle // if Src1 <= Src2 goto Target
	OpBgt // if Src1 >  Src2 goto Target
	OpJ   // goto Target

	// Calls and returns (class jump).
	OpJal // RA = return address; goto Target
	OpJr  // goto Src1 (used for returns)

	// Floating point.
	OpFadd  // Dst = Src1 + Src2 (class fpaddsub)
	OpFsub  // Dst = Src1 - Src2 (class fpaddsub)
	OpFneg  // Dst = -Src1       (class fpaddsub)
	OpFabs  // Dst = |Src1|      (class fpaddsub)
	OpFmul  // Dst = Src1 * Src2 (class fpmul)
	OpFdiv  // Dst = Src1 / Src2 (class fpdiv)
	OpCvtif // Dst(fp) = float(Src1(int))  (class fpaddsub)
	OpCvtfi // Dst(int) = trunc(Src1(fp))  (class fpaddsub)

	// Floating-point compares; integer destination, 0 or 1 (class fpaddsub).
	OpFslt // Dst = Src1 < Src2
	OpFsle // Dst = Src1 <= Src2
	OpFseq // Dst = Src1 == Src2
	OpFsne // Dst = Src1 != Src2

	// Long-latency math intrinsics (class fpspecial).
	OpFsqrt // Dst = sqrt(Src1)
	OpFsin  // Dst = sin(Src1)
	OpFcos  // Dst = cos(Src1)
	OpFatn  // Dst = atan(Src1)
	OpFexp  // Dst = exp(Src1)
	OpFlog  // Dst = log(Src1)

	// Output and termination. Printing is modeled as a store: it ships a
	// register to the outside world through the memory system.
	OpPrinti // print Src1 as integer   (class store)
	OpPrintf // print Src1 as real      (class store)
	OpHalt   // stop the program        (class jump)

	// NumOpcodes is the number of opcodes.
	NumOpcodes = int(OpHalt) + 1
)

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name   string
	Class  Class
	HasDst bool // writes Dst
	NSrc   int  // number of register sources used (Src1, Src2)
	DstFP  bool // Dst is in the fp file
	Src1FP bool
	Src2FP bool
	HasImm bool // uses Imm
	FImm   bool // uses FImm
	Branch bool // conditional branch or direct jump (has Target)
	Cond   bool // conditional (may fall through)
	Call   bool // OpJal
	Load   bool
	Store  bool
}

var opInfos = [NumOpcodes]OpInfo{
	OpNop:    {Name: "nop", Class: ClassMove},
	OpAdd:    {Name: "add", Class: ClassAddSub, HasDst: true, NSrc: 2},
	OpAddi:   {Name: "addi", Class: ClassAddSub, HasDst: true, NSrc: 1, HasImm: true},
	OpSub:    {Name: "sub", Class: ClassAddSub, HasDst: true, NSrc: 2},
	OpMul:    {Name: "mul", Class: ClassIntMul, HasDst: true, NSrc: 2},
	OpDiv:    {Name: "div", Class: ClassIntDiv, HasDst: true, NSrc: 2},
	OpRem:    {Name: "rem", Class: ClassIntDiv, HasDst: true, NSrc: 2},
	OpSlt:    {Name: "slt", Class: ClassAddSub, HasDst: true, NSrc: 2},
	OpSle:    {Name: "sle", Class: ClassAddSub, HasDst: true, NSrc: 2},
	OpSeq:    {Name: "seq", Class: ClassAddSub, HasDst: true, NSrc: 2},
	OpSne:    {Name: "sne", Class: ClassAddSub, HasDst: true, NSrc: 2},
	OpAnd:    {Name: "and", Class: ClassLogical, HasDst: true, NSrc: 2},
	OpOr:     {Name: "or", Class: ClassLogical, HasDst: true, NSrc: 2},
	OpXor:    {Name: "xor", Class: ClassLogical, HasDst: true, NSrc: 2},
	OpAndi:   {Name: "andi", Class: ClassLogical, HasDst: true, NSrc: 1, HasImm: true},
	OpOri:    {Name: "ori", Class: ClassLogical, HasDst: true, NSrc: 1, HasImm: true},
	OpXori:   {Name: "xori", Class: ClassLogical, HasDst: true, NSrc: 1, HasImm: true},
	OpSll:    {Name: "sll", Class: ClassShift, HasDst: true, NSrc: 2},
	OpSrl:    {Name: "srl", Class: ClassShift, HasDst: true, NSrc: 2},
	OpSra:    {Name: "sra", Class: ClassShift, HasDst: true, NSrc: 2},
	OpSlli:   {Name: "slli", Class: ClassShift, HasDst: true, NSrc: 1, HasImm: true},
	OpSrli:   {Name: "srli", Class: ClassShift, HasDst: true, NSrc: 1, HasImm: true},
	OpSrai:   {Name: "srai", Class: ClassShift, HasDst: true, NSrc: 1, HasImm: true},
	OpLi:     {Name: "li", Class: ClassMove, HasDst: true, HasImm: true},
	OpMov:    {Name: "mov", Class: ClassMove, HasDst: true, NSrc: 1},
	OpFli:    {Name: "fli", Class: ClassMove, HasDst: true, DstFP: true, FImm: true},
	OpFmov:   {Name: "fmov", Class: ClassMove, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpLw:     {Name: "lw", Class: ClassLoad, HasDst: true, NSrc: 1, HasImm: true, Load: true},
	OpSw:     {Name: "sw", Class: ClassStore, NSrc: 2, HasImm: true, Store: true},
	OpLf:     {Name: "lf", Class: ClassLoad, HasDst: true, NSrc: 1, HasImm: true, DstFP: true, Load: true},
	OpSf:     {Name: "sf", Class: ClassStore, NSrc: 2, HasImm: true, Src2FP: true, Store: true},
	OpBeq:    {Name: "beq", Class: ClassBranch, NSrc: 2, Branch: true, Cond: true},
	OpBne:    {Name: "bne", Class: ClassBranch, NSrc: 2, Branch: true, Cond: true},
	OpBlt:    {Name: "blt", Class: ClassBranch, NSrc: 2, Branch: true, Cond: true},
	OpBge:    {Name: "bge", Class: ClassBranch, NSrc: 2, Branch: true, Cond: true},
	OpBle:    {Name: "ble", Class: ClassBranch, NSrc: 2, Branch: true, Cond: true},
	OpBgt:    {Name: "bgt", Class: ClassBranch, NSrc: 2, Branch: true, Cond: true},
	OpJ:      {Name: "j", Class: ClassBranch, Branch: true},
	OpJal:    {Name: "jal", Class: ClassJump, Branch: true, Call: true, HasDst: true},
	OpJr:     {Name: "jr", Class: ClassJump, NSrc: 1, Branch: true},
	OpFadd:   {Name: "fadd", Class: ClassFPAddSub, HasDst: true, NSrc: 2, DstFP: true, Src1FP: true, Src2FP: true},
	OpFsub:   {Name: "fsub", Class: ClassFPAddSub, HasDst: true, NSrc: 2, DstFP: true, Src1FP: true, Src2FP: true},
	OpFneg:   {Name: "fneg", Class: ClassFPAddSub, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFabs:   {Name: "fabs", Class: ClassFPAddSub, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFmul:   {Name: "fmul", Class: ClassFPMul, HasDst: true, NSrc: 2, DstFP: true, Src1FP: true, Src2FP: true},
	OpFdiv:   {Name: "fdiv", Class: ClassFPDiv, HasDst: true, NSrc: 2, DstFP: true, Src1FP: true, Src2FP: true},
	OpCvtif:  {Name: "cvtif", Class: ClassFPAddSub, HasDst: true, NSrc: 1, DstFP: true},
	OpCvtfi:  {Name: "cvtfi", Class: ClassFPAddSub, HasDst: true, NSrc: 1, Src1FP: true},
	OpFslt:   {Name: "fslt", Class: ClassFPAddSub, HasDst: true, NSrc: 2, Src1FP: true, Src2FP: true},
	OpFsle:   {Name: "fsle", Class: ClassFPAddSub, HasDst: true, NSrc: 2, Src1FP: true, Src2FP: true},
	OpFseq:   {Name: "fseq", Class: ClassFPAddSub, HasDst: true, NSrc: 2, Src1FP: true, Src2FP: true},
	OpFsne:   {Name: "fsne", Class: ClassFPAddSub, HasDst: true, NSrc: 2, Src1FP: true, Src2FP: true},
	OpFsqrt:  {Name: "fsqrt", Class: ClassFPSpecial, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFsin:   {Name: "fsin", Class: ClassFPSpecial, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFcos:   {Name: "fcos", Class: ClassFPSpecial, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFatn:   {Name: "fatn", Class: ClassFPSpecial, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFexp:   {Name: "fexp", Class: ClassFPSpecial, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpFlog:   {Name: "flog", Class: ClassFPSpecial, HasDst: true, NSrc: 1, DstFP: true, Src1FP: true},
	OpPrinti: {Name: "printi", Class: ClassStore, NSrc: 1, Store: true},
	OpPrintf: {Name: "printf", Class: ClassStore, NSrc: 1, Src1FP: true, Store: true},
	OpHalt:   {Name: "halt", Class: ClassJump},
}

// Info returns the static description of the opcode.
func (op Opcode) Info() *OpInfo {
	if int(op) < NumOpcodes {
		return &opInfos[op]
	}
	return &OpInfo{Name: "op?"}
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string { return op.Info().Name }

// Class returns the instruction class of the opcode.
func (op Opcode) Class() Class { return op.Info().Class }
