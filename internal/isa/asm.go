package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembly text in the disassembler's syntax back into a
// Program, completing the toolchain round trip: Program -> Disassemble ->
// Assemble -> identical Program. Lines look like:
//
//	label:
//	    add r3, r1, r2
//	    lw r4, 8(sp)
//	    beq r1, r2, label
//	    fli f2, 1.5
//	    ; comment (also "//" and text after "\t;")
//
// Instruction indices in the input (the disassembler's leading numbers)
// are ignored; labels and mnemonics carry all the information.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		opByName: map[string]Opcode{},
		labels:   map[string]int{},
	}
	for op := 0; op < NumOpcodes; op++ {
		a.opByName[Opcode(op).String()] = Opcode(op)
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	p := &Program{
		Instrs:  a.instrs,
		Data:    a.data,
		Symbols: a.symbols,
	}
	for _, f := range a.fixups {
		pos, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: line %d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instr].Target = pos
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

type asmFixup struct {
	instr int
	label string
	line  int
}

type assembler struct {
	opByName map[string]Opcode
	labels   map[string]int
	symbols  map[int]string
	instrs   []Instr
	data     []int64
	fixups   []asmFixup
}

func (a *assembler) run(src string) error {
	a.symbols = map[int]string{}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		// Strip comments.
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Directives.
		if strings.HasPrefix(line, ".data") {
			fields := strings.Fields(line)[1:]
			for _, f := range fields {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return fmt.Errorf("asm: line %d: bad data word %q", ln+1, f)
				}
				a.data = append(a.data, v)
			}
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if name == "" || strings.ContainsAny(name, " \t,()") {
				break // a colon inside something else; not a label
			}
			if _, dup := a.labels[name]; dup {
				return fmt.Errorf("asm: line %d: duplicate label %q", ln+1, name)
			}
			a.labels[name] = len(a.instrs)
			a.symbols[len(a.instrs)] = name
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		// Drop a leading instruction index if present (disassembler
		// output).
		fields := strings.Fields(line)
		if _, err := strconv.Atoi(fields[0]); err == nil {
			fields = fields[1:]
		}
		if len(fields) == 0 {
			continue
		}
		if err := a.instr(ln+1, fields[0], strings.TrimSpace(strings.TrimPrefix(strings.Join(fields, " "), fields[0]))); err != nil {
			return err
		}
	}
	return nil
}

// parseReg parses r7, f12, sp, ra, or "-".
func parseReg(tok string) (Reg, error) {
	switch tok {
	case "sp":
		return RSP, nil
	case "ra":
		return RRA, nil
	case "-":
		return NoReg, nil
	}
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'f') {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n <= 63 {
			if tok[0] == 'f' {
				return F(n), nil
			}
			return R(n), nil
		}
	}
	return NoReg, fmt.Errorf("bad register %q", tok)
}

// parseMem parses "imm(base)".
func parseMem(tok string) (Reg, int64, error) {
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return NoReg, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	imm, err := strconv.ParseInt(tok[:open], 10, 64)
	if err != nil {
		return NoReg, 0, fmt.Errorf("bad offset in %q", tok)
	}
	base, err := parseReg(tok[open+1 : len(tok)-1])
	if err != nil {
		return NoReg, 0, err
	}
	return base, imm, nil
}

func (a *assembler) instr(line int, mnemonic, rest string) error {
	op, ok := a.opByName[mnemonic]
	if !ok {
		return fmt.Errorf("asm: line %d: unknown mnemonic %q", line, mnemonic)
	}
	info := op.Info()
	var ops []string
	for _, f := range strings.Split(rest, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			ops = append(ops, f)
		}
	}
	in := Instr{Op: op, Dst: NoReg, Src1: NoReg, Src2: NoReg}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("asm: line %d: %s takes %d operands, got %d", line, mnemonic, n, len(ops))
		}
		return nil
	}
	var err error
	fail := func(e error) error { return fmt.Errorf("asm: line %d: %w", line, e) }

	switch {
	case info.Load:
		if err = need(2); err != nil {
			return err
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return fail(err)
		}
		if in.Src1, in.Imm, err = parseMem(ops[1]); err != nil {
			return fail(err)
		}
	case info.Store && op != OpPrinti && op != OpPrintf:
		if err = need(2); err != nil {
			return err
		}
		if in.Src2, err = parseReg(ops[0]); err != nil {
			return fail(err)
		}
		if in.Src1, in.Imm, err = parseMem(ops[1]); err != nil {
			return fail(err)
		}
	case info.Branch && op != OpJr:
		// beq r1, r2, label | j label | jal label
		want := info.NSrc + 1
		if err = need(want); err != nil {
			return err
		}
		if info.NSrc >= 1 {
			if in.Src1, err = parseReg(ops[0]); err != nil {
				return fail(err)
			}
		}
		if info.NSrc >= 2 {
			if in.Src2, err = parseReg(ops[1]); err != nil {
				return fail(err)
			}
		}
		label := ops[len(ops)-1]
		if strings.HasPrefix(label, "@") {
			t, cerr := strconv.Atoi(label[1:])
			if cerr != nil {
				return fail(fmt.Errorf("bad target %q", label))
			}
			in.Target = t
		} else {
			in.Sym = label
			a.fixups = append(a.fixups, asmFixup{len(a.instrs), label, line})
		}
		if op == OpJal {
			in.Dst = RRA
		}
	default:
		idx := 0
		take := func() (string, error) {
			if idx >= len(ops) {
				return "", fmt.Errorf("missing operand for %s", mnemonic)
			}
			idx++
			return ops[idx-1], nil
		}
		if info.HasDst {
			tok, terr := take()
			if terr != nil {
				return fail(terr)
			}
			if in.Dst, err = parseReg(tok); err != nil {
				return fail(err)
			}
		}
		for s := 0; s < info.NSrc; s++ {
			tok, terr := take()
			if terr != nil {
				return fail(terr)
			}
			r, rerr := parseReg(tok)
			if rerr != nil {
				return fail(rerr)
			}
			if s == 0 {
				in.Src1 = r
			} else {
				in.Src2 = r
			}
		}
		if info.HasImm {
			tok, terr := take()
			if terr != nil {
				return fail(terr)
			}
			if in.Imm, err = strconv.ParseInt(tok, 10, 64); err != nil {
				return fail(fmt.Errorf("bad immediate %q", tok))
			}
		}
		if info.FImm {
			tok, terr := take()
			if terr != nil {
				return fail(terr)
			}
			if in.FImm, err = strconv.ParseFloat(tok, 64); err != nil {
				return fail(fmt.Errorf("bad float immediate %q", tok))
			}
		}
		if idx != len(ops) {
			return fail(fmt.Errorf("%s: %d extra operands", mnemonic, len(ops)-idx))
		}
	}
	a.instrs = append(a.instrs, in)
	return nil
}
