package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
start:
	li r10, 5
	li r11, 7
	add r12, r10, r11
	printi r12
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 5 {
		t.Fatalf("instrs = %d", len(p.Instrs))
	}
	if p.Instrs[2].Op != OpAdd || p.Instrs[2].Dst != R(12) {
		t.Errorf("add parsed as %s", &p.Instrs[2])
	}
}

func TestAssembleMemoryAndBranches(t *testing.T) {
	p, err := Assemble(`
.data 10 20 30
main:
	lw r10, 1(r0)
	sw r10, 2(sp)
	lf f10, 0(r0)
	sf f10, 2(r0)
loop:
	addi r10, r10, -1
	bgt r10, r0, loop
	jal main
	jr ra
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3 || p.Data[1] != 20 {
		t.Errorf("data = %v", p.Data)
	}
	var br *Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpBgt {
			br = &p.Instrs[i]
		}
	}
	if br == nil || p.Instrs[br.Target].Op != OpAddi {
		t.Error("branch target not resolved to loop label")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, substr string
	}{
		{"frobnicate r1, r2", "unknown mnemonic"},
		{"add r1", "operand"},
		{"add r1, r2, r3, r4", "operand"},
		{"lw r1, r2", "memory operand"},
		{"beq r1, r2, nowhere\nhalt", "undefined label"},
		{"li rx, 5", "register"},
		{"li r1, banana", "immediate"},
		{"x:\nx:\nhalt", "duplicate label"},
		{".data 1 two", "data word"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%q: error %v, want mention of %q", c.src, err, c.substr)
		}
	}
}

// TestRoundTrip: disassembling and reassembling a built program reproduces
// the instruction stream exactly.
func TestAssembleRoundTrip(t *testing.T) {
	b := NewBuilder()
	addr := b.Data(5, 6, 7)
	b.Label("main")
	b.Li(R(10), addr)
	b.Load(OpLw, R(11), R(10), 1)
	b.Fli(F(10), 2.5)
	b.Op(OpFmul, F(11), F(10), F(10))
	b.PrintF(F(11))
	b.Label("loop")
	b.Imm(OpAddi, R(11), R(11), -1)
	b.Branch(OpBgt, R(11), RZero, "loop")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Store(OpSw, R(11), R(10), 0)
	b.Ret()
	orig := b.MustFinish()

	text := ".data 5 6 7\n" + orig.Disassemble()
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, text)
	}
	if len(back.Instrs) != len(orig.Instrs) {
		t.Fatalf("instr count %d != %d", len(back.Instrs), len(orig.Instrs))
	}
	for i := range orig.Instrs {
		a, bI := orig.Instrs[i], back.Instrs[i]
		a.Sym, bI.Sym = "", "" // symbols are display-only
		if a != bI {
			t.Errorf("instr %d: %v != %v", i, orig.Instrs[i].String(), back.Instrs[i].String())
		}
	}
	if len(back.Data) != 3 || back.Data[2] != 7 {
		t.Errorf("data lost: %v", back.Data)
	}
}

// TestAssembleRoundTripProperty: random single instructions survive the
// disassemble/assemble round trip bit-for-bit.
func TestAssembleRoundTripProperty(t *testing.T) {
	seed := uint64(99)
	rnd := func(m int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % m
	}
	reg := func(fp bool) Reg {
		if fp {
			return F(rnd(64))
		}
		return R(rnd(64))
	}
	for trial := 0; trial < 500; trial++ {
		op := Opcode(rnd(NumOpcodes))
		info := op.Info()
		in := Instr{Op: op, Dst: NoReg, Src1: NoReg, Src2: NoReg}
		if info.HasDst {
			in.Dst = reg(info.DstFP)
		}
		if op == OpJal {
			in.Dst = RRA
		}
		if info.NSrc >= 1 {
			in.Src1 = reg(info.Src1FP)
		}
		if info.NSrc >= 2 {
			in.Src2 = reg(info.Src2FP)
		}
		if info.HasImm {
			in.Imm = int64(rnd(2000) - 1000)
		}
		if info.FImm {
			in.FImm = float64(rnd(1000)) / 8.0
		}
		if info.Load || (info.Store && op != OpPrinti && op != OpPrintf) {
			if in.Imm < 0 {
				in.Imm = -in.Imm // keep memory offsets printable as-is
			}
		}
		// Build a tiny program: label so branches have a target.
		b := NewBuilder()
		b.Label("l0")
		if info.Branch && op != OpJr {
			in.Target = 0
			in.Sym = "l0"
		}
		b.Emit(in)
		b.Halt()
		p, err := b.Finish()
		if err != nil {
			t.Fatalf("trial %d: build: %v (%s)", trial, err, in.String())
		}
		back, err := Assemble(p.Disassemble())
		if err != nil {
			t.Fatalf("trial %d: reassemble %q: %v", trial, in.String(), err)
		}
		got, want := back.Instrs[0], p.Instrs[0]
		got.Sym, want.Sym = "", ""
		if got != want {
			t.Fatalf("trial %d: round trip %q -> %q", trial, want.String(), got.String())
		}
	}
}
