package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		s := c.String()
		if s == "" || s == "class?" {
			t.Errorf("class %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if len(seen) != 14 {
		t.Errorf("paper requires fourteen instruction classes, have %d", len(seen))
	}
}

func TestClassSimple(t *testing.T) {
	// §2: "integer add, logical ops, loads, stores, branches, and even
	// floating-point addition and multiplication are simple operations.
	// Not included ... divide and cache misses."
	for _, c := range []Class{ClassLogical, ClassShift, ClassAddSub, ClassLoad, ClassStore, ClassBranch, ClassFPAddSub, ClassFPMul, ClassMove, ClassJump} {
		if !c.Simple() {
			t.Errorf("class %v should be simple", c)
		}
	}
	for _, c := range []Class{ClassIntDiv, ClassFPDiv, ClassFPSpecial, ClassIntMul} {
		if c.Simple() {
			t.Errorf("class %v should not be simple", c)
		}
	}
}

func TestClassGroups(t *testing.T) {
	// Every class folds into exactly one Table 2-1 row, and every row is
	// populated.
	var rows [NumTableGroups]int
	for _, c := range Classes() {
		g := c.Group()
		if int(g) >= NumTableGroups {
			t.Fatalf("class %v maps to invalid group %d", c, g)
		}
		rows[g]++
	}
	for g, n := range rows {
		if n == 0 {
			t.Errorf("Table 2-1 row %v has no classes", TableGroup(g))
		}
	}
}

func TestRegNaming(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R(0), "r0"}, {R(7), "r7"}, {F(0), "f0"}, {F(63), "f63"},
		{RSP, "sp"}, {RRA, "ra"}, {NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg %d String = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegFileProperties(t *testing.T) {
	// Property: R(i) and F(i) round-trip through Index and file checks.
	f := func(i uint8) bool {
		n := int(i % 64)
		r := R(n)
		fr := F(n)
		return !r.IsFP() && fr.IsFP() && r.Index() == n && fr.Index() == n && r != fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpInfoComplete(t *testing.T) {
	for op := 0; op < NumOpcodes; op++ {
		info := Opcode(op).Info()
		if info.Name == "" {
			t.Errorf("opcode %d has no info", op)
		}
		if int(info.Class) >= NumClasses {
			t.Errorf("opcode %s has invalid class", info.Name)
		}
	}
}

func TestInstrValidate(t *testing.T) {
	good := []Instr{
		{Op: OpAdd, Dst: R(3), Src1: R(1), Src2: R(2)},
		{Op: OpAddi, Dst: R(3), Src1: R(1), Src2: NoReg, Imm: 4},
		{Op: OpFadd, Dst: F(3), Src1: F(1), Src2: F(2)},
		{Op: OpCvtif, Dst: F(3), Src1: R(1), Src2: NoReg},
		{Op: OpCvtfi, Dst: R(3), Src1: F(1), Src2: NoReg},
		{Op: OpLw, Dst: R(3), Src1: R(1), Src2: NoReg, Imm: 8},
		{Op: OpSf, Dst: NoReg, Src1: R(1), Src2: F(2), Imm: 8},
		{Op: OpHalt, Dst: NoReg, Src1: NoReg, Src2: NoReg},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", in.Op, err)
		}
	}
	bad := []Instr{
		{Op: OpAdd, Dst: F(3), Src1: R(1), Src2: R(2)},  // dst in wrong file
		{Op: OpAdd, Dst: R(3), Src1: F(1), Src2: R(2)},  // src in wrong file
		{Op: OpAdd, Dst: NoReg, Src1: R(1), Src2: R(2)}, // missing dst
		{Op: OpHalt, Dst: R(1), Src1: NoReg, Src2: NoReg},
		{Op: OpFadd, Dst: F(3), Src1: F(1), Src2: R(2)},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%s %v/%v/%v: expected validation error", in.Op, in.Dst, in.Src1, in.Src2)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Dst: R(3), Src1: R(1), Src2: R(2)}, "add r3, r1, r2"},
		{Instr{Op: OpAddi, Dst: R(3), Src1: R(1), Src2: NoReg, Imm: -4}, "addi r3, r1, -4"},
		{Instr{Op: OpLw, Dst: R(3), Src1: RSP, Src2: NoReg, Imm: 2}, "lw r3, 2(sp)"},
		{Instr{Op: OpSw, Dst: NoReg, Src1: RSP, Src2: R(4), Imm: 1}, "sw r4, 1(sp)"},
		{Instr{Op: OpBeq, Dst: NoReg, Src1: R(1), Src2: R(2), Sym: "loop"}, "beq r1, r2, loop"},
		{Instr{Op: OpFli, Dst: F(2), Src1: NoReg, Src2: NoReg, FImm: 1.5}, "fli f2, 1.5"},
		{Instr{Op: OpJr, Dst: NoReg, Src1: RRA, Src2: NoReg}, "jr ra"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderResolvesLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Li(R(1), 10)
	b.Label("loop")
	b.Imm(OpAddi, R(1), R(1), -1)
	b.Branch(OpBgt, R(1), RZero, "loop")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[2].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Instrs[2].Target)
	}
	if !strings.Contains(p.Disassemble(), "loop:") {
		t.Error("disassembly missing label")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jump("nowhere")
	b.Halt()
	if _, err := b.Finish(); err == nil {
		t.Error("expected undefined-label error")
	}
}

func TestProgramValidateBadTarget(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpJ, Dst: NoReg, Src1: NoReg, Src2: NoReg, Target: 99}}}
	if err := p.Validate(); err == nil {
		t.Error("expected out-of-range target error")
	}
}

func TestValueFormatting(t *testing.T) {
	if got := IntValue(-42).String(); got != "-42" {
		t.Errorf("IntValue: %q", got)
	}
	if got := FloatValue(1.5).String(); got != "1.5" {
		t.Errorf("FloatValue: %q", got)
	}
	if !IntValue(3).Equal(IntValue(3)) || IntValue(3).Equal(FloatValue(3)) {
		t.Error("Equal confuses kinds")
	}
	if !FloatValue(1.0).ApproxEqual(FloatValue(1.0+1e-12), 1e-9) {
		t.Error("ApproxEqual too strict")
	}
	if FloatValue(1.0).ApproxEqual(FloatValue(1.1), 1e-9) {
		t.Error("ApproxEqual too lax")
	}
}

func TestValueEqualProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		return va.Equal(va) && (va.Equal(vb) == (a == b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassMix(t *testing.T) {
	b := NewBuilder()
	b.Li(R(1), 1)
	b.Op(OpAdd, R(2), R(1), R(1))
	b.Op(OpAdd, R(3), R(2), R(1))
	b.Halt()
	p := b.MustFinish()
	mix := p.ClassMix()
	if mix[ClassAddSub] != 2 || mix[ClassMove] != 1 {
		t.Errorf("mix = %v", mix)
	}
}
