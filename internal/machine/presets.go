package machine

import (
	"fmt"

	"ilp/internal/isa"
)

// Default register-file division used throughout §4 of the paper: "In this
// comparison we used 16 registers for expression temporaries and 26 for
// global register allocation."
const (
	DefaultTemps = 16
	DefaultHomes = 26
	// WideTemps is the enlarged temporary pool used in the unrolling study
	// ("we have only forty temporary registers available", §4.4).
	WideTemps = 40
)

// uniformLatency fills every class with lat minor cycles.
func uniformLatency(lat int) [isa.NumClasses]int {
	var l [isa.NumClasses]int
	for i := range l {
		l[i] = lat
	}
	return l
}

// perClassUnits builds one fully pipelined unit per instruction class with
// the given multiplicity — the "duplicate all functional units n times"
// option of §2.3.2, which makes class conflicts impossible.
func perClassUnits(multiplicity int) []FUnit {
	units := make([]FUnit, 0, isa.NumClasses)
	for _, cl := range isa.Classes() {
		units = append(units, FUnit{
			Name:         cl.String(),
			Classes:      []isa.Class{cl},
			Multiplicity: multiplicity,
			IssueLatency: 1,
		})
	}
	return units
}

func withDefaultRegs(c *Config) *Config {
	c.IntTemps, c.IntHomes = DefaultTemps, DefaultHomes
	c.FPTemps, c.FPHomes = DefaultTemps, DefaultHomes
	c.TakenBranchEndsGroup = true
	return c
}

// Base returns the base machine of §2.1: one instruction issued per cycle,
// simple operation latency of one cycle, so the instruction-level
// parallelism required to fully utilize it is one.
func Base() *Config {
	return withDefaultRegs(&Config{
		Name:       "base",
		IssueWidth: 1,
		Degree:     1,
		Latency:    uniformLatency(1),
		Units:      perClassUnits(1),
	})
}

// IdealSuperscalar returns an ideal (class-conflict-free) superscalar
// machine of degree n, per §2.3: n instructions issued per cycle, simple
// operation latency of one cycle, every functional unit duplicated n times.
func IdealSuperscalar(n int) *Config {
	if n < 1 {
		panic(fmt.Sprintf("machine: superscalar degree %d < 1", n))
	}
	return withDefaultRegs(&Config{
		Name:       fmt.Sprintf("superscalar-%d", n),
		IssueWidth: n,
		Degree:     1,
		Latency:    uniformLatency(1),
		Units:      perClassUnits(n),
	})
}

// Superpipelined returns a superpipelined machine of degree m, per §2.4:
// one instruction issued per (minor) cycle, the cycle time is 1/m of the
// base machine, and a simple operation takes m minor cycles (= 1 base
// cycle), since "given the same implementation technology it must take m
// cycles in the superpipelined machine".
func Superpipelined(m int) *Config {
	if m < 1 {
		panic(fmt.Sprintf("machine: superpipelining degree %d < 1", m))
	}
	return withDefaultRegs(&Config{
		Name:       fmt.Sprintf("superpipelined-%d", m),
		IssueWidth: 1,
		Degree:     m,
		Latency:    uniformLatency(m),
		Units:      perClassUnits(1),
	})
}

// SuperpipelinedSuperscalar returns a superpipelined superscalar machine of
// degree (n, m), per §2.5: n instructions per minor cycle, cycle time 1/m of
// the base machine, simple operation latency m minor cycles. Full
// utilization requires an instruction-level parallelism of n*m.
func SuperpipelinedSuperscalar(n, m int) *Config {
	if n < 1 || m < 1 {
		panic(fmt.Sprintf("machine: degree (%d,%d) invalid", n, m))
	}
	return withDefaultRegs(&Config{
		Name:       fmt.Sprintf("supersuper-%d-%d", n, m),
		IssueWidth: n,
		Degree:     m,
		Latency:    uniformLatency(m),
		Units:      perClassUnits(n),
	})
}

// SuperscalarWithConflicts returns a superscalar machine built the second
// way of §2.3.2: "duplicate only the register ports, bypasses, busses, and
// instruction decode logic" — the issue width is n but every functional
// unit has a single copy, so class conflicts stall issue whenever two
// instructions of the same class could otherwise go together.
func SuperscalarWithConflicts(n int) *Config {
	c := IdealSuperscalar(n)
	c.Name = fmt.Sprintf("superscalar-%d-conflicts", n)
	for i := range c.Units {
		c.Units[i].Multiplicity = 1
	}
	return c
}

// VLIW returns a VLIW machine of the given width, per §2.3.1: "in terms of
// run time exploitation of instruction-level parallelism, the superscalar
// and VLIW will have similar characteristics", so its timing model is the
// ideal superscalar's. The differences the paper lists are static: decode
// simplicity and code density — a VLIW instruction word always carries
// `width` operation slots, used or not, which VLIWCodeWords quantifies.
func VLIW(width int) *Config {
	c := IdealSuperscalar(width)
	c.Name = fmt.Sprintf("vliw-%d", width)
	return c
}

// VLIWCodeWords estimates the static code size, in instruction words, of
// packing a program whose dynamic issue groups are given (as a count of
// groups) onto a VLIW of the given width: every group costs one full-width
// word. A superscalar encodes the same schedule in `instructions` words.
// This is the §2.3.1 code-density comparison.
func VLIWCodeWords(groups int64, width int) int64 {
	return groups * int64(width)
}

// Underpipelined returns the underpipelined machine of Figure 2-2: its
// cycle time is twice the latency of a simple operation, modeled as a
// degree-1/2 machine — one instruction per cycle where each cycle is two
// base cycles long. We express it as a Degree-1 machine whose every
// latency is 1 but which can only complete an operation every other base
// cycle, i.e. issue latency 2 on every unit (Figure 2-3's variant). Both of
// the paper's underpipelined variants halve base-machine performance.
func Underpipelined() *Config {
	c := withDefaultRegs(&Config{
		Name:       "underpipelined",
		IssueWidth: 1,
		Degree:     1,
		Latency:    uniformLatency(2),
		Units:      perClassUnits(1),
	})
	for i := range c.Units {
		c.Units[i].IssueLatency = 2
	}
	return c
}

// MultiTitan returns a model of the DEC WRL MultiTitan [9], "a slightly
// superpipelined machine": ALU operations are one cycle, loads, stores and
// branches two cycles, and all floating-point operations three cycles
// (§2.7, Table 2-1). Like the real machine, integer multiply and divide
// execute in the floating-point coprocessor with longer latencies.
func MultiTitan() *Config {
	c := withDefaultRegs(&Config{
		Name:       "MultiTitan",
		IssueWidth: 1,
		Degree:     1,
		Units:      perClassUnits(1),
	})
	c.Latency = [isa.NumClasses]int{
		isa.ClassLogical:   1,
		isa.ClassShift:     1,
		isa.ClassAddSub:    1,
		isa.ClassIntMul:    4,  // via the FP multiplier
		isa.ClassIntDiv:    12, // via the FP divider
		isa.ClassLoad:      2,
		isa.ClassStore:     2,
		isa.ClassBranch:    2,
		isa.ClassJump:      2,
		isa.ClassFPAddSub:  3,
		isa.ClassFPMul:     3,
		isa.ClassFPDiv:     12,
		isa.ClassFPSpecial: 20,
		isa.ClassMove:      1,
	}
	return c
}

// CRAY1 returns a model of the CRAY-1 scalar pipeline, with the Table 2-1
// latencies: logical 1, shift 2, add/sub 3, load 11, store 1, branch 3,
// FP 7. Its functional units are pipelined (issue latency 1), like the
// CDC 7600 lineage the paper cites. Its average degree of superpipelining
// over the paper's instruction mix is 4.4.
func CRAY1() *Config {
	c := withDefaultRegs(&Config{
		Name:       "CRAY-1",
		IssueWidth: 1,
		Degree:     1,
		Units:      perClassUnits(1),
	})
	c.Latency = [isa.NumClasses]int{
		isa.ClassLogical:   1,
		isa.ClassShift:     2,
		isa.ClassAddSub:    3,
		isa.ClassIntMul:    7,  // via the FP multiplier
		isa.ClassIntDiv:    29, // reciprocal-approximation sequence
		isa.ClassLoad:      11,
		isa.ClassStore:     1,
		isa.ClassBranch:    3,
		isa.ClassJump:      3,
		isa.ClassFPAddSub:  7,
		isa.ClassFPMul:     7,
		isa.ClassFPDiv:     14, // reciprocal approximation
		isa.ClassFPSpecial: 25,
		isa.ClassMove:      1,
	}
	return c
}

// CRAY1Issue returns the CRAY-1 model widened to issue up to n instructions
// per cycle, with functional units duplicated n times — the Figure 4-4
// experiment, which the paper ran both with actual latencies and with all
// latencies forced to one (unitLatencies) to reproduce the mistaken
// methodology of [1].
func CRAY1Issue(n int, unitLatencies bool) *Config {
	c := CRAY1()
	c.Name = fmt.Sprintf("CRAY-1-issue%d", n)
	c.IssueWidth = n
	c.Units = perClassUnits(n)
	if unitLatencies {
		c.Name += "-unitlat"
		c.Latency = uniformLatency(1)
	}
	return c
}

// TableMachines returns the Table 2-1 rows: the machine configurations
// whose average degree of superpipelining the paper reports.
func TableMachines() []*Config {
	return []*Config{MultiTitan(), CRAY1()}
}
