package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"ilp/internal/cache"
)

// Fingerprint returns a canonical hash of the complete machine description:
// name, issue width, degree, latency table, functional units, branch policy,
// register-set division, and full cache geometry. Two configurations with
// the same fingerprint produce identical simulation results for the same
// program (including the result's reported machine name, which is why Name
// is hashed too). It is the simulation-cache key in package experiments.
func (c *Config) Fingerprint() string {
	h := sha256.New()
	c.hashSchedule(h)
	hashString(h, c.Name)
	hashCache(h, c.ICache)
	hashCache(h, c.DCache)
	return "m:" + hex.EncodeToString(h.Sum(nil)[:16])
}

// ScheduleFingerprint returns a canonical hash of only the parts of the
// description the compiler sees — latencies, units, widths, register
// division, branch policy — excluding the machine name and the cache
// geometry, which affect simulation but not code generation. Machine
// variants that differ only in caches (or only in name) share a schedule
// fingerprint and therefore, in package experiments, a single compilation.
func (c *Config) ScheduleFingerprint() string {
	h := sha256.New()
	c.hashSchedule(h)
	return "s:" + hex.EncodeToString(h.Sum(nil)[:16])
}

// hashSchedule writes every schedule-relevant field to h in a fixed order,
// length-prefixing the variable-size parts so field boundaries cannot alias.
func (c *Config) hashSchedule(h hash.Hash) {
	hashInt(h, int64(c.IssueWidth))
	hashInt(h, int64(c.Degree))
	for _, lat := range c.Latency {
		hashInt(h, int64(lat))
	}
	hashInt(h, int64(len(c.Units)))
	for _, u := range c.Units {
		hashString(h, u.Name)
		hashInt(h, int64(len(u.Classes)))
		for _, cl := range u.Classes {
			hashInt(h, int64(cl))
		}
		hashInt(h, int64(u.Multiplicity))
		hashInt(h, int64(u.IssueLatency))
	}
	hashInt(h, int64(c.BranchRedirect))
	if c.TakenBranchEndsGroup {
		hashInt(h, 1)
	} else {
		hashInt(h, 0)
	}
	hashInt(h, int64(c.IntTemps))
	hashInt(h, int64(c.IntHomes))
	hashInt(h, int64(c.FPTemps))
	hashInt(h, int64(c.FPHomes))
}

func hashInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func hashString(h hash.Hash, s string) {
	hashInt(h, int64(len(s)))
	h.Write([]byte(s))
}

func hashCache(h hash.Hash, cc *cache.Config) {
	if cc == nil {
		hashInt(h, 0)
		return
	}
	hashInt(h, 1)
	hashString(h, cc.Name)
	hashInt(h, int64(cc.Lines))
	hashInt(h, int64(cc.LineWords))
	hashInt(h, int64(cc.MissPenalty))
}
