// Package machine implements the paper's parameterizable machine
// description: "This interface allows us to specify details about the
// pipeline, functional units, cache, and register set" (§3).
//
// A Config captures, per §2's taxonomy and §3's evaluation environment:
//
//   - the superscalar degree n (instructions issued per cycle),
//   - the superpipelining degree m (the cycle time is 1/m of the base
//     machine's; simple operations then take m of these minor cycles),
//   - an operation latency per instruction class,
//   - functional units with an issue latency and a multiplicity,
//   - an optional upper limit on instructions issued per cycle independent
//     of functional-unit availability,
//   - cache parameters, and
//   - the division of the register file into expression temporaries and
//     variable home locations.
//
// All latencies in a Config are expressed in minor cycles — the machine's
// own clock. A base-machine cycle equals Degree minor cycles, so a simple
// operation with a one-base-cycle latency has Latency[class] == Degree.
package machine

import (
	"fmt"

	"ilp/internal/cache"
	"ilp/internal/ilperr"
	"ilp/internal/isa"
)

// FUnit describes one functional-unit type, following §3: "we can also
// group the operations into functional units, and specify an issue latency
// and multiplicity for each."
type FUnit struct {
	Name string
	// Classes lists the instruction classes issued to this unit.
	Classes []isa.Class
	// Multiplicity is the number of identical copies of the unit. With
	// fewer copies than the issue width, class conflicts arise (§2.3.2).
	Multiplicity int
	// IssueLatency is the number of minor cycles between successive
	// issues to the same copy of the unit. 1 means fully pipelined.
	IssueLatency int
}

// Config is a complete machine description.
type Config struct {
	Name string

	// IssueWidth is n: the maximum number of instructions issued per
	// minor cycle ("superscalar machines may have an upper limit on the
	// number of instructions that may be issued in the same cycle,
	// independent of the availability of functional units", §3).
	IssueWidth int

	// Degree is m: the number of minor cycles per base-machine cycle.
	// A base or superscalar machine has Degree 1; a superpipelined
	// machine of degree m has Degree m.
	Degree int

	// Latency is the operation latency of each instruction class in
	// minor cycles: "if an instruction requires the result of a previous
	// instruction, the machine will stall unless the operation latency of
	// the previous instruction has elapsed" (§3).
	Latency [isa.NumClasses]int

	// Units are the functional units. Every class must be served by
	// exactly one unit type.
	Units []FUnit

	// BranchRedirect is the number of extra minor cycles before the
	// instruction after a taken branch can issue. The paper assumes
	// "perfect branch slot filling and/or branch prediction", i.e. zero;
	// a taken branch still ends its issue group.
	BranchRedirect int

	// TakenBranchEndsGroup controls whether a taken branch terminates its
	// issue group (the in-order, no-speculation discipline of the paper).
	// It is true for every preset; switching it off is an ablation that
	// lets the startup-transient effect of §4.1 be quantified.
	TakenBranchEndsGroup bool

	// ICache and DCache, when non-nil, model instruction and data caches.
	// The paper's main simulations ignore cache misses (§4); §5.1 does
	// not.
	ICache *cache.Config
	DCache *cache.Config

	// Register-set division (§3): temporaries for short-term expressions
	// and home locations for variables. Counts are per register file.
	IntTemps, IntHomes int
	FPTemps, FPHomes   int
}

// unitIndex maps class -> index into Units, built by Validate.
func (c *Config) unitIndex() ([isa.NumClasses]int, error) {
	var idx [isa.NumClasses]int
	for i := range idx {
		idx[i] = -1
	}
	for ui, u := range c.Units {
		for _, cl := range u.Classes {
			if int(cl) >= isa.NumClasses {
				return idx, c.reject("unit %q names invalid class %d", u.Name, cl)
			}
			if idx[cl] != -1 {
				return idx, c.reject("class %v served by units %q and %q", cl, c.Units[idx[cl]].Name, u.Name)
			}
			idx[cl] = ui
		}
	}
	for cl, ui := range idx {
		if ui == -1 {
			return idx, c.reject("class %v not served by any unit", isa.Class(cl))
		}
	}
	return idx, nil
}

// reject builds the structured rejection Validate reports: a
// *ilperr.MachineError naming the description, so callers can dispatch on
// the error type (and recover the machine name) without parsing messages.
func (c *Config) reject(format string, args ...any) error {
	return &ilperr.MachineError{Machine: c.Name, Err: fmt.Errorf(format, args...)}
}

// ClassUnits returns the class→unit mapping Validate checks: for every
// instruction class, the index into Units of the unit serving it. Consumers
// that need per-class unit facts (the predecoder, the static timing
// analyzer) derive them from this map in one pass instead of calling
// UnitForClass per class.
func (c *Config) ClassUnits() ([isa.NumClasses]int, error) {
	return c.unitIndex()
}

// UnitForClass returns the index into Units of the unit serving the class.
// The config must have passed Validate.
func (c *Config) UnitForClass(cl isa.Class) int {
	idx, err := c.unitIndex()
	if err != nil {
		panic(err)
	}
	return idx[cl]
}

// Validate checks the description for consistency. Every rejection is a
// structured *ilperr.MachineError, so a bad description loaded or built at
// runtime fails its compile/simulate with a typed error instead of
// producing nonsense cycle counts or panicking downstream (both
// compiler.Compile and the simulator validate before running).
func (c *Config) Validate() error {
	if c.IssueWidth < 1 {
		return c.reject("issue width %d < 1", c.IssueWidth)
	}
	if c.Degree < 1 {
		return c.reject("degree %d < 1", c.Degree)
	}
	for cl, lat := range c.Latency {
		if lat < 1 {
			return c.reject("class %v latency %d < 1", isa.Class(cl), lat)
		}
	}
	for _, u := range c.Units {
		if u.Multiplicity < 1 {
			return c.reject("unit %q multiplicity %d < 1", u.Name, u.Multiplicity)
		}
		if u.IssueLatency < 1 {
			return c.reject("unit %q issue latency %d < 1", u.Name, u.IssueLatency)
		}
	}
	if _, err := c.unitIndex(); err != nil {
		return err
	}
	if c.BranchRedirect < 0 {
		return c.reject("negative branch redirect %d", c.BranchRedirect)
	}
	for _, cc := range []*cache.Config{c.ICache, c.DCache} {
		if cc != nil {
			if err := cc.Validate(); err != nil {
				return &ilperr.MachineError{Machine: c.Name, Err: err}
			}
		}
	}
	if err := c.validateRegs(); err != nil {
		return err
	}
	return nil
}

// AvailableRegs is the number of registers per file the register allocator
// may divide between temporaries and homes (the rest are reserved by the
// software conventions in package isa).
const AvailableRegs = 50

func (c *Config) validateRegs() error {
	if c.IntTemps < 2 {
		return c.reject("need at least 2 integer temporaries, have %d", c.IntTemps)
	}
	if c.FPTemps < 2 {
		return c.reject("need at least 2 fp temporaries, have %d", c.FPTemps)
	}
	if c.IntTemps+c.IntHomes > AvailableRegs {
		return c.reject("%d integer temps + %d homes exceed the %d available registers",
			c.IntTemps, c.IntHomes, AvailableRegs)
	}
	if c.FPTemps+c.FPHomes > AvailableRegs {
		return c.reject("%d fp temps + %d homes exceed the %d available registers",
			c.FPTemps, c.FPHomes, AvailableRegs)
	}
	if c.IntHomes < 0 || c.FPHomes < 0 {
		return c.reject("negative home register count")
	}
	return nil
}

// LatencyOf returns the operation latency of an opcode in minor cycles.
func (c *Config) LatencyOf(op isa.Opcode) int {
	return c.Latency[op.Class()]
}

// BaseCycles converts a minor-cycle count to base-machine cycles.
func (c *Config) BaseCycles(minor int64) float64 {
	return float64(minor) / float64(c.Degree)
}

// AverageDegreeOfSuperpipelining computes the paper's §2.7 metric: "if we
// multiply the latency of each instruction class by the frequency we observe
// for that instruction class when we perform our benchmark set, we get the
// average degree of superpipelining." freq holds dynamic instruction counts
// per class; latencies are converted to base cycles.
func (c *Config) AverageDegreeOfSuperpipelining(freq [isa.NumClasses]int64) float64 {
	var total, weighted float64
	for cl, n := range freq {
		total += float64(n)
		weighted += float64(n) * float64(c.Latency[cl]) / float64(c.Degree)
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Clone returns a deep copy of the configuration, so presets can be
// modified without aliasing.
func (c *Config) Clone() *Config {
	out := *c
	out.Units = make([]FUnit, len(c.Units))
	for i, u := range c.Units {
		out.Units[i] = u
		out.Units[i].Classes = append([]isa.Class(nil), u.Classes...)
	}
	if c.ICache != nil {
		ic := *c.ICache
		out.ICache = &ic
	}
	if c.DCache != nil {
		dc := *c.DCache
		out.DCache = &dc
	}
	return &out
}
