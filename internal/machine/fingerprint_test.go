package machine

import (
	"testing"

	"ilp/internal/cache"
)

func TestFingerprintDistinguishesEveryField(t *testing.T) {
	base := Base().Fingerprint()
	mutations := map[string]func(*Config){
		"name":        func(c *Config) { c.Name = "other" },
		"width":       func(c *Config) { c.IssueWidth++ },
		"degree":      func(c *Config) { c.Degree++ },
		"latency":     func(c *Config) { c.Latency[3]++ },
		"unit-mult":   func(c *Config) { c.Units[0].Multiplicity++ },
		"unit-ilat":   func(c *Config) { c.Units[0].IssueLatency++ },
		"redirect":    func(c *Config) { c.BranchRedirect++ },
		"group-break": func(c *Config) { c.TakenBranchEndsGroup = !c.TakenBranchEndsGroup },
		"int-temps":   func(c *Config) { c.IntTemps++ },
		"fp-homes":    func(c *Config) { c.FPHomes++ },
		"icache":      func(c *Config) { c.ICache = &cache.Config{Lines: 64, LineWords: 4, MissPenalty: 10} },
		"dcache":      func(c *Config) { c.DCache = &cache.Config{Lines: 64, LineWords: 4, MissPenalty: 10} },
	}
	for name, mutate := range mutations {
		c := Base()
		mutate(c)
		if c.Fingerprint() == base {
			t.Errorf("mutation %q did not change Fingerprint", name)
		}
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Base(), Base()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical configs have different fingerprints")
	}
	if a.ScheduleFingerprint() != b.ScheduleFingerprint() {
		t.Error("identical configs have different schedule fingerprints")
	}
	// A clone must fingerprint identically to its source.
	titan := MultiTitan()
	titan.ICache = &cache.Config{Lines: 256, LineWords: 4, MissPenalty: 12}
	if titan.Fingerprint() != titan.Clone().Fingerprint() {
		t.Error("clone fingerprint differs from source")
	}
}

func TestScheduleFingerprintIgnoresCachesAndName(t *testing.T) {
	plain := MultiTitan()
	cached := MultiTitan()
	cached.Name = "titan-cached"
	cached.ICache = &cache.Config{Lines: 256, LineWords: 4, MissPenalty: 12}
	cached.DCache = &cache.Config{Lines: 128, LineWords: 4, MissPenalty: 20}

	if plain.ScheduleFingerprint() != cached.ScheduleFingerprint() {
		t.Error("cache-only variants should share a schedule fingerprint")
	}
	if plain.Fingerprint() == cached.Fingerprint() {
		t.Error("cache-only variants must not share a full fingerprint")
	}
	// But anything the scheduler sees must still show through.
	slower := MultiTitan()
	slower.Latency[5]++
	if plain.ScheduleFingerprint() == slower.ScheduleFingerprint() {
		t.Error("latency change did not alter schedule fingerprint")
	}
}

func TestFingerprintCacheGeometry(t *testing.T) {
	// The regression at the heart of the measureKey bug: two configs that
	// differ only in miss penalty must have distinct fingerprints.
	a := MultiTitan()
	a.DCache = &cache.Config{Lines: 128, LineWords: 4, MissPenalty: 12}
	b := MultiTitan()
	b.DCache = &cache.Config{Lines: 128, LineWords: 4, MissPenalty: 20}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("differing MissPenalty produced colliding fingerprints")
	}
}
