package machine

import (
	"errors"
	"strings"
	"testing"

	"ilp/internal/cache"
	"ilp/internal/ilperr"
	"ilp/internal/isa"
)

func TestPresetsValidate(t *testing.T) {
	presets := []*Config{
		Base(), Underpipelined(), MultiTitan(), CRAY1(),
		IdealSuperscalar(1), IdealSuperscalar(4), IdealSuperscalar(8),
		Superpipelined(1), Superpipelined(3), Superpipelined(8),
		SuperpipelinedSuperscalar(2, 2), SuperpipelinedSuperscalar(3, 3),
		CRAY1Issue(4, false), CRAY1Issue(4, true),
	}
	for _, c := range presets {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestBaseMachineDefinition(t *testing.T) {
	// §2.1: instructions issued per cycle = 1, simple operation latency =
	// 1, parallelism required to fully utilize = 1.
	b := Base()
	if b.IssueWidth != 1 || b.Degree != 1 {
		t.Fatalf("base machine: width %d degree %d", b.IssueWidth, b.Degree)
	}
	for cl, lat := range b.Latency {
		if lat != 1 {
			t.Errorf("base machine: class %v latency %d", isa.Class(cl), lat)
		}
	}
}

func TestSuperscalarDefinition(t *testing.T) {
	// §2.3: n instructions per cycle, simple operation latency one cycle.
	c := IdealSuperscalar(3)
	if c.IssueWidth != 3 || c.Degree != 1 {
		t.Fatalf("superscalar-3: width %d degree %d", c.IssueWidth, c.Degree)
	}
	for _, u := range c.Units {
		if u.Multiplicity != 3 {
			t.Errorf("unit %s multiplicity %d, want 3 (ideal: no class conflicts)", u.Name, u.Multiplicity)
		}
	}
}

func TestSuperpipelinedDefinition(t *testing.T) {
	// §2.4: 1 instruction per (minor) cycle, cycle time 1/m, simple
	// operation latency m minor cycles.
	c := Superpipelined(3)
	if c.IssueWidth != 1 || c.Degree != 3 {
		t.Fatalf("superpipelined-3: width %d degree %d", c.IssueWidth, c.Degree)
	}
	if c.Latency[isa.ClassAddSub] != 3 {
		t.Errorf("addsub latency %d, want 3 minor cycles (= 1 base cycle)", c.Latency[isa.ClassAddSub])
	}
	if got := c.BaseCycles(6); got != 2.0 {
		t.Errorf("BaseCycles(6) = %v, want 2", got)
	}
}

func TestSuperpipelinedSuperscalarNeedsNM(t *testing.T) {
	c := SuperpipelinedSuperscalar(3, 3)
	if c.IssueWidth*c.Latency[isa.ClassAddSub] != 9 {
		t.Errorf("(3,3) machine should need ILP 9 to fill: width %d x latency %d",
			c.IssueWidth, c.Latency[isa.ClassAddSub])
	}
}

// TestValidateRejectsBadConfigs: every malformed description is rejected
// at validation time with a structured *ilperr.MachineError carrying the
// machine's name — never accepted (which would produce nonsense cycle
// counts downstream) and never a panic.
func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(c *Config)
		wantText string
	}{
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }, "issue width"},
		{"negative issue width", func(c *Config) { c.IssueWidth = -3 }, "issue width"},
		{"zero degree", func(c *Config) { c.Degree = 0 }, "degree"},
		{"zero class latency", func(c *Config) { c.Latency[isa.ClassLoad] = 0 }, "latency"},
		{"negative class latency", func(c *Config) { c.Latency[isa.ClassFPMul] = -2 }, "latency"},
		{"zero unit multiplicity", func(c *Config) { c.Units[0].Multiplicity = 0 }, "multiplicity"},
		{"zero unit issue latency", func(c *Config) { c.Units[0].IssueLatency = 0 }, "issue latency"},
		{"uncovered class", func(c *Config) { c.Units = c.Units[1:] }, "not served"},
		{"doubly covered class", func(c *Config) {
			c.Units = append(c.Units, FUnit{Name: "dup", Classes: []isa.Class{isa.ClassLoad}, Multiplicity: 1, IssueLatency: 1})
		}, "served by units"},
		{"negative branch redirect", func(c *Config) { c.BranchRedirect = -1 }, "branch redirect"},
		{"too few int temps", func(c *Config) { c.IntTemps = 1 }, "temporaries"},
		{"register oversubscription", func(c *Config) { c.IntTemps, c.IntHomes = 40, 40 }, "exceed"},
		{"negative homes", func(c *Config) { c.FPHomes = -1; c.FPTemps = 2 }, "negative home"},
	}
	for _, tc := range cases {
		c := Base()
		c.Name = "bad-" + tc.name
		tc.mutate(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var me *ilperr.MachineError
		if !errors.As(err, &me) {
			t.Errorf("%s: rejection is %T, want *ilperr.MachineError: %v", tc.name, err, err)
			continue
		}
		if me.Machine != c.Name {
			t.Errorf("%s: error names machine %q, want %q", tc.name, me.Machine, c.Name)
		}
		if !strings.Contains(err.Error(), tc.wantText) {
			t.Errorf("%s: message %q missing %q", tc.name, err.Error(), tc.wantText)
		}
	}
}

// TestValidateRejectsBadCache: a broken embedded cache geometry surfaces
// as a MachineError wrapping the cache's own complaint.
func TestValidateRejectsBadCache(t *testing.T) {
	c := Base()
	c.ICache = &cache.Config{Name: "icache", Lines: 0, LineWords: 4, MissPenalty: 10}
	err := c.Validate()
	if err == nil {
		t.Fatal("zero-line cache accepted")
	}
	var me *ilperr.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("cache rejection is %T, want *ilperr.MachineError: %v", err, err)
	}
}

func TestAverageDegreeOfSuperpipelining(t *testing.T) {
	// Reproduce Table 2-1 exactly using the paper's frequencies as
	// synthetic class counts (out of 100 instructions):
	// logical 10, shift 10, add/sub 20, load 20, store 15, branch 15, FP 10.
	var freq [isa.NumClasses]int64
	freq[isa.ClassLogical] = 10
	freq[isa.ClassShift] = 10
	freq[isa.ClassAddSub] = 20
	freq[isa.ClassLoad] = 20
	freq[isa.ClassStore] = 15
	freq[isa.ClassBranch] = 15
	freq[isa.ClassFPAddSub] = 10

	mt := MultiTitan().AverageDegreeOfSuperpipelining(freq)
	if mt < 1.69 || mt > 1.71 {
		t.Errorf("MultiTitan average degree of superpipelining = %.3f, want 1.7 (Table 2-1)", mt)
	}
	cray := CRAY1().AverageDegreeOfSuperpipelining(freq)
	if cray < 4.39 || cray > 4.41 {
		t.Errorf("CRAY-1 average degree of superpipelining = %.3f, want 4.4 (Table 2-1)", cray)
	}
	base := Base().AverageDegreeOfSuperpipelining(freq)
	if base != 1.0 {
		t.Errorf("base machine degree = %v, want 1", base)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := MultiTitan()
	d := c.Clone()
	d.Units[0].Multiplicity = 99
	d.Latency[0] = 99
	if c.Units[0].Multiplicity == 99 || c.Latency[0] == 99 {
		t.Error("Clone shares state with original")
	}
}

func TestUnitForClass(t *testing.T) {
	c := Base()
	for _, cl := range isa.Classes() {
		ui := c.UnitForClass(cl)
		found := false
		for _, have := range c.Units[ui].Classes {
			if have == cl {
				found = true
			}
		}
		if !found {
			t.Errorf("UnitForClass(%v) = %d which does not serve it", cl, ui)
		}
	}
}

func TestLatencyOf(t *testing.T) {
	mt := MultiTitan()
	if mt.LatencyOf(isa.OpLw) != 2 {
		t.Errorf("MultiTitan load latency = %d, want 2", mt.LatencyOf(isa.OpLw))
	}
	if mt.LatencyOf(isa.OpFadd) != 3 {
		t.Errorf("MultiTitan FP latency = %d, want 3", mt.LatencyOf(isa.OpFadd))
	}
}
