// Package cache implements the direct-mapped cache model used by the §5.1
// experiments. The paper's headline simulations ignore cache misses ("the
// effects of cache misses and systems effects such as interrupts and TLB
// misses are ignored", §4); §5.1 argues that miss latencies dominate the
// benefit of parallel issue on fast machines, and this model lets the
// simulator reproduce that argument quantitatively.
//
// The model is deliberately simple — direct-mapped, write-around, with a
// fixed miss penalty in minor cycles — because the paper's point concerns
// the ratio of miss cost to instruction time, not cache organization.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name string
	// Lines is the number of cache lines; must be a power of two.
	Lines int
	// LineWords is the line size in 8-byte words; must be a power of two.
	LineWords int
	// MissPenalty is the added latency of a miss, in minor cycles.
	MissPenalty int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Lines <= 0 || c.Lines&(c.Lines-1) != 0 {
		return fmt.Errorf("cache %q: lines %d not a positive power of two", c.Name, c.Lines)
	}
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a positive power of two", c.Name, c.LineWords)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("cache %q: negative miss penalty", c.Name)
	}
	return nil
}

// SizeWords returns the cache capacity in words.
func (c *Config) SizeWords() int { return c.Lines * c.LineWords }

// Stats accumulates access counts.
type Stats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses per access, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a direct-mapped cache instance.
type Cache struct {
	cfg       Config
	tags      []int64 // -1 = invalid
	lineShift uint
	indexMask int64
	stats     Stats
}

// New builds a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, tags: make([]int64, cfg.Lines)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	for w := cfg.LineWords; w > 1; w >>= 1 {
		c.lineShift++
	}
	c.indexMask = int64(cfg.Lines - 1)
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access touches the word address and returns true on a hit. On a miss the
// line is filled (allocate on read and on write; the write-around vs.
// write-allocate distinction is immaterial to the paper's argument, and
// allocation keeps the model symmetric).
func (c *Cache) Access(addr int64) bool {
	c.stats.Accesses++
	line := addr >> c.lineShift
	idx := line & c.indexMask
	if c.tags[idx] == line {
		return true
	}
	c.stats.Misses++
	c.tags[idx] = line
	return false
}

// Probe reports whether the address would hit, without updating state.
func (c *Cache) Probe(addr int64) bool {
	line := addr >> c.lineShift
	return c.tags[line&c.indexMask] == line
}

// Stats returns the accumulated access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates the cache and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.stats = Stats{}
}

// MissPenalty returns the configured miss penalty in minor cycles.
func (c *Cache) MissPenalty() int { return c.cfg.MissPenalty }
