package cache

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Lines: 0, LineWords: 4},
		{Lines: 3, LineWords: 4},
		{Lines: 4, LineWords: 0},
		{Lines: 4, LineWords: 6},
		{Lines: 4, LineWords: 4, MissPenalty: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v: expected error", c)
		}
	}
	good := Config{Lines: 64, LineWords: 4, MissPenalty: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.SizeWords() != 256 {
		t.Errorf("SizeWords = %d", good.SizeWords())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(Config{Lines: 4, LineWords: 2, MissPenalty: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("repeat access should hit")
	}
	if !c.Access(1) {
		t.Error("same-line access should hit")
	}
	if c.Access(2) {
		t.Error("next-line cold access should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
}

func TestConflictEviction(t *testing.T) {
	// 4 lines x 1 word: addresses 0 and 4 map to the same line.
	c, _ := New(Config{Lines: 4, LineWords: 1, MissPenalty: 1})
	c.Access(0)
	c.Access(4)
	if c.Access(0) {
		t.Error("address 0 should have been evicted by 4")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c, _ := New(Config{Lines: 4, LineWords: 1, MissPenalty: 1})
	if c.Probe(3) {
		t.Error("probe of cold line should be false")
	}
	if st := c.Stats(); st.Accesses != 0 {
		t.Error("probe counted as access")
	}
	c.Access(3)
	if !c.Probe(3) {
		t.Error("probe after access should hit")
	}
}

func TestReset(t *testing.T) {
	c, _ := New(Config{Lines: 4, LineWords: 1, MissPenalty: 1})
	c.Access(1)
	c.Reset()
	if c.Probe(1) {
		t.Error("reset should invalidate")
	}
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Error("reset should clear stats")
	}
}

func TestRepeatAccessAlwaysHits(t *testing.T) {
	// Property: immediately repeating any access is a hit.
	c, _ := New(Config{Lines: 64, LineWords: 4, MissPenalty: 10})
	f := func(addr uint32) bool {
		a := int64(addr)
		c.Access(a)
		return c.Access(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFits(t *testing.T) {
	// Property: a working set no larger than the cache, with addresses
	// mapping to distinct lines, incurs only cold misses.
	c, _ := New(Config{Lines: 16, LineWords: 4, MissPenalty: 10})
	for pass := 0; pass < 3; pass++ {
		for line := 0; line < 16; line++ {
			hit := c.Access(int64(line * 4))
			if pass == 0 && hit {
				t.Fatalf("pass 0 line %d: unexpected hit", line)
			}
			if pass > 0 && !hit {
				t.Fatalf("pass %d line %d: unexpected miss", pass, line)
			}
		}
	}
}
