package experiments

import (
	"context"

	"fmt"
	"strings"

	"ilp/internal/cache"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/metrics"
)

func init() {
	register("tab5-1", "Table 5-1: the cost of cache misses", runTab51)
	register("sec5-1", "§5.1: cache misses vs. parallel issue", runSec51)
}

// runTab51 reproduces the static Table 5-1 computation and augments it
// with a measured row: the benchmark suite run on a Titan-like machine
// with caches.
func runTab51(ctx context.Context, r *Runner) (*Result, error) {
	type rowDef struct {
		name    string
		cpi     float64
		cycleNS float64
		memNS   float64
	}
	rows := []rowDef{
		{"VAX 11/780", 10.0, 200, 1200},
		{"WRL Titan", 1.4, 45, 540},
		{"?", 0.5, 5, 350},
	}
	t := &table{header: []string{"Machine", "cycles/instr", "cycle (ns)", "mem time (ns)", "miss cost (cycles)", "miss cost (instr)"}}
	var instrCosts []float64
	for _, rd := range rows {
		missCycles := rd.memNS / rd.cycleNS
		missInstr := missCycles / rd.cpi
		instrCosts = append(instrCosts, missInstr)
		t.add(rd.name,
			fmt.Sprintf("%.1f", rd.cpi),
			fmt.Sprintf("%.0f", rd.cycleNS),
			fmt.Sprintf("%.0f", rd.memNS),
			fmt.Sprintf("%.0f", missCycles),
			fmt.Sprintf("%.1f", missInstr))
	}

	var b strings.Builder
	b.WriteString(t.render())
	b.WriteString("\nPaper values: 6 cycles / 0.6 instructions (VAX), 12 / 8.6 (Titan), 70 / 140 (future\n" +
		"superscalar): 'in the future a cache miss on a superscalar machine executing two\n" +
		"instructions per cycle could cost well over 100 instruction times!'\n\n")

	// Measured: run the suite on a Titan-flavored machine with and
	// without caches (12-cycle miss penalty, small caches so misses
	// actually occur).
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	titan := machine.MultiTitan()
	titan.Name = "titan-nocache"
	withCache := machine.MultiTitan()
	withCache.Name = "titan-cache"
	withCache.ICache = &cache.Config{Name: "I", Lines: 256, LineWords: 4, MissPenalty: 12}
	withCache.DCache = &cache.Config{Name: "D", Lines: 256, LineWords: 4, MissPenalty: 12}

	var ratios []float64
	mt := &table{header: []string{"benchmark", "CPI (perfect memory)", "CPI (with caches)", "slowdown", "D-miss rate"}}
	for _, bm := range suite {
		r0, err := r.MeasureCtx(ctx, bm.Name, defaultOpts(bm), titan)
		if err != nil {
			return nil, err
		}
		r1, err := r.MeasureCtx(ctx, bm.Name, defaultOpts(bm), withCache)
		if err != nil {
			return nil, err
		}
		slow := r1.BaseCycles / r0.BaseCycles
		ratios = append(ratios, slow)
		miss := 0.0
		if r1.DCacheStats != nil {
			miss = r1.DCacheStats.MissRate()
		}
		mt.add(bm.Name, fmtF(r0.BaseCPI()), fmtF(r1.BaseCPI()), fmtF(slow), fmt.Sprintf("%.1f%%", miss*100))
	}
	b.WriteString("Measured on the simulator (Titan latencies, 256x4-word direct-mapped caches,\n12-cycle miss penalty):\n\n")
	b.WriteString(mt.render())

	return &Result{ID: "tab5-1", Title: "The cost of cache misses", Text: b.String(),
		Series: []metrics.Series{
			{Name: "miss-cost-instructions", X: []float64{0, 1, 2}, Y: instrCosts},
			{Name: "measured-slowdown", X: seq(len(ratios)), Y: ratios},
		}}, nil
}

// runSec51 reproduces the §5.1 worked example and then measures the real
// thing: how much of the ideal superscalar speedup survives when cache
// misses are modeled.
func runSec51(ctx context.Context, r *Runner) (*Result, error) {
	var b strings.Builder
	// The worked example, computed rather than quoted.
	base := 1.0 + 1.0 // 1.0 cpi issue + 1.0 cpi miss burden
	wide := 0.5 + 1.0
	b.WriteString("Worked example (§5.1): a 2.0 cpi machine (1.0 issue + 1.0 cache-miss burden)\n")
	fmt.Fprintf(&b, "given 3-wide issue improves to %.1f cpi: speedup %.0f%%, not the %.0f%% seen when\n",
		wide, (base/wide-1)*100, (1.0/0.5-1)*100)
	b.WriteString("misses are ignored.\n\n")

	// Measured: ideal superscalar speedup with perfect memory vs. with
	// caches, harmonic mean over the suite.
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	deg := r.Cfg.maxDegree()
	if deg > 4 {
		deg = 4 // §5.1's argument is about modest issue widths
	}
	cc := func(m *machine.Config) *machine.Config {
		m.ICache = &cache.Config{Name: "I", Lines: 128, LineWords: 4, MissPenalty: 20}
		m.DCache = &cache.Config{Name: "D", Lines: 128, LineWords: 4, MissPenalty: 20}
		m.Name += "-cache"
		return m
	}
	var perfect, cached []float64
	for _, bm := range suite {
		b1, err := r.MeasureCtx(ctx, bm.Name, defaultOpts(bm), machine.Base())
		if err != nil {
			return nil, err
		}
		w1, err := r.MeasureCtx(ctx, bm.Name, defaultOpts(bm), machine.IdealSuperscalar(deg))
		if err != nil {
			return nil, err
		}
		b2, err := r.MeasureCtx(ctx, bm.Name, defaultOpts(bm), cc(machine.Base()))
		if err != nil {
			return nil, err
		}
		w2, err := r.MeasureCtx(ctx, bm.Name, defaultOpts(bm), cc(machine.IdealSuperscalar(deg)))
		if err != nil {
			return nil, err
		}
		perfect = append(perfect, b1.BaseCycles/w1.BaseCycles)
		cached = append(cached, b2.BaseCycles/w2.BaseCycles)
	}
	hp, hc := metrics.HarmonicMean(perfect), metrics.HarmonicMean(cached)
	fmt.Fprintf(&b, "Measured (%d-wide ideal superscalar, harmonic mean over the suite):\n", deg)
	fmt.Fprintf(&b, "  speedup with perfect memory: %.2f\n", hp)
	fmt.Fprintf(&b, "  speedup with 20-cycle-miss caches: %.2f\n", hc)
	b.WriteString("\nPaper shape: 'cache miss effects decrease the benefit of parallel instruction\nissue.'\n")
	return &Result{ID: "sec5-1", Title: "Cache misses vs. parallel issue", Text: b.String(),
		Series: []metrics.Series{{Name: "speedup", X: []float64{0, 1}, Y: []float64{hp, hc}}}}, nil
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

var _ = compiler.O0
