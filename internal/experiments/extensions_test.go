package experiments

import "testing"

func TestExtConflictsShape(t *testing.T) {
	res, err := testRunner().Run("ext-conflicts")
	if err != nil {
		t.Fatal(err)
	}
	ideal, conflict := res.Series[0].Y, res.Series[1].Y
	for i := range ideal {
		if conflict[i] > ideal[i]+1e-9 {
			t.Errorf("benchmark %d: conflicts (%v) beat the ideal machine (%v)", i, conflict[i], ideal[i])
		}
	}
	// The cost must be visible somewhere ("class conflicts can
	// substantially reduce the parallelism").
	hurt := false
	for i := range ideal {
		if conflict[i] < ideal[i]*0.98 {
			hurt = true
		}
	}
	if !hurt {
		t.Error("class conflicts cost nothing on any benchmark")
	}
}

func TestExtVLIWShape(t *testing.T) {
	res, err := testRunner().Run("ext-vliw")
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Series[0].Y {
		if u <= 0 || u > 1.0000001 {
			t.Errorf("benchmark %d: slot utilization %v outside (0,1]", i, u)
		}
		// With parallelism ~2 and width 4, utilization should be well
		// below full.
		if u > 0.9 {
			t.Errorf("benchmark %d: utilization %v implausibly high for width 4", i, u)
		}
	}
}

func TestExtICacheShape(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 8})
	res, err := r.Run("ext-icache")
	if err != nil {
		t.Fatal(err)
	}
	var perfect, cached []float64
	for _, s := range res.Series {
		if s.Name == "linpack.perfect-icache" {
			perfect = s.Y
		} else {
			cached = s.Y
		}
	}
	// Perfect icache: 10x unrolling at least as good as 1x.
	if perfect[3] < perfect[0] {
		t.Errorf("perfect icache: unrolling hurt (%v)", perfect)
	}
	// Limited icache: 10x unrolling declines relative to its own gain
	// with a perfect cache (the §4.4 warning).
	if !(cached[3] < perfect[3]) {
		t.Errorf("limited icache did not hurt 10x unrolling: cached %v vs perfect %v", cached[3], perfect[3])
	}
}

func TestExtSlackShape(t *testing.T) {
	res, err := testRunner().Run("ext-slack")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range res.Series {
		for i, v := range s.Y {
			// Slack = simulated / lower bound; the oracle inside the
			// experiment already enforced simulated >= lower, so every
			// ratio is at least 1.
			if v < 1 {
				t.Errorf("%s benchmark %d: slack %v below 1", s.Name, i, v)
			}
		}
	}
}

func TestExtLimitsShape(t *testing.T) {
	res, err := testRunner().Run("ext-limits")
	if err != nil {
		t.Fatal(err)
	}
	compiled, blocked, oracle := res.Series[0].Y, res.Series[1].Y, res.Series[2].Y
	for i := range compiled {
		// The compiled result cannot beat the blocked dataflow limit by
		// more than rounding, and the oracle dominates everything.
		if compiled[i] > blocked[i]*1.05 {
			t.Errorf("benchmark %d: compiled %.2f exceeds blocked limit %.2f", i, compiled[i], blocked[i])
		}
		if oracle[i] < blocked[i] {
			t.Errorf("benchmark %d: oracle %.2f below blocked %.2f", i, oracle[i], blocked[i])
		}
	}
}
