package experiments

import (
	"context"

	"fmt"
	"strings"

	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/pipeviz"
)

func init() {
	register("fig2", "Figures 2-1..2-8: machine-taxonomy pipeline diagrams", runFig2)
	register("tab2-1", "Table 2-1: average degree of superpipelining", runTab21)
}

func runFig2(ctx context.Context, r *Runner) (*Result, error) {
	var b strings.Builder
	for _, d := range pipeviz.All() {
		b.WriteString(d.Render())
		b.WriteString("\n")
	}
	return &Result{ID: "fig2", Title: "Machine taxonomy pipeline diagrams (§2)", Text: b.String()}, nil
}

// runTab21 measures the dynamic instruction mix of the whole benchmark
// suite on the base machine and weights the Table 2-1 machine latencies by
// it, reproducing the average degree of superpipelining (paper: MultiTitan
// 1.7, CRAY-1 4.4 at their assumed frequencies).
func runTab21(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	base := machine.Base()

	var jobs []job
	for _, b := range suite {
		jobs = append(jobs, job{b.Name, defaultOpts(b), base})
	}
	results, err := r.measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}

	// Mean dynamic frequency per Table 2-1 group, averaged over
	// benchmarks (each benchmark weighted equally, like the paper's
	// whole-suite means).
	var freq [isa.NumTableGroups]float64
	for _, res := range results {
		f := res.GroupFrequencies()
		for g := range freq {
			freq[g] += f[g] / float64(len(results))
		}
	}

	// The paper's assumed frequencies, for the side-by-side columns.
	paperFreq := [isa.NumTableGroups]float64{
		isa.GroupLogical: 0.10, isa.GroupShift: 0.10, isa.GroupAddSub: 0.20,
		isa.GroupLoad: 0.20, isa.GroupStore: 0.15, isa.GroupBranch: 0.15,
		isa.GroupFP: 0.10,
	}

	// Group-level latencies for the two machines (Table 2-1 columns).
	latOf := func(m *machine.Config) [isa.NumTableGroups]float64 {
		var lat [isa.NumTableGroups]float64
		lat[isa.GroupLogical] = float64(m.Latency[isa.ClassLogical])
		lat[isa.GroupShift] = float64(m.Latency[isa.ClassShift])
		lat[isa.GroupAddSub] = float64(m.Latency[isa.ClassAddSub])
		lat[isa.GroupLoad] = float64(m.Latency[isa.ClassLoad])
		lat[isa.GroupStore] = float64(m.Latency[isa.ClassStore])
		lat[isa.GroupBranch] = float64(m.Latency[isa.ClassBranch])
		lat[isa.GroupFP] = float64(m.Latency[isa.ClassFPAddSub])
		return lat
	}
	mt, cray := machine.MultiTitan(), machine.CRAY1()
	mtLat, crLat := latOf(mt), latOf(cray)

	avg := func(freq [isa.NumTableGroups]float64, lat [isa.NumTableGroups]float64) float64 {
		var s float64
		for g := range freq {
			s += freq[g] * lat[g]
		}
		return s
	}

	t := &table{header: []string{"Instr. class", "freq (measured)", "freq (paper)", "MultiTitan lat", "CRAY-1 lat",
		"MT contrib", "CRAY contrib"}}
	for g := 0; g < isa.NumTableGroups; g++ {
		t.add(isa.TableGroup(g).String(),
			fmt.Sprintf("%5.1f%%", freq[g]*100),
			fmt.Sprintf("%5.0f%%", paperFreq[g]*100),
			fmtI(int(mtLat[g])),
			fmtI(int(crLat[g])),
			fmtF(freq[g]*mtLat[g]),
			fmtF(freq[g]*crLat[g]))
	}

	measuredMT, measuredCR := avg(freq, mtLat), avg(freq, crLat)
	paperMT, paperCR := avg(paperFreq, mtLat), avg(paperFreq, crLat)

	var b strings.Builder
	b.WriteString(t.render())
	fmt.Fprintf(&b, "\nAverage degree of superpipelining:\n")
	fmt.Fprintf(&b, "  MultiTitan: %.2f measured mix (%.2f at the paper's mix; paper reports 1.7)\n", measuredMT, paperMT)
	fmt.Fprintf(&b, "  CRAY-1:     %.2f measured mix (%.2f at the paper's mix; paper reports 4.4)\n", measuredCR, paperCR)

	return &Result{
		ID: "tab2-1", Title: "Average degree of superpipelining", Text: b.String(),
		Series: []metrics.Series{
			{Name: "avg-degree", X: []float64{0, 1, 2, 3},
				Y: []float64{measuredMT, measuredCR, paperMT, paperCR}},
		},
	}, nil
}

var _ = compiler.O0
