package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"ilp/internal/compiler"
	"ilp/internal/faultinject"
	"ilp/internal/ilperr"
	"ilp/internal/machine"
	"ilp/internal/sim"
	"ilp/internal/store"
)

// chaosSchedules returns how many randomized fault schedules to run. The
// default keeps tier-1 fast; `make chaos` raises it via ILP_CHAOS_SCHEDULES
// so the combined chaos suite crosses a thousand schedules under -race.
func chaosSchedules(t *testing.T, def int) int {
	if s := os.Getenv("ILP_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad ILP_CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	return def
}

// chaosMachines is the fixed cell grid each schedule sweeps: four distinct
// configurations, so four distinct sim keys sharing one compilation.
func chaosMachines() []*machine.Config {
	return []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(2),
		machine.IdealSuperscalar(4),
		machine.Superpipelined(2),
	}
}

// chaosOutcome is what one schedule produced, for determinism comparisons.
type chaosOutcome struct {
	degraded  map[string]bool    // skey -> degraded
	cycles    map[string]float64 // skey -> BaseCycles of real results
	storeKeys []string
}

// runChaosSchedule runs the fixed cell grid against a seeded injector with
// randomized rates, asserting the fault-tolerance contract:
//
//   - the run terminates and every cell yields exactly one of {real
//     result, degraded placeholder} — never an error, never nothing;
//   - every real (non-degraded) result is durable: its record is in the
//     store with the same cycle count (no completed result is lost);
//   - the store holds at most one record per cell (no retried cell is
//     double-counted);
//   - degraded cells are not persisted;
//   - the runner's report adds up.
func runChaosSchedule(t *testing.T, seed int64, dir string) chaosOutcome {
	rng := rand.New(rand.NewSource(seed))
	rates := map[faultinject.Site]float64{
		faultinject.SiteCompile: rng.Float64() * 0.4,
		faultinject.SiteSim:     rng.Float64() * 0.4,
		faultinject.SitePanic:   rng.Float64() * 0.3,
		faultinject.SiteStore:   rng.Float64() * 0.5,
		faultinject.SiteSlow:    rng.Float64() * 0.3,
	}
	inj, err := faultinject.New(faultinject.Config{
		Seed: seed, Rates: rates, SlowDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos%d.jsonl", seed))
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := Config{
		Benchmarks: []string{"whet"}, Workers: 4,
		Retries: 2, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
		Degrade: true, Store: st, Faults: inj,
	}
	r := NewRunner(cfg)
	copts := compiler.Options{Level: compiler.O4}
	machines := chaosMachines()

	type cell struct {
		skey string
		res  *sim.Result
		err  error
	}
	cells := make([]cell, len(machines))
	var wg sync.WaitGroup
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m *machine.Config) {
			defer wg.Done()
			ckey := compileKey("whet", copts, m)
			cells[i].skey = ckey + "|" + m.Fingerprint()
			cells[i].res, cells[i].err = r.MeasureCtx(context.Background(), "whet", copts, m)
		}(i, m)
	}
	wg.Wait()

	out := chaosOutcome{degraded: map[string]bool{}, cycles: map[string]float64{}}
	degraded := 0
	for _, c := range cells {
		if c.err != nil {
			t.Fatalf("seed %d: cell %s errored despite degradation: %v", seed, c.skey, c.err)
		}
		if c.res == nil {
			t.Fatalf("seed %d: cell %s returned neither result nor error", seed, c.skey)
		}
		out.degraded[c.skey] = c.res.Degraded
		if c.res.Degraded {
			degraded++
			if _, ok := st.Get(c.skey); ok {
				t.Fatalf("seed %d: degraded cell %s was persisted", seed, c.skey)
			}
			continue
		}
		out.cycles[c.skey] = c.res.BaseCycles
		rec, ok := st.Get(c.skey)
		if !ok {
			t.Fatalf("seed %d: completed cell %s lost — not in the store", seed, c.skey)
		}
		var stored sim.Result
		if err := json.Unmarshal(rec.Payload, &stored); err != nil {
			t.Fatalf("seed %d: stored payload for %s unreadable: %v", seed, c.skey, err)
		}
		if stored.BaseCycles != c.res.BaseCycles {
			t.Fatalf("seed %d: cell %s stored %v base cycles, returned %v",
				seed, c.skey, stored.BaseCycles, c.res.BaseCycles)
		}
	}

	// No retried cell is double-counted: the raw, uncompacted log has at
	// most one record per key.
	seen := map[string]bool{}
	for _, rec := range st.Records() {
		if seen[rec.Key] {
			t.Fatalf("seed %d: key %s appended twice", seed, rec.Key)
		}
		seen[rec.Key] = true
		out.storeKeys = append(out.storeKeys, rec.Key)
	}

	rep := r.Report()
	if rep.Degraded != int64(degraded) {
		t.Fatalf("seed %d: report says %d degraded, observed %d", seed, rep.Degraded, degraded)
	}
	if rep.Cells != len(machines)-degraded {
		t.Fatalf("seed %d: report says %d committed cells, want %d", seed, rep.Cells, len(machines)-degraded)
	}

	// Resume leg: reopen the store with a fault-free runner. Committed
	// cells must be served from the store with identical cycle counts and
	// zero new simulations; degraded cells must now compute cleanly.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatalf("seed %d: reopen: %v", seed, err)
	}
	defer st2.Close()
	r2 := NewRunner(Config{Benchmarks: []string{"whet"}, Workers: 4, Store: st2})
	if got := r2.Stats().Resumed; got != int64(len(out.cycles)) {
		t.Fatalf("seed %d: resumed %d cells, store holds %d", seed, got, len(out.cycles))
	}
	for i, m := range machines {
		res, err := r2.MeasureCtx(context.Background(), "whet", copts, m)
		if err != nil || res == nil || res.Degraded {
			t.Fatalf("seed %d: fault-free resume failed cell %s: %+v %v", seed, cells[i].skey, res, err)
		}
		if want, ok := out.cycles[cells[i].skey]; ok && res.BaseCycles != want {
			t.Fatalf("seed %d: resumed cell %s returned %v base cycles, committed run had %v",
				seed, cells[i].skey, res.BaseCycles, want)
		}
	}
	if live := r2.Stats().Sims; live != int64(degraded) {
		t.Fatalf("seed %d: resume re-simulated %d cells, only the %d degraded ones should run", seed, live, degraded)
	}
	return out
}

// TestChaosFaultSchedules drives the runner through randomized fault
// schedules (compile faults, sim faults, worker panics, store-write faults,
// slow jobs) and asserts on every schedule that no completed result is
// lost, no retried cell double-appends, degradation masks exactly the
// permanently failed cells, and resuming from the store completes the
// sweep. Run with -race; `make chaos` raises the schedule count into the
// hundreds via ILP_CHAOS_SCHEDULES.
func TestChaosFaultSchedules(t *testing.T) {
	schedules := chaosSchedules(t, 8)
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("seed%d", sched), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(sched), t.TempDir())
		})
	}
}

// TestChaosDeterministic: the same seed reproduces the same fault
// schedule bit for bit — same degraded set, same committed cycle counts,
// same store contents — which is what makes a chaos failure replayable.
func TestChaosDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		a := runChaosSchedule(t, seed, t.TempDir())
		b := runChaosSchedule(t, seed, t.TempDir())
		if len(a.degraded) != len(b.degraded) || len(a.cycles) != len(b.cycles) {
			t.Fatalf("seed %d: runs diverged in shape: %+v vs %+v", seed, a, b)
		}
		for k, v := range a.degraded {
			if b.degraded[k] != v {
				t.Fatalf("seed %d: cell %s degraded=%v in one run, %v in the other", seed, k, v, b.degraded[k])
			}
		}
		for k, v := range a.cycles {
			if b.cycles[k] != v {
				t.Fatalf("seed %d: cell %s cycles %v vs %v", seed, k, v, b.cycles[k])
			}
		}
		if len(a.storeKeys) != len(b.storeKeys) {
			t.Fatalf("seed %d: store keys differ: %v vs %v", seed, a.storeKeys, b.storeKeys)
		}
	}
}

// TestConcurrentRetriesSingleAppend: sixteen goroutines race onto one cell
// whose first two attempts fail transiently. Singleflight plus
// attempt-scoped persistence must yield exactly one simulation, two retry
// waits, one store append — and the same committed result for every
// caller. (The -race run of this test is the store-duplication guard.)
func TestConcurrentRetriesSingleAppend(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "r.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := NewRunner(Config{
		Benchmarks: []string{"whet"}, Workers: 4,
		Retries: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
		Store: st,
	})
	var attempts int
	var mu sync.Mutex
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts <= 2 {
			return ilperr.MarkTransient(fmt.Errorf("flaky infrastructure (call %d)", attempts))
		}
		return nil
	}

	m := machine.IdealSuperscalar(2)
	copts := compiler.Options{Level: compiler.O4}
	const callers = 16
	results := make([]*sim.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.MeasureCtx(context.Background(), "whet", copts, m)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d failed: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result object than caller 0", i)
		}
	}
	if attempts != 3 {
		t.Fatalf("measure hook ran %d times, want 3 (two transient failures + one success)", attempts)
	}
	stats := r.Stats()
	if stats.Sims != 1 {
		t.Fatalf("%d sim leaders for one cell", stats.Sims)
	}
	if stats.Retries != 2 {
		t.Fatalf("%d retry waits, want 2", stats.Retries)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records for one cell, want exactly 1", st.Len())
	}
}

// TestRetriesExhaustedPublishPermanent: a cell that stays transient for
// more attempts than the budget is published permanent — later callers get
// the cached failure with zero additional attempts or retry waits.
func TestRetriesExhaustedPublishPermanent(t *testing.T) {
	r := NewRunner(Config{
		Benchmarks: []string{"whet"}, Workers: 2,
		Retries: 1, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
	})
	var calls int
	var mu sync.Mutex
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return ilperr.MarkTransient(fmt.Errorf("never heals"))
	}
	m := machine.Base()
	copts := compiler.Options{Level: compiler.O4}
	_, err := r.MeasureCtx(context.Background(), "whet", copts, m)
	if err == nil {
		t.Fatal("exhausted cell returned no error")
	}
	if ilperr.IsTransient(err) {
		t.Fatalf("exhausted failure still transient: %v", err)
	}
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2 (Retries=1)", calls)
	}
	// Cached verdict: no further attempts.
	_, err2 := r.MeasureCtx(context.Background(), "whet", copts, m)
	if err2 == nil || calls != 2 {
		t.Fatalf("cached permanent verdict re-attempted: calls=%d err=%v", calls, err2)
	}
	if got := r.Stats().Retries; got != 1 {
		t.Fatalf("%d retry waits, want 1", got)
	}
}

// TestDegradedSweepCompletes: with degradation on, a sweep whose cells
// partly panic still renders every experiment; the report carries the
// degraded count and the failure never reaches the caller as an error.
func TestDegradedSweepCompletes(t *testing.T) {
	inj, err := faultinject.New(faultinject.Config{
		Seed: 99, Rates: map[faultinject.Site]float64{faultinject.SitePanic: 0.15},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Config{
		MaxDegree: 2, Benchmarks: []string{"whet"}, Degrade: true, Faults: inj,
	})
	var out nopWriter
	rep, err := r.RunAll(context.Background(), &out)
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if rep.Experiments != len(Experiments()) {
		t.Fatalf("rendered %d experiments, want %d (failed: %v)", rep.Experiments, len(Experiments()), rep.Failed)
	}
	if rep.Degraded == 0 {
		t.Fatal("15% panic rate degraded no cells — injector not reaching the pipeline")
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
