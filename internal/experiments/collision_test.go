package experiments

import (
	"testing"

	"ilp/internal/cache"
	"ilp/internal/compiler"
	"ilp/internal/machine"
)

// TestMeasureCacheGeometryCollision is the regression test for the old
// stringly measureKey, which collapsed cache configs to ic/dc booleans: two
// machines with the same name whose caches differ only in geometry (here,
// miss penalty) collided and the second Measure returned the first's cached
// result. With fingerprint keying they must simulate to different cycle
// counts — and still share a single compilation, since the compiler cannot
// see the cache.
func TestMeasureCacheGeometryCollision(t *testing.T) {
	r := NewRunner(Config{Workers: 2})
	opts := compiler.Options{Level: compiler.O4}

	cheap := machine.MultiTitan() // both variants keep the preset name
	cheap.DCache = &cache.Config{Name: "d", Lines: 8, LineWords: 4, MissPenalty: 2}
	dear := machine.MultiTitan()
	dear.DCache = &cache.Config{Name: "d", Lines: 8, LineWords: 4, MissPenalty: 50}

	ra, err := r.Measure("whet", opts, cheap)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Measure("whet", opts, dear)
	if err != nil {
		t.Fatal(err)
	}
	if ra.DCacheStats == nil || ra.DCacheStats.Misses == 0 {
		t.Fatal("expected data-cache misses with an 8-line cache")
	}
	if ra.MinorCycles == rb.MinorCycles {
		t.Errorf("MissPenalty 2 vs 50 returned identical MinorCycles (%d): cache key collision", ra.MinorCycles)
	}
	st := r.Stats()
	if st.Sims != 2 {
		t.Errorf("Sims = %d, want 2", st.Sims)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (cache-only variants must share a compilation)", st.Compiles)
	}
}
