// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.7, §4, §5) from the reproduction's own compiler,
// benchmarks, and simulator. Each experiment produces a text rendition of
// the paper's table/figure plus structured series for tests to assert the
// shape results on (see EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/sim"
)

// Config controls an experiment run.
type Config struct {
	// MaxDegree is the largest superscalar/superpipelined degree swept
	// (the paper uses 8). Smaller values make quick runs.
	MaxDegree int
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// Benchmarks restricts the suite (nil = all eight).
	Benchmarks []string
}

func (c Config) maxDegree() int {
	if c.MaxDegree <= 0 {
		return 8
	}
	return c.MaxDegree
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) suite() ([]benchmarks.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return benchmarks.All(), nil
	}
	var out []benchmarks.Benchmark
	for _, name := range c.Benchmarks {
		b, err := benchmarks.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Text   string
	Series []metrics.Series
}

// Experiment is a registered reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(r *Runner) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// canonicalOrder is the paper's presentation order (registration order
// depends on file-name init order, which is not it).
var canonicalOrder = []string{
	"fig2", "tab2-1",
	"fig4-1", "fig4-2", "fig4-3", "fig4-4", "fig4-5",
	"fig4-6", "fig4-7", "fig4-8",
	"tab5-1", "sec5-1",
	"abl-branch", "abl-temps", "abl-sched", "abl-memdep",
	"ext-conflicts", "ext-vliw", "ext-icache", "ext-limits",
}

// Experiments lists all registered experiments in the paper's order.
func Experiments() []Experiment {
	byID := map[string]Experiment{}
	for _, e := range registry {
		byID[e.ID] = e
	}
	var out []Experiment
	for _, id := range canonicalOrder {
		if e, ok := byID[id]; ok {
			out = append(out, e)
			delete(byID, id)
		}
	}
	// Anything registered but not in the canonical list goes last, in
	// registration order.
	for _, e := range registry {
		if _, left := byID[e.ID]; left {
			out = append(out, e)
		}
	}
	return out
}

// IDs lists experiment ids.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// Runner caches compilations and simulations across experiments with two
// fingerprint-keyed levels:
//
//   - The compile cache is keyed by (benchmark, compiler options,
//     machine.ScheduleFingerprint) — everything the compiler can observe.
//     Machine variants that differ only in name or cache geometry (the §5
//     sweeps, ext-icache) share one compilation.
//   - The sim cache is keyed by the compile key plus machine.Fingerprint,
//     the canonical hash of the complete description including caches, so
//     two configurations can never collide unless every simulated detail
//     is identical.
//
// Both levels are singleflight: the first goroutine to request a key
// becomes its leader and concurrent requesters block on the entry's ready
// channel instead of duplicating the work.
type Runner struct {
	Cfg Config

	mu       sync.Mutex
	compiles map[string]*compileEntry
	sims     map[string]*simEntry
	stats    RunnerStats
	sem      chan struct{}
}

type compileEntry struct {
	ready chan struct{} // closed when prog/err are set
	prog  *isa.Program
	err   error
}

type simEntry struct {
	ready chan struct{} // closed when res/err are set
	res   *sim.Result
	err   error
}

// RunnerStats counts cache traffic, mostly so tooling (ilpbench -stats) can
// show how much work the two-level cache eliminated.
type RunnerStats struct {
	Compiles    int64 // compilations actually performed
	CompileHits int64 // compile requests served from (or joined onto) the cache
	Sims        int64 // simulations actually performed
	SimHits     int64 // measure requests served from (or joined onto) the cache
}

// NewRunner builds a runner.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:      cfg,
		compiles: map[string]*compileEntry{},
		sims:     map[string]*simEntry{},
		sem:      make(chan struct{}, cfg.workers()),
	}
}

// Stats returns a snapshot of the runner's cache counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Result, error) {
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(r)
}

// RunAll executes every experiment, writing each rendition to w.
func (r *Runner) RunAll(w io.Writer) error {
	for _, e := range registry {
		res, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return nil
}

// compileKey builds the compile-cache key: the benchmark, every compiler
// option, and the schedule-relevant machine fingerprint. Deliberately
// excludes machine name and cache geometry — the compiler cannot see them.
func compileKey(bench string, copts compiler.Options, m *machine.Config) string {
	return fmt.Sprintf("%s|L%d|u%d|c%v|ns%v|%s",
		bench, copts.Level, copts.Unroll, copts.Careful, copts.NoSchedule,
		m.ScheduleFingerprint())
}

// Measure compiles the named benchmark for machine m with the given options
// and simulates it, caching both levels of the work.
func (r *Runner) Measure(bench string, copts compiler.Options, m *machine.Config) (*sim.Result, error) {
	ckey := compileKey(bench, copts, m)
	skey := ckey + "|" + m.Fingerprint()

	r.mu.Lock()
	if se, ok := r.sims[skey]; ok {
		r.stats.SimHits++
		r.mu.Unlock()
		<-se.ready
		return se.res, se.err
	}
	se := &simEntry{ready: make(chan struct{})}
	r.sims[skey] = se
	r.stats.Sims++
	r.mu.Unlock()

	se.res, se.err = r.measure(bench, copts, m, ckey)
	close(se.ready)
	return se.res, se.err
}

// measure is the sim-cache miss path: acquire a worker slot, obtain the
// compiled program (cached across cache-geometry variants), and simulate.
func (r *Runner) measure(bench string, copts compiler.Options, m *machine.Config, ckey string) (*sim.Result, error) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()

	prog, err := r.compile(bench, copts, m, ckey)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(prog, sim.Options{Machine: m})
	if err != nil {
		return nil, fmt.Errorf("simulate %s on %s: %w", bench, m.Name, err)
	}
	return res, nil
}

// compile returns the compiled program for the key, compiling at most once.
// The leader already holds a worker slot, so waiters (who hold their own
// slots) can never starve it.
func (r *Runner) compile(bench string, copts compiler.Options, m *machine.Config, ckey string) (*isa.Program, error) {
	r.mu.Lock()
	if ce, ok := r.compiles[ckey]; ok {
		r.stats.CompileHits++
		r.mu.Unlock()
		<-ce.ready
		return ce.prog, ce.err
	}
	ce := &compileEntry{ready: make(chan struct{})}
	r.compiles[ckey] = ce
	r.stats.Compiles++
	r.mu.Unlock()

	b, err := benchmarks.ByName(bench)
	if err != nil {
		ce.err = err
	} else {
		copts.Machine = m
		var c *compiler.Compiled
		if c, err = compiler.Compile(b.Source, copts); err != nil {
			ce.err = fmt.Errorf("compile %s for %s: %w", bench, m.Name, err)
		} else {
			ce.prog = c.Prog
		}
	}
	close(ce.ready)
	return ce.prog, ce.err
}

// MeasureMany runs a set of (bench, opts, machine) jobs concurrently.
type job struct {
	bench string
	copts compiler.Options
	m     *machine.Config
}

func (r *Runner) measureMany(jobs []job) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Measure(jobs[i].bench, jobs[i].copts, jobs[i].m)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Speedup returns base-cycle speedup of run over base.
func speedup(run, base *sim.Result) float64 {
	return base.BaseCycles / run.BaseCycles
}

// defaultOpts is the paper's standard configuration for §4.1–4.3:
// "throughout the remainder of this paper we assume that pipeline
// scheduling is performed", with normal optimization and global register
// allocation, and Linpack's official 4x unrolling.
func defaultOpts(b benchmarks.Benchmark) compiler.Options {
	return compiler.Options{Level: compiler.O4, Unroll: b.DefaultUnroll}
}

// benchLabel renders the figure label (linpack.unroll4x).
func benchLabel(b benchmarks.Benchmark) string {
	if b.DefaultUnroll > 1 {
		return fmt.Sprintf("%s.unroll%dx", b.Name, b.DefaultUnroll)
	}
	return b.Name
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortedNames of a benchmark slice.
func sortedNames(bs []benchmarks.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}
