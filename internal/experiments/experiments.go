// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.7, §4, §5) from the reproduction's own compiler,
// benchmarks, and simulator. Each experiment produces a text rendition of
// the paper's table/figure plus structured series for tests to assert the
// shape results on (see EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/faultinject"
	"ilp/internal/ilperr"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/sim"
	"ilp/internal/store"
)

// The pipeline's structured error taxonomy, re-exported so callers inside
// and outside this package spell it the same way (see internal/ilperr).
type (
	// CompileError reports a failed (or panicked) compilation.
	CompileError = ilperr.CompileError
	// SimError reports a failed (or panicked) simulation.
	SimError = ilperr.SimError
)

// ErrPanic marks errors recovered from panicking workers.
var ErrPanic = ilperr.ErrPanic

// Config controls an experiment run.
type Config struct {
	// MaxDegree is the largest superscalar/superpipelined degree swept
	// (the paper uses 8). Smaller values make quick runs.
	MaxDegree int
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// Benchmarks restricts the suite (nil = all eight).
	Benchmarks []string

	// Retries is how many times a transiently failed compile or
	// measurement attempt is retried (inside its singleflight leader, with
	// capped exponential backoff) before the failure is published. 0
	// disables retries. Transience is decided by ilperr.IsTransient:
	// injected faults and store I/O errors retry, semantic failures,
	// panics, and cancellations do not.
	Retries int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it up to MaxBackoff. The wait is deterministically jittered
	// per (key, attempt). Zero means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the retry delay. Zero means 250ms.
	MaxBackoff time.Duration

	// Degrade, when set, turns a permanently failed measurement cell into
	// a placeholder sim.Result flagged Degraded (NaN cycle counts) with a
	// nil error, so the sweep renders a partial row instead of dying.
	// Cancellations still propagate as errors. The runner counts degraded
	// cells in its stats and SweepReport.
	Degrade bool

	// Store, when non-nil, makes results durable: every committed cell is
	// appended to the store as part of its measurement (so a failed append
	// retries the cell and a completed cell is never lost), and records
	// already in the store preload the sim cache, resuming a previous
	// sweep without re-simulating.
	Store *store.Store

	// Faults, when non-nil, is the deterministic fault injector driving
	// the chaos tests. nil (the default) injects nothing.
	Faults *faultinject.Injector
}

func (c Config) maxDegree() int {
	if c.MaxDegree <= 0 {
		return 8
	}
	return c.MaxDegree
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) retries() int {
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

func (c Config) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return time.Millisecond
	}
	return c.BaseBackoff
}

func (c Config) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.MaxBackoff
}

func (c Config) suite() ([]benchmarks.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return benchmarks.All(), nil
	}
	var out []benchmarks.Benchmark
	for _, name := range c.Benchmarks {
		b, err := benchmarks.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Text   string
	Series []metrics.Series
	// Degraded counts measurement cells that permanently failed and were
	// degraded to placeholder NaN rows while this experiment ran (only
	// possible with Config.Degrade; shared cells degraded by an earlier
	// experiment are counted there, not here).
	Degraded int
}

// Experiment is a registered reproduction. Run receives the context of the
// sweep that invoked it and must hand it down to every measurement so a
// cancelled caller stops in-flight simulations, not just queued ones.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, r *Runner) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(ctx context.Context, r *Runner) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// canonicalOrder is the paper's presentation order (registration order
// depends on file-name init order, which is not it).
var canonicalOrder = []string{
	"fig2", "tab2-1",
	"fig4-1", "fig4-2", "fig4-3", "fig4-4", "fig4-5",
	"fig4-6", "fig4-7", "fig4-8",
	"tab5-1", "sec5-1",
	"abl-branch", "abl-temps", "abl-sched", "abl-memdep",
	"ext-conflicts", "ext-vliw", "ext-icache", "ext-limits", "ext-slack",
}

// Experiments lists all registered experiments in the paper's order.
func Experiments() []Experiment {
	byID := map[string]Experiment{}
	for _, e := range registry {
		byID[e.ID] = e
	}
	var out []Experiment
	for _, id := range canonicalOrder {
		if e, ok := byID[id]; ok {
			out = append(out, e)
			delete(byID, id)
		}
	}
	// Anything registered but not in the canonical list goes last, in
	// registration order.
	for _, e := range registry {
		if _, left := byID[e.ID]; left {
			out = append(out, e)
		}
	}
	return out
}

// IDs lists experiment ids.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// Runner caches compilations and simulations across experiments with two
// fingerprint-keyed levels:
//
//   - The compile cache is keyed by (benchmark, compiler options,
//     machine.ScheduleFingerprint) — everything the compiler can observe.
//     Machine variants that differ only in name or cache geometry (the §5
//     sweeps, ext-icache) share one compilation.
//   - The sim cache is keyed by the compile key plus machine.Fingerprint,
//     the canonical hash of the complete description including caches, so
//     two configurations can never collide unless every simulated detail
//     is identical.
//
// Both levels are singleflight: the first goroutine to request a key
// becomes its leader and concurrent requesters block on the entry's ready
// channel instead of duplicating the work.
type Runner struct {
	Cfg Config

	// core is the shared half of the runner: caches, worker pool, stats,
	// and the batch scheduler. Views built with WithSweep alias the same
	// core under a different sweep shape (degree, benchmark subset), so a
	// long-running process — the ilpd daemon — serves every client from
	// one fingerprint-keyed singleflight cache regardless of how each
	// request slices the sweep.
	*core
}

// core is the state every view of a runner shares. It is embedded in
// Runner, so runner methods (and the package's tests) spell its fields
// as r.mu, r.sims, r.measureHook, … unchanged.
type core struct {
	mu       sync.Mutex
	compiles map[string]*compileEntry
	sims     map[string]*simEntry
	stats    RunnerStats
	sem      chan struct{}

	// batchMu serializes use of batch, the reusable multi-cell simulation
	// scheduler behind measureManyBatched. TryLock keeps the batched path
	// strictly opportunistic: a sweep arriving while another holds the batch
	// falls back to the goroutine fan-out instead of queueing.
	batchMu sync.Mutex
	batch   *sim.Batch

	// compileHook and measureHook, when non-nil, run inside the
	// corresponding singleflight leader just before the real work (after
	// worker-slot acquisition). Tests use them to inject delays, failures,
	// and panics into the pipeline; a non-nil returned error fails the job
	// as if the phase itself had failed.
	compileHook func(ctx context.Context, bench string, m *machine.Config) error
	measureHook func(ctx context.Context, bench string, m *machine.Config) error
}

type compileEntry struct {
	ready chan struct{} // closed when prog/code/err are set
	prog  *isa.Program
	// code is the shared immutable predecode of prog, built once by the
	// compile leader and reused read-only by every simulation of this
	// compile key (the sim key only adds cache geometry, which predecode
	// does not depend on).
	code *sim.Code
	err  error
}

type simEntry struct {
	ready chan struct{} // closed when res/err are set
	res   *sim.Result
	err   error
}

// RunnerStats counts cache traffic and fault-tolerance events, so tooling
// (ilpbench -stats) can show how much work the two-level cache eliminated
// and how the sweep weathered failures.
type RunnerStats struct {
	Compiles        int64 // compilations actually performed
	CompileHits     int64 // compile requests served from (or joined onto) the cache
	Sims            int64 // simulations actually performed
	SimHits         int64 // measure requests served from (or joined onto) the cache
	Predecodes      int64 // predecode artifacts built (once per compile key)
	PredecodeShared int64 // live simulations that reused a shared predecode
	Resumed         int64 // sim-cache cells preloaded from the result store
	Retries         int64 // transient-failure retry waits performed
	Degraded        int64 // cells whose permanent failure degraded to a placeholder
	Superblocks     int64 // superblock traces specialized across built predecodes
	CondTraces      int64 // profile-specialized traces (past likely-taken branches)
	BatchedCells    int64 // measurement cells simulated through a shared batch
	ParallelShards  int64 // worker shards used by batched measurement runs
	MispathExits    int64 // specialized-trace guard exits across batched cells
	Instructions    int64 // dynamic instructions simulated by live leader sims
}

// NewRunner builds a runner. When cfg.Store is set, every readable record
// already in the store preloads the sim cache (counted as Resumed), so
// cells committed by a previous — possibly interrupted — sweep are served
// without recompiling or re-simulating.
func NewRunner(cfg Config) *Runner {
	r := &Runner{
		Cfg: cfg,
		core: &core{
			compiles: map[string]*compileEntry{},
			sims:     map[string]*simEntry{},
			sem:      make(chan struct{}, cfg.workers()),
		},
	}
	if cfg.Store != nil {
		for _, rec := range cfg.Store.Records() {
			res := new(sim.Result)
			if err := json.Unmarshal(rec.Payload, res); err != nil {
				continue // unreadable payload: recompute the cell
			}
			ready := make(chan struct{})
			close(ready)
			r.sims[rec.Key] = &simEntry{ready: ready, res: res}
			r.stats.Resumed++
		}
	}
	return r
}

// WithSweep returns a view of r whose sweep shape — the swept degree and
// the benchmark subset — is overridden while every shared half of the
// runner (the singleflight compile/sim/predecode caches, the worker pool,
// the stats counters, the store, the retry/degrade policy) stays aliased
// to r. Concurrent sweeps through different views coalesce on identical
// cells exactly as concurrent calls through one runner do. maxDegree <= 0
// keeps r's degree; a nil benchmark list keeps r's subset.
func (r *Runner) WithSweep(maxDegree int, benchmarks []string) *Runner {
	cfg := r.Cfg
	if maxDegree > 0 {
		cfg.MaxDegree = maxDegree
	}
	if benchmarks != nil {
		cfg.Benchmarks = benchmarks
	}
	return &Runner{Cfg: cfg, core: r.core}
}

// Stats returns a snapshot of the runner's cache counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Result, error) {
	return r.RunCtx(context.Background(), id)
}

// experimentIDKey carries the running experiment's id down to the
// measurement pipeline, so store records carry their provenance.
type ctxKey int

const experimentIDKey ctxKey = iota

func withExperimentID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, experimentIDKey, id)
}

func experimentID(ctx context.Context) string {
	id, _ := ctx.Value(experimentIDKey).(string)
	return id
}

// RunCtx executes one experiment by id under ctx. The experiment is fault
// isolated: a panic anywhere in its run (including its own table-building
// code) is converted into an error matching ErrPanic instead of killing
// the process.
func (r *Runner) RunCtx(ctx context.Context, id string) (res *Result, err error) {
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, cause(ctx)
	}
	ctx = withExperimentID(ctx, id)
	before := r.Stats().Degraded
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fmt.Errorf("experiment %s: %w", id, ilperr.PanicError(v, debug.Stack()))
		}
	}()
	res, err = e.Run(ctx, r)
	if res != nil {
		res.Degraded = int(r.Stats().Degraded - before)
	}
	return res, err
}

// SweepReport is RunAll's fault-tolerance accounting. Cells and Degraded
// are resume invariant: an interrupted sweep resumed from its store reports
// the same committed-cell and degraded-cell totals as an uninterrupted run
// of the same configuration (Live/Resumed/Retried describe how this
// process got there and do vary).
type SweepReport struct {
	Experiments     int      // experiments rendered successfully
	Failed          []string // ids of experiments that failed (non-cancellation)
	Cells           int      // measurement cells with committed results
	Degraded        int64    // cells that permanently failed and render as NaN rows
	Retried         int64    // transient-failure retry waits performed
	Live            int64    // simulations performed by this process
	Resumed         int64    // cells preloaded from the result store
	Predecodes      int64    // predecode artifacts built (once per compile key)
	PredecodeShared int64    // live simulations that reused a shared predecode
	Superblocks     int64    // superblock traces specialized across built predecodes
	CondTraces      int64    // profile-specialized traces (past likely-taken branches)
	BatchedCells    int64    // measurement cells simulated through a shared batch
	ParallelShards  int64    // worker shards used by batched measurement runs
	MispathExits    int64    // specialized-trace guard exits across batched cells
}

// Report snapshots the runner's sweep accounting.
func (r *Runner) Report() SweepReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := SweepReport{
		Degraded:        r.stats.Degraded,
		Retried:         r.stats.Retries,
		Live:            r.stats.Sims,
		Resumed:         r.stats.Resumed,
		Predecodes:      r.stats.Predecodes,
		PredecodeShared: r.stats.PredecodeShared,
		Superblocks:     r.stats.Superblocks,
		CondTraces:      r.stats.CondTraces,
		BatchedCells:    r.stats.BatchedCells,
		ParallelShards:  r.stats.ParallelShards,
		MispathExits:    r.stats.MispathExits,
	}
	for _, se := range r.sims {
		select {
		case <-se.ready:
			if se.err == nil && se.res != nil {
				rep.Cells++
			}
		default: // still in flight; not committed
		}
	}
	return rep
}

// RunAll executes every experiment in the paper's canonical order
// (Experiments()), writing each rendition to w. Cancellation stops the
// sweep at the current experiment; any other experiment failure is
// recorded in the report (and the joined error) and the sweep moves on, so
// one broken experiment cannot take down the rest. Renditions already
// written remain valid partial output.
func (r *Runner) RunAll(ctx context.Context, w io.Writer) (SweepReport, error) {
	var (
		errs     []error
		rendered int
		failed   []string
	)
	report := func() SweepReport {
		rep := r.Report()
		rep.Experiments = rendered
		rep.Failed = failed
		return rep
	}
	for _, e := range Experiments() {
		res, err := r.RunCtx(ctx, e.ID)
		if err != nil {
			err = fmt.Errorf("%s: %w", e.ID, err)
			if isCancellation(ctx, err) {
				return report(), err
			}
			failed = append(failed, e.ID)
			errs = append(errs, err)
			continue
		}
		rendered++
		fmt.Fprintf(w, "==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return report(), errors.Join(errs...)
}

// compileKey builds the compile-cache key: the benchmark, every compiler
// option, and the schedule-relevant machine fingerprint. Deliberately
// excludes machine name and cache geometry — the compiler cannot see them.
func compileKey(bench string, copts compiler.Options, m *machine.Config) string {
	return fmt.Sprintf("%s|L%d|u%d|c%v|ns%v|%s",
		bench, copts.Level, copts.Unroll, copts.Careful, copts.NoSchedule,
		m.ScheduleFingerprint())
}

// cause is the error a cancelled measurement surfaces: the recorded
// cancellation cause when there is one (the sibling failure that stopped
// the sweep), the plain context error otherwise. Returning the cause by
// identity lets measureMany recognize propagated sibling failures and
// report each distinct root cause exactly once.
func cause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		return c
	}
	return ctx.Err()
}

// isCancellation reports whether err is the result of ctx being cancelled
// (directly, or as the propagated cause of a sibling failure) rather than a
// genuine failure of the job itself.
func isCancellation(ctx context.Context, err error) bool {
	if err == nil {
		return false
	}
	if c := context.Cause(ctx); c != nil && errors.Is(err, c) {
		return true
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Measure compiles the named benchmark for machine m with the given options
// and simulates it, caching both levels of the work.
func (r *Runner) Measure(bench string, copts compiler.Options, m *machine.Config) (*sim.Result, error) {
	return r.MeasureCtx(context.Background(), bench, copts, m)
}

// MeasureCtx is Measure under a context: a done ctx aborts queued work
// (waiting for a worker slot or a singleflight entry) immediately and
// in-flight simulation within the engine's polling interval. A leader that
// fails because of cancellation does not poison the cache — its entry is
// evicted so a later call with a live context redoes the work — and any
// panic in the pipeline surfaces as a structured CompileError/SimError
// matching ErrPanic instead of crashing the process.
//
// Fault tolerance happens here and below: the leader retries transient
// attempt failures per Config.Retries (publishing an exhausted transient
// failure as permanent, so nothing upstream retries a cached verdict), and
// with Config.Degrade a genuine failure is returned to every caller as a
// Degraded placeholder result instead of an error.
func (r *Runner) MeasureCtx(ctx context.Context, bench string, copts compiler.Options, m *machine.Config) (*sim.Result, error) {
	if ctx.Err() != nil {
		return nil, cause(ctx)
	}
	fp := m.Fingerprint()
	ckey := compileKey(bench, copts, m)
	skey := ckey + "|" + fp

	r.mu.Lock()
	if se, ok := r.sims[skey]; ok {
		r.stats.SimHits++
		r.mu.Unlock()
		select {
		case <-se.ready:
			res, err := r.finish(ctx, m, se.res, se.err)
			notify(ctx, bench, m, fp, res, err, true)
			return res, err
		case <-ctx.Done():
			return nil, cause(ctx)
		}
	}
	se := &simEntry{ready: make(chan struct{})}
	r.sims[skey] = se
	r.stats.Sims++
	r.mu.Unlock()

	se.res, se.err = r.measure(ctx, bench, copts, m, ckey, skey)
	if se.err != nil && ilperr.IsTransient(se.err) {
		// Retries exhausted: publish as permanent so no later policy layer
		// retries a verdict the cache will keep serving.
		se.err = ilperr.MarkPermanent(se.err)
	}
	if se.err != nil && ctx.Err() != nil {
		// Cancellation-induced failure: evict the entry (before waking
		// waiters) so the key is retried rather than cached as failed.
		r.mu.Lock()
		if r.sims[skey] == se {
			delete(r.sims, skey)
		}
		r.mu.Unlock()
	} else if se.err != nil && r.Cfg.Degrade && !isCancellation(ctx, se.err) {
		// The cell permanently failed and will degrade for every caller;
		// count it once, at the leader.
		r.mu.Lock()
		r.stats.Degraded++
		r.mu.Unlock()
	}
	close(se.ready)
	res, err := r.finish(ctx, m, se.res, se.err)
	notify(ctx, bench, m, fp, res, err, false)
	return res, err
}

// finish applies the degradation policy to a cell's outcome: with
// Config.Degrade, a genuine (non-cancellation) failure becomes a
// placeholder result flagged Degraded whose cycle counts are NaN, so sweep
// tables render a partial row instead of propagating the error.
func (r *Runner) finish(ctx context.Context, m *machine.Config, res *sim.Result, err error) (*sim.Result, error) {
	if err == nil || !r.Cfg.Degrade || isCancellation(ctx, err) {
		return res, err
	}
	return &sim.Result{Machine: m.Name, Degraded: true, BaseCycles: math.NaN()}, nil
}

// measure is the sim-cache miss path: acquire a worker slot (held across
// all attempts), then run measureAttempt under the transient-failure retry
// policy. It is the singleflight leader for its sim key.
func (r *Runner) measure(ctx context.Context, bench string, copts compiler.Options, m *machine.Config, ckey, skey string) (*sim.Result, error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, cause(ctx)
	}
	defer func() { <-r.sem }()

	var (
		res *sim.Result
		err error
	)
	for attempt := 0; ; attempt++ {
		res, err = r.measureAttempt(ctx, bench, copts, m, ckey, skey, attempt)
		if err == nil || !ilperr.IsTransient(err) || attempt >= r.Cfg.retries() {
			break
		}
		r.noteRetry()
		if werr := r.sleepBackoff(ctx, skey, attempt); werr != nil {
			res, err = nil, werr
			break
		}
	}
	return res, err
}

// measureAttempt is one try at a measurement cell: compile (cached),
// pass the fault-injection sites, simulate, and persist the result to the
// store. The store append is part of the attempt on purpose — if the
// append fails, the attempt fails and the retry recomputes and re-appends,
// so a cell is committed exactly when its record is durable. The attempt
// carries the panic isolation for the simulation phase (injected worker
// panics land here too, classifying permanent via ErrPanic).
func (r *Runner) measureAttempt(ctx context.Context, bench string, copts compiler.Options, m *machine.Config, ckey, skey string, attempt int) (res *sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &SimError{
				Benchmark: bench, Machine: m.Name, Fingerprint: m.Fingerprint(),
				Phase: ilperr.PhaseSimulate, Err: ilperr.PanicError(v, debug.Stack()),
			}
		}
	}()
	if ctx.Err() != nil {
		return nil, cause(ctx)
	}
	prog, code, err := r.compile(ctx, bench, copts, m, ckey)
	if err != nil {
		return nil, err
	}
	inj := r.Cfg.Faults
	if werr := inj.Slow(ctx, skey, attempt); werr != nil {
		return nil, werr
	}
	if inj.ShouldPanic(skey, attempt) {
		panic(fmt.Sprintf("injected fault: worker panic at %s (attempt %d)", skey, attempt))
	}
	if ferr := inj.Fail(faultinject.SiteSim, skey, attempt); ferr != nil {
		return nil, r.simFailure(ctx, bench, m, ferr)
	}
	if h := r.measureHook; h != nil {
		if err := h(ctx, bench, m); err != nil {
			return nil, r.simFailure(ctx, bench, m, err)
		}
	}
	res, err = sim.RunCtx(ctx, prog, sim.Options{Machine: m, Code: code})
	if err != nil {
		return nil, r.simFailure(ctx, bench, m, err)
	}
	r.mu.Lock()
	if code != nil {
		r.stats.PredecodeShared++
	}
	r.stats.Instructions += res.Instructions
	r.mu.Unlock()
	if perr := r.persist(ctx, bench, m, skey, attempt, res); perr != nil {
		return nil, perr
	}
	return res, nil
}

// persist makes a committed cell durable. A store I/O failure (or an
// injected SiteStore fault) is transient — the retry policy reruns the
// whole attempt, so the store never records a cell the runner did not
// hand back, and the runner never hands back a cell the store lost.
func (r *Runner) persist(ctx context.Context, bench string, m *machine.Config, skey string, attempt int, res *sim.Result) error {
	st := r.Cfg.Store
	if ferr := r.Cfg.Faults.Fail(faultinject.SiteStore, skey, attempt); ferr != nil {
		path := "(none)"
		if st != nil {
			path = st.Path()
		}
		return &ilperr.StoreError{Path: path, Op: "append", Err: ferr}
	}
	if st == nil {
		return nil
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return ilperr.MarkPermanent(&ilperr.StoreError{Path: st.Path(), Op: "append", Err: err})
	}
	return st.Append(store.Record{
		Key: skey, Experiment: experimentID(ctx), Benchmark: bench,
		Machine: m.Name, Fingerprint: m.Fingerprint(), Payload: payload,
	})
}

// noteRetry counts one retry wait.
func (r *Runner) noteRetry() {
	r.mu.Lock()
	r.stats.Retries++
	r.mu.Unlock()
}

// sleepBackoff waits the capped-exponential, deterministically jittered
// backoff before retrying key's attempt, or returns the cancellation cause
// early.
func (r *Runner) sleepBackoff(ctx context.Context, key string, attempt int) error {
	return sleepCtx(ctx, backoffDelay(r.Cfg.baseBackoff(), r.Cfg.maxBackoff(), key, attempt))
}

// backoffDelay doubles base per attempt up to max, with equal jitter: half
// the delay is fixed, half is hash-derived from (key, attempt), so
// schedules are reproducible run-to-run yet colliding retries spread out.
func backoffDelay(base, max time.Duration, key string, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0, byte(attempt), byte(attempt >> 8)})
	frac := float64(h.Sum64()>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// sleepCtx sleeps d, or returns the cancellation cause if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if ctx.Err() != nil {
			return cause(ctx)
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return cause(ctx)
	}
}

// simFailure classifies a simulation-phase error: cancellation propagates
// unwrapped (preserving the cause's identity), anything else becomes a
// structured SimError.
func (r *Runner) simFailure(ctx context.Context, bench string, m *machine.Config, err error) error {
	if isCancellation(ctx, err) {
		return err
	}
	return &SimError{
		Benchmark: bench, Machine: m.Name, Fingerprint: m.Fingerprint(),
		Phase: ilperr.PhaseSimulate, Err: err,
	}
}

// compile returns the compiled program for the key, compiling at most once.
// The leader already holds a worker slot, so waiters (who hold their own
// slots) can never starve it.
func (r *Runner) compile(ctx context.Context, bench string, copts compiler.Options, m *machine.Config, ckey string) (*isa.Program, *sim.Code, error) {
	r.mu.Lock()
	if ce, ok := r.compiles[ckey]; ok {
		r.stats.CompileHits++
		r.mu.Unlock()
		select {
		case <-ce.ready:
			return ce.prog, ce.code, ce.err
		case <-ctx.Done():
			return nil, nil, cause(ctx)
		}
	}
	ce := &compileEntry{ready: make(chan struct{})}
	r.compiles[ckey] = ce
	r.stats.Compiles++
	r.mu.Unlock()

	ce.prog, ce.code, ce.err = r.doCompile(ctx, bench, copts, m, ckey)
	if ce.err != nil && ilperr.IsTransient(ce.err) {
		// Retries exhausted: publish permanent, so a sim-level retry that
		// hits this cached verdict does not spin on it.
		ce.err = ilperr.MarkPermanent(ce.err)
	}
	if ce.err != nil && ctx.Err() != nil {
		// Same eviction rule as the sim cache: do not poison the key with
		// a cancellation-induced failure.
		r.mu.Lock()
		if r.compiles[ckey] == ce {
			delete(r.compiles, ckey)
		}
		r.mu.Unlock()
	}
	close(ce.ready)
	return ce.prog, ce.code, ce.err
}

// doCompile is the compile-cache miss path: it runs compileAttempt under
// the same transient-failure retry policy as measure.
func (r *Runner) doCompile(ctx context.Context, bench string, copts compiler.Options, m *machine.Config, ckey string) (*isa.Program, *sim.Code, error) {
	var (
		prog *isa.Program
		code *sim.Code
		err  error
	)
	for attempt := 0; ; attempt++ {
		prog, code, err = r.compileAttempt(ctx, bench, copts, m, ckey, attempt)
		if err == nil || !ilperr.IsTransient(err) || attempt >= r.Cfg.retries() {
			break
		}
		r.noteRetry()
		if werr := r.sleepBackoff(ctx, ckey, attempt); werr != nil {
			prog, code, err = nil, nil, werr
			break
		}
	}
	return prog, code, err
}

// compileAttempt is one try at a compilation, carrying the panic isolation
// and error wrapping for the compile phase (and the SiteCompile fault
// hook).
func (r *Runner) compileAttempt(ctx context.Context, bench string, copts compiler.Options, m *machine.Config, ckey string, attempt int) (prog *isa.Program, code *sim.Code, err error) {
	defer func() {
		if v := recover(); v != nil {
			prog, code, err = nil, nil, &CompileError{
				Benchmark: bench, Machine: m.Name, Fingerprint: m.ScheduleFingerprint(),
				Phase: ilperr.PhaseCompile, Err: ilperr.PanicError(v, debug.Stack()),
			}
		}
	}()
	if ctx.Err() != nil {
		return nil, nil, cause(ctx)
	}
	b, err := benchmarks.ByName(bench)
	if err != nil {
		return nil, nil, err
	}
	if ferr := r.Cfg.Faults.Fail(faultinject.SiteCompile, ckey, attempt); ferr != nil {
		return nil, nil, r.compileFailure(ctx, bench, m, ferr)
	}
	if h := r.compileHook; h != nil {
		if err := h(ctx, bench, m); err != nil {
			return nil, nil, r.compileFailure(ctx, bench, m, err)
		}
	}
	copts.Machine = m
	c, err := compiler.Compile(b.Source, copts)
	if err != nil {
		return nil, nil, r.compileFailure(ctx, bench, m, err)
	}
	// Predecode once per compile key: the artifact is immutable, so every
	// simulation of this program — across all cache geometries and all
	// sweep workers — shares it read-only instead of re-translating.
	code, err = sim.Predecode(c.Prog, m)
	if err != nil {
		return nil, nil, r.compileFailure(ctx, bench, m, err)
	}
	// Profile-guided trace specialization: a short budgeted pre-run folds
	// the engine's block counters into a branch profile, and traces are
	// rebuilt to continue past likely-taken conditionals behind mispath
	// guards. Strictly best-effort — a pre-run that errors (a program that
	// faults, a cancelled ctx) or a profile that specializes nothing keeps
	// the plain predecode; either way timing is bit-identical by
	// construction, so the cache key needs no profile component.
	cond := 0
	if prof, perr := sim.ProfileRun(ctx, code, 0, 0); perr == nil {
		if spec := code.Specialize(prof); spec.CondTraces() > 0 {
			code, cond = spec, spec.CondTraces()
		}
	} else if isCancellation(ctx, perr) {
		return nil, nil, perr
	}
	r.mu.Lock()
	r.stats.Predecodes++
	r.stats.Superblocks += int64(code.Superblocks())
	r.stats.CondTraces += int64(cond)
	r.mu.Unlock()
	return c.Prog, code, nil
}

// compileFailure is simFailure's compile-phase twin.
func (r *Runner) compileFailure(ctx context.Context, bench string, m *machine.Config, err error) error {
	if isCancellation(ctx, err) {
		return err
	}
	return &CompileError{
		Benchmark: bench, Machine: m.Name, Fingerprint: m.ScheduleFingerprint(),
		Phase: ilperr.PhaseCompile, Err: err,
	}
}

// MeasureMany runs a set of (bench, opts, machine) jobs concurrently.
type job struct {
	bench string
	copts compiler.Options
	m     *machine.Config
}

// measureMany fans the jobs out over the worker pool under a shared
// cancellable context: the first failure cancels every queued and in-flight
// sibling (first error wins — it becomes the context's cause), a panicking
// worker is converted to a structured error instead of crashing the
// process, and every *distinct* root cause that raced in before the
// cancellation landed is reported via errors.Join.
func (r *Runner) measureMany(pctx context.Context, jobs []job) ([]*sim.Result, error) {
	if r.batchable() && r.batchMu.TryLock() {
		defer r.batchMu.Unlock()
		return r.measureManyBatched(pctx, jobs)
	}
	ctx, cancel := context.WithCancelCause(pctx)
	defer cancel(context.Canceled)

	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					errs[i] = &SimError{
						Benchmark: jobs[i].bench, Machine: jobs[i].m.Name,
						Phase: ilperr.PhaseSimulate, Err: ilperr.PanicError(v, debug.Stack()),
					}
					cancel(errs[i])
				}
			}()
			results[i], errs[i] = r.MeasureCtx(ctx, jobs[i].bench, jobs[i].copts, jobs[i].m)
			if errs[i] != nil {
				cancel(errs[i]) // first failure wins; no-op for later ones
			}
		}(i)
	}
	wg.Wait()
	if err := joinDistinct(context.Cause(ctx), errs); err != nil {
		return nil, err
	}
	// A request cancelled after its last cell resolved (a deadline or an
	// instruction-budget trip landing in the final notify) must still fail
	// the sweep: the caller's context is dead, so the caller gets its
	// cause, not a table it no longer has the budget to claim.
	if pctx.Err() != nil {
		return nil, cause(pctx)
	}
	return results, nil
}

// batchable reports whether the runner's configuration allows the batched
// measurement path: nothing may hook, persist, or perturb individual
// attempts, because a batched cell runs exactly one attempt inside the
// shared scheduler. With no injector and no store, Config.Retries is dead
// configuration — ilperr.IsTransient can only be true for injected faults
// and store I/O, so the per-attempt retry loop provably never fires and a
// single attempt is equivalent. Degrade is compatible too (a result policy
// applied after the fact); everything else falls back to the per-cell
// goroutine path.
func (r *Runner) batchable() bool {
	return r.Cfg.Faults == nil && r.Cfg.Store == nil && r.measureHook == nil
}

// publish installs a leader's outcome on its sim-cache entry with the same
// tail policy as MeasureCtx: exhausted-transient failures become permanent,
// cancellation-induced failures evict the entry instead of poisoning it, and
// genuine failures under Degrade are counted once, at the leader.
func (r *Runner) publish(ctx context.Context, skey string, se *simEntry, res *sim.Result, err error) {
	if err != nil && ilperr.IsTransient(err) {
		err = ilperr.MarkPermanent(err)
	}
	se.res, se.err = res, err
	if err != nil && ctx.Err() != nil {
		r.mu.Lock()
		if r.sims[skey] == se {
			delete(r.sims, skey)
		}
		r.mu.Unlock()
	} else if err != nil && r.Cfg.Degrade && !isCancellation(ctx, err) {
		r.mu.Lock()
		r.stats.Degraded++
		r.mu.Unlock()
	}
	close(se.ready)
}

// measureManyBatched is measureMany's single-goroutine fast path: instead of
// fanning every cell out to its own worker, the sweep claims its sim-cache
// entries up front and advances all cache-miss cells together through one
// sim.Batch — an interleaved scheduler whose per-cell engines live in a dense
// slab, so N cells share one core without goroutine switches. The cache
// protocol is unchanged: claimed entries are singleflight leaders published
// exactly as MeasureCtx would publish them, so concurrent MeasureCtx callers
// (and later sweeps) join them without observing any difference, and timing
// is bit-identical because the batch scheduler never alters a cell's engine
// state between slices.
func (r *Runner) measureManyBatched(ctx context.Context, jobs []job) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))

	type cell struct {
		idx            int
		ckey, skey, fp string
		se             *simEntry
	}
	var owned, joined []cell
	r.mu.Lock()
	for i, j := range jobs {
		fp := j.m.Fingerprint()
		ckey := compileKey(j.bench, j.copts, j.m)
		skey := ckey + "|" + fp
		if se, ok := r.sims[skey]; ok {
			r.stats.SimHits++
			joined = append(joined, cell{i, ckey, skey, fp, se})
			continue
		}
		se := &simEntry{ready: make(chan struct{})}
		r.sims[skey] = se
		r.stats.Sims++
		owned = append(owned, cell{i, ckey, skey, fp, se})
	}
	r.mu.Unlock()

	// One worker slot covers the whole batch — the scheduler is a single
	// goroutine by design. If cancellation wins the slot race, the claimed
	// entries must still be published (and evicted) so no waiter hangs.
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		err := cause(ctx)
		for _, c := range owned {
			r.publish(ctx, c.skey, c.se, nil, err)
		}
		return nil, err
	}
	defer func() { <-r.sem }()

	// Compile (cached, singleflight) and collect the runnable cells.
	var runs []sim.BatchRun
	var ran []cell
	for _, c := range owned {
		j := jobs[c.idx]
		prog, code, err := r.compile(ctx, j.bench, j.copts, j.m, c.ckey)
		if err != nil {
			r.publish(ctx, c.skey, c.se, nil, err)
			results[c.idx], errs[c.idx] = r.finish(ctx, j.m, nil, err)
			notify(ctx, j.bench, j.m, c.fp, results[c.idx], errs[c.idx], false)
			continue
		}
		runs = append(runs, sim.BatchRun{Prog: prog, Opts: sim.Options{Machine: j.m, Code: code}})
		ran = append(ran, c)
	}

	if len(runs) > 0 {
		if r.batch == nil {
			// The batch shards its cell slab across the runner's configured
			// worker count (GOMAXPROCS by default): the whole sweep holds one
			// pool slot — the batched path is opportunistic and singular
			// (batchMu) — but saturates the cores the pool was sized for.
			r.batch = sim.NewBatchWorkers(r.Cfg.workers())
		}
		bres, berrs := r.batch.Run(ctx, runs)
		var shared, instrs int64
		for k, c := range ran {
			j := jobs[c.idx]
			res, err := bres[k], berrs[k]
			if err != nil {
				err = r.simFailure(ctx, j.bench, j.m, err)
			} else {
				shared++ // every batched cell runs on its shared predecode
				instrs += res.Instructions
			}
			r.publish(ctx, c.skey, c.se, res, err)
			results[c.idx], errs[c.idx] = r.finish(ctx, j.m, res, err)
			notify(ctx, j.bench, j.m, c.fp, results[c.idx], errs[c.idx], false)
		}
		r.mu.Lock()
		r.stats.PredecodeShared += shared
		r.stats.BatchedCells += int64(len(runs))
		r.stats.ParallelShards += int64(r.batch.Shards())
		r.stats.MispathExits += r.batch.Mispaths()
		r.stats.Instructions += instrs
		r.mu.Unlock()
	}

	// Cells led elsewhere (or duplicated within this sweep) join their
	// entries exactly as MeasureCtx waiters do.
	for _, c := range joined {
		j := jobs[c.idx]
		select {
		case <-c.se.ready:
			results[c.idx], errs[c.idx] = r.finish(ctx, j.m, c.se.res, c.se.err)
			notify(ctx, j.bench, j.m, c.fp, results[c.idx], errs[c.idx], true)
		case <-ctx.Done():
			results[c.idx], errs[c.idx] = nil, cause(ctx)
		}
	}
	if err := joinDistinct(context.Cause(ctx), errs); err != nil {
		return nil, err
	}
	// Same tail rule as the fan-out path: a cancellation that landed while
	// (or after) the batch ran — in particular an instruction-budget trip
	// fired by the publish loop's own notify — fails the sweep even though
	// every cell published cleanly.
	if ctx.Err() != nil {
		return nil, cause(ctx)
	}
	return results, nil
}

// joinDistinct reduces a sweep's per-job errors to its distinct root
// causes: the cancellation cause first (the failure that stopped the
// sweep), then any other genuine failures in job order. Sibling errors that
// are merely the propagated cancellation — the cause itself, returned by
// identity, or a bare context error — collapse into one.
func joinDistinct(cause error, errs []error) error {
	seen := map[error]bool{}
	var distinct []error
	add := func(err error) {
		if err == nil || seen[err] {
			return
		}
		seen[err] = true
		distinct = append(distinct, err)
	}
	for _, err := range errs {
		if err == cause {
			add(cause) // report the root cause first
		}
	}
	for _, err := range errs {
		if cause != nil && (errors.Is(cause, err) || err == context.Canceled || err == context.DeadlineExceeded) {
			continue // propagation of the recorded cause, already reported
		}
		add(err)
	}
	switch len(distinct) {
	case 0:
		return nil
	case 1:
		return distinct[0]
	default:
		return errors.Join(distinct...)
	}
}

// Speedup returns base-cycle speedup of run over base.
func speedup(run, base *sim.Result) float64 {
	return base.BaseCycles / run.BaseCycles
}

// defaultOpts is the paper's standard configuration for §4.1–4.3:
// "throughout the remainder of this paper we assume that pipeline
// scheduling is performed", with normal optimization and global register
// allocation, and Linpack's official 4x unrolling.
func defaultOpts(b benchmarks.Benchmark) compiler.Options {
	return compiler.Options{Level: compiler.O4, Unroll: b.DefaultUnroll}
}

// benchLabel renders the figure label (linpack.unroll4x).
func benchLabel(b benchmarks.Benchmark) string {
	if b.DefaultUnroll > 1 {
		return fmt.Sprintf("%s.unroll%dx", b.Name, b.DefaultUnroll)
	}
	return b.Name
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	if t.rows == nil {
		// One allocation up front instead of the append doubling ladder;
		// the sweep tables run one row per benchmark or per degree.
		t.rows = make([][]string, 0, 16)
	}
	t.rows = append(t.rows, cells)
}

func (t *table) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	lineWidth := 1 // newline
	for _, w := range widths {
		lineWidth += w + 2
	}
	var b strings.Builder
	b.Grow((len(t.rows) + 2) * lineWidth)
	// Cells are padded with explicit space runs rather than per-cell
	// fmt.Fprintf("%-*s") — the boxing and verb parsing in fmt were a top
	// allocation site of the sweep render path. Every column is padded,
	// including the last, matching the previous output byte for byte.
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for k := len(c); k < widths[i]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		for k := 0; k < w; k++ {
			b.WriteByte('-')
		}
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// fmtF formats a float compactly ("%.2f", including NaN/±Inf spellings),
// without fmt's interface boxing.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// fmtI formats an integer table cell.
func fmtI(v int) string { return strconv.Itoa(v) }

// sortedNames of a benchmark slice.
func sortedNames(bs []benchmarks.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}
