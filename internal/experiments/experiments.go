// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.7, §4, §5) from the reproduction's own compiler,
// benchmarks, and simulator. Each experiment produces a text rendition of
// the paper's table/figure plus structured series for tests to assert the
// shape results on (see EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/sim"
)

// Config controls an experiment run.
type Config struct {
	// MaxDegree is the largest superscalar/superpipelined degree swept
	// (the paper uses 8). Smaller values make quick runs.
	MaxDegree int
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// Benchmarks restricts the suite (nil = all eight).
	Benchmarks []string
}

func (c Config) maxDegree() int {
	if c.MaxDegree <= 0 {
		return 8
	}
	return c.MaxDegree
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) suite() ([]benchmarks.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return benchmarks.All(), nil
	}
	var out []benchmarks.Benchmark
	for _, name := range c.Benchmarks {
		b, err := benchmarks.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Text   string
	Series []metrics.Series
}

// Experiment is a registered reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(r *Runner) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// canonicalOrder is the paper's presentation order (registration order
// depends on file-name init order, which is not it).
var canonicalOrder = []string{
	"fig2", "tab2-1",
	"fig4-1", "fig4-2", "fig4-3", "fig4-4", "fig4-5",
	"fig4-6", "fig4-7", "fig4-8",
	"tab5-1", "sec5-1",
	"abl-branch", "abl-temps", "abl-sched", "abl-memdep",
	"ext-conflicts", "ext-vliw", "ext-icache", "ext-limits",
}

// Experiments lists all registered experiments in the paper's order.
func Experiments() []Experiment {
	byID := map[string]Experiment{}
	for _, e := range registry {
		byID[e.ID] = e
	}
	var out []Experiment
	for _, id := range canonicalOrder {
		if e, ok := byID[id]; ok {
			out = append(out, e)
			delete(byID, id)
		}
	}
	// Anything registered but not in the canonical list goes last, in
	// registration order.
	for _, e := range registry {
		if _, left := byID[e.ID]; left {
			out = append(out, e)
		}
	}
	return out
}

// IDs lists experiment ids.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// Runner caches compilations and simulations across experiments.
type Runner struct {
	Cfg Config

	mu    sync.Mutex
	cache map[string]*sim.Result
	sem   chan struct{}
}

// NewRunner builds a runner.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:   cfg,
		cache: map[string]*sim.Result{},
		sem:   make(chan struct{}, cfg.workers()),
	}
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Result, error) {
	e, err := ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(r)
}

// RunAll executes every experiment, writing each rendition to w.
func (r *Runner) RunAll(w io.Writer) error {
	for _, e := range registry {
		res, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
	}
	return nil
}

// measureKey builds the cache key.
func measureKey(bench string, copts compiler.Options, m *machine.Config) string {
	return fmt.Sprintf("%s|L%d|u%d|c%v|ns%v|%s|w%d|d%d|t%d,%d|h%d,%d|br%d|tb%v|ic%v|dc%v",
		bench, copts.Level, copts.Unroll, copts.Careful, copts.NoSchedule,
		m.Name, m.IssueWidth, m.Degree,
		m.IntTemps, m.FPTemps, m.IntHomes, m.FPHomes,
		m.BranchRedirect, m.TakenBranchEndsGroup, m.ICache != nil, m.DCache != nil)
}

// Measure compiles the named benchmark for machine m with the given options
// and simulates it, caching the result.
func (r *Runner) Measure(bench string, copts compiler.Options, m *machine.Config) (*sim.Result, error) {
	key := measureKey(bench, copts, m)
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	r.sem <- struct{}{}
	defer func() { <-r.sem }()

	// Re-check after acquiring the worker slot.
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	b, err := benchmarks.ByName(bench)
	if err != nil {
		return nil, err
	}
	copts.Machine = m
	c, err := compiler.Compile(b.Source, copts)
	if err != nil {
		return nil, fmt.Errorf("compile %s for %s: %w", bench, m.Name, err)
	}
	res, err := sim.Run(c.Prog, sim.Options{Machine: m})
	if err != nil {
		return nil, fmt.Errorf("simulate %s on %s: %w", bench, m.Name, err)
	}
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res, nil
}

// MeasureMany runs a set of (bench, opts, machine) jobs concurrently.
type job struct {
	bench string
	copts compiler.Options
	m     *machine.Config
}

func (r *Runner) measureMany(jobs []job) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Measure(jobs[i].bench, jobs[i].copts, jobs[i].m)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Speedup returns base-cycle speedup of run over base.
func speedup(run, base *sim.Result) float64 {
	return base.BaseCycles / run.BaseCycles
}

// defaultOpts is the paper's standard configuration for §4.1–4.3:
// "throughout the remainder of this paper we assume that pipeline
// scheduling is performed", with normal optimization and global register
// allocation, and Linpack's official 4x unrolling.
func defaultOpts(b benchmarks.Benchmark) compiler.Options {
	return compiler.Options{Level: compiler.O4, Unroll: b.DefaultUnroll}
}

// benchLabel renders the figure label (linpack.unroll4x).
func benchLabel(b benchmarks.Benchmark) string {
	if b.DefaultUnroll > 1 {
		return fmt.Sprintf("%s.unroll%dx", b.Name, b.DefaultUnroll)
	}
	return b.Name
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortedNames of a benchmark slice.
func sortedNames(bs []benchmarks.Benchmark) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}
