package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// collect installs a synchronized observer and returns the slice pointer
// plus the derived context.
func collect(ctx context.Context) (context.Context, func() []CellEvent) {
	var (
		mu  sync.Mutex
		evs []CellEvent
	)
	octx := WithObserver(ctx, func(ev CellEvent) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	})
	return octx, func() []CellEvent {
		mu.Lock()
		defer mu.Unlock()
		return append([]CellEvent(nil), evs...)
	}
}

// TestObserverSeesEveryCell: a sweep under an observer reports one event
// per resolved cell, live events match the runner's Sims counter, and a
// second identical sweep reports the same cells as cached.
func TestObserverSeesEveryCell(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 2, Workers: 2, Benchmarks: []string{"whet"}})

	ctx, events := collect(context.Background())
	if _, err := r.RunCtx(ctx, "tab2-1"); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	first := events()
	if len(first) == 0 {
		t.Fatalf("observer saw no events")
	}
	var live int
	for _, ev := range first {
		if ev.Err != nil || ev.Degraded {
			t.Fatalf("clean sweep emitted failure event: %+v", ev)
		}
		if ev.Experiment != "tab2-1" {
			t.Fatalf("event not attributed to its experiment: %+v", ev)
		}
		if ev.Benchmark == "" || ev.Machine == "" || ev.Fingerprint == "" {
			t.Fatalf("event missing coordinates: %+v", ev)
		}
		if !ev.Cached {
			live++
			if ev.Instructions <= 0 {
				t.Fatalf("live event with no instructions: %+v", ev)
			}
		}
	}
	if got := r.Stats().Sims; int64(live) != got {
		t.Fatalf("observer saw %d live cells, runner performed %d sims", live, got)
	}

	ctx2, events2 := collect(context.Background())
	if _, err := r.RunCtx(ctx2, "tab2-1"); err != nil {
		t.Fatalf("second sweep failed: %v", err)
	}
	second := events2()
	if len(second) != len(first) {
		t.Fatalf("second sweep saw %d events, first saw %d", len(second), len(first))
	}
	for _, ev := range second {
		if !ev.Cached {
			t.Fatalf("repeat sweep performed a live simulation: %+v", ev)
		}
	}
}

// TestObserverChains: WithObserver on an already-observed context fires
// both observers, existing one first.
func TestObserverChains(t *testing.T) {
	var order []string
	ctx := WithObserver(context.Background(), func(CellEvent) { order = append(order, "outer") })
	ctx = WithObserver(ctx, func(CellEvent) { order = append(order, "inner") })
	notifyTest(ctx)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("chained observers fired as %v, want [outer inner]", order)
	}
}

func notifyTest(ctx context.Context) {
	obs := observerFrom(ctx)
	obs(CellEvent{})
}

// TestInstructionBudgetCancelsSweep: a budget far below the sweep's cost
// stops it with a cause wrapping ErrBudgetExceeded, and work done up to
// the trip stays cached for the next request.
func TestInstructionBudgetCancelsSweep(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 4, Workers: 2})
	ctx, stop := WithInstructionBudget(context.Background(), 1)
	defer stop()
	_, err := r.RunCtx(ctx, "fig4-1")
	if err == nil {
		t.Fatalf("over-budget sweep succeeded")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget sweep failed with %v, want ErrBudgetExceeded", err)
	}
	if !strings.Contains(err.Error(), "budget 1") {
		t.Fatalf("budget error does not name the budget: %v", err)
	}

	// The budget trip is a cancellation: committed cells survive, and a
	// fresh, unbudgeted run completes from there.
	if _, err := r.RunCtx(context.Background(), "fig4-1"); err != nil {
		t.Fatalf("rerun after budget trip failed: %v", err)
	}
}

// TestInstructionBudgetAllowsCached: cached cells are free, so a sweep
// that was already fully simulated replays under a tiny budget.
func TestInstructionBudgetAllowsCached(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 2, Workers: 2, Benchmarks: []string{"whet"}})
	if _, err := r.Run("tab2-1"); err != nil {
		t.Fatalf("priming sweep failed: %v", err)
	}
	ctx, stop := WithInstructionBudget(context.Background(), 1)
	defer stop()
	if _, err := r.RunCtx(ctx, "tab2-1"); err != nil {
		t.Fatalf("cached sweep tripped the budget: %v", err)
	}
}

// TestWithSweepSharesCaches: two views of one runner with different sweep
// shapes share the fingerprint-keyed caches — the narrow view's cells are
// a subset of the wide view's, so rerunning them performs zero new sims.
func TestWithSweepSharesCaches(t *testing.T) {
	base := NewRunner(Config{Workers: 2})
	wide := base.WithSweep(4, []string{"whet", "stanford"})
	if _, err := wide.Run("tab2-1"); err != nil {
		t.Fatalf("wide sweep failed: %v", err)
	}
	simsAfterWide := base.Stats().Sims

	narrow := base.WithSweep(2, []string{"whet"})
	if narrow.Cfg.MaxDegree != 2 || len(narrow.Cfg.Benchmarks) != 1 {
		t.Fatalf("view config not overridden: %+v", narrow.Cfg)
	}
	res, err := narrow.Run("tab2-1")
	if err != nil {
		t.Fatalf("narrow sweep failed: %v", err)
	}
	if res == nil || res.Text == "" {
		t.Fatalf("narrow sweep rendered nothing")
	}
	if got := base.Stats().Sims; got != simsAfterWide {
		t.Fatalf("narrow view re-simulated: %d sims after wide, %d after narrow", simsAfterWide, got)
	}

	// The base runner's own config is untouched by its views.
	if base.Cfg.MaxDegree != 0 || base.Cfg.Benchmarks != nil {
		t.Fatalf("view mutated the base config: %+v", base.Cfg)
	}
}
