package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"

	"ilp/internal/benchmarks"
	"ilp/internal/compiler"
	"ilp/internal/ilperr"
	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/trace"
)

func init() {
	register("ext-limits", "Extension: trace-driven parallelism limits ([14], [15] vs. this paper)", runExtLimits)
}

// runExtLimits situates the paper's compile-time result between the two
// classical trace-study extremes it cites in §4.2: the branch-inhibited
// limit of Riseman & Foster (≈2, matching "average instruction-level
// parallelism of around 2") and the perfect-prediction oracle (an order of
// magnitude higher).
func runExtLimits(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}

	type row struct {
		name            string
		compiled        float64
		blocked, oracle float64
		truncated       bool
	}
	// The same discipline as measureMany: a shared cancellable context so
	// the first failure stops the siblings, panic isolation per worker,
	// and distinct root causes joined.
	mctx, cancel := context.WithCancelCause(ctx)
	defer cancel(context.Canceled)
	rows := make([]row, len(suite))
	var wg sync.WaitGroup
	errs := make([]error, len(suite))
	for i, b := range suite {
		wg.Add(1)
		go func(i int, b benchmarks.Benchmark) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					errs[i] = &SimError{
						Benchmark: b.Name, Machine: "trace-limits",
						Phase: ilperr.PhaseSimulate, Err: ilperr.PanicError(v, debug.Stack()),
					}
					cancel(errs[i])
				}
			}()
			fail := func(err error) {
				errs[i] = err
				cancel(err)
			}
			// Compiled, machine-level parallelism (the paper's metric).
			rb, err := r.MeasureCtx(mctx, b.Name, defaultOpts(b), machine.Base())
			if err != nil {
				fail(err)
				return
			}
			rw, err := r.MeasureCtx(mctx, b.Name, defaultOpts(b), machine.IdealSuperscalar(r.Cfg.maxDegree()))
			if err != nil {
				fail(err)
				return
			}
			// Trace limits on the same binary. Compile and Analyze cannot
			// be interrupted mid-flight, so check for cancellation between
			// the two heavyweight steps.
			if mctx.Err() != nil {
				fail(cause(mctx))
				return
			}
			copts := defaultOpts(b)
			copts.Machine = machine.Base()
			c, err := compiler.Compile(b.Source, copts)
			if err != nil {
				fail(r.compileFailure(mctx, b.Name, copts.Machine, err))
				return
			}
			if mctx.Err() != nil {
				fail(cause(mctx))
				return
			}
			lim, err := trace.Analyze(c.Prog, trace.Options{MaxTrace: 1_500_000})
			if err != nil {
				fail(r.simFailure(mctx, b.Name, copts.Machine, err))
				return
			}
			rows[i] = row{
				name:      benchLabel(b),
				compiled:  rb.BaseCycles / rw.BaseCycles,
				blocked:   lim.BlockedParallelism(),
				oracle:    lim.OracleParallelism(),
				truncated: lim.Truncated,
			}
		}(i, b)
	}
	wg.Wait()
	if err := joinDistinct(context.Cause(mctx), errs); err != nil {
		return nil, err
	}

	t := &table{header: []string{"benchmark", "compiled (this paper)", "blocked limit [14]", "oracle limit [14,15]"}}
	var compiled, blocked, oracle []float64
	for _, row := range rows {
		note := ""
		if row.truncated {
			note = "*"
		}
		t.add(row.name+note, fmtF(row.compiled), fmtF(row.blocked), fmtF(row.oracle))
		compiled = append(compiled, row.compiled)
		blocked = append(blocked, row.blocked)
		oracle = append(oracle, row.oracle)
	}
	var b strings.Builder
	b.WriteString("Three parallelism measures of the same binaries (* = trace truncated at 1.5M):\n\n")
	b.WriteString(t.render())
	fmt.Fprintf(&b, "\nHarmonic means: compiled %.2f, blocked trace limit %.2f, oracle %.1f.\n",
		metrics.HarmonicMean(compiled), metrics.HarmonicMean(blocked), metrics.HarmonicMean(oracle))
	b.WriteString("\nThe blocked limit (infinite width, unit latency, perfect renaming, exact memory\n" +
		"disambiguation — but no execution past an unresolved conditional branch) lands\n" +
		"near the ~2 the paper quotes from the classical studies; the perfect-prediction\n" +
		"oracle is an order of magnitude higher (Riseman & Foster's contrast). The\n" +
		"compiled machines sit at or below the blocked limit, as they must: a real\n" +
		"compiler, finite registers, and in-order issue only lose parallelism from there.\n")
	return &Result{ID: "ext-limits", Title: "Trace-driven parallelism limits", Text: b.String(),
		Series: []metrics.Series{
			{Name: "compiled", X: seq(len(compiled)), Y: compiled},
			{Name: "blocked", X: seq(len(blocked)), Y: blocked},
			{Name: "oracle", X: seq(len(oracle)), Y: oracle},
		}}, nil
}
