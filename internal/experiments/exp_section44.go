package experiments

import (
	"context"

	"fmt"
	"strings"

	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/metrics"
)

func init() {
	register("fig4-6", "Figure 4-6: parallelism vs. loop unrolling", runFig46)
	register("fig4-7", "Figure 4-7: parallelism vs. compiler optimizations (expression graphs)", runFig47)
	register("fig4-8", "Figure 4-8: effect of optimization on parallelism", runFig48)
}

// parallelismOf measures a configuration's available parallelism: its
// base-machine cycles divided by its ideal superscalar MaxDegree cycles,
// both compiled for the machine they run on.
func (r *Runner) parallelismOf(ctx context.Context, bench string, copts compiler.Options, wideTemps bool) (float64, error) {
	base := machine.Base()
	wide := machine.IdealSuperscalar(r.Cfg.maxDegree())
	if wideTemps {
		base.IntTemps, base.FPTemps = machine.WideTemps, machine.WideTemps
		base.IntHomes, base.FPHomes = 10, 10
		wide.IntTemps, wide.FPTemps = machine.WideTemps, machine.WideTemps
		wide.IntHomes, wide.FPHomes = 10, 10
	}
	rb, err := r.MeasureCtx(ctx, bench, copts, base)
	if err != nil {
		return 0, err
	}
	rw, err := r.MeasureCtx(ctx, bench, copts, wide)
	if err != nil {
		return 0, err
	}
	return rb.BaseCycles / rw.BaseCycles, nil
}

// runFig46 unrolls Linpack and Livermore 1, 2, 4 and 10 times, naively and
// carefully, and reports the available parallelism of each configuration.
// The paper used forty temporary registers here ("we have only forty
// temporary registers available, which limits the amount of parallelism").
func runFig46(ctx context.Context, r *Runner) (*Result, error) {
	factors := []int{1, 2, 4, 10}
	benches := []string{"linpack", "livermore"}

	var series []metrics.Series
	t := &table{header: []string{"configuration", "x1", "x2", "x4", "x10"}}
	for _, bench := range benches {
		for _, careful := range []bool{false, true} {
			kind := "naive"
			if careful {
				kind = "careful"
			}
			s := metrics.Series{Name: fmt.Sprintf("%s.%s", bench, kind)}
			row := []string{s.Name}
			for _, k := range factors {
				copts := compiler.Options{Level: compiler.O4, Unroll: k, Careful: careful}
				par, err := r.parallelismOf(ctx, bench, copts, true)
				if err != nil {
					return nil, err
				}
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, par)
				row = append(row, fmtF(par))
			}
			series = append(series, s)
			t.add(row...)
		}
	}
	var b strings.Builder
	b.WriteString("Available parallelism vs. unroll factor (40 temporary registers, like §4.4):\n\n")
	b.WriteString(t.render())
	b.WriteString("\nPaper shape: 'the parallelism improvement from naive unrolling is mostly flat\n" +
		"after unrolling by four ... careful unrolling gives us a more dramatic improvement,\n" +
		"but the parallelism available is still limited even for tenfold unrolling.'\n")
	return &Result{ID: "fig4-6", Title: "Parallelism vs. loop unrolling", Text: b.String(),
		Series: series}, nil
}

// runFig47 reproduces the expression-graph argument analytically: the three
// graphs of Figure 4-7 with parallelism 1.67, 1.33, and 1.50 show that
// optimizing a side branch reduces parallelism while optimizing a
// bottleneck increases it.
func runFig47(ctx context.Context, r *Runner) (*Result, error) {
	// Left graph: two independent 2-op branches feeding a combining op:
	// 5 ops, critical path 3 -> 5/3.
	left := metrics.NewExprDAG()
	a1 := left.Node()
	a2 := left.Node(a1)
	b1 := left.Node()
	b2 := left.Node(b1)
	left.Node(a2, b2)

	// Middle: one branch optimized to a single op: 4 ops, path 3 -> 4/3.
	mid := metrics.NewExprDAG()
	m1 := mid.Node()
	m2 := mid.Node(m1)
	n1 := mid.Node()
	mid.Node(m2, n1)

	// Right: the bottleneck optimized instead: both branches 2 ops, the
	// combining chain shortened: 6 ops, path 4 -> 1.5 (the paper's third
	// graph has parallelism 1.50).
	right := metrics.NewExprDAG()
	r1 := right.Node()
	r2 := right.Node(r1)
	s1 := right.Node()
	s2 := right.Node(s1)
	j1 := right.Node(r2, s2)
	right.Node(j1)

	t := &table{header: []string{"graph", "operations", "critical path", "parallelism"}}
	vals := make([]float64, 3)
	for i, g := range []*metrics.ExprDAG{left, mid, right} {
		names := []string{"original (1.67)", "side branch optimized (1.33)", "bottleneck chain kept (1.50)"}
		vals[i] = g.Parallelism()
		t.add(names[i], fmtI(g.Ops()), fmtI(g.CriticalPath()), fmtF(vals[i]))
	}
	var b strings.Builder
	b.WriteString(t.render())
	b.WriteString("\n'If our computation consists of two branches of comparable complexity that can\n" +
		"be executed in parallel, then optimizing one branch reduces the parallelism. On\n" +
		"the other hand, if the computation contains a bottleneck on which other operations\n" +
		"wait, then optimizing the bottleneck increases the parallelism.' (§4.4)\n")
	return &Result{ID: "fig4-7", Title: "Parallelism vs. compiler optimizations", Text: b.String(),
		Series: []metrics.Series{{Name: "parallelism", X: []float64{0, 1, 2}, Y: vals}}}, nil
}

// runFig48 measures available parallelism at the five cumulative
// optimization levels, per benchmark.
func runFig48(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	levels := []compiler.Level{compiler.O0, compiler.O1, compiler.O2, compiler.O3, compiler.O4}

	header := []string{"benchmark", "none", "+sched", "+local", "+global", "+regalloc"}
	t := &table{header: header}
	var series []metrics.Series
	for _, b := range suite {
		s := metrics.Series{Name: b.Name}
		row := []string{b.Name}
		for i, lvl := range levels {
			copts := compiler.Options{Level: lvl, Unroll: b.DefaultUnroll}
			par, err := r.parallelismOf(ctx, b.Name, copts, false)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, par)
			row = append(row, fmtF(par))
		}
		series = append(series, s)
		t.add(row...)
	}
	var buf strings.Builder
	buf.WriteString("Available parallelism at cumulative optimization levels (§4.4, Figure 4-8):\n\n")
	buf.WriteString(t.render())
	buf.WriteString("\nPaper shape: 'doing pipeline scheduling can increase the available parallelism\n" +
		"by 10% to 60%'; classical optimization has little net effect on parallelism (it\n" +
		"often removes the useless computations that made unoptimized parallelism look\n" +
		"artificially high); global register allocation slightly decreases parallelism for\n" +
		"most programs but increases it for the numeric ones, whose scalar loads stop\n" +
		"looking dependent on array stores.\n")
	return &Result{ID: "fig4-8", Title: "Effect of optimization on parallelism", Text: buf.String(),
		Series: series}, nil
}
