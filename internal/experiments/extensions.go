package experiments

import (
	"context"

	"fmt"
	"strings"

	"ilp/internal/cache"
	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/metrics"
)

// Extensions: claims the paper makes in prose but does not plot. Each is
// registered like a figure so cmd/ilpbench and the bench harness cover it.

func init() {
	register("ext-conflicts", "Extension: class conflicts (§2.3.2 second design)", runExtConflicts)
	register("ext-vliw", "Extension: VLIW code density (§2.3.1)", runExtVLIW)
	register("ext-icache", "Extension: unrolling vs. limited instruction caches (§4.4)", runExtICache)
}

// runExtConflicts compares the two ways of §2.3.2 to build a superscalar:
// duplicate everything (ideal) vs. duplicate only decode (class conflicts).
// "Class conflicts can substantially reduce the parallelism exploitable by
// a superscalar machine."
func runExtConflicts(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	deg := r.Cfg.maxDegree()
	if deg > 4 {
		deg = 4
	}
	t := &table{header: []string{"benchmark", "ideal (all units duplicated)", "conflicts (single units)", "lost"}}
	var ideal, conflict []float64
	for _, b := range suite {
		rb, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), machine.Base())
		if err != nil {
			return nil, err
		}
		ri, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), machine.IdealSuperscalar(deg))
		if err != nil {
			return nil, err
		}
		rc, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), machine.SuperscalarWithConflicts(deg))
		if err != nil {
			return nil, err
		}
		si := rb.BaseCycles / ri.BaseCycles
		sc := rb.BaseCycles / rc.BaseCycles
		ideal = append(ideal, si)
		conflict = append(conflict, sc)
		t.add(b.Name, fmtF(si), fmtF(sc), fmt.Sprintf("%.0f%%", (1-sc/si)*100))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Speedup over the base machine at issue width %d (§2.3.2's two designs):\n\n", deg)
	b.WriteString(t.render())
	fmt.Fprintf(&b, "\nHarmonic means: ideal %.2f, with class conflicts %.2f.\n",
		metrics.HarmonicMean(ideal), metrics.HarmonicMean(conflict))
	b.WriteString("'If all the functional units are not duplicated, then potential class conflicts\n" +
		"will be created ... class conflicts can substantially reduce the parallelism.'\n")
	return &Result{ID: "ext-conflicts", Title: "Class conflicts", Text: b.String(),
		Series: []metrics.Series{
			{Name: "ideal", X: seq(len(ideal)), Y: ideal},
			{Name: "conflicts", X: seq(len(conflict)), Y: conflict},
		}}, nil
}

// runExtVLIW quantifies §2.3.1's second superscalar/VLIW difference: "when
// the available instruction-level parallelism is less than that exploitable
// by the VLIW machine, the code density of the superscalar machine will be
// better", because the fixed VLIW format carries bits for unused operation
// slots. We measure it dynamically: a VLIW spends a full width-n word per
// issue group, the superscalar one word per instruction.
func runExtVLIW(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	deg := r.Cfg.maxDegree()
	if deg > 4 {
		deg = 4
	}
	t := &table{header: []string{"benchmark", "instr words (superscalar)", "op slots (VLIW)", "slot utilization", "density cost"}}
	var utils []float64
	for _, b := range suite {
		res, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), machine.VLIW(deg))
		if err != nil {
			return nil, err
		}
		vliwWords := machine.VLIWCodeWords(res.IssueGroups, deg)
		util := float64(res.Instructions) / float64(vliwWords)
		utils = append(utils, util)
		t.add(b.Name,
			fmtI(int(res.Instructions)),
			fmtI(int(vliwWords)),
			fmt.Sprintf("%.0f%%", util*100),
			fmt.Sprintf("%.2fx", 1/util))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic code-stream density at VLIW width %d:\n\n", deg)
	b.WriteString(t.render())
	fmt.Fprintf(&b, "\nMean slot utilization %.0f%%: with available parallelism around 2 and width %d,\n",
		metrics.ArithmeticMean(utils)*100, deg)
	b.WriteString("most VLIW operation slots encode no-ops — the paper's code-density argument for\n" +
		"the superscalar encoding (timing is identical by construction, §2.3.1).\n")
	return &Result{ID: "ext-vliw", Title: "VLIW code density", Text: b.String(),
		Series: []metrics.Series{{Name: "slot-utilization", X: seq(len(utils)), Y: utils}}}, nil
}

// runExtICache checks §4.4's warning: "if limited instruction caches were
// present, the actual performance would decline for large degrees of
// unrolling."
func runExtICache(ctx context.Context, r *Runner) (*Result, error) {
	factors := []int{1, 2, 4, 10}
	mk := func(withCache bool) *machine.Config {
		m := machine.IdealSuperscalar(r.Cfg.maxDegree())
		m.IntTemps, m.FPTemps = machine.WideTemps, machine.WideTemps
		m.IntHomes, m.FPHomes = 10, 10
		if withCache {
			// Small enough that a 10x-unrolled loop body spills out.
			m.ICache = &cache.Config{Name: "I", Lines: 64, LineWords: 4, MissPenalty: 16}
			m.Name += "-icache"
		}
		return m
	}
	t := &table{header: []string{"configuration", "x1", "x2", "x4", "x10"}}
	var series []metrics.Series
	for _, cached := range []bool{false, true} {
		name := "linpack.perfect-icache"
		if cached {
			name = "linpack.1KB-icache"
		}
		s := metrics.Series{Name: name}
		row := []string{name}
		base, err := r.MeasureCtx(ctx, "linpack", compiler.Options{Level: compiler.O4, Unroll: 1, Careful: true}, mk(cached))
		if err != nil {
			return nil, err
		}
		for _, k := range factors {
			res, err := r.MeasureCtx(ctx, "linpack", compiler.Options{Level: compiler.O4, Unroll: k, Careful: true}, mk(cached))
			if err != nil {
				return nil, err
			}
			sp := base.BaseCycles / res.BaseCycles
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, sp)
			row = append(row, fmtF(sp))
		}
		series = append(series, s)
		t.add(row...)
	}
	var b strings.Builder
	b.WriteString("Speedup from careful unrolling, relative to the unrolled-1x configuration on\nthe same machine:\n\n")
	b.WriteString(t.render())
	b.WriteString("\n'In all cases, cache effects were ignored. If limited instruction caches were\n" +
		"present, the actual performance would decline for large degrees of unrolling.'\n" +
		"(§4.4) — the unrolled loop body outgrows the 1 KB instruction cache and the miss\n" +
		"penalty eats the parallelism gain.\n")
	return &Result{ID: "ext-icache", Title: "Unrolling vs. limited instruction caches", Text: b.String(),
		Series: series}, nil
}
