package experiments

import (
	"context"
	"fmt"
	"strings"

	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/sim"
	"ilp/internal/statictime"
	"ilp/internal/verify"
)

func init() {
	register("ext-slack", "Extension: static timing bounds vs. simulation", runExtSlack)
}

// runExtSlack quantifies how tight the static timing analysis is: for every
// benchmark × machine cell it reports slack = simulated minor cycles ÷ the
// static lower bound (1.00 means the per-block dependence/width/unit bounds
// explain every cycle; larger means cross-block effects — inter-block
// dependences and branch-entry transients — the per-block analysis cannot
// see). Each cell is also pushed through the verify timing oracle, so a
// bound violation fails the experiment rather than printing a bogus ratio.
//
// The paper's thesis is that available parallelism is a static property of
// the compiled code and the machine; this table measures how much of the
// dynamic cycle count the static analysis already pins down.
func runExtSlack(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	deg := r.Cfg.maxDegree()
	if deg > 4 {
		deg = 4
	}
	cfgs := []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(deg),
		machine.Superpipelined(deg),
		machine.SuperscalarWithConflicts(deg),
		machine.MultiTitan(),
	}

	header := []string{"benchmark"}
	for _, m := range cfgs {
		header = append(header, m.Name)
	}
	t := &table{header: header}
	slack := make([][]float64, len(cfgs))

	for _, b := range suite {
		row := []string{benchLabel(b)}
		for mi, m := range cfgs {
			copts := defaultOpts(b)
			ckey := compileKey(b.Name, copts, m)
			prog, code, err := r.compile(ctx, b.Name, copts, m, ckey)
			if err != nil {
				return nil, err
			}
			// Simulated directly (not through the measurement cache):
			// the slack ratio needs the per-instruction counts, which
			// ordinary measurements do not carry.
			res, err := sim.RunCtx(ctx, prog, sim.Options{
				Machine: m, Code: code, CountInstrs: true,
			})
			if err != nil {
				return nil, r.simFailure(ctx, b.Name, m, err)
			}
			a, err := statictime.Analyze(prog, m)
			if err != nil {
				return nil, fmt.Errorf("ext-slack: %s on %s: %w", b.Name, m.Name, err)
			}
			if ds := verify.CheckTiming(a, res.MinorCycles, res.InstrCounts, res.TakenExits, "ext-slack"); len(ds) > 0 {
				return nil, fmt.Errorf("ext-slack: %s on %s: static timing oracle: %s", b.Name, m.Name, ds[0])
			}
			lo := a.LowerBound(res.InstrCounts, res.TakenExits)
			s := float64(res.MinorCycles) / float64(lo)
			slack[mi] = append(slack[mi], s)
			row = append(row, fmtF(s))
		}
		t.add(row...)
	}

	var b strings.Builder
	b.WriteString("Static-bound tightness: simulated minor cycles / static lower bound\n")
	b.WriteString("(1.00 = the per-block dependence, width and unit bounds explain every cycle):\n\n")
	b.WriteString(t.render())
	b.WriteString("\nMean slack: ")
	series := make([]metrics.Series, len(cfgs))
	for mi, m := range cfgs {
		if mi > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.2f", m.Name, metrics.ArithmeticMean(slack[mi]))
		series[mi] = metrics.Series{Name: m.Name, X: seq(len(slack[mi])), Y: slack[mi]}
	}
	b.WriteString(".\n")
	b.WriteString("Every cell passed the verify timing oracle (lower <= simulated <= upper);\n" +
		"slack above 1 is the cross-block timing the per-block static analysis cannot see.\n")
	return &Result{ID: "ext-slack", Title: "Static timing bounds", Text: b.String(), Series: series}, nil
}
