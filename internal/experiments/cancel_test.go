// cancel_test.go exercises the runner's concurrency contract: first error
// cancels the sweep, cancellation does not leak goroutines or poison the
// caches, panics surface as structured errors, and distinct root causes are
// all reported. Run with -race (make check does).
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ilp/internal/compiler"
	"ilp/internal/machine"
)

// hookTimeout bounds "block until cancelled" hooks so a broken cancellation
// path fails the test instead of hanging the suite. Assertions on prompt
// return use promptBound, far below it.
const (
	hookTimeout = 30 * time.Second
	promptBound = 10 * time.Second
)

// blockUntilDone parks a hook until the sweep context is cancelled and
// returns the recorded cause by identity (the contract cancelled jobs obey).
func blockUntilDone(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-time.After(hookTimeout):
		return errors.New("hook was never cancelled")
	}
}

// sweepJobs builds one job per machine degree so every job has a distinct
// sim-cache key but the whole sweep shares one compilation.
func sweepJobs(bench string, n int) []job {
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i] = job{bench: bench, copts: compiler.Options{Level: compiler.O4}, m: machine.IdealSuperscalar(i + 1)}
	}
	return jobs
}

// checkNoGoroutineLeak polls until the goroutine count returns to (near) the
// recorded baseline; the runner must not strand workers after cancellation.
func checkNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := 0
	for time.Now().Before(deadline) {
		if n = runtime.NumGoroutine(); n <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after cancellation: %d live, baseline %d", n, base)
}

// TestMeasureManyFirstErrorCancelsSiblings: one job fails, every blocked
// sibling is cancelled, the sweep returns promptly with the injected error
// as the root cause, and no goroutines are stranded.
func TestMeasureManyFirstErrorCancelsSiblings(t *testing.T) {
	base := runtime.NumGoroutine()
	r := NewRunner(Config{Workers: 8})
	boom := errors.New("injected simulation fault")
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		if m.IssueWidth == 3 {
			return boom
		}
		return blockUntilDone(ctx)
	}

	start := time.Now()
	res, err := r.measureMany(context.Background(), sweepJobs("whet", 6))
	elapsed := time.Since(start)

	if res != nil || err == nil {
		t.Fatalf("failed sweep returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("sweep error does not wrap the injected fault: %v", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Benchmark != "whet" || se.Machine == "" {
		t.Fatalf("SimError missing coordinates: %+v", se)
	}
	// One distinct cause: siblings must have collapsed into it, not joined.
	if n := strings.Count(err.Error(), "injected simulation fault"); n != 1 {
		t.Fatalf("root cause reported %d times, want 1:\n%v", n, err)
	}
	if elapsed > promptBound {
		t.Fatalf("sweep took %v to cancel; siblings did not observe the failure", elapsed)
	}
	checkNoGoroutineLeak(t, base)
}

// TestMeasureManyParentCancellation: cancelling the caller's context stops a
// sweep whose jobs are all mid-flight, well before the hooks' own timeout.
func TestMeasureManyParentCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	r := NewRunner(Config{Workers: 8})
	entered := make(chan struct{}, 16)
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		entered <- struct{}{}
		return blockUntilDone(ctx)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := r.measureMany(ctx, sweepJobs("whet", 4))
		done <- err
	}()
	<-entered // at least one job is inside the pipeline
	cancel()

	var err error
	select {
	case err = <-done:
	case <-time.After(promptBound):
		t.Fatal("measureMany did not return after parent cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > promptBound {
		t.Fatalf("cancellation took %v", d)
	}
	checkNoGoroutineLeak(t, base)
}

// TestMeasureManyPanicIsolation: a panicking worker surfaces as a *SimError
// matching ErrPanic (process survives), and cancels its siblings.
func TestMeasureManyPanicIsolation(t *testing.T) {
	r := NewRunner(Config{Workers: 8})
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		if m.IssueWidth == 2 {
			panic("simulated worker crash")
		}
		return blockUntilDone(ctx)
	}
	_, err := r.measureMany(context.Background(), sweepJobs("whet", 4))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic in chain, got %v", err)
	}
	var se *SimError
	if !errors.As(err, &se) || se.Phase != "simulate" {
		t.Fatalf("panic not wrapped as simulate-phase SimError: %v", err)
	}
	if !strings.Contains(err.Error(), "simulated worker crash") {
		t.Fatalf("panic value lost: %v", err)
	}
}

// TestCompilePanicIsolation: a panic in the compile phase surfaces as a
// *CompileError matching ErrPanic, carrying the schedule fingerprint.
func TestCompilePanicIsolation(t *testing.T) {
	r := NewRunner(Config{Workers: 2})
	r.compileHook = func(ctx context.Context, bench string, m *machine.Config) error {
		panic("simulated compiler crash")
	}
	_, err := r.MeasureCtx(context.Background(), "whet", compiler.Options{Level: compiler.O4}, machine.Base())
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CompileError, got %T: %v", err, err)
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("CompileError does not match ErrPanic: %v", err)
	}
	if ce.Benchmark != "whet" || ce.Fingerprint == "" {
		t.Fatalf("CompileError missing coordinates: %+v", ce)
	}
}

// TestMeasureManyJoinsDistinctCauses: two genuine failures that race in
// before cancellation lands are both reported, once each.
func TestMeasureManyJoinsDistinctCauses(t *testing.T) {
	r := NewRunner(Config{Workers: 8})
	errA := errors.New("fault in degree-1 job")
	errB := errors.New("fault in degree-2 job")
	var barrier sync.WaitGroup
	barrier.Add(2) // both jobs commit to failing before either cancels
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		barrier.Done()
		barrier.Wait()
		if m.IssueWidth == 1 {
			return errA
		}
		return errB
	}
	_, err := r.measureMany(context.Background(), sweepJobs("whet", 2))
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error missing a distinct cause: %v", err)
	}
	for _, want := range []string{"degree-1", "degree-2"} {
		if n := strings.Count(err.Error(), want); n != 1 {
			t.Fatalf("cause %q reported %d times, want 1:\n%v", want, n, err)
		}
	}
}

// TestSingleflightWaiterObservesCancellation: a waiter joined onto a blocked
// leader's cache entry returns the cancellation error instead of hanging,
// the cancelled entry is evicted, and a later request with a live context
// redoes (and completes) the work.
func TestSingleflightWaiterObservesCancellation(t *testing.T) {
	r := NewRunner(Config{Workers: 4})
	leaderIn := make(chan struct{})
	var once sync.Once
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		once.Do(func() { close(leaderIn) })
		return blockUntilDone(ctx)
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := compiler.Options{Level: compiler.O4}
	m := machine.IdealSuperscalar(2)

	errc := make(chan error, 2)
	go func() { _, err := r.MeasureCtx(ctx, "whet", opts, m); errc <- err }()
	<-leaderIn // leader owns the entry and is blocked in the hook
	go func() { _, err := r.MeasureCtx(ctx, "whet", opts, m); errc <- err }()
	time.Sleep(20 * time.Millisecond) // let the waiter join the entry
	cancel()

	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("call %d: want context.Canceled, got %v", i, err)
			}
		case <-time.After(promptBound):
			t.Fatalf("call %d never returned after cancellation", i)
		}
	}
	if st := r.Stats(); st.SimHits != 1 {
		t.Fatalf("waiter should have joined the leader's entry: %+v", st)
	}

	// The cancelled entry must be gone: a live-context retry redoes the
	// simulation (a second cache miss) and succeeds.
	r.measureHook = nil
	res, err := r.MeasureCtx(context.Background(), "whet", opts, m)
	if err != nil || res == nil {
		t.Fatalf("retry after evicted cancellation failed: res=%v err=%v", res, err)
	}
	if st := r.Stats(); st.Sims != 2 {
		t.Fatalf("retry did not redo the simulation (entry poisoned): %+v", st)
	}
}

// TestMeasureCtxPreCancelled: a done context short-circuits before touching
// caches or worker slots.
func TestMeasureCtxPreCancelled(t *testing.T) {
	r := NewRunner(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.MeasureCtx(ctx, "whet", compiler.Options{Level: compiler.O4}, machine.Base())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st := r.Stats(); st.Sims != 0 && st.SimHits != 0 {
		t.Fatalf("pre-cancelled call touched the cache: %+v", st)
	}
}

// TestRunCtxPanicIsolated: a panic inside an experiment's own code (here via
// the hook, reached through RunCtx) becomes an error, not a crash.
func TestRunCtxPanicIsolated(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 2, Benchmarks: []string{"whet"}})
	r.measureHook = func(ctx context.Context, bench string, m *machine.Config) error {
		panic("crash inside experiment")
	}
	res, err := r.RunCtx(context.Background(), "fig4-1")
	if res != nil || err == nil {
		t.Fatalf("panicked experiment returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic in chain, got %v", err)
	}
}

// TestRunAllCanonicalOrder: RunAll renders experiments in the paper's
// presentation order — fig2 (the §2 pipeline diagrams) must precede tab5-1
// (the §5 cache study) regardless of file-init registration order.
func TestRunAllCanonicalOrder(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 2, Benchmarks: []string{"whet"}})
	var buf bytes.Buffer
	if _, err := r.RunAll(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var banners []string
	for _, e := range Experiments() {
		banner := fmt.Sprintf("==== %s:", e.ID)
		i := strings.Index(out, banner)
		if i < 0 {
			t.Fatalf("RunAll output missing experiment %s", e.ID)
		}
		banners = append(banners, banner)
		if len(banners) > 1 {
			prev := strings.Index(out, banners[len(banners)-2])
			if prev > i {
				t.Fatalf("experiment %s rendered before its predecessor %s", e.ID, banners[len(banners)-2])
			}
		}
	}
	fig2 := strings.Index(out, "==== fig2:")
	tab51 := strings.Index(out, "==== tab5-1:")
	if fig2 < 0 || tab51 < 0 || fig2 > tab51 {
		t.Fatalf("fig2 (at %d) must precede tab5-1 (at %d)", fig2, tab51)
	}
}

// TestRunAllStopsOnCancellation: RunAll under a cancelled context reports
// the experiment that failed and leaves prior renditions intact.
func TestRunAllStopsOnCancellation(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 2, Benchmarks: []string{"whet"}})
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	r.measureHook = func(hctx context.Context, bench string, m *machine.Config) error {
		if ran.Add(1) > 3 {
			cancel()
		}
		return nil
	}
	var buf bytes.Buffer
	_, err := r.RunAll(ctx, &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(buf.String(), "==== fig2:") {
		t.Fatalf("renditions before the cancellation were lost:\n%s", buf.String())
	}
}
