package experiments

import (
	"context"

	"fmt"
	"strings"

	"ilp/internal/machine"
	"ilp/internal/metrics"
	"ilp/internal/pipeviz"
)

func init() {
	register("fig4-1", "Figure 4-1: supersymmetry — superscalar vs. superpipelined", runFig41)
	register("fig4-2", "Figure 4-2: start-up in superscalar vs. superpipelined", runFig42)
	register("fig4-3", "Figure 4-3: parallelism required for full utilization", runFig43)
	register("fig4-4", "Figure 4-4: CRAY-1 parallel issue with unit and real latencies", runFig44)
	register("fig4-5", "Figure 4-5: instruction-level parallelism by benchmark", runFig45)
}

// runFig41 sweeps ideal superscalar and superpipelined machines of degree 1
// to MaxDegree over the whole suite and plots the harmonic-mean speedup
// over the base machine — the supersymmetry result.
func runFig41(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	maxDeg := r.Cfg.maxDegree()

	type point struct{ bench, kind string }
	var jobs []job
	var meta []struct {
		kind string
		deg  int
	}
	for deg := 1; deg <= maxDeg; deg++ {
		for _, b := range suite {
			jobs = append(jobs, job{b.Name, defaultOpts(b), machine.IdealSuperscalar(deg)})
			meta = append(meta, struct {
				kind string
				deg  int
			}{"superscalar", deg})
			jobs = append(jobs, job{b.Name, defaultOpts(b), machine.Superpipelined(deg)})
			meta = append(meta, struct {
				kind string
				deg  int
			}{"superpipelined", deg})
		}
	}
	results, err := r.measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}

	// Base runs (degree 1 superscalar is the base machine).
	baseOf := map[string]float64{}
	for i, j := range jobs {
		if meta[i].kind == "superscalar" && meta[i].deg == 1 {
			baseOf[j.bench] = results[i].BaseCycles
		}
	}

	speedups := map[string]map[int][]float64{
		"superscalar":    {},
		"superpipelined": {},
	}
	for i := range jobs {
		k, d := meta[i].kind, meta[i].deg
		speedups[k][d] = append(speedups[k][d], baseOf[jobs[i].bench]/results[i].BaseCycles)
	}

	ss := metrics.Series{Name: "superscalar"}
	sp := metrics.Series{Name: "superpipelined"}
	t := &table{header: []string{"degree", "superscalar (HM speedup)", "superpipelined (HM speedup)"}}
	for deg := 1; deg <= maxDeg; deg++ {
		hs := metrics.HarmonicMean(speedups["superscalar"][deg])
		hp := metrics.HarmonicMean(speedups["superpipelined"][deg])
		ss.X = append(ss.X, float64(deg))
		ss.Y = append(ss.Y, hs)
		sp.X = append(sp.X, float64(deg))
		sp.Y = append(sp.Y, hp)
		t.add(fmtI(deg), fmtF(hs), fmtF(hp))
	}

	var b strings.Builder
	b.WriteString(t.render())
	b.WriteString("\nPaper shape: superscalar >= superpipelined at equal degree (startup transient),\n" +
		"difference < ~10% and shrinking with degree; both curves flatten near the available\n" +
		"parallelism (~2) because most benchmarks have little instruction-level parallelism.\n")
	_ = point{}
	return &Result{ID: "fig4-1", Title: "Supersymmetry", Text: b.String(),
		Series: []metrics.Series{ss, sp}}, nil
}

func runFig42(ctx context.Context, r *Runner) (*Result, error) {
	d := pipeviz.Startup(3, 6)
	text := d.Render() +
		"\nThe superscalar machine issues the last of six independent instructions during base\n" +
		"cycle 1; the superpipelined machine does not issue it until t=5/3, so it falls behind\n" +
		"at the start of the program and at each branch target (§4.1).\n"
	return &Result{ID: "fig4-2", Title: "Start-up in superscalar vs. superpipelined", Text: text}, nil
}

// runFig43 prints the n*m grid of Figure 4-3 and marks the MultiTitan and
// CRAY-1 on the superpipelining axis using their measured average degrees.
func runFig43(ctx context.Context, r *Runner) (*Result, error) {
	t := &table{header: []string{"cycles/op (m)", "n=1", "n=2", "n=3", "n=4", "n=5"}}
	for m := 5; m >= 1; m-- {
		row := []string{fmtI(m)}
		for n := 1; n <= 5; n++ {
			row = append(row, fmtI(n*m))
		}
		t.add(row...)
	}
	var b strings.Builder
	b.WriteString("Instruction-level parallelism required to fully utilize a superpipelined\n")
	b.WriteString("superscalar machine of degree (n, m): n*m (§2.5, Figure 4-3).\n\n")
	b.WriteString(t.render())
	b.WriteString("\nOn the superpipelining (m) axis: MultiTitan sits at ~1.7, the CRAY-1 at ~4.4\n")
	b.WriteString("(Table 2-1), so the CRAY-1 would need instruction-level parallelism above 4\n")
	b.WriteString("before parallel issue of even two instructions per cycle could be justified.\n")
	return &Result{ID: "fig4-3", Title: "Parallelism required for full utilization", Text: b.String()}, nil
}

// runFig44 reproduces the CRAY-1 study: issue multiplicity 1..MaxDegree,
// once with all functional-unit latencies forced to one (the flawed
// methodology the paper criticizes) and once with actual latencies.
func runFig44(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	maxDeg := r.Cfg.maxDegree()

	kinds := []bool{true, false} // unit latencies, actual latencies
	var jobs []job
	type m struct {
		unit bool
		deg  int
	}
	var meta []m
	for _, unit := range kinds {
		for deg := 1; deg <= maxDeg; deg++ {
			for _, b := range suite {
				jobs = append(jobs, job{b.Name, defaultOpts(b), machine.CRAY1Issue(deg, unit)})
				meta = append(meta, m{unit, deg})
			}
		}
	}
	results, err := r.measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}

	base := map[m]map[string]float64{}
	for i := range jobs {
		key := m{meta[i].unit, 1}
		if meta[i].deg == 1 {
			if base[key] == nil {
				base[key] = map[string]float64{}
			}
			base[key][jobs[i].bench] = results[i].BaseCycles
		}
	}
	sp := map[m][]float64{}
	for i := range jobs {
		b0 := base[m{meta[i].unit, 1}][jobs[i].bench]
		sp[meta[i]] = append(sp[meta[i]], b0/results[i].BaseCycles)
	}

	unit := metrics.Series{Name: "all latencies = 1"}
	actual := metrics.Series{Name: "actual CRAY-1 latencies"}
	t := &table{header: []string{"issue multiplicity", "speedup (unit latencies)", "speedup (actual latencies)"}}
	for deg := 1; deg <= maxDeg; deg++ {
		u := metrics.HarmonicMean(sp[m{true, deg}])
		a := metrics.HarmonicMean(sp[m{false, deg}])
		unit.X = append(unit.X, float64(deg))
		unit.Y = append(unit.Y, u)
		actual.X = append(actual.X, float64(deg))
		actual.Y = append(actual.Y, a)
		t.add(fmtI(deg), fmtF(u), fmtF(a))
	}
	var b strings.Builder
	b.WriteString(t.render())
	b.WriteString("\nPaper shape: assuming one-cycle functional units predicts large speedups from\n" +
		"parallel issue (the paper cites up to 2.7 from [1]); with actual latencies the\n" +
		"CRAY-1 'already executes several instructions concurrently due to its average\n" +
		"degree of superpipelining of 4.4', and parallel issue gains almost nothing.\n")
	return &Result{ID: "fig4-4", Title: "Parallel issue with unit and real latencies", Text: b.String(),
		Series: []metrics.Series{unit, actual}}, nil
}

// runFig45 sweeps issue multiplicity per benchmark on ideal superscalar
// machines: the per-benchmark available parallelism.
func runFig45(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	maxDeg := r.Cfg.maxDegree()

	var jobs []job
	type m struct {
		bench string
		deg   int
	}
	var meta []m
	for _, b := range suite {
		for deg := 1; deg <= maxDeg; deg++ {
			jobs = append(jobs, job{b.Name, defaultOpts(b), machine.IdealSuperscalar(deg)})
			meta = append(meta, m{b.Name, deg})
		}
	}
	results, err := r.measureMany(ctx, jobs)
	if err != nil {
		return nil, err
	}
	cycles := map[m]float64{}
	for i := range jobs {
		cycles[meta[i]] = results[i].BaseCycles
	}

	var series []metrics.Series
	header := []string{"benchmark"}
	for deg := 1; deg <= maxDeg; deg++ {
		header = append(header, fmt.Sprintf("x%d", deg))
	}
	t := &table{header: header}
	for _, b := range suite {
		s := metrics.Series{Name: benchLabel(b)}
		row := []string{benchLabel(b)}
		for deg := 1; deg <= maxDeg; deg++ {
			sp := cycles[m{b.Name, 1}] / cycles[m{b.Name, deg}]
			s.X = append(s.X, float64(deg))
			s.Y = append(s.Y, sp)
			row = append(row, fmtF(sp))
		}
		series = append(series, s)
		t.add(row...)
	}
	var buf strings.Builder
	buf.WriteString(t.render())
	buf.WriteString("\nPaper shape: yacc has the least parallelism (~1.6 after normal optimization);\n" +
		"many programs sit near 2 (ccom, grr, stanford, met, whet); livermore approaches\n" +
		"2.5; linpack with its official 4x unrolling reaches ~3.2. 'There is a factor of\n" +
		"two difference ... but the ceiling is still quite low.'\n")
	return &Result{ID: "fig4-5", Title: "Instruction-level parallelism by benchmark", Text: buf.String(),
		Series: series}, nil
}
