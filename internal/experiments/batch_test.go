// batch_test.go pins the batched measurement path: a batchable sweep must
// render byte-identical output to the per-cell goroutine path (batching is
// pure scheduling, never timing), keep the singleflight cache protocol
// intact, and count its work in the new stats.
package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ilp/internal/compiler"
	"ilp/internal/machine"
)

// TestBatchedSweepBitIdentical renders measureMany-driven experiments with a
// batchable config and with a no-op measure hook installed (which forces the
// goroutine fan-out) and requires identical text — and that the batched
// runner actually batched.
func TestBatchedSweepBitIdentical(t *testing.T) {
	base := Config{MaxDegree: 4, Benchmarks: []string{"whet", "linpack"}}

	rBatch := NewRunner(base)
	rPlain := NewRunner(base)
	rPlain.measureHook = func(context.Context, string, *machine.Config) error {
		return nil // same semantics, disqualifies the batched path
	}
	if !rBatch.batchable() || rPlain.batchable() {
		t.Fatalf("batchable gate wrong: batch=%v plain=%v", rBatch.batchable(), rPlain.batchable())
	}
	for _, id := range []string{"fig2", "fig4-1", "tab2-1"} {
		got, err := rBatch.Run(id)
		if err != nil {
			t.Fatalf("%s (batched): %v", id, err)
		}
		want, err := rPlain.Run(id)
		if err != nil {
			t.Fatalf("%s (goroutine): %v", id, err)
		}
		if got.Text != want.Text {
			t.Errorf("%s: batched rendition diverged:\n got:\n%s\nwant:\n%s", id, got.Text, want.Text)
		}
		if !reflect.DeepEqual(got.Series, want.Series) {
			t.Errorf("%s: batched series diverged", id)
		}
	}
	bs, ps := rBatch.Stats(), rPlain.Stats()
	if bs.BatchedCells == 0 {
		t.Errorf("batchable sweep batched no cells: %+v", bs)
	}
	if ps.BatchedCells != 0 {
		t.Errorf("hooked sweep used the batched path: %+v", ps)
	}
	if bs.Superblocks == 0 || ps.Superblocks == 0 {
		t.Errorf("no superblock traces counted: batch=%d plain=%d", bs.Superblocks, ps.Superblocks)
	}
	if bs.CondTraces == 0 || ps.CondTraces == 0 {
		t.Errorf("no profiled cond traces counted: batch=%d plain=%d", bs.CondTraces, ps.CondTraces)
	}
	if bs.ParallelShards == 0 {
		t.Errorf("batched sweep recorded no shards: %+v", bs)
	}
	if ps.ParallelShards != 0 {
		t.Errorf("hooked sweep recorded batch shards: %+v", ps)
	}
	if bs.Sims != ps.Sims || bs.SimHits != ps.SimHits {
		t.Errorf("cache traffic diverged: batched %+v vs goroutine %+v", bs, ps)
	}
}

// TestBatchedMeasureManyDuplicates: duplicate cells inside one batched sweep
// join the first occurrence's singleflight entry instead of re-simulating.
func TestBatchedMeasureManyDuplicates(t *testing.T) {
	r := NewRunner(Config{})
	jobs := append(sweepJobs("whet", 2), sweepJobs("whet", 2)...)
	res, err := r.measureMany(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res[i] == nil || res[i] != res[i+2] {
			t.Errorf("duplicate job %d did not join its leader's entry", i)
		}
	}
	st := r.Stats()
	if st.Sims != 2 || st.SimHits != 2 || st.BatchedCells != 2 {
		t.Errorf("stats = %+v, want 2 sims, 2 hits, 2 batched cells", st)
	}
}

// TestBatchedMeasureManyCancellation: a cancelled batched sweep returns the
// cancellation, evicts its claimed entries (no cache poisoning), and a later
// live-context sweep redoes and completes the work.
func TestBatchedMeasureManyCancellation(t *testing.T) {
	r := NewRunner(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.measureMany(ctx, sweepJobs("whet", 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	res, err := r.measureMany(context.Background(), sweepJobs("whet", 2))
	if err != nil || res[0] == nil || res[1] == nil {
		t.Fatalf("retry after cancelled batch failed: res=%v err=%v", res, err)
	}
}

// TestBatchedMatchesMeasureCtx: a cell simulated by the batched path is
// DeepEqual to the same cell measured individually by a fresh runner.
func TestBatchedMatchesMeasureCtx(t *testing.T) {
	opts := compiler.Options{Level: compiler.O4}
	rBatch := NewRunner(Config{})
	res, err := rBatch.measureMany(context.Background(), sweepJobs("whet", 3))
	if err != nil {
		t.Fatal(err)
	}
	rSolo := NewRunner(Config{})
	for i := 0; i < 3; i++ {
		want, err := rSolo.MeasureCtx(context.Background(), "whet", opts, machine.IdealSuperscalar(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[i], want) {
			t.Errorf("degree %d: batched cell diverged from MeasureCtx:\n got %+v\nwant %+v", i+1, res[i], want)
		}
	}
}
