package experiments

import (
	"fmt"
	"strings"
	"testing"

	"ilp/internal/compiler"
	"ilp/internal/machine"
)

// Shape assertions run on a reduced sweep (degree 4, two benchmarks) to
// stay fast; the full-size shapes are recorded in EXPERIMENTS.md from
// cmd/ilpbench runs.

func testRunner() *Runner {
	return NewRunner(Config{MaxDegree: 4, Benchmarks: []string{"yacc", "whet"}})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "tab2-1",
		"fig4-1", "fig4-2", "fig4-3", "fig4-4", "fig4-5",
		"fig4-6", "fig4-7", "fig4-8",
		"tab5-1", "sec5-1",
		"abl-branch", "abl-temps", "abl-sched", "abl-memdep",
		"ext-conflicts", "ext-vliw", "ext-icache", "ext-limits", "ext-slack",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("have %d experiments %v, want %d", len(ids), ids, len(want))
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestFig2Renders(t *testing.T) {
	res, err := testRunner().Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2-1", "Figure 2-4", "Figure 2-6", "Figure 2-8", "#"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}
}

func TestTab21Shape(t *testing.T) {
	res, err := testRunner().Run("tab2-1")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series[0]
	measuredMT, measuredCR := s.Y[0], s.Y[1]
	paperMT, paperCR := s.Y[2], s.Y[3]
	// At the paper's mix we must reproduce Table 2-1 exactly.
	if paperMT < 1.69 || paperMT > 1.71 {
		t.Errorf("MultiTitan at paper mix = %.3f, want 1.70", paperMT)
	}
	if paperCR < 4.39 || paperCR > 4.41 {
		t.Errorf("CRAY-1 at paper mix = %.3f, want 4.40", paperCR)
	}
	// At the measured mix the ordering and rough magnitudes must hold.
	if !(measuredCR > 2.5*measuredMT) {
		t.Errorf("CRAY-1 (%.2f) should be far more superpipelined than MultiTitan (%.2f)",
			measuredCR, measuredMT)
	}
	if measuredMT < 1.2 || measuredMT > 2.5 {
		t.Errorf("MultiTitan measured degree %.2f outside plausible band", measuredMT)
	}
}

func TestFig41Shape(t *testing.T) {
	res, err := testRunner().Run("fig4-1")
	if err != nil {
		t.Fatal(err)
	}
	ss, sp := res.Series[0], res.Series[1]
	for i := range ss.X {
		if sp.Y[i] > ss.Y[i]+1e-9 {
			t.Errorf("degree %v: superpipelined (%.3f) beats superscalar (%.3f); paper says the reverse",
				ss.X[i], sp.Y[i], ss.Y[i])
		}
		if i > 0 {
			if ss.Y[i] < ss.Y[i-1]-1e-9 || sp.Y[i] < sp.Y[i-1]-1e-9 {
				t.Errorf("speedups must be monotone in degree")
			}
		}
	}
	// The gap shrinks (relative) from degree 2 to the max degree.
	gap2 := ss.Y[1]/sp.Y[1] - 1
	gapN := ss.Y[len(ss.Y)-1]/sp.Y[len(sp.Y)-1] - 1
	if gapN > gap2+0.02 {
		t.Errorf("superscalar/superpipelined gap should shrink with degree: %.3f -> %.3f", gap2, gapN)
	}
}

func TestFig44Shape(t *testing.T) {
	res, err := testRunner().Run("fig4-4")
	if err != nil {
		t.Fatal(err)
	}
	unit, actual := res.Series[0], res.Series[1]
	uN, aN := unit.Y[len(unit.Y)-1], actual.Y[len(actual.Y)-1]
	if !(uN > aN) {
		t.Errorf("unit-latency speedup (%.2f) should exceed actual-latency speedup (%.2f)", uN, aN)
	}
	if aN > 1.35 {
		t.Errorf("with actual latencies the CRAY-1 should benefit very little from parallel issue, got %.2f", aN)
	}
	if uN < 1.5 {
		t.Errorf("with unit latencies parallel issue should look attractive, got %.2f", uN)
	}
}

func TestFig45Shape(t *testing.T) {
	res, err := testRunner().Run("fig4-5")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Y[0] != 1.0 {
			t.Errorf("%s: speedup at multiplicity 1 = %v, want 1", s.Name, s.Y[0])
		}
		last := s.Y[len(s.Y)-1]
		if last < 1.3 || last > 5 {
			t.Errorf("%s: available parallelism %.2f outside the paper's plausible band", s.Name, last)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Errorf("%s: speedup not monotone in issue multiplicity", s.Name)
			}
		}
	}
}

func TestFig46Shape(t *testing.T) {
	r := NewRunner(Config{MaxDegree: 8})
	res, err := r.Run("fig4-6")
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) []float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("series %s missing", name)
		return nil
	}
	ln := find("linpack.naive")
	lc := find("linpack.careful")
	// Unrolling helps; careful at x10 beats naive at x10.
	if !(ln[2] > ln[0]) {
		t.Errorf("naive 4x unrolling should beat no unrolling: %v", ln)
	}
	if !(lc[3] >= ln[3]) {
		t.Errorf("careful x10 (%.2f) should be at least naive x10 (%.2f)", lc[3], ln[3])
	}
	// Naive flattens: the x4 -> x10 gain is small relative to x1 -> x4.
	if ln[3]-ln[2] > ln[2]-ln[0] {
		t.Errorf("naive unrolling should be mostly flat after 4x: %v", ln)
	}
}

func TestFig47Values(t *testing.T) {
	res, err := testRunner().Run("fig4-7")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5.0 / 3, 4.0 / 3, 1.5}
	for i, w := range want {
		got := res.Series[0].Y[i]
		if got < w-0.01 || got > w+0.01 {
			t.Errorf("graph %d parallelism = %.3f, want %.3f (paper: 1.67/1.33/1.50)", i, got, w)
		}
	}
}

func TestFig48Shape(t *testing.T) {
	res, err := testRunner().Run("fig4-8")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Y) != 5 {
			t.Fatalf("%s: want 5 levels, got %d", s.Name, len(s.Y))
		}
		// Scheduling (level 1) must not hurt parallelism.
		if s.Y[1] < s.Y[0]-1e-9 {
			t.Errorf("%s: scheduling reduced parallelism %.2f -> %.2f", s.Name, s.Y[0], s.Y[1])
		}
		// All levels stay in a plausible band.
		for i, v := range s.Y {
			if v < 1.0 || v > 6 {
				t.Errorf("%s level %d: parallelism %.2f out of band", s.Name, i, v)
			}
		}
	}
}

func TestTab51Values(t *testing.T) {
	res, err := testRunner().Run("tab5-1")
	if err != nil {
		t.Fatal(err)
	}
	costs := res.Series[0].Y
	// The static computation must reproduce the paper's column exactly:
	// 0.6, 8.6, 140 instruction times.
	if costs[0] < 0.55 || costs[0] > 0.65 {
		t.Errorf("VAX miss cost %.2f instr, want 0.6", costs[0])
	}
	if costs[1] < 8.4 || costs[1] > 8.8 {
		t.Errorf("Titan miss cost %.2f instr, want 8.6", costs[1])
	}
	if costs[2] < 139 || costs[2] > 141 {
		t.Errorf("future machine miss cost %.1f instr, want 140", costs[2])
	}
	// Measured: caches must slow things down.
	for i, slow := range res.Series[1].Y {
		if slow < 1.0 {
			t.Errorf("benchmark %d: caches speed things up?! %.3f", i, slow)
		}
	}
}

func TestSec51Shape(t *testing.T) {
	res, err := testRunner().Run("sec5-1")
	if err != nil {
		t.Fatal(err)
	}
	perfect, cached := res.Series[0].Y[0], res.Series[0].Y[1]
	if !(cached < perfect) {
		t.Errorf("cache misses should shrink the parallel-issue speedup: perfect %.2f, cached %.2f",
			perfect, cached)
	}
}

func TestAblations(t *testing.T) {
	r := testRunner()
	for _, id := range []string{"abl-branch", "abl-sched", "abl-memdep"} {
		res, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Text == "" {
			t.Errorf("%s: empty output", id)
		}
	}
	// Issuing through branches can only help.
	res, err := r.Run("abl-branch")
	if err != nil {
		t.Fatal(err)
	}
	withBreaks, through := res.Series[0].Y, res.Series[1].Y
	for i := range withBreaks {
		if through[i] < withBreaks[i]-1e-9 {
			t.Errorf("benchmark %d: removing group breaks reduced parallelism", i)
		}
	}
}

// TestPredecodeSharedOnce pins the predecode-once contract: machines that
// share a schedule fingerprint (here: identical Base schedules under
// different names, so each gets its own sim-cache cell) must share one
// compilation AND one predecoded artifact, with every live simulation
// running on it read-only.
func TestPredecodeSharedOnce(t *testing.T) {
	r := NewRunner(Config{})
	const variants = 3
	for i := 0; i < variants; i++ {
		m := machine.Base()
		m.Name = fmt.Sprintf("base-v%d", i)
		if _, err := r.Measure("whet", compiler.Options{}, m); err != nil {
			t.Fatalf("measure %s: %v", m.Name, err)
		}
	}
	st := r.Stats()
	if st.Compiles != 1 {
		t.Errorf("schedule-identical machines recompiled: Compiles = %d, want 1", st.Compiles)
	}
	if st.Predecodes != 1 {
		t.Errorf("schedule-identical machines re-predecoded: Predecodes = %d, want 1", st.Predecodes)
	}
	if st.Sims != variants {
		t.Fatalf("Sims = %d, want %d distinct cells", st.Sims, variants)
	}
	if st.PredecodeShared != variants {
		t.Errorf("PredecodeShared = %d, want %d (every live sim on the shared artifact)", st.PredecodeShared, variants)
	}
	rep := r.Report()
	if rep.Predecodes != st.Predecodes || rep.PredecodeShared != st.PredecodeShared {
		t.Errorf("SweepReport predecode counters %d/%d do not mirror stats %d/%d",
			rep.Predecodes, rep.PredecodeShared, st.Predecodes, st.PredecodeShared)
	}
}

func TestRunnerCache(t *testing.T) {
	r := testRunner()
	if _, err := r.Run("fig4-5"); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Sims == 0 || st.Compiles == 0 {
		t.Fatalf("cache empty after run: %+v", st)
	}
	if _, err := r.Run("fig4-5"); err != nil {
		t.Fatal(err)
	}
	st2 := r.Stats()
	if st2.Sims != st.Sims || st2.Compiles != st.Compiles {
		t.Errorf("second run redid work: %+v -> %+v", st, st2)
	}
	if st2.SimHits <= st.SimHits {
		t.Errorf("second run did not hit the sim cache: %+v -> %+v", st, st2)
	}
}
