package experiments

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"ilp/internal/machine"
	"ilp/internal/store"
)

// TestResumeReproducesOutput is the library half of the kill-and-resume
// acceptance check: a store-backed sweep cancelled partway through, then
// resumed from the same store by a fresh runner, renders output and a
// resume-invariant report byte-identical to an uninterrupted run.
func TestResumeReproducesOutput(t *testing.T) {
	cfg := Config{MaxDegree: 2, Benchmarks: []string{"whet"}}

	// Reference: one uninterrupted, storeless sweep.
	var want bytes.Buffer
	wantRep, err := NewRunner(cfg).RunAll(context.Background(), &want)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted leg: cancel mid-sweep, after a handful of measurements
	// have committed to the store.
	path := filepath.Join(t.TempDir(), "resume.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	icfg := cfg
	icfg.Store = st
	r := NewRunner(icfg)
	ctx, cancel := context.WithCancel(context.Background())
	var sims atomic.Int32
	r.measureHook = func(hctx context.Context, bench string, m *machine.Config) error {
		if sims.Add(1) == 5 {
			cancel()
		}
		return nil
	}
	var partial bytes.Buffer
	if _, err := r.RunAll(ctx, &partial); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want context.Canceled, got %v", err)
	}
	st.Close()
	recs, _, err := store.Load(path)
	if err != nil {
		t.Fatalf("store after interruption: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("interrupted run committed nothing — resume has nothing to prove")
	}

	// Resume leg: a fresh process (new store handle, new runner) finishes
	// the sweep.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rcfg := cfg
	rcfg.Store = st2
	r2 := NewRunner(rcfg)
	var got bytes.Buffer
	gotRep, err := r2.RunAll(context.Background(), &got)
	if err != nil {
		t.Fatal(err)
	}

	if got.String() != want.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\nresumed %d bytes, fresh %d bytes",
			got.Len(), want.Len())
	}
	if gotRep.Cells != wantRep.Cells || gotRep.Degraded != wantRep.Degraded {
		t.Fatalf("resume-invariant report fields differ: resumed %+v, fresh %+v", gotRep, wantRep)
	}
	if gotRep.Resumed == 0 {
		t.Fatal("resumed run loaded nothing from the store")
	}
	if gotRep.Live+gotRep.Resumed < int64(gotRep.Cells) {
		t.Fatalf("report does not add up: %+v", gotRep)
	}
}
