package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ilp/internal/machine"
	"ilp/internal/sim"
)

// CellEvent describes the resolution of one measurement cell from the
// point of view of one request: the cell's coordinate, whether this
// request's call performed the simulation or was served from the
// fingerprint-keyed cache (a singleflight join, a previous sweep's entry,
// or a store-preloaded record all count as Cached), and what came out.
// Events fire after the degradation policy, so a permanently failed cell
// under Config.Degrade reports Degraded with a nil Err.
type CellEvent struct {
	// Experiment is the id of the experiment whose sweep resolved the
	// cell (empty for direct Measure calls outside an experiment).
	Experiment string
	// Benchmark and Machine name the measured coordinate; Fingerprint is
	// the machine's canonical fingerprint (the sim-cache key suffix).
	Benchmark   string
	Machine     string
	Fingerprint string
	// Cached is true when the cell was served without a live simulation
	// by this call: a cache hit, a join onto another request's leader, or
	// a record resumed from the store.
	Cached bool
	// Degraded marks a placeholder row published by the degrade policy.
	Degraded bool
	// Instructions is the dynamic instruction count of the result (zero
	// for degraded placeholders and failed cells).
	Instructions int64
	// Err is the cell's error as returned to the caller (nil when the
	// degrade policy swallowed the failure).
	Err error
}

// Observer receives one CellEvent per cell resolved by calls made under
// its context. Observers run synchronously on the measuring goroutine and
// must be safe for concurrent use — a sweep fans cells out over workers.
type Observer func(CellEvent)

const observerKey ctxKey = iota + 1 // experimentIDKey is iota 0

// WithObserver returns a context under which every resolved measurement
// cell is reported to obs. Observers chain: an observer already installed
// on ctx keeps firing, before obs. This is the streaming hook of the ilpd
// daemon — the runner is shared by every client, so progress is
// attributed per request through its context rather than per runner.
func WithObserver(ctx context.Context, obs Observer) context.Context {
	if prev := observerFrom(ctx); prev != nil {
		next := obs
		obs = func(ev CellEvent) {
			prev(ev)
			next(ev)
		}
	}
	return context.WithValue(ctx, observerKey, obs)
}

func observerFrom(ctx context.Context) Observer {
	obs, _ := ctx.Value(observerKey).(Observer)
	return obs
}

// notify reports a resolved cell to the context's observer, if any.
func notify(ctx context.Context, bench string, m *machine.Config, fp string, res *sim.Result, err error, cached bool) {
	obs := observerFrom(ctx)
	if obs == nil {
		return
	}
	ev := CellEvent{
		Experiment: experimentID(ctx), Benchmark: bench,
		Machine: m.Name, Fingerprint: fp,
		Cached: cached, Err: err,
	}
	if res != nil {
		ev.Degraded = res.Degraded
		ev.Instructions = res.Instructions
	}
	obs(ev)
}

// ErrBudgetExceeded marks sweeps stopped by WithInstructionBudget: the
// request simulated more live instructions than its admission budget
// allowed. It is a cancellation cause, so the runner's caches are not
// poisoned — cells already committed stay committed, the rest are evicted
// for the next (better-funded) request to redo.
var ErrBudgetExceeded = errors.New("experiments: instruction budget exceeded")

// WithInstructionBudget returns a context cancelled once the live
// simulated instructions observed under it exceed max. Cached cells are
// free — the budget bounds the work a request imposes on the process, not
// the size of the answer it reads. The returned stop function releases
// the context's resources (call it when the sweep ends); after a budget
// trip, context.Cause(ctx) wraps ErrBudgetExceeded.
func WithInstructionBudget(ctx context.Context, max int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(ctx)
	var spent atomic.Int64
	octx := WithObserver(ctx, func(ev CellEvent) {
		if ev.Cached || ev.Err != nil {
			return
		}
		if n := spent.Add(ev.Instructions); n > max {
			cancel(fmt.Errorf("%w: %d instructions simulated, budget %d", ErrBudgetExceeded, n, max))
		}
	})
	return octx, func() { cancel(context.Canceled) }
}
