package experiments

import (
	"context"

	"fmt"
	"strings"

	"ilp/internal/compiler"
	"ilp/internal/machine"
	"ilp/internal/metrics"
)

// These experiments probe design decisions the paper raises but does not
// plot (DESIGN.md §5): the issue-group branch rule behind the startup
// transient, the temporary-register budget behind the unrolling plateau,
// scheduling itself, and careful memory disambiguation in isolation.

func init() {
	register("abl-branch", "Ablation: taken-branch issue-group break (startup transient)", runAblBranch)
	register("abl-temps", "Ablation: temporary-register budget at high unroll factors", runAblTemps)
	register("abl-sched", "Ablation: pipeline scheduling on/off", runAblSched)
	register("abl-memdep", "Ablation: careful memory disambiguation without unrolling", runAblMemdep)
}

// runAblBranch quantifies §4.1's startup-transient argument by letting a
// superscalar machine issue through taken branches.
func runAblBranch(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	deg := r.Cfg.maxDegree()
	normal := machine.IdealSuperscalar(deg)
	through := machine.IdealSuperscalar(deg)
	through.Name += "-branchthrough"
	through.TakenBranchEndsGroup = false

	var with, without []float64
	t := &table{header: []string{"benchmark", "parallelism (group breaks)", "parallelism (issue through branches)"}}
	for _, b := range suite {
		rb, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), machine.Base())
		if err != nil {
			return nil, err
		}
		rn, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), normal)
		if err != nil {
			return nil, err
		}
		rt, err := r.MeasureCtx(ctx, b.Name, defaultOpts(b), through)
		if err != nil {
			return nil, err
		}
		pw := rb.BaseCycles / rn.BaseCycles
		po := rb.BaseCycles / rt.BaseCycles
		with = append(with, pw)
		without = append(without, po)
		t.add(b.Name, fmtF(pw), fmtF(po))
	}
	var b strings.Builder
	b.WriteString(t.render())
	fmt.Fprintf(&b, "\nHarmonic mean: %.2f with group breaks, %.2f issuing through taken branches.\n",
		metrics.HarmonicMean(with), metrics.HarmonicMean(without))
	b.WriteString("The gap bounds how much of the parallelism ceiling is the control structure\n" +
		"(basic-block boundaries) rather than data dependence.\n")
	return &Result{ID: "abl-branch", Title: "Taken-branch issue-group break", Text: b.String(),
		Series: []metrics.Series{
			{Name: "with-breaks", X: seq(len(with)), Y: with},
			{Name: "through-branches", X: seq(len(without)), Y: without},
		}}, nil
}

// runAblTemps reruns the careful-unrolling measurement with the paper's 16
// temporaries instead of 40: "we have only forty temporary registers
// available, which limits the amount of parallelism we can exploit."
func runAblTemps(ctx context.Context, r *Runner) (*Result, error) {
	factors := []int{1, 4, 10}
	t := &table{header: []string{"config", "x1", "x4", "x10"}}
	var series []metrics.Series
	for _, temps := range []int{machine.DefaultTemps, machine.WideTemps} {
		s := metrics.Series{Name: fmt.Sprintf("linpack.careful.%dtemps", temps)}
		row := []string{s.Name}
		for _, k := range factors {
			base := machine.Base()
			wide := machine.IdealSuperscalar(r.Cfg.maxDegree())
			for _, m := range []*machine.Config{base, wide} {
				m.IntTemps, m.FPTemps = temps, temps
				m.IntHomes, m.FPHomes = 10, 10
			}
			copts := compiler.Options{Level: compiler.O4, Unroll: k, Careful: true}
			rb, err := r.MeasureCtx(ctx, "linpack", copts, base)
			if err != nil {
				return nil, err
			}
			rw, err := r.MeasureCtx(ctx, "linpack", copts, wide)
			if err != nil {
				return nil, err
			}
			par := rb.BaseCycles / rw.BaseCycles
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, par)
			row = append(row, fmtF(par))
		}
		series = append(series, s)
		t.add(row...)
	}
	var b strings.Builder
	b.WriteString(t.render())
	b.WriteString("\nFewer temporaries force register reuse, whose artificial WAR/WAW dependencies\n" +
		"cap the parallelism of heavily unrolled loops (§3, §4.4).\n")
	return &Result{ID: "abl-temps", Title: "Temporary-register budget", Text: b.String(), Series: series}, nil
}

// runAblSched isolates the scheduler at full optimization: O4 with and
// without the final scheduling pass.
func runAblSched(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	wide := machine.IdealSuperscalar(r.Cfg.maxDegree())
	t := &table{header: []string{"benchmark", "parallelism unscheduled", "parallelism scheduled", "gain"}}
	var gains []float64
	for _, b := range suite {
		on := defaultOpts(b)
		off := defaultOpts(b)
		off.NoSchedule = true
		pb, err := r.MeasureCtx(ctx, b.Name, off, machine.Base())
		if err != nil {
			return nil, err
		}
		pw, err := r.MeasureCtx(ctx, b.Name, off, wide)
		if err != nil {
			return nil, err
		}
		sb, err := r.MeasureCtx(ctx, b.Name, on, machine.Base())
		if err != nil {
			return nil, err
		}
		sw, err := r.MeasureCtx(ctx, b.Name, on, wide)
		if err != nil {
			return nil, err
		}
		pOff := pb.BaseCycles / pw.BaseCycles
		pOn := sb.BaseCycles / sw.BaseCycles
		gains = append(gains, pOn/pOff)
		t.add(b.Name, fmtF(pOff), fmtF(pOn), fmt.Sprintf("%+.0f%%", (pOn/pOff-1)*100))
	}
	var b strings.Builder
	b.WriteString(t.render())
	fmt.Fprintf(&b, "\nGeometric-mean gain from scheduling: %+.0f%% (paper: 'pipeline scheduling can\n"+
		"increase the available parallelism by 10%% to 60%%').\n", (metrics.GeometricMean(gains)-1)*100)
	return &Result{ID: "abl-sched", Title: "Scheduling on/off", Text: b.String(),
		Series: []metrics.Series{{Name: "gain", X: seq(len(gains)), Y: gains}}}, nil
}

// runAblMemdep turns on careful memory disambiguation without unrolling,
// separating the scheduler-analysis effect from the unrolling effect.
func runAblMemdep(ctx context.Context, r *Runner) (*Result, error) {
	suite, err := r.Cfg.suite()
	if err != nil {
		return nil, err
	}
	wide := machine.IdealSuperscalar(r.Cfg.maxDegree())
	t := &table{header: []string{"benchmark", "conservative", "careful disambiguation", "gain"}}
	var gains []float64
	for _, b := range suite {
		cons := defaultOpts(b)
		care := defaultOpts(b)
		care.Careful = true
		cb, err := r.MeasureCtx(ctx, b.Name, cons, machine.Base())
		if err != nil {
			return nil, err
		}
		cw, err := r.MeasureCtx(ctx, b.Name, cons, wide)
		if err != nil {
			return nil, err
		}
		kb, err := r.MeasureCtx(ctx, b.Name, care, machine.Base())
		if err != nil {
			return nil, err
		}
		kw, err := r.MeasureCtx(ctx, b.Name, care, wide)
		if err != nil {
			return nil, err
		}
		pc := cb.BaseCycles / cw.BaseCycles
		pk := kb.BaseCycles / kw.BaseCycles
		gains = append(gains, pk/pc)
		t.add(b.Name, fmtF(pc), fmtF(pk), fmt.Sprintf("%+.0f%%", (pk/pc-1)*100))
	}
	var b strings.Builder
	b.WriteString(t.render())
	b.WriteString("\nWithout unrolled copies to disambiguate, sharper memory analysis buys little —\n" +
		"the paper's careful-unrolling gains come from the combination, not the analysis\n" +
		"alone.\n")
	return &Result{ID: "abl-memdep", Title: "Careful disambiguation without unrolling", Text: b.String(),
		Series: []metrics.Series{{Name: "gain", X: seq(len(gains)), Y: gains}}}, nil
}
