// Package metrics holds the paper's summary statistics: speedups, harmonic
// means (the paper aggregates benchmark speedups with the harmonic mean,
// "so far we have been plotting a single curve for the harmonic mean of all
// eight benchmarks"), the average degree of superpipelining, and the
// parallelism of expression DAGs (Figure 4-7).
package metrics

import (
	"fmt"
	"math"
)

// HarmonicMean aggregates speedups the way the paper does. It returns 0
// for an empty slice and panics on non-positive values (a speedup of zero
// would be a measurement bug, not a datum).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: harmonic mean of non-positive value %v", x))
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// ArithmeticMean of a slice; 0 when empty.
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeometricMean of positive values; 0 when empty.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: geometric mean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Series is one labeled curve of an experiment.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// At returns the Y value for a given X, or NaN.
func (s *Series) At(x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// ExprDAG is a small expression-graph model for the Figure 4-7 analysis:
// the parallelism of a computation is its operation count divided by its
// critical-path length.
type ExprDAG struct {
	nodes int
	preds [][]int
}

// NewExprDAG creates an empty DAG.
func NewExprDAG() *ExprDAG {
	return &ExprDAG{}
}

// Node adds an operation whose inputs are the given earlier nodes (leaf
// operands are implicit and free, as in the paper's figure, which counts
// operations, not values). Returns the node id.
func (d *ExprDAG) Node(preds ...int) int {
	for _, p := range preds {
		if p < 0 || p >= d.nodes {
			panic(fmt.Sprintf("metrics: bad predecessor %d", p))
		}
	}
	d.preds = append(d.preds, preds)
	d.nodes++
	return d.nodes - 1
}

// Ops returns the operation count.
func (d *ExprDAG) Ops() int { return d.nodes }

// CriticalPath returns the longest chain length.
func (d *ExprDAG) CriticalPath() int {
	depth := make([]int, d.nodes)
	best := 0
	for i := 0; i < d.nodes; i++ {
		dm := 0
		for _, p := range d.preds[i] {
			if depth[p] > dm {
				dm = depth[p]
			}
		}
		depth[i] = dm + 1
		if depth[i] > best {
			best = depth[i]
		}
	}
	return best
}

// Parallelism is ops / critical path, the figure's metric.
func (d *ExprDAG) Parallelism() float64 {
	cp := d.CriticalPath()
	if cp == 0 {
		return 0
	}
	return float64(d.Ops()) / float64(cp)
}
