package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if hm := HarmonicMean(xs); !almost(hm, 3.0/(1+0.5+0.25)) {
		t.Errorf("harmonic = %v", hm)
	}
	if am := ArithmeticMean(xs); !almost(am, 7.0/3) {
		t.Errorf("arithmetic = %v", am)
	}
	if gm := GeometricMean(xs); !almost(gm, 2) {
		t.Errorf("geometric = %v", gm)
	}
	if HarmonicMean(nil) != 0 || ArithmeticMean(nil) != 0 || GeometricMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
}

func TestMeanInequality(t *testing.T) {
	// Property: HM <= GM <= AM for positive values.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a%100) + 1, float64(b%100) + 1, float64(c%100) + 1}
		hm, gm, am := HarmonicMean(xs), GeometricMean(xs), ArithmeticMean(xs)
		return hm <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeansPanicOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive speedup")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestSeriesAt(t *testing.T) {
	s := Series{Name: "x", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}}
	if s.At(2) != 20 {
		t.Errorf("At(2) = %v", s.At(2))
	}
	if !math.IsNaN(s.At(9)) {
		t.Error("missing X should be NaN")
	}
}

func TestExprDAGFig47(t *testing.T) {
	// The paper's left graph: 5 ops, critical path 3 -> 1.67.
	d := NewExprDAG()
	a1 := d.Node()
	a2 := d.Node(a1)
	b1 := d.Node()
	b2 := d.Node(b1)
	d.Node(a2, b2)
	if d.Ops() != 5 || d.CriticalPath() != 3 {
		t.Fatalf("ops=%d path=%d", d.Ops(), d.CriticalPath())
	}
	if p := d.Parallelism(); !almost(p, 5.0/3) {
		t.Errorf("parallelism = %v", p)
	}
}

func TestExprDAGChainAndFlat(t *testing.T) {
	chain := NewExprDAG()
	prev := chain.Node()
	for i := 0; i < 9; i++ {
		prev = chain.Node(prev)
	}
	if !almost(chain.Parallelism(), 1) {
		t.Errorf("chain parallelism = %v", chain.Parallelism())
	}
	flat := NewExprDAG()
	for i := 0; i < 10; i++ {
		flat.Node()
	}
	if !almost(flat.Parallelism(), 10) {
		t.Errorf("flat parallelism = %v", flat.Parallelism())
	}
	empty := NewExprDAG()
	if empty.Parallelism() != 0 {
		t.Error("empty DAG parallelism should be 0")
	}
}

func TestExprDAGBadPredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for forward reference")
		}
	}()
	d := NewExprDAG()
	d.Node(3)
}
