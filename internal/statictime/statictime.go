// Package statictime is the static half of the simulator's timing story: a
// per-basic-block cycle-bound analyzer over the scheduled machine code and
// the machine description. The paper's thesis is that available parallelism
// is a static property of the code and the machine ("the instruction-level
// parallelism available to a machine with given latencies is a property of
// the program after compilation"), so the cycle counts the dynamic engine
// reports should be derivable — or at least boundable — without running.
//
// For every basic block the analyzer computes three span lower bounds (the
// minimum distance, in minor cycles, between the block's first and last
// issue in any execution, under any entry state):
//
//   - the dependence height: the critical path through the block's RAW and
//     WAW edges under the machine's operation latencies (§2.1's "operation
//     latency" discipline, exactly as the engine's scoreboard enforces it);
//   - the issue-width bound: ⌈n/width⌉−1, the in-order width pigeonhole;
//   - the resource-pressure bound: per functional unit, a block that books
//     c issues on m copies with issue latency l keeps some copy busy for
//     (⌈c/m⌉−1)·l minor cycles — the PALMED-style throughput bound from
//     resource multiplicities.
//
// The block span is the max of the three. Combined with dynamic
// per-instruction execution counts (the fold of the engine's block
// enter/exit counters) and the taken-branch redirect gaps, the per-block
// spans give a whole-program lower bound on minor cycles; a potential-
// function argument over the engine's state gives an upper bound
// (LowerBound, UpperBound). internal/verify.CheckTiming turns the pair into
// the cross-check oracle `lower ≤ simulated ≤ upper`.
//
// For blocks whose instructions all issue to conflict-free units
// (multiplicity ≥ issue width and issue latency 1 — every unit of every
// ideal machine), entry state cannot perturb the schedule once the entry
// registers are quiescent: the analyzer then computes an exact clean-entry
// schedule (Schedule) for the block's straight-line prefix. The simulator's
// predecoder attaches these to proven blocks so the fast path can replay
// them — bulk-advancing the timing state instead of walking the scoreboard
// instruction by instruction (see sim's replay path).
package statictime

import (
	"fmt"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// RegWrite is one final scoreboard write of an exact schedule: register Reg
// becomes ready Off minor cycles after the schedule's entry slot.
type RegWrite struct {
	Reg isa.Reg
	Off int64
}

// Schedule is the exact clean-entry issue schedule of a block's
// straight-line prefix [Start, End): instruction Start+j issues exactly
// Offsets[j] minor cycles after the entry slot s, provided the entry is
// clean — every register in CheckRegs has scoreboard time ≤ s. The engine
// establishes s = barrier after a taken branch, where the precondition is
// one compare per register; everything else here is entry-independent
// because every instruction in the prefix issues to a conflict-free unit.
type Schedule struct {
	// Start and End delimit the prefix: [Start, End) contains no control
	// transfer and no halt (End stops short of the block terminator when
	// the block has one).
	Start, End int
	// Offsets[j] is the issue offset of instruction Start+j from the entry
	// slot. Offsets are nondecreasing (in-order issue).
	Offsets []int64
	// CycleAdv is the final issue-cycle advance: the engine's `cycle` after
	// the prefix equals s + CycleAdv (== Offsets[len-1]).
	CycleAdv int64
	// InCycle is the number of prefix instructions sharing the final issue
	// cycle, and Groups the number of issue groups the prefix opens
	// (including the group the first instruction starts at s).
	InCycle, Groups int64
	// WidthStalls, DataStalls and WriteStalls are the stall minor cycles
	// the prefix accrues internally (instructions after the first; the
	// first instruction's width/branch entry stalls depend on the dynamic
	// entry state and are accounted by the engine).
	WidthStalls, DataStalls, WriteStalls int64
	// MaxComplete is the largest completion offset (issue+latency) in the
	// prefix: the engine's lastComplete advances to max(lastComplete,
	// s+MaxComplete).
	MaxComplete int64
	// Writes are the final scoreboard times of every register the prefix
	// writes, as offsets from s, in ascending register order.
	Writes []RegWrite
	// CheckRegs lists every register the prefix reads or writes (r0
	// excluded, ascending). The schedule is exact iff all of them have
	// scoreboard time ≤ s at entry.
	CheckRegs []isa.Reg
}

// Block is one analyzed basic block [Leader, End).
type Block struct {
	Leader, End int
	// Label is the program symbol at the leader, if any.
	Label string
	// DepHeight, WidthBound and UnitBound are the three span lower bounds;
	// Span is their max: in any execution of the full block, the last
	// instruction issues at least Span minor cycles after the first.
	DepHeight, WidthBound, UnitBound, Span int64
	// ConflictFree reports that every instruction in the block (terminator
	// included) issues to a unit with multiplicity ≥ issue width and issue
	// latency 1, so unit contention cannot occur.
	ConflictFree bool
	// ExactSpan is the clean-entry span of the full block (terminator
	// included) when ConflictFree, else -1. Since a clean entry is a
	// realizable best case, ExactSpan ≥ Span must hold (checked by the
	// verify timing pass as an internal-consistency oracle).
	ExactSpan int64
	// Sched is the exact clean-entry schedule of the block's straight-line
	// prefix, when every prefix instruction is conflict-free; nil
	// otherwise.
	Sched *Schedule
}

// Analysis holds the static timing analysis of one program against one
// machine description.
type Analysis struct {
	Prog *isa.Program
	Cfg  *machine.Config
	// Blocks partitions [0, len(Prog.Instrs)) in ascending leader order.
	Blocks []Block
	// Deltas[i] is instruction i's upper-bound potential increment: no
	// engine timing quantity (cycle+1, barrier, scoreboard or unit busy
	// time) can grow by more than Deltas[i] when i issues. The sum over
	// dynamic counts upper-bounds total minor cycles.
	Deltas []int64
	// Gaps[i] is instruction i's taken-exit gap: a taken transfer at i
	// separates its issue from the target's by at least Gaps[i] minor
	// cycles (latency + branch redirect when a taken branch ends its
	// group; 0 otherwise).
	Gaps []int64

	blockOf []int32 // instruction index -> index into Blocks
}

// Analyze runs the static timing analysis. The program and machine are
// validated first; analysis itself cannot fail on validated input.
func Analyze(p *isa.Program, cfg *machine.Config) (*Analysis, error) {
	if cfg == nil {
		return nil, fmt.Errorf("statictime: no machine description")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}

	n := len(p.Instrs)
	a := &Analysis{
		Prog:    p,
		Cfg:     cfg,
		Deltas:  make([]int64, n),
		Gaps:    make([]int64, n),
		blockOf: make([]int32, n),
	}

	// Per-class unit facts, mirroring the predecoder: a unit "binds" (can
	// stall, books a lane) iff its multiplicity is below the issue width or
	// its issue latency exceeds one.
	unitOf, err := cfg.ClassUnits()
	if err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	var binds [isa.NumClasses]bool
	for cl, ui := range unitOf {
		u := &cfg.Units[ui]
		binds[cl] = u.Multiplicity < cfg.IssueWidth || u.IssueLatency != 1
	}

	a.deltasAndGaps()

	// Leaders: the program entry, every direct transfer target, and every
	// instruction after a transfer or halt. (p.Blocks is informational and
	// may be absent; re-deriving keeps the analysis self-contained, and
	// extra leaders from p.Blocks could only split blocks, which weakens
	// bounds but never breaks them — so they are folded in too.)
	leader := make([]bool, n)
	leader[0], leader[p.Entry] = true, true
	for _, b := range p.Blocks {
		if b >= 0 && b < n {
			leader[b] = true
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		info := in.Op.Info()
		if info.Branch || in.Op == isa.OpHalt {
			if i+1 < n {
				leader[i+1] = true
			}
			if info.Branch && in.Op != isa.OpJr {
				leader[in.Target] = true
			}
		}
	}

	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		b := a.analyzeBlock(start, end, &binds, &unitOf)
		for i := start; i < end; i++ {
			a.blockOf[i] = int32(len(a.Blocks))
		}
		a.Blocks = append(a.Blocks, b)
		start = end
	}
	return a, nil
}

// deltasAndGaps fills the per-instruction upper-bound increments and
// taken-exit gaps.
//
// The upper bound is a potential argument over the engine's timing state.
// Let Φ = max(cycle+1, barrier, max scoreboard ready time, max unit busy
// time). Initially Φ = 1. When instruction i issues, its slot is at most
// max(cycle+1, barrier) plus the instruction-cache miss penalty, its issue
// at most that (operand, write-order and unit waits only lift issue to
// times already ≤ Φ + ipen), and every state update then adds at most
// max(1, latency(+load miss), unit issue latency, taken-transfer gap,
// store-miss barrier) on top. So Φ grows by at most Deltas[i] per dynamic
// instruction, and final minor cycles (lastComplete ≤ Φ) are bounded by
// 1 + Σ counts[i]·Deltas[i].
func (a *Analysis) deltasAndGaps() {
	cfg := a.Cfg
	takenEnds := cfg.TakenBranchEndsGroup
	redirect := int64(cfg.BranchRedirect)
	var ipen, dpen int64
	if cfg.ICache != nil {
		ipen = int64(cfg.ICache.MissPenalty)
	}
	if cfg.DCache != nil {
		dpen = int64(cfg.DCache.MissPenalty)
	}
	unitOf, _ := cfg.ClassUnits()
	for i := range a.Prog.Instrs {
		in := &a.Prog.Instrs[i]
		info := in.Op.Info()
		cl := in.Op.Class()
		lat := int64(cfg.Latency[cl])
		il := int64(cfg.Units[unitOf[cl]].IssueLatency)
		isPrint := in.Op == isa.OpPrinti || in.Op == isa.OpPrintf
		d := max(int64(1), lat, il)
		if info.Load {
			d = max(d, lat+dpen)
		}
		if info.Store && !isPrint {
			d = max(d, dpen) // store miss raises the barrier by the penalty
		}
		if info.Branch && takenEnds {
			gap := lat + redirect
			a.Gaps[i] = gap
			d = max(d, gap)
		}
		a.Deltas[i] = ipen + d
	}
}

// analyzeBlock computes one block's bounds and, when possible, its exact
// schedules.
func (a *Analysis) analyzeBlock(start, end int, binds *[isa.NumClasses]bool, unitOf *[isa.NumClasses]int) Block {
	p, cfg := a.Prog, a.Cfg
	b := Block{Leader: start, End: end, Label: p.Symbols[start], ExactSpan: -1}

	// The straight-line prefix stops at the first transfer or halt — by
	// block construction that can only be the last instruction.
	prefixEnd := end
	last := &p.Instrs[end-1]
	if last.Op.Info().Branch || last.Op == isa.OpHalt {
		prefixEnd = end - 1
	}

	// Dependence height: a forward pass with a per-register availability
	// scoreboard, mirroring the engine's stall rules relative to the
	// block's first issue. h[j] ≥ h[j-1] (in-order), a RAW source defined
	// at i in-block forces h[j] ≥ h[i]+lat(i), and a WAW overwrite forces
	// h[j] ≥ h[i]+lat(i)-lat(j). Entry state can only delay further, so
	// the final h is a span lower bound for every execution.
	var avail [isa.NumRegs]int64 // in-block def availability; 0 = no def (no constraint)
	var unitCount [isa.NumClasses]int64
	h := int64(0)
	cf := true
	for j := start; j < end; j++ {
		in := &p.Instrs[j]
		cl := in.Op.Class()
		lat := int64(cfg.Latency[cl])
		s1, s2, dst := effRegs(in)
		h = max(h, avail[s1], avail[s2])
		if dst != isa.NoReg {
			h = max(h, avail[dst]-lat)
			avail[dst] = h + lat
		}
		unitCount[cl]++
		if binds[cl] {
			cf = false
		}
	}
	b.DepHeight = h

	nb := int64(end - start)
	width := int64(cfg.IssueWidth)
	b.WidthBound = (nb - 1) / width // == ceil(nb/width) - 1

	// Resource pressure per unit: aggregate the block's class counts onto
	// units, then apply the multiplicity pigeonhole. For units that cannot
	// bind the engine books no lane, but the bound value is then dominated
	// by WidthBound (multiplicity ≥ width, issue latency 1), so the max
	// stays sound.
	var unitIssues []int64
	for cl, c := range unitCount {
		if c == 0 {
			continue
		}
		if unitIssues == nil {
			unitIssues = make([]int64, len(cfg.Units))
		}
		unitIssues[unitOf[cl]] += c
	}
	for ui, c := range unitIssues {
		if c == 0 {
			continue
		}
		u := &cfg.Units[ui]
		m := int64(u.Multiplicity)
		if pressure := (c - 1) / m * int64(u.IssueLatency); pressure > b.UnitBound {
			b.UnitBound = pressure
		}
	}
	b.Span = max(b.DepHeight, b.WidthBound, b.UnitBound)
	b.ConflictFree = cf

	if cf {
		full := cleanSchedule(p, cfg, start, end)
		b.ExactSpan = full.Offsets[len(full.Offsets)-1]
	}
	if prefixEnd > start {
		pcf := true
		for j := start; j < prefixEnd; j++ {
			if binds[p.Instrs[j].Op.Class()] {
				pcf = false
				break
			}
		}
		if pcf {
			b.Sched = cleanSchedule(p, cfg, start, prefixEnd)
		}
	}
	return b
}

// effRegs returns the engine's effective operands for an instruction:
// sources as the scoreboard probes them (absent sources remapped to r0,
// which is never busy) and the scoreboarded destination (NoReg when absent
// or r0, matching the engine's fDst rule).
func effRegs(in *isa.Instr) (s1, s2, dst isa.Reg) {
	info := in.Op.Info()
	s1, s2, dst = isa.RZero, isa.RZero, isa.NoReg
	if info.NSrc >= 1 && in.Src1 != isa.NoReg {
		s1 = in.Src1
	}
	if info.NSrc >= 2 && in.Src2 != isa.NoReg {
		s2 = in.Src2
	}
	if info.HasDst && in.Dst != isa.NoReg && in.Dst != isa.RZero {
		dst = in.Dst
	}
	return s1, s2, dst
}

// cleanSchedule simulates the engine's issue discipline over [start, end)
// from a clean entry: the first instruction issues at relative time 0 (the
// entry slot) and every register starts with scoreboard time ≤ 0. All
// instructions must be conflict-free (no unit term), which the callers
// guarantee; there are then no other inputs, so the resulting offsets are
// exact for any real entry satisfying the CheckRegs precondition.
func cleanSchedule(p *isa.Program, cfg *machine.Config, start, end int) *Schedule {
	width := int64(cfg.IssueWidth)
	s := &Schedule{Start: start, End: end, Offsets: make([]int64, end-start)}

	var avail [isa.NumRegs]int64
	var touched [isa.NumRegs]bool
	var cycle, inCycle, maxComplete int64
	for j := start; j < end; j++ {
		in := &p.Instrs[j]
		lat := int64(cfg.Latency[in.Op.Class()])
		s1, s2, dst := effRegs(in)
		touched[s1], touched[s2] = true, true

		var issue int64
		if j == start {
			// Entry slot: the engine issues the first instruction exactly
			// at the barrier s once the precondition holds; its width and
			// branch stalls depend on dynamic state and are accounted
			// there.
			issue = 0
			inCycle = 1
			s.Groups = 1
		} else {
			var over int64
			if inCycle >= width {
				over = 1
			}
			slot := cycle + over
			s.WidthStalls += over
			issue = max(slot, avail[s1], avail[s2])
			s.DataStalls += issue - slot
			if dst != isa.NoReg {
				m := max(issue, avail[dst]-lat)
				s.WriteStalls += m - issue
				issue = m
			}
			if issue > cycle {
				cycle = issue
				inCycle = 1
				s.Groups++
			} else {
				inCycle++
			}
		}
		complete := issue + lat
		if dst != isa.NoReg {
			avail[dst] = complete
			touched[dst] = true
		}
		maxComplete = max(maxComplete, complete)
		s.Offsets[j-start] = issue
	}
	s.CycleAdv = s.Offsets[len(s.Offsets)-1]
	s.InCycle = inCycle
	s.MaxComplete = maxComplete
	for r := 1; r < isa.NumRegs; r++ { // r0 is never scoreboarded
		if touched[r] {
			s.CheckRegs = append(s.CheckRegs, isa.Reg(r))
		}
		if avail[r] > 0 {
			s.Writes = append(s.Writes, RegWrite{Reg: isa.Reg(r), Off: avail[r]})
		}
	}
	return s
}

// BlockOf returns the index into Blocks of the block containing instruction
// i, or -1 when out of range.
func (a *Analysis) BlockOf(i int) int {
	if i < 0 || i >= len(a.blockOf) {
		return -1
	}
	return int(a.blockOf[i])
}

// LowerBound combines the per-block spans with dynamic execution counts
// into a whole-program minor-cycle lower bound. counts[i] is the number of
// times instruction i issued and exits[i] the number of taken transfers
// (or halts) that left from i — the engine reports both via
// Options.CountInstrs. Three independent arguments are maxed:
//
//   - span tiling: every arrival at a block leader executes the full block
//     (within a block only the last instruction can transfer out), whose
//     first-to-last issue distance is at least Span; every taken transfer
//     adds its redirect gap; all these intervals are disjoint segments of
//     the monotone issue line. Mid-block entries (computed jumps) execute
//     a suffix only and are deliberately not counted — the leader count is
//     a sound undercount.
//   - the global width pigeonhole ⌈N/width⌉;
//   - the global per-unit pressure pigeonhole.
//
// The last instruction's completion adds the trailing +1 (latency ≥ 1).
// Zero-length or never-run programs return 0.
func (a *Analysis) LowerBound(counts, exits []int64) int64 {
	n := len(a.Prog.Instrs)
	var total int64
	for i := 0; i < n && i < len(counts); i++ {
		total += counts[i]
	}
	if total == 0 {
		return 0
	}

	var spanSum int64
	for i := range a.Blocks {
		b := &a.Blocks[i]
		spanSum += counts[b.Leader] * b.Span
	}
	for i := 0; i < n && i < len(exits); i++ {
		spanSum += exits[i] * a.Gaps[i]
	}
	lb := spanSum + 1

	width := int64(a.Cfg.IssueWidth)
	lb = max(lb, (total+width-1)/width)

	var unitIssues []int64
	unitOf, _ := a.Cfg.ClassUnits()
	for i := 0; i < n && i < len(counts); i++ {
		if counts[i] == 0 {
			continue
		}
		if unitIssues == nil {
			unitIssues = make([]int64, len(a.Cfg.Units))
		}
		unitIssues[unitOf[a.Prog.Instrs[i].Op.Class()]] += counts[i]
	}
	for ui, c := range unitIssues {
		if c == 0 {
			continue
		}
		u := &a.Cfg.Units[ui]
		lb = max(lb, (c-1)/int64(u.Multiplicity)*int64(u.IssueLatency)+1)
	}
	return lb
}

// UpperBound bounds the program's minor cycles from above given dynamic
// execution counts: 1 + Σ counts[i]·Deltas[i] (see deltasAndGaps for the
// potential argument). A never-run program returns 0.
func (a *Analysis) UpperBound(counts []int64) int64 {
	n := len(a.Prog.Instrs)
	var total, sum int64
	for i := 0; i < n && i < len(counts); i++ {
		total += counts[i]
		sum += counts[i] * a.Deltas[i]
	}
	if total == 0 {
		return 0
	}
	return sum + 1
}
