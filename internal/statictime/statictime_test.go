// Tests for the static timing analyzer: hand-computed bounds on small
// blocks, structural checks of block partitioning and schedules, and the
// central soundness property — every simulated cycle count falls inside
// [LowerBound, UpperBound] — cross-checked against the dynamic engine.
package statictime_test

import (
	"testing"

	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/sim"
	"ilp/internal/statictime"
)

// chainProg is a pure dependence chain: li feeding three dependent addis.
func chainProg() *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 1)
	b.Imm(isa.OpAddi, isa.R(11), isa.R(10), 1)
	b.Imm(isa.OpAddi, isa.R(12), isa.R(11), 1)
	b.Imm(isa.OpAddi, isa.R(13), isa.R(12), 1)
	b.Halt()
	return b.MustFinish()
}

// wideProg is eight independent lis: no dependences, pure width pressure.
func wideProg() *isa.Program {
	b := isa.NewBuilder()
	for r := 10; r < 18; r++ {
		b.Li(isa.R(r), int64(r))
	}
	b.Halt()
	return b.MustFinish()
}

// loopProg is the benchmark-style counted loop: a conflict-free
// straight-line body closed by a backward conditional branch.
func loopProg(n int64) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), n)
	b.Li(isa.R(11), 0)
	b.Label("loop")
	b.Op(isa.OpAdd, isa.R(11), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(12), isa.R(11), 3)
	b.Op(isa.OpXor, isa.R(13), isa.R(12), isa.R(11))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(13))
	b.Halt()
	return b.MustFinish()
}

// mixedProg exercises memory, floating point, a forward branch and a join.
func mixedProg() *isa.Program {
	b := isa.NewBuilder()
	addr := b.Data(7, 9)
	b.Li(isa.R(10), addr)
	b.Load(isa.OpLw, isa.R(11), isa.R(10), 0)
	b.Load(isa.OpLw, isa.R(12), isa.R(10), 1)
	b.Op(isa.OpMul, isa.R(13), isa.R(11), isa.R(12))
	b.Branch(isa.OpBgt, isa.R(13), isa.RZero, "pos")
	b.Op(isa.OpSub, isa.R(13), isa.RZero, isa.R(13))
	b.Label("pos")
	b.Op1(isa.OpCvtif, isa.F(0), isa.R(13))
	b.Op(isa.OpFmul, isa.F(1), isa.F(0), isa.F(0))
	b.Op1(isa.OpFsqrt, isa.F(2), isa.F(1))
	b.PrintF(isa.F(2))
	b.Store(isa.OpSw, isa.R(13), isa.R(10), 0)
	b.Halt()
	return b.MustFinish()
}

func analyze(t *testing.T, p *isa.Program, cfg *machine.Config) *statictime.Analysis {
	t.Helper()
	a, err := statictime.Analyze(p, cfg)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", cfg.Name, err)
	}
	return a
}

func TestDepHeightChain(t *testing.T) {
	// On a wide ideal machine the width bound vanishes and the chain's
	// RAW critical path is the whole story: 3 unit-latency edges.
	a := analyze(t, chainProg(), machine.IdealSuperscalar(8))
	if len(a.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(a.Blocks))
	}
	b := a.Blocks[0]
	if b.DepHeight != 3 || b.WidthBound != 0 || b.Span != 3 {
		t.Errorf("dep/width/span = %d/%d/%d, want 3/0/3", b.DepHeight, b.WidthBound, b.Span)
	}
	if !b.ConflictFree || b.ExactSpan != 3 {
		t.Errorf("conflictFree/exactSpan = %v/%d, want true/3", b.ConflictFree, b.ExactSpan)
	}
	if b.Sched == nil {
		t.Fatal("no prefix schedule on an ideal machine")
	}
	want := []int64{0, 1, 2, 3}
	for j, off := range b.Sched.Offsets {
		if off != want[j] {
			t.Errorf("offset[%d] = %d, want %d", j, off, want[j])
		}
	}
}

func TestWidthBound(t *testing.T) {
	// Eight independent lis plus halt on width 4: ⌈9/4⌉−1 = 2 cycles of
	// span from the issue-width pigeonhole alone.
	a := analyze(t, wideProg(), machine.IdealSuperscalar(4))
	b := a.Blocks[0]
	if b.DepHeight != 0 || b.WidthBound != 2 || b.Span != 2 {
		t.Errorf("dep/width/span = %d/%d/%d, want 0/2/2", b.DepHeight, b.WidthBound, b.Span)
	}
}

func TestUnitBound(t *testing.T) {
	// The conflicted machine has one copy per class unit: eight lis
	// serialize on it regardless of the width-4 front end.
	a := analyze(t, wideProg(), machine.SuperscalarWithConflicts(4))
	b := a.Blocks[0]
	if b.UnitBound != 7 {
		t.Errorf("unitBound = %d, want 7", b.UnitBound)
	}
	if b.ConflictFree {
		t.Error("block marked conflict-free on a multiplicity-1 machine")
	}
	if b.Sched != nil {
		t.Error("got a replay schedule on a conflicted machine")
	}
}

func TestBlockPartition(t *testing.T) {
	p := loopProg(5)
	a := analyze(t, p, machine.Base())
	// Leaders: entry (0), the loop target, after the branch, after the
	// halt-less print... concretely: [0,2) preheader, [2,7) body+branch,
	// [7,9) print+halt.
	wantLeaders := []int{0, 2, 7}
	if len(a.Blocks) != len(wantLeaders) {
		t.Fatalf("blocks = %d, want %d", len(a.Blocks), len(wantLeaders))
	}
	for i, w := range wantLeaders {
		if a.Blocks[i].Leader != w {
			t.Errorf("block %d leader = %d, want %d", i, a.Blocks[i].Leader, w)
		}
	}
	if a.Blocks[1].Label != "loop" {
		t.Errorf("block 1 label = %q, want %q", a.Blocks[1].Label, "loop")
	}
	// Blocks must partition the program and blockOf must agree.
	next := 0
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		if b.Leader != next {
			t.Errorf("block %d starts at %d, want %d (partition gap)", bi, b.Leader, next)
		}
		next = b.End
		for i := b.Leader; i < b.End; i++ {
			if a.BlockOf(i) != bi {
				t.Errorf("BlockOf(%d) = %d, want %d", i, a.BlockOf(i), bi)
			}
		}
	}
	if next != len(p.Instrs) {
		t.Errorf("blocks end at %d, want %d", next, len(p.Instrs))
	}
}

func TestScheduleConsistency(t *testing.T) {
	progs := []*isa.Program{chainProg(), wideProg(), loopProg(10), mixedProg()}
	cfgs := []*machine.Config{
		machine.Base(), machine.IdealSuperscalar(4), machine.Superpipelined(4), machine.MultiTitan(),
	}
	for _, p := range progs {
		for _, cfg := range cfgs {
			a := analyze(t, p, cfg)
			for bi := range a.Blocks {
				b := &a.Blocks[bi]
				if b.ConflictFree && b.ExactSpan < b.Span {
					t.Errorf("%s block %d: exact span %d below lower bound %d", cfg.Name, bi, b.ExactSpan, b.Span)
				}
				s := b.Sched
				if s == nil {
					continue
				}
				if s.Start != b.Leader || s.End > b.End || s.End <= s.Start {
					t.Errorf("%s block %d: schedule range [%d,%d) outside block [%d,%d)", cfg.Name, bi, s.Start, s.End, b.Leader, b.End)
				}
				for j := 1; j < len(s.Offsets); j++ {
					if s.Offsets[j] < s.Offsets[j-1] {
						t.Errorf("%s block %d: offsets regress at %d", cfg.Name, bi, j)
					}
				}
				if s.CycleAdv != s.Offsets[len(s.Offsets)-1] {
					t.Errorf("%s block %d: CycleAdv %d != last offset %d", cfg.Name, bi, s.CycleAdv, s.Offsets[len(s.Offsets)-1])
				}
				if s.MaxComplete <= s.CycleAdv {
					t.Errorf("%s block %d: MaxComplete %d not past last issue %d", cfg.Name, bi, s.MaxComplete, s.CycleAdv)
				}
				for j := 1; j < len(s.CheckRegs); j++ {
					if s.CheckRegs[j] <= s.CheckRegs[j-1] {
						t.Errorf("%s block %d: CheckRegs not ascending", cfg.Name, bi)
					}
				}
				for j := 1; j < len(s.Writes); j++ {
					if s.Writes[j].Reg <= s.Writes[j-1].Reg {
						t.Errorf("%s block %d: Writes not ascending", cfg.Name, bi)
					}
				}
			}
		}
	}
}

// TestBoundsVsSim is the soundness property the verify pass turns into an
// oracle: for every program × machine pair, the simulated minor cycles fall
// within the static [lower, upper] bounds computed from the dynamic counts.
func TestBoundsVsSim(t *testing.T) {
	progs := map[string]*isa.Program{
		"chain": chainProg(),
		"wide":  wideProg(),
		"loop":  loopProg(500),
		"mixed": mixedProg(),
	}
	cfgs := []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(2),
		machine.IdealSuperscalar(8),
		machine.Superpipelined(4),
		machine.SuperpipelinedSuperscalar(2, 2),
		machine.SuperscalarWithConflicts(4),
		machine.Underpipelined(),
		machine.MultiTitan(),
		machine.CRAY1(),
	}
	for name, p := range progs {
		for _, cfg := range cfgs {
			r, err := sim.Run(p, sim.Options{Machine: cfg, CountInstrs: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cfg.Name, err)
			}
			if r.InstrCounts == nil || r.TakenExits == nil {
				t.Fatalf("%s/%s: CountInstrs reported no counts", name, cfg.Name)
			}
			var total int64
			for _, c := range r.InstrCounts {
				total += c
			}
			if total != r.Instructions {
				t.Errorf("%s/%s: InstrCounts sum %d != %d instructions", name, cfg.Name, total, r.Instructions)
			}
			a := analyze(t, p, cfg)
			lo := a.LowerBound(r.InstrCounts, r.TakenExits)
			hi := a.UpperBound(r.InstrCounts)
			if lo > r.MinorCycles || r.MinorCycles > hi {
				t.Errorf("%s/%s: %d minor cycles outside static bounds [%d, %d]",
					name, cfg.Name, r.MinorCycles, lo, hi)
			}
		}
	}
}

func TestBoundsZeroCounts(t *testing.T) {
	p := chainProg()
	a := analyze(t, p, machine.Base())
	zero := make([]int64, len(p.Instrs))
	if lb := a.LowerBound(zero, zero); lb != 0 {
		t.Errorf("LowerBound(0) = %d, want 0", lb)
	}
	if ub := a.UpperBound(zero); ub != 0 {
		t.Errorf("UpperBound(0) = %d, want 0", ub)
	}
}

func TestFormat(t *testing.T) {
	a := analyze(t, loopProg(5), machine.Base())
	out := a.Format()
	if out == "" {
		t.Fatal("empty format output")
	}
	for _, want := range []string{"block", "loop", "conflict-free"} {
		if !contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
