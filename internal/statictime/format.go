package statictime

import (
	"fmt"
	"strings"
)

// Format renders the per-block bound table as fixed-width text: one row per
// basic block with its extent, the three span lower bounds and their max,
// conflict-freedom, the exact clean-entry span (when proven), and the length
// of the attached replay schedule (when any). The trailing summary line
// totals blocks, instructions, and proven-exact coverage.
func (a *Analysis) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-18s %5s %5s %5s %5s %5s %5s %5s %5s\n",
		"block", "label", "len", "dep", "width", "unit", "span", "cf", "exact", "sched")
	cfBlocks, schedInstrs := 0, 0
	for i := range a.Blocks {
		blk := &a.Blocks[i]
		cf, exact, sched := "no", "-", "-"
		if blk.ConflictFree {
			cf = "yes"
			cfBlocks++
			exact = fmt.Sprintf("%d", blk.ExactSpan)
		}
		if blk.Sched != nil {
			sched = fmt.Sprintf("%d", blk.Sched.End-blk.Sched.Start)
			schedInstrs += blk.Sched.End - blk.Sched.Start
		}
		label := blk.Label
		if len(label) > 18 {
			label = label[:18]
		}
		fmt.Fprintf(&b, "%-6d %-18s %5d %5d %5d %5d %5d %5s %5s %5s\n",
			blk.Leader, label, blk.End-blk.Leader,
			blk.DepHeight, blk.WidthBound, blk.UnitBound, blk.Span,
			cf, exact, sched)
	}
	n := len(a.Prog.Instrs)
	fmt.Fprintf(&b, "%d blocks, %d instructions; %d conflict-free blocks, %d instructions under exact schedules (%s, width %d)\n",
		len(a.Blocks), n, cfBlocks, schedInstrs, a.Cfg.Name, a.Cfg.IssueWidth)
	return b.String()
}
