package statictime

// Superblock traces: the cross-block extension of the exact clean-entry
// schedules. A trace starts at a block leader and follows the straight-line
// continuation through unconditional jumps (the chain is stitched across the
// seam) and past conditional branches (each becomes a guarded side exit,
// untaken control falls through into the next block of the trace). Because
// every instruction on the trace issues to a conflict-free unit, the whole
// multi-block schedule is exact under the same clean-entry precondition as a
// single block's: the engine enters at a fresh taken-branch barrier s with
// every register the trace touches quiescent (scoreboard time ≤ s).
//
// The timing argument extends the single-block proof (DESIGN.md §6.4) with
// the in-trace barrier: an internal unconditional jump raises the issue
// barrier to its issue + latency + redirect, exactly as the engine's taken-
// transfer epilogue would, and every instruction after the seam is scheduled
// against that barrier. All quantities stay relative offsets from s, so one
// static walk yields, for every possible exit (each taken conditional, plus
// the final fallthrough), the exact cumulative instruction count, cycle
// advance, stall breakdown, scoreboard writes, and the barrier the engine
// holds after leaving — the engine applies whichever exit the run's data
// selects (see sim's trace replay).
//
// A trace whose taken side exit targets its own start is a proven loop
// back-edge; when additionally every register written before that exit is
// ready by the exit's barrier (Off ≤ BarrierOff), the re-entry precondition
// re-establishes itself and the exit is marked Stable: the engine may skip
// the per-register entry check on the next iteration entirely.

import (
	"fmt"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// maxTraceLen caps the instructions a single trace may cover. Traces are
// built per leader at predecode time, so the cap bounds both build cost and
// the worst-case distance between two instruction-limit/cancellation polls
// in the replaying engine.
const maxTraceLen = 64

// TraceStepKind discriminates the three step forms of a trace walk.
type TraceStepKind uint8

const (
	// StepCond replays [Lo, Hi), then evaluates the conditional branch at
	// Hi: taken leaves through Exits[Exit], untaken falls through to the
	// next step (whose segment starts at Hi+1).
	StepCond TraceStepKind = iota
	// StepJump replays [Lo, Hi), then the unconditional jump at Hi
	// transfers to Target; the next step's segment starts there.
	StepJump
	// StepEnd replays [Lo, Hi), then leaves through Exits[Exit] (the final
	// fallthrough: the engine resumes per-instruction execution at the
	// exit's Target). Always the last step.
	StepEnd
)

// TraceStep is one segment of a trace: the straight-line instructions
// [Lo, Hi) followed by the control event at Hi (or, for StepEnd, none —
// Hi is where the walk stopped).
type TraceStep struct {
	Lo, Hi int
	Kind   TraceStepKind
	// Exit indexes Trace.Exits for StepCond (the taken side exit) and
	// StepEnd (the final fallthrough exit).
	Exit int
	// Target is the jump destination for StepJump.
	Target int
}

// TraceExit is one way control can leave a trace, carrying the exact
// cumulative timing advance from the trace's entry slot s for the
// instructions executed up to (and including) the exit point.
type TraceExit struct {
	// At is the pc of the taken conditional branch for a side exit, -1 for
	// the final fallthrough exit.
	At int
	// Target is the pc the engine resumes at after this exit.
	Target int
	// Taken reports a taken control transfer: the engine bumps its block
	// counters (exit[At], enter[Target]) and the exit's BarrierOff includes
	// the branch's group-ending barrier.
	Taken bool
	// N is the number of instructions executed when leaving here.
	N int64
	// CycleAdv, InCycle and Groups describe the issue state at the exit:
	// the engine's cycle becomes s+CycleAdv, its in-cycle count InCycle,
	// and Groups issue groups were opened (including the entry group at s).
	CycleAdv, InCycle, Groups int64
	// WidthStalls, BranchStalls, DataStalls and WriteStalls are the stall
	// minor cycles accrued internally (instructions after the first; the
	// first instruction's entry stalls depend on dynamic state and are
	// accounted by the engine).
	WidthStalls, BranchStalls, DataStalls, WriteStalls int64
	// MaxComplete is the largest completion offset among the executed
	// instructions: lastComplete advances to max(lastComplete, s+MaxComplete).
	MaxComplete int64
	// BarrierOff is the issue barrier after the exit: the engine holds
	// barrier = s+BarrierOff (still a taken-branch barrier). For a taken
	// exit this includes the exiting branch's own barrier, so it always
	// exceeds CycleAdv; for the fallthrough exit it is the internal barrier
	// (0 when the trace crossed no jump seam).
	BarrierOff int64
	// Writes are the scoreboard times of every register written by the N
	// executed instructions, as offsets from s, ascending by register.
	Writes []RegWrite
	// Jumps lists the in-trace unconditional jumps executed before this
	// exit, in trace order: the engine bumps their block exit/enter
	// counters when it applies the exit (their timing effect — the raised
	// in-trace barrier — is already folded into the offsets above).
	Jumps []TraceJump
	// Stable marks a taken back-edge to the trace's own start whose writes
	// are all ready by the new barrier (Off ≤ BarrierOff): the clean-entry
	// precondition re-establishes itself, so re-entry needs no register
	// check.
	Stable bool
}

// TraceJump is one in-trace unconditional jump: the pc it leaves from and
// the pc it lands on (block counter bookkeeping only).
type TraceJump struct {
	At, Target int
}

// Trace is a superblock: an exact multi-block clean-entry schedule rooted at
// Start, valid on machines whose taken branches end their issue group. The
// precondition mirrors Schedule's: the engine must arrive behind a fresh
// taken-branch barrier s with every register in CheckRegs at scoreboard
// time ≤ s.
type Trace struct {
	Start int
	Steps []TraceStep
	Exits []TraceExit
	// CheckRegs lists every register any step reads or writes (r0 excluded,
	// ascending). Registers touched only after an early exit are included
	// too — checking them is conservative, never wrong.
	CheckRegs []isa.Reg
	// Blocks is the number of block segments the trace covers (one per
	// step): >1 means a genuine superblock stitched across seams.
	Blocks int
}

// Traces builds the superblock trace of every block leader: a slice indexed
// by pc, nil at non-leaders. Machines whose taken branches do not end their
// issue group return (nil, nil): the trace entry condition (a fresh taken-
// branch barrier) exists only under that discipline.
func Traces(p *isa.Program, cfg *machine.Config) ([]*Trace, error) {
	if cfg == nil {
		return nil, fmt.Errorf("statictime: no machine description")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	if !cfg.TakenBranchEndsGroup {
		return nil, nil
	}

	unitOf, err := cfg.ClassUnits()
	if err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	var binds [isa.NumClasses]bool
	for cl, ui := range unitOf {
		u := &cfg.Units[ui]
		binds[cl] = u.Multiplicity < cfg.IssueWidth || u.IssueLatency != 1
	}

	// Leaders, exactly as Analyze derives them: the entry, every direct
	// transfer target, every instruction after a transfer or halt, and the
	// program's own block list. The engine attempts a trace replay only at
	// taken-transfer targets, which this set covers.
	n := len(p.Instrs)
	leader := make([]bool, n)
	leader[0], leader[p.Entry] = true, true
	for _, b := range p.Blocks {
		if b >= 0 && b < n {
			leader[b] = true
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		info := in.Op.Info()
		if info.Branch || in.Op == isa.OpHalt {
			if i+1 < n {
				leader[i+1] = true
			}
			if info.Branch && in.Op != isa.OpJr {
				leader[in.Target] = true
			}
		}
	}

	out := make([]*Trace, n)
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			out[pc] = buildTrace(p, cfg, pc, &binds)
		}
	}
	return out, nil
}

// isCondBranch reports whether op is a conditional branch.
func isCondBranch(op isa.Opcode) bool {
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle, isa.OpBgt:
		return true
	}
	return false
}

// buildTrace walks the straight-line continuation from start, simulating the
// engine's issue discipline with all quantities relative to the entry slot
// (the first instruction issues at offset 0 — exactly the barrier, by the
// entry precondition). The walk stops at the first instruction that binds a
// functional unit, transfers control unpredictably (jal, jr), halts, was
// already traced (termination), or would exceed maxTraceLen.
func buildTrace(p *isa.Program, cfg *machine.Config, start int, binds *[isa.NumClasses]bool) *Trace {
	n := len(p.Instrs)
	width := int64(cfg.IssueWidth)
	redirect := int64(cfg.BranchRedirect)

	tr := &Trace{Start: start}
	var avail [isa.NumRegs]int64
	var wrote, touched [isa.NumRegs]bool
	var cycle, inCycle, groups int64
	var widthS, branchS, dataS, writeS int64
	var maxComplete, barrierOff int64
	var count int64
	var jumps []TraceJump
	visited := make(map[int]bool)
	pos, segLo := start, start
	first := true

	// snapshot records one exit with the cumulative state at this point.
	snapshot := func(at, target int, taken bool, bOff int64) int {
		ex := TraceExit{
			At: at, Target: target, Taken: taken, N: count,
			CycleAdv: cycle, InCycle: inCycle, Groups: groups,
			WidthStalls: widthS, BranchStalls: branchS,
			DataStalls: dataS, WriteStalls: writeS,
			MaxComplete: maxComplete, BarrierOff: bOff,
		}
		if len(jumps) > 0 {
			ex.Jumps = append([]TraceJump(nil), jumps...)
		}
		stable := taken && target == start
		for r := 1; r < isa.NumRegs; r++ {
			if wrote[r] {
				ex.Writes = append(ex.Writes, RegWrite{Reg: isa.Reg(r), Off: avail[r]})
				if avail[r] > bOff {
					stable = false
				}
			}
		}
		ex.Stable = stable
		tr.Exits = append(tr.Exits, ex)
		return len(tr.Exits) - 1
	}

	for {
		if pos < 0 || pos >= n || visited[pos] || count >= maxTraceLen {
			break
		}
		in := &p.Instrs[pos]
		op := in.Op
		if binds[op.Class()] || op == isa.OpJal || op == isa.OpJr || op == isa.OpHalt {
			break
		}
		visited[pos] = true

		lat := int64(cfg.Latency[op.Class()])
		s1, s2, dst := effRegs(in)
		touched[s1], touched[s2] = true, true

		var issue int64
		if first {
			// Entry slot: issue is exactly the barrier (offset 0) by the
			// precondition; width/branch entry stalls are dynamic and
			// charged by the engine.
			inCycle, groups = 1, 1
			first = false
		} else {
			var over int64
			if inCycle >= width {
				over = 1
			}
			slot := cycle + over
			widthS += over
			if barrierOff > slot {
				// An in-trace jump barrier is always a taken-branch
				// barrier, so the engine books the wait as a branch stall.
				branchS += barrierOff - slot
				slot = barrierOff
			}
			issue = max(slot, avail[s1], avail[s2])
			dataS += issue - slot
			if dst != isa.NoReg {
				m := max(issue, avail[dst]-lat)
				writeS += m - issue
				issue = m
			}
			if issue > cycle {
				cycle = issue
				inCycle = 1
				groups++
			} else {
				inCycle++
			}
		}
		complete := issue + lat
		if dst != isa.NoReg {
			avail[dst] = complete
			wrote[dst], touched[dst] = true, true
		}
		maxComplete = max(maxComplete, complete)
		count++

		switch {
		case isCondBranch(op):
			exit := snapshot(pos, in.Target, true, max(barrierOff, issue+lat+redirect))
			tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepCond, Exit: exit})
			segLo, pos = pos+1, pos+1
		case op == isa.OpJ:
			barrierOff = max(barrierOff, issue+lat+redirect)
			jumps = append(jumps, TraceJump{At: pos, Target: in.Target})
			tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepJump, Target: in.Target})
			segLo, pos = in.Target, in.Target
		default:
			pos++
		}
	}

	exit := snapshot(-1, pos, false, barrierOff)
	tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepEnd, Exit: exit})
	for r := 1; r < isa.NumRegs; r++ { // r0 is never scoreboarded
		if touched[r] {
			tr.CheckRegs = append(tr.CheckRegs, isa.Reg(r))
		}
	}
	tr.Blocks = len(tr.Steps)
	return tr
}
