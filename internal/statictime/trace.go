package statictime

// Superblock traces: the cross-block extension of the exact clean-entry
// schedules. A trace starts at a block leader and follows the straight-line
// continuation through unconditional jumps (the chain is stitched across the
// seam) and past conditional branches (each becomes a guarded side exit,
// untaken control falls through into the next block of the trace). Because
// every instruction on the trace issues to a conflict-free unit, the whole
// multi-block schedule is exact under the same clean-entry precondition as a
// single block's: the engine enters at a fresh taken-branch barrier s with
// every register the trace touches quiescent (scoreboard time ≤ s).
//
// The timing argument extends the single-block proof (DESIGN.md §6.4) with
// the in-trace barrier: an internal unconditional jump raises the issue
// barrier to its issue + latency + redirect, exactly as the engine's taken-
// transfer epilogue would, and every instruction after the seam is scheduled
// against that barrier. All quantities stay relative offsets from s, so one
// static walk yields, for every possible exit (each taken conditional, plus
// the final fallthrough), the exact cumulative instruction count, cycle
// advance, stall breakdown, scoreboard writes, and the barrier the engine
// holds after leaving — the engine applies whichever exit the run's data
// selects (see sim's trace replay).
//
// An exit that targets the trace's own start is a proven loop back-edge;
// when additionally the exit's barrier is still ahead of its cycle
// (BarrierOff > CycleAdv, automatic for taken exits) and every register
// written before the exit is ready by that barrier (Off ≤ BarrierOff), the
// re-entry precondition re-establishes itself and the exit is marked
// Stable: the engine may skip the per-register entry check on the next
// iteration entirely. This covers both the taken-side-exit back-edge of a
// do-while loop and the final fallthrough of a while-shaped trace whose
// stitched seam jumped back to the start.
//
// With an execution profile (ProfiledTraces), the walk also continues past
// conditional branches the profile marks likely-taken: the untaken
// direction becomes a guarded side exit and the taken edge is stitched
// like an unconditional jump's seam. The profile only selects which traces
// exist — a wrong or stale profile costs speed (mispath exits), never
// timing accuracy, because every exit's cumulative state is proven the
// same way.

import (
	"fmt"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// maxTraceLen caps the instructions a single trace may cover. Traces are
// built per leader at predecode time, so the cap bounds both build cost and
// the worst-case distance between two instruction-limit/cancellation polls
// in the replaying engine.
const maxTraceLen = 64

// TraceStepKind discriminates the three step forms of a trace walk.
type TraceStepKind uint8

const (
	// StepCond replays [Lo, Hi), then evaluates the conditional branch at
	// Hi: taken leaves through Exits[Exit], untaken falls through to the
	// next step (whose segment starts at Hi+1).
	StepCond TraceStepKind = iota
	// StepJump replays [Lo, Hi), then the unconditional jump at Hi
	// transfers to Target; the next step's segment starts there.
	StepJump
	// StepEnd replays [Lo, Hi), then leaves through Exits[Exit] (the final
	// fallthrough: the engine resumes per-instruction execution at the
	// exit's Target). Always the last step.
	StepEnd
	// StepCondTaken replays [Lo, Hi), then evaluates the conditional branch
	// at Hi, which the profile marked likely-taken: taken continues the
	// trace at Target (the branch's own target, stitched like a jump seam),
	// untaken leaves through Exits[Exit] — the specialized mirror image of
	// StepCond.
	StepCondTaken
)

// TraceStep is one segment of a trace: the straight-line instructions
// [Lo, Hi) followed by the control event at Hi (or, for StepEnd, none —
// Hi is where the walk stopped).
type TraceStep struct {
	Lo, Hi int
	Kind   TraceStepKind
	// Exit indexes Trace.Exits for StepCond (the taken side exit),
	// StepCondTaken (the untaken side exit) and StepEnd (the final
	// fallthrough exit).
	Exit int
	// Target is the jump destination for StepJump and the taken branch
	// target the trace continues at for StepCondTaken.
	Target int
}

// TraceExit is one way control can leave a trace, carrying the exact
// cumulative timing advance from the trace's entry slot s for the
// instructions executed up to (and including) the exit point.
type TraceExit struct {
	// At is the pc of the taken conditional branch for a side exit, -1 for
	// the final fallthrough exit.
	At int
	// Target is the pc the engine resumes at after this exit.
	Target int
	// Taken reports a taken control transfer: the engine bumps its block
	// counters (exit[At], enter[Target]) and the exit's BarrierOff includes
	// the branch's group-ending barrier.
	Taken bool
	// N is the number of instructions executed when leaving here.
	N int64
	// CycleAdv, InCycle and Groups describe the issue state at the exit:
	// the engine's cycle becomes s+CycleAdv, its in-cycle count InCycle,
	// and Groups issue groups were opened (including the entry group at s).
	CycleAdv, InCycle, Groups int64
	// WidthStalls, BranchStalls, DataStalls and WriteStalls are the stall
	// minor cycles accrued internally (instructions after the first; the
	// first instruction's entry stalls depend on dynamic state and are
	// accounted by the engine).
	WidthStalls, BranchStalls, DataStalls, WriteStalls int64
	// MaxComplete is the largest completion offset among the executed
	// instructions: lastComplete advances to max(lastComplete, s+MaxComplete).
	MaxComplete int64
	// BarrierOff is the issue barrier after the exit: the engine holds
	// barrier = s+BarrierOff (still a taken-branch barrier). For a taken
	// exit this includes the exiting branch's own barrier, so it always
	// exceeds CycleAdv; for the fallthrough exit it is the internal barrier
	// (0 when the trace crossed no jump seam).
	BarrierOff int64
	// Writes are the scoreboard times of every register written by the N
	// executed instructions, as offsets from s, ascending by register.
	Writes []RegWrite
	// Jumps lists the in-trace unconditional jumps executed before this
	// exit, in trace order: the engine bumps their block exit/enter
	// counters when it applies the exit (their timing effect — the raised
	// in-trace barrier — is already folded into the offsets above).
	Jumps []TraceJump
	// Stable marks a back-edge to the trace's own start that re-establishes
	// the clean-entry precondition by itself: the exit's barrier is still
	// ahead of its cycle (BarrierOff > CycleAdv) and every write is ready
	// by it (Off ≤ BarrierOff), so re-entry needs no register check.
	Stable bool
}

// TraceJump is one in-trace unconditional jump: the pc it leaves from and
// the pc it lands on (block counter bookkeeping only).
type TraceJump struct {
	At, Target int
}

// Trace is a superblock: an exact multi-block clean-entry schedule rooted at
// Start, valid on machines whose taken branches end their issue group. The
// precondition mirrors Schedule's: the engine must arrive behind a fresh
// taken-branch barrier s with every register in CheckRegs at scoreboard
// time ≤ s.
type Trace struct {
	Start int
	Steps []TraceStep
	Exits []TraceExit
	// CheckRegs lists every register any step reads or writes (r0 excluded,
	// ascending). Registers touched only after an early exit are included
	// too — checking them is conservative, never wrong.
	CheckRegs []isa.Reg
	// Blocks is the number of block segments the trace covers (one per
	// step): >1 means a genuine superblock stitched across seams.
	Blocks int
}

// Profile is an execution profile of a program: per-pc dynamic execution
// and taken-transfer counts, typically folded from a short instruction-
// budgeted pre-run's block counters (sim.ProfileRun). The counts are
// architectural, so one profile is valid for every machine description —
// the execution path does not depend on timing.
type Profile struct {
	// Count[pc] is how many times the instruction at pc executed.
	Count []int64
	// Taken[pc] is how many times the control transfer at pc was taken.
	Taken []int64
}

// profileMinCount is the execution count below which a branch's profile is
// treated as noise: specializing a trace needs evidence.
const profileMinCount = 16

// LikelyTaken reports whether the conditional branch at pc was observed
// taken strongly enough — at least 3/4 of at least profileMinCount
// executions — to specialize a trace along its taken edge. Nil-safe: a nil
// profile marks nothing likely.
func (pr *Profile) LikelyTaken(pc int) bool {
	if pr == nil || pc >= len(pr.Count) || pc >= len(pr.Taken) {
		return false
	}
	c := pr.Count[pc]
	return c >= profileMinCount && pr.Taken[pc]*4 >= c*3
}

// Traces builds the superblock trace of every block leader: a slice indexed
// by pc, nil at non-leaders. Machines whose taken branches do not end their
// issue group return (nil, nil): the trace entry condition (a fresh taken-
// branch barrier) exists only under that discipline.
func Traces(p *isa.Program, cfg *machine.Config) ([]*Trace, error) {
	return ProfiledTraces(p, cfg, nil)
}

// ProfiledTraces is Traces guided by an optional execution profile:
// conditional branches the profile marks likely-taken continue the trace
// along their taken edge (StepCondTaken) instead of falling through. A nil
// profile builds exactly the unspecialized traces.
func ProfiledTraces(p *isa.Program, cfg *machine.Config, prof *Profile) ([]*Trace, error) {
	if cfg == nil {
		return nil, fmt.Errorf("statictime: no machine description")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	if !cfg.TakenBranchEndsGroup {
		return nil, nil
	}

	unitOf, err := cfg.ClassUnits()
	if err != nil {
		return nil, fmt.Errorf("statictime: %w", err)
	}
	var binds [isa.NumClasses]bool
	for cl, ui := range unitOf {
		u := &cfg.Units[ui]
		binds[cl] = u.Multiplicity < cfg.IssueWidth || u.IssueLatency != 1
	}

	// Leaders, exactly as Analyze derives them: the entry, every direct
	// transfer target, every instruction after a transfer or halt, and the
	// program's own block list. The engine attempts a trace replay only at
	// taken-transfer targets, which this set covers.
	n := len(p.Instrs)
	leader := make([]bool, n)
	leader[0], leader[p.Entry] = true, true
	for _, b := range p.Blocks {
		if b >= 0 && b < n {
			leader[b] = true
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		info := in.Op.Info()
		if info.Branch || in.Op == isa.OpHalt {
			if i+1 < n {
				leader[i+1] = true
			}
			if info.Branch && in.Op != isa.OpJr {
				leader[in.Target] = true
			}
		}
	}

	out := make([]*Trace, n)
	seen := make([]int32, n) // shared visited stamps: one allocation for all leaders
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			out[pc] = buildTrace(p, cfg, pc, &binds, prof, seen, int32(pc)+1)
		}
	}
	return out, nil
}

// isCondBranch reports whether op is a conditional branch.
func isCondBranch(op isa.Opcode) bool {
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle, isa.OpBgt:
		return true
	}
	return false
}

// buildTrace walks the straight-line continuation from start, simulating the
// engine's issue discipline with all quantities relative to the entry slot
// (the first instruction issues at offset 0 — exactly the barrier, by the
// entry precondition). The walk stops at the first instruction that binds a
// functional unit, transfers control unpredictably (jal, jr), halts, was
// already traced (termination), or would exceed maxTraceLen. seen is the
// caller's shared visited buffer: seen[pc] == stamp marks pc as on this
// trace (stamps are unique per leader, so no clearing between builds).
func buildTrace(p *isa.Program, cfg *machine.Config, start int, binds *[isa.NumClasses]bool, prof *Profile, seen []int32, stamp int32) *Trace {
	n := len(p.Instrs)
	width := int64(cfg.IssueWidth)
	redirect := int64(cfg.BranchRedirect)

	tr := &Trace{Start: start}
	var avail [isa.NumRegs]int64
	var wrote, touched [isa.NumRegs]bool
	var cycle, inCycle, groups int64
	var widthS, branchS, dataS, writeS int64
	var maxComplete, barrierOff int64
	var count int64
	var nWrote int
	var jumps []TraceJump
	pos, segLo := start, start
	first := true

	// snapshot records one exit with the cumulative state at this point.
	snapshot := func(at, target int, taken bool, bOff int64) int {
		ex := TraceExit{
			At: at, Target: target, Taken: taken, N: count,
			CycleAdv: cycle, InCycle: inCycle, Groups: groups,
			WidthStalls: widthS, BranchStalls: branchS,
			DataStalls: dataS, WriteStalls: writeS,
			MaxComplete: maxComplete, BarrierOff: bOff,
		}
		if len(jumps) > 0 {
			ex.Jumps = append([]TraceJump(nil), jumps...)
		}
		// A back-edge is stable when re-entry lands behind a still-fresh
		// taken-branch barrier (bOff > cycle; every in-trace barrier comes
		// from a taken transfer) with every write ready by it. Taken side
		// exits always satisfy bOff > cycle (the branch's own barrier is
		// issue+lat+redirect, past its issue cycle); a fallthrough exit
		// satisfies it only if a stitched seam barrier is still ahead.
		stable := target == start && bOff > cycle
		if nWrote > 0 {
			ex.Writes = make([]RegWrite, 0, nWrote)
		}
		for r := 1; r < isa.NumRegs; r++ {
			if wrote[r] {
				ex.Writes = append(ex.Writes, RegWrite{Reg: isa.Reg(r), Off: avail[r]})
				if avail[r] > bOff {
					stable = false
				}
			}
		}
		ex.Stable = stable
		tr.Exits = append(tr.Exits, ex)
		return len(tr.Exits) - 1
	}

	for {
		if pos < 0 || pos >= n || seen[pos] == stamp || count >= maxTraceLen {
			break
		}
		in := &p.Instrs[pos]
		op := in.Op
		if binds[op.Class()] || op == isa.OpJal || op == isa.OpJr || op == isa.OpHalt {
			break
		}
		seen[pos] = stamp

		lat := int64(cfg.Latency[op.Class()])
		s1, s2, dst := effRegs(in)
		touched[s1], touched[s2] = true, true

		var issue int64
		if first {
			// Entry slot: issue is exactly the barrier (offset 0) by the
			// precondition; width/branch entry stalls are dynamic and
			// charged by the engine.
			inCycle, groups = 1, 1
			first = false
		} else {
			var over int64
			if inCycle >= width {
				over = 1
			}
			slot := cycle + over
			widthS += over
			if barrierOff > slot {
				// An in-trace jump barrier is always a taken-branch
				// barrier, so the engine books the wait as a branch stall.
				branchS += barrierOff - slot
				slot = barrierOff
			}
			issue = max(slot, avail[s1], avail[s2])
			dataS += issue - slot
			if dst != isa.NoReg {
				m := max(issue, avail[dst]-lat)
				writeS += m - issue
				issue = m
			}
			if issue > cycle {
				cycle = issue
				inCycle = 1
				groups++
			} else {
				inCycle++
			}
		}
		complete := issue + lat
		if dst != isa.NoReg {
			avail[dst] = complete
			if !wrote[dst] {
				nWrote++
			}
			wrote[dst], touched[dst] = true, true
		}
		maxComplete = max(maxComplete, complete)
		count++

		switch {
		case isCondBranch(op):
			if prof.LikelyTaken(pos) {
				// Specialized: the profile says this branch is almost always
				// taken, so the trace follows the taken edge. Untaken becomes
				// the guarded side exit — snapshotted before the seam barrier
				// and the jump bookkeeping, because an untaken branch neither
				// ends its issue group nor bumps block counters — and the
				// taken edge is stitched exactly like a jump seam.
				exit := snapshot(pos, pos+1, false, barrierOff)
				barrierOff = max(barrierOff, issue+lat+redirect)
				jumps = append(jumps, TraceJump{At: pos, Target: in.Target})
				tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepCondTaken, Exit: exit, Target: in.Target})
				segLo, pos = in.Target, in.Target
				continue
			}
			exit := snapshot(pos, in.Target, true, max(barrierOff, issue+lat+redirect))
			tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepCond, Exit: exit})
			segLo, pos = pos+1, pos+1
		case op == isa.OpJ:
			barrierOff = max(barrierOff, issue+lat+redirect)
			jumps = append(jumps, TraceJump{At: pos, Target: in.Target})
			tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepJump, Target: in.Target})
			segLo, pos = in.Target, in.Target
		default:
			pos++
		}
	}

	exit := snapshot(-1, pos, false, barrierOff)
	tr.Steps = append(tr.Steps, TraceStep{Lo: segLo, Hi: pos, Kind: StepEnd, Exit: exit})
	nTouched := 0
	for r := 1; r < isa.NumRegs; r++ { // r0 is never scoreboarded
		if touched[r] {
			nTouched++
		}
	}
	if nTouched > 0 {
		tr.CheckRegs = make([]isa.Reg, 0, nTouched)
		for r := 1; r < isa.NumRegs; r++ {
			if touched[r] {
				tr.CheckRegs = append(tr.CheckRegs, isa.Reg(r))
			}
		}
	}
	tr.Blocks = len(tr.Steps)
	return tr
}
