package ilperr

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"
)

func TestCompileErrorFormatting(t *testing.T) {
	inner := errors.New("parse failed")
	err := &CompileError{Benchmark: "yacc", Machine: "base", Phase: PhaseCompile, Err: inner}
	if got := err.Error(); !strings.Contains(got, "yacc") || !strings.Contains(got, "base") || !strings.Contains(got, "parse failed") {
		t.Fatalf("message missing coordinates: %q", got)
	}
	if !errors.Is(err, inner) {
		t.Fatal("Unwrap broken")
	}
	// Unnamed source (the facade's ilp.Compile path) reads naturally.
	anon := &CompileError{Machine: "base", Err: inner}
	if got := anon.Error(); !strings.Contains(got, "source") {
		t.Fatalf("anonymous compile should say 'source': %q", got)
	}
}

func TestSimErrorFormatting(t *testing.T) {
	inner := errors.New("limit exceeded")
	err := &SimError{Benchmark: "whet", Machine: "ss4", Phase: PhaseSimulate, Err: inner}
	if got := err.Error(); !strings.Contains(got, "whet") || !strings.Contains(got, "ss4") {
		t.Fatalf("message missing coordinates: %q", got)
	}
	if !errors.Is(err, inner) {
		t.Fatal("Unwrap broken")
	}
	anon := &SimError{Machine: "ss4", Err: inner}
	if got := anon.Error(); !strings.Contains(got, "program") {
		t.Fatalf("anonymous sim should say 'program': %q", got)
	}
}

func TestPanicError(t *testing.T) {
	err := PanicError("boom", []byte("goroutine 1 [running]:\nmain.crash()"))
	if !errors.Is(err, ErrPanic) {
		t.Fatal("PanicError must match ErrPanic")
	}
	for _, want := range []string{"boom", "main.crash"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("panic error lost %q: %v", want, err)
		}
	}
	// Wrapped inside the structured types, ErrPanic stays matchable.
	se := &SimError{Machine: "m", Err: PanicError(fmt.Errorf("v"), nil)}
	if !errors.Is(se, ErrPanic) {
		t.Fatal("ErrPanic not matchable through SimError")
	}
}

func TestMachineErrorFormatting(t *testing.T) {
	inner := errors.New("issue width 0 < 1")
	err := &MachineError{Machine: "broken", Err: inner}
	if got := err.Error(); !strings.Contains(got, `"broken"`) || !strings.Contains(got, "issue width") {
		t.Fatalf("message missing coordinates: %q", got)
	}
	if !errors.Is(err, inner) {
		t.Fatal("Unwrap broken")
	}
}

func TestStoreErrorFormatting(t *testing.T) {
	err := &StoreError{Path: "/tmp/r.jsonl", Op: "load", Line: 7, Err: ErrCorrupt}
	for _, want := range []string{"/tmp/r.jsonl", "load", "line 7", "corrupt"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("store error lost %q: %v", want, err)
		}
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("Unwrap broken")
	}
	noLine := &StoreError{Path: "p", Op: "append", Err: errors.New("disk full")}
	if strings.Contains(noLine.Error(), "line") {
		t.Fatalf("line 0 must not be rendered: %v", noLine)
	}
}

// TestIsTransientTaxonomy pins the classification rules the retry policy
// depends on: panics and cancellations permanent, explicit markers
// honored outermost-first, store I/O transient vs. corruption permanent,
// unclassified errors permanent.
func TestIsTransientTaxonomy(t *testing.T) {
	base := errors.New("flaky io")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"unclassified", errors.New("semantic failure"), false},
		{"marked transient", MarkTransient(base), true},
		{"marked permanent", MarkPermanent(base), false},
		{"exhausted transient (permanent over transient)",
			MarkPermanent(fmt.Errorf("retries exhausted: %w", MarkTransient(base))), false},
		{"panic always permanent", MarkTransient(PanicError("boom", nil)), false},
		{"cancellation always permanent", MarkTransient(context.Canceled), false},
		{"deadline always permanent", fmt.Errorf("job: %w", context.DeadlineExceeded), false},
		{"transient through SimError", &SimError{Machine: "m", Err: MarkTransient(base)}, true},
		{"transient through CompileError", &CompileError{Machine: "m", Err: MarkTransient(base)}, true},
		{"store io transient", &StoreError{Path: "p", Op: "append", Err: fs.ErrPermission}, true},
		{"store corruption permanent", &StoreError{Path: "p", Op: "load", Line: 3, Err: ErrCorrupt}, false},
		{"store io through SimError", &SimError{Machine: "m", Err: &StoreError{Path: "p", Op: "append", Err: base}}, true},
		{"joined all transient", errors.Join(MarkTransient(base), MarkTransient(errors.New("b"))), true},
		{"joined mixed", errors.Join(MarkTransient(base), errors.New("hard")), false},
		{"joined with permanent", errors.Join(MarkTransient(base), MarkPermanent(errors.New("b"))), false},
		{"joined unclassified", errors.Join(errors.New("a"), errors.New("b")), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestMarkersPreserveChain: marking must not hide the original cause from
// errors.Is/errors.As.
func TestMarkersPreserveChain(t *testing.T) {
	cause := errors.New("root")
	for _, err := range []error{MarkTransient(cause), MarkPermanent(cause)} {
		if !errors.Is(err, cause) {
			t.Fatalf("marker broke the chain: %v", err)
		}
		if err.Error() != "root" {
			t.Fatalf("marker changed the message: %q", err.Error())
		}
	}
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil {
		t.Fatal("marking nil must stay nil")
	}
}
