package ilperr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCompileErrorFormatting(t *testing.T) {
	inner := errors.New("parse failed")
	err := &CompileError{Benchmark: "yacc", Machine: "base", Phase: PhaseCompile, Err: inner}
	if got := err.Error(); !strings.Contains(got, "yacc") || !strings.Contains(got, "base") || !strings.Contains(got, "parse failed") {
		t.Fatalf("message missing coordinates: %q", got)
	}
	if !errors.Is(err, inner) {
		t.Fatal("Unwrap broken")
	}
	// Unnamed source (the facade's ilp.Compile path) reads naturally.
	anon := &CompileError{Machine: "base", Err: inner}
	if got := anon.Error(); !strings.Contains(got, "source") {
		t.Fatalf("anonymous compile should say 'source': %q", got)
	}
}

func TestSimErrorFormatting(t *testing.T) {
	inner := errors.New("limit exceeded")
	err := &SimError{Benchmark: "whet", Machine: "ss4", Phase: PhaseSimulate, Err: inner}
	if got := err.Error(); !strings.Contains(got, "whet") || !strings.Contains(got, "ss4") {
		t.Fatalf("message missing coordinates: %q", got)
	}
	if !errors.Is(err, inner) {
		t.Fatal("Unwrap broken")
	}
	anon := &SimError{Machine: "ss4", Err: inner}
	if got := anon.Error(); !strings.Contains(got, "program") {
		t.Fatalf("anonymous sim should say 'program': %q", got)
	}
}

func TestPanicError(t *testing.T) {
	err := PanicError("boom", []byte("goroutine 1 [running]:\nmain.crash()"))
	if !errors.Is(err, ErrPanic) {
		t.Fatal("PanicError must match ErrPanic")
	}
	for _, want := range []string{"boom", "main.crash"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("panic error lost %q: %v", want, err)
		}
	}
	// Wrapped inside the structured types, ErrPanic stays matchable.
	se := &SimError{Machine: "m", Err: PanicError(fmt.Errorf("v"), nil)}
	if !errors.Is(se, ErrPanic) {
		t.Fatal("ErrPanic not matchable through SimError")
	}
}
