// Package ilperr is the structured error taxonomy of the measurement
// pipeline. The experiment runner, the ilp facade, and the CLIs all
// construct and inspect the same two error types, so errors.As/errors.Is
// work across package boundaries: a sweep embedded in a service can tell a
// compiler rejection from a simulator fault from a cancelled context, and
// can recover the exact (benchmark, machine, fingerprint) coordinate that
// failed without parsing messages.
//
// The package is a leaf on purpose — it imports nothing but the standard
// library, so any layer may depend on it without cycles.
package ilperr

import (
	"errors"
	"fmt"
)

// Phase names the pipeline stage an error arose in.
type Phase string

// The measurement pipeline's phases.
const (
	PhaseCompile  Phase = "compile"
	PhaseSimulate Phase = "simulate"
)

// ErrPanic marks errors recovered from a panicking worker. A measurement
// job that panics (in a worker goroutine or a singleflight leader) is
// converted into a CompileError or SimError whose cause chain includes
// ErrPanic, instead of crashing the process:
//
//	if errors.Is(err, ilperr.ErrPanic) { ... }
var ErrPanic = errors.New("panic in worker")

// PanicError converts a recovered panic value and its goroutine stack into
// an error matching ErrPanic.
func PanicError(v any, stack []byte) error {
	return fmt.Errorf("%w: %v\n%s", ErrPanic, v, stack)
}

// CompileError reports a failure to compile a benchmark for a machine.
type CompileError struct {
	// Benchmark is the suite benchmark name ("" when compiling ad-hoc
	// source through the facade).
	Benchmark string
	// Machine is the machine description's name.
	Machine string
	// Fingerprint is the machine's schedule fingerprint — everything the
	// compiler could observe (machine.Config.ScheduleFingerprint).
	Fingerprint string
	// Phase is PhaseCompile.
	Phase Phase
	// Err is the underlying cause.
	Err error
}

func (e *CompileError) Error() string {
	bench := e.Benchmark
	if bench == "" {
		bench = "source"
	}
	return fmt.Sprintf("compile %s for %s: %v", bench, e.Machine, e.Err)
}

func (e *CompileError) Unwrap() error { return e.Err }

// SimError reports a failure to simulate a compiled benchmark on a machine.
type SimError struct {
	// Benchmark is the suite benchmark name ("" for ad-hoc programs).
	Benchmark string
	// Machine is the machine description's name.
	Machine string
	// Fingerprint is the machine's full canonical fingerprint
	// (machine.Config.Fingerprint), identifying the exact simulated
	// configuration including caches.
	Fingerprint string
	// Phase is PhaseSimulate.
	Phase Phase
	// Err is the underlying cause.
	Err error
}

func (e *SimError) Error() string {
	bench := e.Benchmark
	if bench == "" {
		bench = "program"
	}
	return fmt.Sprintf("simulate %s on %s: %v", bench, e.Machine, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }
