// Package ilperr is the structured error taxonomy of the measurement
// pipeline. The experiment runner, the ilp facade, and the CLIs all
// construct and inspect the same error types, so errors.As/errors.Is
// work across package boundaries: a sweep embedded in a service can tell a
// compiler rejection from a simulator fault from a corrupt result store
// from a cancelled context, and can recover the exact (benchmark, machine,
// fingerprint) coordinate that failed without parsing messages.
//
// Besides the error types, the package defines the pipeline's
// transient/permanent classification (IsTransient), which the experiment
// runner's retry policy dispatches on: transient failures (injected
// faults, store I/O errors) are worth retrying with backoff; permanent
// ones (semantic compile/simulate failures, panics, cancellations,
// corruption) are not.
//
// The package is a leaf on purpose — it imports nothing but the standard
// library, so any layer may depend on it without cycles.
package ilperr

import (
	"context"
	"errors"
	"fmt"
)

// Phase names the pipeline stage an error arose in.
type Phase string

// The measurement pipeline's phases.
const (
	PhaseCompile  Phase = "compile"
	PhaseSimulate Phase = "simulate"
)

// ErrPanic marks errors recovered from a panicking worker. A measurement
// job that panics (in a worker goroutine or a singleflight leader) is
// converted into a CompileError or SimError whose cause chain includes
// ErrPanic, instead of crashing the process:
//
//	if errors.Is(err, ilperr.ErrPanic) { ... }
var ErrPanic = errors.New("panic in worker")

// PanicError converts a recovered panic value and its goroutine stack into
// an error matching ErrPanic.
func PanicError(v any, stack []byte) error {
	return fmt.Errorf("%w: %v\n%s", ErrPanic, v, stack)
}

// CompileError reports a failure to compile a benchmark for a machine.
type CompileError struct {
	// Benchmark is the suite benchmark name ("" when compiling ad-hoc
	// source through the facade).
	Benchmark string
	// Machine is the machine description's name.
	Machine string
	// Fingerprint is the machine's schedule fingerprint — everything the
	// compiler could observe (machine.Config.ScheduleFingerprint).
	Fingerprint string
	// Phase is PhaseCompile.
	Phase Phase
	// Err is the underlying cause.
	Err error
}

func (e *CompileError) Error() string {
	bench := e.Benchmark
	if bench == "" {
		bench = "source"
	}
	return fmt.Sprintf("compile %s for %s: %v", bench, e.Machine, e.Err)
}

func (e *CompileError) Unwrap() error { return e.Err }

// SimError reports a failure to simulate a compiled benchmark on a machine.
type SimError struct {
	// Benchmark is the suite benchmark name ("" for ad-hoc programs).
	Benchmark string
	// Machine is the machine description's name.
	Machine string
	// Fingerprint is the machine's full canonical fingerprint
	// (machine.Config.Fingerprint), identifying the exact simulated
	// configuration including caches.
	Fingerprint string
	// Phase is PhaseSimulate.
	Phase Phase
	// Err is the underlying cause.
	Err error
}

func (e *SimError) Error() string {
	bench := e.Benchmark
	if bench == "" {
		bench = "program"
	}
	return fmt.Sprintf("simulate %s on %s: %v", bench, e.Machine, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }

// MachineError reports an invalid machine description, rejected at
// construction/load time so a bad latency table or functional-unit layout
// fails with a coordinate instead of producing nonsense cycle counts (or a
// panic) downstream.
type MachineError struct {
	// Machine is the offending description's name.
	Machine string
	// Err describes the rejected field.
	Err error
}

func (e *MachineError) Error() string {
	return fmt.Sprintf("machine %q: %v", e.Machine, e.Err)
}

func (e *MachineError) Unwrap() error { return e.Err }

// ErrCorrupt marks a result-store record whose checksum or framing does
// not verify. Corruption is permanent: re-reading the same bytes cannot
// heal it, so IsTransient reports false for errors wrapping it.
var ErrCorrupt = errors.New("corrupt record")

// StoreError reports a result-store failure: an I/O error while opening,
// appending, or compacting, or corruption detected while loading.
type StoreError struct {
	// Path is the store file.
	Path string
	// Op is the operation that failed: "open", "load", "append",
	// "compact".
	Op string
	// Line is the 1-based line number of a corrupt record (0 when the
	// failure is not tied to a line).
	Line int
	// Err is the underlying cause.
	Err error
}

func (e *StoreError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("store %s: %s: line %d: %v", e.Path, e.Op, e.Line, e.Err)
	}
	return fmt.Sprintf("store %s: %s: %v", e.Path, e.Op, e.Err)
}

func (e *StoreError) Unwrap() error { return e.Err }

// Transient classifies store failures for the retry policy: I/O errors are
// worth retrying, detected corruption is not.
func (e *StoreError) Transient() bool { return !errors.Is(e.Err, ErrCorrupt) }

// transient and permanent are the explicit classification markers wrapped
// around causes by MarkTransient/MarkPermanent. The outermost marker on a
// chain wins, so a retry loop can demote an exhausted transient failure to
// permanent without losing the original cause.
type transient struct{ err error }

func (t *transient) Error() string   { return t.err.Error() }
func (t *transient) Unwrap() error   { return t.err }
func (t *transient) Transient() bool { return true }

type permanent struct{ err error }

func (p *permanent) Error() string   { return p.err.Error() }
func (p *permanent) Unwrap() error   { return p.err }
func (p *permanent) Transient() bool { return false }

// MarkTransient marks err as transient for IsTransient. Panics and
// cancellations stay permanent even when marked.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transient{err}
}

// MarkPermanent marks err as permanent for IsTransient, overriding any
// transient marker deeper in the chain (the retry loop uses it to publish
// a retries-exhausted failure).
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanent{err}
}

// IsTransient reports whether err is a transient failure — one the retry
// policy should retry with backoff. The classification rules, in priority
// order:
//
//  1. Panics (ErrPanic) and cancellations (context.Canceled,
//     context.DeadlineExceeded) are always permanent: a panicking worker
//     is a bug, and a cancelled sweep must stop, not retry.
//  2. Otherwise the outermost explicit classification on the unwrap chain
//     wins: anything implementing `Transient() bool` (the MarkTransient /
//     MarkPermanent wrappers, injected faults, StoreError).
//  3. Unclassified errors are permanent: a semantic compile or simulate
//     failure is deterministic and will not heal on retry.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPanic) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for e := err; e != nil; {
		if t, ok := e.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
		switch u := e.(type) {
		case interface{ Unwrap() error }:
			e = u.Unwrap()
		case interface{ Unwrap() []error }:
			// A joined error is transient only if every branch is:
			// retrying cannot help if any branch is permanent, and an
			// unclassified branch is permanent by rule 3.
			children := u.Unwrap()
			for _, child := range children {
				if classified, verdict := classify(child); !classified || !verdict {
					return false
				}
			}
			return len(children) > 0
		default:
			e = nil
		}
	}
	return false
}

// classify walks one branch of a chain for an explicit Transient marker.
func classify(err error) (classified, verdict bool) {
	for e := err; e != nil; {
		if t, ok := e.(interface{ Transient() bool }); ok {
			return true, t.Transient()
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false, false
		}
		e = u.Unwrap()
	}
	return false, false
}
