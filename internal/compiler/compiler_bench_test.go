package compiler

import (
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/machine"
)

// BenchmarkCompileSuite measures full-pipeline compile speed over the whole
// benchmark suite at the paper's standard options.
func BenchmarkCompileSuite(b *testing.B) {
	suite := benchmarks.All()
	m := machine.Base()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range suite {
			if _, err := Compile(bm.Source, Options{Machine: m, Level: O4, Unroll: bm.DefaultUnroll}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileLevels compares the cost of each optimization level on
// the largest benchmark.
func BenchmarkCompileLevels(b *testing.B) {
	bm, err := benchmarks.ByName("livermore")
	if err != nil {
		b.Fatal(err)
	}
	for lvl := O0; lvl <= O4; lvl++ {
		lvl := lvl
		b.Run(lvl.String(), func(b *testing.B) {
			m := machine.Base()
			for i := 0; i < b.N; i++ {
				if _, err := Compile(bm.Source, Options{Machine: m, Level: lvl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileVerify compares compile cost with the static verifier off
// and on. The off case is the measurement configuration and must match the
// pre-verifier pipeline exactly: Verify:false is a handful of branch tests,
// so "off" and the historical baseline should be indistinguishable, while
// "on" shows what the debugging configuration pays.
func BenchmarkCompileVerify(b *testing.B) {
	bm, err := benchmarks.ByName("livermore")
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []bool{false, true} {
		name := "off"
		if v {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			m := machine.Base()
			for i := 0; i < b.N; i++ {
				if _, err := Compile(bm.Source, Options{Machine: m, Level: O4, Verify: v}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileCarefulUnroll10 is the most expensive configuration the
// experiments use.
func BenchmarkCompileCarefulUnroll10(b *testing.B) {
	bm, err := benchmarks.ByName("linpack")
	if err != nil {
		b.Fatal(err)
	}
	m := machine.IdealSuperscalar(8)
	m.IntTemps, m.FPTemps = machine.WideTemps, machine.WideTemps
	m.IntHomes, m.FPHomes = 10, 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(bm.Source, Options{Machine: m, Level: O4, Unroll: 10, Careful: true}); err != nil {
			b.Fatal(err)
		}
	}
}
