// Package codegen lowers allocated IR to the final machine program: it
// lays out the data segment, builds stack frames, implements the calling
// convention (arguments in r2..r9/f2..f9, results in r1/f1, caller-saved
// temporaries, callee-managed frame and return address), linearizes the
// CFG, and resolves branch targets. It also produces the parallel memory
// annotations (ir.MemRef) the pipeline scheduler's dependence analysis
// consumes, and the list of basic-block leader indices that bound the
// scheduler's regions.
package codegen

import (
	"fmt"
	"math"
	"strconv"

	"ilp/internal/compiler/regalloc"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/machine"
)

// Result is a lowered program plus scheduler metadata.
type Result struct {
	Prog *isa.Program
	// Mem annotates each instruction's memory behavior (parallel to
	// Prog.Instrs).
	Mem []ir.MemRef
	// BlockStarts lists basic-block leader indices in ascending order.
	BlockStarts []int
}

// Generate lowers the IR module. It runs the local register allocator on
// each function as part of lowering.
func Generate(p *ir.Program, cfg *machine.Config) (*Result, error) {
	g := &emitter{
		prog:     p,
		cfg:      cfg,
		symbols:  map[int]string{},
		varAddr:  map[*ast.Symbol]int64{},
		fixups:   map[int]string{},
		labelPos: map[string]int{},
	}
	g.layoutData()
	if err := g.emitAll(); err != nil {
		return nil, err
	}
	if err := g.link(); err != nil {
		return nil, err
	}
	out := &isa.Program{
		Instrs:  g.instrs,
		Data:    g.data,
		Entry:   0,
		Symbols: g.symbols,
		Blocks:  g.blockStarts,
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: produced invalid program: %w", err)
	}
	return &Result{Prog: out, Mem: g.mem, BlockStarts: g.blockStarts}, nil
}

type emitter struct {
	prog *ir.Program
	cfg  *machine.Config

	data    []int64
	varAddr map[*ast.Symbol]int64 // globals and arrays -> absolute word address

	instrs      []isa.Instr
	mem         []ir.MemRef
	symbols     map[int]string
	blockStarts []int
	fixups      map[int]string // instruction index -> label
	labelPos    map[string]int

	// Per-function state.
	f         *ir.Func
	alloc     *regalloc.Assignment
	slotOff   map[int]int64         // spill slot -> frame offset
	localOff  map[*ast.Symbol]int64 // unpromoted locals/params -> frame offset
	frameSize int64
	raOff     int64 // -1 if leaf
	raSlot    int
}

// layoutData assigns addresses to globals and arrays and fills initial
// values.
func (g *emitter) layoutData() {
	info := g.prog.Info
	for _, sym := range info.Globals {
		g.varAddr[sym] = int64(len(g.data))
		d := sym.Decl.(*ast.VarDecl)
		v := int64(0)
		if d.Init != nil {
			v = constWord(d.Init)
		}
		g.data = append(g.data, v)
	}
	for _, sym := range info.Arrays {
		g.varAddr[sym] = int64(len(g.data))
		g.data = append(g.data, make([]int64, sym.Size())...)
	}
}

// constWord evaluates a constant initializer to its memory representation.
func constWord(e ast.Expr) int64 {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value
	case *ast.RealLit:
		return int64(math.Float64bits(x.Value))
	case *ast.BoolLit:
		if x.Value {
			return 1
		}
		return 0
	case *ast.UnOp:
		v := constWord(x.X)
		if x.X.Type() == ast.Real {
			return int64(math.Float64bits(-math.Float64frombits(uint64(v))))
		}
		return -v
	}
	panic("codegen: non-constant initializer survived analysis")
}

func (g *emitter) emit(in isa.Instr, mr ir.MemRef) int {
	g.instrs = append(g.instrs, in)
	g.mem = append(g.mem, mr)
	return len(g.instrs) - 1
}

func (g *emitter) label(name string) {
	g.labelPos[name] = len(g.instrs)
	// When a function has an empty prologue its entry label and its first
	// block label land on the same instruction; keep the first (function)
	// label as the symbol so call targets still resolve to function
	// entries in the disassembly.
	if _, taken := g.symbols[len(g.instrs)]; !taken {
		g.symbols[len(g.instrs)] = name
	}
	if n := len(g.blockStarts); n == 0 || g.blockStarts[n-1] != len(g.instrs) {
		g.blockStarts = append(g.blockStarts, len(g.instrs))
	}
}

func (g *emitter) emitAll() error {
	// Entry stub: initialize promoted globals, call main, halt.
	g.label("_start")
	for _, sym := range g.prog.Info.Globals {
		phys, ok := g.prog.Promoted[sym]
		if !ok {
			continue
		}
		d := sym.Decl.(*ast.VarDecl)
		if d.Init == nil {
			continue // registers reset to zero, like memory
		}
		if sym.Type == ast.Real {
			g.emit(isa.Instr{Op: isa.OpFli, Dst: phys, Src1: isa.NoReg, Src2: isa.NoReg,
				FImm: math.Float64frombits(uint64(constWord(d.Init)))}, ir.MemRef{})
		} else {
			g.emit(isa.Instr{Op: isa.OpLi, Dst: phys, Src1: isa.NoReg, Src2: isa.NoReg,
				Imm: constWord(d.Init)}, ir.MemRef{})
		}
	}
	jal := g.emit(isa.Instr{Op: isa.OpJal, Dst: isa.RRA, Src1: isa.NoReg, Src2: isa.NoReg, Sym: "main"}, ir.MemRef{})
	g.fixups[jal] = "main"
	g.emit(isa.Instr{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}, ir.MemRef{})

	for _, f := range g.prog.Funcs {
		if err := g.emitFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (g *emitter) link() error {
	for idx, lbl := range g.fixups {
		pos, ok := g.labelPos[lbl]
		if !ok {
			return fmt.Errorf("codegen: undefined label %q", lbl)
		}
		g.instrs[idx].Target = pos
	}
	return nil
}

// argReg returns the register carrying parameter i of the given class.
func argReg(i int, fp bool) isa.Reg {
	if fp {
		return isa.F(isa.FArg0.Index() + i)
	}
	return isa.R(isa.RArg0.Index() + i)
}

func (g *emitter) emitFunc(f *ir.Func) error {
	g.f = f
	alloc, err := regalloc.Allocate(f, g.cfg)
	if err != nil {
		return err
	}
	g.alloc = alloc

	// Frame layout: spill slots, then unpromoted local/param slots, then
	// the saved return address for non-leaf functions.
	g.slotOff = map[int]int64{}
	g.localOff = map[*ast.Symbol]int64{}
	off := int64(0)
	for s := 0; s < alloc.NumSlots; s++ {
		g.slotOff[s] = off
		off++
	}
	vars := append(append([]*ast.Symbol{}, f.Info.Params...), f.Info.Locals...)
	for _, sym := range vars {
		if _, promoted := g.prog.Promoted[sym]; promoted {
			continue
		}
		g.localOff[sym] = off
		off++
	}
	nonLeaf := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Kind == ir.KCall {
				nonLeaf = true
			}
		}
	}
	g.raOff = -1
	if nonLeaf {
		g.raOff = off
		g.raSlot = alloc.NumSlots // distinct MemSpill id for the RA slot
		off++
	}
	g.frameSize = off

	// Prologue.
	g.label(f.Name)
	if g.frameSize > 0 {
		g.emit(isa.Instr{Op: isa.OpAddi, Dst: isa.RSP, Src1: isa.RSP, Src2: isa.NoReg, Imm: -g.frameSize}, ir.MemRef{})
	}
	if g.raOff >= 0 {
		g.emit(isa.Instr{Op: isa.OpSw, Dst: isa.NoReg, Src1: isa.RSP, Src2: isa.RRA, Imm: g.raOff, Sym: "%ra"},
			ir.MemRef{Kind: ir.MemSpill, Slot: g.raSlot})
	}
	for i, sym := range f.Info.Params {
		fp := sym.Type == ast.Real
		src := argReg(i, fp)
		if phys, promoted := g.prog.Promoted[sym]; promoted {
			op := isa.OpMov
			if fp {
				op = isa.OpFmov
			}
			g.emit(isa.Instr{Op: op, Dst: phys, Src1: src, Src2: isa.NoReg}, ir.MemRef{})
			continue
		}
		op := isa.OpSw
		if fp {
			op = isa.OpSf
		}
		g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: isa.RSP, Src2: src, Imm: g.localOff[sym], Sym: sym.Name},
			ir.MemRef{Kind: ir.MemScalar, Sym: sym})
	}

	// Body, in reverse postorder with fall-through-friendly layout.
	order := f.ReversePostorder()
	nextOf := map[*ir.Block]*ir.Block{}
	for i, b := range order {
		if i+1 < len(order) {
			nextOf[b] = order[i+1]
		}
	}
	for _, b := range order {
		g.label(f.Name + ".b" + strconv.Itoa(b.ID))
		for i := range b.Instrs {
			if err := g.emitInstr(f, &b.Instrs[i], nextOf[b]); err != nil {
				return err
			}
		}
	}
	return nil
}

// phys returns the physical register of a vreg (which must not be spilled
// at this point: spill rewriting already routed operands through scratch).
func (g *emitter) phys(r ir.Reg) isa.Reg {
	if r == ir.NoReg {
		return isa.NoReg
	}
	p := g.alloc.Phys[r]
	if p == isa.NoReg {
		panic(fmt.Sprintf("codegen: %s: v%d has no physical register", g.f.Name, r))
	}
	return p
}

func (g *emitter) blockLabel(b *ir.Block) string {
	return g.f.Name + ".b" + strconv.Itoa(b.ID)
}

func (g *emitter) emitEpilogue() {
	if g.raOff >= 0 {
		g.emit(isa.Instr{Op: isa.OpLw, Dst: isa.RRA, Src1: isa.RSP, Src2: isa.NoReg, Imm: g.raOff, Sym: "%ra"},
			ir.MemRef{Kind: ir.MemSpill, Slot: g.raSlot})
	}
	if g.frameSize > 0 {
		g.emit(isa.Instr{Op: isa.OpAddi, Dst: isa.RSP, Src1: isa.RSP, Src2: isa.NoReg, Imm: g.frameSize}, ir.MemRef{})
	}
	g.emit(isa.Instr{Op: isa.OpJr, Dst: isa.NoReg, Src1: isa.RRA, Src2: isa.NoReg}, ir.MemRef{})
}

// invertBranch returns the opposite condition.
func invertBranch(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.OpBeq:
		return isa.OpBne
	case isa.OpBne:
		return isa.OpBeq
	case isa.OpBlt:
		return isa.OpBge
	case isa.OpBge:
		return isa.OpBlt
	case isa.OpBle:
		return isa.OpBgt
	case isa.OpBgt:
		return isa.OpBle
	}
	panic("codegen: not a conditional branch")
}

func (g *emitter) emitInstr(f *ir.Func, in *ir.Instr, next *ir.Block) error {
	switch in.Kind {
	case ir.KOp:
		out := isa.Instr{Op: in.Op, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Imm: in.Imm, FImm: in.FImm}
		info := in.Op.Info()
		if info.HasDst {
			out.Dst = g.phys(in.Dst)
		}
		if info.NSrc >= 1 {
			out.Src1 = g.phys(in.Src1)
		}
		if info.NSrc >= 2 {
			out.Src2 = g.phys(in.Src2)
		}
		g.emit(out, ir.MemRef{})

	case ir.KLoadVar:
		sym := in.Sym
		op := isa.OpLw
		if sym.Type == ast.Real {
			op = isa.OpLf
		}
		if sym.Kind == ast.SymGlobal {
			g.emit(isa.Instr{Op: op, Dst: g.phys(in.Dst), Src1: isa.RZero, Src2: isa.NoReg,
				Imm: g.varAddr[sym], Sym: sym.Name}, ir.MemRef{Kind: ir.MemScalar, Sym: sym})
		} else {
			g.emit(isa.Instr{Op: op, Dst: g.phys(in.Dst), Src1: isa.RSP, Src2: isa.NoReg,
				Imm: g.localOff[sym], Sym: sym.Name}, ir.MemRef{Kind: ir.MemScalar, Sym: sym})
		}

	case ir.KStoreVar:
		sym := in.Sym
		op := isa.OpSw
		if sym.Type == ast.Real {
			op = isa.OpSf
		}
		if sym.Kind == ast.SymGlobal {
			g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: isa.RZero, Src2: g.phys(in.Src1),
				Imm: g.varAddr[sym], Sym: sym.Name}, ir.MemRef{Kind: ir.MemScalar, Sym: sym})
		} else {
			g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: isa.RSP, Src2: g.phys(in.Src1),
				Imm: g.localOff[sym], Sym: sym.Name}, ir.MemRef{Kind: ir.MemScalar, Sym: sym})
		}

	case ir.KLoadElem:
		op := isa.OpLw
		if in.Sym.Type == ast.Real {
			op = isa.OpLf
		}
		g.emit(isa.Instr{Op: op, Dst: g.phys(in.Dst), Src1: g.phys(in.Src1), Src2: isa.NoReg,
			Imm: g.varAddr[in.Sym] + in.Imm, Sym: in.Sym.Name}, ir.MemRef{Kind: ir.MemArray, Sym: in.Sym})

	case ir.KStoreElem:
		op := isa.OpSw
		if in.Sym.Type == ast.Real {
			op = isa.OpSf
		}
		g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: g.phys(in.Src1), Src2: g.phys(in.Src2),
			Imm: g.varAddr[in.Sym] + in.Imm, Sym: in.Sym.Name}, ir.MemRef{Kind: ir.MemArray, Sym: in.Sym})

	case ir.KLoadSlot:
		op := isa.OpLw
		if f.RegClassOf(in.Dst) == ir.RFP {
			op = isa.OpLf
		}
		g.emit(isa.Instr{Op: op, Dst: g.phys(in.Dst), Src1: isa.RSP, Src2: isa.NoReg,
			Imm: g.slotOff[int(in.Imm)], Sym: fmt.Sprintf("%%spill%d", in.Imm)},
			ir.MemRef{Kind: ir.MemSpill, Slot: int(in.Imm)})

	case ir.KStoreSlot:
		op := isa.OpSw
		if f.RegClassOf(in.Src1) == ir.RFP {
			op = isa.OpSf
		}
		g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: isa.RSP, Src2: g.phys(in.Src1),
			Imm: g.slotOff[int(in.Imm)], Sym: fmt.Sprintf("%%spill%d", in.Imm)},
			ir.MemRef{Kind: ir.MemSpill, Slot: int(in.Imm)})

	case ir.KPrint:
		g.emit(isa.Instr{Op: in.Op, Dst: isa.NoReg, Src1: g.phys(in.Src1), Src2: isa.NoReg},
			ir.MemRef{Kind: ir.MemOut})

	case ir.KCall:
		callee := g.prog.FuncByName(in.Sym.Name)
		if callee == nil {
			return fmt.Errorf("codegen: call to unknown function %q", in.Sym.Name)
		}
		for i, a := range in.Args {
			fp := f.RegClassOf(a) == ir.RFP
			dst := argReg(i, fp)
			if g.alloc.Spilled(a) {
				op := isa.OpLw
				if fp {
					op = isa.OpLf
				}
				slot := g.alloc.Slot[a]
				g.emit(isa.Instr{Op: op, Dst: dst, Src1: isa.RSP, Src2: isa.NoReg,
					Imm: g.slotOff[slot], Sym: fmt.Sprintf("%%spill%d", slot)},
					ir.MemRef{Kind: ir.MemSpill, Slot: slot})
				continue
			}
			op := isa.OpMov
			if fp {
				op = isa.OpFmov
			}
			g.emit(isa.Instr{Op: op, Dst: dst, Src1: g.phys(a), Src2: isa.NoReg}, ir.MemRef{})
		}
		jal := g.emit(isa.Instr{Op: isa.OpJal, Dst: isa.RRA, Src1: isa.NoReg, Src2: isa.NoReg, Sym: in.Sym.Name}, ir.MemRef{})
		g.fixups[jal] = in.Sym.Name
		if in.Dst != ir.NoReg {
			fp := f.RegClassOf(in.Dst) == ir.RFP
			ret := isa.RRet
			if fp {
				ret = isa.FRet
			}
			if g.alloc.Spilled(in.Dst) {
				op := isa.OpSw
				if fp {
					op = isa.OpSf
				}
				slot := g.alloc.Slot[in.Dst]
				g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: isa.RSP, Src2: ret,
					Imm: g.slotOff[slot], Sym: fmt.Sprintf("%%spill%d", slot)},
					ir.MemRef{Kind: ir.MemSpill, Slot: slot})
			} else {
				op := isa.OpMov
				if fp {
					op = isa.OpFmov
				}
				g.emit(isa.Instr{Op: op, Dst: g.phys(in.Dst), Src1: ret, Src2: isa.NoReg}, ir.MemRef{})
			}
		}

	case ir.KRet:
		if in.Src1 != ir.NoReg {
			fp := f.RegClassOf(in.Src1) == ir.RFP
			ret := isa.RRet
			if fp {
				ret = isa.FRet
			}
			if g.alloc.Spilled(in.Src1) {
				op := isa.OpLw
				if fp {
					op = isa.OpLf
				}
				slot := g.alloc.Slot[in.Src1]
				g.emit(isa.Instr{Op: op, Dst: ret, Src1: isa.RSP, Src2: isa.NoReg,
					Imm: g.slotOff[slot], Sym: fmt.Sprintf("%%spill%d", slot)},
					ir.MemRef{Kind: ir.MemSpill, Slot: slot})
			} else {
				op := isa.OpMov
				if fp {
					op = isa.OpFmov
				}
				g.emit(isa.Instr{Op: op, Dst: ret, Src1: g.phys(in.Src1), Src2: isa.NoReg}, ir.MemRef{})
			}
		}
		g.emitEpilogue()

	case ir.KBr:
		taken, fall := in.Targets[0], in.Targets[1]
		op := in.Op
		s1, s2 := g.phys(in.Src1), g.phys(in.Src2)
		if taken == next {
			// Invert so the machine branch targets the other arm.
			idx := g.emit(isa.Instr{Op: invertBranch(op), Dst: isa.NoReg, Src1: s1, Src2: s2,
				Sym: g.blockLabel(fall)}, ir.MemRef{})
			g.fixups[idx] = g.blockLabel(fall)
			return nil
		}
		idx := g.emit(isa.Instr{Op: op, Dst: isa.NoReg, Src1: s1, Src2: s2, Sym: g.blockLabel(taken)}, ir.MemRef{})
		g.fixups[idx] = g.blockLabel(taken)
		if fall != next {
			j := g.emit(isa.Instr{Op: isa.OpJ, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg,
				Sym: g.blockLabel(fall)}, ir.MemRef{})
			g.fixups[j] = g.blockLabel(fall)
		}

	case ir.KJmp:
		if in.Targets[0] != next {
			j := g.emit(isa.Instr{Op: isa.OpJ, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg,
				Sym: g.blockLabel(in.Targets[0])}, ir.MemRef{})
			g.fixups[j] = g.blockLabel(in.Targets[0])
		}

	default:
		return fmt.Errorf("codegen: unhandled instruction kind %d", in.Kind)
	}
	return nil
}
