package codegen

import (
	"strings"
	"testing"

	"ilp/internal/compiler/irgen"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/sim"
)

func lower(t *testing.T, src string) *Result {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Generate(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(prog, machine.Base())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProgramStructure(t *testing.T) {
	res := lower(t, `
var g: int = 42;
var a[8]: real;
func main() { print(g); }
`)
	p := res.Prog
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Entry stub: starts at 0, calls main, halts.
	if p.Entry != 0 {
		t.Errorf("entry = %d", p.Entry)
	}
	if p.Instrs[0].Op != isa.OpJal {
		t.Errorf("first instruction %v, want jal main", &p.Instrs[0])
	}
	if p.Instrs[1].Op != isa.OpHalt {
		t.Errorf("second instruction %v, want halt", &p.Instrs[1])
	}
	// Data segment: initialized global then zeroed array.
	if len(p.Data) != 1+8 {
		t.Fatalf("data = %d words", len(p.Data))
	}
	if p.Data[0] != 42 {
		t.Errorf("global initializer lost: %v", p.Data[0])
	}
	// Mem annotations parallel the instruction stream.
	if len(res.Mem) != len(p.Instrs) {
		t.Fatalf("mem annotations %d != %d instructions", len(res.Mem), len(p.Instrs))
	}
	// Block leaders ascend and start at 0.
	for i := 1; i < len(res.BlockStarts); i++ {
		if res.BlockStarts[i] <= res.BlockStarts[i-1] {
			t.Fatal("block starts not ascending")
		}
	}
}

func TestMemAnnotations(t *testing.T) {
	res := lower(t, `
var g: int;
var a[4]: int;
func main() {
	var l: int;
	l = 3;
	g = l;
	a[l] = g;
	print(a[3]);
}
`)
	kinds := map[ir.MemKind]int{}
	for i := range res.Prog.Instrs {
		kinds[res.Mem[i].Kind]++
	}
	if kinds[ir.MemScalar] == 0 {
		t.Error("no scalar annotations")
	}
	if kinds[ir.MemArray] == 0 {
		t.Error("no array annotations")
	}
	if kinds[ir.MemOut] != 1 {
		t.Errorf("print annotations = %d, want 1", kinds[ir.MemOut])
	}
	// Loads/stores carry the variable name for disassembly.
	found := false
	for i := range res.Prog.Instrs {
		in := &res.Prog.Instrs[i]
		if in.Op == isa.OpSw && in.Sym == "g" {
			found = true
		}
	}
	if !found {
		t.Error("store to g not annotated")
	}
}

func TestCallingConvention(t *testing.T) {
	res := lower(t, `
func three(a, b: int, x: real): int { return a + b + trunc(x); }
func main() { print(three(1, 2, 0.5)); }
`)
	d := res.Prog.Disassemble()
	// Int args in r2, r3; fp arg in f4 (position-indexed).
	for _, want := range []string{"mov r2,", "mov r3,", "fmov f4,", "jal", "mov r1,"} {
		if !strings.Contains(d, want) {
			t.Errorf("calling convention missing %q in:\n%s", want, d)
		}
	}
	// Simulate for the actual answer.
	r, err := sim.Run(res.Prog, sim.Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Output[0].Equal(isa.IntValue(3)) {
		t.Errorf("three(1,2,0.5) = %v", r.Output[0])
	}
}

func TestFrameAndRecursion(t *testing.T) {
	res := lower(t, `
func sum(n: int): int {
	if n == 0 { return 0; }
	return n + sum(n - 1);
}
func main() { print(sum(63)); }
`)
	d := res.Prog.Disassemble()
	// Non-leaf functions save and restore ra.
	if !strings.Contains(d, "sw ra,") || !strings.Contains(d, "lw ra,") {
		t.Error("ra save/restore missing")
	}
	if !strings.Contains(d, "addi sp, sp, -") {
		t.Error("frame allocation missing")
	}
	r, err := sim.Run(res.Prog, sim.Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Output[0].Equal(isa.IntValue(63 * 64 / 2)) {
		t.Errorf("sum(63) = %v", r.Output[0])
	}
}

func TestBranchLayoutFallthrough(t *testing.T) {
	res := lower(t, `
var x: int;
func main() {
	if x > 0 { print(1); } else { print(2); }
	print(3);
}
`)
	// No unconditional jump should immediately target the next
	// instruction (wasted J), and every branch target must be a leader.
	leaders := map[int]bool{}
	for _, s := range res.BlockStarts {
		leaders[s] = true
	}
	for i := range res.Prog.Instrs {
		in := &res.Prog.Instrs[i]
		if in.Op == isa.OpJ && in.Target == i+1 {
			t.Errorf("useless jump at %d", i)
		}
		if in.Op.Info().Branch && in.Op != isa.OpJr {
			if !leaders[in.Target] {
				t.Errorf("branch at %d targets non-leader %d", i, in.Target)
			}
		}
	}
}

func TestFloatGlobalsInitialized(t *testing.T) {
	res := lower(t, `
var pi: real = 3.25;
func main() { print(pi); }
`)
	r, err := sim.Run(res.Prog, sim.Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Output[0].Equal(isa.FloatValue(3.25)) {
		t.Errorf("pi = %v", r.Output[0])
	}
}
