package compiler

import (
	"errors"
	"strings"
	"testing"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/verify"
)

const injectSrc = `
var x: int = 3;
func main() {
	var i, s: int;
	for i = 0 to 9 { s = s + i * x; }
	print(s);
}
`

// corruptVerified compiles with Verify on and the test hook corrupting the
// program after the named pass, and returns the resulting *verify.Error.
func corruptVerified(t *testing.T, pass string, corrupt func(p *isa.Program, mem []ir.MemRef)) *verify.Error {
	t.Helper()
	testHook = func(got string, p *isa.Program, mem []ir.MemRef) {
		if got == pass {
			corrupt(p, mem)
		}
	}
	defer func() { testHook = nil }()
	_, err := Compile(injectSrc, Options{Machine: machine.Base(), Level: O4, Verify: true})
	if err == nil {
		t.Fatalf("corrupted %s pass was not caught", pass)
	}
	var verr *verify.Error
	if !errors.As(err, &verr) {
		t.Fatalf("corrupted %s pass failed with a non-verifier error: %v", pass, err)
	}
	return verr
}

// TestVerifyBlamesBrokenPass deliberately breaks the output of individual
// passes and checks that Verify aborts the compile with diagnostics naming
// that pass — the property that makes the verifier useful for debugging.
func TestVerifyBlamesBrokenPass(t *testing.T) {
	wantPass := func(t *testing.T, verr *verify.Error, pass string, code verify.Code) {
		t.Helper()
		errs := verify.Errors(verr.Diags)
		if len(errs) == 0 {
			t.Fatal("no error diagnostics")
		}
		for _, d := range errs {
			if d.Pass != pass {
				t.Errorf("diagnostic blames pass %q, want %q: %s", d.Pass, pass, d)
			}
		}
		for _, d := range errs {
			if d.Code == code {
				return
			}
		}
		t.Errorf("no %s diagnostic, got %v", code, errs)
	}

	t.Run("codegen emits a bad register", func(t *testing.T) {
		verr := corruptVerified(t, "codegen", func(p *isa.Program, mem []ir.MemRef) {
			for k := range p.Instrs {
				if d := p.Instrs[k].Def(); d != isa.NoReg && !d.IsFP() {
					p.Instrs[k].Dst = isa.R(61) // reserved: outside pool and conventions
					return
				}
			}
			t.Fatal("no integer-defining instruction to corrupt")
		})
		wantPass(t, verr, "codegen", verify.CodeBadRegSplit)
	})

	t.Run("scheduler inverts a dependence", func(t *testing.T) {
		verr := corruptVerified(t, "sched", func(p *isa.Program, mem []ir.MemRef) {
			// Swap a producer with a later consumer from the same scheduling
			// region (no branch or label between them, else the corruption
			// changes region contents and trips V301 instead of V302).
			for k := 0; k < len(p.Instrs); k++ {
				d := p.Instrs[k].Def()
				if d == isa.NoReg || p.Instrs[k].Op.Info().Branch {
					continue
				}
				for j := k + 1; j < len(p.Instrs); j++ {
					if p.Instrs[j].Op.Info().Branch {
						break
					}
					if _, labeled := p.Symbols[j]; labeled {
						break
					}
					u1, u2 := p.Instrs[j].Uses()
					if u1 == d || u2 == d {
						p.Instrs[k], p.Instrs[j] = p.Instrs[j], p.Instrs[k]
						mem[k], mem[j] = mem[j], mem[k]
						return
					}
				}
			}
			t.Fatal("no same-region dependent pair to swap")
		})
		wantPass(t, verr, "sched", verify.CodeSchedDep)
	})

	t.Run("scheduler rewrites an instruction", func(t *testing.T) {
		verr := corruptVerified(t, "sched", func(p *isa.Program, mem []ir.MemRef) {
			for k := range p.Instrs {
				if p.Instrs[k].Op == isa.OpLi {
					p.Instrs[k].Imm++
					return
				}
			}
			t.Fatal("no li to corrupt")
		})
		wantPass(t, verr, "sched", verify.CodeSchedContent)
	})

	t.Run("error message names the pass", func(t *testing.T) {
		verr := corruptVerified(t, "codegen", func(p *isa.Program, mem []ir.MemRef) {
			p.Instrs[0].Dst = isa.R(63)
		})
		if msg := verr.Error(); !strings.Contains(msg, "codegen") {
			t.Errorf("error message does not name the pass: %q", msg)
		}
	})
}
