// Package compiler is the driver for the TL language system, mirroring the
// paper's §3 pipeline: parse, analyze, (optionally unroll), generate IR,
// optimize at one of the five Figure 4-8 levels, allocate registers, emit
// machine code, and schedule it for a particular machine description.
package compiler

import (
	"fmt"

	"ilp/internal/compiler/codegen"
	"ilp/internal/compiler/irgen"
	"ilp/internal/compiler/opt"
	"ilp/internal/compiler/regalloc"
	"ilp/internal/compiler/sched"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/verify"
)

// Level is the cumulative optimization level, matching the x-axis of
// Figure 4-8: "Each time we move to the right, we add a new set of
// optimizations. In order, these are pipeline scheduling, intra-block
// optimizations, global optimizations, and global register allocation."
type Level int

// Optimization levels.
const (
	// O0: no optimization at all; no scheduling.
	O0 Level = iota
	// O1: pipeline instruction scheduling.
	O1
	// O2: O1 + intra-block optimizations (constant folding, local CSE,
	// copy propagation, store forwarding, dead code).
	O2
	// O3: O2 + global optimizations (loop-invariant code motion, global
	// dead code).
	O3
	// O4: O3 + global register allocation of local and global variables
	// into home registers.
	O4
)

// String names the level like the figure's x-axis.
func (l Level) String() string {
	switch l {
	case O0:
		return "none"
	case O1:
		return "scheduling"
	case O2:
		return "scheduling+local"
	case O3:
		return "scheduling+local+global"
	case O4:
		return "scheduling+local+global+regalloc"
	}
	return fmt.Sprintf("O%d", int(l))
}

// Options configures a compilation.
type Options struct {
	// Machine is the target description: the scheduler uses its
	// latencies, the register allocator its temporary/home split.
	// Defaults to machine.Base().
	Machine *machine.Config
	// Level is the optimization level (default O4, the paper's standard
	// configuration for §4.1–4.3).
	Level Level
	// Unroll duplicates eligible innermost loop bodies by this factor
	// (≤ 1 disables).
	Unroll int
	// Careful enables the careful-unrolling pipeline: reassociation of
	// reduction chains and memory disambiguation in the scheduler
	// (§4.4: "careful unrolling goes farther").
	Careful bool
	// NoSchedule forces scheduling off regardless of level (used by the
	// scheduling ablation).
	NoSchedule bool
	// Verify runs the internal/verify static checker after every pass:
	// IR validation after each optimization, the machine-code verifier and
	// dataflow lints after code generation, and full schedule legality
	// (translation validation against the scheduler's own dependence
	// analysis) after scheduling. The first violation aborts compilation
	// with an error naming the pass that introduced it. Off by default:
	// the verified pipeline is the debugging configuration, the unverified
	// one the measurement configuration.
	Verify bool
}

// testHook, when non-nil, runs after the named machine-level pass
// ("codegen", "sched") completes and before its verification, so tests can
// corrupt the program deliberately and prove that Verify attributes the
// damage to the right pass.
var testHook func(pass string, p *isa.Program, mem []ir.MemRef)

// Compiled is a fully lowered program ready for simulation.
type Compiled struct {
	Prog *isa.Program
	// Mem annotates each instruction (parallel to Prog.Instrs).
	Mem []ir.MemRef
	// BlockStarts lists basic-block leader indices.
	BlockStarts []int
	// Info is the semantic analysis result (the reference interpreter
	// runs from it).
	Info *sem.Info
	// IR is the optimized intermediate form, for inspection and tests.
	IR *ir.Program
	// UnrolledLoops counts how many loops the unroller transformed.
	UnrolledLoops int
}

// Compile runs the full pipeline on TL source text.
func Compile(src string, opts Options) (*Compiled, error) {
	cfg := opts.Machine
	if cfg == nil {
		cfg = machine.Base()
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}

	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}

	unrolled := 0
	if opts.Unroll > 1 {
		unrolled = opt.UnrollLoops(prog, opts.Unroll)
	}

	irProg, err := irgen.Generate(info)
	if err != nil {
		return nil, err
	}
	if err := verifyIR(irProg, "irgen", opts); err != nil {
		return nil, err
	}

	if err := applyOptimizations(irProg, cfg, opts); err != nil {
		return nil, err
	}

	if err := irProg.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: optimizer produced invalid IR: %w", err)
	}

	res, err := codegen.Generate(irProg, cfg)
	if err != nil {
		return nil, err
	}
	if testHook != nil {
		testHook("codegen", res.Prog, res.Mem)
	}
	if opts.Verify {
		if err := verify.AsError(verify.Check(res.Prog, verify.Options{
			Machine: cfg, Mem: res.Mem, Pass: "codegen",
		})); err != nil {
			return nil, err
		}
	}

	if opts.Level >= O1 && !opts.NoSchedule {
		var preInstrs []isa.Instr
		var preMem []ir.MemRef
		if opts.Verify {
			preInstrs = append([]isa.Instr(nil), res.Prog.Instrs...)
			preMem = append([]ir.MemRef(nil), res.Mem...)
		}
		sched.Schedule(res.Prog, res.Mem, res.BlockStarts, cfg, sched.Options{Careful: opts.Careful})
		if testHook != nil {
			testHook("sched", res.Prog, res.Mem)
		}
		if opts.Verify {
			diags := verify.CheckSchedule(preInstrs, res.Prog.Instrs, preMem, res.Mem,
				res.BlockStarts, opts.Careful, "sched")
			diags = append(diags, verify.Check(res.Prog, verify.Options{
				Machine: cfg, Mem: res.Mem, Pass: "sched",
			})...)
			if err := verify.AsError(diags); err != nil {
				return nil, err
			}
		}
	}

	return &Compiled{
		Prog:          res.Prog,
		Mem:           res.Mem,
		BlockStarts:   res.BlockStarts,
		Info:          info,
		IR:            irProg,
		UnrolledLoops: unrolled,
	}, nil
}

// verifyIR validates the IR after the named pass when opts.Verify is set,
// so a malformed module is attributed to the pass that produced it.
func verifyIR(irProg *ir.Program, pass string, opts Options) error {
	if !opts.Verify {
		return nil
	}
	if err := irProg.Validate(); err != nil {
		return fmt.Errorf("verify: after %s: %w", pass, err)
	}
	return nil
}

func applyOptimizations(irProg *ir.Program, cfg *machine.Config, opts Options) error {
	check := func(pass string) error { return verifyIR(irProg, pass, opts) }
	local := func() error {
		for _, f := range irProg.Funcs {
			for round := 0; round < 3; round++ {
				changed := opt.ConstFold(f)
				if err := check("opt/constfold"); err != nil {
					return err
				}
				if opt.LocalCSE(f) {
					changed = true
				}
				if err := check("opt/cse"); err != nil {
					return err
				}
				if opt.DeadCode(f) {
					changed = true
				}
				if err := check("opt/dce"); err != nil {
					return err
				}
				if !changed {
					break
				}
			}
		}
		return nil
	}
	if opts.Level >= O2 {
		if err := local(); err != nil {
			return err
		}
	}
	if opts.Level >= O3 {
		for _, f := range irProg.Funcs {
			opt.LoopInvariant(f)
		}
		if err := check("opt/licm"); err != nil {
			return err
		}
		if err := local(); err != nil {
			return err
		}
	}
	if opts.Careful {
		// Reassociation needs store forwarding to expose reduction
		// chains as register chains; ensure at least one local round
		// even below O2.
		if opts.Level < O2 {
			if err := local(); err != nil {
				return err
			}
		}
		for _, f := range irProg.Funcs {
			opt.Reassociate(f)
		}
		if err := check("opt/reassoc"); err != nil {
			return err
		}
		if err := local(); err != nil {
			return err
		}
	}
	if opts.Level >= O4 {
		regalloc.PromoteHomes(irProg, cfg)
		if err := check("regalloc/promote"); err != nil {
			return err
		}
		// Clean the promotion moves: uses read home registers directly.
		if err := local(); err != nil {
			return err
		}
	}
	return nil
}
