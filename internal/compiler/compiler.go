// Package compiler is the driver for the TL language system, mirroring the
// paper's §3 pipeline: parse, analyze, (optionally unroll), generate IR,
// optimize at one of the five Figure 4-8 levels, allocate registers, emit
// machine code, and schedule it for a particular machine description.
package compiler

import (
	"fmt"

	"ilp/internal/compiler/codegen"
	"ilp/internal/compiler/irgen"
	"ilp/internal/compiler/opt"
	"ilp/internal/compiler/regalloc"
	"ilp/internal/compiler/sched"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
)

// Level is the cumulative optimization level, matching the x-axis of
// Figure 4-8: "Each time we move to the right, we add a new set of
// optimizations. In order, these are pipeline scheduling, intra-block
// optimizations, global optimizations, and global register allocation."
type Level int

// Optimization levels.
const (
	// O0: no optimization at all; no scheduling.
	O0 Level = iota
	// O1: pipeline instruction scheduling.
	O1
	// O2: O1 + intra-block optimizations (constant folding, local CSE,
	// copy propagation, store forwarding, dead code).
	O2
	// O3: O2 + global optimizations (loop-invariant code motion, global
	// dead code).
	O3
	// O4: O3 + global register allocation of local and global variables
	// into home registers.
	O4
)

// String names the level like the figure's x-axis.
func (l Level) String() string {
	switch l {
	case O0:
		return "none"
	case O1:
		return "scheduling"
	case O2:
		return "scheduling+local"
	case O3:
		return "scheduling+local+global"
	case O4:
		return "scheduling+local+global+regalloc"
	}
	return fmt.Sprintf("O%d", int(l))
}

// Options configures a compilation.
type Options struct {
	// Machine is the target description: the scheduler uses its
	// latencies, the register allocator its temporary/home split.
	// Defaults to machine.Base().
	Machine *machine.Config
	// Level is the optimization level (default O4, the paper's standard
	// configuration for §4.1–4.3).
	Level Level
	// Unroll duplicates eligible innermost loop bodies by this factor
	// (≤ 1 disables).
	Unroll int
	// Careful enables the careful-unrolling pipeline: reassociation of
	// reduction chains and memory disambiguation in the scheduler
	// (§4.4: "careful unrolling goes farther").
	Careful bool
	// NoSchedule forces scheduling off regardless of level (used by the
	// scheduling ablation).
	NoSchedule bool
}

// Compiled is a fully lowered program ready for simulation.
type Compiled struct {
	Prog *isa.Program
	// Mem annotates each instruction (parallel to Prog.Instrs).
	Mem []ir.MemRef
	// BlockStarts lists basic-block leader indices.
	BlockStarts []int
	// Info is the semantic analysis result (the reference interpreter
	// runs from it).
	Info *sem.Info
	// IR is the optimized intermediate form, for inspection and tests.
	IR *ir.Program
	// UnrolledLoops counts how many loops the unroller transformed.
	UnrolledLoops int
}

// Compile runs the full pipeline on TL source text.
func Compile(src string, opts Options) (*Compiled, error) {
	cfg := opts.Machine
	if cfg == nil {
		cfg = machine.Base()
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}

	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}

	unrolled := 0
	if opts.Unroll > 1 {
		unrolled = opt.UnrollLoops(prog, opts.Unroll)
	}

	irProg, err := irgen.Generate(info)
	if err != nil {
		return nil, err
	}

	applyOptimizations(irProg, cfg, opts)

	if err := irProg.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: optimizer produced invalid IR: %w", err)
	}

	res, err := codegen.Generate(irProg, cfg)
	if err != nil {
		return nil, err
	}

	if opts.Level >= O1 && !opts.NoSchedule {
		sched.Schedule(res.Prog, res.Mem, res.BlockStarts, cfg, sched.Options{Careful: opts.Careful})
	}

	return &Compiled{
		Prog:          res.Prog,
		Mem:           res.Mem,
		BlockStarts:   res.BlockStarts,
		Info:          info,
		IR:            irProg,
		UnrolledLoops: unrolled,
	}, nil
}

func applyOptimizations(irProg *ir.Program, cfg *machine.Config, opts Options) {
	local := func() {
		for _, f := range irProg.Funcs {
			for round := 0; round < 3; round++ {
				changed := opt.ConstFold(f)
				if opt.LocalCSE(f) {
					changed = true
				}
				if opt.DeadCode(f) {
					changed = true
				}
				if !changed {
					break
				}
			}
		}
	}
	if opts.Level >= O2 {
		local()
	}
	if opts.Level >= O3 {
		for _, f := range irProg.Funcs {
			opt.LoopInvariant(f)
		}
		local()
	}
	if opts.Careful {
		// Reassociation needs store forwarding to expose reduction
		// chains as register chains; ensure at least one local round
		// even below O2.
		if opts.Level < O2 {
			local()
		}
		for _, f := range irProg.Funcs {
			opt.Reassociate(f)
		}
		local()
	}
	if opts.Level >= O4 {
		regalloc.PromoteHomes(irProg, cfg)
		// Clean the promotion moves: uses read home registers directly.
		local()
	}
}
