package compiler

import (
	"fmt"
	"testing"

	"ilp/internal/isa"
	"ilp/internal/lang/interp"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/sim"
)

// interpret runs the reference interpreter on the source.
func interpret(t *testing.T, src string) []isa.Value {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	out, err := interp.Run(info)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return out
}

// simulate compiles with opts and runs on the machine embedded in opts.
// Every compile in the test suite runs with the static verifier on: the
// golden tests double as the verifier's regression corpus.
func simulate(t *testing.T, src string, opts Options) (*Compiled, *sim.Result) {
	t.Helper()
	opts.Verify = true
	c, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile (%+v): %v", opts, err)
	}
	cfg := opts.Machine
	if cfg == nil {
		cfg = machine.Base()
	}
	r, err := sim.Run(c.Prog, sim.Options{Machine: cfg})
	if err != nil {
		t.Fatalf("sim (%+v): %v\n%s", opts, err, c.Prog.Disassemble())
	}
	return c, r
}

func checkSame(t *testing.T, label string, got, want []isa.Value, approx bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		ok := got[i].Equal(want[i])
		if approx {
			ok = got[i].ApproxEqual(want[i], 1e-9)
		}
		if !ok {
			t.Errorf("%s: output[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// differential compiles the program at every optimization level, on several
// machine descriptions, and compares simulated output with the interpreter.
func differential(t *testing.T, name, src string) {
	t.Helper()
	want := interpret(t, src)
	machines := []*machine.Config{
		machine.Base(),
		machine.MultiTitan(),
		machine.CRAY1(),
		machine.IdealSuperscalar(4),
		machine.Superpipelined(3),
	}
	for lvl := O0; lvl <= O4; lvl++ {
		for _, m := range machines {
			label := fmt.Sprintf("%s/%v/%s", name, lvl, m.Name)
			_, r := simulate(t, src, Options{Machine: m.Clone(), Level: lvl})
			checkSame(t, label, r.Output, want, false)
		}
	}
	// Unrolled variants.
	for _, k := range []int{2, 4} {
		label := fmt.Sprintf("%s/unroll%d", name, k)
		_, r := simulate(t, src, Options{Machine: machine.Base(), Level: O4, Unroll: k})
		checkSame(t, label, r.Output, want, false)
		label = fmt.Sprintf("%s/unroll%d-careful", name, k)
		_, r = simulate(t, src, Options{Machine: machine.Base(), Level: O4, Unroll: k, Careful: true})
		checkSame(t, label, r.Output, want, true)
	}
}

func TestDifferentialBasics(t *testing.T) {
	differential(t, "arith", `
func main() {
	var a, b: int;
	a = 6; b = 7;
	print(a * b + a / b - a % b);
	print((a + b) * (a - b));
	var x: real;
	x = 2.0;
	print(x * x + 1.0 / x - x);
	print(float(a) * 1.5);
	print(trunc(9.99));
	print(iabs(3 - 10));
}
`)
}

func TestDifferentialControlFlow(t *testing.T) {
	differential(t, "control", `
var limit: int = 12;
func collatz(n: int): int {
	var steps: int;
	steps = 0;
	while n != 1 {
		if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}
func main() {
	var i: int;
	for i = 1 to limit { print(collatz(i)); }
}
`)
}

func TestDifferentialArrays(t *testing.T) {
	differential(t, "arrays", `
var a[32]: int;
var m[4, 4]: real;
func main() {
	var i, j: int;
	for i = 0 to 31 { a[i] = i * i - 5 * i; }
	var s: int;
	s = 0;
	for i = 0 to 31 { s = s + a[i]; }
	print(s);
	for i = 0 to 3 {
		for j = 0 to 3 {
			m[i, j] = float(i) * 10.0 + float(j);
		}
	}
	var tr: real;
	tr = 0.0;
	for i = 0 to 3 { tr = tr + m[i, i]; }
	print(tr);
	print(a[0] + a[31]);
}
`)
}

func TestDifferentialRecursionAndCalls(t *testing.T) {
	differential(t, "recursion", `
var depth: int;
func ack(m, n: int): int {
	if m == 0 { return n + 1; }
	if n == 0 { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
func fib(n: int): int {
	if n < 2 { return n; }
	return fib(n - 1) + fib(n - 2);
}
func scale(x: real, k: real): real { return x * k; }
func main() {
	print(ack(2, 3));
	print(fib(12));
	print(scale(scale(2.0, 3.0), 0.5));
}
`)
}

func TestDifferentialGlobalsAndHomes(t *testing.T) {
	// Exercises global register allocation: hot globals, parameter
	// promotion, and a recursive function whose locals must stay in
	// memory.
	differential(t, "globals", `
var counter: int = 100;
var accum: real = 0.5;
func bump(amount: int) {
	counter = counter + amount;
}
func deep(n: int): int {
	var local: int;
	local = n * 2;
	if n > 0 {
		local = local + deep(n - 1);
	}
	return local;
}
func main() {
	var i: int;
	for i = 1 to 10 { bump(i); }
	print(counter);
	accum = accum * 2.0;
	print(accum);
	print(deep(5));
}
`)
}

func TestDifferentialReductions(t *testing.T) {
	// Reduction chains: the careful pipeline reassociates these, so the
	// approximate comparison path matters here.
	differential(t, "reductions", `
var x[64]: real;
var y[64]: real;
func main() {
	var i: int;
	for i = 0 to 63 {
		x[i] = float(i) * 0.25;
		y[i] = float(63 - i) * 0.5;
	}
	var dot: real;
	dot = 0.0;
	for i = 0 to 63 { dot = dot + x[i] * y[i]; }
	print(dot);
	var prod: real;
	prod = 1.0;
	for i = 1 to 8 { prod = prod * (1.0 + float(i) * 0.125); }
	print(prod);
}
`)
}

func TestDifferentialDaxpyStyle(t *testing.T) {
	// The linpack inner loop shape: y[i] = y[i] + a*x[i], with stores
	// that careful mode must disambiguate from the next copy's loads.
	differential(t, "daxpy", `
var x[128]: real;
var y[128]: real;
func main() {
	var i: int;
	for i = 0 to 127 {
		x[i] = float(i % 7) + 0.5;
		y[i] = float(i % 11) * 2.0;
	}
	var a: real;
	a = 2.5;
	for i = 0 to 127 {
		y[i] = y[i] + a * x[i];
	}
	var s: real;
	s = 0.0;
	for i = 0 to 127 { s = s + y[i]; }
	print(s);
}
`)
}

func TestDifferentialShortCircuit(t *testing.T) {
	differential(t, "shortcircuit", `
var zero: int;
func boom(): bool { return 1 / zero == 0; }
func main() {
	var p: bool;
	p = false && boom();
	if !p { print(1); }
	p = true || boom();
	if p { print(2); }
	var a, b: int;
	a = 3; b = 4;
	if a < b && b < 10 || a == 0 { print(3); }
	p = a > b;
	print(5);
}
`)
}

func TestDifferentialBreakAndWhile(t *testing.T) {
	differential(t, "break", `
var probe[50]: int;
func main() {
	var i, found: int;
	found = -1;
	probe[37] = 9;
	i = 0;
	while i < 50 {
		if probe[i] == 9 { found = i; break; }
		i = i + 1;
	}
	print(found);
	var c: int;
	c = 0;
	for i = 0 to 99 {
		if i % 3 == 0 { c = c + 1; }
	}
	print(c);
}
`)
}

func TestDifferentialMathBuiltins(t *testing.T) {
	differential(t, "math", `
func main() {
	var t: real;
	t = 0.5;
	print(sqrt(t * 2.0));
	print(sin(t) * sin(t) + cos(t) * cos(t));
	print(atan(1.0) * 4.0);
	print(exp(0.0));
	print(log(exp(2.0)));
	print(abs(-1.25));
}
`)
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`func main() { x = 1; }`,
		`func main() { `,
		`var a[2]: bool; func main() {}`,
	}
	for _, src := range bad {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("%q: expected compile error", src)
		}
	}
}

func TestOptimizationReducesInstructions(t *testing.T) {
	src := `
var a[64]: int;
var total: int;
func main() {
	var i: int;
	for i = 0 to 63 { a[i] = i * 2; }
	for i = 0 to 63 { total = total + a[i] + a[i]; }
	print(total);
}
`
	counts := map[Level]int64{}
	for lvl := O0; lvl <= O4; lvl++ {
		_, r := simulate(t, src, Options{Machine: machine.Base(), Level: lvl})
		counts[lvl] = r.Instructions
	}
	if !(counts[O4] < counts[O0]) {
		t.Errorf("O4 (%d instrs) not smaller than O0 (%d)", counts[O4], counts[O0])
	}
	if !(counts[O2] <= counts[O1]) {
		t.Errorf("local opt grew the program: O2 %d > O1 %d", counts[O2], counts[O1])
	}
}

func TestSchedulingImprovesLatencyBoundCode(t *testing.T) {
	// Two independent chains on a long-latency machine: scheduling should
	// interleave them.
	src := `
var x[32]: real;
var y[32]: real;
func main() {
	var i: int;
	for i = 0 to 31 { x[i] = float(i) + 0.25; y[i] = float(i) * 0.5; }
	var s1, s2: real;
	s1 = 0.0; s2 = 0.0;
	for i = 0 to 31 {
		s1 = s1 + x[i] * 1.5;
		s2 = s2 + y[i] * 2.5;
	}
	print(s1 + s2);
}
`
	m := machine.MultiTitan()
	_, unsched := simulate(t, src, Options{Machine: m.Clone(), Level: O4, NoSchedule: true})
	_, sched := simulate(t, src, Options{Machine: m.Clone(), Level: O4})
	if !(float64(sched.MinorCycles) < float64(unsched.MinorCycles)) {
		t.Errorf("scheduling did not help: %d vs %d minor cycles", sched.MinorCycles, unsched.MinorCycles)
	}
}

func TestUnrollingHappens(t *testing.T) {
	src := `
var v[100]: int;
func main() {
	var i, s: int;
	s = 0;
	for i = 0 to 99 { v[i] = i; }
	for i = 0 to 99 { s = s + v[i]; }
	print(s);
}
`
	c, err := Compile(src, Options{Machine: machine.Base(), Level: O4, Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.UnrolledLoops != 2 {
		t.Errorf("unrolled %d loops, want 2", c.UnrolledLoops)
	}
	// Branch count should drop roughly 4x on the unrolled version.
	r4, err := sim.Run(c.Prog, sim.Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := Compile(src, Options{Machine: machine.Base(), Level: O4})
	r1, err := sim.Run(c1.Prog, sim.Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	b1 := r1.ClassCounts[isa.ClassBranch]
	b4 := r4.ClassCounts[isa.ClassBranch]
	if !(b4 < b1*2/3) {
		t.Errorf("unrolling did not reduce branches: %d vs %d", b4, b1)
	}
}

func TestCarefulUnrollingExposesParallelism(t *testing.T) {
	// On a wide ideal machine, careful 4x unrolling of a reduction must
	// beat naive 4x unrolling (reassociation breaks the serial chain and
	// disambiguation frees the loads), reproducing Figure 4-6's gap.
	src := `
var x[256]: real;
var y[256]: real;
func main() {
	var i: int;
	for i = 0 to 255 { x[i] = float(i) * 0.5; y[i] = 1.0; }
	var s: real;
	s = 0.0;
	for i = 0 to 255 {
		y[i] = y[i] + 2.0 * x[i];
		s = s + x[i];
	}
	print(s);
}
`
	m := machine.IdealSuperscalar(8)
	m.IntTemps, m.FPTemps = machine.WideTemps, machine.WideTemps
	m.IntHomes, m.FPHomes = 10, 10
	_, naive := simulate(t, src, Options{Machine: m.Clone(), Level: O4, Unroll: 4})
	_, careful := simulate(t, src, Options{Machine: m.Clone(), Level: O4, Unroll: 4, Careful: true})
	if !(careful.BaseCycles < naive.BaseCycles) {
		t.Errorf("careful unrolling (%1.f cycles) did not beat naive (%1.f cycles)",
			careful.BaseCycles, naive.BaseCycles)
	}
}
