package regalloc

import (
	"fmt"
	"sort"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// Assignment is the result of local allocation: every virtual register of
// the function either has a physical register or a spill slot.
type Assignment struct {
	// Phys maps virtual registers to physical registers; isa.NoReg when
	// spilled.
	Phys []isa.Reg
	// Slot maps virtual registers to spill-slot indices; -1 when in a
	// register.
	Slot []int
	// NumSlots is the number of spill slots the frame needs.
	NumSlots int
}

// PhysOf returns the physical register of a non-spilled vreg.
func (a *Assignment) PhysOf(r ir.Reg) isa.Reg { return a.Phys[r] }

// Spilled reports whether the vreg lives in a stack slot.
func (a *Assignment) Spilled(r ir.Reg) bool { return a.Slot[r] >= 0 }

// scratchPerClass is how many temporaries per file are reserved for
// spill-code addressing; the rest are allocatable.
const scratchPerClass = 2

// Allocate maps the function's virtual registers onto the machine's
// temporary registers with a linear scan over live intervals. Intervals
// that cross a call are spilled outright (every temporary is caller-save;
// home registers, being pinned, survive calls by construction). Spill code
// is inserted into the IR using the reserved scratch temporaries; after
// Allocate returns, every vreg in the (possibly grown) function has an
// entry in the Assignment.
func Allocate(f *ir.Func, cfg *machine.Config) (*Assignment, error) {
	type interval struct {
		reg        ir.Reg
		start, end int
		crossCall  bool
	}

	// 1. Linearize and index positions.
	order := f.ReversePostorder()
	pos := 0
	instrPos := map[*ir.Instr]int{}
	blockRange := map[*ir.Block][2]int{}
	var callPositions []int
	for _, b := range order {
		start := pos
		for i := range b.Instrs {
			in := &b.Instrs[i]
			instrPos[in] = pos
			if in.Kind == ir.KCall {
				callPositions = append(callPositions, pos)
			}
			pos += 2
		}
		blockRange[b] = [2]int{start, pos}
	}

	// 2. Liveness -> intervals.
	lv := f.ComputeLiveness()
	iv := map[ir.Reg]*interval{}
	touch := func(r ir.Reg, p int) {
		if r == ir.NoReg {
			return
		}
		it := iv[r]
		if it == nil {
			iv[r] = &interval{reg: r, start: p, end: p}
			return
		}
		if p < it.start {
			it.start = p
		}
		if p > it.end {
			it.end = p
		}
	}
	var buf [8]ir.Reg
	for _, b := range order {
		rng := blockRange[b]
		lv.In(b).ForEach(func(r ir.Reg) { touch(r, rng[0]) })
		lv.Out(b).ForEach(func(r ir.Reg) { touch(r, rng[1]) })
		for i := range b.Instrs {
			in := &b.Instrs[i]
			p := instrPos[in]
			for _, u := range in.Uses(buf[:0]) {
				touch(u, p)
			}
			if d := in.Def(); d != ir.NoReg {
				touch(d, p)
			}
		}
	}

	// 3. Mark call-crossing intervals.
	for _, it := range iv {
		for _, cp := range callPositions {
			if it.start < cp && cp < it.end {
				it.crossCall = true
				break
			}
		}
	}

	// 4. Pools (minus scratch registers).
	poolSize := map[ir.RegClass]int{
		ir.RInt: cfg.IntTemps - scratchPerClass,
		ir.RFP:  cfg.FPTemps - scratchPerClass,
	}
	for cl, n := range poolSize {
		if n < 0 {
			return nil, fmt.Errorf("regalloc: %s: class %d temp pool too small (%d temps, %d reserved for spill code)",
				f.Name, cl, n+scratchPerClass, scratchPerClass)
		}
	}
	scratch := func(cl ir.RegClass, i int) isa.Reg {
		return TempPhys(cl, poolSize[cl]+i)
	}

	// 5. Linear scan per class.
	a := &Assignment{}
	grow := func() {
		for len(a.Phys) < f.NumRegs() {
			a.Phys = append(a.Phys, isa.NoReg)
			a.Slot = append(a.Slot, -1)
		}
	}
	grow()
	newSlot := func() int {
		s := a.NumSlots
		a.NumSlots++
		return s
	}

	var all []*interval
	for _, it := range iv {
		all = append(all, it)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].start != all[j].start {
			return all[i].start < all[j].start
		}
		return all[i].reg < all[j].reg
	})

	for _, cl := range []ir.RegClass{ir.RInt, ir.RFP} {
		free := make([]bool, poolSize[cl])
		for i := range free {
			free[i] = true
		}
		physIdx := map[ir.Reg]int{}
		var active []*interval
		// Round-robin cursor: reusing the most-recently-freed register
		// would introduce artificial WAR/WAW dependencies between
		// independent computations — exactly the effect the paper warns
		// about ("using the same temporary register for two different
		// values in the same basic block introduces an artificial
		// dependency that can interfere with pipeline scheduling", §3).
		// Rotating through the pool spreads values across temporaries.
		cursor := 0
		expire := func(now int) {
			kept := active[:0]
			for _, it := range active {
				if it.end < now {
					free[physIdx[it.reg]] = true
					continue
				}
				kept = append(kept, it)
			}
			active = kept
		}
		for _, it := range all {
			if f.RegClassOf(it.reg) != cl {
				continue
			}
			if _, pinned := f.Pinned[it.reg]; pinned {
				continue
			}
			if it.crossCall {
				a.Slot[it.reg] = newSlot()
				continue
			}
			expire(it.start)
			found := -1
			for k := 0; k < len(free); k++ {
				i := (cursor + k) % len(free)
				if free[i] {
					found = i
					cursor = (i + 1) % len(free)
					break
				}
			}
			if found >= 0 {
				free[found] = false
				physIdx[it.reg] = found
				a.Phys[it.reg] = TempPhys(cl, found)
				active = append(active, it)
				continue
			}
			// Spill the active interval ending last, or this one.
			victim := it
			for _, act := range active {
				if act.end > victim.end {
					victim = act
				}
			}
			if victim != it {
				// Steal the victim's register.
				idx := physIdx[victim.reg]
				a.Phys[victim.reg] = isa.NoReg
				a.Slot[victim.reg] = newSlot()
				delete(physIdx, victim.reg)
				kept := active[:0]
				for _, act := range active {
					if act != victim {
						kept = append(kept, act)
					}
				}
				active = kept
				physIdx[it.reg] = idx
				a.Phys[it.reg] = TempPhys(cl, idx)
				active = append(active, it)
			} else {
				a.Slot[it.reg] = newSlot()
			}
		}
	}

	// 6. Insert spill code, rewriting spilled operands through scratch
	// registers. Calls and returns are left alone: the code generator
	// reloads spilled arguments directly into argument registers.
	scratchVreg := map[[2]int]ir.Reg{} // (class, i) -> pinned vreg
	getScratch := func(cl ir.RegClass, i int) ir.Reg {
		key := [2]int{int(cl), i}
		if r, ok := scratchVreg[key]; ok {
			return r
		}
		r := f.NewPinnedReg(cl, scratch(cl, i))
		scratchVreg[key] = r
		return r
	}

	for _, b := range f.Blocks {
		var out []ir.Instr
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Kind == ir.KCall || in.Kind == ir.KRet {
				out = append(out, in)
				continue
			}
			// Reload spilled sources.
			next := 0
			reloaded := map[ir.Reg]ir.Reg{}
			for _, u := range in.Uses(buf[:0]) {
				if a.Slot[u] < 0 {
					continue
				}
				if s, done := reloaded[u]; done {
					in.ReplaceUses(u, s)
					continue
				}
				s := getScratch(f.RegClassOf(u), next)
				next++
				out = append(out, ir.Instr{Kind: ir.KLoadSlot, Dst: s, Src1: ir.NoReg, Src2: ir.NoReg, Imm: int64(a.Slot[u])})
				in.ReplaceUses(u, s)
				reloaded[u] = s
			}
			// Redirect a spilled destination through scratch 0.
			d := in.Def()
			if d != ir.NoReg && a.Slot[d] >= 0 {
				s := getScratch(f.RegClassOf(d), 0)
				in.Dst = s
				out = append(out, in)
				out = append(out, ir.Instr{Kind: ir.KStoreSlot, Dst: ir.NoReg, Src1: s, Src2: ir.NoReg, Imm: int64(a.Slot[d])})
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}

	// 7. Finalize: pinned registers and bounds.
	grow()
	for v, phys := range f.Pinned {
		a.Phys[v] = phys
	}
	for v := 0; v < f.NumRegs(); v++ {
		if a.Phys[v] == isa.NoReg && a.Slot[v] < 0 {
			// Never-used register (e.g. optimized away): park it on a
			// scratch so the code generator never sees NoReg.
			a.Phys[v] = scratch(f.RegClassOf(ir.Reg(v)), 0)
		}
	}
	return a, nil
}
