// Package regalloc implements both halves of the paper's register story:
//
//   - PromoteHomes is the global register allocator [16]: it assigns the
//     "home location" part of the register file to local and global
//     variables, using call-graph interference the way Wall's link-time
//     allocator did (two functions' locals may share a home register only
//     if the functions can never be active simultaneously).
//
//   - Allocate is the local allocator: it maps expression temporaries
//     (virtual registers) onto the "temporaries" part of the register
//     file with a linear scan, spilling to stack slots when the paper's
//     16-temporary budget (or the 40-temporary unrolling budget) runs out.
//
// The split mirrors §3: "Our compiler divides the register set into two
// disjoint parts. It uses one part as temporaries for short-term
// expressions ... It uses the other part as home locations for local and
// global variables."
package regalloc

import (
	"sort"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/machine"
)

// PoolBase is the physical register pool layout: the 50 allocatable
// registers per file are r10..r59 (f10..f59), first the temporaries, then
// the home locations. Registers below PoolBase (and r60/r62) are fixed by
// the software conventions in package isa; the machine-code verifier
// rejects any register outside the conventions and the configured split.
const PoolBase = 10

// TempPhys returns the i'th temporary register of the class.
func TempPhys(c ir.RegClass, i int) isa.Reg {
	if c == ir.RFP {
		return isa.F(PoolBase + i)
	}
	return isa.R(PoolBase + i)
}

// HomePhys returns the i'th home register of the class given the
// temporary-pool size.
func HomePhys(c ir.RegClass, temps, i int) isa.Reg {
	if c == ir.RFP {
		return isa.F(PoolBase + temps + i)
	}
	return isa.R(PoolBase + temps + i)
}

// loopWeight is the per-nesting-level multiplier for usage estimates.
const loopWeight = 10

// candidate is a variable considered for a home register.
type candidate struct {
	sym    *ast.Symbol
	fn     *ir.Func // nil for globals
	weight int64
	class  ir.RegClass
}

// PromoteHomes performs global register allocation: the most-used global
// scalars and function locals/parameters move from memory into home
// registers. It rewrites LoadVar/StoreVar of promoted symbols into register
// moves and records the assignment in p.Promoted (the code generator uses
// it to initialize promoted globals and parameters).
func PromoteHomes(p *ir.Program, cfg *machine.Config) {
	if p.Promoted == nil {
		p.Promoted = map[*ast.Symbol]isa.Reg{}
	}
	interferes := buildInterference(p)
	recursive := findRecursive(p)

	// Gather candidates with static usage weights.
	var cands []*candidate
	bySym := map[*ast.Symbol]*candidate{}
	for _, f := range p.Funcs {
		depths := f.LoopDepths()
		for _, b := range f.Blocks {
			w := int64(1)
			for d := 0; d < depths[b] && d < 6; d++ {
				w *= loopWeight
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Kind != ir.KLoadVar && in.Kind != ir.KStoreVar {
					continue
				}
				sym := in.Sym
				c := bySym[sym]
				if c == nil {
					cl := ir.RInt
					if sym.Type == ast.Real {
						cl = ir.RFP
					}
					c = &candidate{sym: sym, class: cl}
					if sym.Kind != ast.SymGlobal {
						c.fn = f
					}
					bySym[sym] = c
					cands = append(cands, c)
				}
				c.weight += w
			}
		}
	}

	// Locals of recursive functions cannot live in home registers (a
	// second activation would clobber the first).
	eligible := cands[:0]
	for _, c := range cands {
		if c.fn != nil && recursive[c.fn.Name] {
			continue
		}
		eligible = append(eligible, c)
	}
	cands = eligible

	sort.SliceStable(cands, func(i, j int) bool { return cands[i].weight > cands[j].weight })

	// Greedy assignment into the home pools.
	type holder struct{ c *candidate }
	homes := map[ir.RegClass]int{ir.RInt: cfg.IntHomes, ir.RFP: cfg.FPHomes}
	temps := map[ir.RegClass]int{ir.RInt: cfg.IntTemps, ir.RFP: cfg.FPTemps}
	assigned := map[ir.RegClass][][]holder{
		ir.RInt: make([][]holder, cfg.IntHomes),
		ir.RFP:  make([][]holder, cfg.FPHomes),
	}
	conflict := func(a, b *candidate) bool {
		if a.fn == nil || b.fn == nil {
			return true // globals are live everywhere
		}
		if a.fn == b.fn {
			return true
		}
		return interferes(a.fn.Name, b.fn.Name)
	}
	for _, c := range cands {
		n := homes[c.class]
		for h := 0; h < n; h++ {
			ok := true
			for _, held := range assigned[c.class][h] {
				if conflict(c, held.c) {
					ok = false
					break
				}
			}
			if ok {
				assigned[c.class][h] = append(assigned[c.class][h], holder{c})
				p.Promoted[c.sym] = HomePhys(c.class, temps[c.class], h)
				break
			}
		}
	}

	// Rewrite accesses of promoted symbols to moves through pinned
	// virtual registers.
	for _, f := range p.Funcs {
		pinnedOf := map[*ast.Symbol]ir.Reg{}
		pin := func(sym *ast.Symbol, cl ir.RegClass) ir.Reg {
			if r, ok := pinnedOf[sym]; ok {
				return r
			}
			r := f.NewPinnedReg(cl, p.Promoted[sym])
			pinnedOf[sym] = r
			return r
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				var sym *ast.Symbol
				if in.Kind == ir.KLoadVar || in.Kind == ir.KStoreVar {
					sym = in.Sym
				} else {
					continue
				}
				phys, prom := p.Promoted[sym]
				if !prom {
					continue
				}
				_ = phys
				cl := ir.RInt
				op := isa.OpMov
				if sym.Type == ast.Real {
					cl, op = ir.RFP, isa.OpFmov
				}
				h := pin(sym, cl)
				if in.Kind == ir.KLoadVar {
					*in = ir.Instr{Kind: ir.KOp, Op: op, Dst: in.Dst, Src1: h, Src2: ir.NoReg}
				} else {
					*in = ir.Instr{Kind: ir.KOp, Op: op, Dst: h, Src1: in.Src1, Src2: ir.NoReg}
				}
			}
		}
	}
}

// buildInterference returns a predicate: can functions a and b be active at
// the same time (one reachable from the other in the call graph)?
func buildInterference(p *ir.Program) func(a, b string) bool {
	callees := map[string]map[string]bool{}
	for _, f := range p.Funcs {
		set := map[string]bool{}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Kind == ir.KCall {
					set[b.Instrs[i].Sym.Name] = true
				}
			}
		}
		callees[f.Name] = set
	}
	// Transitive closure (programs have few functions).
	reach := map[string]map[string]bool{}
	for name := range callees {
		r := map[string]bool{}
		stack := []string{name}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for callee := range callees[cur] {
				if !r[callee] {
					r[callee] = true
					stack = append(stack, callee)
				}
			}
		}
		reach[name] = r
	}
	return func(a, b string) bool {
		return reach[a][b] || reach[b][a]
	}
}

// findRecursive returns functions on call-graph cycles.
func findRecursive(p *ir.Program) map[string]bool {
	inter := buildInterference(p)
	out := map[string]bool{}
	for _, f := range p.Funcs {
		// f is recursive iff f can reach itself.
		callSelf := false
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Kind == ir.KCall {
					callee := b.Instrs[i].Sym.Name
					if callee == f.Name || inter(callee, f.Name) && reaches(p, callee, f.Name) {
						callSelf = true
					}
				}
			}
		}
		out[f.Name] = callSelf
	}
	return out
}

// reaches reports whether from can (transitively) call to.
func reaches(p *ir.Program, from, to string) bool {
	seen := map[string]bool{}
	var walk func(name string) bool
	walk = func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		f := p.FuncByName(name)
		if f == nil {
			return false
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Kind == ir.KCall {
					callee := b.Instrs[i].Sym.Name
					if callee == to || walk(callee) {
						return true
					}
				}
			}
		}
		return false
	}
	return walk(from)
}
