package regalloc

import (
	"testing"

	"ilp/internal/compiler/irgen"
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
)

func irFor(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Generate(info)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPoolLayoutDisjoint(t *testing.T) {
	// Temporaries and homes must never overlap, for either file.
	temps := 16
	seen := map[isa.Reg]bool{}
	for i := 0; i < temps; i++ {
		seen[TempPhys(ir.RInt, i)] = true
		seen[TempPhys(ir.RFP, i)] = true
	}
	for i := 0; i < 26; i++ {
		for _, cl := range []ir.RegClass{ir.RInt, ir.RFP} {
			h := HomePhys(cl, temps, i)
			if seen[h] {
				t.Fatalf("home register %v collides with a temporary", h)
			}
			seen[h] = true
		}
	}
	// Nothing may touch the reserved registers.
	for r := range seen {
		if r == isa.RZero || r == isa.RSP || r == isa.RRA || r == isa.RRet || r == isa.FRet {
			t.Fatalf("allocator pool contains reserved register %v", r)
		}
		if !r.IsFP() && r.Index() >= 2 && r.Index() < 10 {
			t.Fatalf("allocator pool contains argument register %v", r)
		}
	}
}

func TestPromoteHomesGlobals(t *testing.T) {
	prog := irFor(t, `
var hot: int;
var cold: int;
func main() {
	var i: int;
	for i = 0 to 999 { hot = hot + i; }
	cold = hot;
	print(cold);
}
`)
	cfg := machine.Base()
	PromoteHomes(prog, cfg)
	var hotReg, coldReg isa.Reg = isa.NoReg, isa.NoReg
	for sym, reg := range prog.Promoted {
		switch sym.Name {
		case "hot":
			hotReg = reg
		case "cold":
			coldReg = reg
		}
	}
	if hotReg == isa.NoReg {
		t.Fatal("hot global not promoted")
	}
	if coldReg != isa.NoReg && coldReg == hotReg {
		t.Error("two globals share a home register")
	}
	// Accesses rewritten to moves.
	main := prog.FuncByName("main")
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Kind == ir.KLoadVar || in.Kind == ir.KStoreVar) && in.Sym != nil && in.Sym.Name == "hot" {
				t.Errorf("access to promoted global survived: %s", in)
			}
		}
	}
}

func TestPromoteSkipsRecursiveLocals(t *testing.T) {
	prog := irFor(t, `
func fact(n: int): int {
	var acc: int;
	acc = n;
	if n > 1 { acc = acc * fact(n - 1); }
	return acc;
}
func main() { print(fact(10)); }
`)
	PromoteHomes(prog, machine.Base())
	for sym := range prog.Promoted {
		if sym.Name == "acc" || sym.Name == "n" {
			t.Errorf("recursive function's %s promoted to a home register", sym.Name)
		}
	}
}

func TestPromoteInterferenceAcrossCalls(t *testing.T) {
	prog := irFor(t, `
var total: int;
func leafA() {
	var x: int;
	for x = 0 to 99 { total = total + x; }
}
func leafB() {
	var y: int;
	for y = 0 to 99 { total = total + y; }
}
func caller() {
	var z: int;
	for z = 0 to 9 { leafA(); leafB(); }
}
func main() { caller(); print(total); }
`)
	PromoteHomes(prog, machine.Base())
	regs := map[string]isa.Reg{}
	for sym, reg := range prog.Promoted {
		regs[sym.Name] = reg
	}
	// caller's z must not share with leafA's x or leafB's y (caller is
	// active while they run); x and y may share (never simultaneously
	// active).
	if z, ok := regs["z"]; ok {
		if x, okx := regs["x"]; okx && x == z {
			t.Error("caller's local shares a home with its callee's")
		}
		if y, oky := regs["y"]; oky && y == z {
			t.Error("caller's local shares a home with its callee's")
		}
	}
	if tot, ok := regs["total"]; ok {
		for name, r := range regs {
			if name != "total" && r == tot {
				t.Errorf("global shares home register with %s", name)
			}
		}
	}
}

func TestAllocateAssignsEveryReg(t *testing.T) {
	prog := irFor(t, `
var a[64]: int;
func main() {
	var i, s: int;
	s = 0;
	for i = 0 to 63 { a[i] = i * 3 + 1; }
	for i = 0 to 63 { s = s + a[i]; }
	print(s);
}
`)
	cfg := machine.Base()
	for _, f := range prog.Funcs {
		a, err := Allocate(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < f.NumRegs(); v++ {
			if a.Phys[v] == isa.NoReg && a.Slot[v] < 0 {
				t.Errorf("%s: v%d has neither register nor slot", f.Name, v)
			}
			if a.Phys[v] != isa.NoReg && a.Slot[v] >= 0 {
				t.Errorf("%s: v%d has both register and slot", f.Name, v)
			}
		}
		if err := f.Validate(); err != nil {
			t.Errorf("%s: IR invalid after allocation: %v", f.Name, err)
		}
	}
}

func TestAllocateSpillsCallCrossers(t *testing.T) {
	prog := irFor(t, `
func g(x: int): int { return x + 1; }
func main() {
	var a, b: int;
	a = 5;
	b = g(2);
	print(a + b);
}
`)
	cfg := machine.Base()
	main := prog.FuncByName("main")
	a, err := Allocate(main, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Something must have been spilled: 'a' is live across the call (it
	// lives in memory as a local at this level, but the loaded value
	// crossing the call must hit a slot... at O0 locals are memory, so
	// check there is at least one slot OR no value actually crosses).
	// The robust assertion: allocation never leaves a call-crossing
	// interval in a temp. Verify via spill-code structure: any KLoadSlot
	// refers to a valid slot id.
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind == ir.KLoadSlot || in.Kind == ir.KStoreSlot {
				if int(in.Imm) < 0 || int(in.Imm) >= a.NumSlots {
					t.Errorf("slot %d out of range (%d slots)", in.Imm, a.NumSlots)
				}
			}
		}
	}
}

func TestAllocateTinyTempPool(t *testing.T) {
	// With the minimum pool (2 temps, both reserved for scratch),
	// everything spills but allocation still succeeds.
	prog := irFor(t, `
var v[16]: int;
func main() {
	var i: int;
	for i = 0 to 15 { v[i] = i * i + 2 * i + 1; }
	print(v[7]);
}
`)
	cfg := machine.Base()
	cfg.IntTemps, cfg.FPTemps = 2, 2
	main := prog.FuncByName("main")
	a, err := Allocate(main, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSlots == 0 {
		t.Error("expected spills with an empty allocatable pool")
	}
}

func TestRoundRobinSpreadsRegisters(t *testing.T) {
	// Independent computations should land in different temporaries, not
	// all reuse the first free one.
	prog := irFor(t, `
var o[8]: int;
func main() {
	o[0] = 1 + 2;
	o[1] = 3 + 4;
	o[2] = 5 + 6;
	o[3] = 7 + 8;
	print(o[0]);
}
`)
	cfg := machine.Base()
	main := prog.FuncByName("main")
	a, err := Allocate(main, cfg)
	if err != nil {
		t.Fatal(err)
	}
	used := map[isa.Reg]bool{}
	for v := 0; v < main.NumRegs(); v++ {
		if a.Phys[v] != isa.NoReg {
			used[a.Phys[v]] = true
		}
	}
	if len(used) < 4 {
		t.Errorf("allocator reused too aggressively: only %d distinct registers", len(used))
	}
}
