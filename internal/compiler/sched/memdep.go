// Package sched is the pipeline instruction scheduler of the paper's
// toolchain [17]: it reorders instructions within basic blocks, driven by
// the machine description, "so that the resulting stall time will be
// minimized" (§3).
//
// Its memory dependence analysis has two modes, mirroring §4.4:
//
//   - conservative (default): "the scheduler must assume that two memory
//     locations are the same unless it can prove otherwise" — any store
//     orders against any other variable or array access. Compiler-generated
//     spill slots are still disambiguated (they can never be aliased), and
//     program output stays in order.
//
//   - careful: the memory analysis of careful unrolling — distinct
//     variables and arrays are independent (TL has no pointers, so this is
//     the trivially-sharp version of the paper's "interprocedural alias
//     analysis"), and accesses to the same array are disambiguated by
//     symbolic affine addresses, "so that stores from early copies of the
//     loop do not interfere with loads in later copies".
package sched

import (
	"math"
	"sort"
	"strconv"

	"ilp/internal/ir"
	"ilp/internal/isa"
)

// linear is a symbolic address: a sum of opaque terms plus a constant.
type linear struct {
	terms []int32 // sorted opaque term ids; nil means pure constant
	c     int64
}

// appendKey appends l's canonical key to buf and returns it; keys are map
// lookups on the hot path, so they are built append-style into a reused
// buffer instead of allocating a string per call.
func (l linear) appendKey(buf []byte) []byte {
	for _, t := range l.terms {
		buf = strconv.AppendInt(buf, int64(t), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, ':')
	return strconv.AppendInt(buf, l.c, 10)
}

// sameBase reports whether two linear forms share exactly the same term
// multiset (so their difference is a compile-time constant).
func sameBase(a, b linear) bool {
	if len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// maxTerms bounds the linear form before collapsing to an opaque value.
const maxTerms = 6

// addrAnalysis tracks symbolic register values through a region so memory
// addresses can be compared.
type addrAnalysis struct {
	vals     map[isa.Reg]linear
	memo     map[string]int32  // expression key -> opaque term
	terms1   map[int32][]int32 // single-term slice cache (terms are immutable)
	kbuf     []byte            // scratch for building expression keys
	nextTerm int32
}

func newAddrAnalysis() *addrAnalysis {
	return &addrAnalysis{
		vals:   map[isa.Reg]linear{},
		memo:   map[string]int32{},
		terms1: map[int32][]int32{},
	}
}

// termLinear returns the canonical single-term linear for t. Term slices are
// never mutated downstream (mergeTerms copies), so one shared slice per term
// is safe and saves an allocation per opaque value.
func (a *addrAnalysis) termLinear(t int32) linear {
	s, ok := a.terms1[t]
	if !ok {
		s = []int32{t}
		a.terms1[t] = s
	}
	return linear{terms: s}
}

// valueOf returns the symbolic value of a register (registers not yet
// written in the region get a per-register opaque term).
func (a *addrAnalysis) valueOf(r isa.Reg) linear {
	if r == isa.RZero {
		return linear{}
	}
	if v, ok := a.vals[r]; ok {
		return v
	}
	v := a.termLinear(-int32(r) - 1)
	a.vals[r] = v
	return v
}

// opaque returns a canonical fresh term for the expression key (a scratch
// byte slice; the string copy happens only when a new term is interned).
func (a *addrAnalysis) opaque(key []byte) linear {
	t, ok := a.memo[string(key)]
	if !ok {
		a.nextTerm++
		t = a.nextTerm
		a.memo[string(key)] = t
	}
	return a.termLinear(t)
}

func mergeTerms(x, y []int32) []int32 {
	out := make([]int32, 0, len(x)+len(y))
	out = append(out, x...)
	out = append(out, y...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// step updates the analysis for one instruction and returns the symbolic
// address if it is a data-memory access (ok=false otherwise).
func (a *addrAnalysis) step(in *isa.Instr) (addr linear, isMem bool) {
	info := in.Op.Info()
	if info.Load || (info.Store && in.Op != isa.OpPrinti && in.Op != isa.OpPrintf) {
		base := a.valueOf(in.Src1)
		addr = linear{terms: base.terms, c: base.c + in.Imm}
		isMem = true
	}

	// Transfer function for the destination.
	if !info.HasDst || in.Dst == isa.NoReg || in.Dst == isa.RZero {
		return addr, isMem
	}
	var v linear
	switch in.Op {
	case isa.OpLi:
		v = linear{c: in.Imm}
	case isa.OpMov:
		v = a.valueOf(in.Src1)
	case isa.OpAddi:
		s := a.valueOf(in.Src1)
		v = linear{terms: s.terms, c: s.c + in.Imm}
	case isa.OpAdd:
		s1, s2 := a.valueOf(in.Src1), a.valueOf(in.Src2)
		if len(s1.terms)+len(s2.terms) <= maxTerms {
			v = linear{terms: mergeTerms(s1.terms, s2.terms), c: s1.c + s2.c}
		} else {
			buf := append(a.kbuf[:0], "add:"...)
			buf = s1.appendKey(buf)
			buf = append(buf, '+')
			buf = s2.appendKey(buf)
			a.kbuf = buf
			v = a.opaque(buf)
		}
	case isa.OpSub:
		s1, s2 := a.valueOf(in.Src1), a.valueOf(in.Src2)
		if len(s2.terms) == 0 {
			v = linear{terms: s1.terms, c: s1.c - s2.c}
		} else {
			buf := append(a.kbuf[:0], "sub:"...)
			buf = s1.appendKey(buf)
			buf = append(buf, '-')
			buf = s2.appendKey(buf)
			a.kbuf = buf
			v = a.opaque(buf)
		}
	case isa.OpSlli, isa.OpMul, isa.OpSll:
		// Memoized opaque: identical shift/multiply expressions get the
		// same term, so scaled indices still compare equal.
		s1 := a.valueOf(in.Src1)
		buf := append(a.kbuf[:0], in.Op.String()...)
		buf = append(buf, ':')
		buf = s1.appendKey(buf)
		buf = append(buf, ':')
		if in.Op == isa.OpSlli {
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, in.Imm, 10)
		} else {
			buf = a.valueOf(in.Src2).appendKey(buf)
		}
		a.kbuf = buf
		v = a.opaque(buf)
	default:
		// Any other producer: a fresh opaque value per destination
		// definition site is unnecessary — memoizing on operands keeps
		// equal expressions equal, which is strictly more precise and
		// still sound within a straight-line region. The float immediate
		// keys on its bit pattern (injective, unlike decimal formatting).
		buf := append(a.kbuf[:0], in.Op.String()...)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, in.Imm, 10)
		buf = append(buf, ':')
		buf = strconv.AppendUint(buf, math.Float64bits(in.FImm), 16)
		if info.NSrc >= 1 {
			buf = append(buf, ':')
			buf = a.valueOf(in.Src1).appendKey(buf)
		}
		if info.NSrc >= 2 {
			buf = append(buf, ':')
			buf = a.valueOf(in.Src2).appendKey(buf)
		}
		a.kbuf = buf
		v = a.opaque(buf)
	}
	a.vals[in.Dst] = v
	return addr, isMem
}

// memAccess is the dependence-relevant footprint of one instruction.
type memAccess struct {
	ref     ir.MemRef
	isStore bool
	addr    linear
	hasAddr bool
}

// depends reports whether access j (later) must stay ordered after access i
// (earlier).
func depends(i, j memAccess, careful bool) bool {
	a, b := i.ref, j.ref
	// Output stays in program order; it never conflicts with data memory.
	if a.Kind == ir.MemOut || b.Kind == ir.MemOut {
		return a.Kind == ir.MemOut && b.Kind == ir.MemOut
	}
	if a.Kind == ir.MemNone || b.Kind == ir.MemNone {
		return false
	}
	// Two loads never conflict.
	if !i.isStore && !j.isStore {
		return false
	}
	// Spill slots are compiler-private: exact disambiguation always.
	if a.Kind == ir.MemSpill || b.Kind == ir.MemSpill {
		return a.Kind == ir.MemSpill && b.Kind == ir.MemSpill && a.Slot == b.Slot
	}
	// Distinct named arrays never overlap, even for the baseline
	// scheduler (array variables cannot alias in Modula-2 either); the
	// ambiguity the paper describes is scalars versus array elements,
	// because VAR parameters can alias scalars.
	if a.Kind == ir.MemArray && b.Kind == ir.MemArray && a.Sym != b.Sym {
		return false
	}
	if !careful {
		// Conservative otherwise: a store conflicts with any other
		// variable or same-array access, like the paper's baseline
		// scheduler ("the scheduler must assume that two memory
		// locations are the same unless it can prove otherwise").
		return true
	}
	// Careful mode: distinct symbols cannot alias.
	if a.Sym != b.Sym {
		return false
	}
	if a.Kind == ir.MemScalar {
		return true // same scalar: same address
	}
	// Same array: affine disambiguation.
	if i.hasAddr && j.hasAddr && sameBase(i.addr, j.addr) {
		return i.addr.c == j.addr.c
	}
	return true
}
