package sched

import (
	"testing"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/machine"
)

// mk builds a program from instructions with a uniform mem annotation.
func mk(instrs []isa.Instr, mem []ir.MemRef) (*isa.Program, []ir.MemRef, []int) {
	if mem == nil {
		mem = make([]ir.MemRef, len(instrs))
	}
	p := &isa.Program{Instrs: instrs, Symbols: map[int]string{}}
	return p, mem, []int{0}
}

func indexOf(p *isa.Program, pred func(*isa.Instr) bool) int {
	for i := range p.Instrs {
		if pred(&p.Instrs[i]) {
			return i
		}
	}
	return -1
}

func TestSchedulerInterleavesChains(t *testing.T) {
	// Two independent multiply chains on MultiTitan (FP latency 3):
	// unscheduled order groups each chain; the scheduler should
	// interleave them so results are not back-to-back.
	r := func(i int) isa.Reg { return isa.F(10 + i) }
	instrs := []isa.Instr{
		{Op: isa.OpFmul, Dst: r(2), Src1: r(0), Src2: r(0)},
		{Op: isa.OpFmul, Dst: r(3), Src1: r(2), Src2: r(2)}, // chain 1 dependent
		{Op: isa.OpFmul, Dst: r(5), Src1: r(4), Src2: r(4)},
		{Op: isa.OpFmul, Dst: r(6), Src1: r(5), Src2: r(5)}, // chain 2 dependent
		{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	p, mem, starts := mk(instrs, nil)
	Schedule(p, mem, starts, machine.MultiTitan(), Options{})
	// The two chain heads should both come before either chain tail.
	h1 := indexOf(p, func(in *isa.Instr) bool { return in.Dst == r(2) })
	h2 := indexOf(p, func(in *isa.Instr) bool { return in.Dst == r(5) })
	t1 := indexOf(p, func(in *isa.Instr) bool { return in.Dst == r(3) })
	t2 := indexOf(p, func(in *isa.Instr) bool { return in.Dst == r(6) })
	if !(h1 < t1 && h2 < t2) {
		t.Fatal("dependences violated")
	}
	if !(h2 < t1 || h1 < t2) {
		t.Errorf("chains not interleaved: order h1=%d t1=%d h2=%d t2=%d", h1, t1, h2, t2)
	}
}

func TestSchedulerKeepsBranchLast(t *testing.T) {
	instrs := []isa.Instr{
		{Op: isa.OpLi, Dst: isa.R(10), Src1: isa.NoReg, Src2: isa.NoReg, Imm: 1},
		{Op: isa.OpLi, Dst: isa.R(11), Src1: isa.NoReg, Src2: isa.NoReg, Imm: 2},
		{Op: isa.OpBeq, Dst: isa.NoReg, Src1: isa.R(10), Src2: isa.R(11), Target: 0},
		{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	p, mem, starts := mk(instrs, nil)
	Schedule(p, mem, starts, machine.MultiTitan(), Options{})
	if p.Instrs[2].Op != isa.OpBeq {
		t.Errorf("branch moved from region end: %v", p.Instrs)
	}
	if p.Instrs[2].Target != 0 {
		t.Error("branch target corrupted")
	}
}

func TestSchedulerRespectsRegisterDeps(t *testing.T) {
	// WAR: the write to r10 must stay after the read.
	instrs := []isa.Instr{
		{Op: isa.OpMov, Dst: isa.R(11), Src1: isa.R(10), Src2: isa.NoReg},
		{Op: isa.OpLi, Dst: isa.R(10), Src1: isa.NoReg, Src2: isa.NoReg, Imm: 5},
		{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	p, mem, starts := mk(instrs, nil)
	Schedule(p, mem, starts, machine.CRAY1(), Options{})
	mov := indexOf(p, func(in *isa.Instr) bool { return in.Op == isa.OpMov })
	liI := indexOf(p, func(in *isa.Instr) bool { return in.Op == isa.OpLi })
	if !(mov < liI) {
		t.Error("WAR dependence violated")
	}
}

func memProgram(careful bool) (*isa.Program, []ir.MemRef, []int) {
	arrA := &ast.Symbol{Name: "A", Kind: ast.SymArray, Type: ast.Real, Dims: []int{64}}
	arrB := &ast.Symbol{Name: "B", Kind: ast.SymArray, Type: ast.Real, Dims: []int{64}}
	// sw A[r10+0]; lf from B; lf from A[r10+1]; lf from A[r10+0]
	instrs := []isa.Instr{
		{Op: isa.OpSf, Dst: isa.NoReg, Src1: isa.R(10), Src2: isa.F(12), Imm: 100, Sym: "A"},
		{Op: isa.OpLf, Dst: isa.F(13), Src1: isa.R(11), Src2: isa.NoReg, Imm: 200, Sym: "B"},
		{Op: isa.OpLf, Dst: isa.F(14), Src1: isa.R(10), Src2: isa.NoReg, Imm: 101, Sym: "A"},
		{Op: isa.OpLf, Dst: isa.F(15), Src1: isa.R(10), Src2: isa.NoReg, Imm: 100, Sym: "A"},
		{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	mem := []ir.MemRef{
		{Kind: ir.MemArray, Sym: arrA},
		{Kind: ir.MemArray, Sym: arrB},
		{Kind: ir.MemArray, Sym: arrA},
		{Kind: ir.MemArray, Sym: arrA},
		{},
	}
	p := &isa.Program{Instrs: instrs, Symbols: map[int]string{}}
	return p, mem, []int{0}
}

func TestMemdepDistinctArraysAlwaysFree(t *testing.T) {
	// The load from B may move above the store to A in either mode.
	p, mem, starts := memProgram(false)
	// Give the store a long-latency producer so the scheduler wants to
	// hoist loads: actually just check dependence analysis directly.
	Schedule(p, mem, starts, machine.MultiTitan(), Options{})
	// Same-array same-address load must stay after the store.
	st := indexOf(p, func(in *isa.Instr) bool { return in.Op == isa.OpSf })
	same := indexOf(p, func(in *isa.Instr) bool { return in.Dst == isa.F(15) })
	if !(st < same) {
		t.Error("conservative mode: load of stored address moved above store")
	}
	// And in conservative mode the A[+1] load must also stay put.
	off := indexOf(p, func(in *isa.Instr) bool { return in.Dst == isa.F(14) })
	if !(st < off) {
		t.Error("conservative mode: same-array load moved above store")
	}
}

func TestMemdepCarefulDisambiguates(t *testing.T) {
	p, mem, starts := memProgram(true)
	Schedule(p, mem, starts, machine.MultiTitan(), Options{Careful: true})
	st := indexOf(p, func(in *isa.Instr) bool { return in.Op == isa.OpSf })
	same := indexOf(p, func(in *isa.Instr) bool { return in.Dst == isa.F(15) })
	if !(st < same) {
		t.Error("careful mode: load of the SAME address moved above the store")
	}
	// A[+1] differs by a constant offset from the same base: free to move.
	// (The list scheduler moves it if profitable; at minimum the
	// dependence must not exist — check via the analysis directly.)
	aa := newAddrAnalysis()
	var accs []memAccess
	for i := range p.Instrs {
		in := &p.Instrs[i]
		addr, isMem := aa.step(in)
		accs = append(accs, memAccess{ref: mem[i], isStore: in.Op.Info().Store, addr: addr, hasAddr: isMem})
	}
	// Recompute indices post-schedule: find accesses by offset constant.
	var stAcc, offAcc, sameAcc memAccess
	for i := range p.Instrs {
		switch {
		case p.Instrs[i].Op == isa.OpSf:
			stAcc = accs[i]
		case p.Instrs[i].Dst == isa.F(14):
			offAcc = accs[i]
		case p.Instrs[i].Dst == isa.F(15):
			sameAcc = accs[i]
		}
	}
	if depends(stAcc, offAcc, true) {
		t.Error("careful: store A[+100] vs load A[+101] should be independent")
	}
	if !depends(stAcc, sameAcc, true) {
		t.Error("careful: store A[+100] vs load A[+100] must stay dependent")
	}
}

func TestMemdepSpillSlots(t *testing.T) {
	s0 := memAccess{ref: ir.MemRef{Kind: ir.MemSpill, Slot: 0}, isStore: true}
	l0 := memAccess{ref: ir.MemRef{Kind: ir.MemSpill, Slot: 0}}
	l1 := memAccess{ref: ir.MemRef{Kind: ir.MemSpill, Slot: 1}}
	scalar := memAccess{ref: ir.MemRef{Kind: ir.MemScalar, Sym: &ast.Symbol{Name: "x"}}, isStore: true}
	if !depends(s0, l0, false) {
		t.Error("same spill slot store->load must be ordered")
	}
	if depends(s0, l1, false) {
		t.Error("distinct spill slots must be independent")
	}
	if depends(scalar, l1, false) || depends(s0, scalar, false) {
		t.Error("spill slots never alias program memory")
	}
}

func TestMemdepOutputOrder(t *testing.T) {
	p1 := memAccess{ref: ir.MemRef{Kind: ir.MemOut}, isStore: true}
	p2 := memAccess{ref: ir.MemRef{Kind: ir.MemOut}, isStore: true}
	load := memAccess{ref: ir.MemRef{Kind: ir.MemArray, Sym: &ast.Symbol{Name: "A"}}}
	if !depends(p1, p2, true) {
		t.Error("prints must stay ordered")
	}
	if depends(p1, load, true) || depends(load, p1, false) {
		t.Error("prints are independent of data memory")
	}
}

func TestAddrAnalysisLinearForms(t *testing.T) {
	aa := newAddrAnalysis()
	// r11 = r10 + 1; loads a[r10] and a[r11] share a base.
	step := func(in isa.Instr) (linear, bool) { return aa.step(&in) }
	step(isa.Instr{Op: isa.OpAddi, Dst: isa.R(11), Src1: isa.R(10), Src2: isa.NoReg, Imm: 1})
	a1, ok1 := step(isa.Instr{Op: isa.OpLw, Dst: isa.R(12), Src1: isa.R(10), Src2: isa.NoReg, Imm: 100})
	a2, ok2 := step(isa.Instr{Op: isa.OpLw, Dst: isa.R(13), Src1: isa.R(11), Src2: isa.NoReg, Imm: 100})
	if !ok1 || !ok2 {
		t.Fatal("loads not recognized as memory")
	}
	if !sameBase(a1, a2) {
		t.Fatalf("a[i] and a[i+1] should share a base: %v vs %v", a1, a2)
	}
	if a2.c-a1.c != 1 {
		t.Errorf("offset difference = %d, want 1", a2.c-a1.c)
	}
	// Memoized scaling: two identical slli chains compare equal.
	step(isa.Instr{Op: isa.OpSlli, Dst: isa.R(20), Src1: isa.R(10), Src2: isa.NoReg, Imm: 3})
	step(isa.Instr{Op: isa.OpSlli, Dst: isa.R(21), Src1: isa.R(10), Src2: isa.NoReg, Imm: 3})
	b1, _ := step(isa.Instr{Op: isa.OpLw, Dst: isa.R(22), Src1: isa.R(20), Src2: isa.NoReg, Imm: 0})
	b2, _ := step(isa.Instr{Op: isa.OpLw, Dst: isa.R(23), Src1: isa.R(21), Src2: isa.NoReg, Imm: 4})
	if !sameBase(b1, b2) {
		t.Error("memoized slli values should compare equal")
	}
	// A clobbered register gets a fresh value.
	step(isa.Instr{Op: isa.OpLw, Dst: isa.R(10), Src1: isa.R(9), Src2: isa.NoReg, Imm: 0})
	c1, _ := step(isa.Instr{Op: isa.OpLw, Dst: isa.R(24), Src1: isa.R(10), Src2: isa.NoReg, Imm: 100})
	if sameBase(a1, c1) {
		t.Error("redefined base register must not compare equal to its old value")
	}
}

func TestScheduleSemanticsPreservedAcrossMachines(t *testing.T) {
	// The scheduler permutes within regions; the region boundaries at
	// branches/leaders guarantee targets stay valid. Validate on a
	// multi-block program.
	b := isa.NewBuilder()
	b.Li(isa.R(10), 10)
	b.Li(isa.R(11), 0)
	b.Label("loop")
	b.Op(isa.OpAdd, isa.R(11), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(11))
	b.Halt()
	p := b.MustFinish()
	mem := make([]ir.MemRef, len(p.Instrs))
	mem[len(mem)-2] = ir.MemRef{Kind: ir.MemOut}
	Schedule(p, mem, []int{0, 2}, machine.CRAY1(), Options{})
	if err := p.Validate(); err != nil {
		t.Fatalf("scheduled program invalid: %v", err)
	}
}

// TestSchedulePreservesDependencesProperty generates random straight-line
// regions and checks that list scheduling preserves every register and
// memory dependence, on several machine descriptions.
func TestSchedulePreservesDependencesProperty(t *testing.T) {
	arrX := &ast.Symbol{Name: "X", Kind: ast.SymArray, Type: ast.Int, Dims: []int{64}}
	arrY := &ast.Symbol{Name: "Y", Kind: ast.SymArray, Type: ast.Int, Dims: []int{64}}
	machines := []*machine.Config{machine.Base(), machine.MultiTitan(), machine.CRAY1(), machine.IdealSuperscalar(4)}

	seedState := uint64(12345)
	rnd := func(m int) int {
		seedState = seedState*6364136223846793005 + 1442695040888963407
		return int(seedState>>33) % m
	}

	for trial := 0; trial < 50; trial++ {
		n := 5 + rnd(20)
		instrs := make([]isa.Instr, 0, n+1)
		mem := make([]ir.MemRef, 0, n+1)
		for i := 0; i < n; i++ {
			r := func() isa.Reg { return isa.R(10 + rnd(6)) }
			switch rnd(5) {
			case 0:
				instrs = append(instrs, isa.Instr{Op: isa.OpAdd, Dst: r(), Src1: r(), Src2: r()})
				mem = append(mem, ir.MemRef{})
			case 1:
				instrs = append(instrs, isa.Instr{Op: isa.OpLi, Dst: r(), Src1: isa.NoReg, Src2: isa.NoReg, Imm: int64(rnd(100))})
				mem = append(mem, ir.MemRef{})
			case 2:
				sym := arrX
				if rnd(2) == 0 {
					sym = arrY
				}
				instrs = append(instrs, isa.Instr{Op: isa.OpLw, Dst: r(), Src1: r(), Src2: isa.NoReg, Imm: int64(rnd(4)), Sym: sym.Name})
				mem = append(mem, ir.MemRef{Kind: ir.MemArray, Sym: sym})
			case 3:
				sym := arrX
				if rnd(2) == 0 {
					sym = arrY
				}
				instrs = append(instrs, isa.Instr{Op: isa.OpSw, Dst: isa.NoReg, Src1: r(), Src2: r(), Imm: int64(rnd(4)), Sym: sym.Name})
				mem = append(mem, ir.MemRef{Kind: ir.MemSpill, Slot: rnd(3)})
				mem[len(mem)-1] = ir.MemRef{Kind: ir.MemArray, Sym: sym}
			default:
				instrs = append(instrs, isa.Instr{Op: isa.OpMul, Dst: r(), Src1: r(), Src2: r()})
				mem = append(mem, ir.MemRef{})
			}
		}
		instrs = append(instrs, isa.Instr{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
		mem = append(mem, ir.MemRef{})

		for _, careful := range []bool{false, true} {
			m := machines[trial%len(machines)]
			// Record original order via value identity: tag with Imm in
			// a shadow copy index.
			orig := make([]isa.Instr, len(instrs))
			copy(orig, instrs)
			origMem := make([]ir.MemRef, len(mem))
			copy(origMem, mem)

			p := &isa.Program{Instrs: orig, Symbols: map[int]string{}}
			Schedule(p, origMem, []int{0}, m, Options{Careful: careful})

			// Map scheduled position back to original index: instructions
			// may be identical, so match by multiset and verify
			// dependences directly over the scheduled sequence instead.
			checkSequence(t, trial, p.Instrs, origMem, instrs, mem, careful)
		}
	}
}

// checkSequence verifies the scheduled sequence is a permutation of the
// original and that for every pair that conflicts in the original order,
// their relative order is preserved. Conflicts are recomputed over the
// original sequence; matching instructions across the permutation uses
// stable identity of equal values (sufficient: equal instructions are
// interchangeable for dependence purposes).
func checkSequence(t *testing.T, trial int, sched []isa.Instr, schedMem []ir.MemRef,
	orig []isa.Instr, origMem []ir.MemRef, careful bool) {
	t.Helper()
	if len(sched) != len(orig) {
		t.Fatalf("trial %d: length changed", trial)
	}
	// Permutation check (multiset of disassembly strings).
	count := map[string]int{}
	for i := range orig {
		count[orig[i].String()]++
	}
	for i := range sched {
		count[sched[i].String()]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("trial %d: not a permutation (%q off by %d)", trial, k, v)
		}
	}
	// Register dependence check over the scheduled order: simulate
	// sequential register semantics on both orders with symbolic values
	// and compare final register states. Equal final states for all
	// registers implies RAW/WAR/WAW were respected for the register
	// file... but that is weaker than per-pair ordering; do both: a
	// cheap symbolic execution catches reg violations.
	exec := func(seq []isa.Instr) map[isa.Reg]string {
		val := map[isa.Reg]string{}
		get := func(r isa.Reg) string {
			if v, ok := val[r]; ok {
				return v
			}
			return "init:" + r.String()
		}
		for i := range seq {
			in := &seq[i]
			if d := in.Def(); d != isa.NoReg {
				u1, u2 := in.Uses()
				s1, s2 := "", ""
				if u1 != isa.NoReg {
					s1 = get(u1)
				}
				if u2 != isa.NoReg {
					s2 = get(u2)
				}
				val[d] = in.Op.String() + "(" + s1 + "," + s2 + "," + in.String() + ")"
			}
		}
		return val
	}
	a, b := exec(orig), exec(sched)
	for r, v := range a {
		if b[r] != v {
			t.Fatalf("trial %d (careful=%v): register %v diverged:\n  orig  %s\n  sched %s",
				trial, careful, r, v, b[r])
		}
	}
	// Memory dependence: for conflicting pairs in the original, check
	// relative order in the schedule (match by string identity with
	// occurrence counting).
	pos := map[string][]int{}
	for i := range sched {
		k := sched[i].String()
		pos[k] = append(pos[k], i)
	}
	occ := map[string]int{}
	schedIndex := make([]int, len(orig))
	for i := range orig {
		k := orig[i].String()
		schedIndex[i] = pos[k][occ[k]]
		occ[k]++
	}
	aaO := newAddrAnalysis()
	accO := make([]memAccess, len(orig))
	for i := range orig {
		addr, isMem := aaO.step(&orig[i])
		accO[i] = memAccess{ref: origMem[i], isStore: orig[i].Op.Info().Store, addr: addr, hasAddr: isMem}
	}
	for i := 0; i < len(orig); i++ {
		for j := i + 1; j < len(orig); j++ {
			if accO[i].ref.Kind == ir.MemNone || accO[j].ref.Kind == ir.MemNone {
				continue
			}
			if depends(accO[i], accO[j], careful) {
				// Occurrence matching can swap identical instructions,
				// which is harmless; only enforce order for distinct ones.
				if orig[i].String() == orig[j].String() {
					continue
				}
				if schedIndex[i] > schedIndex[j] {
					t.Fatalf("trial %d (careful=%v): memory dependence %d->%d violated (%s then %s)",
						trial, careful, i, j, orig[i].String(), orig[j].String())
				}
			}
		}
	}
}
