package sched

import (
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// Options selects scheduling behavior.
type Options struct {
	// Careful enables the careful-unrolling memory disambiguation.
	Careful bool
}

// Schedule reorders instructions within each basic block (in place) to
// minimize pipeline stalls under the machine description. The permutation
// never crosses block leaders, branches, calls, or returns, so all branch
// targets remain valid. The mem annotation array is permuted alongside.
func Schedule(p *isa.Program, mem []ir.MemRef, blockStarts []int, cfg *machine.Config, opts Options) {
	sc := newSchedScratch(cfg)
	for _, r := range Regions(p.Instrs, blockStarts) {
		start, end := r[0], r[1]
		if end-start > 1 {
			scheduleRegion(p.Instrs[start:end], mem[start:end], cfg, opts, sc)
		}
	}
}

// schedScratch holds the machine-derived tables and per-region work arrays
// scheduleRegion needs, built once per Schedule call and reused across
// regions (the tables depend only on the machine; the arrays are resized to
// each region). Purely an allocation saver — scheduling is unchanged.
type schedScratch struct {
	classUnit [isa.NumClasses]int
	unitFree  [][]int
	height    []int
	earliest  []int
	scheduled []bool
	order     []int
	newInstrs []isa.Instr
	newMem    []ir.MemRef
}

func newSchedScratch(cfg *machine.Config) *schedScratch {
	sc := &schedScratch{unitFree: make([][]int, len(cfg.Units))}
	for ui, u := range cfg.Units {
		for _, cl := range u.Classes {
			sc.classUnit[cl] = ui
		}
		sc.unitFree[ui] = make([]int, u.Multiplicity)
	}
	return sc
}

// grow resizes the per-region arrays to n instructions, zeroing what a
// fresh allocation would have zeroed.
func (sc *schedScratch) grow(n int) {
	if cap(sc.height) < n {
		sc.height = make([]int, n)
		sc.earliest = make([]int, n)
		sc.scheduled = make([]bool, n)
		sc.order = make([]int, 0, n)
		sc.newInstrs = make([]isa.Instr, n)
		sc.newMem = make([]ir.MemRef, n)
	} else {
		sc.height = sc.height[:n]
		sc.earliest = sc.earliest[:n]
		sc.scheduled = sc.scheduled[:n]
		sc.order = sc.order[:0]
		sc.newInstrs = sc.newInstrs[:n]
		sc.newMem = sc.newMem[:n]
		for i := 0; i < n; i++ {
			sc.earliest[i] = 0
			sc.scheduled[i] = false
		}
	}
	for _, copies := range sc.unitFree {
		for k := range copies {
			copies[k] = 0
		}
	}
}

// isBarrier reports whether the instruction bounds a scheduling region:
// branches, calls, returns and halt never move.
func isBarrier(in *isa.Instr) bool {
	info := in.Op.Info()
	return info.Branch || in.Op == isa.OpHalt
}

// Regions returns the [start, end) bounds of every schedulable straight-line
// region: a maximal run of non-barrier instructions that does not cross a
// basic-block leader. Instructions outside all regions (branches, calls,
// returns, halt) are never reordered by Schedule. The decomposition is also
// used by internal/verify to re-derive exactly the regions the scheduler was
// allowed to permute.
func Regions(instrs []isa.Instr, blockStarts []int) [][2]int {
	leader := make(map[int]bool, len(blockStarts))
	for _, b := range blockStarts {
		leader[b] = true
	}
	var out [][2]int
	n := len(instrs)
	start := 0
	for start < n {
		if isBarrier(&instrs[start]) {
			start++
			continue
		}
		end := start + 1
		for end < n && !isBarrier(&instrs[end]) && !leader[end] {
			end++
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}

// edge is one dependence arc within a region: instruction `to` must issue
// at least `w` minor cycles after its predecessor.
type edge struct {
	to int
	w  int
}

// buildDeps constructs the dependence graph of one straight-line region in
// its current order: RAW, WAR and WAW register edges plus memory-ordering
// edges from the conservative or careful disambiguator. lat supplies RAW
// edge weights (operation latencies); nil gives every edge unit weight,
// which preserves the graph's structure and is all a legality check needs.
// succ[i] holds (j, w) pairs with j > i; npred[j] counts predecessors.
func buildDeps(instrs []isa.Instr, mem []ir.MemRef, careful bool, lat func(isa.Class) int) (succ [][]edge, npred []int) {
	n := len(instrs)

	// Memory footprints.
	aa := newAddrAnalysis()
	acc := make([]memAccess, n)
	for i := range instrs {
		in := &instrs[i]
		addr, hasAddr := aa.step(in)
		info := in.Op.Info()
		acc[i] = memAccess{
			ref:     mem[i],
			isStore: info.Store,
			addr:    addr,
			hasAddr: hasAddr,
		}
	}

	succ = make([][]edge, n)
	npred = make([]int, n)
	addEdge := func(i, j, w int) {
		succ[i] = append(succ[i], edge{j, w})
		npred[j]++
	}

	lastDef := map[isa.Reg]int{}
	lastUses := map[isa.Reg][]int{}
	var buf [2]isa.Reg
	uses := func(in *isa.Instr) []isa.Reg {
		u1, u2 := in.Uses()
		out := buf[:0]
		if u1 != isa.NoReg {
			out = append(out, u1)
		}
		if u2 != isa.NoReg {
			out = append(out, u2)
		}
		return out
	}
	for j := 0; j < n; j++ {
		in := &instrs[j]
		for _, u := range uses(in) {
			if i, ok := lastDef[u]; ok {
				w := 1
				if lat != nil {
					w = lat(instrs[i].Op.Class())
				}
				addEdge(i, j, w) // RAW
			}
		}
		if d := in.Def(); d != isa.NoReg && d != isa.RZero {
			if i, ok := lastDef[d]; ok {
				addEdge(i, j, 1) // WAW
			}
			for _, r := range lastUses[d] {
				if r != j {
					addEdge(r, j, 0) // WAR
				}
			}
			lastDef[d] = j
			delete(lastUses, d)
		}
		for _, u := range uses(in) {
			lastUses[u] = append(lastUses[u], j)
		}
		// Memory ordering.
		if acc[j].ref.Kind != ir.MemNone {
			for i := 0; i < j; i++ {
				if acc[i].ref.Kind == ir.MemNone {
					continue
				}
				if depends(acc[i], acc[j], careful) {
					addEdge(i, j, 1)
				}
			}
		}
	}
	return succ, npred
}

// Dependences recomputes the dependence edges of one straight-line region
// (in the order given) and returns them as (i, j) index pairs with i < j:
// instruction j must stay after instruction i in any legal reordering. It is
// the scheduler's own dependence analysis — identical register RAW/WAR/WAW
// edges and memory-ordering edges in the chosen disambiguation mode — so a
// schedule that preserves every returned pair is legal by construction.
func Dependences(instrs []isa.Instr, mem []ir.MemRef, careful bool) [][2]int {
	succ, _ := buildDeps(instrs, mem, careful, nil)
	var out [][2]int
	for i, es := range succ {
		for _, e := range es {
			out = append(out, [2]int{i, e.to})
		}
	}
	return out
}

// scheduleRegion list-schedules one straight-line region.
func scheduleRegion(instrs []isa.Instr, mem []ir.MemRef, cfg *machine.Config, opts Options, sc *schedScratch) {
	n := len(instrs)
	succ, npred := buildDeps(instrs, mem, opts.Careful, func(cl isa.Class) int { return cfg.Latency[cl] })
	sc.grow(n)

	// Priorities: critical-path height.
	height := sc.height
	for i := n - 1; i >= 0; i-- {
		h := cfg.Latency[instrs[i].Op.Class()]
		for _, e := range succ[i] {
			if v := e.w + height[e.to]; v > h {
				h = v
			}
		}
		height[i] = h
	}

	// List scheduling with a virtual machine clock: issue width and
	// functional-unit issue latencies are modeled so the order matches
	// what the target machine can actually sustain.
	unitFree := sc.unitFree

	earliest := sc.earliest
	scheduled := sc.scheduled
	order := sc.order
	var cycle, inCycle int

	remaining := n
	for remaining > 0 {
		best := -1
		bestTime := 1 << 30
		for i := 0; i < n; i++ {
			if scheduled[i] || npred[i] > 0 {
				continue
			}
			t := earliest[i]
			if t < bestTime || (t == bestTime && best >= 0 &&
				(height[i] > height[best] || (height[i] == height[best] && i < best))) {
				best = i
				bestTime = t
			}
		}
		// Account for issue width and unit availability.
		t := bestTime
		if t < cycle {
			t = cycle
		}
		if t == cycle && inCycle >= cfg.IssueWidth {
			t = cycle + 1
		}
		ui := sc.classUnit[instrs[best].Op.Class()]
		copies := unitFree[ui]
		bc := 0
		for k := 1; k < len(copies); k++ {
			if copies[k] < copies[bc] {
				bc = k
			}
		}
		if copies[bc] > t {
			t = copies[bc]
		}
		if t > cycle {
			cycle = t
			inCycle = 1
		} else {
			inCycle++
		}
		copies[bc] = t + cfg.Units[ui].IssueLatency

		scheduled[best] = true
		order = append(order, best)
		remaining--
		for _, e := range succ[best] {
			npred[e.to]--
			if v := t + e.w; v > earliest[e.to] {
				earliest[e.to] = v
			}
		}
	}

	// Apply the permutation.
	newInstrs := sc.newInstrs
	newMem := sc.newMem
	for pos, i := range order {
		newInstrs[pos] = instrs[i]
		newMem[pos] = mem[i]
	}
	copy(instrs, newInstrs)
	copy(mem, newMem)
}
