package sched

import (
	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// Options selects scheduling behavior.
type Options struct {
	// Careful enables the careful-unrolling memory disambiguation.
	Careful bool
}

// Schedule reorders instructions within each basic block (in place) to
// minimize pipeline stalls under the machine description. The permutation
// never crosses block leaders, branches, calls, or returns, so all branch
// targets remain valid. The mem annotation array is permuted alongside.
func Schedule(p *isa.Program, mem []ir.MemRef, blockStarts []int, cfg *machine.Config, opts Options) {
	leader := make(map[int]bool, len(blockStarts))
	for _, b := range blockStarts {
		leader[b] = true
	}
	isBarrier := func(in *isa.Instr) bool {
		info := in.Op.Info()
		return info.Branch || in.Op == isa.OpHalt
	}

	n := len(p.Instrs)
	start := 0
	for start < n {
		if isBarrier(&p.Instrs[start]) {
			start++
			continue
		}
		// A region is a maximal run of non-barrier instructions that
		// does not cross a block leader.
		end := start + 1
		for end < n && !isBarrier(&p.Instrs[end]) && !leader[end] {
			end++
		}
		if end-start > 1 {
			scheduleRegion(p.Instrs[start:end], mem[start:end], cfg, opts)
		}
		start = end
	}
}

// scheduleRegion list-schedules one straight-line region.
func scheduleRegion(instrs []isa.Instr, mem []ir.MemRef, cfg *machine.Config, opts Options) {
	n := len(instrs)

	// Memory footprints.
	aa := newAddrAnalysis()
	acc := make([]memAccess, n)
	for i := range instrs {
		in := &instrs[i]
		addr, hasAddr := aa.step(in)
		info := in.Op.Info()
		acc[i] = memAccess{
			ref:     mem[i],
			isStore: info.Store,
			addr:    addr,
			hasAddr: hasAddr,
		}
	}

	// Dependence edges. succ[i] holds (j, weight) pairs with j > i.
	type edge struct {
		to int
		w  int
	}
	succ := make([][]edge, n)
	npred := make([]int, n)
	addEdge := func(i, j, w int) {
		succ[i] = append(succ[i], edge{j, w})
		npred[j]++
	}

	lastDef := map[isa.Reg]int{}
	lastUses := map[isa.Reg][]int{}
	var buf [2]isa.Reg
	uses := func(in *isa.Instr) []isa.Reg {
		u1, u2 := in.Uses()
		out := buf[:0]
		if u1 != isa.NoReg {
			out = append(out, u1)
		}
		if u2 != isa.NoReg {
			out = append(out, u2)
		}
		return out
	}
	for j := 0; j < n; j++ {
		in := &instrs[j]
		for _, u := range uses(in) {
			if i, ok := lastDef[u]; ok {
				addEdge(i, j, cfg.Latency[instrs[i].Op.Class()]) // RAW
			}
		}
		if d := in.Def(); d != isa.NoReg && d != isa.RZero {
			if i, ok := lastDef[d]; ok {
				addEdge(i, j, 1) // WAW
			}
			for _, r := range lastUses[d] {
				if r != j {
					addEdge(r, j, 0) // WAR
				}
			}
			lastDef[d] = j
			delete(lastUses, d)
		}
		for _, u := range uses(in) {
			lastUses[u] = append(lastUses[u], j)
		}
		// Memory ordering.
		if acc[j].ref.Kind != ir.MemNone {
			for i := 0; i < j; i++ {
				if acc[i].ref.Kind == ir.MemNone {
					continue
				}
				if depends(acc[i], acc[j], opts.Careful) {
					addEdge(i, j, 1)
				}
			}
		}
	}

	// Priorities: critical-path height.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := cfg.Latency[instrs[i].Op.Class()]
		for _, e := range succ[i] {
			if v := e.w + height[e.to]; v > h {
				h = v
			}
		}
		height[i] = h
	}

	// List scheduling with a virtual machine clock: issue width and
	// functional-unit issue latencies are modeled so the order matches
	// what the target machine can actually sustain.
	classUnit := map[isa.Class]int{}
	for ui, u := range cfg.Units {
		for _, cl := range u.Classes {
			classUnit[cl] = ui
		}
	}
	unitFree := make([][]int, len(cfg.Units))
	for i, u := range cfg.Units {
		unitFree[i] = make([]int, u.Multiplicity)
	}

	earliest := make([]int, n)
	scheduled := make([]bool, n)
	order := make([]int, 0, n)
	var cycle, inCycle int

	remaining := n
	for remaining > 0 {
		best := -1
		bestTime := 1 << 30
		for i := 0; i < n; i++ {
			if scheduled[i] || npred[i] > 0 {
				continue
			}
			t := earliest[i]
			if t < bestTime || (t == bestTime && best >= 0 &&
				(height[i] > height[best] || (height[i] == height[best] && i < best))) {
				best = i
				bestTime = t
			}
		}
		// Account for issue width and unit availability.
		t := bestTime
		if t < cycle {
			t = cycle
		}
		if t == cycle && inCycle >= cfg.IssueWidth {
			t = cycle + 1
		}
		ui := classUnit[instrs[best].Op.Class()]
		copies := unitFree[ui]
		bc := 0
		for k := 1; k < len(copies); k++ {
			if copies[k] < copies[bc] {
				bc = k
			}
		}
		if copies[bc] > t {
			t = copies[bc]
		}
		if t > cycle {
			cycle = t
			inCycle = 1
		} else {
			inCycle++
		}
		copies[bc] = t + cfg.Units[ui].IssueLatency

		scheduled[best] = true
		order = append(order, best)
		remaining--
		for _, e := range succ[best] {
			npred[e.to]--
			if v := t + e.w; v > earliest[e.to] {
				earliest[e.to] = v
			}
		}
	}

	// Apply the permutation.
	newInstrs := make([]isa.Instr, n)
	newMem := make([]ir.MemRef, n)
	for pos, i := range order {
		newInstrs[pos] = instrs[i]
		newMem[pos] = mem[i]
	}
	copy(instrs, newInstrs)
	copy(mem, newMem)
}
