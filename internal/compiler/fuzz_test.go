package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ilp/internal/isa"
	"ilp/internal/lang/interp"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
	"ilp/internal/machine"
	"ilp/internal/sim"
)

// progGen generates random but well-defined TL programs: every array index
// is masked into range, divisors are forced non-zero, loops are bounded,
// and floats stay away from overflow — so the reference interpreter and
// the compiled simulation must agree exactly at every optimization level.
type progGen struct {
	r    *rand.Rand
	b    strings.Builder
	vars []string // readable int scalars (includes loop counters)
	// writable excludes loop counters: assigning a counter inside its
	// own loop could loop forever.
	writable []string
	// active marks loop counters currently driving an enclosing loop, so
	// a nested loop never reuses one (which could reset it forever).
	active map[string]bool
}

func (g *progGen) pick(list []string) string { return list[g.r.Intn(len(list))] }

// intExpr emits a well-defined int expression of bounded depth.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		case 1:
			return g.pick(g.vars)
		default:
			return fmt.Sprintf("arr[iabs(%s) %% 32]", g.pick(g.vars))
		}
	}
	a := g.intExpr(depth - 1)
	b := g.intExpr(depth - 1)
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * (%s %% 7))", a, b)
	case 3:
		return fmt.Sprintf("(%s / (iabs(%s) %% 9 + 1))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% (iabs(%s) %% 9 + 1))", a, b)
	default:
		return fmt.Sprintf("iabs(%s)", a)
	}
}

func (g *progGen) cond(depth int) string {
	a := g.intExpr(depth)
	b := g.intExpr(depth)
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	c := fmt.Sprintf("%s %s %s", a, ops[g.r.Intn(len(ops))], b)
	if depth > 0 && g.r.Intn(3) == 0 {
		c2 := g.cond(depth - 1)
		if g.r.Intn(2) == 0 {
			return fmt.Sprintf("(%s) && (%s)", c, c2)
		}
		return fmt.Sprintf("(%s) || (%s)", c, c2)
	}
	return c
}

func (g *progGen) stmt(depth, indent int) {
	pad := strings.Repeat("\t", indent)
	switch g.r.Intn(9) {
	case 0, 1: // assignment
		fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, g.pick(g.writable), g.intExpr(2))
	case 2: // array store
		fmt.Fprintf(&g.b, "%sarr[iabs(%s) %% 32] = %s;\n", pad, g.intExpr(1), g.intExpr(2))
	case 6, 7: // floating-point accumulator updates (exact: no reassoc here)
		switch g.r.Intn(3) {
		case 0:
			fmt.Fprintf(&g.b, "%sfr = fr * 0.5 + float(%s) * 0.25;\n", pad, g.intExpr(1))
		case 1:
			fmt.Fprintf(&g.b, "%sfr = fr - float(%s) / 8.0;\n", pad, g.intExpr(1))
		default:
			fmt.Fprintf(&g.b, "%sif fr > 100.0 { fr = fr * 0.125; } else { fr = fr + 1.5; }\n", pad)
		}
	case 8: // float print
		fmt.Fprintf(&g.b, "%sprint(fr);\n", pad)
	case 3: // if
		fmt.Fprintf(&g.b, "%sif %s {\n", pad, g.cond(1))
		g.stmt(depth-1, indent+1)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", pad)
			g.stmt(depth-1, indent+1)
		}
		fmt.Fprintf(&g.b, "%s}\n", pad)
	case 4: // bounded counted loop over a fresh, unused counter
		v := ""
		for _, cand := range []string{"k0", "k1", "k2"} {
			if !g.active[cand] {
				v = cand
				break
			}
		}
		if v == "" { // all counters busy: fall back to an assignment
			fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, g.pick(g.writable), g.intExpr(2))
			return
		}
		g.active[v] = true
		fmt.Fprintf(&g.b, "%sfor %s = 0 to %d {\n", pad, v, 2+g.r.Intn(6))
		if depth > 0 {
			g.stmt(depth-1, indent+1)
		} else {
			fmt.Fprintf(&g.b, "%s\tchk = chk + %s;\n", pad, v)
		}
		fmt.Fprintf(&g.b, "%s}\n", pad)
		g.active[v] = false
	default: // print
		fmt.Fprintf(&g.b, "%sprint(%s);\n", pad, g.intExpr(2))
	}
}

func (g *progGen) generate(stmts int) string {
	g.b.Reset()
	g.vars = []string{"g0", "g1", "g2", "t0", "t1", "chk", "k0", "k1", "k2"}
	g.writable = []string{"g0", "g1", "g2", "t0", "t1", "chk"}
	g.active = map[string]bool{}
	g.b.WriteString("var g0: int = 3;\nvar g1: int = -7;\nvar g2, chk: int;\nvar arr[32]: int;\n")
	g.b.WriteString("func helper(x: int): int { return x * 2 - 5; }\n")
	g.b.WriteString("func main() {\n\tvar t0, t1, k0, k1, k2: int;\n\tvar fr: real;\n")
	g.b.WriteString("\tt0 = helper(g0);\n\tt1 = helper(g1);\n")
	for i := 0; i < stmts; i++ {
		g.stmt(2, 1)
	}
	g.b.WriteString("\tprint(chk);\n\tprint(t0 + t1);\n\tprint(fr);\n")
	g.b.WriteString("\tvar j: int;\n\tfor j = 0 to 31 { chk = chk + arr[j]; }\n\tprint(chk);\n")
	g.b.WriteString("}\n")
	return g.b.String()
}

// TestRandomProgramsDifferential is the pipeline's property test: for many
// random programs, simulated output at every optimization level on several
// machines must equal the reference interpreter's output exactly.
func TestRandomProgramsDifferential(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	machines := []*machine.Config{
		machine.Base(),
		machine.MultiTitan(),
		machine.IdealSuperscalar(4),
		machine.Superpipelined(3),
	}
	for seed := 0; seed < iterations; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate(6)

		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		info, err := sem.Analyze(p)
		if err != nil {
			t.Fatalf("seed %d: sem: %v\n%s", seed, err, src)
		}
		want, err := interp.RunLimited(info, 1<<24)
		if err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}

		for lvl := O0; lvl <= O4; lvl++ {
			for _, m := range machines {
				// Also exercise the unroller periodically.
				unroll := 0
				if seed%3 == 0 {
					unroll = 3
				}
				c, err := Compile(src, Options{Machine: m.Clone(), Level: lvl, Unroll: unroll, Verify: true})
				if err != nil {
					t.Fatalf("seed %d %v/%s: compile: %v\n%s", seed, lvl, m.Name, err, src)
				}
				r, err := sim.Run(c.Prog, sim.Options{Machine: m, MaxInstructions: 1 << 26})
				if err != nil {
					t.Fatalf("seed %d %v/%s: sim: %v\n%s", seed, lvl, m.Name, err, src)
				}
				if len(r.Output) != len(want) {
					t.Fatalf("seed %d %v/%s: %d outputs, want %d\n%s", seed, lvl, m.Name, len(r.Output), len(want), src)
				}
				for i := range want {
					if !r.Output[i].Equal(want[i]) {
						t.Fatalf("seed %d %v/%s: output[%d] = %v, want %v\n%s",
							seed, lvl, m.Name, i, r.Output[i], want[i], src)
					}
				}
			}
		}
	}
}

// TestRandomProgramsTimingSanity: for random programs, wider machines never
// take more base cycles than the base machine, and superpipelined time in
// base cycles never beats the ideal superscalar of the same degree by more
// than rounding (supersymmetry as an invariant).
func TestRandomProgramsTimingSanity(t *testing.T) {
	iterations := 20
	if testing.Short() {
		iterations = 5
	}
	for seed := 100; seed < 100+iterations; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate(5)
		cycles := func(m *machine.Config) float64 {
			c, err := Compile(src, Options{Machine: m.Clone(), Level: O4, Verify: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			r, err := sim.Run(c.Prog, sim.Options{Machine: m})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return r.BaseCycles
		}
		base := cycles(machine.Base())
		ss4 := cycles(machine.IdealSuperscalar(4))
		sp4 := cycles(machine.Superpipelined(4))
		if ss4 > base*1.0001 {
			t.Errorf("seed %d: 4-wide (%v) slower than base (%v)", seed, ss4, base)
		}
		if sp4 < ss4*0.999 {
			t.Errorf("seed %d: superpipelined (%v base cycles) beats superscalar (%v)", seed, sp4, ss4)
		}
	}
}

var _ = isa.NumClasses
