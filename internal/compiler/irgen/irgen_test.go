package irgen

import (
	"strings"
	"testing"

	"ilp/internal/ir"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
)

func genIR(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Generate(info)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v\n%s", err, prog.String())
	}
	return prog
}

func TestStraightLine(t *testing.T) {
	prog := genIR(t, `
var g: int;
func main() {
	g = 2 + 3;
	print(g);
}
`)
	main := prog.FuncByName("main")
	if main == nil {
		t.Fatal("main missing")
	}
	s := main.String()
	for _, want := range []string{"storevar g", "loadvar", "printi", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestForLoopIsBottomTested(t *testing.T) {
	prog := genIR(t, `
var s: int;
func main() {
	var i: int;
	for i = 0 to 9 { s = s + i; }
	print(s);
}
`)
	main := prog.FuncByName("main")
	// Rotated loops have a conditional branch at the end of the body
	// block targeting the body itself (a self loop), plus the entry
	// guard. Count conditional branches: exactly 2.
	brs := 0
	selfLoop := false
	for _, b := range main.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Kind == ir.KBr {
			brs++
			if tm.Targets[0] == b || tm.Targets[1] == b {
				selfLoop = true
			}
		}
	}
	if brs != 2 {
		t.Errorf("rotated counted loop should have guard + back test, got %d branches:\n%s", brs, main.String())
	}
	if !selfLoop {
		t.Errorf("loop body should branch back to itself:\n%s", main.String())
	}
}

func TestWhileRotation(t *testing.T) {
	prog := genIR(t, `
var n: int;
func main() {
	n = 10;
	while n > 0 { n = n - 1; }
	print(n);
}
`)
	main := prog.FuncByName("main")
	// The condition is evaluated twice statically (entry + back test).
	count := 0
	for _, b := range main.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Kind == ir.KBr {
			count++
		}
	}
	if count != 2 {
		t.Errorf("rotated while should test twice statically, got %d:\n%s", count, main.String())
	}
}

func TestShortCircuitBlocks(t *testing.T) {
	prog := genIR(t, `
var a, b: int;
func main() {
	if a > 0 && b > 0 { print(1); }
}
`)
	main := prog.FuncByName("main")
	// && lowers to two conditional branches, no materialized boolean.
	brs := 0
	for _, b := range main.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Kind == ir.KBr {
			brs++
		}
	}
	if brs != 2 {
		t.Errorf("&& should produce two branches, got %d", brs)
	}
}

func TestMultiDimIndexLowering(t *testing.T) {
	prog := genIR(t, `
var m[4, 8]: real;
func main() {
	m[2, 3] = 1.5;
	print(m[2, 3]);
}
`)
	s := prog.FuncByName("main").String()
	// Row-major lowering multiplies by the extent of dimension 1 (8).
	if !strings.Contains(s, "li") || !strings.Contains(s, "mul") {
		t.Errorf("expected scale arithmetic in:\n%s", s)
	}
	if !strings.Contains(s, "storeelem m[") || !strings.Contains(s, "loadelem") {
		t.Errorf("expected element access in:\n%s", s)
	}
}

func TestCallLowering(t *testing.T) {
	prog := genIR(t, `
func add(a, b: int): int { return a + b; }
func main() { print(add(2, 3)); }
`)
	s := prog.FuncByName("main").String()
	if !strings.Contains(s, "call") || !strings.Contains(s, "add(") {
		t.Errorf("call missing:\n%s", s)
	}
}

func TestImplicitReturnValue(t *testing.T) {
	prog := genIR(t, `
func f(): int {
	var x: int;
	x = 1;
}
func main() { print(f()); }
`)
	f := prog.FuncByName("f")
	last := f.Blocks[len(f.Blocks)-1]
	tm := last.Terminator()
	if tm == nil || tm.Kind != ir.KRet || tm.Src1 == ir.NoReg {
		t.Errorf("value function must return a (zero) value:\n%s", f.String())
	}
}

func TestTooManyParamsRejected(t *testing.T) {
	src := `
func f(a, b, c, d, e, g, h, i, j: int) {}
func main() {}
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(info); err == nil {
		t.Error("expected error for 9 parameters")
	}
}

func TestIAbsBranchFree(t *testing.T) {
	prog := genIR(t, `
func main() { print(iabs(-5)); }
`)
	main := prog.FuncByName("main")
	for _, b := range main.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Kind == ir.KBr {
			t.Errorf("iabs should lower branch-free:\n%s", main.String())
		}
	}
	s := main.String()
	if !strings.Contains(s, "srai") || !strings.Contains(s, "xor") {
		t.Errorf("iabs pattern missing:\n%s", s)
	}
}
