// Package irgen lowers checked TL syntax trees to the IR. The translation
// is deliberately naive — every named variable lives in memory, every
// expression result gets a fresh virtual register, address arithmetic is
// explicit — because the paper's measurements start from unoptimized code
// ("the leftmost point is the parallelism with no optimization at all",
// Figure 4-8) and the optimization passes must be able to earn their keep.
package irgen

import (
	"fmt"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/lang/sem"
	"ilp/internal/lang/token"
)

// MaxArgs is the number of register-passed arguments supported by the
// calling convention.
const MaxArgs = isa.NArgs

// Generate lowers the whole program.
func Generate(info *sem.Info) (*ir.Program, error) {
	prog := &ir.Program{Info: info}
	for _, fd := range info.Program.Funcs {
		fi := info.Funcs[fd.Name]
		f, err := genFunc(info, fi)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("irgen: internal error: %w", err)
	}
	return prog, nil
}

type gen struct {
	info  *sem.Info
	f     *ir.Func
	cur   *ir.Block
	brk   []*ir.Block // break targets, innermost last
	decls map[*ast.VarDecl]*ast.Symbol
}

func genFunc(info *sem.Info, fi *sem.FuncInfo) (*ir.Func, error) {
	if len(fi.Decl.Params) > MaxArgs {
		return nil, fmt.Errorf("irgen: %s: more than %d parameters unsupported", fi.Decl.Name, MaxArgs)
	}
	f := &ir.Func{Name: fi.Decl.Name, Decl: fi.Decl, Info: fi}
	g := &gen{info: info, f: f, decls: map[*ast.VarDecl]*ast.Symbol{}}
	for _, sym := range fi.Locals {
		if d, ok := sym.Decl.(*ast.VarDecl); ok {
			g.decls[d] = sym
		}
	}
	g.cur = f.NewBlock()
	if err := g.genBlockStmts(fi.Decl.Body); err != nil {
		return nil, err
	}
	// Fall off the end: implicit return (zero value for result functions,
	// matching the reference interpreter).
	if g.cur != nil {
		g.genImplicitReturn()
	}
	f.RemoveUnreachable()
	return f, nil
}

func (g *gen) genImplicitReturn() {
	switch g.f.Decl.Result {
	case ast.Void:
		g.emit(ir.Instr{Kind: ir.KRet, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	case ast.Real:
		r := g.f.NewReg(ir.RFP)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpFli, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg})
		g.emit(ir.Instr{Kind: ir.KRet, Dst: ir.NoReg, Src1: r, Src2: ir.NoReg})
	default:
		r := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg})
		g.emit(ir.Instr{Kind: ir.KRet, Dst: ir.NoReg, Src1: r, Src2: ir.NoReg})
	}
	g.cur = nil
}

func (g *gen) emit(in ir.Instr) {
	g.cur.Instrs = append(g.cur.Instrs, in)
}

// startBlock switches emission to a new current block.
func (g *gen) startBlock(b *ir.Block) { g.cur = b }

func regClassOf(t ast.Type) ir.RegClass {
	if t == ast.Real {
		return ir.RFP
	}
	return ir.RInt
}

func (g *gen) genBlockStmts(b *ast.Block) error {
	for _, s := range b.Stmts {
		if g.cur == nil {
			// Unreachable code after return/break: skip, matching the
			// interpreter (it never executes it either).
			return nil
		}
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) genStmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.Block:
		return g.genBlockStmts(st)

	case *ast.LocalDecl:
		sym := g.decls[st.Decl]
		var v ir.Reg
		if st.Decl.Init != nil {
			var err error
			v, err = g.genExpr(st.Decl.Init)
			if err != nil {
				return err
			}
		} else {
			// Zero-initialize, matching the interpreter.
			v = g.f.NewReg(regClassOf(st.Decl.Type))
			if st.Decl.Type == ast.Real {
				g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpFli, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg})
			} else {
				g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg})
			}
		}
		g.emit(ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: v, Src2: ir.NoReg, Sym: sym})
		return nil

	case *ast.Assign:
		v, err := g.genExpr(st.RHS)
		if err != nil {
			return err
		}
		switch lhs := st.LHS.(type) {
		case *ast.VarRef:
			g.emit(ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: v, Src2: ir.NoReg, Sym: lhs.Sym})
			return nil
		case *ast.IndexRef:
			idx, err := g.genLinearIndex(lhs)
			if err != nil {
				return err
			}
			g.emit(ir.Instr{Kind: ir.KStoreElem, Dst: ir.NoReg, Src1: idx, Src2: v, Sym: lhs.Sym})
			return nil
		}
		return fmt.Errorf("irgen: bad assignment target %T", st.LHS)

	case *ast.If:
		thenB := g.f.NewBlock()
		joinB := g.f.NewBlock()
		elseB := joinB
		if st.Else != nil {
			elseB = g.f.NewBlock()
		}
		if err := g.genCond(st.Cond, thenB, elseB); err != nil {
			return err
		}
		g.startBlock(thenB)
		if err := g.genBlockStmts(st.Then); err != nil {
			return err
		}
		if g.cur != nil {
			g.emit(ir.Instr{Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Targets: [2]*ir.Block{joinB}})
		}
		if st.Else != nil {
			g.startBlock(elseB)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
			if g.cur != nil {
				g.emit(ir.Instr{Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Targets: [2]*ir.Block{joinB}})
			}
		}
		g.startBlock(joinB)
		return nil

	case *ast.While:
		// Rotated (bottom-test) form: the entry test and the loop-back
		// test each evaluate the condition, preserving the original's
		// evaluation sequence while leaving one block — and one taken
		// branch — per iteration, which is what the pipeline scheduler
		// wants to see.
		body := g.f.NewBlock()
		exit := g.f.NewBlock()
		if err := g.genCond(st.Cond, body, exit); err != nil {
			return err
		}
		g.startBlock(body)
		g.brk = append(g.brk, exit)
		err := g.genBlockStmts(st.Body)
		g.brk = g.brk[:len(g.brk)-1]
		if err != nil {
			return err
		}
		if g.cur != nil {
			if err := g.genCond(st.Cond, body, exit); err != nil {
				return err
			}
		}
		g.startBlock(exit)
		return nil

	case *ast.For:
		return g.genFor(st)

	case *ast.Return:
		if st.Value == nil {
			g.emit(ir.Instr{Kind: ir.KRet, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
			g.cur = nil
			return nil
		}
		v, err := g.genExpr(st.Value)
		if err != nil {
			return err
		}
		g.emit(ir.Instr{Kind: ir.KRet, Dst: ir.NoReg, Src1: v, Src2: ir.NoReg})
		g.cur = nil
		return nil

	case *ast.Break:
		g.emit(ir.Instr{Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg,
			Targets: [2]*ir.Block{g.brk[len(g.brk)-1]}})
		g.cur = nil
		return nil

	case *ast.Print:
		v, err := g.genExpr(st.Value)
		if err != nil {
			return err
		}
		op := isa.OpPrinti
		if st.Value.Type() == ast.Real {
			op = isa.OpPrintf
		}
		g.emit(ir.Instr{Kind: ir.KPrint, Op: op, Dst: ir.NoReg, Src1: v, Src2: ir.NoReg})
		return nil

	case *ast.ExprStmt:
		_, err := g.genExpr(st.X)
		return err
	}
	return fmt.Errorf("irgen: unhandled statement %T", s)
}

// genFor lowers the counted loop in rotated (bottom-test) form:
//
//	i = lo; hiTmp = hi
//	t = load i; if t > hiTmp goto exit   (entry guard)
//	body:  ...
//	       t = load i; store i, t+step
//	       if t+step <= hiTmp goto body  (back test)
//	exit:
func (g *gen) genFor(st *ast.For) error {
	lo, err := g.genExpr(st.Lo)
	if err != nil {
		return err
	}
	g.emit(ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: lo, Src2: ir.NoReg, Sym: st.Var.Sym})
	hi, err := g.genExpr(st.Hi)
	if err != nil {
		return err
	}
	body := g.f.NewBlock()
	exit := g.f.NewBlock()

	iv := g.f.NewReg(ir.RInt)
	g.emit(ir.Instr{Kind: ir.KLoadVar, Dst: iv, Src1: ir.NoReg, Src2: ir.NoReg, Sym: st.Var.Sym})
	g.emit(ir.Instr{Kind: ir.KBr, Op: isa.OpBgt, Dst: ir.NoReg, Src1: iv, Src2: hi,
		Targets: [2]*ir.Block{exit, body}})

	g.startBlock(body)
	g.brk = append(g.brk, exit)
	err = g.genBlockStmts(st.Body)
	g.brk = g.brk[:len(g.brk)-1]
	if err != nil {
		return err
	}
	if g.cur != nil {
		iv2 := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KLoadVar, Dst: iv2, Src1: ir.NoReg, Src2: ir.NoReg, Sym: st.Var.Sym})
		next := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpAddi, Dst: next, Src1: iv2, Src2: ir.NoReg, Imm: st.Step})
		g.emit(ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: next, Src2: ir.NoReg, Sym: st.Var.Sym})
		g.emit(ir.Instr{Kind: ir.KBr, Op: isa.OpBle, Dst: ir.NoReg, Src1: next, Src2: hi,
			Targets: [2]*ir.Block{body, exit}})
	}
	g.startBlock(exit)
	return nil
}

// genLinearIndex computes the row-major linear element index of an array
// reference into a register.
func (g *gen) genLinearIndex(x *ast.IndexRef) (ir.Reg, error) {
	idx, err := g.genExpr(x.Index[0])
	if err != nil {
		return ir.NoReg, err
	}
	for d := 1; d < len(x.Index); d++ {
		ext := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: ext, Src1: ir.NoReg, Src2: ir.NoReg, Imm: int64(x.Sym.Dims[d])})
		scaled := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpMul, Dst: scaled, Src1: idx, Src2: ext})
		next, err := g.genExpr(x.Index[d])
		if err != nil {
			return ir.NoReg, err
		}
		sum := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpAdd, Dst: sum, Src1: scaled, Src2: next})
		idx = sum
	}
	return idx, nil
}

// genCond emits control flow for a boolean expression.
func (g *gen) genCond(e ast.Expr, t, f *ir.Block) error {
	switch x := e.(type) {
	case *ast.BoolLit:
		tgt := f
		if x.Value {
			tgt = t
		}
		g.emit(ir.Instr{Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Targets: [2]*ir.Block{tgt}})
		g.cur = nil
		return nil

	case *ast.UnOp:
		if x.Op == token.Not {
			return g.genCond(x.X, f, t)
		}

	case *ast.BinOp:
		switch x.Op {
		case token.AndAnd:
			mid := g.f.NewBlock()
			if err := g.genCond(x.X, mid, f); err != nil {
				return err
			}
			g.startBlock(mid)
			return g.genCond(x.Y, t, f)
		case token.OrOr:
			mid := g.f.NewBlock()
			if err := g.genCond(x.X, t, mid); err != nil {
				return err
			}
			g.startBlock(mid)
			return g.genCond(x.Y, t, f)
		case token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge:
			l, err := g.genExpr(x.X)
			if err != nil {
				return err
			}
			r, err := g.genExpr(x.Y)
			if err != nil {
				return err
			}
			if x.X.Type() == ast.Real {
				// FP compare to an int register, then branch on it.
				cmp := g.f.NewReg(ir.RInt)
				var op isa.Opcode
				swap := false
				switch x.Op {
				case token.Eq:
					op = isa.OpFseq
				case token.Ne:
					op = isa.OpFsne
				case token.Lt:
					op = isa.OpFslt
				case token.Le:
					op = isa.OpFsle
				case token.Gt:
					op, swap = isa.OpFslt, true
				case token.Ge:
					op, swap = isa.OpFsle, true
				}
				if swap {
					l, r = r, l
				}
				g.emit(ir.Instr{Kind: ir.KOp, Op: op, Dst: cmp, Src1: l, Src2: r})
				zero := g.zeroReg()
				g.emit(ir.Instr{Kind: ir.KBr, Op: isa.OpBne, Dst: ir.NoReg, Src1: cmp, Src2: zero,
					Targets: [2]*ir.Block{t, f}})
				g.cur = nil
				return nil
			}
			var op isa.Opcode
			switch x.Op {
			case token.Eq:
				op = isa.OpBeq
			case token.Ne:
				op = isa.OpBne
			case token.Lt:
				op = isa.OpBlt
			case token.Le:
				op = isa.OpBle
			case token.Gt:
				op = isa.OpBgt
			case token.Ge:
				op = isa.OpBge
			}
			g.emit(ir.Instr{Kind: ir.KBr, Op: op, Dst: ir.NoReg, Src1: l, Src2: r,
				Targets: [2]*ir.Block{t, f}})
			g.cur = nil
			return nil
		}
	}

	// General boolean value: compare against zero.
	v, err := g.genExpr(e)
	if err != nil {
		return err
	}
	zero := g.zeroReg()
	g.emit(ir.Instr{Kind: ir.KBr, Op: isa.OpBne, Dst: ir.NoReg, Src1: v, Src2: zero,
		Targets: [2]*ir.Block{t, f}})
	g.cur = nil
	return nil
}

func (g *gen) zeroReg() ir.Reg {
	z := g.f.NewReg(ir.RInt)
	g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: z, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 0})
	return z
}

func (g *gen) genExpr(e ast.Expr) (ir.Reg, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		r := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg, Imm: x.Value})
		return r, nil
	case *ast.RealLit:
		r := g.f.NewReg(ir.RFP)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpFli, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg, FImm: x.Value})
		return r, nil
	case *ast.BoolLit:
		r := g.f.NewReg(ir.RInt)
		imm := int64(0)
		if x.Value {
			imm = 1
		}
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg, Imm: imm})
		return r, nil

	case *ast.VarRef:
		r := g.f.NewReg(regClassOf(x.Sym.Type))
		g.emit(ir.Instr{Kind: ir.KLoadVar, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg, Sym: x.Sym})
		return r, nil

	case *ast.IndexRef:
		idx, err := g.genLinearIndex(x)
		if err != nil {
			return ir.NoReg, err
		}
		r := g.f.NewReg(regClassOf(x.Sym.Type))
		g.emit(ir.Instr{Kind: ir.KLoadElem, Dst: r, Src1: idx, Src2: ir.NoReg, Sym: x.Sym})
		return r, nil

	case *ast.UnOp:
		switch x.Op {
		case token.Minus:
			v, err := g.genExpr(x.X)
			if err != nil {
				return ir.NoReg, err
			}
			if x.Type() == ast.Real {
				r := g.f.NewReg(ir.RFP)
				g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpFneg, Dst: r, Src1: v, Src2: ir.NoReg})
				return r, nil
			}
			zero := g.zeroReg()
			r := g.f.NewReg(ir.RInt)
			g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpSub, Dst: r, Src1: zero, Src2: v})
			return r, nil
		case token.Not:
			v, err := g.genExpr(x.X)
			if err != nil {
				return ir.NoReg, err
			}
			r := g.f.NewReg(ir.RInt)
			g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpXori, Dst: r, Src1: v, Src2: ir.NoReg, Imm: 1})
			return r, nil
		}
		return ir.NoReg, fmt.Errorf("irgen: bad unary operator")

	case *ast.BinOp:
		if x.Op == token.AndAnd || x.Op == token.OrOr {
			return g.genBoolValue(x)
		}
		l, err := g.genExpr(x.X)
		if err != nil {
			return ir.NoReg, err
		}
		r, err := g.genExpr(x.Y)
		if err != nil {
			return ir.NoReg, err
		}
		isReal := x.X.Type() == ast.Real
		// Comparisons produce int 0/1.
		switch x.Op {
		case token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge:
			dst := g.f.NewReg(ir.RInt)
			var op isa.Opcode
			swap := false
			if isReal {
				switch x.Op {
				case token.Eq:
					op = isa.OpFseq
				case token.Ne:
					op = isa.OpFsne
				case token.Lt:
					op = isa.OpFslt
				case token.Le:
					op = isa.OpFsle
				case token.Gt:
					op, swap = isa.OpFslt, true
				case token.Ge:
					op, swap = isa.OpFsle, true
				}
			} else {
				switch x.Op {
				case token.Eq:
					op = isa.OpSeq
				case token.Ne:
					op = isa.OpSne
				case token.Lt:
					op = isa.OpSlt
				case token.Le:
					op = isa.OpSle
				case token.Gt:
					op, swap = isa.OpSlt, true
				case token.Ge:
					op, swap = isa.OpSle, true
				}
			}
			if swap {
				l, r = r, l
			}
			g.emit(ir.Instr{Kind: ir.KOp, Op: op, Dst: dst, Src1: l, Src2: r})
			return dst, nil
		}
		var op isa.Opcode
		var cls ir.RegClass
		if isReal {
			cls = ir.RFP
			switch x.Op {
			case token.Plus:
				op = isa.OpFadd
			case token.Minus:
				op = isa.OpFsub
			case token.Star:
				op = isa.OpFmul
			case token.Slash:
				op = isa.OpFdiv
			default:
				return ir.NoReg, fmt.Errorf("irgen: bad real operator")
			}
		} else {
			cls = ir.RInt
			switch x.Op {
			case token.Plus:
				op = isa.OpAdd
			case token.Minus:
				op = isa.OpSub
			case token.Star:
				op = isa.OpMul
			case token.Slash:
				op = isa.OpDiv
			case token.Percent:
				op = isa.OpRem
			default:
				return ir.NoReg, fmt.Errorf("irgen: bad int operator")
			}
		}
		dst := g.f.NewReg(cls)
		g.emit(ir.Instr{Kind: ir.KOp, Op: op, Dst: dst, Src1: l, Src2: r})
		return dst, nil

	case *ast.Call:
		if x.Builtin != ast.NotBuiltin {
			return g.genBuiltin(x)
		}
		args := make([]ir.Reg, len(x.Args))
		for i, a := range x.Args {
			v, err := g.genExpr(a)
			if err != nil {
				return ir.NoReg, err
			}
			args[i] = v
		}
		dst := ir.NoReg
		if x.Func.Result != ast.Void {
			dst = g.f.NewReg(regClassOf(x.Func.Result))
		}
		sym := g.funcSym(x)
		g.emit(ir.Instr{Kind: ir.KCall, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Sym: sym, Args: args})
		return dst, nil
	}
	return ir.NoReg, fmt.Errorf("irgen: unhandled expression %T", e)
}

func (g *gen) funcSym(x *ast.Call) *ast.Symbol {
	// Use the analyzer's canonical symbol so callee identity survives
	// into code generation.
	return g.info.Funcs[x.Name].Sym
}

// genBoolValue materializes a short-circuit boolean as 0/1.
func (g *gen) genBoolValue(e ast.Expr) (ir.Reg, error) {
	dst := g.f.NewReg(ir.RInt)
	tB := g.f.NewBlock()
	fB := g.f.NewBlock()
	join := g.f.NewBlock()
	if err := g.genCond(e, tB, fB); err != nil {
		return ir.NoReg, err
	}
	g.startBlock(tB)
	g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 1})
	g.emit(ir.Instr{Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Targets: [2]*ir.Block{join}})
	g.startBlock(fB)
	g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 0})
	g.emit(ir.Instr{Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Targets: [2]*ir.Block{join}})
	g.startBlock(join)
	return dst, nil
}

func (g *gen) genBuiltin(x *ast.Call) (ir.Reg, error) {
	v, err := g.genExpr(x.Args[0])
	if err != nil {
		return ir.NoReg, err
	}
	simple := map[ast.Builtin]isa.Opcode{
		ast.BSqrt: isa.OpFsqrt, ast.BSin: isa.OpFsin, ast.BCos: isa.OpFcos,
		ast.BAtan: isa.OpFatn, ast.BExp: isa.OpFexp, ast.BLog: isa.OpFlog,
		ast.BAbs: isa.OpFabs,
	}
	if op, ok := simple[x.Builtin]; ok {
		dst := g.f.NewReg(ir.RFP)
		g.emit(ir.Instr{Kind: ir.KOp, Op: op, Dst: dst, Src1: v, Src2: ir.NoReg})
		return dst, nil
	}
	switch x.Builtin {
	case ast.BFloat:
		dst := g.f.NewReg(ir.RFP)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpCvtif, Dst: dst, Src1: v, Src2: ir.NoReg})
		return dst, nil
	case ast.BTrunc:
		dst := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpCvtfi, Dst: dst, Src1: v, Src2: ir.NoReg})
		return dst, nil
	case ast.BIAbs:
		// Branch-free: abs(x) = (x ^ (x>>63)) - (x>>63).
		sign := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpSrai, Dst: sign, Src1: v, Src2: ir.NoReg, Imm: 63})
		flipped := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpXor, Dst: flipped, Src1: v, Src2: sign})
		dst := g.f.NewReg(ir.RInt)
		g.emit(ir.Instr{Kind: ir.KOp, Op: isa.OpSub, Dst: dst, Src1: flipped, Src2: sign})
		return dst, nil
	}
	return ir.NoReg, fmt.Errorf("irgen: unhandled builtin %v", x.Builtin)
}
