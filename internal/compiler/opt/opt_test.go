package opt

import (
	"strings"
	"testing"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
)

// fn builds a one-block function ending in ret.
func fn(instrs ...ir.Instr) *ir.Func {
	f := &ir.Func{Name: "t"}
	b := f.NewBlock()
	b.Instrs = append(instrs, ir.Instr{Kind: ir.KRet, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	// Allocate enough vregs for any register mentioned.
	max := ir.Reg(-1)
	var buf []ir.Reg
	for i := range b.Instrs {
		for _, u := range b.Instrs[i].Uses(buf[:0]) {
			if u > max {
				max = u
			}
		}
		if d := b.Instrs[i].Def(); d > max {
			max = d
		}
	}
	for i := ir.Reg(0); i <= max; i++ {
		f.NewReg(ir.RInt)
	}
	return f
}

func op(o isa.Opcode, d, s1, s2 ir.Reg) ir.Instr {
	return ir.Instr{Kind: ir.KOp, Op: o, Dst: d, Src1: s1, Src2: s2}
}

func li(d ir.Reg, v int64) ir.Instr {
	return ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: d, Src1: ir.NoReg, Src2: ir.NoReg, Imm: v}
}

func TestConstFoldArithmetic(t *testing.T) {
	f := fn(
		li(0, 6),
		li(1, 7),
		op(isa.OpMul, 2, 0, 1), // -> li 42
	)
	ConstFold(f)
	in := &f.Blocks[0].Instrs[2]
	if in.Op != isa.OpLi || in.Imm != 42 {
		t.Errorf("6*7 folded to %s", in)
	}
}

func TestConstFoldPreservesDivideByZeroTrap(t *testing.T) {
	f := fn(
		li(0, 1),
		li(1, 0),
		op(isa.OpDiv, 2, 0, 1),
	)
	ConstFold(f)
	if f.Blocks[0].Instrs[2].Op != isa.OpDiv {
		t.Error("division by zero must not be folded away")
	}
}

func TestConstFoldStrengthReduction(t *testing.T) {
	f := fn(
		li(0, 8),
		op(isa.OpMul, 2, 1, 0), // x * 8 -> x << 3
	)
	ConstFold(f)
	in := &f.Blocks[0].Instrs[1]
	if in.Op != isa.OpSlli || in.Imm != 3 {
		t.Errorf("x*8 became %s, want slli by 3", in)
	}
}

func TestConstFoldIdentities(t *testing.T) {
	f := fn(
		li(0, 0),
		li(1, 1),
		op(isa.OpAdd, 2, 3, 0), // x+0 -> mov
		op(isa.OpMul, 4, 3, 1), // x*1 -> mov
		op(isa.OpMul, 5, 3, 0), // x*0 -> li 0
		op(isa.OpSub, 6, 3, 0), // x-0 -> mov
	)
	ConstFold(f)
	ins := f.Blocks[0].Instrs
	if ins[2].Op != isa.OpMov {
		t.Errorf("x+0 -> %s", &ins[2])
	}
	if ins[3].Op != isa.OpMov {
		t.Errorf("x*1 -> %s", &ins[3])
	}
	if ins[4].Op != isa.OpLi || ins[4].Imm != 0 {
		t.Errorf("x*0 -> %s", &ins[4])
	}
	if ins[5].Op != isa.OpMov {
		t.Errorf("x-0 -> %s", &ins[5])
	}
}

func TestConstFoldImmediateForms(t *testing.T) {
	f := fn(
		li(0, 5),
		op(isa.OpAdd, 1, 2, 0), // -> addi x, 5
		op(isa.OpAnd, 3, 2, 0), // -> andi x, 5
	)
	ConstFold(f)
	ins := f.Blocks[0].Instrs
	if ins[1].Op != isa.OpAddi || ins[1].Imm != 5 {
		t.Errorf("add-with-const -> %s", &ins[1])
	}
	if ins[2].Op != isa.OpAndi {
		t.Errorf("and-with-const -> %s", &ins[2])
	}
}

func TestLocalCSEDedupes(t *testing.T) {
	f := fn(
		op(isa.OpAdd, 2, 0, 1),
		op(isa.OpAdd, 3, 0, 1), // duplicate -> mov
		op(isa.OpAdd, 4, 1, 0), // commuted duplicate -> mov
	)
	LocalCSE(f)
	ins := f.Blocks[0].Instrs
	if ins[1].Op != isa.OpMov || ins[1].Src1 != 2 {
		t.Errorf("duplicate add -> %s", &ins[1])
	}
	if ins[2].Op != isa.OpMov {
		t.Errorf("commuted duplicate -> %s", &ins[2])
	}
}

func TestLocalCSECopyPropagation(t *testing.T) {
	f := fn(
		op(isa.OpMov, 1, 0, ir.NoReg),
		op(isa.OpAdd, 2, 1, 1), // should read v0 directly
	)
	LocalCSE(f)
	in := &f.Blocks[0].Instrs[1]
	if in.Src1 != 0 || in.Src2 != 0 {
		t.Errorf("copy not propagated: %s", in)
	}
}

// symOf builds a scalar symbol for memory tests.
func symOf(name string, kind ast.SymKind) *ast.Symbol {
	return &ast.Symbol{Name: name, Kind: kind, Type: ast.Int}
}

func TestStoreForwarding(t *testing.T) {
	g := symOf("g", ast.SymLocal)
	f := fn(
		li(0, 3),
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 0, Src2: ir.NoReg, Sym: g},
		ir.Instr{Kind: ir.KLoadVar, Dst: 1, Src1: ir.NoReg, Src2: ir.NoReg, Sym: g},
	)
	LocalCSE(f)
	in := &f.Blocks[0].Instrs[2]
	if in.Kind != ir.KOp || in.Op != isa.OpMov || in.Src1 != 0 {
		t.Errorf("load after store not forwarded: %s", in)
	}
}

func TestCallClobbersGlobalNotLocal(t *testing.T) {
	glob := symOf("glob", ast.SymGlobal)
	loc := symOf("loc", ast.SymLocal)
	callee := symOf("f", ast.SymFunc)
	f := fn(
		ir.Instr{Kind: ir.KLoadVar, Dst: 0, Src1: ir.NoReg, Src2: ir.NoReg, Sym: glob},
		ir.Instr{Kind: ir.KLoadVar, Dst: 1, Src1: ir.NoReg, Src2: ir.NoReg, Sym: loc},
		ir.Instr{Kind: ir.KCall, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Sym: callee},
		ir.Instr{Kind: ir.KLoadVar, Dst: 2, Src1: ir.NoReg, Src2: ir.NoReg, Sym: glob}, // must reload
		ir.Instr{Kind: ir.KLoadVar, Dst: 3, Src1: ir.NoReg, Src2: ir.NoReg, Sym: loc},  // may reuse
	)
	LocalCSE(f)
	ins := f.Blocks[0].Instrs
	if ins[3].Kind != ir.KLoadVar {
		t.Errorf("global load across call was CSE'd: %s", &ins[3])
	}
	if ins[4].Kind != ir.KOp || ins[4].Op != isa.OpMov {
		t.Errorf("local load across call should be CSE'd (no pointers): %s", &ins[4])
	}
}

func TestDeadStoreElimination(t *testing.T) {
	lv := symOf("v", ast.SymLocal)
	f := fn(
		li(0, 1),
		li(1, 2),
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 0, Src2: ir.NoReg, Sym: lv}, // dead
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 1, Src2: ir.NoReg, Sym: lv},
	)
	LocalCSE(f)
	count := 0
	for i := range f.Blocks[0].Instrs {
		if f.Blocks[0].Instrs[i].Kind == ir.KStoreVar {
			count++
		}
	}
	if count != 1 {
		t.Errorf("dead store not eliminated: %d stores", count)
	}
}

func TestForwardedLoadAllowsDeadStore(t *testing.T) {
	// A load whose value is forwarded from the pending store no longer
	// reads memory, so a later store may still kill the earlier one.
	lv := symOf("v", ast.SymLocal)
	f := fn(
		li(0, 1),
		li(1, 2),
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 0, Src2: ir.NoReg, Sym: lv},
		ir.Instr{Kind: ir.KLoadVar, Dst: 2, Src1: ir.NoReg, Src2: ir.NoReg, Sym: lv},
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 1, Src2: ir.NoReg, Sym: lv},
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 2, Src2: ir.NoReg},
	)
	LocalCSE(f)
	stores, forwarded := 0, false
	for i := range f.Blocks[0].Instrs {
		in := &f.Blocks[0].Instrs[i]
		if in.Kind == ir.KStoreVar {
			stores++
		}
		if in.Kind == ir.KOp && in.Op == isa.OpMov && in.Dst == 2 && in.Src1 == 0 {
			forwarded = true
		}
	}
	if !forwarded {
		t.Error("load not forwarded from pending store")
	}
	if stores != 1 {
		t.Errorf("overwritten store should be dead after forwarding (%d stores)", stores)
	}
}

func TestNonForwardableLoadProtectsStore(t *testing.T) {
	// If the stored value's register is clobbered, the load must read
	// memory, which protects the pending store from elimination.
	lv := symOf("v", ast.SymLocal)
	f := fn(
		li(0, 1),
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 0, Src2: ir.NoReg, Sym: lv},
		li(0, 9), // clobber the canonical register
		ir.Instr{Kind: ir.KLoadVar, Dst: 2, Src1: ir.NoReg, Src2: ir.NoReg, Sym: lv},
		ir.Instr{Kind: ir.KStoreVar, Dst: ir.NoReg, Src1: 0, Src2: ir.NoReg, Sym: lv},
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 2, Src2: ir.NoReg},
	)
	LocalCSE(f)
	stores := 0
	loads := 0
	for i := range f.Blocks[0].Instrs {
		switch f.Blocks[0].Instrs[i].Kind {
		case ir.KStoreVar:
			stores++
		case ir.KLoadVar:
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("load should survive un-forwarded (%d loads)", loads)
	}
	if stores != 2 {
		t.Errorf("store read by a real load was eliminated (%d stores)", stores)
	}
}

func TestDeadCodeRemovesUnused(t *testing.T) {
	f := fn(
		li(0, 1),
		li(1, 2),
		op(isa.OpAdd, 2, 0, 1), // dead
		op(isa.OpAdd, 3, 0, 1),
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 3, Src2: ir.NoReg},
	)
	DeadCode(f)
	for i := range f.Blocks[0].Instrs {
		if d := f.Blocks[0].Instrs[i].Def(); d == 2 {
			t.Error("dead add survived")
		}
	}
	// And the transitive operands of the live add survive.
	found := 0
	for i := range f.Blocks[0].Instrs {
		if f.Blocks[0].Instrs[i].Op == isa.OpLi {
			found++
		}
	}
	if found != 2 {
		t.Errorf("live operands removed: %d li left", found)
	}
}

func TestDeadCodeKeepsTraps(t *testing.T) {
	f := fn(
		li(0, 1),
		li(1, 0),
		op(isa.OpDiv, 2, 0, 1), // result dead, but may trap
	)
	DeadCode(f)
	kept := false
	for i := range f.Blocks[0].Instrs {
		if f.Blocks[0].Instrs[i].Op == isa.OpDiv {
			kept = true
		}
	}
	if !kept {
		t.Error("trap-capable divide removed by DCE")
	}
}

func TestUnrollEligibility(t *testing.T) {
	parse := func(src string) *ast.Program {
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sem.Analyze(p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Eligible loop unrolls.
	p := parse(`
var a[100]: int;
func main() {
	var i: int;
	for i = 0 to 99 { a[i] = i; }
}
`)
	if n := UnrollLoops(p, 4); n != 1 {
		t.Errorf("eligible loop: unrolled %d, want 1", n)
	}

	// Break makes it ineligible.
	p = parse(`
var a[100]: int;
func main() {
	var i: int;
	for i = 0 to 99 { if a[i] == 5 { break; } }
}
`)
	if n := UnrollLoops(p, 4); n != 0 {
		t.Errorf("loop with break unrolled")
	}

	// Mutating the loop variable makes it ineligible.
	p = parse(`
func main() {
	var i: int;
	for i = 0 to 99 { i = i + 1; }
}
`)
	if n := UnrollLoops(p, 4); n != 0 {
		t.Errorf("loop mutating its variable unrolled")
	}

	// A nested loop is not innermost.
	p = parse(`
var a[100]: int;
func main() {
	var i, j: int;
	for i = 0 to 9 {
		for j = 0 to 9 { a[i * 10 + j] = i + j; }
	}
}
`)
	if n := UnrollLoops(p, 2); n != 1 {
		t.Errorf("only the inner loop should unroll, got %d", n)
	}

	// Hi depending on a variable assigned in the body is unstable.
	p = parse(`
var n: int;
func main() {
	var i: int;
	n = 50;
	for i = 0 to n { n = n - 1; }
}
`)
	if n := UnrollLoops(p, 2); n != 0 {
		t.Errorf("loop with unstable bound unrolled")
	}

	// Declarations in the body prevent unrolling.
	p = parse(`
func main() {
	var i: int;
	for i = 0 to 9 { var t: int; t = i; }
}
`)
	if n := UnrollLoops(p, 2); n != 0 {
		t.Errorf("loop with declarations unrolled")
	}
}

func TestReassociateBalancesChain(t *testing.T) {
	// v10 = ((((v0+v1)+v2)+v3)+v4): depth 4 -> balanced depth ~3.
	f := fn(
		op(isa.OpAdd, 5, 0, 1),
		op(isa.OpAdd, 6, 5, 2),
		op(isa.OpAdd, 7, 6, 3),
		op(isa.OpAdd, 8, 7, 4),
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 8, Src2: ir.NoReg},
	)
	if !Reassociate(f) {
		t.Fatal("chain not reassociated")
	}
	// Depth check: longest add-chain to the final value.
	depth := map[ir.Reg]int{}
	var buf []ir.Reg
	var final ir.Reg = -1
	for i := range f.Blocks[0].Instrs {
		in := &f.Blocks[0].Instrs[i]
		if in.Kind != ir.KOp || in.Op != isa.OpAdd {
			continue
		}
		d := 0
		for _, u := range in.Uses(buf[:0]) {
			if depth[u] > d {
				d = depth[u]
			}
		}
		depth[in.Dst] = d + 1
		final = in.Dst
	}
	if depth[final] >= 4 {
		t.Errorf("chain depth still %d after reassociation:\n%s", depth[final], f.String())
	}
	if got := strings.Count(f.String(), "add"); got != 4 {
		t.Errorf("reassociation changed operation count: %d adds", got)
	}
}

func TestReassociateLeavesShortChains(t *testing.T) {
	f := fn(
		op(isa.OpAdd, 3, 0, 1),
		op(isa.OpAdd, 4, 3, 2),
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 4, Src2: ir.NoReg},
	)
	if Reassociate(f) {
		t.Error("2-link chain should not be touched")
	}
}

func TestReassociateSkipsMultiUseIntermediates(t *testing.T) {
	f := fn(
		op(isa.OpAdd, 4, 0, 1),
		op(isa.OpAdd, 5, 4, 2),
		op(isa.OpAdd, 6, 5, 3),
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 6, Src2: ir.NoReg},
		ir.Instr{Kind: ir.KPrint, Op: isa.OpPrinti, Dst: ir.NoReg, Src1: 5, Src2: ir.NoReg}, // second use of v5
	)
	Reassociate(f)
	// v5 must still exist with its original value (chain through it
	// cannot be rewritten).
	found := false
	for i := range f.Blocks[0].Instrs {
		in := &f.Blocks[0].Instrs[i]
		if in.Def() == 5 && in.Op == isa.OpAdd && in.Src1 == 4 && in.Src2 == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("multi-use intermediate rewritten:\n%s", f.String())
	}
}
