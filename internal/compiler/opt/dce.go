package opt

import (
	"ilp/internal/ir"
	"ilp/internal/isa"
)

// DeadCode removes pure instructions whose results are never used, using
// global liveness. Iterates to a fixed point (removing an instruction can
// make its operands' producers dead).
func DeadCode(f *ir.Func) bool {
	any := false
	for {
		if !dcePass(f) {
			return any
		}
		any = true
	}
}

// removable reports whether the instruction can be deleted when its result
// is dead. Traps must be preserved: integer divide/remainder stay put, as
// does float-to-int conversion (range trap).
func removable(in *ir.Instr) bool {
	switch in.Kind {
	case ir.KOp:
		switch in.Op {
		case isa.OpDiv, isa.OpRem, isa.OpCvtfi:
			return false
		}
		return in.Op.Info().HasDst
	case ir.KLoadVar:
		return true
	case ir.KLoadElem:
		// Loads cannot trap here (compilers for this study assume
		// in-bounds programs; the reference interpreter checks bounds
		// and the test suite runs both).
		return true
	}
	return false
}

func dcePass(f *ir.Func) bool {
	lv := f.ComputeLiveness()
	changed := false
	var buf [4]ir.Reg
	for _, b := range f.Blocks {
		live := lv.Out(b).Clone()
		// Backward scan; mark deletions.
		del := make([]bool, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			d := in.Def()
			if _, pinned := f.Pinned[d]; pinned {
				// Home registers carry variables across functions;
				// writes to them are never dead within one function's
				// view.
				for _, u := range in.Uses(buf[:0]) {
					live.Add(u)
				}
				continue
			}
			if d != ir.NoReg && !live.Has(d) && removable(in) {
				del[i] = true
				changed = true
				continue
			}
			if d != ir.NoReg {
				live.Remove(d)
			}
			for _, u := range in.Uses(buf[:0]) {
				live.Add(u)
			}
		}
		if changed {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				if !del[i] {
					kept = append(kept, b.Instrs[i])
				}
			}
			b.Instrs = kept
		}
	}
	return changed
}
