package opt

import (
	"math"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
)

// LocalCSE performs local value numbering within each basic block:
// common-subexpression elimination, copy propagation, store-to-load
// forwarding, redundant-load elimination, and local dead-store elimination.
// These are the "intra-block optimizations" step of Figure 4-8.
//
// Aliasing here is exact, because TL has no pointers: distinct scalars
// never alias, distinct arrays never alias, and calls can touch globals and
// arrays but never locals or parameters. (The pipeline scheduler is a
// different story — it deliberately mimics the paper's conservative
// scheduler unless careful unrolling is on.)
func LocalCSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if cseBlock(f, b) {
			changed = true
		}
	}
	return changed
}

// vnKey identifies an available expression for value numbering. It is a
// comparable struct (not a formatted string) so key construction in the
// per-instruction loop allocates nothing. kind discriminates the three
// expression families that used to share a string namespace.
type vnKey struct {
	kind   uint8 // vnExpr, vnLoadVar, or vnLoadElem
	op     isa.Opcode
	sym    *ast.Symbol
	v1, v2 int
	imm    int64
	fbits  uint64
}

const (
	vnExpr = iota
	vnLoadVar
	vnLoadElem
)

type vnState struct {
	next    int
	regVN   map[ir.Reg]int
	canon   map[int]ir.Reg // vn -> register currently holding it
	exprVN  map[vnKey]int
	scalarE map[*ast.Symbol]int // store epoch per scalar
	arrayE  map[*ast.Symbol]int // store epoch per array
	lastSt  map[*ast.Symbol]int // vn of last value stored to scalar (for forwarding)
	epoch   int
}

func (s *vnState) vnOf(r ir.Reg) int {
	if vn, ok := s.regVN[r]; ok {
		return vn
	}
	s.next++
	s.regVN[r] = s.next
	s.canon[s.next] = r
	return s.next
}

func (s *vnState) fresh() int {
	s.next++
	return s.next
}

// define binds dst to vn, updating canonical registers.
func (s *vnState) define(dst ir.Reg, vn int) {
	if old, ok := s.regVN[dst]; ok && s.canon[old] == dst {
		delete(s.canon, old)
	}
	s.regVN[dst] = vn
	if _, ok := s.canon[vn]; !ok {
		s.canon[vn] = dst
	}
}

func cseBlock(f *ir.Func, b *ir.Block) bool {
	st := &vnState{
		regVN:   map[ir.Reg]int{},
		canon:   map[int]ir.Reg{},
		exprVN:  map[vnKey]int{},
		scalarE: map[*ast.Symbol]int{},
		arrayE:  map[*ast.Symbol]int{},
		lastSt:  map[*ast.Symbol]int{},
	}
	changed := false

	// canonicalize rewrites an operand to the canonical register of its
	// value number (copy propagation).
	canonicalize := func(in *ir.Instr, r ir.Reg) {
		if r == ir.NoReg {
			return
		}
		vn := st.vnOf(r)
		if c, ok := st.canon[vn]; ok && c != r && f.RegClassOf(c) == f.RegClassOf(r) {
			in.ReplaceUses(r, c)
			changed = true
		}
	}

	// Track the index of the last store to each scalar with no
	// intervening readers, for dead-store elimination.
	pendingStore := map[*ast.Symbol]int{}
	var dead []int

	clobberCalls := func() {
		// A call may read or write any global scalar or array — in
		// memory or in a pinned home register.
		for r := range f.Pinned {
			st.define(r, st.fresh())
		}
		for sym := range st.scalarE {
			if sym.Kind == ast.SymGlobal {
				st.epoch++
				st.scalarE[sym] = st.epoch
				delete(st.lastSt, sym)
			}
		}
		for sym := range st.arrayE {
			st.epoch++
			st.arrayE[sym] = st.epoch
		}
		for sym := range pendingStore {
			if sym.Kind == ast.SymGlobal {
				delete(pendingStore, sym)
			}
		}
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		// Copy-propagate all register sources first.
		var buf [4]ir.Reg
		for _, u := range in.Uses(buf[:0]) {
			canonicalize(in, u)
		}

		switch in.Kind {
		case ir.KOp:
			info := in.Op.Info()
			if !info.HasDst {
				continue
			}
			// Moves: destination shares the source's value number.
			if in.Op == isa.OpMov || in.Op == isa.OpFmov {
				st.define(in.Dst, st.vnOf(in.Src1))
				continue
			}
			// Pure ops: value-number and CSE. Div/Rem trap, so they
			// are not deduplicated away from their position — but two
			// identical divides still compute the same value, and
			// replacing the second with a move preserves the trap
			// (the first already executed), so CSE is safe for them
			// too.
			key := exprKey(st, in)
			if vn, ok := st.exprVN[key]; ok {
				if c, okc := st.canon[vn]; okc && c != in.Dst {
					fp := f.RegClassOf(in.Dst) == ir.RFP
					setMov(in, fp, c)
					st.define(in.Dst, vn)
					changed = true
					continue
				}
			}
			vn := st.fresh()
			st.exprVN[key] = vn
			st.define(in.Dst, vn)

		case ir.KLoadVar:
			sym := in.Sym
			if _, seen := st.scalarE[sym]; !seen {
				st.scalarE[sym] = 0 // register for call clobbering
			}
			// Forward a store still pending in this block.
			if vn, ok := st.lastSt[sym]; ok {
				if c, okc := st.canon[vn]; okc {
					fp := f.RegClassOf(in.Dst) == ir.RFP
					*in = ir.Instr{Kind: ir.KOp, Op: isa.OpMov, Dst: in.Dst, Src1: c, Src2: ir.NoReg}
					if fp {
						in.Op = isa.OpFmov
					}
					st.define(in.Dst, vn)
					changed = true
					// The variable is still read conceptually; the
					// pending store is NOT dead (the value escapes the
					// block through memory), but forwarding doesn't
					// change that.
					continue
				}
			}
			key := vnKey{kind: vnLoadVar, sym: sym, v1: st.scalarE[sym]}
			if vn, ok := st.exprVN[key]; ok {
				if c, okc := st.canon[vn]; okc && c != in.Dst {
					fp := f.RegClassOf(in.Dst) == ir.RFP
					setMov(in, fp, c)
					st.define(in.Dst, vn)
					changed = true
					continue
				}
			}
			// This load actually reads memory: it protects any
			// pending store to the same scalar from elimination.
			delete(pendingStore, sym)
			vn := st.fresh()
			st.exprVN[key] = vn
			st.define(in.Dst, vn)

		case ir.KStoreVar:
			sym := in.Sym
			// Dead-store elimination: a previous store with no
			// intervening load of this scalar (and, for globals, no
			// call) is overwritten here.
			if j, ok := pendingStore[sym]; ok {
				dead = append(dead, j)
				changed = true
			}
			pendingStore[sym] = i
			st.epoch++
			st.scalarE[sym] = st.epoch
			st.lastSt[sym] = st.vnOf(in.Src1)

		case ir.KLoadElem:
			sym := in.Sym
			if _, seen := st.arrayE[sym]; !seen {
				st.arrayE[sym] = 0
			}
			key := vnKey{kind: vnLoadElem, sym: sym, v1: st.vnOf(in.Src1), v2: st.arrayE[sym], imm: in.Imm}
			if vn, ok := st.exprVN[key]; ok {
				if c, okc := st.canon[vn]; okc && c != in.Dst {
					fp := f.RegClassOf(in.Dst) == ir.RFP
					setMov(in, fp, c)
					st.define(in.Dst, vn)
					changed = true
					continue
				}
			}
			vn := st.fresh()
			st.exprVN[key] = vn
			st.define(in.Dst, vn)

		case ir.KStoreElem:
			st.epoch++
			st.arrayE[in.Sym] = st.epoch
			// A store through a computed index may hit any element;
			// reads of this array must not forward across it (epoch
			// bump above handles that).

		case ir.KCall:
			clobberCalls()
			if in.Dst != ir.NoReg {
				st.define(in.Dst, st.fresh())
			}

		case ir.KPrint, ir.KRet, ir.KBr, ir.KJmp:
			// Reads only (handled by canonicalization above).
		}
	}

	// Loads of a scalar later in the block kill pending-store deadness;
	// that was handled by lastSt forwarding — but a forwarded load still
	// reads memory conceptually? No: it became a move, so the previous
	// store IS only dead if a later store overwrites it, which is what
	// pendingStore tracked. Stores still pending at block end are live
	// (visible to other blocks). Remove the dead ones now.
	if len(dead) > 0 {
		del := map[int]bool{}
		for _, j := range dead {
			del[j] = true
		}
		kept := b.Instrs[:0]
		for i := range b.Instrs {
			if !del[i] {
				kept = append(kept, b.Instrs[i])
			}
		}
		b.Instrs = kept
	}
	return changed
}

// exprKey builds a value-numbering key for a pure KOp. Commutative
// operations normalize operand order. Float immediates key on their bit
// pattern, which distinguishes everything the old hex formatting did.
func exprKey(st *vnState, in *ir.Instr) vnKey {
	info := in.Op.Info()
	v1, v2 := 0, 0
	if info.NSrc >= 1 {
		v1 = st.vnOf(in.Src1)
	}
	if info.NSrc >= 2 {
		v2 = st.vnOf(in.Src2)
	}
	switch in.Op {
	case isa.OpAdd, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpFadd, isa.OpFmul, isa.OpSeq, isa.OpSne, isa.OpFseq, isa.OpFsne:
		if v2 < v1 {
			v1, v2 = v2, v1
		}
	}
	return vnKey{kind: vnExpr, op: in.Op, v1: v1, v2: v2, imm: in.Imm, fbits: math.Float64bits(in.FImm)}
}
