package opt

import (
	"sort"

	"ilp/internal/ir"
	"ilp/internal/isa"
	"ilp/internal/lang/ast"
)

// LoopInvariant hoists loop-invariant computations to loop preheaders —
// the paper's canonical example of a global optimization ("to move
// invariant code out of a loop, we just remove a large computation and
// replace it with a reference to a single temporary", §4.4).
//
// Hoisted instructions are pure operations (and loads whose location is
// provably not written in the loop) whose operands are defined outside the
// loop. Operations that can trap (divide, remainder, float-to-int) are not
// speculated, since a preheader executes even when the loop body might not.
func LoopInvariant(f *ir.Func) bool {
	loops := f.NaturalLoops()
	if len(loops) == 0 {
		return false
	}
	// Innermost first so inner invariants can later migrate further out.
	sort.Slice(loops, func(i, j int) bool { return loops[i].Depth > loops[j].Depth })

	changed := false
	for _, l := range loops {
		if hoistLoop(f, l) {
			changed = true
		}
	}
	if changed {
		f.RemoveUnreachable()
	}
	return changed
}

func hoistLoop(f *ir.Func, l *ir.Loop) bool {
	// Def counts across the whole function (non-SSA safety: only hoist
	// single-definition registers).
	defCount := map[ir.Reg]int{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				defCount[d]++
			}
		}
	}

	// What the loop writes.
	definedInLoop := map[ir.Reg]bool{}
	storedScalar := map[*ast.Symbol]bool{}
	storedArray := map[*ast.Symbol]bool{}
	hasCall := false
	for b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.NoReg {
				definedInLoop[d] = true
			}
			switch in.Kind {
			case ir.KStoreVar:
				storedScalar[in.Sym] = true
			case ir.KStoreElem:
				storedArray[in.Sym] = true
			case ir.KCall:
				hasCall = true
			}
		}
	}

	if hasCall {
		// Calls may rewrite any pinned home register (promoted globals).
		for r := range f.Pinned {
			definedInLoop[r] = true
		}
	}
	hoisted := map[ir.Reg]bool{}
	invariantReg := func(r ir.Reg) bool {
		return r == ir.NoReg || !definedInLoop[r] || hoisted[r]
	}
	var toHoist []ir.Instr
	var buf [4]ir.Reg

	// Deterministic block order (map iteration would make the hoisting
	// order — and thus cycle counts — vary run to run).
	blocks := make([]*ir.Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })

	// Iterate: hoisting one instruction can make another invariant.
	for again := true; again; {
		again = false
		for _, b := range blocks {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				if canHoist(&in, invariantReg, defCount, storedScalar, storedArray, hasCall, &buf) {
					toHoist = append(toHoist, in)
					hoisted[in.Def()] = true
					again = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
	if len(toHoist) == 0 {
		return false
	}

	// Build the preheader and retarget entering edges.
	ph := f.NewBlock()
	ph.Instrs = append(ph.Instrs, toHoist...)
	ph.Instrs = append(ph.Instrs, ir.Instr{
		Kind: ir.KJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg,
		Targets: [2]*ir.Block{l.Header},
	})
	for _, b := range f.Blocks {
		if b == ph || l.Blocks[b] {
			continue
		}
		t := b.Terminator()
		if t == nil {
			continue
		}
		for k := range t.Targets {
			if t.Targets[k] == l.Header {
				t.Targets[k] = ph
			}
		}
	}
	return true
}

func canHoist(in *ir.Instr, invariantReg func(ir.Reg) bool, defCount map[ir.Reg]int,
	storedScalar, storedArray map[*ast.Symbol]bool, hasCall bool, buf *[4]ir.Reg) bool {

	d := in.Def()
	if d == ir.NoReg || defCount[d] != 1 {
		return false
	}
	for _, u := range in.Uses((*buf)[:0]) {
		if !invariantReg(u) {
			return false
		}
	}
	switch in.Kind {
	case ir.KOp:
		switch in.Op {
		case isa.OpDiv, isa.OpRem, isa.OpCvtfi:
			return false // may trap; do not speculate
		}
		return in.Op.Info().HasDst
	case ir.KLoadVar:
		if storedScalar[in.Sym] {
			return false
		}
		// Calls in the loop may write global scalars, never locals or
		// parameters (TL has no pointers).
		if hasCall && in.Sym.Kind == ast.SymGlobal {
			return false
		}
		return true
	case ir.KLoadElem:
		if storedArray[in.Sym] || hasCall {
			return false
		}
		return true
	}
	return false
}
