package opt

import (
	"ilp/internal/ir"
	"ilp/internal/isa"
)

// Reassociate rebalances long linear chains of an associative operator
// into trees, exposing parallelism. This is half of the paper's careful
// unrolling: "we reassociate long strings of additions or multiplications
// to maximize the parallelism" (§4.4). A chain
//
//	c1 = a OP x1; c2 = c1 OP x2; ...; cn = c(n-1) OP xn
//
// (each intermediate used exactly once, all in one block) becomes a
// balanced reduction tree writing the same final register.
//
// For floating point this changes rounding, exactly as the paper's hand
// restructuring did ("this restructuring requires us to use knowledge of
// operator associativity"); it therefore only runs in careful mode, and the
// differential tests compare its outputs with a tolerance.
func Reassociate(f *ir.Func) bool {
	// Function-wide use and def counts (non-SSA safety).
	useCount := map[ir.Reg]int{}
	defCount := map[ir.Reg]int{}
	var buf [4]ir.Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, u := range in.Uses(buf[:0]) {
				useCount[u]++
			}
			if d := in.Def(); d != ir.NoReg {
				defCount[d]++
			}
		}
	}

	changed := false
	for _, b := range f.Blocks {
		if reassocBlock(f, b, useCount, defCount) {
			changed = true
		}
	}
	return changed
}

// callBetween reports whether a call sits strictly between two indices.
func callBetween(b *ir.Block, lo, hi int) bool {
	for i := lo + 1; i < hi; i++ {
		if b.Instrs[i].Kind == ir.KCall {
			return true
		}
	}
	return false
}

func associative(op isa.Opcode) bool {
	switch op {
	case isa.OpAdd, isa.OpMul, isa.OpFadd, isa.OpFmul:
		return true
	}
	return false
}

func reassocBlock(f *ir.Func, b *ir.Block, useCount, defCount map[ir.Reg]int) bool {
	changed := false
	// Index of the defining instruction within this block, for chain
	// discovery.
	defAt := map[ir.Reg]int{}
	for i := range b.Instrs {
		if d := b.Instrs[i].Def(); d != ir.NoReg {
			defAt[d] = i
		}
	}
	inChain := make([]bool, len(b.Instrs))

	for end := len(b.Instrs) - 1; end >= 0; end-- {
		if inChain[end] {
			continue
		}
		last := &b.Instrs[end]
		if last.Kind != ir.KOp || !associative(last.Op) {
			continue
		}
		op := last.Op
		// Walk the chain upward: each link is OP(prev, x) or OP(x, prev)
		// where prev is defined in this block by the same op, used once,
		// and defined once in the function.
		var leaves []ir.Reg
		var members []int
		cur := end
		for {
			in := &b.Instrs[cur]
			members = append(members, cur)
			isLink := func(r ir.Reg) bool {
				j, here := defAt[r]
				return here && j < cur && !inChain[j] &&
					b.Instrs[j].Kind == ir.KOp && b.Instrs[j].Op == op &&
					useCount[r] == 1 && defCount[r] == 1
			}
			l1, l2 := isLink(in.Src1), isLink(in.Src2)
			// Follow exactly one link. If both operands are links the
			// node is already tree-shaped (e.g. the output of a prior
			// rebalance): treat it as a head so rescanning terminates.
			if l1 != l2 {
				link, other := in.Src1, in.Src2
				if l2 {
					link, other = in.Src2, in.Src1
				}
				leaves = append(leaves, other)
				cur = defAt[link]
				continue
			}
			// Chain head: both operands are leaves.
			leaves = append(leaves, in.Src2, in.Src1)
			break
		}
		if len(members) < 3 {
			continue
		}
		// Rebuilding the tree at the last member's position moves leaf
		// reads later. That is only unsafe for pinned home registers,
		// which a call in between could rewrite.
		minIdx := members[len(members)-1]
		if callBetween(b, minIdx, end) {
			pinnedLeaf := false
			for _, l := range leaves {
				if _, p := f.Pinned[l]; p {
					pinnedLeaf = true
					break
				}
			}
			if pinnedLeaf {
				continue
			}
		}
		// leaves were collected from the tail inward; order is
		// irrelevant for an associative/commutative reduction, but
		// reverse for stable, source-like ordering.
		for i, j := 0, len(leaves)-1; i < j; i, j = i+1, j-1 {
			leaves[i], leaves[j] = leaves[j], leaves[i]
		}

		// Build the balanced tree at the position of the final link.
		cls := ir.RInt
		if op == isa.OpFadd || op == isa.OpFmul {
			cls = ir.RFP
		}
		var tree []ir.Instr
		level := leaves
		for len(level) > 1 {
			var next []ir.Reg
			for i := 0; i+1 < len(level); i += 2 {
				var dst ir.Reg
				if len(level) == 2 {
					dst = b.Instrs[end].Dst // final result register
				} else {
					dst = f.NewReg(cls)
				}
				tree = append(tree, ir.Instr{Kind: ir.KOp, Op: op, Dst: dst, Src1: level[i], Src2: level[i+1]})
				next = append(next, dst)
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}

		// Mark chain members for removal and splice the tree in at the
		// end position.
		for _, m := range members {
			inChain[m] = true
		}
		var out []ir.Instr
		for i := range b.Instrs {
			if inChain[i] && i != end {
				continue
			}
			if i == end {
				out = append(out, tree...)
				continue
			}
			out = append(out, b.Instrs[i])
		}
		// Rebuild bookkeeping after splicing.
		b.Instrs = out
		defAt = map[ir.Reg]int{}
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoReg {
				defAt[d] = i
			}
		}
		inChain = make([]bool, len(b.Instrs))
		changed = true
		end = len(b.Instrs) // restart scan of this block
	}
	return changed
}
