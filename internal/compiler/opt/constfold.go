// Package opt implements the classical optimizations of §4.4: constant
// folding and algebraic simplification, local common-subexpression
// elimination with copy propagation and store forwarding, dead-code
// elimination, loop-invariant code motion, reassociation (for careful
// unrolling), and AST-level loop unrolling. Each pass is independent so the
// Figure 4-8 experiment can stack them exactly as the paper does.
package opt

import (
	"math"

	"ilp/internal/ir"
	"ilp/internal/isa"
)

// constVal is a compile-time known register value.
type constVal struct {
	known bool
	fp    bool
	i     int64
	f     float64
}

// ConstFold folds constant computations and strength-reduces within each
// basic block: operations whose operands are known become immediate loads,
// adds/subtracts of a constant become immediate forms, multiplications by
// powers of two become shifts, and algebraic identities (x+0, x*1, x*0)
// simplify. Floating-point identities are left alone (they are not exact),
// but folding of constant float operands is (it performs the same float64
// arithmetic the machine would).
func ConstFold(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		consts := map[ir.Reg]constVal{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind != ir.KOp {
				if d := in.Def(); d != ir.NoReg {
					delete(consts, d)
				}
				if in.Kind == ir.KCall {
					// A callee may rewrite any pinned home register
					// (promoted globals).
					for r := range f.Pinned {
						delete(consts, r)
					}
				}
				continue
			}
			if foldInstr(in, consts) {
				changed = true
			}
			// Record or invalidate the destination.
			switch in.Op {
			case isa.OpLi:
				consts[in.Dst] = constVal{known: true, i: in.Imm}
			case isa.OpFli:
				consts[in.Dst] = constVal{known: true, fp: true, f: in.FImm}
			default:
				if d := in.Def(); d != ir.NoReg {
					delete(consts, d)
				}
			}
		}
	}
	return changed
}

// setLi rewrites the instruction to load an integer constant.
func setLi(in *ir.Instr, v int64) {
	*in = ir.Instr{Kind: ir.KOp, Op: isa.OpLi, Dst: in.Dst, Src1: ir.NoReg, Src2: ir.NoReg, Imm: v}
}

// setFli rewrites the instruction to load a float constant.
func setFli(in *ir.Instr, v float64) {
	*in = ir.Instr{Kind: ir.KOp, Op: isa.OpFli, Dst: in.Dst, Src1: ir.NoReg, Src2: ir.NoReg, FImm: v}
}

// setMov rewrites the instruction to a register move.
func setMov(in *ir.Instr, fp bool, src ir.Reg) {
	op := isa.OpMov
	if fp {
		op = isa.OpFmov
	}
	*in = ir.Instr{Kind: ir.KOp, Op: op, Dst: in.Dst, Src1: src, Src2: ir.NoReg}
}

// setImmOp rewrites to an immediate-form operation.
func setImmOp(in *ir.Instr, op isa.Opcode, src ir.Reg, imm int64) {
	*in = ir.Instr{Kind: ir.KOp, Op: op, Dst: in.Dst, Src1: src, Src2: ir.NoReg, Imm: imm}
}

func isPow2(v int64) (uint, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldInstr rewrites one KOp in place if possible.
func foldInstr(in *ir.Instr, consts map[ir.Reg]constVal) bool {
	info := in.Op.Info()
	var c1, c2 constVal
	if info.NSrc >= 1 && in.Src1 != ir.NoReg {
		c1 = consts[in.Src1]
	}
	if info.NSrc >= 2 && in.Src2 != ir.NoReg {
		c2 = consts[in.Src2]
	}

	// Fully constant: fold.
	if info.NSrc == 2 && c1.known && c2.known {
		switch in.Op {
		case isa.OpAdd:
			setLi(in, c1.i+c2.i)
		case isa.OpSub:
			setLi(in, c1.i-c2.i)
		case isa.OpMul:
			setLi(in, c1.i*c2.i)
		case isa.OpDiv:
			if c2.i == 0 {
				return false // preserve the runtime trap
			}
			setLi(in, c1.i/c2.i)
		case isa.OpRem:
			if c2.i == 0 {
				return false
			}
			setLi(in, c1.i%c2.i)
		case isa.OpAnd:
			setLi(in, c1.i&c2.i)
		case isa.OpOr:
			setLi(in, c1.i|c2.i)
		case isa.OpXor:
			setLi(in, c1.i^c2.i)
		case isa.OpSll:
			setLi(in, c1.i<<(uint64(c2.i)&63))
		case isa.OpSrl:
			setLi(in, int64(uint64(c1.i)>>(uint64(c2.i)&63)))
		case isa.OpSra:
			setLi(in, c1.i>>(uint64(c2.i)&63))
		case isa.OpSlt:
			setLi(in, b2i(c1.i < c2.i))
		case isa.OpSle:
			setLi(in, b2i(c1.i <= c2.i))
		case isa.OpSeq:
			setLi(in, b2i(c1.i == c2.i))
		case isa.OpSne:
			setLi(in, b2i(c1.i != c2.i))
		case isa.OpFadd:
			setFli(in, c1.f+c2.f)
		case isa.OpFsub:
			setFli(in, c1.f-c2.f)
		case isa.OpFmul:
			setFli(in, c1.f*c2.f)
		case isa.OpFdiv:
			setFli(in, c1.f/c2.f)
		case isa.OpFslt:
			setLi(in, b2i(c1.f < c2.f))
		case isa.OpFsle:
			setLi(in, b2i(c1.f <= c2.f))
		case isa.OpFseq:
			setLi(in, b2i(c1.f == c2.f))
		case isa.OpFsne:
			setLi(in, b2i(c1.f != c2.f))
		default:
			return false
		}
		return true
	}
	if info.NSrc == 1 && c1.known {
		switch in.Op {
		case isa.OpAddi:
			setLi(in, c1.i+in.Imm)
		case isa.OpAndi:
			setLi(in, c1.i&in.Imm)
		case isa.OpOri:
			setLi(in, c1.i|in.Imm)
		case isa.OpXori:
			setLi(in, c1.i^in.Imm)
		case isa.OpSlli:
			setLi(in, c1.i<<(uint64(in.Imm)&63))
		case isa.OpSrli:
			setLi(in, int64(uint64(c1.i)>>(uint64(in.Imm)&63)))
		case isa.OpSrai:
			setLi(in, c1.i>>(uint64(in.Imm)&63))
		case isa.OpMov:
			setLi(in, c1.i)
		case isa.OpFmov:
			setFli(in, c1.f)
		case isa.OpFneg:
			setFli(in, -c1.f)
		case isa.OpFabs:
			setFli(in, math.Abs(c1.f))
		case isa.OpCvtif:
			setFli(in, float64(c1.i))
		case isa.OpFsqrt:
			setFli(in, math.Sqrt(c1.f))
		default:
			return false
		}
		return true
	}

	// Partially constant: immediate forms, identities, strength reduction.
	switch in.Op {
	case isa.OpAdd:
		if c2.known {
			if c2.i == 0 {
				setMov(in, false, in.Src1)
			} else {
				setImmOp(in, isa.OpAddi, in.Src1, c2.i)
			}
			return true
		}
		if c1.known {
			if c1.i == 0 {
				setMov(in, false, in.Src2)
			} else {
				setImmOp(in, isa.OpAddi, in.Src2, c1.i)
			}
			return true
		}
	case isa.OpSub:
		if c2.known {
			if c2.i == 0 {
				setMov(in, false, in.Src1)
			} else {
				setImmOp(in, isa.OpAddi, in.Src1, -c2.i)
			}
			return true
		}
	case isa.OpMul:
		for pass := 0; pass < 2; pass++ {
			c, src := c2, in.Src1
			if pass == 1 {
				c, src = c1, in.Src2
			}
			if !c.known {
				continue
			}
			switch {
			case c.i == 0:
				setLi(in, 0)
				return true
			case c.i == 1:
				setMov(in, false, src)
				return true
			default:
				if sh, ok := isPow2(c.i); ok {
					setImmOp(in, isa.OpSlli, src, int64(sh))
					return true
				}
			}
		}
	case isa.OpDiv:
		if c2.known && c2.i == 1 {
			setMov(in, false, in.Src1)
			return true
		}
		if c2.known {
			if sh, ok := isPow2(c2.i); ok {
				// Only safe for non-negative dividends in general;
				// without range info, restrict to unsigned-looking
				// shifts when the dividend is a known non-negative
				// constant — which was handled above — so skip.
				_ = sh
			}
		}
	case isa.OpAnd, isa.OpOr, isa.OpXor:
		for pass := 0; pass < 2; pass++ {
			c, src := c2, in.Src1
			if pass == 1 {
				c, src = c1, in.Src2
			}
			if !c.known {
				continue
			}
			var immOp isa.Opcode
			switch in.Op {
			case isa.OpAnd:
				immOp = isa.OpAndi
			case isa.OpOr:
				immOp = isa.OpOri
			default:
				immOp = isa.OpXori
			}
			setImmOp(in, immOp, src, c.i)
			return true
		}
	case isa.OpSll, isa.OpSrl, isa.OpSra:
		if c2.known {
			var immOp isa.Opcode
			switch in.Op {
			case isa.OpSll:
				immOp = isa.OpSlli
			case isa.OpSrl:
				immOp = isa.OpSrli
			default:
				immOp = isa.OpSrai
			}
			setImmOp(in, immOp, in.Src1, c2.i&63)
			return true
		}
	case isa.OpAddi:
		if in.Imm == 0 {
			setMov(in, false, in.Src1)
			return true
		}
	}
	return false
}
