package opt

import (
	"ilp/internal/lang/ast"
	"ilp/internal/lang/token"
)

// UnrollLoops unrolls eligible innermost counted loops by the given factor,
// at the syntax-tree level — the paper did this "by hand" on the benchmark
// sources, in naive and careful variants (§4.4); automating it keeps the
// experiment reproducible. Naive unrolling "consists simply of duplicating
// the loop body inside the loop"; the careful variant additionally enables
// Reassociate and the scheduler's memory disambiguation.
//
// A loop
//
//	for i = lo to hi by s { body }
//
// becomes
//
//	for i = lo to hi - (k-1)*s by k*s { body; body[i+s]; ...; body[i+(k-1)*s] }
//	for i = i to hi by s { body }          // remainder
//
// which relies on TL's `for` semantics: the loop variable holds the first
// unprocessed index after the loop exits.
//
// Eligible loops are innermost (no nested loops), do not mutate their loop
// variable, contain no break, return, or declaration, and have a bound
// expression whose value cannot change while the loop runs. The function
// returns how many loops were unrolled.
func UnrollLoops(prog *ast.Program, factor int) int {
	if factor <= 1 {
		return 0
	}
	n := 0
	for _, f := range prog.Funcs {
		n += unrollBlock(f.Body, factor)
	}
	return n
}

func unrollBlock(b *ast.Block, factor int) int {
	n := 0
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.For:
			n += unrollBlock(st.Body, factor)
			if main, rem, ok := unrollFor(st, factor); ok {
				out = append(out, main, rem)
				n++
				continue
			}
		case *ast.While:
			n += unrollBlock(st.Body, factor)
		case *ast.If:
			n += unrollBlock(st.Then, factor)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.Block:
					n += unrollBlock(e, factor)
				case *ast.If:
					wrap := &ast.Block{Stmts: []ast.Stmt{e}}
					n += unrollBlock(wrap, factor)
					st.Else = wrap.Stmts[0]
				}
			}
		case *ast.Block:
			n += unrollBlock(st, factor)
		}
		out = append(out, s)
	}
	b.Stmts = out
	return n
}

// unrollFor builds the main and remainder loops, or reports ineligibility.
func unrollFor(st *ast.For, factor int) (main, rem ast.Stmt, ok bool) {
	if st.VarMutated || st.HasBreak {
		return nil, nil, false
	}
	if !eligibleBody(st.Body) {
		return nil, nil, false
	}
	if !boundStable(st) {
		return nil, nil, false
	}

	k := int64(factor)
	s := st.Step

	// Main loop: body copies with the loop variable offset by c*s.
	mainBody := &ast.Block{LBrace: st.Body.LBrace}
	for c := int64(0); c < k; c++ {
		clone := ast.CloneBlock(st.Body)
		if c > 0 {
			offsetLoopVar(clone, st.Var.Sym, c*s)
		}
		mainBody.Stmts = append(mainBody.Stmts, clone.Stmts...)
	}
	hiMain := &ast.BinOp{
		OpPos: st.ForPos, Op: token.Minus,
		X: ast.CloneExpr(st.Hi),
		Y: &ast.IntLit{LitPos: st.ForPos, Value: (k - 1) * s},
	}
	hiMain.SetType(ast.Int)
	hiMain.Y.(*ast.IntLit).SetType(ast.Int)
	mainFor := &ast.For{
		ForPos: st.ForPos,
		Var:    ast.CloneExpr(st.Var).(*ast.VarRef),
		Lo:     st.Lo,
		Hi:     hiMain,
		Step:   k * s,
		Body:   mainBody,
	}

	// Remainder: continue from wherever the main loop stopped.
	loRem := ast.CloneExpr(st.Var) // reads the current value of i
	remFor := &ast.For{
		ForPos: st.ForPos,
		Var:    ast.CloneExpr(st.Var).(*ast.VarRef),
		Lo:     loRem,
		Hi:     ast.CloneExpr(st.Hi),
		Step:   s,
		Body:   st.Body,
	}
	return mainFor, remFor, true
}

// eligibleBody: straight-line-ish code only — no nested loops, breaks,
// returns, or local declarations (cloned declarations would redeclare).
func eligibleBody(b *ast.Block) bool {
	ok := true
	var visit func(s ast.Stmt)
	visit = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.For, *ast.While, *ast.Break, *ast.Return, *ast.LocalDecl:
			ok = false
		case *ast.Block:
			for _, x := range st.Stmts {
				visit(x)
			}
		case *ast.If:
			for _, x := range st.Then.Stmts {
				visit(x)
			}
			if st.Else != nil {
				visit(st.Else)
			}
		}
	}
	for _, s := range b.Stmts {
		visit(s)
	}
	return ok
}

// boundStable reports whether the Hi expression evaluates to the same value
// before and after the body runs, so it can be re-evaluated for the
// remainder loop. True when Hi contains no calls and references no
// variable assigned in the body (and no global at all if the body calls
// functions).
func boundStable(st *ast.For) bool {
	assigned := map[*ast.Symbol]bool{}
	bodyCalls := false
	var visitS func(s ast.Stmt)
	visitS = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.Assign:
			if vr, isVar := x.LHS.(*ast.VarRef); isVar {
				assigned[vr.Sym] = true
			}
			if exprHasCall(x.RHS) || exprHasCall(x.LHS) {
				bodyCalls = true
			}
		case *ast.Print:
			if exprHasCall(x.Value) {
				bodyCalls = true
			}
		case *ast.ExprStmt:
			bodyCalls = true
		case *ast.If:
			if exprHasCall(x.Cond) {
				bodyCalls = true
			}
			for _, y := range x.Then.Stmts {
				visitS(y)
			}
			if x.Else != nil {
				visitS(x.Else)
			}
		case *ast.Block:
			for _, y := range x.Stmts {
				visitS(y)
			}
		}
	}
	for _, s := range st.Body.Stmts {
		visitS(s)
	}

	stable := true
	var visitE func(e ast.Expr)
	visitE = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.VarRef:
			if assigned[x.Sym] {
				stable = false
			}
			if bodyCalls && x.Sym.Kind == ast.SymGlobal {
				stable = false
			}
		case *ast.IndexRef:
			// Array elements could be written by the body or callees;
			// be conservative.
			stable = false
		case *ast.Call:
			stable = false
		case *ast.UnOp:
			visitE(x.X)
		case *ast.BinOp:
			visitE(x.X)
			visitE(x.Y)
		}
	}
	visitE(st.Hi)
	return stable
}

func exprHasCall(e ast.Expr) bool {
	found := false
	var visit func(x ast.Expr)
	visit = func(x ast.Expr) {
		switch y := x.(type) {
		case *ast.Call:
			found = true
		case *ast.UnOp:
			visit(y.X)
		case *ast.BinOp:
			visit(y.X)
			visit(y.Y)
		case *ast.IndexRef:
			for _, ie := range y.Index {
				visit(ie)
			}
		}
	}
	visit(e)
	return found
}

// offsetLoopVar rewrites reads of the loop variable to (var + off) in a
// cloned body.
func offsetLoopVar(b *ast.Block, sym *ast.Symbol, off int64) {
	var rewriteE func(e ast.Expr) ast.Expr
	rewriteE = func(e ast.Expr) ast.Expr {
		switch x := e.(type) {
		case *ast.VarRef:
			if x.Sym == sym {
				lit := &ast.IntLit{LitPos: x.NamePos, Value: off}
				lit.SetType(ast.Int)
				sum := &ast.BinOp{OpPos: x.NamePos, Op: token.Plus, X: x, Y: lit}
				sum.SetType(ast.Int)
				return sum
			}
			return x
		case *ast.IndexRef:
			for i := range x.Index {
				x.Index[i] = rewriteE(x.Index[i])
			}
			return x
		case *ast.UnOp:
			x.X = rewriteE(x.X)
			return x
		case *ast.BinOp:
			x.X = rewriteE(x.X)
			x.Y = rewriteE(x.Y)
			return x
		case *ast.Call:
			for i := range x.Args {
				x.Args[i] = rewriteE(x.Args[i])
			}
			return x
		}
		return e
	}
	var rewriteS func(s ast.Stmt)
	rewriteS = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.Assign:
			// Only the RHS and index expressions read the variable;
			// the analyzer guaranteed the variable itself is never
			// assigned.
			x.LHS = rewriteE(x.LHS)
			x.RHS = rewriteE(x.RHS)
		case *ast.If:
			x.Cond = rewriteE(x.Cond)
			for _, y := range x.Then.Stmts {
				rewriteS(y)
			}
			if x.Else != nil {
				rewriteS(x.Else)
			}
		case *ast.Block:
			for _, y := range x.Stmts {
				rewriteS(y)
			}
		case *ast.Print:
			x.Value = rewriteE(x.Value)
		case *ast.ExprStmt:
			x.X = rewriteE(x.X)
		}
	}
	for _, s := range b.Stmts {
		rewriteS(s)
	}
}
