package sim

// Tests for the sharded (multi-worker) batch scheduler. Sharding is pure
// scheduling: a Batch run across N workers must produce results DeepEqual
// to the serial batch (itself bit-identical to individual runs), isolate
// per-cell errors to their cell, and honor cancellation and instruction
// limits with the serial semantics. The whole package runs under -race in
// `make check` (race-concurrency), so these also prove the sub-slabs share
// no mutable state.

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// TestBatchParallelMatchesSerial pins the sharded scheduler to the serial
// one: same cells, DeepEqual results, across worker counts that divide the
// slab evenly and unevenly (more workers than cells included).
func TestBatchParallelMatchesSerial(t *testing.T) {
	runs := batchCells(t)
	want, wantErrs := NewBatchWorkers(1).Run(context.Background(), runs)
	for _, workers := range []int{2, 3, 4, len(runs) + 5} {
		b := NewBatchWorkers(workers)
		got, errs := b.Run(context.Background(), runs)
		if s := b.Shards(); s != min(workers, len(runs)) {
			t.Errorf("workers=%d: used %d shards, want %d", workers, s, min(workers, len(runs)))
		}
		for i := range runs {
			if (errs[i] == nil) != (wantErrs[i] == nil) {
				t.Errorf("workers=%d cell %d: error mismatch: %v vs %v", workers, i, errs[i], wantErrs[i])
				continue
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d cell %d (%s): sharded result diverged from serial",
					workers, i, runs[i].Opts.Machine.Name)
			}
		}
	}
}

// TestBatchParallelCellError pins per-cell error isolation across shards: a
// faulting cell reports the same error an individual run would, and every
// sibling — in its own shard and in others — completes unharmed.
func TestBatchParallelCellError(t *testing.T) {
	bld := isa.NewBuilder()
	bld.Li(isa.R(1), 8)
	bld.Li(isa.R(2), 0)
	bld.Label("loop")
	bld.Imm(isa.OpAddi, isa.R(1), isa.R(1), -1)
	bld.Op(isa.OpDiv, isa.R(3), isa.R(2), isa.R(1)) // traps when r1 reaches 0
	bld.Branch(isa.OpBgt, isa.R(1), isa.RZero, "loop")
	bld.Print(isa.R(3))
	bld.Halt()
	bad := bld.MustFinish()

	runs := []BatchRun{
		{Prog: tightLoop(600), Opts: Options{Machine: machine.Base()}},
		{Prog: bad, Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(600), Opts: Options{Machine: machine.IdealSuperscalar(4)}},
		{Prog: tightLoop(900), Opts: Options{Machine: machine.IdealSuperscalar(2)}},
	}
	results, errs := NewBatchWorkers(4).Run(context.Background(), runs)

	_, werr := Run(bad, runs[1].Opts)
	if werr == nil {
		t.Fatal("individual run of the faulting program did not fail")
	}
	if errs[1] == nil || errs[1].Error() != werr.Error() {
		t.Errorf("faulting cell error = %v, want %v", errs[1], werr)
	}
	for _, i := range []int{0, 2, 3} {
		want, _ := Run(runs[i].Prog, runs[i].Opts)
		if errs[i] != nil {
			t.Errorf("cell %d: unexpected error: %v", i, errs[i])
		} else if !reflect.DeepEqual(results[i], want) {
			t.Errorf("cell %d: result diverged from individual run", i)
		}
	}
}

// TestBatchParallelLimitOneCell gives exactly one cell an instruction
// budget it must exceed: the trip lands in that cell alone — its shard
// keeps running its other cells, and no other shard is disturbed.
func TestBatchParallelLimitOneCell(t *testing.T) {
	runs := []BatchRun{
		{Prog: tightLoop(200_000), Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(200_000), Opts: Options{Machine: machine.Base(), MaxInstructions: 1000}},
		{Prog: tightLoop(200_000), Opts: Options{Machine: machine.IdealSuperscalar(4)}},
		{Prog: tightLoop(600), Opts: Options{Machine: machine.Base()}},
	}
	results, errs := NewBatchWorkers(2).Run(context.Background(), runs)
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "instruction limit") {
		t.Errorf("budgeted cell: want instruction-limit error, got %v", errs[1])
	}
	if results[1] != nil {
		t.Error("budgeted cell: result must be nil on error")
	}
	for _, i := range []int{0, 2, 3} {
		if errs[i] != nil {
			t.Errorf("cell %d: unexpected error: %v", i, errs[i])
		} else if results[i] == nil {
			t.Errorf("cell %d: missing result", i)
		}
	}
}

// TestBatchParallelCancelMidShard cancels while every shard is mid-flight:
// long cells split across workers, cancel fired from outside after the
// batch is underway. Every cell must settle exactly one way — a completed
// result or a cancellation error — and a rerun of the same batch must
// complete clean (the slab recovers from an abandoned run).
func TestBatchParallelCancelMidShard(t *testing.T) {
	runs := []BatchRun{
		{Prog: tightLoop(80_000_000), Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(80_000_000), Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(80_000_000), Opts: Options{Machine: machine.IdealSuperscalar(4)}},
		{Prog: tightLoop(80_000_000), Opts: Options{Machine: machine.IdealSuperscalar(2)}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	b := NewBatchWorkers(4)
	results, errs := b.Run(ctx, runs)
	cancelled := 0
	for i := range runs {
		if (results[i] == nil) != (errs[i] != nil) {
			t.Errorf("cell %d: res/err disagree: res=%v err=%v", i, results[i], errs[i])
		}
		if errs[i] != nil {
			if !strings.Contains(errs[i].Error(), "context canceled") {
				t.Errorf("cell %d: want cancellation, got %v", i, errs[i])
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Skip("batch completed before cancellation; nothing to assert")
	}
	// The slab must be reusable after an abandoned run.
	short := []BatchRun{
		{Prog: tightLoop(600), Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(600), Opts: Options{Machine: machine.IdealSuperscalar(2)}},
	}
	res2, errs2 := b.Run(context.Background(), short)
	for i := range short {
		if errs2[i] != nil || res2[i] == nil {
			t.Errorf("rerun cell %d: res=%v err=%v", i, res2[i], errs2[i])
		}
	}
}
