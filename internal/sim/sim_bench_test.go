package sim

import (
	"context"
	"testing"

	"ilp/internal/cache"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

var machineCacheConfig = cache.Config{Name: "bench", Lines: 256, LineWords: 4, MissPenalty: 12}

// tightLoop builds a program executing roughly n dynamic instructions.
func tightLoop(n int64) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), n/6)
	b.Li(isa.R(11), 0)
	b.Label("loop")
	b.Op(isa.OpAdd, isa.R(11), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(12), isa.R(11), 3)
	b.Op(isa.OpXor, isa.R(13), isa.R(12), isa.R(11))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(13))
	b.Halt()
	return b.MustFinish()
}

// stitchedLoop builds a hot loop that crosses a jump seam and carries a
// mid-trace side exit, so the replay path must stitch a multi-block
// superblock (body -> j -> test -> back-edge) instead of specializing a
// single-block back-edge trace.
func stitchedLoop(n int64) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), n/7)
	b.Li(isa.R(11), 0)
	b.Li(isa.R(14), 40) // early-out threshold, rarely hit
	b.Jump("test")
	b.Label("body")
	b.Op(isa.OpAdd, isa.R(11), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(12), isa.R(11), 3)
	b.Branch(isa.OpBlt, isa.R(10), isa.R(14), "skip") // side exit
	b.Op(isa.OpXor, isa.R(13), isa.R(12), isa.R(11))
	b.Label("skip")
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Jump("test") // seam: the superblock stitches through to the test block
	b.Label("test")
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "body")
	b.Print(isa.R(13))
	b.Halt()
	return b.MustFinish()
}

// BenchmarkSimulatorThroughput measures simulated instructions per second
// on the base machine (the inner loop of every experiment in this repo).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := tightLoop(600_000)
	cfg := machine.Base()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := Run(p, Options{Machine: cfg})
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorWideMachine: the superscalar path exercises the unit
// and width bookkeeping harder.
func BenchmarkSimulatorWideMachine(b *testing.B) {
	p := tightLoop(600_000)
	cfg := machine.IdealSuperscalar(8)
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := Run(p, Options{Machine: cfg})
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorWithCaches adds I/D cache modeling.
func BenchmarkSimulatorWithCaches(b *testing.B) {
	p := tightLoop(600_000)
	cfg := machine.MultiTitan()
	cfg.ICache = &machineCacheConfig
	dc := machineCacheConfig
	cfg.DCache = &dc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, Options{Machine: cfg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorPredecodedBase runs from a shared predecoded Code, so
// the loop body replays its precomputed static schedule instead of walking
// the scoreboard — the fast path the experiments runner hits after its
// per-(program, schedule) predecode.
func BenchmarkSimulatorPredecodedBase(b *testing.B) {
	p := tightLoop(600_000)
	cfg := machine.Base()
	code, err := Predecode(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := Run(p, Options{Machine: cfg, Code: code})
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorPredecodedWide is the predecoded+replay path on a wide
// ideal machine.
func BenchmarkSimulatorPredecodedWide(b *testing.B) {
	p := tightLoop(600_000)
	cfg := machine.IdealSuperscalar(8)
	code, err := Predecode(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := Run(p, Options{Machine: cfg, Code: code})
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorSuperblock replays a multi-block stitched superblock (a
// loop whose trace crosses a jump seam and holds a guarded side exit) on a
// wide machine from shared predecoded Code — the trace-specialization path
// this repo's sweep spends its time in.
func BenchmarkSimulatorSuperblock(b *testing.B) {
	p := stitchedLoop(600_000)
	cfg := machine.IdealSuperscalar(4)
	code, err := Predecode(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if code.Superblocks() == 0 {
		b.Fatal("no superblock traces formed")
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := Run(p, Options{Machine: cfg, Code: code})
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorCondTrace replays a profile-specialized superblock: the
// hot arm of the loop's conditional branch is stitched through behind an
// inverted-condition guard, so whole iterations spin inside one trace where
// the unspecialized engine splits each at the branch and re-enters per
// block. The profile comes from the same budgeted pre-run the experiments
// runner performs at compile time.
func BenchmarkSimulatorCondTrace(b *testing.B) {
	p := condTraceLoop(85_000) // ~600k dynamic instructions
	cfg := machine.IdealSuperscalar(4)
	code, err := Predecode(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := ProfileRun(context.Background(), code, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	spec := code.Specialize(prof)
	if spec.CondTraces() == 0 {
		b.Fatal("no conditional-branch traces specialized")
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := Run(p, Options{Machine: cfg, Code: spec})
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorEngineReuse drives a dedicated Engine through RunInto
// with a reused Result — the zero-allocation steady state a long measurement
// sweep reaches once the pool is warm.
func BenchmarkSimulatorEngineReuse(b *testing.B) {
	p := tightLoop(600_000)
	cfg := machine.Base()
	e := NewEngine()
	var res Result
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		if err := e.RunInto(p, Options{Machine: cfg}, &res); err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
