package sim

import (
	"fmt"
	"strings"

	"ilp/internal/cache"
	"ilp/internal/isa"
)

// StallBreakdown attributes issue delay to causes, in minor cycles. A given
// delayed issue is charged to the binding constraint with the highest
// priority in the order: data, write-order, unit, width, branch, cache.
// The breakdown is instrumentation; it does not affect timing.
type StallBreakdown struct {
	Data   int64 // waiting for a source operand (operation latency)
	Write  int64 // waiting so a result is not written out of order (WAW)
	Unit   int64 // functional-unit busy (class conflict, §2.3.2)
	Width  int64 // per-cycle issue limit reached
	Branch int64 // issue-group break at a taken branch (+ redirect)
	ICache int64 // instruction fetch miss
	DCache int64 // data store miss stalls
}

// Total sums all stall cycles.
func (s StallBreakdown) Total() int64 {
	return s.Data + s.Write + s.Unit + s.Width + s.Branch + s.ICache + s.DCache
}

// Result reports one simulation.
type Result struct {
	Machine string
	// Degraded marks a placeholder produced by the experiment runner's
	// degradation policy in place of a permanently failed measurement: no
	// simulation backs this result, and its cycle counts are NaN/zero. A
	// degraded result is never persisted to the result store.
	Degraded bool `json:",omitempty"`
	// Instructions is the dynamic instruction count.
	Instructions int64
	// IssueGroups counts the distinct minor cycles in which at least one
	// instruction issued — the number of issue packets, which is what a
	// VLIW encoding of the same schedule would spend an instruction word
	// on (§2.3.1 code density).
	IssueGroups int64
	// MinorCycles is the completion time of the last instruction in the
	// machine's own (minor) cycles.
	MinorCycles int64
	// BaseCycles is MinorCycles converted to base-machine cycles
	// (MinorCycles / Degree).
	BaseCycles float64
	// ClassCounts is the dynamic instruction mix.
	ClassCounts [isa.NumClasses]int64
	// Output is what the program printed.
	Output []isa.Value
	// Stalls attributes issue delays.
	Stalls StallBreakdown
	// InstrCounts and TakenExits are per-instruction dynamic execution and
	// taken-exit (transfer or halt) counts, populated only when
	// Options.CountInstrs is set. They feed the static timing oracle.
	InstrCounts []int64 `json:",omitempty"`
	TakenExits  []int64 `json:",omitempty"`
	// ICacheStats and DCacheStats are populated when the machine
	// description configures the respective cache.
	ICacheStats *cache.Stats
	DCacheStats *cache.Stats
}

// IPC returns instructions per minor cycle.
func (r *Result) IPC() float64 {
	if r.MinorCycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.MinorCycles)
}

// CPI returns minor cycles per instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.MinorCycles) / float64(r.Instructions)
}

// BaseCPI returns base cycles per instruction.
func (r *Result) BaseCPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.BaseCycles / float64(r.Instructions)
}

// SpeedupOver returns how much faster this run was than base, measured in
// base cycles — the paper's performance metric throughout §4.
func (r *Result) SpeedupOver(base *Result) float64 {
	if r.BaseCycles == 0 {
		return 0
	}
	return base.BaseCycles / r.BaseCycles
}

// GroupCounts folds the class mix onto the seven Table 2-1 rows.
func (r *Result) GroupCounts() [isa.NumTableGroups]int64 {
	var g [isa.NumTableGroups]int64
	for cl, n := range r.ClassCounts {
		g[isa.Class(cl).Group()] += n
	}
	return g
}

// GroupFrequencies returns the Table 2-1 dynamic frequencies (fractions
// summing to 1).
func (r *Result) GroupFrequencies() [isa.NumTableGroups]float64 {
	g := r.GroupCounts()
	var out [isa.NumTableGroups]float64
	if r.Instructions == 0 {
		return out
	}
	for i, n := range g {
		out[i] = float64(n) / float64(r.Instructions)
	}
	return out
}

// String summarizes the run.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s: %d instructions, %d minor cycles (%.1f base), CPI %.3f",
		r.Machine, r.Instructions, r.MinorCycles, r.BaseCycles, r.CPI())
	if st := r.Stalls.Total(); st > 0 {
		fmt.Fprintf(&b, ", stalls: data %d write %d unit %d width %d branch %d icache %d dcache %d",
			r.Stalls.Data, r.Stalls.Write, r.Stalls.Unit, r.Stalls.Width, r.Stalls.Branch,
			r.Stalls.ICache, r.Stalls.DCache)
	}
	return b.String()
}
