package sim

import (
	"testing"

	"ilp/internal/cache"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

func mustRun(t *testing.T, p *isa.Program, cfg *machine.Config) *Result {
	t.Helper()
	r, err := Run(p, Options{Machine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// threeIndependent is Figure 1-1(a): three instructions with no data
// dependencies, parallelism = 3.
func threeIndependent() *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 1)
	b.Li(isa.R(11), 2)
	b.Li(isa.R(12), 3)
	b.Halt()
	return b.MustFinish()
}

// threeDependent is Figure 1-1(b): a chain, parallelism = 1.
func threeDependent() *isa.Program {
	b := isa.NewBuilder()
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), 1)
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), 1)
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), 1)
	b.Halt()
	return b.MustFinish()
}

func TestBaseMachineOnePerCycle(t *testing.T) {
	r := mustRun(t, threeIndependent(), machine.Base())
	// li@0, li@1, li@2, halt@3 completing at 4.
	if r.MinorCycles != 4 {
		t.Errorf("minor cycles = %d, want 4", r.MinorCycles)
	}
	if r.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", r.Instructions)
	}
}

func TestSuperscalarIssuesParallelInstrs(t *testing.T) {
	// Figure 1-1(a): "A superscalar machine could issue all three parallel
	// instructions in the same cycle."
	r := mustRun(t, threeIndependent(), machine.IdealSuperscalar(3))
	// lis all @0; halt @1 (width 3 exhausted); completion 2.
	if r.MinorCycles != 2 {
		t.Errorf("minor cycles = %d, want 2", r.MinorCycles)
	}
}

// chainIssueBaseCycles runs the dependent chain and returns the issue time
// of its last addi in base cycles.
func chainIssueBaseCycles(t *testing.T, cfg *machine.Config) float64 {
	t.Helper()
	var last int64
	_, err := Run(threeDependent(), Options{Machine: cfg,
		OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
			if in.Op == isa.OpAddi {
				last = issue
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	return float64(last) / float64(cfg.Degree)
}

func TestDependentChainGainsNothing(t *testing.T) {
	// Figure 1-1(b) on a wide machine is no faster than on the base.
	if b, w := chainIssueBaseCycles(t, machine.Base()), chainIssueBaseCycles(t, machine.IdealSuperscalar(8)); w != b {
		t.Errorf("chain last issue: superscalar %v base cycles, base %v", w, b)
	}
	wide := mustRun(t, threeDependent(), machine.IdealSuperscalar(8))
	if wide.Stalls.Data == 0 {
		t.Error("expected data stalls on the dependent chain")
	}
}

func TestSuperpipelineDualityOnChain(t *testing.T) {
	// §2.7: on purely sequential code, superscalar and superpipelined
	// machines of equal degree sustain the same rate in base cycles.
	ss := chainIssueBaseCycles(t, machine.IdealSuperscalar(3))
	sp := chainIssueBaseCycles(t, machine.Superpipelined(3))
	if ss != sp {
		t.Errorf("chain last issue: superscalar %v base cycles, superpipelined %v", ss, sp)
	}
}

func TestStartupTransient(t *testing.T) {
	// Figure 4-2: six independent instructions on degree-3 machines. The
	// superscalar issues the last at t1; the superpipelined at t5/3, so a
	// consumer of the last result starts later on the superpipelined
	// machine: "the superpipelined machine has a larger startup transient".
	prog := func() *isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 6; i++ {
			b.Li(isa.R(10+i), int64(i))
		}
		b.Op(isa.OpAdd, isa.R(20), isa.R(15), isa.R(14)) // consumer of last
		b.Halt()
		return b.MustFinish()
	}
	ss := mustRun(t, prog(), machine.IdealSuperscalar(3))
	sp := mustRun(t, prog(), machine.Superpipelined(3))
	if !(sp.BaseCycles > ss.BaseCycles) {
		t.Errorf("startup transient missing: superscalar %.3f, superpipelined %.3f base cycles",
			ss.BaseCycles, sp.BaseCycles)
	}
}

func TestClassConflictSerializes(t *testing.T) {
	// §2.3.2: with unduplicated functional units, two instructions of the
	// same class cannot issue together.
	cfg := machine.IdealSuperscalar(2)
	for i := range cfg.Units {
		cfg.Units[i].Multiplicity = 1 // duplicate only decode, not units
	}
	cfg.Name = "superscalar-2-conflicts"
	b := isa.NewBuilder()
	b.Op(isa.OpAdd, isa.R(10), isa.RZero, isa.RZero)
	b.Op(isa.OpAdd, isa.R(11), isa.RZero, isa.RZero)
	b.Halt()
	p := b.MustFinish()
	issuesOn := func(m *machine.Config) []int64 {
		var issues []int64
		_, err := Run(p, Options{Machine: m, OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
			if in.Op == isa.OpAdd {
				issues = append(issues, issue)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		return issues
	}
	conflict := issuesOn(cfg)
	ideal := issuesOn(machine.IdealSuperscalar(2))
	if !(ideal[0] == 0 && ideal[1] == 0) {
		t.Errorf("ideal machine should dual-issue the adds, got %v", ideal)
	}
	if !(conflict[0] == 0 && conflict[1] == 1) {
		t.Errorf("conflicting machine should serialize the adds, got %v", conflict)
	}
	r := mustRun(t, p, cfg)
	if r.Stalls.Unit == 0 {
		t.Error("expected unit stalls from class conflict")
	}
}

func TestIssueLatencyBlocksUnit(t *testing.T) {
	// §3's example: issue latency 3, multiplicity 2 — a third instruction
	// of the class waits until a unit copy is free.
	cfg := machine.Base()
	cfg.IssueWidth = 4
	for i := range cfg.Units {
		cfg.Units[i].Multiplicity = 2
		cfg.Units[i].IssueLatency = 3
	}
	b := isa.NewBuilder()
	b.Op(isa.OpAdd, isa.R(10), isa.RZero, isa.RZero)
	b.Op(isa.OpAdd, isa.R(11), isa.RZero, isa.RZero)
	b.Op(isa.OpAdd, isa.R(12), isa.RZero, isa.RZero)
	b.Halt()
	var issues []int64
	_, err := Run(b.MustFinish(), Options{
		Machine: cfg,
		OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
			if in.Op == isa.OpAdd {
				issues = append(issues, issue)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 3}
	for i, w := range want {
		if issues[i] != w {
			t.Errorf("add %d issued at %d, want %d (issues %v)", i, issues[i], w, issues)
		}
	}
}

func TestIssueWidthLimit(t *testing.T) {
	// §3: an upper limit on instructions issued per cycle independent of
	// functional-unit availability.
	cfg := machine.IdealSuperscalar(8)
	cfg.IssueWidth = 2
	b := isa.NewBuilder()
	for i := 0; i < 4; i++ {
		b.Li(isa.R(10+i), int64(i))
	}
	b.Halt()
	var issues []int64
	_, err := Run(b.MustFinish(), Options{
		Machine: cfg,
		OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
			if in.Op == isa.OpLi {
				issues = append(issues, issue)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 1, 1}
	for i, w := range want {
		if issues[i] != w {
			t.Errorf("li %d issued at %d, want %d", i, issues[i], w)
		}
	}
}

func TestTakenBranchEndsGroup(t *testing.T) {
	b := isa.NewBuilder()
	b.Jump("target")
	b.Li(isa.R(10), 1) // skipped
	b.Label("target")
	b.Li(isa.R(11), 2)
	b.Halt()
	p := b.MustFinish()
	var liIssue int64 = -1
	_, err := Run(p, Options{
		Machine: machine.IdealSuperscalar(8),
		OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
			if idx == 2 {
				liIssue = issue
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if liIssue != 1 {
		t.Errorf("instruction after taken branch issued at %d, want 1", liIssue)
	}
}

func TestUntakenBranchDoesNotEndGroup(t *testing.T) {
	b := isa.NewBuilder()
	b.Branch(isa.OpBne, isa.RZero, isa.RZero, "away") // never taken
	b.Li(isa.R(10), 1)
	b.Label("away")
	b.Halt()
	p := b.MustFinish()
	var liIssue int64 = -1
	_, err := Run(p, Options{
		Machine: machine.IdealSuperscalar(8),
		OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
			if idx == 1 {
				liIssue = issue
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if liIssue != 0 {
		t.Errorf("fall-through after untaken branch issued at %d, want 0 (same group)", liIssue)
	}
}

func TestBranchRedirectPenalty(t *testing.T) {
	cfg := machine.Base()
	cfg.BranchRedirect = 2
	b := isa.NewBuilder()
	b.Jump("t")
	b.Label("t")
	b.Halt()
	p := b.MustFinish()
	var haltIssue int64
	_, err := Run(p, Options{Machine: cfg, OnIssue: func(idx int, in *isa.Instr, issue, complete int64) {
		if in.Op == isa.OpHalt {
			haltIssue = issue
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if haltIssue != 3 {
		t.Errorf("halt issued at %d, want 3 (branch@0 + 1 + redirect 2)", haltIssue)
	}
}

func TestWAWOrdering(t *testing.T) {
	// A short-latency write after a long-latency write to the same
	// register may not complete early.
	cfg := machine.Base()
	cfg.IssueWidth = 4
	cfg.Latency[isa.OpMul.Class()] = 6
	b := isa.NewBuilder()
	b.Op(isa.OpMul, isa.R(10), isa.RZero, isa.RZero) // completes @6
	b.Li(isa.R(10), 7)                               // must not complete before 6
	b.Op1(isa.OpMov, isa.R(11), isa.R(10))           // reads r10
	b.Halt()
	r, err := Run(b.MustFinish(), Options{Machine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stalls.Write == 0 {
		t.Error("expected WAW write-order stall")
	}
	// Semantics: the mov must still see the later value, 7.
	b2 := isa.NewBuilder()
	b2.Op(isa.OpMul, isa.R(10), isa.RZero, isa.RZero)
	b2.Li(isa.R(10), 7)
	b2.Op1(isa.OpMov, isa.R(11), isa.R(10))
	b2.Print(isa.R(11))
	b2.Halt()
	r2, err := Run(b2.MustFinish(), Options{Machine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Output) != 1 || !r2.Output[0].Equal(isa.IntValue(7)) {
		t.Errorf("output = %v, want [7]", r2.Output)
	}
}

func factorialProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 10) // n
	b.Li(isa.R(11), 1)  // acc
	b.Label("loop")
	b.Op(isa.OpMul, isa.R(11), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(11))
	b.Halt()
	return b.MustFinish()
}

func TestSemanticsFactorial(t *testing.T) {
	r := mustRun(t, factorialProgram(), machine.Base())
	if len(r.Output) != 1 || !r.Output[0].Equal(isa.IntValue(3628800)) {
		t.Errorf("10! output = %v", r.Output)
	}
}

func TestSemanticsIndependentOfMachine(t *testing.T) {
	// Timing must never change results.
	configs := []*machine.Config{
		machine.Base(), machine.MultiTitan(), machine.CRAY1(),
		machine.IdealSuperscalar(8), machine.Superpipelined(4),
		machine.SuperpipelinedSuperscalar(2, 3), machine.Underpipelined(),
	}
	var ref []isa.Value
	for i, cfg := range configs {
		r := mustRun(t, factorialProgram(), cfg)
		if i == 0 {
			ref = r.Output
			continue
		}
		if len(r.Output) != len(ref) || !r.Output[0].Equal(ref[0]) {
			t.Errorf("%s: output %v differs from base %v", cfg.Name, r.Output, ref)
		}
	}
}

func TestMemoryAndStack(t *testing.T) {
	b := isa.NewBuilder()
	addr := b.Data(100, 200, 300)
	b.Li(isa.R(9), addr)
	b.Load(isa.OpLw, isa.R(10), isa.R(9), 1)      // r10 = 200
	b.Imm(isa.OpAddi, isa.RSP, isa.RSP, -1)       // push
	b.Store(isa.OpSw, isa.R(10), isa.RSP, 0)      // mem[sp] = 200
	b.Load(isa.OpLw, isa.R(11), isa.RSP, 0)       // r11 = 200
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 1000) // 1200
	b.Print(isa.R(11))
	b.Halt()
	r := mustRun(t, b.MustFinish(), machine.Base())
	if !r.Output[0].Equal(isa.IntValue(1200)) {
		t.Errorf("output = %v, want 1200", r.Output)
	}
}

func TestFloatingPoint(t *testing.T) {
	b := isa.NewBuilder()
	b.Fli(isa.F(10), 1.5)
	b.Fli(isa.F(11), 2.25)
	b.Op(isa.OpFadd, isa.F(12), isa.F(10), isa.F(11))
	b.Op(isa.OpFmul, isa.F(13), isa.F(12), isa.F(12))
	b.Op1(isa.OpFsqrt, isa.F(14), isa.F(13))
	b.PrintF(isa.F(14))
	b.Op1(isa.OpCvtfi, isa.R(10), isa.F(12))
	b.Print(isa.R(10))
	b.Halt()
	r := mustRun(t, b.MustFinish(), machine.MultiTitan())
	if !r.Output[0].Equal(isa.FloatValue(3.75)) {
		t.Errorf("sqrt((1.5+2.25)^2) = %v, want 3.75", r.Output[0])
	}
	if !r.Output[1].Equal(isa.IntValue(3)) {
		t.Errorf("trunc(3.75) = %v, want 3", r.Output[1])
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 1)
	b.Op(isa.OpDiv, isa.R(11), isa.R(10), isa.RZero)
	b.Halt()
	if _, err := Run(b.MustFinish(), Options{Machine: machine.Base()}); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestOutOfRangeAddressTraps(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), -5)
	b.Load(isa.OpLw, isa.R(11), isa.R(10), 0)
	b.Halt()
	if _, err := Run(b.MustFinish(), Options{Machine: machine.Base()}); err == nil {
		t.Error("expected address error")
	}
}

func TestInstructionLimit(t *testing.T) {
	b := isa.NewBuilder()
	b.Label("forever")
	b.Jump("forever")
	b.Halt()
	_, err := Run(b.MustFinish(), Options{Machine: machine.Base(), MaxInstructions: 100})
	if err == nil {
		t.Error("expected instruction-limit error")
	}
}

func TestICacheMissesStallIssue(t *testing.T) {
	cfg := machine.Base()
	cfg.ICache = &cache.Config{Name: "I", Lines: 4, LineWords: 1, MissPenalty: 10}
	r := mustRun(t, threeDependent(), cfg)
	plain := mustRun(t, threeDependent(), machine.Base())
	if r.MinorCycles <= plain.MinorCycles {
		t.Errorf("icache misses free: %d vs %d", r.MinorCycles, plain.MinorCycles)
	}
	if r.ICacheStats == nil || r.ICacheStats.Misses == 0 {
		t.Error("expected icache misses")
	}
	if r.Stalls.ICache == 0 {
		t.Error("expected icache stall attribution")
	}
}

func TestDCacheMissesAddLoadLatency(t *testing.T) {
	mk := func() *isa.Program {
		b := isa.NewBuilder()
		addr := b.Data(5)
		b.Li(isa.R(9), addr)
		b.Load(isa.OpLw, isa.R(10), isa.R(9), 0)
		b.Op1(isa.OpMov, isa.R(11), isa.R(10)) // consumer waits for miss
		b.Halt()
		return b.MustFinish()
	}
	cfg := machine.Base()
	cfg.DCache = &cache.Config{Name: "D", Lines: 4, LineWords: 1, MissPenalty: 20}
	r := mustRun(t, mk(), cfg)
	plain := mustRun(t, mk(), machine.Base())
	if r.MinorCycles < plain.MinorCycles+20 {
		t.Errorf("dcache miss too cheap: %d vs %d", r.MinorCycles, plain.MinorCycles)
	}
	if r.DCacheStats == nil || r.DCacheStats.Misses == 0 {
		t.Error("expected dcache misses")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := mustRun(t, factorialProgram(), machine.Base())
	if r.IPC() <= 0 || r.CPI() <= 0 || r.BaseCPI() <= 0 {
		t.Error("derived metrics not positive")
	}
	freqs := r.GroupFrequencies()
	var sum float64
	for _, f := range freqs {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("group frequencies sum to %v", sum)
	}
	base := mustRun(t, factorialProgram(), machine.Base())
	fast := mustRun(t, factorialProgram(), machine.IdealSuperscalar(8))
	if fast.SpeedupOver(base) < 1 {
		t.Errorf("superscalar speedup %v < 1", fast.SpeedupOver(base))
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestNoMachineError(t *testing.T) {
	if _, err := Run(threeIndependent(), Options{}); err == nil {
		t.Error("expected error without machine")
	}
}

func TestIssueGroups(t *testing.T) {
	// Three independent instructions + halt: the base machine needs four
	// issue groups, a 3-wide superscalar two (lis together, halt alone).
	base := mustRun(t, threeIndependent(), machine.Base())
	if base.IssueGroups != 4 {
		t.Errorf("base issue groups = %d, want 4", base.IssueGroups)
	}
	wide := mustRun(t, threeIndependent(), machine.IdealSuperscalar(3))
	if wide.IssueGroups != 2 {
		t.Errorf("superscalar-3 issue groups = %d, want 2", wide.IssueGroups)
	}
	// Groups can never exceed instructions, and a width-1 machine has
	// exactly one group per instruction.
	if base.IssueGroups != base.Instructions {
		t.Errorf("width-1 machine: groups %d != instructions %d", base.IssueGroups, base.Instructions)
	}
	if wide.IssueGroups > wide.Instructions {
		t.Error("groups exceed instructions")
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.RZero, 42) // write ignored
	b.Print(isa.RZero)
	b.Halt()
	r := mustRun(t, b.MustFinish(), machine.Base())
	if !r.Output[0].Equal(isa.IntValue(0)) {
		t.Errorf("r0 = %v, want 0", r.Output[0])
	}
}

func TestUnderpipelinedHalvesPerformance(t *testing.T) {
	// §2.2: both underpipelined variants deliver "half of the performance
	// attainable by the base machine". Our preset models the
	// issue-every-other-cycle variant via issue latency 2 on every unit.
	p := factorialProgram()
	base := mustRun(t, p, machine.Base())
	under := mustRun(t, p, machine.Underpipelined())
	ratio := under.BaseCycles / base.BaseCycles
	if ratio < 1.5 || ratio > 2.2 {
		t.Errorf("underpipelined/base cycle ratio = %.2f, want ~2 (§2.2)", ratio)
	}
	if !under.Output[0].Equal(base.Output[0]) {
		t.Error("underpipelining changed semantics")
	}
}
