package sim

// Directed tests for conditional-branch trace specialization: traces that
// continue past a profiled likely-taken branch behind an inverted-condition
// guard. Each test forces a specific shape — a specialized hot arm, a guard
// firing (mispath fallback), a deliberately wrong profile, a while-shaped
// loop whose stitched fallthrough is a stable back-edge — and cross-checks
// timing and class mixes against the reference (seed) engine. A profile may
// only ever choose which traces exist; these tests pin that it never bends
// timing.

import (
	"context"
	"testing"

	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/statictime"
)

// checkSpecialized profiles p, specializes its Code, and runs it on every
// sbMachine against the reference engine, requiring identical timing and
// class mixes, at least minCond specialized traces, and at least minMispath
// guard exits (0 to allow none).
func checkSpecialized(t *testing.T, p *isa.Program, prof *statictime.Profile, minCond int, minMispath int64) {
	t.Helper()
	for _, cfg := range sbMachines() {
		code, err := Predecode(p, cfg)
		if err != nil {
			t.Fatalf("%s: predecode: %v", cfg.Name, err)
		}
		pr := prof
		if pr == nil {
			if pr, err = ProfileRun(context.Background(), code, 0, 0); err != nil {
				t.Fatalf("%s: profile run: %v", cfg.Name, err)
			}
		}
		spec := code.Specialize(pr)
		if got := spec.CondTraces(); got < minCond {
			t.Errorf("%s: %d specialized traces, want >= %d", cfg.Name, got, minCond)
		}
		want, err := refRun(p, Options{Machine: cfg})
		if err != nil {
			t.Fatalf("%s: reference run: %v", cfg.Name, err)
		}
		e := NewEngine()
		var got Result
		if err := e.RunInto(p, Options{Machine: cfg, Code: spec}, &got); err != nil {
			t.Fatalf("%s: specialized run: %v", cfg.Name, err)
		}
		if e.mispaths < minMispath {
			t.Errorf("%s: %d mispath exits, want >= %d", cfg.Name, e.mispaths, minMispath)
		}
		if got.MinorCycles != want.MinorCycles || got.IssueGroups != want.IssueGroups ||
			got.Instructions != want.Instructions || got.Stalls != want.Stalls {
			t.Errorf("%s: timing diverged:\n got %+v\nwant %+v", cfg.Name, got, want)
		}
		if got.ClassCounts != want.ClassCounts {
			t.Errorf("%s: class counts diverged:\n got %v\nwant %v", cfg.Name, got.ClassCounts, want.ClassCounts)
		}
		if len(got.Output) != len(want.Output) {
			t.Errorf("%s: output length diverged: %d vs %d", cfg.Name, len(got.Output), len(want.Output))
		}
	}
}

// condTraceLoop is a loop whose body branches to a hot arm taken on all but
// the last few iterations: the profile marks the branch likely-taken, the
// specialized trace follows the hot arm, and the final iterations leave
// through the mispath guard.
func condTraceLoop(n int64) *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), n) // countdown
	b.Li(isa.R(11), 0) // accumulator
	b.Li(isa.R(12), 5) // cold-arm threshold
	b.Label("loop")
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 1)
	b.Branch(isa.OpBgt, isa.R(10), isa.R(12), "hot") // taken until the last 5
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 7)       // cold arm
	b.Jump("join")
	b.Label("hot")
	b.Op(isa.OpXor, isa.R(13), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 2)
	b.Label("join")
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(11))
	b.Halt()
	return b.MustFinish()
}

// TestCondTraceSpecializedLoop pins the whole pipeline: ProfileRun observes
// the hot-arm branch taken on nearly every iteration, Specialize stitches
// the trace through its taken edge, the replay spins on the hot path, and
// the cold iterations at the end fire the guard — all bit-identical to the
// reference engine.
func TestCondTraceSpecializedLoop(t *testing.T) {
	checkSpecialized(t, condTraceLoop(2000), nil, 1, 1)
}

// TestCondTraceUnspecializedHasNone pins the control: without a profile the
// same program qualifies no specialized trace, and the profile-free Code
// still matches the reference.
func TestCondTraceUnspecializedHasNone(t *testing.T) {
	p := condTraceLoop(2000)
	for _, cfg := range sbMachines() {
		code, err := Predecode(p, cfg)
		if err != nil {
			t.Fatalf("%s: predecode: %v", cfg.Name, err)
		}
		if got := code.CondTraces(); got != 0 {
			t.Errorf("%s: unspecialized Code reports %d cond traces", cfg.Name, got)
		}
	}
	checkAgainstReference(t, p, 10)
}

// TestCondTraceWrongProfile feeds Specialize a deliberately wrong profile —
// a branch taken on half its executions marked likely-taken — and requires
// the run to stay bit-identical anyway: a bad profile costs guard exits,
// never timing. The alternating branch fires the guard on every other
// iteration.
func TestCondTraceWrongProfile(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 1200)
	b.Li(isa.R(11), 0)
	b.Label("loop")
	b.Imm(isa.OpAndi, isa.R(12), isa.R(10), 1)
	b.Branch(isa.OpBeq, isa.R(12), isa.RZero, "even") // taken every other iteration
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 3)
	b.Label("even")
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 1)
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(11))
	b.Halt()
	p := b.MustFinish()

	// Hand-build the wrong profile: every pc "executed" often, every
	// conditional branch "always taken".
	n := len(p.Instrs)
	prof := &statictime.Profile{Count: make([]int64, n), Taken: make([]int64, n)}
	for i := range p.Instrs {
		prof.Count[i] = 1 << 20
		if condBranch(p.Instrs[i].Op) {
			prof.Taken[i] = 1 << 20
		}
	}
	checkSpecialized(t, p, prof, 1, 100)
}

// TestCondTraceStableWhileLoop pins the generalized stable rule without any
// profile: a while-shaped loop (test at the top, body, unconditional jump
// back) builds a trace whose final fallthrough exit is a stitched-seam
// back-edge to its own start — stable, so iterations spin with no register
// re-check, exactly like a do-while's taken side exit.
func TestCondTraceStableWhileLoop(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 3000)
	b.Li(isa.R(11), 0)
	b.Label("loop")
	b.Branch(isa.OpBle, isa.R(10), isa.RZero, "done")
	b.Op(isa.OpAdd, isa.R(11), isa.R(11), isa.R(10))
	b.Op(isa.OpXor, isa.R(12), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Jump("loop")
	b.Label("done")
	b.Print(isa.R(11))
	b.Halt()
	p := b.MustFinish()

	code, err := Predecode(p, machine.Base())
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}
	stableFall := false
	for _, tr := range code.scheds {
		if tr == nil {
			continue
		}
		for _, ex := range tr.exits {
			if ex.stable && !ex.taken {
				stableFall = true
			}
		}
	}
	if !stableFall {
		t.Error("no stable fallthrough exit on the while-shaped loop trace")
	}
	checkAgainstReference(t, p, 1000)
}

// TestCondTraceSpecializedStableSpin closes the loop between the two
// features: a do-while body whose hot-arm branch is specialized AND whose
// back-edge keeps the stable spin, so the replay must spin through a trace
// containing a guard micro-op and still leave through the guard at the end —
// the spin's early-break path (a different exit firing mid-spin).
func TestCondTraceSpecializedStableSpin(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 4000)
	b.Li(isa.R(11), 0)
	b.Li(isa.R(12), 3)
	b.Label("loop")
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 1)
	b.Branch(isa.OpBgt, isa.R(10), isa.R(12), "cont") // taken until the last 3
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 11)       // cold tail arm
	b.Label("cont")
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(11))
	b.Halt()
	checkSpecialized(t, b.MustFinish(), nil, 1, 1)
}
