package sim

// Tests for the batched multi-cell scheduler: a Batch must produce results
// bit-identical to running every cell alone — the interleave (runFast's
// stopAt slicing) is pure scheduling, never timing.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// batchCells builds a mixed workload: several programs (tight loop, random
// CFGs) across the differential machine set, sharing predecoded Code within
// each (program, machine) cell as the experiments runner would.
func batchCells(t *testing.T) []BatchRun {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	progs := []*isa.Program{
		tightLoop(600),
		tightLoop(200_000), // > batchQuantum dynamic instructions: forces several slices
		randomCFGProgram(rng),
		randomCFGProgram(rng),
	}
	var runs []BatchRun
	for _, p := range progs {
		for _, cfg := range diffMachines() {
			opts := Options{Machine: cfg, CountInstrs: true}
			if cfg.ICache == nil && cfg.DCache == nil {
				code, err := Predecode(p, cfg)
				if err != nil {
					t.Fatalf("predecode: %v", err)
				}
				opts.Code = code
			}
			runs = append(runs, BatchRun{Prog: p, Opts: opts})
		}
	}
	return runs
}

func TestBatchBitIdentical(t *testing.T) {
	runs := batchCells(t)
	b := NewBatch()
	results, errs := b.Run(context.Background(), runs)
	for i, r := range runs {
		want, werr := Run(r.Prog, r.Opts)
		if werr != nil {
			t.Fatalf("cell %d: individual run failed: %v", i, werr)
		}
		if errs[i] != nil {
			t.Errorf("cell %d (%s): batch error: %v", i, r.Opts.Machine.Name, errs[i])
			continue
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("cell %d (%s): batched result diverged:\n got %+v\nwant %+v",
				i, r.Opts.Machine.Name, results[i], want)
		}
	}
}

func TestBatchReuse(t *testing.T) {
	runs := batchCells(t)
	b := NewBatch()
	first, errs1 := b.Run(context.Background(), runs)
	second, errs2 := b.Run(context.Background(), runs)
	for i := range runs {
		if errs1[i] != nil || errs2[i] != nil {
			t.Fatalf("cell %d: errors %v / %v", i, errs1[i], errs2[i])
		}
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Errorf("cell %d: second batch run diverged", i)
		}
	}
}

// TestBatchCellError pins per-cell error isolation: a faulting cell reports
// the same error an individual run would, and its siblings complete
// unharmed.
func TestBatchCellError(t *testing.T) {
	bld := isa.NewBuilder()
	bld.Li(isa.R(1), 8)
	bld.Li(isa.R(2), 0)
	bld.Label("loop")
	bld.Imm(isa.OpAddi, isa.R(1), isa.R(1), -1)
	bld.Op(isa.OpDiv, isa.R(3), isa.R(2), isa.R(1)) // traps when r1 reaches 0
	bld.Branch(isa.OpBgt, isa.R(1), isa.RZero, "loop")
	bld.Print(isa.R(3))
	bld.Halt()
	bad := bld.MustFinish()

	runs := []BatchRun{
		{Prog: tightLoop(600), Opts: Options{Machine: machine.Base()}},
		{Prog: bad, Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(600), Opts: Options{Machine: machine.IdealSuperscalar(4)}},
	}
	b := NewBatch()
	results, errs := b.Run(context.Background(), runs)

	if _, werr := Run(bad, runs[1].Opts); werr == nil {
		t.Fatal("individual run of the faulting program did not fail")
	} else if errs[1] == nil || errs[1].Error() != werr.Error() {
		t.Errorf("faulting cell error = %v, want %v", errs[1], werr)
	}
	for _, i := range []int{0, 2} {
		want, _ := Run(runs[i].Prog, runs[i].Opts)
		if errs[i] != nil {
			t.Errorf("cell %d: unexpected error: %v", i, errs[i])
		} else if !reflect.DeepEqual(results[i], want) {
			t.Errorf("cell %d: result diverged from individual run", i)
		}
	}
}

func TestBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := []BatchRun{
		{Prog: tightLoop(600), Opts: Options{Machine: machine.Base()}},
		{Prog: tightLoop(600), Opts: Options{Machine: machine.IdealSuperscalar(2)}},
	}
	results, errs := NewBatch().Run(ctx, runs)
	for i := range runs {
		if errs[i] == nil || results[i] != nil {
			t.Errorf("cell %d: want cancellation error, got res=%v err=%v", i, results[i], errs[i])
		}
	}
}
