package sim

import (
	"context"
	"fmt"
	"math"

	"ilp/internal/cache"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// Engine is a reusable simulator instance. A fresh Engine is ready to use;
// Reset re-arms it for another program/machine pair while recycling every
// large allocation from the previous run: the memory image (zeroing only the
// data segment and the store high-water region actually dirtied), the
// predecoded instruction array, the functional-unit scoreboard, the block
// entry/exit counters, and the output buffer. The package-level Run draws
// Engines from a sync.Pool, so even callers that never see the type stop
// paying a 16 MB allocation and full zeroing per simulation.
//
// An Engine is not safe for concurrent use; use one per goroutine (or just
// call Run, which pools them). A predecoded Code, by contrast, is immutable
// and may be shared by any number of engines at once.
type Engine struct {
	cfg  *machine.Config
	prog *isa.Program
	opts Options

	// dec is the predecoded program the run executes: either the shared
	// immutable Options.Code array, or decBuf, the engine's own reusable
	// translation buffer. Engines never write through dec.
	dec    []decoded
	decBuf []decoded
	// scheds holds the superblock trace schedules the fast path may replay,
	// indexed by leader pc: the shared Code's, or the engine's own
	// (ownScheds) when running without one.
	scheds []*traceSched
	// ownProg/ownCfg/ownSchedFP/ownScheds cache the engine's own translation
	// (decBuf) and trace schedules keyed by (program, machine schedule), so
	// repeated Code-less runs of the same pair — the dominant pattern for a
	// pooled engine driving one benchmark — skip both the predecode sweep
	// and the static trace analysis at Reset. The config pointer is checked
	// first so a hit costs no fingerprint hash.
	ownProg    *isa.Program
	ownCfg     *machine.Config
	ownSchedFP string
	ownScheds  []*traceSched

	// enter and exit count, per instruction index, how many contiguous
	// execution runs began and ended there: enter[i] is bumped when
	// control arrives at i by a taken transfer (or at program entry),
	// exit[i] when a taken transfer or halt leaves from i. Untaken
	// branches keep the run going and touch neither. The dynamic
	// execution count of instruction i is then the running sum
	// Σ enter[0..i] − Σ exit[0..i-1], which fillResult folds into
	// per-class counts at run end — replacing the seed engine's
	// per-instruction counter store with two array bumps per *block*.
	enter, exit []int64
	// classCounts accumulates dynamic instruction counts per class: folded
	// from enter/exit on the fast path, bumped per instruction on the
	// instrumented path.
	classCounts [isa.NumClasses]int64
	// instrCnt and takenExit are the per-instruction counters behind
	// Options.CountInstrs on the instrumented path; the fast path folds
	// the same numbers from enter/exit at fillResult and leaves these nil.
	instrCnt, takenExit []int64

	// regs and ready are sized 256 (not isa.NumRegs) so that indexing by
	// a Reg (uint8) needs no bounds check in the inner loop.
	regs [256]int64
	mem  []int64
	// dataLen and dirtyLo/dirtyHi record which words of mem the current
	// run has made nonzero: the loaded data segment plus the store range.
	// The next Reset zeroes only those, not the whole arena.
	dataLen          int
	dirtyLo, dirtyHi int

	// Timing state.
	ready        [256]int64 // minor cycle a register's value becomes available
	unitFree     []int64    // per unit copy (flat; decoded holds offsets): next free minor cycle
	cycle        int64      // current issue minor cycle
	inCycle      int        // instructions already issued this minor cycle
	barrier      int64      // earliest next issue after a group break
	barrierIsBr  bool       // the barrier came from a taken branch
	lastComplete int64

	icache *cache.Cache
	dcache *cache.Cache

	pc     int
	halted bool

	instrs int64
	groups int64
	// replays counts schedule replays taken this run (testing/diagnostics).
	replays int64
	// mispaths counts specialized-trace guard exits taken this run: a
	// profiled likely-taken branch went untaken mid-replay and the engine
	// fell back to the block interpreter at its fallthrough. Diagnostics
	// only — like replays, deliberately not part of Result, which must stay
	// bit-identical across engine paths.
	mispaths int64
	output   []isa.Value
	stalls   StallBreakdown
}

// NewEngine returns an empty engine. Buffers are grown on first Reset.
func NewEngine() *Engine { return &Engine{} }

// Reset validates the program and machine, predecodes the program (or adopts
// the shared predecode in opts.Code), and re-arms all run state, reusing the
// engine's buffers.
func (e *Engine) Reset(p *isa.Program, opts Options) error {
	if opts.Machine == nil {
		return fmt.Errorf("sim: no machine description")
	}
	cfg := opts.Machine
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	memWords := opts.MemWords
	if memWords == 0 {
		memWords = DefaultMemWords
	}
	if len(p.Data) > memWords {
		return fmt.Errorf("sim: data segment (%d words) exceeds memory (%d words)", len(p.Data), memWords)
	}
	stackTop := p.StackTop
	if stackTop == 0 {
		stackTop = int64(memWords)
	}
	if stackTop > int64(memWords) || stackTop <= int64(len(p.Data)) {
		return fmt.Errorf("sim: stack top %d outside memory", stackTop)
	}

	e.resetMemory(memWords)
	copy(e.mem, p.Data)
	e.dataLen = len(p.Data)
	e.dirtyLo, e.dirtyHi = memWords, -1

	e.regs = [256]int64{}
	e.regs[isa.RSP] = stackTop
	e.ready = [256]int64{}

	total := 0
	for _, u := range cfg.Units {
		total += u.Multiplicity
	}
	if cap(e.unitFree) >= total {
		e.unitFree = e.unitFree[:total]
		clear(e.unitFree)
	} else {
		e.unitFree = make([]int64, total)
	}

	e.icache, e.dcache = nil, nil
	var err error
	if cfg.ICache != nil {
		if e.icache, err = cache.New(*cfg.ICache); err != nil {
			return err
		}
	}
	if cfg.DCache != nil {
		if e.dcache, err = cache.New(*cfg.DCache); err != nil {
			return err
		}
	}

	e.cfg, e.prog, e.opts = cfg, p, opts
	if opts.Code != nil {
		if err := opts.Code.matches(p, cfg); err != nil {
			return err
		}
		e.dec = opts.Code.dec
		e.scheds = opts.Code.scheds
	} else if e.ownProg == p && (e.ownCfg == cfg || e.ownSchedFP == cfg.ScheduleFingerprint()) {
		// Engine-level translation cache hit: decBuf still holds this exact
		// (program, schedule) translation — the last Code-less Reset built
		// it, and Code-based Resets never touch decBuf.
		e.dec = e.decBuf
		e.scheds = e.ownScheds
	} else {
		e.decBuf = predecodeInto(e.decBuf, p, cfg)
		e.dec = e.decBuf
		e.ownScheds = buildScheds(p, cfg, e.decBuf)
		e.ownProg, e.ownCfg, e.ownSchedFP = p, cfg, cfg.ScheduleFingerprint()
		e.scheds = e.ownScheds
	}

	n := len(e.dec) // real instructions + sentinel
	if cap(e.enter) >= n {
		e.enter = e.enter[:n]
		clear(e.enter)
	} else {
		e.enter = make([]int64, n)
	}
	if cap(e.exit) >= n {
		e.exit = e.exit[:n]
		clear(e.exit)
	} else {
		e.exit = make([]int64, n)
	}
	e.classCounts = [isa.NumClasses]int64{}
	e.instrCnt, e.takenExit = nil, nil
	if opts.CountInstrs && (e.icache != nil || e.dcache != nil || opts.OnIssue != nil || opts.OnTrace != nil) {
		// Only the instrumented path needs live counters; the fast path
		// folds InstrCounts/TakenExits from enter/exit at fillResult.
		e.instrCnt = make([]int64, n-1)
		e.takenExit = make([]int64, n-1)
	}

	e.cycle, e.inCycle = 0, 0
	e.barrier, e.barrierIsBr = 0, false
	e.lastComplete = 0
	e.pc = p.Entry
	e.halted = false
	e.instrs, e.groups = 0, 0
	e.replays, e.mispaths = 0, 0
	e.output = e.output[:0]
	e.stalls = StallBreakdown{}
	// The program entry opens the first contiguous execution run. Counted
	// here (not at the top of the timing loop) so a run advanced in several
	// runFast slices — the batch scheduler's round-robin — counts it once.
	e.enter[p.Entry]++
	return nil
}

// resetMemory provides a zeroed memory image of memWords words, zeroing only
// the region the previous run made nonzero.
func (e *Engine) resetMemory(memWords int) {
	if cap(e.mem) >= memWords {
		all := e.mem[:cap(e.mem)]
		if e.dataLen > 0 {
			clear(all[:e.dataLen])
		}
		if e.dirtyHi >= e.dirtyLo {
			clear(all[e.dirtyLo : e.dirtyHi+1])
		}
		e.mem = all[:memWords]
		return
	}
	e.mem = make([]int64, memWords)
}

// Run simulates the program to completion on this engine and returns a
// freshly allocated result.
func (e *Engine) Run(p *isa.Program, opts Options) (*Result, error) {
	res := new(Result)
	if err := e.RunInto(p, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is the zero-allocation variant of Run: it resets the engine, runs
// the program, and fills res in place (reusing res.Output's capacity).
func (e *Engine) RunInto(p *isa.Program, opts Options, res *Result) error {
	return e.RunIntoCtx(context.Background(), p, opts, res)
}

// RunIntoCtx is RunInto with cancellation: the timing loop polls ctx at
// control transfers, at least every cancelCheckInterval dynamic
// instructions, so a done context abandons the run (returning the context's
// cause) within a fraction of a millisecond at typical throughput. A
// Background context costs nothing on the fast path.
func (e *Engine) RunIntoCtx(ctx context.Context, p *isa.Program, opts Options, res *Result) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return ctxErr(ctx)
	}
	if err := e.Reset(p, opts); err != nil {
		return err
	}
	maxInstrs := opts.MaxInstructions
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstructions
	}
	// The fast path covers the common case of every ideal-machine sweep:
	// no caches and no instrumentation callbacks. The instrumented path
	// carries the icache/dcache model and the OnIssue/OnTrace hooks.
	var err error
	if e.icache == nil && e.dcache == nil && opts.OnIssue == nil && opts.OnTrace == nil {
		err = e.runFast(ctx, maxInstrs, maxInstrs)
	} else {
		err = e.runInstrumented(ctx, maxInstrs)
	}
	if err != nil {
		return err
	}
	e.fillResult(res)
	return nil
}

// nextCheck returns the instruction count at which the timing loop should
// next stop to poll the context (or, with no pollable context, to enforce
// the instruction limit only).
func nextCheck(done <-chan struct{}, instrs, maxInstrs int64) int64 {
	if done == nil {
		return maxInstrs
	}
	return min(instrs+cancelCheckInterval, maxInstrs)
}

// runFast is the uninstrumented inner loop: no caches, no callbacks.
// Timing semantics are identical to runInstrumented with both caches and
// both hooks absent, and the inlined semantic switch matches exec case for
// case (the differential suite pins both paths to the reference engine).
//
// Relative to the seed engine the loop works at basic-block granularity:
// dynamic instruction counts are two array bumps per contiguous execution
// run (enter/exit, folded to ClassCounts at halt) instead of a counter
// store per instruction, and the limit/cancellation compare sits at control
// transfers only — straight-line instructions run with no bookkeeping at
// all beyond `instrs++`. Any loop must execute a control transfer, so the
// instruction limit and context polls still fire; the one divergence is a
// straight-line program longer than the limit, which now completes rather
// than aborting mid-run. Hot ALU+branch pairs are fused into one
// superinstruction dispatch (see opFusedAluBr), and conflict-free
// functional units (multiplicity ≥ width, issue latency 1 — every unit of
// every ideal machine) are elided from the loop entirely at predecode.
//
// All hot state lives in locals for the duration of the loop and is written
// back once at the halt or yield exit; error exits abandon the run, so only
// dirty-memory tracking — updated on the engine at every store — must stay
// accurate there.
//
// stopAt makes the loop resumable: once instrs reaches it (checked at the
// same control-transfer points as the instruction limit), the loop writes
// all state back and returns with halted still false, and a later call picks
// up exactly where it left off. Whole runs pass stopAt == maxInstrs; the
// batch scheduler (Batch) uses finite slices to interleave many engines.
func (e *Engine) runFast(ctx context.Context, maxInstrs, stopAt int64) error {
	width := int64(e.cfg.IssueWidth)
	takenEnds := e.cfg.TakenBranchEndsGroup
	redirect := int64(e.cfg.BranchRedirect)
	dec := e.dec
	unitFree := e.unitFree
	mem := e.mem
	memLen := int64(len(mem))
	regs := &e.regs
	ready := &e.ready
	enter, exit := e.enter, e.exit
	scheds := e.scheds

	cycle, barrier := e.cycle, e.barrier
	inCycle := int64(e.inCycle)
	barrierIsBr := e.barrierIsBr
	lastComplete := e.lastComplete
	instrs, groups := e.instrs, e.groups
	stalls := e.stalls
	pc := e.pc

	// Cancellation polling shares the instruction-limit comparison the
	// loop performs at control transfers: checkAt is the next instruction
	// count at which anything needs attention — a context poll, the
	// instruction limit, or the caller's stop point.
	done := ctx.Done()
	checkAt := min(nextCheck(done, instrs, maxInstrs), stopAt)

	// skipCheck elides the trace-entry register scan across consecutive
	// iterations of a proven-stable loop trace (see the check label);
	// stableIdx is the exit that proved it.
	skipCheck := false
	stableIdx := 0

	for {
		idx := pc
		d := &dec[idx]
		next := idx + 1
		var taken bool

		// 1. Earliest slot under the in-order, width-limited discipline.
		// Stall accounting is written max-style rather than branching on
		// t > issue: the comparisons are data-dependent and mispredict
		// badly, while max compiles to a conditional move (adding zero to
		// the stall counter when there is no stall).
		var over int64
		if inCycle >= width {
			over = 1
		}
		slot := cycle + over
		stalls.Width += over
		if barrier > slot {
			if barrierIsBr {
				stalls.Branch += barrier - slot
			}
			slot = barrier
		}
		issue := slot

		// 2. Operand availability (RAW through the scoreboard). The probes
		// are unconditional: predecode remapped absent sources to r0, whose
		// ready slot is never written and so can never look busy. Both
		// probes fold into one max so the loads are independent of the
		// issue-slot computation above (the stall sum is unchanged:
		// (m1−issue) + (m2−m1) telescopes to max(r1,r2,issue) − issue).
		m := max(issue, max(ready[d.src1], ready[d.src2]))
		stalls.Data += m - issue
		issue = m

		// 3. Operation latency and the data-memory address.
		lat := d.lat
		var memAddr int64
		if d.flags&fMem != 0 {
			memAddr = regs[d.src1] + d.imm
			if memAddr < 0 || memAddr >= memLen {
				return fmt.Errorf("sim: pc %d (%s): address %d out of range", idx, &e.prog.Instrs[idx], memAddr)
			}
		}

		// 4. Write-order (WAW).
		if d.flags&fDst != 0 {
			m = max(issue, ready[d.dst]-lat)
			stalls.Write += m - issue
			issue = m
		}

		// 5. Functional-unit availability (class conflicts). Predecode
		// clears fUnit for units that provably never bind, which removes
		// the scan and the booking store; for the rest, the lane min is
		// computed branch-free (conditional moves, no data-dependent
		// branches) before the booking.
		if d.flags&fUnit != 0 {
			best := int(d.unitOff)
			bv := unitFree[best]
			for i := best + 1; i < int(d.unitOff)+int(d.unitLen); i++ {
				if v := unitFree[i]; v < bv {
					bv, best = v, i
				}
			}
			m = max(issue, bv)
			stalls.Unit += m - issue
			issue = m
			unitFree[best] = issue + d.issueLat
		}

		// Commit the issue slot.
		if issue > cycle {
			cycle = issue
			inCycle = 1
			groups++
		} else {
			if inCycle == 0 {
				groups++ // very first issue slot
			}
			inCycle++
		}
		complete := issue + lat
		if d.flags&fDst != 0 {
			ready[d.dst] = complete
		}
		lastComplete = max(lastComplete, complete)

		// 6. Execute (program order, at issue) — exec's switch, inlined to
		// spare a function call (and the spill of all the locals above)
		// per dynamic instruction. Control transfers leave through the
		// boundary epilogue below; straight-line ops fall out of the
		// switch into the two-instruction epilogue.
		switch d.fop {
		case isa.OpNop:
		case isa.OpAdd:
			e.setReg(d.dst, regs[d.src1]+regs[d.src2])
		case isa.OpAddi:
			e.setReg(d.dst, regs[d.src1]+d.imm)
		case isa.OpSub:
			e.setReg(d.dst, regs[d.src1]-regs[d.src2])
		case isa.OpMul:
			e.setReg(d.dst, regs[d.src1]*regs[d.src2])
		case isa.OpDiv:
			dv := regs[d.src2]
			if dv == 0 {
				return fmt.Errorf("sim: pc %d (%s): integer division by zero", idx, &e.prog.Instrs[idx])
			}
			e.setReg(d.dst, regs[d.src1]/dv)
		case isa.OpRem:
			dv := regs[d.src2]
			if dv == 0 {
				return fmt.Errorf("sim: pc %d (%s): integer remainder by zero", idx, &e.prog.Instrs[idx])
			}
			e.setReg(d.dst, regs[d.src1]%dv)
		case isa.OpSlt:
			e.setReg(d.dst, b2i(regs[d.src1] < regs[d.src2]))
		case isa.OpSle:
			e.setReg(d.dst, b2i(regs[d.src1] <= regs[d.src2]))
		case isa.OpSeq:
			e.setReg(d.dst, b2i(regs[d.src1] == regs[d.src2]))
		case isa.OpSne:
			e.setReg(d.dst, b2i(regs[d.src1] != regs[d.src2]))
		case isa.OpAnd:
			e.setReg(d.dst, regs[d.src1]&regs[d.src2])
		case isa.OpOr:
			e.setReg(d.dst, regs[d.src1]|regs[d.src2])
		case isa.OpXor:
			e.setReg(d.dst, regs[d.src1]^regs[d.src2])
		case isa.OpAndi:
			e.setReg(d.dst, regs[d.src1]&d.imm)
		case isa.OpOri:
			e.setReg(d.dst, regs[d.src1]|d.imm)
		case isa.OpXori:
			e.setReg(d.dst, regs[d.src1]^d.imm)
		case isa.OpSll:
			e.setReg(d.dst, regs[d.src1]<<(uint64(regs[d.src2])&63))
		case isa.OpSrl:
			e.setReg(d.dst, int64(uint64(regs[d.src1])>>(uint64(regs[d.src2])&63)))
		case isa.OpSra:
			e.setReg(d.dst, regs[d.src1]>>(uint64(regs[d.src2])&63))
		case isa.OpSlli:
			e.setReg(d.dst, regs[d.src1]<<(uint64(d.imm)&63))
		case isa.OpSrli:
			e.setReg(d.dst, int64(uint64(regs[d.src1])>>(uint64(d.imm)&63)))
		case isa.OpSrai:
			e.setReg(d.dst, regs[d.src1]>>(uint64(d.imm)&63))
		case isa.OpLi:
			e.setReg(d.dst, d.imm)
		case isa.OpMov:
			e.setReg(d.dst, regs[d.src1])
		case isa.OpFli:
			e.setRegF(d.dst, d.fimm)
		case isa.OpFmov:
			e.setReg(d.dst, regs[d.src1])
		case isa.OpLw, isa.OpLf:
			e.setReg(d.dst, mem[memAddr])
		case isa.OpSw, isa.OpSf:
			mem[memAddr] = regs[d.src2]
			if a := int(memAddr); a < e.dirtyLo {
				e.dirtyLo = a
			}
			if a := int(memAddr); a > e.dirtyHi {
				e.dirtyHi = a
			}
		case isa.OpBeq:
			if regs[d.src1] == regs[d.src2] {
				taken, next = true, int(d.target)
			}
			goto boundary
		case isa.OpBne:
			if regs[d.src1] != regs[d.src2] {
				taken, next = true, int(d.target)
			}
			goto boundary
		case isa.OpBlt:
			if regs[d.src1] < regs[d.src2] {
				taken, next = true, int(d.target)
			}
			goto boundary
		case isa.OpBge:
			if regs[d.src1] >= regs[d.src2] {
				taken, next = true, int(d.target)
			}
			goto boundary
		case isa.OpBle:
			if regs[d.src1] <= regs[d.src2] {
				taken, next = true, int(d.target)
			}
			goto boundary
		case isa.OpBgt:
			if regs[d.src1] > regs[d.src2] {
				taken, next = true, int(d.target)
			}
			goto boundary
		case isa.OpJ:
			taken, next = true, int(d.target)
			goto boundary
		case isa.OpJal:
			e.setReg(d.dst, int64(idx+1))
			taken, next = true, int(d.target)
			goto boundary
		case isa.OpJr:
			t := int(regs[d.src1])
			// The only computed control transfer: check here (the
			// sentinel covers t == len(dec)-1, i.e. one past the
			// program, with the same error).
			if uint(t) >= uint(len(dec)) {
				return fmt.Errorf("sim: pc %d out of range", t)
			}
			taken, next = true, t
			goto boundary
		case opFusedAluBr:
			// A fused ALU+conditional-branch pair. The head (this
			// entry, architectural op d.op) has fully issued above;
			// apply its semantics, then inline the branch at idx+1
			// through the exact timing steps it would take standalone:
			// width limit, barrier, RAW — no destination, no memory,
			// and a conflict-free unit (fusion requires it).
			{
				var v int64
				switch d.op {
				case isa.OpAdd:
					v = regs[d.src1] + regs[d.src2]
				case isa.OpAddi:
					v = regs[d.src1] + d.imm
				case isa.OpSub:
					v = regs[d.src1] - regs[d.src2]
				case isa.OpAnd:
					v = regs[d.src1] & regs[d.src2]
				case isa.OpOr:
					v = regs[d.src1] | regs[d.src2]
				case isa.OpXor:
					v = regs[d.src1] ^ regs[d.src2]
				case isa.OpAndi:
					v = regs[d.src1] & d.imm
				case isa.OpOri:
					v = regs[d.src1] | d.imm
				case isa.OpXori:
					v = regs[d.src1] ^ d.imm
				case isa.OpSlt:
					v = b2i(regs[d.src1] < regs[d.src2])
				case isa.OpSle:
					v = b2i(regs[d.src1] <= regs[d.src2])
				case isa.OpSeq:
					v = b2i(regs[d.src1] == regs[d.src2])
				case isa.OpSne:
					v = b2i(regs[d.src1] != regs[d.src2])
				case isa.OpSll:
					v = regs[d.src1] << (uint64(regs[d.src2]) & 63)
				case isa.OpSrl:
					v = int64(uint64(regs[d.src1]) >> (uint64(regs[d.src2]) & 63))
				case isa.OpSra:
					v = regs[d.src1] >> (uint64(regs[d.src2]) & 63)
				case isa.OpSlli:
					v = regs[d.src1] << (uint64(d.imm) & 63)
				case isa.OpSrli:
					v = int64(uint64(regs[d.src1]) >> (uint64(d.imm) & 63))
				case isa.OpSrai:
					v = regs[d.src1] >> (uint64(d.imm) & 63)
				case isa.OpLi:
					v = d.imm
				case isa.OpMov:
					v = regs[d.src1]
				default:
					return fmt.Errorf("sim: pc %d: bad fused head opcode %v", idx, d.op)
				}
				regs[d.dst] = v // fusion requires fDst, so dst is never r0

				bd := &dec[idx+1]
				var overB int64
				if inCycle >= width {
					overB = 1
				}
				slotB := cycle + overB
				stalls.Width += overB
				if barrier > slotB {
					if barrierIsBr {
						stalls.Branch += barrier - slotB
					}
					slotB = barrier
				}
				issueB := slotB
				m = max(issueB, max(ready[bd.src1], ready[bd.src2]))
				stalls.Data += m - issueB
				issueB = m
				if issueB > cycle {
					cycle = issueB
					inCycle = 1
					groups++
				} else {
					inCycle++ // the head issued, so inCycle >= 1 here
				}
				lastComplete = max(lastComplete, issueB+bd.lat)

				var bTaken bool
				switch bd.op {
				case isa.OpBeq:
					bTaken = regs[bd.src1] == regs[bd.src2]
				case isa.OpBne:
					bTaken = regs[bd.src1] != regs[bd.src2]
				case isa.OpBlt:
					bTaken = regs[bd.src1] < regs[bd.src2]
				case isa.OpBge:
					bTaken = regs[bd.src1] >= regs[bd.src2]
				case isa.OpBle:
					bTaken = regs[bd.src1] <= regs[bd.src2]
				case isa.OpBgt:
					bTaken = regs[bd.src1] > regs[bd.src2]
				}
				instrs += 2
				if bTaken {
					pc = int(bd.target)
					exit[idx+1]++
					enter[pc]++
					if takenEnds {
						if b := issueB + bd.lat + redirect; b > barrier {
							barrier, barrierIsBr = b, true
						}
					}
				} else {
					pc = idx + 2
				}
			}
			goto check
		case opFusedAluAlu:
			// A fused pair of integer ALU instructions: the head has
			// fully issued above; apply its semantics, then inline the
			// second ALU op at idx+1 through its standalone issue steps
			// (width limit, barrier, RAW, WAW, scoreboard write; a
			// conflict-free unit — fusion requires it). Straight-line,
			// so no block bookkeeping and no limit compare.
			{
				var v int64
				switch d.op {
				case isa.OpAdd:
					v = regs[d.src1] + regs[d.src2]
				case isa.OpAddi:
					v = regs[d.src1] + d.imm
				case isa.OpSub:
					v = regs[d.src1] - regs[d.src2]
				case isa.OpAnd:
					v = regs[d.src1] & regs[d.src2]
				case isa.OpOr:
					v = regs[d.src1] | regs[d.src2]
				case isa.OpXor:
					v = regs[d.src1] ^ regs[d.src2]
				case isa.OpAndi:
					v = regs[d.src1] & d.imm
				case isa.OpOri:
					v = regs[d.src1] | d.imm
				case isa.OpXori:
					v = regs[d.src1] ^ d.imm
				case isa.OpSlt:
					v = b2i(regs[d.src1] < regs[d.src2])
				case isa.OpSle:
					v = b2i(regs[d.src1] <= regs[d.src2])
				case isa.OpSeq:
					v = b2i(regs[d.src1] == regs[d.src2])
				case isa.OpSne:
					v = b2i(regs[d.src1] != regs[d.src2])
				case isa.OpSll:
					v = regs[d.src1] << (uint64(regs[d.src2]) & 63)
				case isa.OpSrl:
					v = int64(uint64(regs[d.src1]) >> (uint64(regs[d.src2]) & 63))
				case isa.OpSra:
					v = regs[d.src1] >> (uint64(regs[d.src2]) & 63)
				case isa.OpSlli:
					v = regs[d.src1] << (uint64(d.imm) & 63)
				case isa.OpSrli:
					v = int64(uint64(regs[d.src1]) >> (uint64(d.imm) & 63))
				case isa.OpSrai:
					v = regs[d.src1] >> (uint64(d.imm) & 63)
				case isa.OpLi:
					v = d.imm
				case isa.OpMov:
					v = regs[d.src1]
				default:
					return fmt.Errorf("sim: pc %d: bad fused head opcode %v", idx, d.op)
				}
				regs[d.dst] = v // fusion requires fDst, so dst is never r0

				bd := &dec[idx+1]
				var overB int64
				if inCycle >= width {
					overB = 1
				}
				slotB := cycle + overB
				stalls.Width += overB
				if barrier > slotB {
					if barrierIsBr {
						stalls.Branch += barrier - slotB
					}
					slotB = barrier
				}
				issueB := slotB
				m = max(issueB, max(ready[bd.src1], ready[bd.src2]))
				stalls.Data += m - issueB
				issueB = m
				latB := bd.lat
				m = max(issueB, ready[bd.dst]-latB)
				stalls.Write += m - issueB
				issueB = m
				if issueB > cycle {
					cycle = issueB
					inCycle = 1
					groups++
				} else {
					inCycle++ // the head issued, so inCycle >= 1 here
				}
				completeB := issueB + latB
				ready[bd.dst] = completeB
				lastComplete = max(lastComplete, completeB)

				switch bd.op {
				case isa.OpAdd:
					v = regs[bd.src1] + regs[bd.src2]
				case isa.OpAddi:
					v = regs[bd.src1] + bd.imm
				case isa.OpSub:
					v = regs[bd.src1] - regs[bd.src2]
				case isa.OpAnd:
					v = regs[bd.src1] & regs[bd.src2]
				case isa.OpOr:
					v = regs[bd.src1] | regs[bd.src2]
				case isa.OpXor:
					v = regs[bd.src1] ^ regs[bd.src2]
				case isa.OpAndi:
					v = regs[bd.src1] & bd.imm
				case isa.OpOri:
					v = regs[bd.src1] | bd.imm
				case isa.OpXori:
					v = regs[bd.src1] ^ bd.imm
				case isa.OpSlt:
					v = b2i(regs[bd.src1] < regs[bd.src2])
				case isa.OpSle:
					v = b2i(regs[bd.src1] <= regs[bd.src2])
				case isa.OpSeq:
					v = b2i(regs[bd.src1] == regs[bd.src2])
				case isa.OpSne:
					v = b2i(regs[bd.src1] != regs[bd.src2])
				case isa.OpSll:
					v = regs[bd.src1] << (uint64(regs[bd.src2]) & 63)
				case isa.OpSrl:
					v = int64(uint64(regs[bd.src1]) >> (uint64(regs[bd.src2]) & 63))
				case isa.OpSra:
					v = regs[bd.src1] >> (uint64(regs[bd.src2]) & 63)
				case isa.OpSlli:
					v = regs[bd.src1] << (uint64(bd.imm) & 63)
				case isa.OpSrli:
					v = int64(uint64(regs[bd.src1]) >> (uint64(bd.imm) & 63))
				case isa.OpSrai:
					v = regs[bd.src1] >> (uint64(bd.imm) & 63)
				case isa.OpLi:
					v = bd.imm
				case isa.OpMov:
					v = regs[bd.src1]
				default:
					return fmt.Errorf("sim: pc %d: bad fused tail opcode %v", idx+1, bd.op)
				}
				regs[bd.dst] = v
			}
			pc = idx + 2
			instrs += 2
			continue
		case isa.OpFadd:
			e.setRegF(d.dst, e.regF(d.src1)+e.regF(d.src2))
		case isa.OpFsub:
			e.setRegF(d.dst, e.regF(d.src1)-e.regF(d.src2))
		case isa.OpFneg:
			e.setRegF(d.dst, -e.regF(d.src1))
		case isa.OpFabs:
			e.setRegF(d.dst, math.Abs(e.regF(d.src1)))
		case isa.OpFmul:
			e.setRegF(d.dst, e.regF(d.src1)*e.regF(d.src2))
		case isa.OpFdiv:
			e.setRegF(d.dst, e.regF(d.src1)/e.regF(d.src2))
		case isa.OpCvtif:
			e.setRegF(d.dst, float64(regs[d.src1]))
		case isa.OpCvtfi:
			f := e.regF(d.src1)
			if math.IsNaN(f) || f >= 9.3e18 || f <= -9.3e18 {
				return fmt.Errorf("sim: pc %d (%s): float-to-int overflow (%g)", idx, &e.prog.Instrs[idx], f)
			}
			e.setReg(d.dst, int64(f))
		case isa.OpFslt:
			e.setReg(d.dst, b2i(e.regF(d.src1) < e.regF(d.src2)))
		case isa.OpFsle:
			e.setReg(d.dst, b2i(e.regF(d.src1) <= e.regF(d.src2)))
		case isa.OpFseq:
			e.setReg(d.dst, b2i(e.regF(d.src1) == e.regF(d.src2)))
		case isa.OpFsne:
			e.setReg(d.dst, b2i(e.regF(d.src1) != e.regF(d.src2)))
		case isa.OpFsqrt:
			e.setRegF(d.dst, math.Sqrt(e.regF(d.src1)))
		case isa.OpFsin:
			e.setRegF(d.dst, math.Sin(e.regF(d.src1)))
		case isa.OpFcos:
			e.setRegF(d.dst, math.Cos(e.regF(d.src1)))
		case isa.OpFatn:
			e.setRegF(d.dst, math.Atan(e.regF(d.src1)))
		case isa.OpFexp:
			e.setRegF(d.dst, math.Exp(e.regF(d.src1)))
		case isa.OpFlog:
			e.setRegF(d.dst, math.Log(e.regF(d.src1)))
		case isa.OpPrinti:
			e.output = append(e.output, isa.IntValue(regs[d.src1]))
		case isa.OpPrintf:
			e.output = append(e.output, isa.FloatValue(e.regF(d.src1)))
		case isa.OpHalt:
			instrs++
			exit[idx]++
			e.halted = true
			pc = idx
			goto out
		case opOutOfRange:
			return fmt.Errorf("sim: pc %d out of range", idx)
		default:
			return fmt.Errorf("sim: pc %d: unimplemented opcode %v", idx, d.op)
		}
		// Straight-line epilogue: no block bookkeeping, no limit compare.
		pc = next
		instrs++
		continue

	boundary:
		// Control-transfer epilogue: a taken transfer ends the current
		// contiguous run at idx and starts one at the target; an untaken
		// branch keeps the run going (no counter writes) but still rides
		// through the limit/cancellation poll below, bounding the poll
		// interval in branch-dense code.
		pc = next
		instrs++
		if taken {
			exit[idx]++
			enter[next]++
			if takenEnds {
				// A taken branch ends its issue group, and the target
				// may not issue until the branch's operation latency
				// has elapsed — one base cycle on the ideal machines,
				// so a degree-m superpipeline pays m minor cycles: the
				// §4.1 startup transient at every branch target.
				if b := issue + lat + redirect; b > barrier {
					barrier, barrierIsBr = b, true
				}
			}
		}

	check:
		// Trace replay: if the instruction at pc roots a superblock trace,
		// and we arrived behind a fresh taken-branch barrier (so the trace's
		// first instruction issues exactly at the barrier), and no register
		// the trace touches is still in flight past the barrier, then the
		// whole trace's timing is known per exit: apply the semantics
		// segment by segment (traceExec, resolving each guarded side exit
		// from live data) and the issue accounting of whichever exit the run
		// took in O(1), instead of walking the scoreboard per instruction.
		// The entry stalls (width, branch) are dynamic and charged exactly
		// as the per-instruction path would; the trace's internal stalls —
		// including waits on its own jump-seam barriers — were precomputed.
		// A taken exit leaves a fresh barrier behind (the exiting branch
		// ends its group), so the loop spins: a hot loop body replays
		// iteration after iteration with one precondition scan each — or
		// none, when the exit is a proven-stable back-edge (skipCheck).
		for scheds != nil && barrierIsBr && barrier > cycle {
			tr := scheds[pc]
			if tr == nil {
				break
			}
			var exitIdx int
			var err error
			if skipCheck {
				// Proven-stable back-edge spin: every iteration re-enters
				// at pc with the precondition re-established and leaves
				// through the same exit with identical relative timing, so
				// each iteration's bookkeeping is a constant delta — run
				// the micro-ops k times, then apply k deltas in O(1). The
				// scoreboard writes, lastComplete, and block counters of
				// iterations 1..k-1 are superseded by (or fold into)
				// iteration k's, so only the final state is written.
				skipCheck = false
				sEx := &tr.exits[stableIdx]
				var overS int64
				if sEx.inCycle >= width {
					overS = 1
				}
				// Iterations until the poll point; ≥ 1 because the poll
				// below ran right after the exit that set skipCheck.
				kMax := (checkAt - instrs + sEx.n - 1) / sEx.n
				var k int64
				for {
					exitIdx, err = e.traceExecU(tr.uops)
					if err != nil || exitIdx != stableIdx {
						break
					}
					k++
					if k >= kMax {
						exitIdx = -1 // nothing pending; poll, then respin
						break
					}
				}
				if k > 0 {
					adv := k * sEx.barrierOff
					cycle += adv
					barrier += adv
					stalls.Width += k * (overS + sEx.widthStalls)
					stalls.Branch += k * (sEx.barrierOff - sEx.cycleAdv - overS + sEx.branchStalls)
					stalls.Data += k * sEx.dataStalls
					stalls.Write += k * sEx.writeStalls
					groups += k * sEx.groups
					instrs += k * sEx.n
					e.replays += k
					sLast := barrier - sEx.barrierOff
					for _, w := range sEx.writes {
						ready[w.Reg] = sLast + w.Off
					}
					lastComplete = max(lastComplete, sLast+sEx.maxComplete)
					if sEx.taken {
						exit[sEx.at] += k
						enter[pc] += k
					}
					for _, j := range sEx.jumps {
						exit[j.at] += k
						enter[j.target] += k
					}
				}
				if err != nil {
					return err
				}
				if exitIdx < 0 {
					skipCheck = true
					if instrs >= checkAt {
						if instrs >= maxInstrs {
							return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", maxInstrs)
						}
						if instrs >= stopAt {
							goto out
						}
						select {
						case <-done:
							return ctxErr(ctx)
						default:
						}
						checkAt = min(nextCheck(done, instrs, maxInstrs), stopAt)
					}
					continue
				}
				// A different exit fired: its semantics ran above; fall
				// through to apply its timing at the current barrier.
			} else {
				ok := true
				for _, r := range tr.checkRegs {
					if ready[r] > barrier {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				exitIdx, err = e.traceExecU(tr.uops)
				if err != nil {
					return err
				}
			}
			e.replays++
			s := barrier
			var over int64
			if inCycle >= width {
				over = 1
			}
			ex := &tr.exits[exitIdx]
			stalls.Width += over + ex.widthStalls
			stalls.Branch += s - (cycle + over) + ex.branchStalls
			stalls.Data += ex.dataStalls
			stalls.Write += ex.writeStalls
			cycle = s + ex.cycleAdv
			inCycle = ex.inCycle
			groups += ex.groups
			for _, w := range ex.writes {
				ready[w.Reg] = s + w.Off
			}
			lastComplete = max(lastComplete, s+ex.maxComplete)
			instrs += ex.n
			barrier = s + ex.barrierOff
			pc = int(ex.target)
			for _, j := range ex.jumps {
				exit[j.at]++
				enter[j.target]++
			}
			if ex.taken {
				exit[ex.at]++
				enter[pc]++
			} else if ex.at >= 0 {
				// A specialization guard fired: the profiled likely-taken
				// branch went untaken, and the engine resumes per-instruction
				// at its fallthrough. Untaken branches bump no block counter.
				e.mispaths++
			}
			if ex.stable {
				// A self-renewing back-edge — the taken side exit of a
				// do-while body, or the stitched-seam fallthrough of a
				// while-shaped loop: re-entry needs no register check.
				skipCheck = true
				stableIdx = exitIdx
			}
			if instrs >= checkAt {
				if instrs >= maxInstrs {
					return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", maxInstrs)
				}
				if instrs >= stopAt {
					goto out
				}
				select {
				case <-done:
					return ctxErr(ctx)
				default:
				}
				checkAt = min(nextCheck(done, instrs, maxInstrs), stopAt)
			}
		}
		skipCheck = false
		if instrs >= checkAt {
			if instrs >= maxInstrs {
				return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", maxInstrs)
			}
			if instrs >= stopAt {
				goto out
			}
			select {
			case <-done:
				return ctxErr(ctx)
			default:
			}
			checkAt = min(nextCheck(done, instrs, maxInstrs), stopAt)
		}
	}

out:
	// Halt or yield: write every local back so the result (or the next
	// runFast slice) sees the exact state.
	e.pc = pc
	e.cycle, e.barrier = cycle, barrier
	e.inCycle = int(inCycle)
	e.barrierIsBr = barrierIsBr
	e.lastComplete = lastComplete
	e.instrs, e.groups = instrs, groups
	e.stalls = stalls
	if e.halted {
		e.foldCounts()
	}
	return nil
}

// foldCounts folds the block entry/exit counters into per-class dynamic
// instruction counts: sweeping the program in index order, the number of
// still-open contiguous runs covering instruction i is exactly its dynamic
// execution count.
func (e *Engine) foldCounts() {
	dec, enter, exit := e.dec, e.enter, e.exit
	var live int64
	for i := 0; i < len(dec)-1; i++ { // skip the sentinel
		live += enter[i]
		e.classCounts[dec[i].class] += live
		live -= exit[i]
	}
}

// runInstrumented is the slow path: the same discipline as runFast plus
// instruction/data cache modeling and the OnIssue/OnTrace callbacks. It is
// selected once at RunInto, never per instruction. It dispatches on the
// architectural opcode, so fused superinstructions do not exist here, and
// class counts are bumped per instruction (the callbacks already cost far
// more than the counter).
func (e *Engine) runInstrumented(ctx context.Context, maxInstrs int64) error {
	width := int64(e.cfg.IssueWidth)
	takenEnds := e.cfg.TakenBranchEndsGroup
	redirect := int64(e.cfg.BranchRedirect)
	onIssue, onTrace := e.opts.OnIssue, e.opts.OnTrace
	cnts, exits := e.instrCnt, e.takenExit
	dec := e.dec[:len(e.dec)-1] // drop the fast path's sentinel entry
	memLen := int64(len(e.mem))
	done := ctx.Done()
	checkAt := nextCheck(done, e.instrs, maxInstrs)
	for !e.halted {
		if e.pc < 0 || e.pc >= len(dec) {
			return fmt.Errorf("sim: pc %d out of range", e.pc)
		}
		if e.instrs >= checkAt {
			if e.instrs >= maxInstrs {
				return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", maxInstrs)
			}
			select {
			case <-done:
				return ctxErr(ctx)
			default:
			}
			checkAt = nextCheck(done, e.instrs, maxInstrs)
		}
		idx := e.pc
		d := &dec[idx]
		e.classCounts[d.class]++

		// 1. Earliest slot under the in-order, width-limited discipline.
		slot := e.cycle
		if int64(e.inCycle) >= width {
			slot = e.cycle + 1
			e.stalls.Width++
		}
		if e.barrier > slot {
			if e.barrierIsBr {
				e.stalls.Branch += e.barrier - slot
			}
			slot = e.barrier
		}

		// 2. Instruction fetch.
		if e.icache != nil {
			if !e.icache.Access(int64(idx)) {
				pen := int64(e.icache.MissPenalty())
				e.stalls.ICache += pen
				slot += pen
			}
		}
		issue := slot

		// 3. Operand availability (RAW through the scoreboard).
		if d.flags&fSrc1 != 0 {
			if t := e.ready[d.src1]; t > issue {
				e.stalls.Data += t - issue
				issue = t
			}
		}
		if d.flags&fSrc2 != 0 {
			if t := e.ready[d.src2]; t > issue {
				e.stalls.Data += t - issue
				issue = t
			}
		}

		// 4. Operation latency, including data-cache effects on loads.
		lat := d.lat
		var memAddr int64
		if d.flags&fMem != 0 {
			memAddr = e.regs[d.src1] + d.imm
			if memAddr < 0 || memAddr >= memLen {
				return fmt.Errorf("sim: pc %d (%s): address %d out of range", idx, &e.prog.Instrs[idx], memAddr)
			}
		}
		var storeMissPenalty int64
		if e.dcache != nil && d.flags&(fLoad|fStore) != 0 {
			addr := memAddr
			if d.flags&fPrint != 0 {
				addr = 0 // output port; treat as uncached hit
			} else if !e.dcache.Access(addr) {
				pen := int64(e.dcache.MissPenalty())
				if d.flags&fLoad != 0 {
					lat += pen
				} else {
					storeMissPenalty = pen
				}
			}
		}

		// 5. Write-order (WAW).
		if d.flags&fDst != 0 {
			if t := e.ready[d.dst] - lat; t > issue {
				e.stalls.Write += t - issue
				issue = t
			}
		}

		// 6. Functional-unit availability (class conflicts).
		best := int(d.unitOff)
		for i := best + 1; i < int(d.unitOff)+int(d.unitLen); i++ {
			if e.unitFree[i] < e.unitFree[best] {
				best = i
			}
		}
		if t := e.unitFree[best]; t > issue {
			e.stalls.Unit += t - issue
			issue = t
		}

		// Commit the issue slot.
		if issue > e.cycle {
			e.cycle = issue
			e.inCycle = 1
			e.groups++
		} else {
			if e.inCycle == 0 {
				e.groups++ // very first issue slot
			}
			e.inCycle++
		}
		e.unitFree[best] = issue + d.issueLat
		complete := issue + lat
		if d.flags&fDst != 0 {
			e.ready[d.dst] = complete
		}
		if complete > e.lastComplete {
			e.lastComplete = complete
		}
		if storeMissPenalty > 0 {
			e.stalls.DCache += storeMissPenalty
			if b := issue + storeMissPenalty; b > e.barrier {
				e.barrier = b
				e.barrierIsBr = false
			}
		}

		// 7. Execute (program order, at issue).
		taken, err := e.exec(idx, d, memAddr)
		if err != nil {
			return err
		}
		e.instrs++
		if cnts != nil {
			cnts[idx]++
			if taken || e.halted {
				exits[idx]++
			}
		}
		if onIssue != nil {
			onIssue(idx, &e.prog.Instrs[idx], issue, complete)
		}
		if onTrace != nil {
			a := int64(-1)
			if d.flags&fMem != 0 {
				a = memAddr
			}
			onTrace(idx, &e.prog.Instrs[idx], a)
		}
		if taken && takenEnds {
			// A taken branch ends its issue group, and the target may
			// not issue until the branch's operation latency has
			// elapsed — one base cycle on the ideal machines, so a
			// degree-m superpipeline pays m minor cycles, which is the
			// §4.1 startup transient at every branch target.
			if b := issue + lat + redirect; b > e.barrier {
				e.barrier = b
				e.barrierIsBr = true
			}
		}
	}
	return nil
}

// setReg writes an integer-file result, honoring the hardwired zero.
func (e *Engine) setReg(reg isa.Reg, v int64) {
	if reg != isa.RZero {
		e.regs[reg] = v
	}
}

// setRegF writes a floating-point result (fp registers cannot alias r0).
func (e *Engine) setRegF(reg isa.Reg, v float64) {
	e.regs[reg] = int64(math.Float64bits(v))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// exec performs the semantic effect of the instruction and advances the pc.
// It reports whether a control transfer was taken.
func (e *Engine) exec(idx int, d *decoded, memAddr int64) (taken bool, err error) {
	regs := &e.regs
	next := idx + 1

	switch d.op {
	case isa.OpNop:
	case isa.OpAdd:
		e.setReg(d.dst, regs[d.src1]+regs[d.src2])
	case isa.OpAddi:
		e.setReg(d.dst, regs[d.src1]+d.imm)
	case isa.OpSub:
		e.setReg(d.dst, regs[d.src1]-regs[d.src2])
	case isa.OpMul:
		e.setReg(d.dst, regs[d.src1]*regs[d.src2])
	case isa.OpDiv:
		dv := regs[d.src2]
		if dv == 0 {
			return false, fmt.Errorf("sim: pc %d (%s): integer division by zero", idx, &e.prog.Instrs[idx])
		}
		e.setReg(d.dst, regs[d.src1]/dv)
	case isa.OpRem:
		dv := regs[d.src2]
		if dv == 0 {
			return false, fmt.Errorf("sim: pc %d (%s): integer remainder by zero", idx, &e.prog.Instrs[idx])
		}
		e.setReg(d.dst, regs[d.src1]%dv)
	case isa.OpSlt:
		e.setReg(d.dst, b2i(regs[d.src1] < regs[d.src2]))
	case isa.OpSle:
		e.setReg(d.dst, b2i(regs[d.src1] <= regs[d.src2]))
	case isa.OpSeq:
		e.setReg(d.dst, b2i(regs[d.src1] == regs[d.src2]))
	case isa.OpSne:
		e.setReg(d.dst, b2i(regs[d.src1] != regs[d.src2]))
	case isa.OpAnd:
		e.setReg(d.dst, regs[d.src1]&regs[d.src2])
	case isa.OpOr:
		e.setReg(d.dst, regs[d.src1]|regs[d.src2])
	case isa.OpXor:
		e.setReg(d.dst, regs[d.src1]^regs[d.src2])
	case isa.OpAndi:
		e.setReg(d.dst, regs[d.src1]&d.imm)
	case isa.OpOri:
		e.setReg(d.dst, regs[d.src1]|d.imm)
	case isa.OpXori:
		e.setReg(d.dst, regs[d.src1]^d.imm)
	case isa.OpSll:
		e.setReg(d.dst, regs[d.src1]<<(uint64(regs[d.src2])&63))
	case isa.OpSrl:
		e.setReg(d.dst, int64(uint64(regs[d.src1])>>(uint64(regs[d.src2])&63)))
	case isa.OpSra:
		e.setReg(d.dst, regs[d.src1]>>(uint64(regs[d.src2])&63))
	case isa.OpSlli:
		e.setReg(d.dst, regs[d.src1]<<(uint64(d.imm)&63))
	case isa.OpSrli:
		e.setReg(d.dst, int64(uint64(regs[d.src1])>>(uint64(d.imm)&63)))
	case isa.OpSrai:
		e.setReg(d.dst, regs[d.src1]>>(uint64(d.imm)&63))
	case isa.OpLi:
		e.setReg(d.dst, d.imm)
	case isa.OpMov:
		e.setReg(d.dst, regs[d.src1])
	case isa.OpFli:
		e.setRegF(d.dst, d.fimm)
	case isa.OpFmov:
		e.setReg(d.dst, regs[d.src1])
	case isa.OpLw, isa.OpLf:
		e.setReg(d.dst, e.mem[memAddr])
	case isa.OpSw, isa.OpSf:
		e.mem[memAddr] = regs[d.src2]
		if a := int(memAddr); a < e.dirtyLo {
			e.dirtyLo = a
		}
		if a := int(memAddr); a > e.dirtyHi {
			e.dirtyHi = a
		}
	case isa.OpBeq:
		taken = regs[d.src1] == regs[d.src2]
	case isa.OpBne:
		taken = regs[d.src1] != regs[d.src2]
	case isa.OpBlt:
		taken = regs[d.src1] < regs[d.src2]
	case isa.OpBge:
		taken = regs[d.src1] >= regs[d.src2]
	case isa.OpBle:
		taken = regs[d.src1] <= regs[d.src2]
	case isa.OpBgt:
		taken = regs[d.src1] > regs[d.src2]
	case isa.OpJ:
		taken = true
	case isa.OpJal:
		e.setReg(d.dst, int64(idx+1))
		taken = true
	case isa.OpJr:
		next = int(regs[d.src1])
		taken = true
	case isa.OpFadd:
		e.setRegF(d.dst, e.regF(d.src1)+e.regF(d.src2))
	case isa.OpFsub:
		e.setRegF(d.dst, e.regF(d.src1)-e.regF(d.src2))
	case isa.OpFneg:
		e.setRegF(d.dst, -e.regF(d.src1))
	case isa.OpFabs:
		e.setRegF(d.dst, math.Abs(e.regF(d.src1)))
	case isa.OpFmul:
		e.setRegF(d.dst, e.regF(d.src1)*e.regF(d.src2))
	case isa.OpFdiv:
		e.setRegF(d.dst, e.regF(d.src1)/e.regF(d.src2))
	case isa.OpCvtif:
		e.setRegF(d.dst, float64(regs[d.src1]))
	case isa.OpCvtfi:
		f := e.regF(d.src1)
		if math.IsNaN(f) || f >= 9.3e18 || f <= -9.3e18 {
			return false, fmt.Errorf("sim: pc %d (%s): float-to-int overflow (%g)", idx, &e.prog.Instrs[idx], f)
		}
		e.setReg(d.dst, int64(f))
	case isa.OpFslt:
		e.setReg(d.dst, b2i(e.regF(d.src1) < e.regF(d.src2)))
	case isa.OpFsle:
		e.setReg(d.dst, b2i(e.regF(d.src1) <= e.regF(d.src2)))
	case isa.OpFseq:
		e.setReg(d.dst, b2i(e.regF(d.src1) == e.regF(d.src2)))
	case isa.OpFsne:
		e.setReg(d.dst, b2i(e.regF(d.src1) != e.regF(d.src2)))
	case isa.OpFsqrt:
		e.setRegF(d.dst, math.Sqrt(e.regF(d.src1)))
	case isa.OpFsin:
		e.setRegF(d.dst, math.Sin(e.regF(d.src1)))
	case isa.OpFcos:
		e.setRegF(d.dst, math.Cos(e.regF(d.src1)))
	case isa.OpFatn:
		e.setRegF(d.dst, math.Atan(e.regF(d.src1)))
	case isa.OpFexp:
		e.setRegF(d.dst, math.Exp(e.regF(d.src1)))
	case isa.OpFlog:
		e.setRegF(d.dst, math.Log(e.regF(d.src1)))
	case isa.OpPrinti:
		e.output = append(e.output, isa.IntValue(regs[d.src1]))
	case isa.OpPrintf:
		e.output = append(e.output, isa.FloatValue(e.regF(d.src1)))
	case isa.OpHalt:
		e.halted = true
		return false, nil
	default:
		return false, fmt.Errorf("sim: pc %d: unimplemented opcode %v", idx, d.op)
	}

	if taken && d.op != isa.OpJr {
		next = int(d.target)
	}
	e.pc = next
	return taken, nil
}

// regF reads a register as a float64.
func (e *Engine) regF(reg isa.Reg) float64 {
	return math.Float64frombits(uint64(e.regs[reg]))
}

// fillResult writes the run's result into res, reusing res.Output.
func (e *Engine) fillResult(res *Result) {
	res.Machine = e.cfg.Name
	res.Instructions = e.instrs
	res.IssueGroups = e.groups
	res.MinorCycles = e.lastComplete
	res.BaseCycles = e.cfg.BaseCycles(e.lastComplete)
	res.ClassCounts = e.classCounts
	res.Output = append(res.Output[:0], e.output...)
	res.Stalls = e.stalls
	res.InstrCounts, res.TakenExits = nil, nil
	if e.opts.CountInstrs {
		n := len(e.dec) - 1
		counts := make([]int64, n)
		exits := make([]int64, n)
		if e.instrCnt != nil {
			copy(counts, e.instrCnt)
			copy(exits, e.takenExit)
		} else {
			// Fast path: fold the block entry/exit counters, exactly as
			// foldCounts does for the class mix. exit already counts both
			// taken transfers and the final halt.
			var live int64
			for i := 0; i < n; i++ {
				live += e.enter[i]
				counts[i] = live
				live -= e.exit[i]
			}
			copy(exits, e.exit[:n])
		}
		res.InstrCounts, res.TakenExits = counts, exits
	}
	res.ICacheStats, res.DCacheStats = nil, nil
	if e.icache != nil {
		st := e.icache.Stats()
		res.ICacheStats = &st
	}
	if e.dcache != nil {
		st := e.dcache.Stats()
		res.DCacheStats = &st
	}
}
