package sim

// White-box tests for the superblock trace replay path: the differential
// suite already proves replayed runs are bit-identical to the reference
// engine; these prove the replay actually fires (so that identity is not
// vacuous) and that trace construction covers the cases it should.

import (
	"testing"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

func TestBuildSchedsTightLoop(t *testing.T) {
	p := tightLoop(600)
	cfg := machine.Base()
	code, err := Predecode(p, cfg)
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}
	if code.scheds == nil {
		t.Fatal("no trace schedules built for the tight loop on the base machine")
	}
	// The loop body leader (instruction 2: first instruction after the two
	// lis) must carry a trace whose first step is the loop body ending in
	// the conditional back-edge at pc 6.
	sp := code.scheds[2]
	if sp == nil {
		t.Fatal("loop body leader has no trace")
	}
	if len(sp.steps) == 0 || sp.steps[0].kind != stepCond || sp.steps[0].hi != 6 {
		t.Fatalf("first trace step = %+v, want cond-branch step ending at pc 6", sp.steps[0])
	}
	ex := &sp.exits[sp.steps[0].exit]
	if ex.n != 5 || ex.target != 2 || !ex.taken {
		t.Errorf("back-edge exit n/target/taken = %d/%d/%v, want 5/2/true", ex.n, ex.target, ex.taken)
	}
	// On the base machine every write in the loop body completes before the
	// taken branch's barrier, so the back-edge must be proven stable (the
	// engine may skip the re-entry register check).
	if !ex.stable {
		t.Error("loop back-edge exit not marked stable on the base machine")
	}
	// The final exit is the fallthrough continuation past the branch.
	last := &sp.exits[len(sp.exits)-1]
	if last.at != -1 || last.taken {
		t.Errorf("final exit = %+v, want untaken fallthrough", last)
	}
	if code.Superblocks() == 0 {
		t.Error("Superblocks() = 0 with traces attached")
	}
}

func TestReplayFires(t *testing.T) {
	p := tightLoop(600)
	for _, cfg := range []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(4),
		machine.Superpipelined(4),
	} {
		code, err := Predecode(p, cfg)
		if err != nil {
			t.Fatalf("%s: predecode: %v", cfg.Name, err)
		}
		plain, err := Run(p, Options{Machine: cfg})
		if err != nil {
			t.Fatalf("%s: plain run: %v", cfg.Name, err)
		}

		e := NewEngine()
		var res Result
		if err := e.RunInto(p, Options{Machine: cfg, Code: code}, &res); err != nil {
			t.Fatalf("%s: replay run: %v", cfg.Name, err)
		}
		if e.replays == 0 {
			t.Errorf("%s: replay never fired on the tight loop", cfg.Name)
		}
		if res.MinorCycles != plain.MinorCycles || res.Stalls != plain.Stalls ||
			res.IssueGroups != plain.IssueGroups || res.Instructions != plain.Instructions {
			t.Errorf("%s: replayed result diverged: %+v vs %+v", cfg.Name, res, plain)
		}
	}
}

// TestReplaySkippedWhenDirty pins the precondition: when a register the
// trace touches is still in flight past the barrier, the replay must not
// fire for that entry (the per-instruction path handles it), and the result
// must still match. On CRAY-1 a 7-cycle multiply written just before the
// loop branch and read at the loop top is still in flight at every taken
// re-entry, so the trace exists but can never fire.
func TestReplaySkippedWhenDirty(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 50)
	b.Li(isa.R(13), 1)
	b.Label("loop")
	b.Imm(isa.OpAddi, isa.R(12), isa.R(13), 1)
	b.Op(isa.OpXor, isa.R(14), isa.R(12), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Op(isa.OpMul, isa.R(13), isa.R(12), isa.R(12))
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(13))
	b.Halt()
	p := b.MustFinish()

	cfg := machine.CRAY1()
	code, err := Predecode(p, cfg)
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}
	if code.scheds == nil || code.scheds[2] == nil {
		t.Fatal("loop body should carry a trace (CRAY-1 units are conflict-free)")
	}
	plain, err := Run(p, Options{Machine: cfg})
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	e := NewEngine()
	var res Result
	if err := e.RunInto(p, Options{Machine: cfg, Code: code}, &res); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if e.replays != 0 {
		t.Errorf("replay fired %d times despite the in-flight multiply", e.replays)
	}
	if res.MinorCycles != plain.MinorCycles || res.Stalls != plain.Stalls {
		t.Errorf("result diverged: %+v vs %+v", res, plain)
	}
}

func TestNoSchedsOnConflictedMachine(t *testing.T) {
	p := tightLoop(600)
	code, err := Predecode(p, machine.SuperscalarWithConflicts(4))
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}
	if code.scheds != nil {
		for i, sp := range code.scheds {
			if sp != nil {
				t.Errorf("unexpected trace at pc %d on a conflicted machine", i)
			}
		}
	}
	if code.Superblocks() != 0 {
		t.Errorf("Superblocks() = %d on a conflicted machine", code.Superblocks())
	}
}
