package sim

// Directed tests for superblock side exits: each program forces a guarded
// trace to leave through a specific door — a taken conditional mid-trace, a
// fallthrough at a stitched jump seam, a loop back-edge — and each run is
// cross-checked against the reference (seed) engine for identical cycle
// counts and dynamic class mixes. The differential suite covers these paths
// statistically; these pin each exit shape by construction.

import (
	"testing"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// sbMachines are the trace-qualifying machines the directed tests sweep.
func sbMachines() []*machine.Config {
	return []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(2),
		machine.IdealSuperscalar(8),
		machine.Superpipelined(4),
	}
}

// checkAgainstReference runs p on every sbMachine through the trace-replay
// engine (shared Code) and the reference engine, requiring identical timing
// and class mixes, and at least minReplays trace replays so the comparison
// is not vacuous.
func checkAgainstReference(t *testing.T, p *isa.Program, minReplays int64) {
	t.Helper()
	for _, cfg := range sbMachines() {
		code, err := Predecode(p, cfg)
		if err != nil {
			t.Fatalf("%s: predecode: %v", cfg.Name, err)
		}
		want, err := refRun(p, Options{Machine: cfg})
		if err != nil {
			t.Fatalf("%s: reference run: %v", cfg.Name, err)
		}
		e := NewEngine()
		var got Result
		if err := e.RunInto(p, Options{Machine: cfg, Code: code}, &got); err != nil {
			t.Fatalf("%s: replay run: %v", cfg.Name, err)
		}
		if e.replays < minReplays {
			t.Errorf("%s: only %d trace replays, want >= %d", cfg.Name, e.replays, minReplays)
		}
		if got.MinorCycles != want.MinorCycles || got.IssueGroups != want.IssueGroups ||
			got.Instructions != want.Instructions || got.Stalls != want.Stalls {
			t.Errorf("%s: timing diverged:\n got %+v\nwant %+v", cfg.Name, got, want)
		}
		if got.ClassCounts != want.ClassCounts {
			t.Errorf("%s: class counts diverged:\n got %v\nwant %v", cfg.Name, got.ClassCounts, want.ClassCounts)
		}
		if len(got.Output) != len(want.Output) {
			t.Errorf("%s: output length diverged: %d vs %d", cfg.Name, len(got.Output), len(want.Output))
		}
	}
}

// TestSuperblockSideExitTaken drives a trace out through a conditional
// branch in its middle: the inner loop's body holds an early-out branch
// that fires on a data condition partway through the iterations, so the
// same trace leaves both through the side exit (early-out taken) and past
// it (fallthrough into the rest of the body) across the run.
func TestSuperblockSideExitTaken(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 400) // countdown
	b.Li(isa.R(11), 0)   // accumulator
	b.Li(isa.R(12), 37)  // early-out threshold
	b.Label("loop")
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 3)
	b.Op(isa.OpXor, isa.R(13), isa.R(11), isa.R(10))
	b.Branch(isa.OpBlt, isa.R(10), isa.R(12), "skip") // mid-trace side exit
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 1)
	b.Op(isa.OpAnd, isa.R(13), isa.R(13), isa.R(11))
	b.Label("skip")
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(11))
	b.Halt()
	checkAgainstReference(t, b.MustFinish(), 10)
}

// TestSuperblockJumpSeamFallthrough stitches a trace across an
// unconditional jump: the loop body ends in a j back to a test block whose
// branch continues the loop, so the superblock crosses the seam and the
// final iteration leaves through the fallthrough exit at the seam's far
// side.
func TestSuperblockJumpSeamFallthrough(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 300)
	b.Li(isa.R(11), 1)
	b.Jump("test")
	b.Label("body")
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), 2)
	b.Op(isa.OpXor, isa.R(12), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Jump("test") // jump seam: trace stitches through to the test block
	b.Label("test")
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "body")
	b.Print(isa.R(12))
	b.Halt()
	p := b.MustFinish()

	// The body leader's trace must genuinely cross the jump seam: more than
	// one block segment, and an exit that books the in-trace jump's counter
	// bumps.
	code, err := Predecode(p, machine.Base())
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}
	stitched := false
	for _, tr := range code.scheds {
		if tr != nil && tr.blocks > 1 {
			stitched = true
		}
	}
	if !stitched {
		t.Error("no trace stitched across the jump seam")
	}
	checkAgainstReference(t, p, 10)
}

// TestSuperblockLoopBackEdge is the canonical hot loop: a straight-line
// body closed by a conditional back-edge to its own leader, replayed as a
// stable trace (re-entry with no register check) until the final iteration
// falls through.
func TestSuperblockLoopBackEdge(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 5000)
	b.Li(isa.R(11), 0)
	b.Label("loop")
	b.Op(isa.OpAdd, isa.R(11), isa.R(11), isa.R(10))
	b.Imm(isa.OpAddi, isa.R(12), isa.R(11), 7)
	b.Op(isa.OpXor, isa.R(13), isa.R(12), isa.R(11))
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Print(isa.R(13))
	b.Halt()
	checkAgainstReference(t, b.MustFinish(), 1000)
}

// TestSuperblockNestedExits mixes all three shapes: an outer loop whose
// body contains an inner stable loop, an early-out branch, and a jump seam,
// so one run exercises back-edge spins, mid-trace exits and seam
// fallthroughs against the reference engine at once.
func TestSuperblockNestedExits(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 60) // outer counter
	b.Li(isa.R(14), 0)
	b.Label("outer")
	b.Li(isa.R(11), 25) // inner counter
	b.Label("inner")
	b.Imm(isa.OpAddi, isa.R(14), isa.R(14), 1)
	b.Op(isa.OpXor, isa.R(12), isa.R(14), isa.R(11))
	b.Imm(isa.OpAddi, isa.R(11), isa.R(11), -1)
	b.Branch(isa.OpBgt, isa.R(11), isa.RZero, "inner")
	b.Branch(isa.OpBlt, isa.R(14), isa.R(10), "skip") // early-out
	b.Imm(isa.OpAddi, isa.R(14), isa.R(14), 2)
	b.Jump("next") // seam
	b.Label("skip")
	b.Imm(isa.OpAddi, isa.R(14), isa.R(14), 1)
	b.Label("next")
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "outer")
	b.Print(isa.R(14))
	b.Halt()
	checkAgainstReference(t, b.MustFinish(), 10)
}
