package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// endlessLoop builds a program that runs effectively forever, for
// cancellation tests (the default instruction limit is raised per test).
func endlessLoop() *isa.Program {
	return tightLoop(1 << 40)
}

func TestRunCtxCancelStopsFastPath(t *testing.T) {
	p := endlessLoop()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunCtx(ctx, p, Options{Machine: machine.Base()})
	if res != nil || err == nil {
		t.Fatalf("cancelled run returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; the timing loop is not polling", d)
	}
}

func TestRunCtxDeadlineStopsInstrumentedPath(t *testing.T) {
	p := endlessLoop()
	cfg := machine.Base()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	// An OnIssue hook selects the instrumented loop.
	_, err := RunCtx(ctx, p, Options{
		Machine: cfg,
		OnIssue: func(int, *isa.Instr, int64, int64) {},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %v to take effect", d)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, tightLoop(600), Options{Machine: machine.Base()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v", err)
	}
}

// TestRunCtxCancelCause: a sweep-style cancellation with a recorded cause
// must surface the cause, not the bare context error — measureMany's
// distinct-error reporting depends on receiving the cause by identity.
func TestRunCtxCancelCause(t *testing.T) {
	boom := errors.New("sibling failed")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel(boom)
	}()
	_, err := RunCtx(ctx, endlessLoop(), Options{Machine: machine.Base()})
	if err != boom {
		t.Fatalf("want the cancellation cause by identity, got %v", err)
	}
}

// TestRunCtxLiveContextCompletes: a cancellable-but-live context must not
// change results, and the instruction limit must still fire through the
// shared check.
func TestRunCtxLiveContextCompletes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := tightLoop(600_000)
	want, err := Run(p, Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCtx(ctx, p, Options{Machine: machine.Base()})
	if err != nil {
		t.Fatal(err)
	}
	if got.Instructions != want.Instructions || got.MinorCycles != want.MinorCycles {
		t.Fatalf("cancellable run diverged: %v vs %v", got, want)
	}

	// Instruction limit below the poll interval and above it.
	for _, limit := range []int64{100, cancelCheckInterval + 100} {
		_, err = RunCtx(ctx, endlessLoop(), Options{Machine: machine.Base(), MaxInstructions: limit})
		if err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("limit %d: want instruction-limit error, got %v", limit, err)
		}
	}
}
