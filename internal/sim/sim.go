// Package sim is the instruction-level simulator of the paper's evaluation
// environment (§3): it executes a compiled program under a machine
// description, modeling in-order issue in minor cycles, operation latencies
// through a register scoreboard, functional-unit issue latencies and
// multiplicities (class conflicts), an issue-width limit, issue-group breaks
// at taken branches, and optionally instruction and data caches.
//
// Semantics and timing are computed together: instructions execute in
// program order at their issue time, so results (and the program's printed
// output) are identical on every machine configuration; only the cycle
// counts differ. Runtime memory dependencies are not timing-modeled — the
// compile-time scheduler preserves memory order where it cannot
// disambiguate, matching the paper's methodology, and program-order
// execution keeps values exact regardless.
//
// The simulator is throughput-oriented, because the paper's whole evaluation
// is "compile once per configuration, simulate billions of instructions":
// at Reset the program is predecoded against the machine description into a
// flat array of per-instruction facts (operand flags, resolved functional
// unit, base latency), and the inner loop is split once into a fast path
// (no caches, no callbacks) and an instrumented path. Engines are reusable
// and pooled, so repeated runs recycle the memory arena instead of
// allocating and zeroing 16 MB per simulation. See Engine.
package sim

import (
	"context"
	"sync"

	"ilp/internal/isa"
	"ilp/internal/machine"
)

// Options configures a simulation run.
type Options struct {
	// Machine is the machine description. Required.
	Machine *machine.Config
	// MemWords is the memory size in 8-byte words. Defaults to
	// DefaultMemWords.
	MemWords int
	// MaxInstructions aborts runaway programs. Defaults to
	// DefaultMaxInstructions.
	MaxInstructions int64
	// Code, if set, is a predecoded translation of the program (see
	// Predecode) to adopt instead of predecoding at Reset. It must have
	// been built from this exact program and from a machine with the same
	// schedule fingerprint as Machine (cache geometry and the machine
	// name may differ). A Code is immutable, so one artifact can back any
	// number of concurrent runs — the experiments runner predecodes once
	// per (program, schedule) pair and shares it across sweep workers.
	Code *Code
	// OnIssue, if set, is called for every instruction with its index in
	// the program, its issue minor cycle and its completion minor cycle.
	// Used by the pipeline-diagram renderer and by tests. Setting it
	// selects the instrumented engine path.
	OnIssue func(idx int, in *isa.Instr, issue, complete int64)
	// OnTrace, if set, receives the dynamic instruction trace with the
	// resolved data-memory address (-1 for non-memory instructions).
	// Used by the trace-limit analysis (package trace). Setting it
	// selects the instrumented engine path.
	OnTrace func(idx int, in *isa.Instr, addr int64)
	// CountInstrs, if set, reports per-instruction dynamic execution and
	// taken-exit counts in Result.InstrCounts / Result.TakenExits — the
	// inputs the static timing oracle (internal/statictime,
	// verify.CheckTiming) needs to bound a run's cycle count. On the fast
	// path the counts are folded from the block entry/exit counters the
	// engine already keeps, so the run itself is unaffected.
	CountInstrs bool
}

// Defaults for Options.
const (
	DefaultMemWords        = 1 << 21 // 16 MB
	DefaultMaxInstructions = 1 << 33
)

// cancelCheckInterval is how many dynamic instructions the timing loops run
// between context polls. The poll is folded into the existing
// instruction-limit check, so a context.Background() run (Done() == nil)
// pays literally nothing and a cancellable run pays one channel select per
// interval — sub-millisecond responsiveness at the engine's Minstr/s rates.
const cancelCheckInterval = 1 << 16

// ctxErr extracts the error a cancelled run should surface: the
// cancellation cause when one was recorded (e.g. the sibling failure that
// stopped a sweep), the plain context error otherwise.
func ctxErr(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// enginePool recycles engines (and their memory arenas) across Run calls.
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// Run simulates the program to completion and returns the result. It is the
// thin compatibility wrapper over Engine: each call borrows a pooled engine,
// so successive runs reuse the memory arena and predecode buffers instead of
// allocating per simulation. Safe for concurrent use.
func Run(p *isa.Program, opts Options) (*Result, error) {
	return RunCtx(context.Background(), p, opts)
}

// RunCtx is Run with cancellation: the timing loop polls ctx every
// cancelCheckInterval dynamic instructions and abandons the run with the
// context's cause error once ctx is done. Safe for concurrent use.
func RunCtx(ctx context.Context, p *isa.Program, opts Options) (*Result, error) {
	e := enginePool.Get().(*Engine)
	res := new(Result)
	err := e.RunIntoCtx(ctx, p, opts, res)
	// Drop references to caller data before pooling so a cached engine
	// does not pin a shared predecode alive. The engine's own translation
	// cache (decBuf/ownProg/ownScheds) is deliberately kept: it pins the
	// last Code-less (program, machine) pair so repeat runs skip predecode
	// and trace analysis — the dominant pooled-engine pattern.
	e.cfg, e.prog, e.dec, e.scheds = nil, nil, nil, nil
	e.opts = Options{}
	enginePool.Put(e)
	if err != nil {
		return nil, err
	}
	return res, nil
}
