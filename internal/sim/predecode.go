package sim

import (
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// dflags are per-instruction facts the inner loop would otherwise re-derive
// from isa.OpInfo on every dynamic instruction.
type dflags uint8

const (
	// fSrc1 and fSrc2 mark register sources read through the scoreboard.
	fSrc1 dflags = 1 << iota
	fSrc2
	// fDst marks a scoreboarded destination (HasDst, not r0).
	fDst
	// fMem marks instructions that compute a data-memory address
	// (loads and real stores; prints ship through the output port).
	fMem
	// fLoad and fStore mirror OpInfo.Load / OpInfo.Store.
	fLoad
	fStore
	// fPrint marks printi/printf, whose data-cache access is the
	// uncached output port.
	fPrint
)

// decoded is one predecoded instruction: everything the timing loop needs,
// flattened so the hot path touches a single cache line per instruction and
// never calls Op.Info(), Op.Class(), or the class→unit map. The layout is
// built once per Reset from the program and the machine description, in the
// spirit of Shade-style predecoded translation caching.
type decoded struct {
	op    isa.Opcode
	class uint8
	flags dflags
	dst   isa.Reg // raw destination (may be r0; fDst already excludes it)
	src1  isa.Reg
	src2  isa.Reg

	unitOff  int32 // offset of the unit's copies in engine.unitFree
	unitLen  int32 // number of copies (multiplicity)
	target   int32 // resolved branch/jump target
	issueLat int64 // unit issue latency, minor cycles
	lat      int64 // base operation latency, minor cycles
	imm      int64
	fimm     float64
	// execs counts dynamic executions of this instruction. Bumping it
	// here — on the cache line the loop just loaded — replaces a per-
	// instruction store into a separate class-count table; the result's
	// ClassCounts is folded from these at the end of the run. It also
	// pads decoded to exactly 64 bytes, one cache line per instruction.
	execs int64
}

// opOutOfRange is the opcode of the sentinel decoded entry appended after
// the last real instruction. A validated program can only leave [0, n) by
// falling off the end (pc == n, which lands on the sentinel and reports the
// out-of-range error from inside the fast loop's switch) or through jr
// (whose computed target is range-checked in its case) — so the fast loop
// needs no per-instruction pc bounds check. The value extends the opcode
// jump table by one slot, keeping it dense.
const opOutOfRange = isa.Opcode(isa.NumOpcodes)

// predecode translates the program against the machine description into
// e.dec (plus the trailing sentinel), reusing the previous run's backing
// array when possible.
func (e *Engine) predecode(p *isa.Program, cfg *machine.Config) {
	// Per-class unit facts, derived once (the seed engine derived the
	// class→unit mapping per engine but still chased OpInfo per dynamic
	// instruction).
	var classOff, classLen [isa.NumClasses]int32
	var classIssueLat [isa.NumClasses]int64
	off := int32(0)
	for _, u := range cfg.Units {
		for _, cl := range u.Classes {
			classOff[cl] = off
			classLen[cl] = int32(u.Multiplicity)
			classIssueLat[cl] = int64(u.IssueLatency)
		}
		off += int32(u.Multiplicity)
	}

	n := len(p.Instrs)
	if cap(e.dec) >= n+1 {
		e.dec = e.dec[:n+1]
	} else {
		e.dec = make([]decoded, n+1)
	}
	// The sentinel issues harmlessly (no operands, no memory, unit 0) and
	// then errors from the semantic switch; the run is abandoned anyway.
	e.dec[n] = decoded{op: opOutOfRange, unitLen: 1, issueLat: 1, lat: 1}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		info := in.Op.Info()
		cl := in.Op.Class()
		var f dflags
		if info.NSrc >= 1 && in.Src1 != isa.NoReg {
			f |= fSrc1
		}
		if info.NSrc >= 2 && in.Src2 != isa.NoReg {
			f |= fSrc2
		}
		if info.HasDst && in.Dst != isa.NoReg && in.Dst != isa.RZero {
			f |= fDst
		}
		// Unused source operands are remapped to r0 so the inner loop can
		// probe the scoreboard unconditionally: fDst never covers r0, so
		// ready[r0] is always zero and can never look busy. Instructions
		// without fSrc1/fSrc2 never read the operand semantically either.
		s1, s2 := in.Src1, in.Src2
		if f&fSrc1 == 0 {
			s1 = isa.RZero
		}
		if f&fSrc2 == 0 {
			s2 = isa.RZero
		}
		isPrint := in.Op == isa.OpPrinti || in.Op == isa.OpPrintf
		if isPrint {
			f |= fPrint
		}
		if info.Load {
			f |= fLoad
		}
		if info.Store {
			f |= fStore
		}
		if info.Load || (info.Store && !isPrint) {
			f |= fMem
		}
		e.dec[i] = decoded{
			op:       in.Op,
			class:    uint8(cl),
			flags:    f,
			dst:      in.Dst,
			src1:     s1,
			src2:     s2,
			unitOff:  classOff[cl],
			unitLen:  classLen[cl],
			target:   int32(in.Target),
			issueLat: classIssueLat[cl],
			lat:      int64(cfg.Latency[cl]),
			imm:      in.Imm,
			fimm:     in.FImm,
		}
	}
}
