package sim

import (
	"fmt"

	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/statictime"
)

// dflags are per-instruction facts the inner loop would otherwise re-derive
// from isa.OpInfo on every dynamic instruction.
type dflags uint8

const (
	// fSrc1 and fSrc2 mark register sources read through the scoreboard.
	fSrc1 dflags = 1 << iota
	fSrc2
	// fDst marks a scoreboarded destination (HasDst, not r0).
	fDst
	// fMem marks instructions that compute a data-memory address
	// (loads and real stores; prints ship through the output port).
	fMem
	// fLoad and fStore mirror OpInfo.Load / OpInfo.Store.
	fLoad
	fStore
	// fPrint marks printi/printf, whose data-cache access is the
	// uncached output port.
	fPrint
	// fUnit marks instructions whose functional unit can actually bind:
	// the lane scan and the issue-latency booking only matter when the
	// unit's multiplicity is below the machine's issue width or its issue
	// latency exceeds one. Otherwise at most width-1 other instructions
	// can have booked a lane in the current minor cycle and every older
	// booking is already free, so a free lane always exists at the issue
	// slot — the scan can neither stall nor bind, and the fast path skips
	// it entirely. Ideal machines (the sweep's hot spot) skip every unit.
	fUnit
)

// decoded is one predecoded instruction: everything the timing loop needs,
// flattened so the hot path touches at most one cache line per instruction
// and never calls Op.Info(), Op.Class(), or the class→unit map, in the
// spirit of Shade-style predecoded translation caching. Entries are 56
// bytes — purely static facts, no per-run state — so a predecoded program
// (see Code) is immutable and can be shared read-only across engines.
type decoded struct {
	op  isa.Opcode // architectural opcode (instrumented path, errors)
	fop isa.Opcode // fast-path dispatch opcode: op, or a fused superinstruction
	// class is the instruction's isa.Class; dynamic per-class counts are
	// kept per-engine (folded from block entry/exit counters on the fast
	// path), never here.
	class uint8
	flags dflags
	dst   isa.Reg // raw destination (may be r0; fDst already excludes it)
	src1  isa.Reg
	src2  isa.Reg

	unitOff  int32 // offset of the unit's copies in engine.unitFree
	unitLen  int32 // number of copies (multiplicity)
	target   int32 // resolved branch/jump target
	issueLat int64 // unit issue latency, minor cycles
	lat      int64 // base operation latency, minor cycles
	imm      int64
	fimm     float64
}

// opOutOfRange is the opcode of the sentinel decoded entry appended after
// the last real instruction. A validated program can only leave [0, n) by
// falling off the end (pc == n, which lands on the sentinel and reports the
// out-of-range error from inside the fast loop's switch) or through jr
// (whose computed target is range-checked in its case) — so the fast loop
// needs no per-instruction pc bounds check. The value extends the opcode
// jump table by one slot, keeping it dense.
const opOutOfRange = isa.Opcode(isa.NumOpcodes)

// opFusedAluBr is the fast-path dispatch opcode of a fused superinstruction:
// an integer ALU op immediately followed by a conditional branch (the
// compare+branch and induction-increment+branch idioms that close almost
// every loop). The head entry dispatches the pair as one case; the branch's
// own entry at i+1 stays intact, so jumps that land on the branch directly
// still execute it standalone, and the instrumented path (which dispatches
// on the architectural op) is unaffected.
const opFusedAluBr = isa.Opcode(isa.NumOpcodes + 1)

// opFusedAluAlu is the fast-path dispatch opcode of a fused pair of integer
// ALU instructions: straight-line code runs two instructions per dispatch,
// halving interpreter overhead (the indirect switch branch and the loop
// epilogue) on the sequential bodies between branches. As with
// opFusedAluBr, the second entry stays intact for direct jumps.
const opFusedAluAlu = isa.Opcode(isa.NumOpcodes + 2)

// Code is an immutable predecoded program: the translation of one
// isa.Program against one machine schedule. It carries no per-run state, so
// a single Code may back any number of concurrent engines — the experiments
// runner predecodes once per (program, machine-schedule) pair and shares the
// artifact read-only across all sweep workers.
type Code struct {
	prog    *isa.Program
	cfg     *machine.Config
	schedFP string
	dec     []decoded
	// scheds are the static-timing superblock trace schedules
	// (internal/statictime), indexed by trace-root pc; nil when the machine
	// qualifies no trace. Like dec they are immutable static facts, valid
	// for any machine the schedule fingerprint accepts.
	scheds []*traceSched
}

// Superblocks returns the number of superblock traces attached to the Code:
// multi-block straight-line regions whose exact issue/stall schedules were
// proven statically, replayed by the engine in O(1) per dispatch.
func (c *Code) Superblocks() int {
	n := 0
	for _, t := range c.scheds {
		if t != nil {
			n++
		}
	}
	return n
}

// CondTraces returns the number of specialized traces attached to the Code:
// traces that continue past a profiled likely-taken conditional branch
// behind a mispath guard (see Specialize).
func (c *Code) CondTraces() int {
	n := 0
	for _, t := range c.scheds {
		if t == nil {
			continue
		}
		for _, st := range t.steps {
			if st.kind == stepCondTaken {
				n++
				break
			}
		}
	}
	return n
}

// Specialize returns a Code sharing this one's predecoded instructions but
// with trace schedules rebuilt under prof: conditional branches the profile
// marks likely-taken continue their traces along the taken edge, guarded by
// a mispath side exit that falls back to the block interpreter. Timing is
// bit-identical by construction — the profile only chooses which traces
// exist. The receiver is not modified; like any Code, the result is
// immutable and shareable.
func (c *Code) Specialize(prof *statictime.Profile) *Code {
	out := *c
	out.scheds = buildSchedsProf(c.prog, c.cfg, c.dec, prof)
	return &out
}

// Predecode translates a validated program against a machine description
// into an immutable, shareable Code. Pass it via Options.Code to any run
// whose machine has the same schedule fingerprint (cache geometry and the
// machine name may differ — predecode depends only on the schedule).
func Predecode(p *isa.Program, cfg *machine.Config) (*Code, error) {
	if cfg == nil {
		return nil, fmt.Errorf("sim: no machine description")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	dec := predecodeInto(nil, p, cfg)
	return &Code{
		prog:    p,
		cfg:     cfg,
		schedFP: cfg.ScheduleFingerprint(),
		dec:     dec,
		scheds:  buildScheds(p, cfg, dec),
	}, nil
}

// Instructions returns the number of (real) instructions predecoded.
func (c *Code) Instructions() int { return len(c.dec) - 1 }

// matches reports whether the Code can stand in for predecoding p against
// cfg: it must come from the same program, and from the same machine
// schedule (pointer-identical config, or equal schedule fingerprint).
func (c *Code) matches(p *isa.Program, cfg *machine.Config) error {
	if c.prog == nil {
		return fmt.Errorf("sim: Options.Code is empty (use Predecode)")
	}
	if c.prog != p {
		return fmt.Errorf("sim: Options.Code was predecoded from a different program")
	}
	if c.cfg != cfg && c.schedFP != cfg.ScheduleFingerprint() {
		return fmt.Errorf("sim: Options.Code was predecoded for machine %q, whose schedule differs from %q", c.cfg.Name, cfg.Name)
	}
	return nil
}

// fusibleALU reports whether op qualifies as the head of a fused
// ALU+branch pair: a single-cycle-semantics integer op with no side effects
// beyond its destination register (no memory, no traps, no control).
// The set must match the semantic sub-switch in runFast's opFusedAluBr case.
func fusibleALU(op isa.Opcode) bool {
	switch op {
	case isa.OpAdd, isa.OpAddi, isa.OpSub,
		isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne,
		isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpSlli, isa.OpSrli, isa.OpSrai,
		isa.OpLi, isa.OpMov:
		return true
	}
	return false
}

// condBranch reports whether op is a conditional branch.
func condBranch(op isa.Opcode) bool {
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle, isa.OpBgt:
		return true
	}
	return false
}

// predecodeInto translates the program against the machine description into
// dec (plus the trailing sentinel), reusing dec's backing array when it is
// large enough. The result holds only static facts; engines never write it.
func predecodeInto(dec []decoded, p *isa.Program, cfg *machine.Config) []decoded {
	// Per-class unit facts, derived once (the seed engine derived the
	// class→unit mapping per engine but still chased OpInfo per dynamic
	// instruction).
	var classOff, classLen [isa.NumClasses]int32
	var classIssueLat [isa.NumClasses]int64
	var classBinds [isa.NumClasses]bool
	off := int32(0)
	for _, u := range cfg.Units {
		binds := u.Multiplicity < cfg.IssueWidth || u.IssueLatency != 1
		for _, cl := range u.Classes {
			classOff[cl] = off
			classLen[cl] = int32(u.Multiplicity)
			classIssueLat[cl] = int64(u.IssueLatency)
			classBinds[cl] = binds
		}
		off += int32(u.Multiplicity)
	}

	n := len(p.Instrs)
	if cap(dec) >= n+1 {
		dec = dec[:n+1]
	} else {
		dec = make([]decoded, n+1)
	}
	// The sentinel issues harmlessly (no operands, no memory, no unit) and
	// then errors from the semantic switch; the run is abandoned anyway.
	dec[n] = decoded{op: opOutOfRange, fop: opOutOfRange, unitLen: 1, issueLat: 1, lat: 1}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		info := in.Op.Info()
		cl := in.Op.Class()
		var f dflags
		if info.NSrc >= 1 && in.Src1 != isa.NoReg {
			f |= fSrc1
		}
		if info.NSrc >= 2 && in.Src2 != isa.NoReg {
			f |= fSrc2
		}
		if info.HasDst && in.Dst != isa.NoReg && in.Dst != isa.RZero {
			f |= fDst
		}
		// Unused source operands are remapped to r0 so the inner loop can
		// probe the scoreboard unconditionally: fDst never covers r0, so
		// ready[r0] is always zero and can never look busy. Instructions
		// without fSrc1/fSrc2 never read the operand semantically either.
		s1, s2 := in.Src1, in.Src2
		if f&fSrc1 == 0 {
			s1 = isa.RZero
		}
		if f&fSrc2 == 0 {
			s2 = isa.RZero
		}
		isPrint := in.Op == isa.OpPrinti || in.Op == isa.OpPrintf
		if isPrint {
			f |= fPrint
		}
		if info.Load {
			f |= fLoad
		}
		if info.Store {
			f |= fStore
		}
		if info.Load || (info.Store && !isPrint) {
			f |= fMem
		}
		if classBinds[cl] {
			f |= fUnit
		}
		dec[i] = decoded{
			op:       in.Op,
			fop:      in.Op,
			class:    uint8(cl),
			flags:    f,
			dst:      in.Dst,
			src1:     s1,
			src2:     s2,
			unitOff:  classOff[cl],
			unitLen:  classLen[cl],
			target:   int32(in.Target),
			issueLat: classIssueLat[cl],
			lat:      int64(cfg.Latency[cl]),
			imm:      in.Imm,
			fimm:     in.FImm,
		}
	}

	// Fuse hot pairs. Only instructions whose units cannot bind qualify:
	// the fused cases inline both instructions' issue steps and elide the
	// lane scan for both. The second entry of a pair is left intact so
	// direct jumps to it still work. ALU+branch pairs are chosen first
	// (they also absorb the block-boundary epilogue); remaining adjacent
	// ALU pairs are then paired greedily without overlap.
	fused := make([]bool, n+1)
	for i := 0; i+1 < n; i++ {
		a, b := &dec[i], &dec[i+1]
		if fusibleALU(a.op) && a.flags&fDst != 0 && a.flags&fUnit == 0 &&
			condBranch(b.op) && b.flags&fUnit == 0 {
			a.fop = opFusedAluBr
			fused[i], fused[i+1] = true, true
		}
	}
	for i := 0; i+1 < n; i++ {
		if fused[i] || fused[i+1] {
			continue
		}
		a, b := &dec[i], &dec[i+1]
		if fusibleALU(a.op) && a.flags&fDst != 0 && a.flags&fUnit == 0 &&
			fusibleALU(b.op) && b.flags&fDst != 0 && b.flags&fUnit == 0 {
			a.fop = opFusedAluAlu
			fused[i], fused[i+1] = true, true
		}
	}
	return dec
}
