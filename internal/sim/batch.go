package sim

import (
	"context"

	"ilp/internal/isa"
)

// batchQuantum is how many dynamic instructions a batched cell advances per
// turn of the interleave loop. It matches cancelCheckInterval so a slice
// boundary reuses the poll the fast path already performs — a cell pays no
// extra compare for being batched.
const batchQuantum = cancelCheckInterval

// BatchRun is one simulation cell of a Batch: a program and its run options
// (typically one machine × benchmark pair of a sweep, with Opts.Code set to
// the shared predecode).
type BatchRun struct {
	Prog *isa.Program
	Opts Options
}

// Batch advances N independent simulation cells through one interleaved
// loop on a single goroutine. The per-cell engines live in one dense slab
// (a value slice — hot scalar state inline, no per-cell goroutine, no
// per-cycle interface calls); each turn a cell runs a batchQuantum slice of
// its fast path, so N cache-resident cells share the core without context
// switches, and a finished cell drops out while the rest keep going.
//
// Timing is bit-identical to running each cell alone: runFast's stopAt
// mechanism writes all state back at a slice boundary and resumes exactly
// where it stopped, and cells share nothing but immutable predecoded Code.
//
// A Batch is not safe for concurrent use; use one per goroutine. Engines
// (and their memory arenas) are reused across Run calls.
type Batch struct {
	engines []Engine
}

// NewBatch returns an empty batch; engine slabs grow on first Run.
func NewBatch() *Batch { return &Batch{} }

// Run simulates every cell to completion and returns per-cell results and
// errors (res[i] is nil exactly when errs[i] is non-nil). Cells needing the
// instrumented path (caches or callbacks) cannot be sliced and run to
// completion on their first turn; fast-path cells interleave in
// batchQuantum slices. A done ctx abandons the remaining cells with the
// context's cause.
func (b *Batch) Run(ctx context.Context, runs []BatchRun) ([]*Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(runs)
	results := make([]*Result, n)
	errs := make([]error, n)
	for len(b.engines) < n {
		b.engines = append(b.engines, Engine{})
	}

	// Reset every cell, completing the unsliceable ones immediately.
	active := make([]int, 0, n)
	maxI := make([]int64, n)
	for i := range runs {
		r := &runs[i]
		if err := ctx.Err(); err != nil {
			errs[i] = ctxErr(ctx)
			continue
		}
		e := &b.engines[i]
		if err := e.Reset(r.Prog, r.Opts); err != nil {
			errs[i] = err
			continue
		}
		mi := r.Opts.MaxInstructions
		if mi == 0 {
			mi = DefaultMaxInstructions
		}
		maxI[i] = mi
		if e.icache != nil || e.dcache != nil || r.Opts.OnIssue != nil || r.Opts.OnTrace != nil {
			if err := e.runInstrumented(ctx, mi); err != nil {
				errs[i] = err
				continue
			}
			results[i] = new(Result)
			e.fillResult(results[i])
			continue
		}
		active = append(active, i)
	}

	// Interleave: round-robin one quantum per live cell until all halt.
	for len(active) > 0 {
		live := active[:0]
		for _, i := range active {
			e := &b.engines[i]
			if err := e.runFast(ctx, maxI[i], e.instrs+batchQuantum); err != nil {
				errs[i] = err
				continue
			}
			if e.halted {
				results[i] = new(Result)
				e.fillResult(results[i])
				continue
			}
			live = append(live, i)
		}
		active = live
	}
	return results, errs
}
