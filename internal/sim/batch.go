package sim

import (
	"context"
	"runtime"
	"sync"

	"ilp/internal/isa"
)

// batchQuantum is how many dynamic instructions a batched cell advances per
// turn of the interleave loop. It matches cancelCheckInterval so a slice
// boundary reuses the poll the fast path already performs — a cell pays no
// extra compare for being batched.
const batchQuantum = cancelCheckInterval

// BatchRun is one simulation cell of a Batch: a program and its run options
// (typically one machine × benchmark pair of a sweep, with Opts.Code set to
// the shared predecode).
type BatchRun struct {
	Prog *isa.Program
	Opts Options
}

// Batch advances N independent simulation cells through interleaved loops
// over a dense engine slab (a value slice — hot scalar state inline, no
// per-cell goroutine, no per-cycle interface calls). The slab is sharded
// across min(workers, N) goroutines, one contiguous sub-slab each: within a
// shard, each turn a cell runs a batchQuantum slice of its fast path, so
// cache-resident cells share the core without context switches, and a
// finished cell drops out while the rest keep going.
//
// Timing is bit-identical to running each cell alone, whatever the worker
// count: runFast's stopAt mechanism writes all state back at a slice
// boundary and resumes exactly where it stopped, cells share nothing but
// immutable predecoded Code, and every worker owns disjoint elements of the
// runs/engines/results/errors slices — no shared mutable state, and result
// order is the input order by construction. Per-cell error isolation and
// budget/cancellation semantics are those of the serial loop, applied
// per shard.
//
// A Batch is not safe for concurrent use; use one per caller at a time.
// Engines (and their memory arenas) are reused across Run calls.
type Batch struct {
	engines []Engine
	// workers caps the shard goroutines Run spawns; 0 means GOMAXPROCS.
	workers int
	// Diagnostics of the last Run (see Shards, Mispaths, Replays).
	shards   int
	mispaths int64
	replays  int64
}

// NewBatch returns an empty batch sharding across GOMAXPROCS workers;
// engine slabs grow on first Run.
func NewBatch() *Batch { return &Batch{} }

// NewBatchWorkers returns an empty batch sharding across at most workers
// goroutines per Run; workers ≤ 0 means GOMAXPROCS at Run time. Sharding
// never changes results — only how many cells advance concurrently.
func NewBatchWorkers(workers int) *Batch { return &Batch{workers: workers} }

// Shards returns the number of worker shards the last Run used.
func (b *Batch) Shards() int { return b.shards }

// Mispaths returns the specialized-trace guard exits taken across the last
// Run's completed cells (see Engine.mispaths).
func (b *Batch) Mispaths() int64 { return b.mispaths }

// Replays returns the superblock trace replays across the last Run's
// completed cells.
func (b *Batch) Replays() int64 { return b.replays }

// Run simulates every cell to completion and returns per-cell results and
// errors (res[i] is nil exactly when errs[i] is non-nil). Cells needing the
// instrumented path (caches or callbacks) cannot be sliced and run to
// completion on their first turn; fast-path cells interleave in
// batchQuantum slices. A done ctx abandons the remaining cells with the
// context's cause.
func (b *Batch) Run(ctx context.Context, runs []BatchRun) ([]*Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(runs)
	results := make([]*Result, n)
	errs := make([]error, n)
	for len(b.engines) < n {
		b.engines = append(b.engines, Engine{})
	}

	w := b.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	b.shards = w
	if w <= 1 {
		b.runShard(ctx, runs, results, errs, 0, n)
	} else {
		// One contiguous sub-slab per worker, sizes within one cell of
		// each other. The slab was grown above, so no worker can move it.
		var wg sync.WaitGroup
		for s := 0; s < w; s++ {
			lo, hi := n*s/w, n*(s+1)/w
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.runShard(ctx, runs, results, errs, lo, hi)
			}()
		}
		wg.Wait()
	}

	b.mispaths, b.replays = 0, 0
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			b.mispaths += b.engines[i].mispaths
			b.replays += b.engines[i].replays
		}
	}
	return results, errs
}

// runShard runs cells [lo, hi) to completion, writing only those elements
// of results and errs. It is the whole serial batch loop, applied to one
// worker's sub-slab.
func (b *Batch) runShard(ctx context.Context, runs []BatchRun, results []*Result, errs []error, lo, hi int) {
	// Reset every cell, completing the unsliceable ones immediately.
	active := make([]int, 0, hi-lo)
	maxI := make([]int64, hi)
	for i := lo; i < hi; i++ {
		r := &runs[i]
		if err := ctx.Err(); err != nil {
			errs[i] = ctxErr(ctx)
			continue
		}
		e := &b.engines[i]
		if err := e.Reset(r.Prog, r.Opts); err != nil {
			errs[i] = err
			continue
		}
		mi := r.Opts.MaxInstructions
		if mi == 0 {
			mi = DefaultMaxInstructions
		}
		maxI[i] = mi
		if e.icache != nil || e.dcache != nil || r.Opts.OnIssue != nil || r.Opts.OnTrace != nil {
			if err := e.runInstrumented(ctx, mi); err != nil {
				errs[i] = err
				continue
			}
			results[i] = new(Result)
			e.fillResult(results[i])
			continue
		}
		active = append(active, i)
	}

	// Interleave: round-robin one quantum per live cell until all halt.
	// The ctx poll lives here, not in runFast: a sliced run's quantum
	// boundary (stopAt) coincides with runFast's internal poll point and
	// yields before the select, so the interleave loop polls once per cell
	// turn — the same once-per-cancelCheckInterval cadence a whole run has.
	for len(active) > 0 {
		live := active[:0]
		for _, i := range active {
			if ctx.Err() != nil {
				errs[i] = ctxErr(ctx)
				continue
			}
			e := &b.engines[i]
			if err := e.runFast(ctx, maxI[i], e.instrs+batchQuantum); err != nil {
				errs[i] = err
				continue
			}
			if e.halted {
				results[i] = new(Result)
				e.fillResult(results[i])
				continue
			}
			live = append(live, i)
		}
		active = live
	}
}
