package sim

import (
	"fmt"
	"math"

	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/statictime"
)

// replayMinLen is the smallest trace worth replaying: below it the
// precondition scan and bulk writeback cost about as much as the
// per-instruction issue steps they replace.
const replayMinLen = 3

// Step kinds of a traceSched, mirroring statictime.TraceStepKind.
const (
	stepCond      = uint8(statictime.StepCond)
	stepJump      = uint8(statictime.StepJump)
	stepEnd       = uint8(statictime.StepEnd)
	stepCondTaken = uint8(statictime.StepCondTaken)
)

// uopEnd terminates a trace's micro-op stream: leave through exit aux (the
// final fallthrough). It extends the architectural opcode space the same way
// the predecoder's fused opcodes do.
const uopEnd = isa.Opcode(isa.NumOpcodes + 3)

// regSink is the scratch register index micro-ops write when the
// architectural destination is the hardwired zero: e.regs is 256 wide (only
// isa.NumRegs are architectural), so the store lands harmlessly and the
// executor needs no per-write r0 branch.
const regSink = isa.Reg(255)

// uop is one micro-op of a trace's flattened semantic stream: the whole
// multi-block trace — straight-line bodies, guarded side exits, stitched
// jump seams (which vanish entirely: their timing lives in the per-exit
// offsets, their counter bumps in traceExit.jumps) — executes as a single
// dense 16-byte-per-op loop with no step walking and no per-segment calls.
// Timing was proven statically; micro-ops only move values.
type uop struct {
	op  isa.Opcode // architectural opcode, or uopEnd
	dst isa.Reg    // destination (r0 remapped to regSink)
	s1  isa.Reg
	s2  isa.Reg
	// aux is the exit index for branch micro-ops and uopEnd, and the
	// original pc for micro-ops that can fault (div, rem, loads, stores,
	// cvtfi) so error messages match the per-instruction path exactly.
	aux int32
	// imm is the architectural immediate; for fli it holds the float
	// constant's bit pattern.
	imm int64
}

// traceStep is one segment of a superblock trace: the straight-line
// instructions [lo, hi) followed by the control event at hi. Steps exist for
// cross-checking the analyzer against the predecoder (traceMatchesCode) and
// for tests; execution runs off the flattened uops.
type traceStep struct {
	lo, hi int32
	kind   uint8
	exit   int32 // exit index for stepCond / stepEnd
	target int32 // jump destination for stepJump
}

// traceJump is one in-trace unconditional jump's block-counter bookkeeping.
type traceJump struct {
	at, target int32
}

// traceExit is one way control leaves a trace: the exact cumulative timing
// advance, relative to the entry slot s = barrier, of the n instructions
// executed when the run leaves here (see statictime.TraceExit).
type traceExit struct {
	at     int32 // taken branch pc (side exits), -1 for the fallthrough
	target int32 // pc the engine resumes at
	taken  bool
	stable bool // taken back-edge to the trace start, precondition self-renewing
	n      int64
	// Bulk timing advance.
	cycleAdv     int64
	inCycle      int64
	groups       int64
	widthStalls  int64 // internal stalls (first instruction's are dynamic)
	branchStalls int64
	dataStalls   int64
	writeStalls  int64
	maxComplete  int64
	barrierOff   int64
	writes       []statictime.RegWrite
	jumps        []traceJump // in-trace jumps passed before this exit
}

// traceSched is the engine-ready form of a statictime superblock trace: a
// chain of straight-line segments stitched across block seams (unconditional
// jumps) with guarded side exits at each conditional branch, whose timing —
// for every possible exit — was proven exact by the static analyzer.
//
// Validity at runtime needs exactly two facts the engine checks on entry:
// the barrier is a fresh taken-branch barrier (barrier > cycle, so the first
// trace instruction issues exactly at the barrier), and every register the
// trace touches has scoreboard time ≤ barrier (checkRegs). Everything else
// was proven static: every trace instruction issues to a unit the predecoder
// elides (fUnit clear), so no lane is scanned or booked and the relative
// issue offsets cannot depend on entry state; in-trace jump barriers are
// folded into the per-exit offsets.
type traceSched struct {
	uops      []uop
	steps     []traceStep
	exits     []traceExit
	checkRegs []isa.Reg
	blocks    int // block segments covered; >1 means a stitched superblock
}

// buildScheds converts the analyzer's proven superblock traces into
// per-leader replay entries, indexed by pc over len(dec) (so the sentinel pc
// indexes safely; its entry is nil). Only machines whose taken branches end
// their issue group qualify: the trace entry condition (a fresh taken-branch
// barrier) exists only under that discipline — statictime.Traces returns nil
// for the rest.
func buildScheds(p *isa.Program, cfg *machine.Config, dec []decoded) []*traceSched {
	return buildSchedsProf(p, cfg, dec, nil)
}

// buildSchedsProf is buildScheds under an optional execution profile:
// conditional branches the profile marks likely-taken continue their traces
// along the taken edge, guarded by an inverted-condition micro-op whose
// firing (a mispath) falls back to the block interpreter at the branch's
// fallthrough. A nil profile builds exactly the unspecialized schedules.
func buildSchedsProf(p *isa.Program, cfg *machine.Config, dec []decoded, prof *statictime.Profile) []*traceSched {
	traces, err := statictime.ProfiledTraces(p, cfg, prof)
	if err != nil || traces == nil {
		return nil // p and cfg are pre-validated; analysis cannot fail
	}
	var out []*traceSched
	for start, t := range traces {
		if t == nil || t.Exits[len(t.Exits)-1].N < replayMinLen {
			continue
		}
		// Cross-check the analyzer's conflict-freedom proof against the
		// predecoder's own unit-elision facts; any disagreement (there can
		// be none — both apply the same rule) drops the trace rather than
		// risking a lane booking the replay would skip. The control shape
		// is re-verified too: segments must be straight-line, cond steps
		// must sit on a conditional branch, jump steps on an unconditional
		// jump, all with matching targets.
		if !traceMatchesCode(t, p, dec) {
			continue
		}
		uops := buildUops(t, dec)
		if uops == nil {
			continue // an op outside the micro-op set (cannot happen)
		}
		ts := &traceSched{
			uops:      uops,
			steps:     make([]traceStep, len(t.Steps)),
			exits:     make([]traceExit, len(t.Exits)),
			checkRegs: t.CheckRegs,
			blocks:    t.Blocks,
		}
		for i, st := range t.Steps {
			ts.steps[i] = traceStep{
				lo: int32(st.Lo), hi: int32(st.Hi),
				kind: uint8(st.Kind), exit: int32(st.Exit), target: int32(st.Target),
			}
		}
		for i, ex := range t.Exits {
			te := traceExit{
				at: int32(ex.At), target: int32(ex.Target),
				taken: ex.Taken, stable: ex.Stable, n: ex.N,
				cycleAdv: ex.CycleAdv, inCycle: ex.InCycle, groups: ex.Groups,
				widthStalls: ex.WidthStalls, branchStalls: ex.BranchStalls,
				dataStalls: ex.DataStalls, writeStalls: ex.WriteStalls,
				maxComplete: ex.MaxComplete, barrierOff: ex.BarrierOff,
				writes: ex.Writes,
			}
			if len(ex.Jumps) > 0 {
				te.jumps = make([]traceJump, 0, len(ex.Jumps))
			}
			for _, j := range ex.Jumps {
				te.jumps = append(te.jumps, traceJump{at: int32(j.At), target: int32(j.Target)})
			}
			ts.exits[i] = te
		}
		if out == nil {
			out = make([]*traceSched, len(dec))
		}
		out[start] = ts
	}
	return out
}

// traceMatchesCode re-derives, from the predecoded program alone, the facts
// the trace replay relies on. A mismatch means the analyzer and predecoder
// disagree about the program — impossible by construction, but a dropped
// trace only costs speed while a wrong one corrupts timing.
func traceMatchesCode(t *statictime.Trace, p *isa.Program, dec []decoded) bool {
	n := len(dec) - 1 // drop the sentinel
	for _, st := range t.Steps {
		if st.Lo < 0 || st.Hi < st.Lo || st.Hi > n {
			return false
		}
		for j := st.Lo; j < st.Hi; j++ {
			if dec[j].flags&fUnit != 0 || dec[j].op.Info().Branch || dec[j].op == isa.OpHalt {
				return false
			}
		}
		switch statictime.TraceStepKind(st.Kind) {
		case statictime.StepCond:
			if st.Hi >= n || !condBranch(dec[st.Hi].op) || dec[st.Hi].flags&fUnit != 0 {
				return false
			}
			ex := &t.Exits[st.Exit]
			if ex.At != st.Hi || ex.Target != int(dec[st.Hi].target) {
				return false
			}
		case statictime.StepCondTaken:
			if st.Hi >= n || !condBranch(dec[st.Hi].op) || dec[st.Hi].flags&fUnit != 0 ||
				st.Target != int(dec[st.Hi].target) {
				return false
			}
			ex := &t.Exits[st.Exit]
			if ex.At != st.Hi || ex.Target != st.Hi+1 || ex.Taken {
				return false
			}
		case statictime.StepJump:
			if st.Hi >= n || dec[st.Hi].op != isa.OpJ || dec[st.Hi].flags&fUnit != 0 ||
				st.Target != int(dec[st.Hi].target) {
				return false
			}
		case statictime.StepEnd:
			if t.Exits[st.Exit].Target != st.Hi {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// buildUops flattens a verified trace into its micro-op stream: each
// segment's instructions in order (nops dropped, r0 destinations remapped to
// the sink), each conditional branch as a guard micro-op carrying its exit,
// jumps elided entirely, and a terminal uopEnd for the final fallthrough.
// Returns nil if any instruction falls outside the executor's switch.
func buildUops(t *statictime.Trace, dec []decoded) []uop {
	// Exact-size bound: every segment instruction plus one control micro-op
	// per non-jump step (dropped nops only leave slack capacity).
	n := 0
	for _, st := range t.Steps {
		n += st.Hi - st.Lo
		if st.Kind != statictime.StepJump {
			n++
		}
	}
	out := make([]uop, 0, n)
	for _, st := range t.Steps {
		for j := st.Lo; j < st.Hi; j++ {
			d := &dec[j]
			u := uop{op: d.op, dst: d.dst, s1: d.src1, s2: d.src2, aux: int32(j), imm: d.imm}
			switch d.op {
			case isa.OpNop:
				continue
			case isa.OpAdd, isa.OpAddi, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
				isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne,
				isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpAndi, isa.OpOri, isa.OpXori,
				isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai,
				isa.OpLi, isa.OpMov, isa.OpFmov,
				isa.OpLw, isa.OpLf, isa.OpCvtfi,
				isa.OpFslt, isa.OpFsle, isa.OpFseq, isa.OpFsne:
				// Integer-file destination: honor the hardwired zero by
				// diverting the write to the sink slot.
				if u.dst == isa.RZero {
					u.dst = regSink
				}
			case isa.OpFli:
				u.imm = int64(math.Float64bits(d.fimm))
			case isa.OpFadd, isa.OpFsub, isa.OpFneg, isa.OpFabs, isa.OpFmul, isa.OpFdiv,
				isa.OpCvtif, isa.OpFsqrt, isa.OpFsin, isa.OpFcos, isa.OpFatn,
				isa.OpFexp, isa.OpFlog,
				isa.OpSw, isa.OpSf, isa.OpPrinti, isa.OpPrintf:
				// Float destinations never alias r0; stores and prints have
				// no register destination.
			default:
				return nil
			}
			out = append(out, u)
		}
		switch statictime.TraceStepKind(st.Kind) {
		case statictime.StepCond:
			d := &dec[st.Hi]
			out = append(out, uop{op: d.op, s1: d.src1, s2: d.src2, aux: int32(st.Exit)})
		case statictime.StepCondTaken:
			// Specialized guard: the trace continues on the taken edge, so
			// the micro-op tests the inverted condition — firing exactly when
			// the architectural branch is untaken — and leaves through the
			// untaken side exit. traceExecU needs no new cases.
			d := &dec[st.Hi]
			out = append(out, uop{op: invertBranch(d.op), s1: d.src1, s2: d.src2, aux: int32(st.Exit)})
		case statictime.StepEnd:
			out = append(out, uop{op: uopEnd, aux: int32(st.Exit)})
		}
	}
	if len(out) == 0 || out[len(out)-1].op != uopEnd {
		return nil
	}
	return out
}

// invertBranch returns the conditional branch opcode testing the negated
// condition (beq↔bne, blt↔bge, ble↔bgt). Non-branches return unchanged.
func invertBranch(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.OpBeq:
		return isa.OpBne
	case isa.OpBne:
		return isa.OpBeq
	case isa.OpBlt:
		return isa.OpBge
	case isa.OpBge:
		return isa.OpBlt
	case isa.OpBle:
		return isa.OpBgt
	case isa.OpBgt:
		return isa.OpBle
	}
	return op
}

// traceExecU runs a trace's micro-op stream against live register and memory
// state and returns the index of the exit the run left through. The cases
// mirror exec's non-control cases exactly — including error messages and
// dirty-memory tracking — so a replayed run is indistinguishable from an
// instruction-by-instruction one, error exits included. The timing advance
// was precomputed per exit and is applied in bulk by the caller; this loop
// only moves values.
func (e *Engine) traceExecU(uops []uop) (int, error) {
	mem := e.mem
	memLen := int64(len(mem))
	regs := &e.regs
	for i := 0; ; i++ {
		u := &uops[i]
		switch u.op {
		case isa.OpAdd:
			regs[u.dst] = regs[u.s1] + regs[u.s2]
		case isa.OpAddi:
			regs[u.dst] = regs[u.s1] + u.imm
		case isa.OpSub:
			regs[u.dst] = regs[u.s1] - regs[u.s2]
		case isa.OpMul:
			regs[u.dst] = regs[u.s1] * regs[u.s2]
		case isa.OpDiv:
			dv := regs[u.s2]
			if dv == 0 {
				return 0, fmt.Errorf("sim: pc %d (%s): integer division by zero", u.aux, &e.prog.Instrs[u.aux])
			}
			regs[u.dst] = regs[u.s1] / dv
		case isa.OpRem:
			dv := regs[u.s2]
			if dv == 0 {
				return 0, fmt.Errorf("sim: pc %d (%s): integer remainder by zero", u.aux, &e.prog.Instrs[u.aux])
			}
			regs[u.dst] = regs[u.s1] % dv
		case isa.OpSlt:
			regs[u.dst] = b2i(regs[u.s1] < regs[u.s2])
		case isa.OpSle:
			regs[u.dst] = b2i(regs[u.s1] <= regs[u.s2])
		case isa.OpSeq:
			regs[u.dst] = b2i(regs[u.s1] == regs[u.s2])
		case isa.OpSne:
			regs[u.dst] = b2i(regs[u.s1] != regs[u.s2])
		case isa.OpAnd:
			regs[u.dst] = regs[u.s1] & regs[u.s2]
		case isa.OpOr:
			regs[u.dst] = regs[u.s1] | regs[u.s2]
		case isa.OpXor:
			regs[u.dst] = regs[u.s1] ^ regs[u.s2]
		case isa.OpAndi:
			regs[u.dst] = regs[u.s1] & u.imm
		case isa.OpOri:
			regs[u.dst] = regs[u.s1] | u.imm
		case isa.OpXori:
			regs[u.dst] = regs[u.s1] ^ u.imm
		case isa.OpSll:
			regs[u.dst] = regs[u.s1] << (uint64(regs[u.s2]) & 63)
		case isa.OpSrl:
			regs[u.dst] = int64(uint64(regs[u.s1]) >> (uint64(regs[u.s2]) & 63))
		case isa.OpSra:
			regs[u.dst] = regs[u.s1] >> (uint64(regs[u.s2]) & 63)
		case isa.OpSlli:
			regs[u.dst] = regs[u.s1] << (uint64(u.imm) & 63)
		case isa.OpSrli:
			regs[u.dst] = int64(uint64(regs[u.s1]) >> (uint64(u.imm) & 63))
		case isa.OpSrai:
			regs[u.dst] = regs[u.s1] >> (uint64(u.imm) & 63)
		case isa.OpLi, isa.OpFli:
			regs[u.dst] = u.imm
		case isa.OpMov, isa.OpFmov:
			regs[u.dst] = regs[u.s1]
		case isa.OpLw, isa.OpLf:
			memAddr := regs[u.s1] + u.imm
			if memAddr < 0 || memAddr >= memLen {
				return 0, fmt.Errorf("sim: pc %d (%s): address %d out of range", u.aux, &e.prog.Instrs[u.aux], memAddr)
			}
			regs[u.dst] = mem[memAddr]
		case isa.OpSw, isa.OpSf:
			memAddr := regs[u.s1] + u.imm
			if memAddr < 0 || memAddr >= memLen {
				return 0, fmt.Errorf("sim: pc %d (%s): address %d out of range", u.aux, &e.prog.Instrs[u.aux], memAddr)
			}
			mem[memAddr] = regs[u.s2]
			if a := int(memAddr); a < e.dirtyLo {
				e.dirtyLo = a
			}
			if a := int(memAddr); a > e.dirtyHi {
				e.dirtyHi = a
			}
		case isa.OpFadd:
			e.setRegF(u.dst, e.regF(u.s1)+e.regF(u.s2))
		case isa.OpFsub:
			e.setRegF(u.dst, e.regF(u.s1)-e.regF(u.s2))
		case isa.OpFneg:
			e.setRegF(u.dst, -e.regF(u.s1))
		case isa.OpFabs:
			e.setRegF(u.dst, math.Abs(e.regF(u.s1)))
		case isa.OpFmul:
			e.setRegF(u.dst, e.regF(u.s1)*e.regF(u.s2))
		case isa.OpFdiv:
			e.setRegF(u.dst, e.regF(u.s1)/e.regF(u.s2))
		case isa.OpCvtif:
			e.setRegF(u.dst, float64(regs[u.s1]))
		case isa.OpCvtfi:
			f := e.regF(u.s1)
			if math.IsNaN(f) || f >= 9.3e18 || f <= -9.3e18 {
				return 0, fmt.Errorf("sim: pc %d (%s): float-to-int overflow (%g)", u.aux, &e.prog.Instrs[u.aux], f)
			}
			regs[u.dst] = int64(f)
		case isa.OpFslt:
			regs[u.dst] = b2i(e.regF(u.s1) < e.regF(u.s2))
		case isa.OpFsle:
			regs[u.dst] = b2i(e.regF(u.s1) <= e.regF(u.s2))
		case isa.OpFseq:
			regs[u.dst] = b2i(e.regF(u.s1) == e.regF(u.s2))
		case isa.OpFsne:
			regs[u.dst] = b2i(e.regF(u.s1) != e.regF(u.s2))
		case isa.OpFsqrt:
			e.setRegF(u.dst, math.Sqrt(e.regF(u.s1)))
		case isa.OpFsin:
			e.setRegF(u.dst, math.Sin(e.regF(u.s1)))
		case isa.OpFcos:
			e.setRegF(u.dst, math.Cos(e.regF(u.s1)))
		case isa.OpFatn:
			e.setRegF(u.dst, math.Atan(e.regF(u.s1)))
		case isa.OpFexp:
			e.setRegF(u.dst, math.Exp(e.regF(u.s1)))
		case isa.OpFlog:
			e.setRegF(u.dst, math.Log(e.regF(u.s1)))
		case isa.OpPrinti:
			e.output = append(e.output, isa.IntValue(regs[u.s1]))
		case isa.OpPrintf:
			e.output = append(e.output, isa.FloatValue(e.regF(u.s1)))
		case isa.OpBeq:
			if regs[u.s1] == regs[u.s2] {
				return int(u.aux), nil
			}
		case isa.OpBne:
			if regs[u.s1] != regs[u.s2] {
				return int(u.aux), nil
			}
		case isa.OpBlt:
			if regs[u.s1] < regs[u.s2] {
				return int(u.aux), nil
			}
		case isa.OpBge:
			if regs[u.s1] >= regs[u.s2] {
				return int(u.aux), nil
			}
		case isa.OpBle:
			if regs[u.s1] <= regs[u.s2] {
				return int(u.aux), nil
			}
		case isa.OpBgt:
			if regs[u.s1] > regs[u.s2] {
				return int(u.aux), nil
			}
		case uopEnd:
			return int(u.aux), nil
		default:
			// Unreachable: buildUops admits only the opcodes above.
			return 0, fmt.Errorf("sim: trace micro-op with unimplemented opcode %v", u.op)
		}
	}
}
