package sim

import (
	"fmt"
	"math"

	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/statictime"
)

// replayMinLen is the smallest straight-line prefix worth replaying: below
// it the precondition scan and bulk writeback cost about as much as the
// per-instruction issue steps they replace.
const replayMinLen = 3

// replaySched is the engine-ready form of a statictime exact schedule: the
// precomputed timing advance of one block's straight-line prefix, applied in
// bulk when the fast path enters the block through a taken transfer.
//
// Validity at runtime needs exactly two facts the engine checks on entry:
// the barrier is a fresh taken-branch barrier (barrier > cycle, so the first
// prefix instruction issues exactly at the barrier), and every register the
// prefix touches has scoreboard time ≤ barrier (checkRegs). Everything else
// was proven static by the analyzer: the prefix is straight-line and every
// instruction issues to a unit the predecoder elides (fUnit clear), so no
// unit lane is scanned or booked and the relative issue offsets cannot
// depend on entry state.
type replaySched struct {
	end       int   // pc after the replayed prefix (the block terminator)
	n         int64 // instructions replayed
	checkRegs []isa.Reg
	// Bulk timing advance, relative to the entry slot s = barrier.
	cycleAdv    int64
	inCycle     int64
	groups      int64
	widthStalls int64 // internal stalls (first instruction's are dynamic)
	dataStalls  int64
	writeStalls int64
	maxComplete int64
	writes      []statictime.RegWrite
}

// buildScheds converts the analyzer's proven exact schedules into per-leader
// replay entries, indexed by pc (nil entries elsewhere). Only machines whose
// taken branches end their issue group qualify: the replay entry condition
// (a fresh taken-branch barrier) exists only under that discipline.
func buildScheds(p *isa.Program, cfg *machine.Config, dec []decoded) []*replaySched {
	if !cfg.TakenBranchEndsGroup {
		return nil
	}
	a, err := statictime.Analyze(p, cfg)
	if err != nil {
		return nil // p and cfg are pre-validated; analysis cannot fail
	}
	var out []*replaySched
	for i := range a.Blocks {
		s := a.Blocks[i].Sched
		if s == nil || s.End-s.Start < replayMinLen {
			continue
		}
		// Cross-check the analyzer's conflict-freedom proof against the
		// predecoder's own unit-elision facts; any disagreement (there can
		// be none — both apply the same rule) drops the schedule rather
		// than risking a lane booking the replay would skip.
		ok := true
		for j := s.Start; j < s.End; j++ {
			in := &p.Instrs[j]
			if dec[j].flags&fUnit != 0 || in.Op.Info().Branch || in.Op == isa.OpHalt {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if out == nil {
			out = make([]*replaySched, len(dec))
		}
		out[s.Start] = &replaySched{
			end:         s.End,
			n:           int64(s.End - s.Start),
			checkRegs:   s.CheckRegs,
			cycleAdv:    s.CycleAdv,
			inCycle:     s.InCycle,
			groups:      s.Groups,
			widthStalls: s.WidthStalls,
			dataStalls:  s.DataStalls,
			writeStalls: s.WriteStalls,
			maxComplete: s.MaxComplete,
			writes:      s.Writes,
		}
	}
	return out
}

// replayExec applies the architectural semantics of the straight-line
// instructions [lo, hi) in program order. The timing advance was precomputed
// (replaySched) and is applied in bulk by the caller; this loop only moves
// values. The cases mirror exec's non-control cases exactly — including
// error messages and dirty-memory tracking — so a replayed run is
// indistinguishable from an instruction-by-instruction one, error exits
// included.
func (e *Engine) replayExec(lo, hi int) error {
	dec := e.dec
	mem := e.mem
	memLen := int64(len(mem))
	regs := &e.regs
	for idx := lo; idx < hi; idx++ {
		d := &dec[idx]
		switch d.op {
		case isa.OpNop:
		case isa.OpAdd:
			e.setReg(d.dst, regs[d.src1]+regs[d.src2])
		case isa.OpAddi:
			e.setReg(d.dst, regs[d.src1]+d.imm)
		case isa.OpSub:
			e.setReg(d.dst, regs[d.src1]-regs[d.src2])
		case isa.OpMul:
			e.setReg(d.dst, regs[d.src1]*regs[d.src2])
		case isa.OpDiv:
			dv := regs[d.src2]
			if dv == 0 {
				return fmt.Errorf("sim: pc %d (%s): integer division by zero", idx, &e.prog.Instrs[idx])
			}
			e.setReg(d.dst, regs[d.src1]/dv)
		case isa.OpRem:
			dv := regs[d.src2]
			if dv == 0 {
				return fmt.Errorf("sim: pc %d (%s): integer remainder by zero", idx, &e.prog.Instrs[idx])
			}
			e.setReg(d.dst, regs[d.src1]%dv)
		case isa.OpSlt:
			e.setReg(d.dst, b2i(regs[d.src1] < regs[d.src2]))
		case isa.OpSle:
			e.setReg(d.dst, b2i(regs[d.src1] <= regs[d.src2]))
		case isa.OpSeq:
			e.setReg(d.dst, b2i(regs[d.src1] == regs[d.src2]))
		case isa.OpSne:
			e.setReg(d.dst, b2i(regs[d.src1] != regs[d.src2]))
		case isa.OpAnd:
			e.setReg(d.dst, regs[d.src1]&regs[d.src2])
		case isa.OpOr:
			e.setReg(d.dst, regs[d.src1]|regs[d.src2])
		case isa.OpXor:
			e.setReg(d.dst, regs[d.src1]^regs[d.src2])
		case isa.OpAndi:
			e.setReg(d.dst, regs[d.src1]&d.imm)
		case isa.OpOri:
			e.setReg(d.dst, regs[d.src1]|d.imm)
		case isa.OpXori:
			e.setReg(d.dst, regs[d.src1]^d.imm)
		case isa.OpSll:
			e.setReg(d.dst, regs[d.src1]<<(uint64(regs[d.src2])&63))
		case isa.OpSrl:
			e.setReg(d.dst, int64(uint64(regs[d.src1])>>(uint64(regs[d.src2])&63)))
		case isa.OpSra:
			e.setReg(d.dst, regs[d.src1]>>(uint64(regs[d.src2])&63))
		case isa.OpSlli:
			e.setReg(d.dst, regs[d.src1]<<(uint64(d.imm)&63))
		case isa.OpSrli:
			e.setReg(d.dst, int64(uint64(regs[d.src1])>>(uint64(d.imm)&63)))
		case isa.OpSrai:
			e.setReg(d.dst, regs[d.src1]>>(uint64(d.imm)&63))
		case isa.OpLi:
			e.setReg(d.dst, d.imm)
		case isa.OpMov:
			e.setReg(d.dst, regs[d.src1])
		case isa.OpFli:
			e.setRegF(d.dst, d.fimm)
		case isa.OpFmov:
			e.setReg(d.dst, regs[d.src1])
		case isa.OpLw, isa.OpLf:
			memAddr := regs[d.src1] + d.imm
			if memAddr < 0 || memAddr >= memLen {
				return fmt.Errorf("sim: pc %d (%s): address %d out of range", idx, &e.prog.Instrs[idx], memAddr)
			}
			e.setReg(d.dst, mem[memAddr])
		case isa.OpSw, isa.OpSf:
			memAddr := regs[d.src1] + d.imm
			if memAddr < 0 || memAddr >= memLen {
				return fmt.Errorf("sim: pc %d (%s): address %d out of range", idx, &e.prog.Instrs[idx], memAddr)
			}
			mem[memAddr] = regs[d.src2]
			if a := int(memAddr); a < e.dirtyLo {
				e.dirtyLo = a
			}
			if a := int(memAddr); a > e.dirtyHi {
				e.dirtyHi = a
			}
		case isa.OpFadd:
			e.setRegF(d.dst, e.regF(d.src1)+e.regF(d.src2))
		case isa.OpFsub:
			e.setRegF(d.dst, e.regF(d.src1)-e.regF(d.src2))
		case isa.OpFneg:
			e.setRegF(d.dst, -e.regF(d.src1))
		case isa.OpFabs:
			e.setRegF(d.dst, math.Abs(e.regF(d.src1)))
		case isa.OpFmul:
			e.setRegF(d.dst, e.regF(d.src1)*e.regF(d.src2))
		case isa.OpFdiv:
			e.setRegF(d.dst, e.regF(d.src1)/e.regF(d.src2))
		case isa.OpCvtif:
			e.setRegF(d.dst, float64(regs[d.src1]))
		case isa.OpCvtfi:
			f := e.regF(d.src1)
			if math.IsNaN(f) || f >= 9.3e18 || f <= -9.3e18 {
				return fmt.Errorf("sim: pc %d (%s): float-to-int overflow (%g)", idx, &e.prog.Instrs[idx], f)
			}
			e.setReg(d.dst, int64(f))
		case isa.OpFslt:
			e.setReg(d.dst, b2i(e.regF(d.src1) < e.regF(d.src2)))
		case isa.OpFsle:
			e.setReg(d.dst, b2i(e.regF(d.src1) <= e.regF(d.src2)))
		case isa.OpFseq:
			e.setReg(d.dst, b2i(e.regF(d.src1) == e.regF(d.src2)))
		case isa.OpFsne:
			e.setReg(d.dst, b2i(e.regF(d.src1) != e.regF(d.src2)))
		case isa.OpFsqrt:
			e.setRegF(d.dst, math.Sqrt(e.regF(d.src1)))
		case isa.OpFsin:
			e.setRegF(d.dst, math.Sin(e.regF(d.src1)))
		case isa.OpFcos:
			e.setRegF(d.dst, math.Cos(e.regF(d.src1)))
		case isa.OpFatn:
			e.setRegF(d.dst, math.Atan(e.regF(d.src1)))
		case isa.OpFexp:
			e.setRegF(d.dst, math.Exp(e.regF(d.src1)))
		case isa.OpFlog:
			e.setRegF(d.dst, math.Log(e.regF(d.src1)))
		case isa.OpPrinti:
			e.output = append(e.output, isa.IntValue(regs[d.src1]))
		case isa.OpPrintf:
			e.output = append(e.output, isa.FloatValue(e.regF(d.src1)))
		default:
			return fmt.Errorf("sim: pc %d: unimplemented opcode %v", idx, d.op)
		}
	}
	return nil
}
