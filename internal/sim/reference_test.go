package sim

// This file preserves the original (pre-predecode) engine verbatim as a
// reference implementation. It is compiled only into tests and exists so the
// differential suite (differential_test.go) can prove that the rewritten
// fast and instrumented paths are bit-identical to the original semantics
// and timing on every golden benchmark × machine configuration. Apart from
// renames (engine→refEngine, Run→refRun) and the removal of the public
// wrappers, the code is unchanged from the seed.

import (
	"fmt"
	"math"

	"ilp/internal/cache"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// refRun simulates the program to completion with the reference engine.
func refRun(p *isa.Program, opts Options) (*Result, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("sim: no machine description")
	}
	cfg := opts.Machine
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e, err := newRefEngine(p, cfg, opts)
	if err != nil {
		return nil, err
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.result(), nil
}

type refEngine struct {
	cfg  *machine.Config
	prog *isa.Program
	opts Options

	regs [isa.NumRegs]int64
	mem  []int64

	// Timing state.
	ready        [isa.NumRegs]int64 // minor cycle a register's value becomes available
	unitFree     [][]int64          // per unit, per copy: next minor cycle it can accept
	classUnit    [isa.NumClasses]int
	classLatency [isa.NumClasses]int
	cycle        int64 // current issue minor cycle
	inCycle      int   // instructions already issued this minor cycle
	barrier      int64 // earliest next issue after a group break
	barrierIsBr  bool  // the barrier came from a taken branch
	lastComplete int64

	icache *cache.Cache
	dcache *cache.Cache

	pc     int
	halted bool

	instrs      int64
	groups      int64
	classCounts [isa.NumClasses]int64
	output      []isa.Value
	stalls      StallBreakdown
}

func newRefEngine(p *isa.Program, cfg *machine.Config, opts Options) (*refEngine, error) {
	e := &refEngine{cfg: cfg, prog: p, opts: opts, pc: p.Entry}
	memWords := opts.MemWords
	if memWords == 0 {
		memWords = DefaultMemWords
	}
	if len(p.Data) > memWords {
		return nil, fmt.Errorf("sim: data segment (%d words) exceeds memory (%d words)", len(p.Data), memWords)
	}
	e.mem = make([]int64, memWords)
	copy(e.mem, p.Data)

	stackTop := p.StackTop
	if stackTop == 0 {
		stackTop = int64(memWords)
	}
	if stackTop > int64(memWords) || stackTop <= int64(len(p.Data)) {
		return nil, fmt.Errorf("sim: stack top %d outside memory", stackTop)
	}
	e.regs[isa.RSP] = stackTop

	e.unitFree = make([][]int64, len(cfg.Units))
	for i, u := range cfg.Units {
		e.unitFree[i] = make([]int64, u.Multiplicity)
		for _, cl := range u.Classes {
			e.classUnit[cl] = i
		}
	}
	for cl := 0; cl < isa.NumClasses; cl++ {
		e.classLatency[cl] = cfg.Latency[cl]
	}
	var err error
	if cfg.ICache != nil {
		if e.icache, err = cache.New(*cfg.ICache); err != nil {
			return nil, err
		}
	}
	if cfg.DCache != nil {
		if e.dcache, err = cache.New(*cfg.DCache); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *refEngine) run() error {
	maxInstrs := e.opts.MaxInstructions
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstructions
	}
	width := int64(e.cfg.IssueWidth)
	for !e.halted {
		if e.pc < 0 || e.pc >= len(e.prog.Instrs) {
			return fmt.Errorf("sim: pc %d out of range", e.pc)
		}
		if e.instrs >= maxInstrs {
			return fmt.Errorf("sim: instruction limit %d exceeded (infinite loop?)", maxInstrs)
		}
		idx := e.pc
		in := &e.prog.Instrs[idx]
		info := in.Op.Info()

		// 1. Earliest slot under the in-order, width-limited discipline.
		slot := e.cycle
		if int64(e.inCycle) >= width {
			slot = e.cycle + 1
			e.stalls.Width++
		}
		if e.barrier > slot {
			if e.barrierIsBr {
				e.stalls.Branch += e.barrier - slot
			}
			slot = e.barrier
		}

		// 2. Instruction fetch.
		if e.icache != nil {
			if !e.icache.Access(int64(idx)) {
				pen := int64(e.icache.MissPenalty())
				e.stalls.ICache += pen
				slot += pen
			}
		}

		issue := slot

		// 3. Operand availability (RAW through the scoreboard).
		if info.NSrc >= 1 && in.Src1 != isa.NoReg {
			if t := e.ready[in.Src1]; t > issue {
				e.stalls.Data += t - issue
				issue = t
			}
		}
		if info.NSrc >= 2 && in.Src2 != isa.NoReg {
			if t := e.ready[in.Src2]; t > issue {
				e.stalls.Data += t - issue
				issue = t
			}
		}

		// 4. Operation latency, including data-cache effects on loads.
		lat := int64(e.classLatency[in.Op.Class()])
		var memAddr int64
		if info.Load || (info.Store && in.Op != isa.OpPrinti && in.Op != isa.OpPrintf) {
			base := e.regs[in.Src1]
			memAddr = base + in.Imm
			if memAddr < 0 || memAddr >= int64(len(e.mem)) {
				return fmt.Errorf("sim: pc %d (%s): address %d out of range", idx, in, memAddr)
			}
		}
		var storeMissPenalty int64
		if e.dcache != nil && (info.Load || info.Store) {
			addr := memAddr
			if in.Op == isa.OpPrinti || in.Op == isa.OpPrintf {
				addr = 0 // output port; treat as uncached hit
			} else if !e.dcache.Access(addr) {
				pen := int64(e.dcache.MissPenalty())
				if info.Load {
					lat += pen
				} else {
					storeMissPenalty = pen
				}
			}
		}

		// 5. Write-order (WAW): a result may not become available before
		// a previously issued write to the same register.
		if info.HasDst && in.Dst != isa.NoReg && in.Dst != isa.RZero {
			if t := e.ready[in.Dst] - lat; t > issue {
				e.stalls.Write += t - issue
				issue = t
			}
		}

		// 6. Functional-unit availability (class conflicts).
		u := e.classUnit[in.Op.Class()]
		copies := e.unitFree[u]
		best := 0
		for i := 1; i < len(copies); i++ {
			if copies[i] < copies[best] {
				best = i
			}
		}
		if t := copies[best]; t > issue {
			e.stalls.Unit += t - issue
			issue = t
		}

		// Commit the issue slot.
		if issue > e.cycle {
			e.cycle = issue
			e.inCycle = 1
			e.groups++
		} else {
			if e.inCycle == 0 {
				e.groups++ // very first issue slot
			}
			e.inCycle++
		}
		copies[best] = issue + int64(e.cfg.Units[u].IssueLatency)
		complete := issue + lat
		if info.HasDst && in.Dst != isa.NoReg && in.Dst != isa.RZero {
			e.ready[in.Dst] = complete
		}
		if complete > e.lastComplete {
			e.lastComplete = complete
		}
		if storeMissPenalty > 0 {
			e.stalls.DCache += storeMissPenalty
			if b := issue + storeMissPenalty; b > e.barrier {
				e.barrier = b
				e.barrierIsBr = false
			}
		}

		// 7. Execute (program order, at issue).
		taken, err := e.exec(idx, in, memAddr)
		if err != nil {
			return err
		}
		e.instrs++
		e.classCounts[in.Op.Class()]++
		if e.opts.OnIssue != nil {
			e.opts.OnIssue(idx, in, issue, complete)
		}
		if e.opts.OnTrace != nil {
			a := int64(-1)
			if info.Load || (info.Store && in.Op != isa.OpPrinti && in.Op != isa.OpPrintf) {
				a = memAddr
			}
			e.opts.OnTrace(idx, in, a)
		}
		if taken && e.cfg.TakenBranchEndsGroup {
			if b := issue + lat + int64(e.cfg.BranchRedirect); b > e.barrier {
				e.barrier = b
				e.barrierIsBr = true
			}
		}
	}
	return nil
}

// exec performs the semantic effect of the instruction and advances the pc.
// It reports whether a control transfer was taken.
func (e *refEngine) exec(idx int, in *isa.Instr, memAddr int64) (taken bool, err error) {
	r := func(reg isa.Reg) int64 { return e.regs[reg] }
	rf := func(reg isa.Reg) float64 { return math.Float64frombits(uint64(e.regs[reg])) }
	w := func(reg isa.Reg, v int64) {
		if reg != isa.RZero {
			e.regs[reg] = v
		}
	}
	wf := func(reg isa.Reg, v float64) { e.regs[reg] = int64(math.Float64bits(v)) }
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	next := idx + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		w(in.Dst, r(in.Src1)+r(in.Src2))
	case isa.OpAddi:
		w(in.Dst, r(in.Src1)+in.Imm)
	case isa.OpSub:
		w(in.Dst, r(in.Src1)-r(in.Src2))
	case isa.OpMul:
		w(in.Dst, r(in.Src1)*r(in.Src2))
	case isa.OpDiv:
		d := r(in.Src2)
		if d == 0 {
			return false, fmt.Errorf("sim: pc %d (%s): integer division by zero", idx, in)
		}
		w(in.Dst, r(in.Src1)/d)
	case isa.OpRem:
		d := r(in.Src2)
		if d == 0 {
			return false, fmt.Errorf("sim: pc %d (%s): integer remainder by zero", idx, in)
		}
		w(in.Dst, r(in.Src1)%d)
	case isa.OpSlt:
		w(in.Dst, b2i(r(in.Src1) < r(in.Src2)))
	case isa.OpSle:
		w(in.Dst, b2i(r(in.Src1) <= r(in.Src2)))
	case isa.OpSeq:
		w(in.Dst, b2i(r(in.Src1) == r(in.Src2)))
	case isa.OpSne:
		w(in.Dst, b2i(r(in.Src1) != r(in.Src2)))
	case isa.OpAnd:
		w(in.Dst, r(in.Src1)&r(in.Src2))
	case isa.OpOr:
		w(in.Dst, r(in.Src1)|r(in.Src2))
	case isa.OpXor:
		w(in.Dst, r(in.Src1)^r(in.Src2))
	case isa.OpAndi:
		w(in.Dst, r(in.Src1)&in.Imm)
	case isa.OpOri:
		w(in.Dst, r(in.Src1)|in.Imm)
	case isa.OpXori:
		w(in.Dst, r(in.Src1)^in.Imm)
	case isa.OpSll:
		w(in.Dst, r(in.Src1)<<(uint64(r(in.Src2))&63))
	case isa.OpSrl:
		w(in.Dst, int64(uint64(r(in.Src1))>>(uint64(r(in.Src2))&63)))
	case isa.OpSra:
		w(in.Dst, r(in.Src1)>>(uint64(r(in.Src2))&63))
	case isa.OpSlli:
		w(in.Dst, r(in.Src1)<<(uint64(in.Imm)&63))
	case isa.OpSrli:
		w(in.Dst, int64(uint64(r(in.Src1))>>(uint64(in.Imm)&63)))
	case isa.OpSrai:
		w(in.Dst, r(in.Src1)>>(uint64(in.Imm)&63))
	case isa.OpLi:
		w(in.Dst, in.Imm)
	case isa.OpMov:
		w(in.Dst, r(in.Src1))
	case isa.OpFli:
		wf(in.Dst, in.FImm)
	case isa.OpFmov:
		w(in.Dst, r(in.Src1))
	case isa.OpLw, isa.OpLf:
		w(in.Dst, e.mem[memAddr])
	case isa.OpSw, isa.OpSf:
		e.mem[memAddr] = r(in.Src2)
	case isa.OpBeq:
		taken = r(in.Src1) == r(in.Src2)
	case isa.OpBne:
		taken = r(in.Src1) != r(in.Src2)
	case isa.OpBlt:
		taken = r(in.Src1) < r(in.Src2)
	case isa.OpBge:
		taken = r(in.Src1) >= r(in.Src2)
	case isa.OpBle:
		taken = r(in.Src1) <= r(in.Src2)
	case isa.OpBgt:
		taken = r(in.Src1) > r(in.Src2)
	case isa.OpJ:
		taken = true
	case isa.OpJal:
		w(in.Dst, int64(idx+1))
		taken = true
	case isa.OpJr:
		next = int(r(in.Src1))
		taken = true
	case isa.OpFadd:
		wf(in.Dst, rf(in.Src1)+rf(in.Src2))
	case isa.OpFsub:
		wf(in.Dst, rf(in.Src1)-rf(in.Src2))
	case isa.OpFneg:
		wf(in.Dst, -rf(in.Src1))
	case isa.OpFabs:
		wf(in.Dst, math.Abs(rf(in.Src1)))
	case isa.OpFmul:
		wf(in.Dst, rf(in.Src1)*rf(in.Src2))
	case isa.OpFdiv:
		wf(in.Dst, rf(in.Src1)/rf(in.Src2))
	case isa.OpCvtif:
		wf(in.Dst, float64(r(in.Src1)))
	case isa.OpCvtfi:
		f := rf(in.Src1)
		if math.IsNaN(f) || f >= 9.3e18 || f <= -9.3e18 {
			return false, fmt.Errorf("sim: pc %d (%s): float-to-int overflow (%g)", idx, in, f)
		}
		w(in.Dst, int64(f))
	case isa.OpFslt:
		w(in.Dst, b2i(rf(in.Src1) < rf(in.Src2)))
	case isa.OpFsle:
		w(in.Dst, b2i(rf(in.Src1) <= rf(in.Src2)))
	case isa.OpFseq:
		w(in.Dst, b2i(rf(in.Src1) == rf(in.Src2)))
	case isa.OpFsne:
		w(in.Dst, b2i(rf(in.Src1) != rf(in.Src2)))
	case isa.OpFsqrt:
		wf(in.Dst, math.Sqrt(rf(in.Src1)))
	case isa.OpFsin:
		wf(in.Dst, math.Sin(rf(in.Src1)))
	case isa.OpFcos:
		wf(in.Dst, math.Cos(rf(in.Src1)))
	case isa.OpFatn:
		wf(in.Dst, math.Atan(rf(in.Src1)))
	case isa.OpFexp:
		wf(in.Dst, math.Exp(rf(in.Src1)))
	case isa.OpFlog:
		wf(in.Dst, math.Log(rf(in.Src1)))
	case isa.OpPrinti:
		e.output = append(e.output, isa.IntValue(r(in.Src1)))
	case isa.OpPrintf:
		e.output = append(e.output, isa.FloatValue(rf(in.Src1)))
	case isa.OpHalt:
		e.halted = true
		return false, nil
	default:
		return false, fmt.Errorf("sim: pc %d: unimplemented opcode %v", idx, in.Op)
	}

	if taken && in.Op != isa.OpJr {
		next = in.Target
	}
	e.pc = next
	return taken, nil
}

func (e *refEngine) result() *Result {
	r := &Result{
		Machine:      e.cfg.Name,
		Instructions: e.instrs,
		IssueGroups:  e.groups,
		MinorCycles:  e.lastComplete,
		BaseCycles:   e.cfg.BaseCycles(e.lastComplete),
		ClassCounts:  e.classCounts,
		Output:       e.output,
		Stalls:       e.stalls,
	}
	if e.icache != nil {
		st := e.icache.Stats()
		r.ICacheStats = &st
	}
	if e.dcache != nil {
		st := e.dcache.Stats()
		r.DCacheStats = &st
	}
	return r
}
