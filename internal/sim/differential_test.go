package sim

// Differential equivalence suite: every golden benchmark, compiled per
// machine configuration, is simulated three ways — with the preserved seed
// engine (reference_test.go), the predecoded fast path, and the instrumented
// path (forced by installing a no-op OnIssue hook) — and all observable
// results must be bit-identical. This is the proof that the performance
// rewrite changed no semantics and no timing.

import (
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/cache"
	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/machine"
)

// diffMachines is the machine matrix: scalar base, ideal superscalar at
// three widths (unit multiplicity and width bookkeeping), a superpipeline
// (latency scaling and branch barriers), and MultiTitan with both caches
// (the fully instrumented path with fetch and data-miss modeling).
func diffMachines() []*machine.Config {
	titan := machine.MultiTitan()
	titan.Name = "titan-cached"
	titan.ICache = &cache.Config{Name: "diff-i", Lines: 256, LineWords: 4, MissPenalty: 12}
	titan.DCache = &cache.Config{Name: "diff-d", Lines: 128, LineWords: 4, MissPenalty: 20}
	return []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(2),
		machine.IdealSuperscalar(4),
		machine.IdealSuperscalar(8),
		machine.Superpipelined(4),
		titan,
	}
}

func compareResults(t *testing.T, path string, want, got *Result) {
	t.Helper()
	if got.Machine != want.Machine {
		t.Errorf("%s: Machine = %q, want %q", path, got.Machine, want.Machine)
	}
	if got.Instructions != want.Instructions {
		t.Errorf("%s: Instructions = %d, want %d", path, got.Instructions, want.Instructions)
	}
	if got.IssueGroups != want.IssueGroups {
		t.Errorf("%s: IssueGroups = %d, want %d", path, got.IssueGroups, want.IssueGroups)
	}
	if got.MinorCycles != want.MinorCycles {
		t.Errorf("%s: MinorCycles = %d, want %d", path, got.MinorCycles, want.MinorCycles)
	}
	if got.BaseCycles != want.BaseCycles {
		t.Errorf("%s: BaseCycles = %g, want %g", path, got.BaseCycles, want.BaseCycles)
	}
	if got.ClassCounts != want.ClassCounts {
		t.Errorf("%s: ClassCounts = %v, want %v", path, got.ClassCounts, want.ClassCounts)
	}
	if got.Stalls != want.Stalls {
		t.Errorf("%s: Stalls = %+v, want %+v", path, got.Stalls, want.Stalls)
	}
	if len(got.Output) != len(want.Output) {
		t.Errorf("%s: %d output values, want %d", path, len(got.Output), len(want.Output))
	} else {
		for i := range want.Output {
			if got.Output[i] != want.Output[i] {
				t.Errorf("%s: Output[%d] = %v, want %v", path, i, got.Output[i], want.Output[i])
				break
			}
		}
	}
	switch {
	case (got.ICacheStats == nil) != (want.ICacheStats == nil):
		t.Errorf("%s: ICacheStats presence = %v, want %v", path, got.ICacheStats != nil, want.ICacheStats != nil)
	case got.ICacheStats != nil && *got.ICacheStats != *want.ICacheStats:
		t.Errorf("%s: ICacheStats = %+v, want %+v", path, *got.ICacheStats, *want.ICacheStats)
	}
	switch {
	case (got.DCacheStats == nil) != (want.DCacheStats == nil):
		t.Errorf("%s: DCacheStats presence = %v, want %v", path, got.DCacheStats != nil, want.DCacheStats != nil)
	case got.DCacheStats != nil && *got.DCacheStats != *want.DCacheStats:
		t.Errorf("%s: DCacheStats = %+v, want %+v", path, *got.DCacheStats, *want.DCacheStats)
	}
}

func TestDifferentialEngines(t *testing.T) {
	suite := benchmarks.All()
	cfgs := diffMachines()
	if testing.Short() {
		cfgs = []*machine.Config{cfgs[0], cfgs[len(cfgs)-1]}
	}
	for _, b := range suite {
		for _, cfg := range cfgs {
			t.Run(b.Name+"/"+cfg.Name, func(t *testing.T) {
				c, err := compiler.Compile(b.Source, compiler.Options{
					Machine: cfg, Level: compiler.O4, Unroll: b.DefaultUnroll,
				})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				opts := Options{Machine: cfg}
				want, err := refRun(c.Prog, opts)
				if err != nil {
					t.Fatalf("reference engine: %v", err)
				}

				// Fast path (no caches configured means Run picks it;
				// with caches the engine is instrumented regardless).
				got, err := Run(c.Prog, opts)
				if err != nil {
					t.Fatalf("fast path: %v", err)
				}
				compareResults(t, "fast", want, got)

				// Instrumented path, forced via a no-op hook.
				iopts := opts
				iopts.OnIssue = func(int, *isa.Instr, int64, int64) {}
				got, err = Run(c.Prog, iopts)
				if err != nil {
					t.Fatalf("instrumented path: %v", err)
				}
				compareResults(t, "instrumented", want, got)
			})
		}
	}
}
