package sim

// Differential equivalence suite: every golden benchmark, compiled per
// machine configuration, is simulated three ways — with the preserved seed
// engine (reference_test.go), the predecoded fast path, and the instrumented
// path (forced by installing a no-op OnIssue hook) — and all observable
// results must be bit-identical. This is the proof that the performance
// rewrite changed no semantics and no timing.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/cache"
	"ilp/internal/compiler"
	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/statictime"
)

// diffMachines is the machine matrix: scalar base, ideal superscalar at
// three widths (unit multiplicity and width bookkeeping), a superpipeline
// (latency scaling and branch barriers), and MultiTitan with both caches
// (the fully instrumented path with fetch and data-miss modeling).
func diffMachines() []*machine.Config {
	titan := machine.MultiTitan()
	titan.Name = "titan-cached"
	titan.ICache = &cache.Config{Name: "diff-i", Lines: 256, LineWords: 4, MissPenalty: 12}
	titan.DCache = &cache.Config{Name: "diff-d", Lines: 128, LineWords: 4, MissPenalty: 20}
	return []*machine.Config{
		machine.Base(),
		machine.IdealSuperscalar(2),
		machine.IdealSuperscalar(4),
		machine.IdealSuperscalar(8),
		machine.Superpipelined(4),
		titan,
	}
}

func compareResults(t *testing.T, path string, want, got *Result) {
	t.Helper()
	if got.Machine != want.Machine {
		t.Errorf("%s: Machine = %q, want %q", path, got.Machine, want.Machine)
	}
	if got.Instructions != want.Instructions {
		t.Errorf("%s: Instructions = %d, want %d", path, got.Instructions, want.Instructions)
	}
	if got.IssueGroups != want.IssueGroups {
		t.Errorf("%s: IssueGroups = %d, want %d", path, got.IssueGroups, want.IssueGroups)
	}
	if got.MinorCycles != want.MinorCycles {
		t.Errorf("%s: MinorCycles = %d, want %d", path, got.MinorCycles, want.MinorCycles)
	}
	if got.BaseCycles != want.BaseCycles {
		t.Errorf("%s: BaseCycles = %g, want %g", path, got.BaseCycles, want.BaseCycles)
	}
	if got.ClassCounts != want.ClassCounts {
		t.Errorf("%s: ClassCounts = %v, want %v", path, got.ClassCounts, want.ClassCounts)
	}
	if got.Stalls != want.Stalls {
		t.Errorf("%s: Stalls = %+v, want %+v", path, got.Stalls, want.Stalls)
	}
	if len(got.Output) != len(want.Output) {
		t.Errorf("%s: %d output values, want %d", path, len(got.Output), len(want.Output))
	} else {
		for i := range want.Output {
			if got.Output[i] != want.Output[i] {
				t.Errorf("%s: Output[%d] = %v, want %v", path, i, got.Output[i], want.Output[i])
				break
			}
		}
	}
	switch {
	case (got.ICacheStats == nil) != (want.ICacheStats == nil):
		t.Errorf("%s: ICacheStats presence = %v, want %v", path, got.ICacheStats != nil, want.ICacheStats != nil)
	case got.ICacheStats != nil && *got.ICacheStats != *want.ICacheStats:
		t.Errorf("%s: ICacheStats = %+v, want %+v", path, *got.ICacheStats, *want.ICacheStats)
	}
	switch {
	case (got.DCacheStats == nil) != (want.DCacheStats == nil):
		t.Errorf("%s: DCacheStats presence = %v, want %v", path, got.DCacheStats != nil, want.DCacheStats != nil)
	case got.DCacheStats != nil && *got.DCacheStats != *want.DCacheStats:
		t.Errorf("%s: DCacheStats = %+v, want %+v", path, *got.DCacheStats, *want.DCacheStats)
	}
}

// compareCounts pins the per-instruction counters: the fast path's fold of
// the block enter/exit counters and the instrumented path's direct bumps
// must agree index by index.
func compareCounts(t *testing.T, path string, want, got *Result) {
	t.Helper()
	if len(got.InstrCounts) != len(want.InstrCounts) {
		t.Fatalf("%s: %d InstrCounts, want %d", path, len(got.InstrCounts), len(want.InstrCounts))
	}
	for i := range want.InstrCounts {
		if got.InstrCounts[i] != want.InstrCounts[i] {
			t.Errorf("%s: InstrCounts[%d] = %d, want %d", path, i, got.InstrCounts[i], want.InstrCounts[i])
			break
		}
	}
	for i := range want.TakenExits {
		if got.TakenExits[i] != want.TakenExits[i] {
			t.Errorf("%s: TakenExits[%d] = %d, want %d", path, i, got.TakenExits[i], want.TakenExits[i])
			break
		}
	}
}

// checkStaticBounds is the cross-check oracle inlined into the differential
// suite: the simulated minor cycles must satisfy the static timing analyzer's
// lower and upper bounds computed from the run's own dynamic counts.
func checkStaticBounds(t *testing.T, p *isa.Program, cfg *machine.Config, r *Result) {
	t.Helper()
	a, err := statictime.Analyze(p, cfg)
	if err != nil {
		t.Fatalf("statictime: %v", err)
	}
	lo := a.LowerBound(r.InstrCounts, r.TakenExits)
	hi := a.UpperBound(r.InstrCounts)
	if lo > r.MinorCycles || r.MinorCycles > hi {
		t.Errorf("%s: %d minor cycles outside static bounds [%d, %d]", cfg.Name, r.MinorCycles, lo, hi)
	}
}

// randomCFGProgram generates a deterministic random control-flow graph: a
// handful of basic blocks full of random integer ALU work, address-masked
// loads and stores into a small data segment, calls into a straight-line
// subroutine (jr return — mid-block entry for the block counters), and
// data-dependent conditional branches between arbitrary blocks. Termination
// is guaranteed by a fuel counter burned at every block entry; when it runs
// out the block bails to the exit, which prints every data register (so the
// differential comparison covers architectural state, not just timing).
func randomCFGProgram(rng *rand.Rand) *isa.Program {
	const (
		loData, hiData = 10, 20 // data registers the random ops touch
		rFuel          = 21
		rAddr          = 22
	)
	reg := func() isa.Reg { return isa.R(loData + rng.Intn(hiData-loData+1)) }

	b := isa.NewBuilder()
	words := make([]int64, 64)
	for i := range words {
		words[i] = rng.Int63n(1 << 24)
	}
	dataBase := b.Data(words...)

	b.Li(isa.R(rFuel), int64(150+rng.Intn(150)))
	for r := loData; r <= hiData; r++ {
		b.Li(isa.R(r), rng.Int63n(1<<20)-(1<<19))
	}
	b.Jump("b0")

	// A tiny leaf subroutine: blocks call it through jal, and the jr return
	// lands mid-stream wherever the caller sat — the case the block-entry
	// accounting must get right.
	b.Label("sub")
	b.Op(isa.OpXor, reg(), reg(), reg())
	b.Imm(isa.OpAddi, reg(), reg(), rng.Int63n(64))
	b.Ret()

	threeReg := []isa.Opcode{
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne, isa.OpMul,
	}
	immOps := []isa.Opcode{
		isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai,
	}
	condOps := []isa.Opcode{
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle, isa.OpBgt,
	}

	nBlocks := 3 + rng.Intn(6)
	for blk := 0; blk < nBlocks; blk++ {
		b.Label(fmt.Sprintf("b%d", blk))
		b.Imm(isa.OpAddi, isa.R(rFuel), isa.R(rFuel), -1)
		b.Branch(isa.OpBle, isa.R(rFuel), isa.RZero, "exit")
		for op := 2 + rng.Intn(9); op > 0; op-- {
			switch rng.Intn(6) {
			case 0:
				b.Op(threeReg[rng.Intn(len(threeReg))], reg(), reg(), reg())
			case 1:
				o := immOps[rng.Intn(len(immOps))]
				imm := rng.Int63n(1 << 16)
				if o == isa.OpSlli || o == isa.OpSrli || o == isa.OpSrai {
					imm = rng.Int63n(64)
				}
				b.Imm(o, reg(), reg(), imm)
			case 2:
				b.Li(reg(), rng.Int63n(1<<30))
			case 3:
				b.Imm(isa.OpAndi, isa.R(rAddr), reg(), 63)
				b.Load(isa.OpLw, reg(), isa.R(rAddr), dataBase)
			case 4:
				b.Imm(isa.OpAndi, isa.R(rAddr), reg(), 63)
				b.Store(isa.OpSw, reg(), isa.R(rAddr), dataBase)
			case 5:
				b.Op1(isa.OpMov, reg(), reg())
			}
		}
		if rng.Intn(4) == 0 {
			b.Call("sub")
		}
		b.Branch(condOps[rng.Intn(len(condOps))], reg(), reg(),
			fmt.Sprintf("b%d", rng.Intn(nBlocks)))
		b.Jump(fmt.Sprintf("b%d", rng.Intn(nBlocks)))
	}

	b.Label("exit")
	for r := loData; r <= hiData; r++ {
		b.Print(isa.R(r))
	}
	b.Halt()
	return b.MustFinish()
}

// fuzzMachines is diffMachines plus the configurations whose functional
// units really bind (multiplicity below the issue width, or issue latency
// above one) — the generated programs must agree there too, since those are
// exactly the paths the predecoded fUnit flag decides to keep or skip.
func fuzzMachines() []*machine.Config {
	return append(diffMachines(),
		machine.SuperscalarWithConflicts(4),
		machine.Underpipelined(),
	)
}

// TestDifferentialRandomCFG fuzzes the block-fused engine against the
// preserved seed engine on randomized control-flow graphs: cycles, stalls,
// class counts, and printed output must be bit-identical on every machine,
// for the fast path, the shared-predecode path, and the instrumented path.
func TestDifferentialRandomCFG(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 4
	}
	cfgs := fuzzMachines()
	for seed := 0; seed < seeds; seed++ {
		p := randomCFGProgram(rand.New(rand.NewSource(int64(seed))))
		for _, cfg := range cfgs {
			t.Run(fmt.Sprintf("seed%d/%s", seed, cfg.Name), func(t *testing.T) {
				opts := Options{Machine: cfg}
				want, err := refRun(p, opts)
				if err != nil {
					t.Fatalf("reference engine: %v", err)
				}

				got, err := Run(p, opts)
				if err != nil {
					t.Fatalf("fast path: %v", err)
				}
				compareResults(t, "fast", want, got)

				code, err := Predecode(p, cfg)
				if err != nil {
					t.Fatalf("predecode: %v", err)
				}
				copts := opts
				copts.Code = code
				got, err = Run(p, copts)
				if err != nil {
					t.Fatalf("shared-code path: %v", err)
				}
				compareResults(t, "shared-code", want, got)

				iopts := opts
				iopts.OnIssue = func(int, *isa.Instr, int64, int64) {}
				got, err = Run(p, iopts)
				if err != nil {
					t.Fatalf("instrumented path: %v", err)
				}
				compareResults(t, "instrumented", want, got)

				// Counted runs: CountInstrs must not perturb timing, the
				// two paths' counters must agree, and the static bounds
				// oracle must hold for the measured cycle count.
				copts.CountInstrs = true
				fastC, err := Run(p, copts)
				if err != nil {
					t.Fatalf("counted fast path: %v", err)
				}
				compareResults(t, "counted-fast", want, fastC)
				iopts.CountInstrs = true
				instC, err := Run(p, iopts)
				if err != nil {
					t.Fatalf("counted instrumented path: %v", err)
				}
				compareResults(t, "counted-instrumented", want, instC)
				compareCounts(t, "counted", fastC, instC)
				checkStaticBounds(t, p, cfg, fastC)
			})
		}
	}
}

// TestSharedCodeConcurrent proves the immutability contract: one predecoded
// Code backing many concurrent runs (as the experiments runner does across
// sweep workers) must produce the reference result from every goroutine.
// Run under -race this also proves no engine writes the shared artifact.
func TestSharedCodeConcurrent(t *testing.T) {
	p := randomCFGProgram(rand.New(rand.NewSource(99)))
	cfg := machine.IdealSuperscalar(4)
	want, err := refRun(p, Options{Machine: cfg})
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	code, err := Predecode(p, cfg)
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}

	const workers, runs = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*runs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				got, err := Run(p, Options{Machine: cfg, Code: code})
				if err != nil {
					errs <- fmt.Errorf("shared-code run: %v", err)
					return
				}
				if got.MinorCycles != want.MinorCycles || got.Stalls != want.Stalls ||
					got.ClassCounts != want.ClassCounts {
					errs <- fmt.Errorf("shared-code run diverged: cycles %d want %d",
						got.MinorCycles, want.MinorCycles)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDifferentialEngines(t *testing.T) {
	suite := benchmarks.All()
	cfgs := diffMachines()
	if testing.Short() {
		cfgs = []*machine.Config{cfgs[0], cfgs[len(cfgs)-1]}
	}
	for _, b := range suite {
		for _, cfg := range cfgs {
			t.Run(b.Name+"/"+cfg.Name, func(t *testing.T) {
				c, err := compiler.Compile(b.Source, compiler.Options{
					Machine: cfg, Level: compiler.O4, Unroll: b.DefaultUnroll,
				})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				opts := Options{Machine: cfg}
				want, err := refRun(c.Prog, opts)
				if err != nil {
					t.Fatalf("reference engine: %v", err)
				}

				// Fast path (no caches configured means Run picks it;
				// with caches the engine is instrumented regardless).
				got, err := Run(c.Prog, opts)
				if err != nil {
					t.Fatalf("fast path: %v", err)
				}
				compareResults(t, "fast", want, got)

				// Instrumented path, forced via a no-op hook.
				iopts := opts
				iopts.OnIssue = func(int, *isa.Instr, int64, int64) {}
				got, err = Run(c.Prog, iopts)
				if err != nil {
					t.Fatalf("instrumented path: %v", err)
				}
				compareResults(t, "instrumented", want, got)

				// Static bounds oracle on the real benchmark programs.
				copts := opts
				copts.CountInstrs = true
				counted, err := Run(c.Prog, copts)
				if err != nil {
					t.Fatalf("counted run: %v", err)
				}
				compareResults(t, "counted", want, counted)
				checkStaticBounds(t, c.Prog, cfg, counted)
			})
		}
	}
}
