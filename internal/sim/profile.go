package sim

import (
	"context"
	"math"

	"ilp/internal/statictime"
)

// DefaultProfileBudget is the dynamic-instruction budget of a profiling
// pre-run: long enough that any loop branch worth specializing has executed
// well past the profile's evidence threshold, short enough (sub-millisecond
// at the engine's throughput) to disappear into the compile step it rides
// on.
const DefaultProfileBudget = 1 << 18

// ProfileRun executes an instruction-budgeted pre-run of code on the fast
// path and folds the engine's block entry/exit counters into an execution
// profile for trace specialization (Code.Specialize). The run is abandoned
// cleanly at the budget — a program still mid-flight yields a truncated but
// valid profile; the open run's tail can overcount a pc by at most one,
// noise at the evidence threshold. The counts are architectural, so the
// profile is valid for every machine sharing the program, whatever their
// timing. memWords sizes the run's memory (0 means DefaultMemWords);
// budget ≤ 0 means DefaultProfileBudget.
func ProfileRun(ctx context.Context, code *Code, memWords int, budget int64) (*statictime.Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if budget <= 0 {
		budget = DefaultProfileBudget
	}
	e := enginePool.Get().(*Engine)
	defer func() {
		e.cfg, e.prog, e.dec, e.scheds = nil, nil, nil, nil
		e.opts = Options{}
		enginePool.Put(e)
	}()
	opts := Options{Machine: code.cfg, MemWords: memWords, Code: code}
	if err := e.Reset(code.prog, opts); err != nil {
		return nil, err
	}
	// runFast directly, not RunIntoCtx: the budget is a stop point, not an
	// instruction limit, so hitting it yields state back without error. Any
	// caches the machine carries are irrelevant here — the architectural
	// path, and with it the block counters, is identical on every engine
	// path.
	if err := e.runFast(ctx, math.MaxInt64, budget); err != nil {
		return nil, err
	}
	n := len(e.dec) - 1 // drop the sentinel
	pr := &statictime.Profile{
		Count: make([]int64, n),
		Taken: make([]int64, n),
	}
	// The same prefix fold as fillResult's fast path: the number of open
	// contiguous execution runs covering pc is its execution count, and
	// exit[pc] is its taken-transfer count.
	var live int64
	for i := 0; i < n; i++ {
		live += e.enter[i]
		pr.Count[i] = live
		live -= e.exit[i]
	}
	copy(pr.Taken, e.exit[:n])
	return pr, nil
}
