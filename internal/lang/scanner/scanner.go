// Package scanner tokenizes TL source text.
package scanner

import (
	"fmt"

	"ilp/internal/lang/token"
)

// Error is a lexical error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Scanner produces tokens from a source buffer.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
	errs []*Error
}

// New returns a scanner over src.
func New(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (s *Scanner) Errors() []*Error { return s.errs }

func (s *Scanner) errorf(pos token.Pos, format string, args ...any) {
	s.errs = append(s.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (s *Scanner) peek() byte {
	if s.off < len(s.src) {
		return s.src[s.off]
	}
	return 0
}

func (s *Scanner) peek2() byte {
	if s.off+1 < len(s.src) {
		return s.src[s.off+1]
	}
	return 0
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) pos() token.Pos { return token.Pos{Line: s.line, Col: s.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// skipSpace consumes whitespace and comments (// to end of line, /* */).
func (s *Scanner) skipSpace() {
	for s.off < len(s.src) {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			start := s.pos()
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				s.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (s *Scanner) Next() token.Token {
	s.skipSpace()
	pos := s.pos()
	if s.off >= len(s.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := s.advance()

	switch {
	case isLetter(c):
		start := s.off - 1
		for s.off < len(s.src) && (isLetter(s.peek()) || isDigit(s.peek())) {
			s.advance()
		}
		text := s.src[start:s.off]
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Pos: pos, Text: text}
		}
		return token.Token{Kind: token.IDENT, Pos: pos, Text: text}

	case isDigit(c):
		start := s.off - 1
		kind := token.INTLIT
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
		if s.peek() == '.' && isDigit(s.peek2()) {
			kind = token.REALLIT
			s.advance()
			for s.off < len(s.src) && isDigit(s.peek()) {
				s.advance()
			}
		}
		if s.peek() == 'e' || s.peek() == 'E' {
			// Exponent: e[+-]?digits.
			save := s.off
			s.advance()
			if s.peek() == '+' || s.peek() == '-' {
				s.advance()
			}
			if isDigit(s.peek()) {
				kind = token.REALLIT
				for s.off < len(s.src) && isDigit(s.peek()) {
					s.advance()
				}
			} else {
				s.off = save // not an exponent; restore (col drift is fine: next token is illegal anyway)
			}
		}
		return token.Token{Kind: kind, Pos: pos, Text: s.src[start:s.off]}
	}

	two := func(next byte, yes, no token.Kind) token.Token {
		if s.peek() == next {
			s.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}

	switch c {
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}
	case ';':
		return token.Token{Kind: token.Semicolon, Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Pos: pos}
	case '+':
		return token.Token{Kind: token.Plus, Pos: pos}
	case '-':
		return token.Token{Kind: token.Minus, Pos: pos}
	case '*':
		return token.Token{Kind: token.Star, Pos: pos}
	case '/':
		return token.Token{Kind: token.Slash, Pos: pos}
	case '%':
		return token.Token{Kind: token.Percent, Pos: pos}
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Ne, token.Not)
	case '<':
		return two('=', token.Le, token.Lt)
	case '>':
		return two('=', token.Ge, token.Gt)
	case '&':
		if s.peek() == '&' {
			s.advance()
			return token.Token{Kind: token.AndAnd, Pos: pos}
		}
	case '|':
		if s.peek() == '|' {
			s.advance()
			return token.Token{Kind: token.OrOr, Pos: pos}
		}
	}
	s.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: string(c)}
}

// ScanAll tokenizes the whole buffer (excluding EOF), for tests.
func ScanAll(src string) ([]token.Token, []*Error) {
	s := New(src)
	var out []token.Token
	for {
		t := s.Next()
		if t.Kind == token.EOF {
			break
		}
		out = append(out, t)
	}
	return out, s.Errors()
}
