package scanner

import (
	"testing"

	"ilp/internal/lang/token"
)

func kinds(ts []token.Token) []token.Kind {
	out := make([]token.Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	src := `var x: int = 42; x = x + 3.5 * 1e3; // comment
if x <= 10 && y != 2 { print(x); } /* block
comment */ while !done || a >= b {}`
	ts, errs := ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.KwVar, token.IDENT, token.Colon, token.KwInt, token.Assign, token.INTLIT, token.Semicolon,
		token.IDENT, token.Assign, token.IDENT, token.Plus, token.REALLIT, token.Star, token.REALLIT, token.Semicolon,
		token.KwIf, token.IDENT, token.Le, token.INTLIT, token.AndAnd, token.IDENT, token.Ne, token.INTLIT,
		token.LBrace, token.KwPrint, token.LParen, token.IDENT, token.RParen, token.Semicolon, token.RBrace,
		token.KwWhile, token.Not, token.IDENT, token.OrOr, token.IDENT, token.Ge, token.IDENT, token.LBrace, token.RBrace,
	}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumberForms(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"0", token.INTLIT},
		{"1234", token.INTLIT},
		{"3.25", token.REALLIT},
		{"1e6", token.REALLIT},
		{"2.5e-3", token.REALLIT},
		{"7E+2", token.REALLIT},
	}
	for _, c := range cases {
		ts, errs := ScanAll(c.src)
		if len(errs) != 0 || len(ts) != 1 || ts[0].Kind != c.kind || ts[0].Text != c.src {
			t.Errorf("scan %q = %v (errs %v), want one %v", c.src, ts, errs, c.kind)
		}
	}
}

func TestPositions(t *testing.T) {
	ts, _ := ScanAll("a\n  bb\n")
	if ts[0].Pos.Line != 1 || ts[0].Pos.Col != 1 {
		t.Errorf("a at %v", ts[0].Pos)
	}
	if ts[1].Pos.Line != 2 || ts[1].Pos.Col != 3 {
		t.Errorf("bb at %v", ts[1].Pos)
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	ts, _ := ScanAll("for forx xfor to toto")
	want := []token.Kind{token.KwFor, token.IDENT, token.IDENT, token.KwTo, token.IDENT}
	for i, k := range want {
		if ts[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, ts[i].Kind, k)
		}
	}
}

func TestIllegalCharacter(t *testing.T) {
	ts, errs := ScanAll("a # b")
	if len(errs) == 0 {
		t.Error("expected error for #")
	}
	found := false
	for _, tok := range ts {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected ILLEGAL token")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("a /* never closed")
	if len(errs) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestLoneAmpersand(t *testing.T) {
	_, errs := ScanAll("a & b")
	if len(errs) == 0 {
		t.Error("expected error for single &")
	}
}
