package interp

import (
	"testing"

	"ilp/internal/benchmarks"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
)

// BenchmarkInterpreterSuite measures reference-interpreter speed over the
// eight benchmarks (it is the oracle for every differential test).
func BenchmarkInterpreterSuite(b *testing.B) {
	type ready struct {
		name string
		info *sem.Info
	}
	var suite []ready
	for _, bm := range benchmarks.All() {
		p, err := parser.Parse(bm.Source)
		if err != nil {
			b.Fatal(err)
		}
		info, err := sem.Analyze(p)
		if err != nil {
			b.Fatal(err)
		}
		suite = append(suite, ready{bm.Name, info})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range suite {
			if _, err := Run(r.info); err != nil {
				b.Fatal(err)
			}
		}
	}
}
