// Package interp is a reference interpreter for TL. It is the semantic
// oracle of the reproduction: a compiled program simulated on any machine
// configuration must print exactly what the interpreter prints, because
// machine timing never changes meaning. The differential tests in package
// compiler rely on this.
package interp

import (
	"fmt"
	"math"

	"ilp/internal/isa"
	"ilp/internal/lang/ast"
	"ilp/internal/lang/sem"
	"ilp/internal/lang/token"
)

// DefaultMaxSteps bounds execution to catch runaway programs.
const DefaultMaxSteps = 1 << 32

// Run analyzes nothing — it expects an already-checked program — and
// executes it, returning the printed output.
func Run(info *sem.Info) ([]isa.Value, error) {
	return RunLimited(info, DefaultMaxSteps)
}

// RunLimited is Run with an explicit statement budget.
func RunLimited(info *sem.Info, maxSteps int64) ([]isa.Value, error) {
	it := &interp{info: info, maxSteps: maxSteps}
	if err := it.init(); err != nil {
		return nil, err
	}
	if _, err := it.call(info.Main, nil); err != nil {
		return nil, err
	}
	return it.output, nil
}

type interp struct {
	info     *sem.Info
	globals  []int64
	arrays   [][]int64
	output   []isa.Value
	steps    int64
	maxSteps int64
	// declSym caches VarDecl -> Symbol lookups (symbols are unique per
	// declaration).
	declSym map[*ast.VarDecl]*ast.Symbol
}

type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlReturn
)

type frame struct {
	fi     *sem.FuncInfo
	params []int64
	locals []int64
	ret    int64
}

func (it *interp) init() error {
	it.globals = make([]int64, len(it.info.Globals))
	it.arrays = make([][]int64, len(it.info.Arrays))
	for _, sym := range it.info.Arrays {
		it.arrays[sym.Index] = make([]int64, sym.Size())
	}
	for _, sym := range it.info.Globals {
		d := sym.Decl.(*ast.VarDecl)
		if d.Init != nil {
			v, err := constValue(d.Init)
			if err != nil {
				return err
			}
			it.globals[sym.Index] = v
		}
	}
	return nil
}

func constValue(e ast.Expr) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, nil
	case *ast.RealLit:
		return int64(math.Float64bits(x.Value)), nil
	case *ast.BoolLit:
		if x.Value {
			return 1, nil
		}
		return 0, nil
	case *ast.UnOp:
		v, err := constValue(x.X)
		if err != nil {
			return 0, err
		}
		if x.X.Type() == ast.Real {
			return int64(math.Float64bits(-math.Float64frombits(uint64(v)))), nil
		}
		return -v, nil
	}
	return 0, fmt.Errorf("interp: non-constant global initializer")
}

func (it *interp) runtimeErr(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("interp: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (it *interp) call(fi *sem.FuncInfo, args []int64) (int64, error) {
	f := &frame{fi: fi, params: args, locals: make([]int64, len(fi.Locals))}
	c, err := it.execBlock(f, fi.Decl.Body)
	if err != nil {
		return 0, err
	}
	_ = c
	return f.ret, nil
}

func (it *interp) execBlock(f *frame, b *ast.Block) (ctrl, error) {
	for _, s := range b.Stmts {
		c, err := it.execStmt(f, s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (it *interp) step(pos token.Pos) error {
	it.steps++
	if it.steps > it.maxSteps {
		return it.runtimeErr(pos, "step limit exceeded (infinite loop?)")
	}
	return nil
}

func (it *interp) execStmt(f *frame, s ast.Stmt) (ctrl, error) {
	if err := it.step(s.Pos()); err != nil {
		return ctrlNone, err
	}
	switch st := s.(type) {
	case *ast.Block:
		return it.execBlock(f, st)

	case *ast.LocalDecl:
		if st.Decl.Init != nil {
			v, err := it.eval(f, st.Decl.Init)
			if err != nil {
				return ctrlNone, err
			}
			sym := it.localSym(f, st.Decl)
			f.locals[sym.Index] = v
		}
		return ctrlNone, nil

	case *ast.Assign:
		v, err := it.eval(f, st.RHS)
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, it.store(f, st.LHS, v)

	case *ast.If:
		c, err := it.eval(f, st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if c != 0 {
			return it.execBlock(f, st.Then)
		}
		if st.Else != nil {
			return it.execStmt(f, st.Else)
		}
		return ctrlNone, nil

	case *ast.While:
		for {
			c, err := it.eval(f, st.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if c == 0 {
				return ctrlNone, nil
			}
			cc, err := it.execBlock(f, st.Body)
			if err != nil {
				return ctrlNone, err
			}
			if cc == ctrlReturn {
				return cc, nil
			}
			if cc == ctrlBreak {
				return ctrlNone, nil
			}
			if err := it.step(st.WhilePos); err != nil {
				return ctrlNone, err
			}
		}

	case *ast.For:
		lo, err := it.eval(f, st.Lo)
		if err != nil {
			return ctrlNone, err
		}
		hi, err := it.eval(f, st.Hi)
		if err != nil {
			return ctrlNone, err
		}
		if err := it.storeVar(f, st.Var.Sym, lo); err != nil {
			return ctrlNone, err
		}
		for {
			i := it.loadVar(f, st.Var.Sym)
			if i > hi {
				return ctrlNone, nil
			}
			cc, err := it.execBlock(f, st.Body)
			if err != nil {
				return ctrlNone, err
			}
			if cc == ctrlReturn {
				return cc, nil
			}
			if cc == ctrlBreak {
				return ctrlNone, nil
			}
			// Re-read: the body may have assigned the loop variable.
			if err := it.storeVar(f, st.Var.Sym, it.loadVar(f, st.Var.Sym)+st.Step); err != nil {
				return ctrlNone, err
			}
			if err := it.step(st.ForPos); err != nil {
				return ctrlNone, err
			}
		}

	case *ast.Return:
		if st.Value != nil {
			v, err := it.eval(f, st.Value)
			if err != nil {
				return ctrlNone, err
			}
			f.ret = v
		}
		return ctrlReturn, nil

	case *ast.Break:
		return ctrlBreak, nil

	case *ast.Print:
		v, err := it.eval(f, st.Value)
		if err != nil {
			return ctrlNone, err
		}
		if st.Value.Type() == ast.Real {
			it.output = append(it.output, isa.FloatValue(math.Float64frombits(uint64(v))))
		} else {
			it.output = append(it.output, isa.IntValue(v))
		}
		return ctrlNone, nil

	case *ast.ExprStmt:
		_, err := it.eval(f, st.X)
		return ctrlNone, err
	}
	return ctrlNone, it.runtimeErr(s.Pos(), "unhandled statement %T", s)
}

func (it *interp) localSym(f *frame, d *ast.VarDecl) *ast.Symbol {
	if it.declSym == nil {
		it.declSym = map[*ast.VarDecl]*ast.Symbol{}
	}
	if sym, ok := it.declSym[d]; ok {
		return sym
	}
	for _, sym := range f.fi.Locals {
		if sym.Decl == d {
			it.declSym[d] = sym
			return sym
		}
	}
	panic(fmt.Sprintf("interp: local %q has no symbol", d.Name))
}

func (it *interp) loadVar(f *frame, sym *ast.Symbol) int64 {
	switch sym.Kind {
	case ast.SymGlobal:
		return it.globals[sym.Index]
	case ast.SymParam:
		return f.params[sym.Index]
	default:
		return f.locals[sym.Index]
	}
}

func (it *interp) storeVar(f *frame, sym *ast.Symbol, v int64) error {
	switch sym.Kind {
	case ast.SymGlobal:
		it.globals[sym.Index] = v
	case ast.SymParam:
		f.params[sym.Index] = v
	case ast.SymLocal:
		f.locals[sym.Index] = v
	default:
		return fmt.Errorf("interp: cannot store to %q", sym.Name)
	}
	return nil
}

func (it *interp) arrayOffset(f *frame, x *ast.IndexRef) (int, error) {
	off := 0
	for d, ie := range x.Index {
		iv, err := it.eval(f, ie)
		if err != nil {
			return 0, err
		}
		ext := x.Sym.Dims[d]
		if iv < 0 || iv >= int64(ext) {
			return 0, it.runtimeErr(ie.Pos(), "index %d out of range [0,%d) for %q dimension %d",
				iv, ext, x.Name, d)
		}
		off = off*ext + int(iv)
	}
	return off, nil
}

func (it *interp) store(f *frame, lhs ast.Expr, v int64) error {
	switch x := lhs.(type) {
	case *ast.VarRef:
		return it.storeVar(f, x.Sym, v)
	case *ast.IndexRef:
		off, err := it.arrayOffset(f, x)
		if err != nil {
			return err
		}
		it.arrays[x.Sym.Index][off] = v
		return nil
	}
	return fmt.Errorf("interp: invalid assignment target %T", lhs)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (it *interp) eval(f *frame, e ast.Expr) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, nil
	case *ast.RealLit:
		return int64(math.Float64bits(x.Value)), nil
	case *ast.BoolLit:
		return b2i(x.Value), nil

	case *ast.VarRef:
		return it.loadVar(f, x.Sym), nil

	case *ast.IndexRef:
		off, err := it.arrayOffset(f, x)
		if err != nil {
			return 0, err
		}
		return it.arrays[x.Sym.Index][off], nil

	case *ast.UnOp:
		v, err := it.eval(f, x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.Minus:
			if x.Type() == ast.Real {
				return fbits(-ffrom(v)), nil
			}
			return -v, nil
		case token.Not:
			return b2i(v == 0), nil
		}
		return 0, it.runtimeErr(x.OpPos, "bad unary op")

	case *ast.BinOp:
		// Short-circuit operators first.
		if x.Op == token.AndAnd || x.Op == token.OrOr {
			l, err := it.eval(f, x.X)
			if err != nil {
				return 0, err
			}
			if x.Op == token.AndAnd && l == 0 {
				return 0, nil
			}
			if x.Op == token.OrOr && l != 0 {
				return 1, nil
			}
			r, err := it.eval(f, x.Y)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		}
		l, err := it.eval(f, x.X)
		if err != nil {
			return 0, err
		}
		r, err := it.eval(f, x.Y)
		if err != nil {
			return 0, err
		}
		if x.X.Type() == ast.Real {
			a, b := ffrom(l), ffrom(r)
			switch x.Op {
			case token.Plus:
				return fbits(a + b), nil
			case token.Minus:
				return fbits(a - b), nil
			case token.Star:
				return fbits(a * b), nil
			case token.Slash:
				return fbits(a / b), nil
			case token.Eq:
				return b2i(a == b), nil
			case token.Ne:
				return b2i(a != b), nil
			case token.Lt:
				return b2i(a < b), nil
			case token.Le:
				return b2i(a <= b), nil
			case token.Gt:
				return b2i(a > b), nil
			case token.Ge:
				return b2i(a >= b), nil
			}
			return 0, it.runtimeErr(x.OpPos, "bad real op %s", x.Op)
		}
		switch x.Op {
		case token.Plus:
			return l + r, nil
		case token.Minus:
			return l - r, nil
		case token.Star:
			return l * r, nil
		case token.Slash:
			if r == 0 {
				return 0, it.runtimeErr(x.OpPos, "integer division by zero")
			}
			return l / r, nil
		case token.Percent:
			if r == 0 {
				return 0, it.runtimeErr(x.OpPos, "integer remainder by zero")
			}
			return l % r, nil
		case token.Eq:
			return b2i(l == r), nil
		case token.Ne:
			return b2i(l != r), nil
		case token.Lt:
			return b2i(l < r), nil
		case token.Le:
			return b2i(l <= r), nil
		case token.Gt:
			return b2i(l > r), nil
		case token.Ge:
			return b2i(l >= r), nil
		}
		return 0, it.runtimeErr(x.OpPos, "bad int op %s", x.Op)

	case *ast.Call:
		if x.Builtin != ast.NotBuiltin {
			v, err := it.eval(f, x.Args[0])
			if err != nil {
				return 0, err
			}
			switch x.Builtin {
			case ast.BSqrt:
				return fbits(math.Sqrt(ffrom(v))), nil
			case ast.BSin:
				return fbits(math.Sin(ffrom(v))), nil
			case ast.BCos:
				return fbits(math.Cos(ffrom(v))), nil
			case ast.BAtan:
				return fbits(math.Atan(ffrom(v))), nil
			case ast.BExp:
				return fbits(math.Exp(ffrom(v))), nil
			case ast.BLog:
				return fbits(math.Log(ffrom(v))), nil
			case ast.BAbs:
				return fbits(math.Abs(ffrom(v))), nil
			case ast.BIAbs:
				if v < 0 {
					return -v, nil
				}
				return v, nil
			case ast.BFloat:
				return fbits(float64(v)), nil
			case ast.BTrunc:
				fv := ffrom(v)
				if math.IsNaN(fv) || fv >= 9.3e18 || fv <= -9.3e18 {
					return 0, it.runtimeErr(x.NamePos, "float-to-int overflow (%g)", fv)
				}
				return int64(fv), nil
			}
			return 0, it.runtimeErr(x.NamePos, "bad builtin")
		}
		fi := it.info.Funcs[x.Name]
		args := make([]int64, len(x.Args))
		for i, ae := range x.Args {
			v, err := it.eval(f, ae)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return it.call(fi, args)
	}
	return 0, it.runtimeErr(e.Pos(), "unhandled expression %T", e)
}

func ffrom(v int64) float64 { return math.Float64frombits(uint64(v)) }
func fbits(f float64) int64 { return int64(math.Float64bits(f)) }
