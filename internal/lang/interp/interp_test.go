package interp

import (
	"strings"
	"testing"

	"ilp/internal/isa"
	"ilp/internal/lang/parser"
	"ilp/internal/lang/sem"
)

func run(t *testing.T, src string) ([]isa.Value, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return Run(info)
}

func mustRun(t *testing.T, src string) []isa.Value {
	t.Helper()
	out, err := run(t, src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func wantInts(t *testing.T, got []isa.Value, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output %v, want %v", got, want)
	}
	for i, w := range want {
		if !got[i].Equal(isa.IntValue(w)) {
			t.Errorf("output[%d] = %v, want %d", i, got[i], w)
		}
	}
}

func TestArithmeticAndControl(t *testing.T) {
	out := mustRun(t, `
func main() {
	var i, s: int;
	s = 0;
	for i = 1 to 10 { s = s + i; }
	print(s);
	s = 0;
	var j: int;
	j = 10;
	while j > 0 { s = s + 2; j = j - 1; }
	print(s);
	if s == 20 { print(1); } else { print(0); }
	print(7 / 2);
	print(7 % 2);
	print(-7 / 2);
}
`)
	wantInts(t, out, 55, 20, 1, 3, 1, -3)
}

func TestForStep(t *testing.T) {
	out := mustRun(t, `
func main() {
	var i, s: int;
	s = 0;
	for i = 0 to 10 by 3 { s = s * 10 + i; }
	print(s);
	print(i);
}
`)
	// Iterations: 0,3,6,9 -> s = 369 with leading 0; i ends at 12.
	wantInts(t, out, 369, 12)
}

func TestBreakAndNestedLoops(t *testing.T) {
	out := mustRun(t, `
func main() {
	var i, j, c: int;
	c = 0;
	for i = 0 to 4 {
		for j = 0 to 4 {
			if j == 2 { break; }
			c = c + 1;
		}
	}
	print(c);
}
`)
	wantInts(t, out, 10)
}

func TestRecursionFibonacci(t *testing.T) {
	out := mustRun(t, `
func fib(n: int): int {
	if n < 2 { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(15)); }
`)
	wantInts(t, out, 610)
}

func TestGlobalsAndArrays(t *testing.T) {
	out := mustRun(t, `
var total: int = 100;
var grid[3, 3]: int;
func fill() {
	var i, j: int;
	for i = 0 to 2 {
		for j = 0 to 2 { grid[i, j] = i * 3 + j; }
	}
}
func main() {
	fill();
	var i, j: int;
	for i = 0 to 2 {
		for j = 0 to 2 { total = total + grid[i, j]; }
	}
	print(total);
	print(grid[2, 1]);
}
`)
	wantInts(t, out, 136, 7)
}

func TestRealArithmetic(t *testing.T) {
	out := mustRun(t, `
func main() {
	var x: real;
	x = 1.5 * 4.0 - 2.0;  // 4
	print(sqrt(x));
	print(float(3) / 2.0);
	print(trunc(3.99));
	print(abs(-2.5));
	print(iabs(-7));
	var e: real;
	e = exp(log(5.0));
	if e > 4.999 && e < 5.001 { print(1); } else { print(0); }
}
`)
	if !out[0].Equal(isa.FloatValue(2.0)) {
		t.Errorf("sqrt(4) = %v", out[0])
	}
	if !out[1].Equal(isa.FloatValue(1.5)) {
		t.Errorf("3/2 = %v", out[1])
	}
	if !out[2].Equal(isa.IntValue(3)) {
		t.Errorf("trunc = %v", out[2])
	}
	if !out[3].Equal(isa.FloatValue(2.5)) {
		t.Errorf("abs = %v", out[3])
	}
	if !out[4].Equal(isa.IntValue(7)) {
		t.Errorf("iabs = %v", out[4])
	}
	if !out[5].Equal(isa.IntValue(1)) {
		t.Errorf("exp(log(5)) check = %v", out[5])
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not run when the left is false:
	// here it would divide by zero.
	out := mustRun(t, `
var zero: int;
func boom(): bool { return 1 / zero == 0; }
func main() {
	var ok: bool;
	ok = false && boom();
	if !ok { print(1); }
	ok = true || boom();
	if ok { print(2); }
}
`)
	wantInts(t, out, 1, 2)
}

func TestGlobalInitializers(t *testing.T) {
	out := mustRun(t, `
var a: int = -5;
var b: real = 2.5;
var c: bool = true;
func main() {
	print(a);
	print(b);
	if c { print(1); }
}
`)
	if !out[0].Equal(isa.IntValue(-5)) || !out[1].Equal(isa.FloatValue(2.5)) || !out[2].Equal(isa.IntValue(1)) {
		t.Errorf("output %v", out)
	}
}

func TestLocalInitializers(t *testing.T) {
	out := mustRun(t, `
var g: int = 10;
func main() {
	var x: int = g * 2;
	var y: int = x + 1;
	print(y);
}
`)
	wantInts(t, out, 21)
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`var z: int; func main() { print(1 / z); }`, "division by zero"},
		{`var z: int; func main() { print(1 % z); }`, "remainder by zero"},
		{`var a[3]: int; var i: int = 5; func main() { a[i] = 1; }`, "out of range"},
		{`var a[3]: int; var i: int = -1; func main() { print(a[i]); }`, "out of range"},
		{`func main() { print(trunc(1e30)); }`, "overflow"},
		{`func main() { while true {} }`, "step limit"},
	}
	for _, c := range cases {
		p, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("%q: parse: %v", c.src, err)
		}
		info, err := sem.Analyze(p)
		if err != nil {
			t.Fatalf("%q: sem: %v", c.src, err)
		}
		_, err = RunLimited(info, 100000)
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%q: error %v, want mention of %q", c.src, err, c.substr)
		}
	}
}

func TestParamsAreValueCopies(t *testing.T) {
	out := mustRun(t, `
func bump(x: int): int { x = x + 1; return x; }
func main() {
	var v: int = 5;
	print(bump(v));
	print(v);
}
`)
	wantInts(t, out, 6, 5)
}

func TestMultiDimIndexOrder(t *testing.T) {
	// Row-major: m[i, j] at offset i*cols + j.
	out := mustRun(t, `
var m[2, 3]: int;
func main() {
	m[1, 2] = 42;
	m[0, 0] = 7;
	print(m[1, 2]);
	print(m[0, 0]);
	m[1, 0] = 9;
	print(m[1, 0] + m[1, 2]);
}
`)
	wantInts(t, out, 42, 7, 51)
}
