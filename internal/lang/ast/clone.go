package ast

import "fmt"

// CloneExpr deep-copies an expression, preserving semantic annotations
// (types and resolved symbols). The unroller uses it to duplicate loop
// bodies; cloned references share the original symbols, so no re-analysis
// is needed.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *x
		return &c
	case *RealLit:
		c := *x
		return &c
	case *BoolLit:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *IndexRef:
		c := *x
		c.Index = make([]Expr, len(x.Index))
		for i, ie := range x.Index {
			c.Index[i] = CloneExpr(ie)
		}
		return &c
	case *UnOp:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	case *BinOp:
		c := *x
		c.X = CloneExpr(x.X)
		c.Y = CloneExpr(x.Y)
		return &c
	case *Call:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	}
	panic(fmt.Sprintf("ast: CloneExpr: unhandled %T", e))
}

// CloneStmt deep-copies a statement tree, preserving annotations.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *Block:
		return CloneBlock(x)
	case *LocalDecl:
		c := *x
		d := *x.Decl
		d.Init = CloneExpr(x.Decl.Init)
		c.Decl = &d
		return &c
	case *Assign:
		c := *x
		c.LHS = CloneExpr(x.LHS)
		c.RHS = CloneExpr(x.RHS)
		return &c
	case *If:
		c := *x
		c.Cond = CloneExpr(x.Cond)
		c.Then = CloneBlock(x.Then)
		c.Else = CloneStmt(x.Else)
		return &c
	case *While:
		c := *x
		c.Cond = CloneExpr(x.Cond)
		c.Body = CloneBlock(x.Body)
		return &c
	case *For:
		c := *x
		c.Var = CloneExpr(x.Var).(*VarRef)
		c.Lo = CloneExpr(x.Lo)
		c.Hi = CloneExpr(x.Hi)
		c.Body = CloneBlock(x.Body)
		return &c
	case *Return:
		c := *x
		c.Value = CloneExpr(x.Value)
		return &c
	case *Break:
		c := *x
		return &c
	case *Print:
		c := *x
		c.Value = CloneExpr(x.Value)
		return &c
	case *ExprStmt:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	}
	panic(fmt.Sprintf("ast: CloneStmt: unhandled %T", s))
}

// CloneBlock deep-copies a block.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	c := &Block{LBrace: b.LBrace}
	c.Stmts = make([]Stmt, len(b.Stmts))
	for i, s := range b.Stmts {
		c.Stmts[i] = CloneStmt(s)
	}
	return c
}

// CloneDeclNote: LocalDecl cloning above copies the VarDecl node itself.
// The clone still points at the same *Symbol via the analyzer's maps keyed
// by the original declaration, so the unroller must not clone statements
// containing LocalDecls it intends to duplicate (a duplicated declaration
// would redeclare the variable). The unroller therefore refuses loop bodies
// with declarations.
var _ = fmt.Sprintf
