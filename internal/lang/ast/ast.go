// Package ast defines the abstract syntax tree of TL. Nodes carry the
// fields the semantic analyzer fills in (types on expressions, resolved
// symbols on references), so later phases never re-resolve names.
package ast

import (
	"ilp/internal/lang/token"
)

// Type is a TL type.
type Type uint8

// TL types. Void is the "type" of procedures without a result.
const (
	Invalid Type = iota
	Int
	Real
	Bool
	Void
)

// String returns the source-level name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Real:
		return "real"
	case Bool:
		return "bool"
	case Void:
		return "void"
	}
	return "invalid"
}

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---- Declarations ----

// Program is a whole source file.
type Program struct {
	Globals []*VarDecl  // scalars and arrays, in declaration order
	Funcs   []*FuncDecl // in declaration order
}

// Pos returns the program start.
func (p *Program) Pos() token.Pos { return token.Pos{Line: 1, Col: 1} }

// VarDecl declares a scalar variable or (at file scope) an array.
type VarDecl struct {
	NamePos token.Pos
	Name    string
	Type    Type
	// Dims is non-empty for arrays: constant extents per dimension.
	Dims []int
	// Init is an optional scalar initializer (constant expression).
	Init Expr
	// Global is set by the parser for file-scope declarations.
	Global bool
}

// Pos returns the declaration position.
func (d *VarDecl) Pos() token.Pos { return d.NamePos }

// IsArray reports whether the declaration is an array.
func (d *VarDecl) IsArray() bool { return len(d.Dims) > 0 }

// Size returns the total element count of an array (1 for scalars).
func (d *VarDecl) Size() int {
	n := 1
	for _, e := range d.Dims {
		n *= e
	}
	return n
}

// Param is a function parameter (scalars only).
type Param struct {
	NamePos token.Pos
	Name    string
	Type    Type
}

// FuncDecl declares a function.
type FuncDecl struct {
	NamePos token.Pos
	Name    string
	Params  []Param
	Result  Type // Void for procedures
	Body    *Block
}

// Pos returns the declaration position.
func (d *FuncDecl) Pos() token.Pos { return d.NamePos }

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a braced statement list.
type Block struct {
	LBrace token.Pos
	Stmts  []Stmt
}

// Pos returns the opening brace.
func (b *Block) Pos() token.Pos { return b.LBrace }
func (b *Block) stmt()          {}

// LocalDecl declares function-local scalars.
type LocalDecl struct {
	Decl *VarDecl
}

// Pos returns the declaration position.
func (s *LocalDecl) Pos() token.Pos { return s.Decl.NamePos }
func (s *LocalDecl) stmt()          {}

// Assign is "lhs = rhs;". LHS is a variable or array element.
type Assign struct {
	LHS Expr // *VarRef or *IndexRef
	RHS Expr
}

// Pos returns the LHS position.
func (s *Assign) Pos() token.Pos { return s.LHS.Pos() }
func (s *Assign) stmt()          {}

// If is a conditional with an optional else (which may be another If).
type If struct {
	IfPos token.Pos
	Cond  Expr
	Then  *Block
	Else  Stmt // *Block, *If, or nil
}

// Pos returns the `if` keyword position.
func (s *If) Pos() token.Pos { return s.IfPos }
func (s *If) stmt()          {}

// While is a pre-tested loop.
type While struct {
	WhilePos token.Pos
	Cond     Expr
	Body     *Block
}

// Pos returns the `while` keyword position.
func (s *While) Pos() token.Pos { return s.WhilePos }
func (s *While) stmt()          {}

// For is the counted loop "for i = lo to hi [by step] { ... }". The loop
// variable must be a previously declared local int; bounds are evaluated
// once; the range is inclusive; step is a positive constant. These are the
// loops the unroller targets.
type For struct {
	ForPos token.Pos
	Var    *VarRef
	Lo, Hi Expr
	Step   int64 // constant, >= 1
	Body   *Block

	// VarMutated is set by the semantic analyzer if the body assigns the
	// loop variable (which forbids unrolling).
	VarMutated bool
	// HasBreak is set if the body contains a break for this loop.
	HasBreak bool
}

// Pos returns the `for` keyword position.
func (s *For) Pos() token.Pos { return s.ForPos }
func (s *For) stmt()          {}

// Return exits the enclosing function, with a value iff it has a result.
type Return struct {
	RetPos token.Pos
	Value  Expr // nil for procedures
}

// Pos returns the `return` keyword position.
func (s *Return) Pos() token.Pos { return s.RetPos }
func (s *Return) stmt()          {}

// Break exits the innermost loop.
type Break struct {
	BreakPos token.Pos
}

// Pos returns the `break` keyword position.
func (s *Break) Pos() token.Pos { return s.BreakPos }
func (s *Break) stmt()          {}

// Print emits a value to the program's output stream.
type Print struct {
	PrintPos token.Pos
	Value    Expr
}

// Pos returns the `print` keyword position.
func (s *Print) Pos() token.Pos { return s.PrintPos }
func (s *Print) stmt()          {}

// ExprStmt is a call used as a statement.
type ExprStmt struct {
	X Expr // *Call
}

// Pos returns the expression position.
func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *ExprStmt) stmt()          {}

// ---- Expressions ----

// Expr is implemented by all expression nodes. Type() is valid after
// semantic analysis.
type Expr interface {
	Node
	Type() Type
	expr()
}

// typ is embedded in expression nodes to hold the checked type.
type typ struct{ T Type }

// Type returns the checked type of the expression.
func (t *typ) Type() Type { return t.T }

// SetType records the checked type (used by the semantic analyzer).
func (t *typ) SetType(x Type) { t.T = x }

// IntLit is an integer literal.
type IntLit struct {
	typ
	LitPos token.Pos
	Value  int64
}

// Pos returns the literal position.
func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) expr()          {}

// RealLit is a real literal.
type RealLit struct {
	typ
	LitPos token.Pos
	Value  float64
}

// Pos returns the literal position.
func (e *RealLit) Pos() token.Pos { return e.LitPos }
func (e *RealLit) expr()          {}

// BoolLit is true or false.
type BoolLit struct {
	typ
	LitPos token.Pos
	Value  bool
}

// Pos returns the literal position.
func (e *BoolLit) Pos() token.Pos { return e.LitPos }
func (e *BoolLit) expr()          {}

// VarRef names a scalar variable or parameter.
type VarRef struct {
	typ
	NamePos token.Pos
	Name    string
	// Sym is resolved by the semantic analyzer.
	Sym *Symbol
}

// Pos returns the reference position.
func (e *VarRef) Pos() token.Pos { return e.NamePos }
func (e *VarRef) expr()          {}

// IndexRef is an array element reference a[i] or a[i, j].
type IndexRef struct {
	typ
	NamePos token.Pos
	Name    string
	Index   []Expr
	Sym     *Symbol
}

// Pos returns the reference position.
func (e *IndexRef) Pos() token.Pos { return e.NamePos }
func (e *IndexRef) expr()          {}

// UnOp is a unary operator.
type UnOp struct {
	typ
	OpPos token.Pos
	Op    token.Kind // Minus or Not
	X     Expr
}

// Pos returns the operator position.
func (e *UnOp) Pos() token.Pos { return e.OpPos }
func (e *UnOp) expr()          {}

// BinOp is a binary operator. AndAnd and OrOr short-circuit.
type BinOp struct {
	typ
	OpPos token.Pos
	Op    token.Kind
	X, Y  Expr
}

// Pos returns the operator position.
func (e *BinOp) Pos() token.Pos { return e.OpPos }
func (e *BinOp) expr()          {}

// Call invokes a function or builtin.
type Call struct {
	typ
	NamePos token.Pos
	Name    string
	Args    []Expr
	// Func is resolved for user functions; Builtin for intrinsics.
	Func    *FuncDecl
	Builtin Builtin
}

// Pos returns the callee position.
func (e *Call) Pos() token.Pos { return e.NamePos }
func (e *Call) expr()          {}

// Builtin identifies an intrinsic function.
type Builtin uint8

// Intrinsics. NotBuiltin marks user calls.
const (
	NotBuiltin Builtin = iota
	BSqrt              // sqrt(real) real
	BSin               // sin(real) real
	BCos               // cos(real) real
	BAtan              // atan(real) real
	BExp               // exp(real) real
	BLog               // log(real) real
	BAbs               // abs(real) real
	BIAbs              // iabs(int) int
	BFloat             // float(int) real
	BTrunc             // trunc(real) int
)

// BuiltinByName maps source names to intrinsics.
var BuiltinByName = map[string]Builtin{
	"sqrt": BSqrt, "sin": BSin, "cos": BCos, "atan": BAtan,
	"exp": BExp, "log": BLog, "abs": BAbs, "iabs": BIAbs,
	"float": BFloat, "trunc": BTrunc,
}

// String returns the builtin's source name.
func (b Builtin) String() string {
	for name, bb := range BuiltinByName {
		if bb == b {
			return name
		}
	}
	return "notbuiltin"
}

// ---- Symbols ----

// SymKind classifies a resolved symbol.
type SymKind uint8

// Symbol kinds.
const (
	SymGlobal SymKind = iota // global scalar
	SymArray                 // global array
	SymLocal                 // function-local scalar
	SymParam                 // parameter
	SymFunc
)

// Symbol is a resolved name. The semantic analyzer creates exactly one
// Symbol per declaration, so symbols can be compared by pointer.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	// Decl points at the declaring node (*VarDecl or *FuncDecl).
	Decl Node
	// Dims for arrays.
	Dims []int
	// Index is a dense per-kind index assigned by the analyzer: globals
	// and arrays are numbered across the program, locals and params
	// within their function.
	Index int
}

// Size returns the word count of the symbol's storage.
func (s *Symbol) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}
