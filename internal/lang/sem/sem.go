// Package sem performs semantic analysis of TL programs: name resolution,
// type checking, and the annotations later phases rely on (resolved symbols
// on references, loop-variable mutation and break flags on counted loops).
package sem

import (
	"fmt"

	"ilp/internal/lang/ast"
	"ilp/internal/lang/token"
)

// Error is a semantic error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// FuncInfo aggregates the analyzer's per-function results.
type FuncInfo struct {
	Decl   *ast.FuncDecl
	Sym    *ast.Symbol
	Params []*ast.Symbol
	// Locals are the function's local scalars in declaration order
	// (excluding params).
	Locals []*ast.Symbol
}

// Info is the result of analysis.
type Info struct {
	Program *ast.Program
	// Globals are global scalar symbols in declaration order.
	Globals []*ast.Symbol
	// Arrays are global array symbols in declaration order.
	Arrays []*ast.Symbol
	// Funcs maps names to per-function info.
	Funcs map[string]*FuncInfo
	// Main is the entry point ("func main()", no params, no result).
	Main *FuncInfo
}

// Analyze checks the program and returns the analysis info. The first
// error aborts analysis.
func Analyze(prog *ast.Program) (*Info, error) {
	a := &analyzer{
		info: &Info{
			Program: prog,
			Funcs:   map[string]*FuncInfo{},
		},
		globalScope: map[string]*ast.Symbol{},
	}
	err := a.run()
	if err != nil {
		return nil, err
	}
	return a.info, nil
}

type analyzer struct {
	info        *Info
	globalScope map[string]*ast.Symbol

	// Per-function state.
	cur    *FuncInfo
	scopes []map[string]*ast.Symbol
	loops  []ast.Stmt // innermost last: *ast.For or *ast.While
}

func (a *analyzer) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (a *analyzer) run() error {
	prog := a.info.Program

	// Pass 1: global variables and arrays.
	for _, d := range prog.Globals {
		if _, dup := a.globalScope[d.Name]; dup {
			return a.errorf(d.NamePos, "%q redeclared at file scope", d.Name)
		}
		sym := &ast.Symbol{Name: d.Name, Type: d.Type, Decl: d, Dims: d.Dims}
		if d.IsArray() {
			if d.Type == ast.Bool {
				return a.errorf(d.NamePos, "array %q: bool arrays are not supported", d.Name)
			}
			sym.Kind = ast.SymArray
			sym.Index = len(a.info.Arrays)
			a.info.Arrays = append(a.info.Arrays, sym)
		} else {
			sym.Kind = ast.SymGlobal
			sym.Index = len(a.info.Globals)
			a.info.Globals = append(a.info.Globals, sym)
			if d.Init != nil {
				t, err := a.constType(d.Init)
				if err != nil {
					return err
				}
				if t != d.Type {
					return a.errorf(d.NamePos, "initializer for %q has type %s, want %s", d.Name, t, d.Type)
				}
			}
		}
		a.globalScope[d.Name] = sym
	}

	// Pass 2: function signatures (so calls can be forward).
	for _, f := range prog.Funcs {
		if _, dup := a.globalScope[f.Name]; dup {
			return a.errorf(f.NamePos, "%q redeclared at file scope", f.Name)
		}
		if _, isB := ast.BuiltinByName[f.Name]; isB {
			return a.errorf(f.NamePos, "%q shadows a builtin function", f.Name)
		}
		sym := &ast.Symbol{Name: f.Name, Kind: ast.SymFunc, Type: f.Result, Decl: f}
		a.globalScope[f.Name] = sym
		a.info.Funcs[f.Name] = &FuncInfo{Decl: f, Sym: sym}
	}

	// Pass 3: function bodies.
	for _, f := range prog.Funcs {
		if err := a.checkFunc(a.info.Funcs[f.Name]); err != nil {
			return err
		}
	}

	// Entry point.
	mainFn, ok := a.info.Funcs["main"]
	if !ok {
		return a.errorf(token.Pos{Line: 1, Col: 1}, "program has no func main()")
	}
	if len(mainFn.Decl.Params) != 0 || mainFn.Decl.Result != ast.Void {
		return a.errorf(mainFn.Decl.NamePos, "func main must take no parameters and return nothing")
	}
	a.info.Main = mainFn
	return nil
}

// constType types a global initializer: a literal, optionally negated.
func (a *analyzer) constType(e ast.Expr) (ast.Type, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		x.SetType(ast.Int)
		return ast.Int, nil
	case *ast.RealLit:
		x.SetType(ast.Real)
		return ast.Real, nil
	case *ast.BoolLit:
		x.SetType(ast.Bool)
		return ast.Bool, nil
	case *ast.UnOp:
		if x.Op == token.Minus {
			t, err := a.constType(x.X)
			if err != nil {
				return ast.Invalid, err
			}
			if t != ast.Int && t != ast.Real {
				return ast.Invalid, a.errorf(x.OpPos, "cannot negate %s constant", t)
			}
			x.SetType(t)
			return t, nil
		}
	}
	return ast.Invalid, a.errorf(e.Pos(), "global initializer must be a constant literal")
}

func (a *analyzer) checkFunc(fi *FuncInfo) error {
	a.cur = fi
	a.scopes = []map[string]*ast.Symbol{{}}
	a.loops = nil
	for i := range fi.Decl.Params {
		p := &fi.Decl.Params[i]
		if _, dup := a.scopes[0][p.Name]; dup {
			return a.errorf(p.NamePos, "parameter %q redeclared", p.Name)
		}
		sym := &ast.Symbol{Name: p.Name, Kind: ast.SymParam, Type: p.Type, Index: len(fi.Params)}
		fi.Params = append(fi.Params, sym)
		a.scopes[0][p.Name] = sym
	}
	return a.checkBlock(fi.Decl.Body)
}

func (a *analyzer) pushScope() { a.scopes = append(a.scopes, map[string]*ast.Symbol{}) }
func (a *analyzer) popScope()  { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *analyzer) lookup(name string) *ast.Symbol {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if s, ok := a.scopes[i][name]; ok {
			return s
		}
	}
	return a.globalScope[name]
}

func (a *analyzer) checkBlock(b *ast.Block) error {
	a.pushScope()
	defer a.popScope()
	for _, s := range b.Stmts {
		if err := a.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (a *analyzer) checkStmt(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.Block:
		return a.checkBlock(st)

	case *ast.LocalDecl:
		d := st.Decl
		if d.IsArray() {
			return a.errorf(d.NamePos, "arrays may only be declared at file scope")
		}
		scope := a.scopes[len(a.scopes)-1]
		if _, dup := scope[d.Name]; dup {
			return a.errorf(d.NamePos, "%q redeclared in this scope", d.Name)
		}
		if d.Init != nil {
			t, err := a.checkExpr(d.Init)
			if err != nil {
				return err
			}
			if t != d.Type {
				return a.errorf(d.NamePos, "initializer for %q has type %s, want %s", d.Name, t, d.Type)
			}
		}
		sym := &ast.Symbol{Name: d.Name, Kind: ast.SymLocal, Type: d.Type, Decl: d, Index: len(a.cur.Locals)}
		a.cur.Locals = append(a.cur.Locals, sym)
		scope[d.Name] = sym
		return nil

	case *ast.Assign:
		lt, err := a.checkLValue(st.LHS)
		if err != nil {
			return err
		}
		rt, err := a.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if lt != rt {
			return a.errorf(st.Pos(), "cannot assign %s to %s", rt, lt)
		}
		// Record loop-variable mutation for enclosing counted loops.
		if vr, ok := st.LHS.(*ast.VarRef); ok {
			for _, l := range a.loops {
				if f, ok := l.(*ast.For); ok && f.Var.Sym == vr.Sym {
					f.VarMutated = true
				}
			}
		}
		return nil

	case *ast.If:
		t, err := a.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if t != ast.Bool {
			return a.errorf(st.Cond.Pos(), "if condition must be bool, found %s", t)
		}
		if err := a.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkStmt(st.Else)
		}
		return nil

	case *ast.While:
		t, err := a.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if t != ast.Bool {
			return a.errorf(st.Cond.Pos(), "while condition must be bool, found %s", t)
		}
		a.loops = append(a.loops, st)
		err = a.checkBlock(st.Body)
		a.loops = a.loops[:len(a.loops)-1]
		return err

	case *ast.For:
		sym := a.lookup(st.Var.Name)
		if sym == nil {
			return a.errorf(st.Var.NamePos, "undefined loop variable %q", st.Var.Name)
		}
		if sym.Kind == ast.SymArray || sym.Kind == ast.SymFunc {
			return a.errorf(st.Var.NamePos, "%q cannot be a loop variable", st.Var.Name)
		}
		if sym.Type != ast.Int {
			return a.errorf(st.Var.NamePos, "loop variable %q must be int, is %s", st.Var.Name, sym.Type)
		}
		st.Var.Sym = sym
		st.Var.SetType(ast.Int)
		for _, bound := range []ast.Expr{st.Lo, st.Hi} {
			t, err := a.checkExpr(bound)
			if err != nil {
				return err
			}
			if t != ast.Int {
				return a.errorf(bound.Pos(), "loop bound must be int, found %s", t)
			}
		}
		a.loops = append(a.loops, st)
		err := a.checkBlock(st.Body)
		a.loops = a.loops[:len(a.loops)-1]
		return err

	case *ast.Return:
		want := a.cur.Decl.Result
		if st.Value == nil {
			if want != ast.Void {
				return a.errorf(st.RetPos, "missing return value (%s expected)", want)
			}
			return nil
		}
		if want == ast.Void {
			return a.errorf(st.RetPos, "unexpected return value in procedure %q", a.cur.Decl.Name)
		}
		t, err := a.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if t != want {
			return a.errorf(st.RetPos, "return type %s, want %s", t, want)
		}
		return nil

	case *ast.Break:
		if len(a.loops) == 0 {
			return a.errorf(st.BreakPos, "break outside loop")
		}
		if f, ok := a.loops[len(a.loops)-1].(*ast.For); ok {
			f.HasBreak = true
		}
		return nil

	case *ast.Print:
		t, err := a.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if t == ast.Void || t == ast.Invalid {
			return a.errorf(st.PrintPos, "cannot print %s", t)
		}
		return nil

	case *ast.ExprStmt:
		call, ok := st.X.(*ast.Call)
		if !ok {
			return a.errorf(st.Pos(), "expression statement must be a call")
		}
		_, err := a.checkExpr(call)
		return err
	}
	return a.errorf(s.Pos(), "unhandled statement %T", s)
}

func (a *analyzer) checkLValue(e ast.Expr) (ast.Type, error) {
	switch x := e.(type) {
	case *ast.VarRef:
		sym := a.lookup(x.Name)
		if sym == nil {
			return ast.Invalid, a.errorf(x.NamePos, "undefined variable %q", x.Name)
		}
		switch sym.Kind {
		case ast.SymGlobal, ast.SymLocal, ast.SymParam:
		default:
			return ast.Invalid, a.errorf(x.NamePos, "%q is not assignable", x.Name)
		}
		x.Sym = sym
		x.SetType(sym.Type)
		return sym.Type, nil
	case *ast.IndexRef:
		return a.checkIndexRef(x)
	}
	return ast.Invalid, a.errorf(e.Pos(), "invalid assignment target")
}

func (a *analyzer) checkIndexRef(x *ast.IndexRef) (ast.Type, error) {
	sym := a.lookup(x.Name)
	if sym == nil {
		return ast.Invalid, a.errorf(x.NamePos, "undefined array %q", x.Name)
	}
	if sym.Kind != ast.SymArray {
		return ast.Invalid, a.errorf(x.NamePos, "%q is not an array", x.Name)
	}
	if len(x.Index) != len(sym.Dims) {
		return ast.Invalid, a.errorf(x.NamePos, "array %q has %d dimensions, %d indices given",
			x.Name, len(sym.Dims), len(x.Index))
	}
	for _, ie := range x.Index {
		t, err := a.checkExpr(ie)
		if err != nil {
			return ast.Invalid, err
		}
		if t != ast.Int {
			return ast.Invalid, a.errorf(ie.Pos(), "array index must be int, found %s", t)
		}
	}
	x.Sym = sym
	x.SetType(sym.Type)
	return sym.Type, nil
}

// builtinSig describes an intrinsic's signature.
var builtinSig = map[ast.Builtin]struct {
	arg ast.Type
	res ast.Type
}{
	ast.BSqrt: {ast.Real, ast.Real}, ast.BSin: {ast.Real, ast.Real},
	ast.BCos: {ast.Real, ast.Real}, ast.BAtan: {ast.Real, ast.Real},
	ast.BExp: {ast.Real, ast.Real}, ast.BLog: {ast.Real, ast.Real},
	ast.BAbs: {ast.Real, ast.Real}, ast.BIAbs: {ast.Int, ast.Int},
	ast.BFloat: {ast.Int, ast.Real}, ast.BTrunc: {ast.Real, ast.Int},
}

func (a *analyzer) checkExpr(e ast.Expr) (ast.Type, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		x.SetType(ast.Int)
		return ast.Int, nil
	case *ast.RealLit:
		x.SetType(ast.Real)
		return ast.Real, nil
	case *ast.BoolLit:
		x.SetType(ast.Bool)
		return ast.Bool, nil

	case *ast.VarRef:
		sym := a.lookup(x.Name)
		if sym == nil {
			return ast.Invalid, a.errorf(x.NamePos, "undefined variable %q", x.Name)
		}
		switch sym.Kind {
		case ast.SymGlobal, ast.SymLocal, ast.SymParam:
		case ast.SymArray:
			return ast.Invalid, a.errorf(x.NamePos, "array %q used without index", x.Name)
		default:
			return ast.Invalid, a.errorf(x.NamePos, "%q is not a variable", x.Name)
		}
		x.Sym = sym
		x.SetType(sym.Type)
		return sym.Type, nil

	case *ast.IndexRef:
		return a.checkIndexRef(x)

	case *ast.UnOp:
		t, err := a.checkExpr(x.X)
		if err != nil {
			return ast.Invalid, err
		}
		switch x.Op {
		case token.Minus:
			if t != ast.Int && t != ast.Real {
				return ast.Invalid, a.errorf(x.OpPos, "cannot negate %s", t)
			}
		case token.Not:
			if t != ast.Bool {
				return ast.Invalid, a.errorf(x.OpPos, "! requires bool, found %s", t)
			}
		default:
			return ast.Invalid, a.errorf(x.OpPos, "invalid unary operator %s", x.Op)
		}
		x.SetType(t)
		return t, nil

	case *ast.BinOp:
		lt, err := a.checkExpr(x.X)
		if err != nil {
			return ast.Invalid, err
		}
		rt, err := a.checkExpr(x.Y)
		if err != nil {
			return ast.Invalid, err
		}
		if lt != rt {
			return ast.Invalid, a.errorf(x.OpPos, "operator %s: mismatched types %s and %s (use float()/trunc())", x.Op, lt, rt)
		}
		switch x.Op {
		case token.Plus, token.Minus, token.Star, token.Slash:
			if lt != ast.Int && lt != ast.Real {
				return ast.Invalid, a.errorf(x.OpPos, "operator %s requires numeric operands, found %s", x.Op, lt)
			}
			x.SetType(lt)
			return lt, nil
		case token.Percent:
			if lt != ast.Int {
				return ast.Invalid, a.errorf(x.OpPos, "%% requires int operands, found %s", lt)
			}
			x.SetType(ast.Int)
			return ast.Int, nil
		case token.Lt, token.Le, token.Gt, token.Ge:
			if lt != ast.Int && lt != ast.Real {
				return ast.Invalid, a.errorf(x.OpPos, "operator %s requires numeric operands, found %s", x.Op, lt)
			}
			x.SetType(ast.Bool)
			return ast.Bool, nil
		case token.Eq, token.Ne:
			if lt == ast.Void || lt == ast.Invalid {
				return ast.Invalid, a.errorf(x.OpPos, "operator %s on %s", x.Op, lt)
			}
			x.SetType(ast.Bool)
			return ast.Bool, nil
		case token.AndAnd, token.OrOr:
			if lt != ast.Bool {
				return ast.Invalid, a.errorf(x.OpPos, "operator %s requires bool operands, found %s", x.Op, lt)
			}
			x.SetType(ast.Bool)
			return ast.Bool, nil
		}
		return ast.Invalid, a.errorf(x.OpPos, "invalid binary operator %s", x.Op)

	case *ast.Call:
		if b, isB := ast.BuiltinByName[x.Name]; isB {
			sig := builtinSig[b]
			if len(x.Args) != 1 {
				return ast.Invalid, a.errorf(x.NamePos, "%s takes exactly one argument", x.Name)
			}
			t, err := a.checkExpr(x.Args[0])
			if err != nil {
				return ast.Invalid, err
			}
			if t != sig.arg {
				return ast.Invalid, a.errorf(x.NamePos, "%s requires %s argument, found %s", x.Name, sig.arg, t)
			}
			x.Builtin = b
			x.SetType(sig.res)
			return sig.res, nil
		}
		fi, ok := a.info.Funcs[x.Name]
		if !ok {
			return ast.Invalid, a.errorf(x.NamePos, "undefined function %q", x.Name)
		}
		if len(x.Args) != len(fi.Decl.Params) {
			return ast.Invalid, a.errorf(x.NamePos, "%q takes %d arguments, %d given",
				x.Name, len(fi.Decl.Params), len(x.Args))
		}
		for i, arg := range x.Args {
			t, err := a.checkExpr(arg)
			if err != nil {
				return ast.Invalid, err
			}
			if t != fi.Decl.Params[i].Type {
				return ast.Invalid, a.errorf(arg.Pos(), "argument %d of %q has type %s, want %s",
					i+1, x.Name, t, fi.Decl.Params[i].Type)
			}
		}
		x.Func = fi.Decl
		x.SetType(fi.Decl.Result)
		return fi.Decl.Result, nil
	}
	return ast.Invalid, a.errorf(e.Pos(), "unhandled expression %T", e)
}
