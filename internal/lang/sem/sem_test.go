package sem

import (
	"strings"
	"testing"

	"ilp/internal/lang/ast"
	"ilp/internal/lang/parser"
)

func analyze(t *testing.T, src string) (*Info, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(p)
}

func mustAnalyze(t *testing.T, src string) *Info {
	t.Helper()
	info, err := analyze(t, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func TestSymbolsResolved(t *testing.T) {
	info := mustAnalyze(t, `
var g: int = 3;
var a[8]: real;
func f(p: int): int {
	var l: int;
	l = p + g;
	return l;
}
func main() { g = f(1); a[0] = 2.0; }
`)
	if len(info.Globals) != 1 || info.Globals[0].Name != "g" || info.Globals[0].Kind != ast.SymGlobal {
		t.Errorf("globals: %+v", info.Globals)
	}
	if len(info.Arrays) != 1 || info.Arrays[0].Size() != 8 {
		t.Errorf("arrays: %+v", info.Arrays)
	}
	fi := info.Funcs["f"]
	if fi == nil || len(fi.Params) != 1 || len(fi.Locals) != 1 {
		t.Fatalf("func info: %+v", fi)
	}
	if info.Main == nil {
		t.Fatal("main not found")
	}
	// The reference l = p + g must resolve to the right symbols.
	assign := fi.Decl.Body.Stmts[1].(*ast.Assign)
	lhs := assign.LHS.(*ast.VarRef)
	if lhs.Sym != fi.Locals[0] {
		t.Error("lhs not resolved to local")
	}
	add := assign.RHS.(*ast.BinOp)
	if add.X.(*ast.VarRef).Sym != fi.Params[0] {
		t.Error("p not resolved to param")
	}
	if add.Y.(*ast.VarRef).Sym != info.Globals[0] {
		t.Error("g not resolved to global")
	}
	if add.Type() != ast.Int {
		t.Error("p+g not typed int")
	}
}

func TestShadowing(t *testing.T) {
	info := mustAnalyze(t, `
var x: int;
func main() {
	var x: real;
	x = 1.0;
}
`)
	assign := info.Main.Decl.Body.Stmts[1].(*ast.Assign)
	if assign.LHS.(*ast.VarRef).Sym.Kind != ast.SymLocal {
		t.Error("local should shadow global")
	}
}

func TestForLoopAnnotations(t *testing.T) {
	info := mustAnalyze(t, `
var s: int;
func main() {
	var i: int;
	for i = 0 to 9 {
		s = s + i;
		if s > 100 { break; }
	}
	for i = 0 to 9 { i = i + 1; }
}
`)
	loop1 := info.Main.Decl.Body.Stmts[1].(*ast.For)
	if !loop1.HasBreak {
		t.Error("HasBreak not set")
	}
	if loop1.VarMutated {
		t.Error("VarMutated wrongly set on loop 1")
	}
	loop2 := info.Main.Decl.Body.Stmts[2].(*ast.For)
	if !loop2.VarMutated {
		t.Error("VarMutated not set on loop 2")
	}
}

func TestBreakBindsInnermost(t *testing.T) {
	info := mustAnalyze(t, `
func main() {
	var i, j: int;
	for i = 0 to 3 {
		while j < 5 { break; }
	}
}
`)
	outer := info.Main.Decl.Body.Stmts[2].(*ast.For)
	if outer.HasBreak {
		t.Error("break inside while marked the outer for")
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`func main() { x = 1; }`, "undefined variable"},
		{`var x: int; func main() { x = 1.5; }`, "cannot assign real to int"},
		{`var x: int; func main() { x = 1 + 2.0; }`, "mismatched types"},
		{`var x: real; func main() { x = 1.0 % 2.0; }`, "requires int"},
		{`var b: bool; func main() { b = 1 && 2; }`, "requires bool operands"},
		{`func main() { if 1 { } }`, "must be bool"},
		{`func main() { while 2.0 { } }`, "must be bool"},
		{`var a[3]: int; func main() { a[1.0] = 1; }`, "index must be int"},
		{`var a[3]: int; func main() { a[0, 1] = 1; }`, "1 dimensions"},
		{`var x: int; func main() { x[0] = 1; }`, "not an array"},
		{`var a[3]: int; func main() { a = 1; }`, "not assignable"},
		{`var a[3]: int; var x: int; func main() { x = a; }`, "without index"},
		{`func f(): int { return 1.0; } func main() {}`, "return type real"},
		{`func f() { return 1; } func main() {}`, "unexpected return value"},
		{`func f(): int { return; } func main() {}`, "missing return value"},
		{`func main() { break; }`, "break outside loop"},
		{`func f(a: int) {} func main() { f(1, 2); }`, "takes 1 arguments"},
		{`func f(a: int) {} func main() { f(1.0); }`, "want int"},
		{`func main() { g(); }`, "undefined function"},
		{`func main() { sqrt(2); }`, "requires real"},
		{`func main() { sqrt(1.0, 2.0); }`, "exactly one"},
		{`var x: int; var x: real; func main() {}`, "redeclared"},
		{`func f() {} func f() {} func main() {}`, "redeclared"},
		{`func sqrt(x: real): real { return x; } func main() {}`, "shadows a builtin"},
		{`func f(a: int, a: int) {} func main() {}`, "parameter \"a\" redeclared"},
		{`func main() { var v: int; var v: int; }`, "redeclared in this scope"},
		{`func notmain() {}`, "no func main"},
		{`func main(x: int) {}`, "no parameters"},
		{`var x: int = 1.5; func main() {}`, "has type real"},
		{`var x: int; var y: int; func main() { var z: int = x + y; }`, ""},
		{`var b[2]: bool; func main() {}`, "bool arrays"},
		{`func main() { var r: real; for r = 0 to 3 {} }`, "must be int"},
		{`func main() { var i: int; for i = 0 to 2.5 {} }`, "bound must be int"},
		{`var g: int = 1 + 2; func main() {}`, "constant literal"},
	}
	for _, c := range cases {
		_, err := analyze(t, c.src)
		if c.substr == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.substr)
		}
	}
}

func TestBuiltinTypes(t *testing.T) {
	info := mustAnalyze(t, `
var x: real;
var n: int;
func main() {
	x = sqrt(2.0) + sin(x) + float(n);
	n = trunc(x) + iabs(n);
}
`)
	_ = info
}

func TestRecursionAndForwardCalls(t *testing.T) {
	mustAnalyze(t, `
func even(n: int): bool { if n == 0 { return true; } return odd(n - 1); }
func odd(n: int): bool { if n == 0 { return false; } return even(n - 1); }
func main() { print(even(4)); }
`)
}
