// Package token defines the lexical tokens of TL, the small imperative
// language the benchmark suite is written in. TL stands in for the
// Modula-2 and C sources of the paper's benchmarks: a statically typed
// language with integers, reals, booleans, fixed-size global arrays,
// procedures, and counted loops — enough to express every benchmark while
// keeping the compiler honest (no pointers means the "interprocedural alias
// analysis" the paper's careful unrolling needs reduces to array identity
// plus index arithmetic, which we implement).
package token

import "fmt"

// Kind is the lexical class of a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT
	INTLIT
	REALLIT

	// Keywords.
	KwVar
	KwFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwTo
	KwBy
	KwReturn
	KwBreak
	KwPrint
	KwInt
	KwReal
	KwBool
	KwTrue
	KwFalse

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Colon

	// Operators.
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Eq // ==
	Ne // !=
	Lt
	Le
	Gt
	Ge
	AndAnd // &&
	OrOr   // ||
	Not    // !
)

var kindNames = map[Kind]string{
	EOF: "end of file", ILLEGAL: "illegal token",
	IDENT: "identifier", INTLIT: "integer literal", REALLIT: "real literal",
	KwVar: "var", KwFunc: "func", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwTo: "to", KwBy: "by",
	KwReturn: "return", KwBreak: "break", KwPrint: "print",
	KwInt: "int", KwReal: "real", KwBool: "bool",
	KwTrue: "true", KwFalse: "false",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";", Colon: ":",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"var": KwVar, "func": KwFunc, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "to": KwTo, "by": KwBy,
	"return": KwReturn, "break": KwBreak, "print": KwPrint,
	"int": KwInt, "real": KwReal, "bool": KwBool,
	"true": KwTrue, "false": KwFalse,
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	// Text is the literal text for IDENT, INTLIT, REALLIT, ILLEGAL.
	Text string
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, REALLIT, ILLEGAL:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
