package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics: the parser must return errors, not panic, on
// arbitrary garbage — random bytes, random token soup, and truncations of
// a valid program.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))

	// Random bytes.
	for i := 0; i < 200; i++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(128))
		}
		_, _ = Parse(string(b)) // must not panic
	}

	// Random token soup.
	toks := []string{
		"var", "func", "if", "else", "while", "for", "to", "by", "return",
		"break", "print", "int", "real", "bool", "true", "false",
		"x", "y", "main", "42", "3.5", "(", ")", "{", "}", "[", "]",
		",", ";", ":", "=", "+", "-", "*", "/", "%", "==", "!=",
		"<", "<=", ">", ">=", "&&", "||", "!",
	}
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(40)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(toks[r.Intn(len(toks))])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String())
	}

	// Truncations of a valid program.
	valid := `
var a[8]: int;
var x: real = 1.5;
func f(n: int): int {
	var i, s: int;
	for i = 0 to n {
		if i % 2 == 0 && i > 1 { s = s + a[i % 8]; } else { break; }
	}
	while s > 100 { s = s / 2; }
	print(x);
	return s;
}
func main() { print(f(10)); }
`
	for cut := 0; cut < len(valid); cut += 3 {
		_, _ = Parse(valid[:cut])
	}
}
