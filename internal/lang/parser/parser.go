// Package parser builds TL abstract syntax trees from source text. It is a
// hand-written recursive-descent parser; parsing stops at the first error
// (benchmark sources are expected to be correct; the error exists to fail
// loudly, with a position, when they are not).
package parser

import (
	"fmt"
	"strconv"

	"ilp/internal/lang/ast"
	"ilp/internal/lang/scanner"
	"ilp/internal/lang/token"
)

// Error is a syntax error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete TL program.
func Parse(src string) (*ast.Program, error) {
	p := &parser{sc: scanner.New(src)}
	p.next()
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if errs := p.sc.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	return prog, nil
}

type parser struct {
	sc  *scanner.Scanner
	tok token.Token
}

type bail struct{ err *Error }

func (p *parser) next() { p.tok = p.sc.Next() }

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	panic(bail{&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.tok.Kind != k {
		p.errorf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseProgram() (prog *ast.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bail); ok {
				prog, err = nil, b.err
				return
			}
			panic(r)
		}
	}()
	prog = &ast.Program{}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwVar:
			decls := p.parseVarDecl(true)
			prog.Globals = append(prog.Globals, decls...)
		case token.KwFunc:
			prog.Funcs = append(prog.Funcs, p.parseFuncDecl())
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
		}
	}
	return prog, nil
}

func (p *parser) parseType() ast.Type {
	switch p.tok.Kind {
	case token.KwInt:
		p.next()
		return ast.Int
	case token.KwReal:
		p.next()
		return ast.Real
	case token.KwBool:
		p.next()
		return ast.Bool
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	return ast.Invalid
}

// parseVarDecl parses
//
//	var a, b: int;            (scalars, shared type)
//	var x: int = 3;           (single scalar with initializer)
//	var m[64, 64]: real;      (array — global scope only)
//
// and returns one VarDecl per declared name.
func (p *parser) parseVarDecl(global bool) []*ast.VarDecl {
	p.expect(token.KwVar)
	type protoDecl struct {
		pos  token.Pos
		name string
		dims []int
	}
	var protos []protoDecl
	for {
		nameTok := p.expect(token.IDENT)
		proto := protoDecl{pos: nameTok.Pos, name: nameTok.Text}
		if p.tok.Kind == token.LBracket {
			if !global {
				p.errorf(p.tok.Pos, "arrays may only be declared at file scope")
			}
			p.next()
			for {
				d := p.expect(token.INTLIT)
				n, convErr := strconv.Atoi(d.Text)
				if convErr != nil || n <= 0 {
					p.errorf(d.Pos, "invalid array extent %q", d.Text)
				}
				proto.dims = append(proto.dims, n)
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.RBracket)
		}
		protos = append(protos, proto)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Colon)
	typ := p.parseType()
	var init ast.Expr
	if p.accept(token.Assign) {
		if len(protos) != 1 || len(protos[0].dims) > 0 {
			p.errorf(p.tok.Pos, "initializer requires a single scalar declaration")
		}
		init = p.parseExpr()
	}
	p.expect(token.Semicolon)

	out := make([]*ast.VarDecl, 0, len(protos))
	for _, proto := range protos {
		out = append(out, &ast.VarDecl{
			NamePos: proto.pos,
			Name:    proto.name,
			Type:    typ,
			Dims:    proto.dims,
			Init:    init,
			Global:  global,
		})
	}
	return out
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	p.expect(token.KwFunc)
	nameTok := p.expect(token.IDENT)
	fn := &ast.FuncDecl{NamePos: nameTok.Pos, Name: nameTok.Text, Result: ast.Void}
	p.expect(token.LParen)
	if p.tok.Kind != token.RParen {
		for {
			// One group: a, b: type
			var names []token.Token
			for {
				names = append(names, p.expect(token.IDENT))
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.Colon)
			typ := p.parseType()
			for _, n := range names {
				fn.Params = append(fn.Params, ast.Param{NamePos: n.Pos, Name: n.Text, Type: typ})
			}
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	if p.accept(token.Colon) {
		fn.Result = p.parseType()
	}
	fn.Body = p.parseBlock()
	return fn
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBrace)
	b := &ast.Block{LBrace: lb.Pos}
	for p.tok.Kind != token.RBrace {
		if p.tok.Kind == token.EOF {
			p.errorf(p.tok.Pos, "unexpected end of file in block")
		}
		b.Stmts = append(b.Stmts, p.parseStmt()...)
	}
	p.expect(token.RBrace)
	return b
}

// parseStmt returns one or more statements (a multi-name var declaration
// expands to several LocalDecls).
func (p *parser) parseStmt() []ast.Stmt {
	switch p.tok.Kind {
	case token.KwVar:
		decls := p.parseVarDecl(false)
		out := make([]ast.Stmt, len(decls))
		for i, d := range decls {
			out[i] = &ast.LocalDecl{Decl: d}
		}
		return out
	case token.KwIf:
		return []ast.Stmt{p.parseIf()}
	case token.KwWhile:
		return []ast.Stmt{p.parseWhile()}
	case token.KwFor:
		return []ast.Stmt{p.parseFor()}
	case token.KwReturn:
		pos := p.tok.Pos
		p.next()
		var val ast.Expr
		if p.tok.Kind != token.Semicolon {
			val = p.parseExpr()
		}
		p.expect(token.Semicolon)
		return []ast.Stmt{&ast.Return{RetPos: pos, Value: val}}
	case token.KwBreak:
		pos := p.tok.Pos
		p.next()
		p.expect(token.Semicolon)
		return []ast.Stmt{&ast.Break{BreakPos: pos}}
	case token.KwPrint:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LParen)
		val := p.parseExpr()
		p.expect(token.RParen)
		p.expect(token.Semicolon)
		return []ast.Stmt{&ast.Print{PrintPos: pos, Value: val}}
	case token.LBrace:
		return []ast.Stmt{p.parseBlock()}
	case token.IDENT:
		return []ast.Stmt{p.parseSimpleStmt()}
	}
	p.errorf(p.tok.Pos, "expected statement, found %s", p.tok)
	return nil
}

// parseSimpleStmt parses an assignment or a call statement.
func (p *parser) parseSimpleStmt() ast.Stmt {
	nameTok := p.expect(token.IDENT)
	switch p.tok.Kind {
	case token.LParen:
		call := p.parseCallRest(nameTok)
		p.expect(token.Semicolon)
		return &ast.ExprStmt{X: call}
	case token.LBracket:
		p.next()
		idx := []ast.Expr{p.parseExpr()}
		for p.accept(token.Comma) {
			idx = append(idx, p.parseExpr())
		}
		p.expect(token.RBracket)
		lhs := &ast.IndexRef{NamePos: nameTok.Pos, Name: nameTok.Text, Index: idx}
		p.expect(token.Assign)
		rhs := p.parseExpr()
		p.expect(token.Semicolon)
		return &ast.Assign{LHS: lhs, RHS: rhs}
	case token.Assign:
		p.next()
		rhs := p.parseExpr()
		p.expect(token.Semicolon)
		lhs := &ast.VarRef{NamePos: nameTok.Pos, Name: nameTok.Text}
		return &ast.Assign{LHS: lhs, RHS: rhs}
	}
	p.errorf(p.tok.Pos, "expected assignment or call after %q, found %s", nameTok.Text, p.tok)
	return nil
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	cond := p.parseExpr()
	then := p.parseBlock()
	s := &ast.If{IfPos: pos, Cond: cond, Then: then}
	if p.accept(token.KwElse) {
		if p.tok.Kind == token.KwIf {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.expect(token.KwWhile).Pos
	cond := p.parseExpr()
	body := p.parseBlock()
	return &ast.While{WhilePos: pos, Cond: cond, Body: body}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.expect(token.KwFor).Pos
	nameTok := p.expect(token.IDENT)
	p.expect(token.Assign)
	lo := p.parseExpr()
	p.expect(token.KwTo)
	hi := p.parseExpr()
	step := int64(1)
	if p.accept(token.KwBy) {
		lit := p.expect(token.INTLIT)
		n, err := strconv.ParseInt(lit.Text, 10, 64)
		if err != nil || n < 1 {
			p.errorf(lit.Pos, "loop step must be a positive integer constant, found %q", lit.Text)
		}
		step = n
	}
	body := p.parseBlock()
	return &ast.For{
		ForPos: pos,
		Var:    &ast.VarRef{NamePos: nameTok.Pos, Name: nameTok.Text},
		Lo:     lo, Hi: hi, Step: step,
		Body: body,
	}
}

// ---- Expressions ----

func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.tok.Kind == token.OrOr {
		pos := p.tok.Pos
		p.next()
		y := p.parseAnd()
		x = &ast.BinOp{OpPos: pos, Op: token.OrOr, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAnd() ast.Expr {
	x := p.parseCmp()
	for p.tok.Kind == token.AndAnd {
		pos := p.tok.Pos
		p.next()
		y := p.parseCmp()
		x = &ast.BinOp{OpPos: pos, Op: token.AndAnd, X: x, Y: y}
	}
	return x
}

func (p *parser) parseCmp() ast.Expr {
	x := p.parseAdd()
	switch p.tok.Kind {
	case token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		y := p.parseAdd()
		return &ast.BinOp{OpPos: pos, Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAdd() ast.Expr {
	x := p.parseMul()
	for p.tok.Kind == token.Plus || p.tok.Kind == token.Minus {
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		y := p.parseMul()
		x = &ast.BinOp{OpPos: pos, Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseMul() ast.Expr {
	x := p.parseUnary()
	for p.tok.Kind == token.Star || p.tok.Kind == token.Slash || p.tok.Kind == token.Percent {
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		y := p.parseUnary()
		x = &ast.BinOp{OpPos: pos, Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.Minus:
		pos := p.tok.Pos
		p.next()
		return &ast.UnOp{OpPos: pos, Op: token.Minus, X: p.parseUnary()}
	case token.Not:
		pos := p.tok.Pos
		p.next()
		return &ast.UnOp{OpPos: pos, Op: token.Not, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.INTLIT:
		t := p.tok
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Text)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.REALLIT:
		t := p.tok
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid real literal %q", t.Text)
		}
		return &ast.RealLit{LitPos: t.Pos, Value: v}
	case token.KwTrue:
		t := p.tok
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.KwFalse:
		t := p.tok
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	case token.IDENT:
		nameTok := p.tok
		p.next()
		switch p.tok.Kind {
		case token.LParen:
			return p.parseCallRest(nameTok)
		case token.LBracket:
			p.next()
			idx := []ast.Expr{p.parseExpr()}
			for p.accept(token.Comma) {
				idx = append(idx, p.parseExpr())
			}
			p.expect(token.RBracket)
			return &ast.IndexRef{NamePos: nameTok.Pos, Name: nameTok.Text, Index: idx}
		}
		return &ast.VarRef{NamePos: nameTok.Pos, Name: nameTok.Text}
	}
	p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
	return nil
}

func (p *parser) parseCallRest(nameTok token.Token) *ast.Call {
	p.expect(token.LParen)
	call := &ast.Call{NamePos: nameTok.Pos, Name: nameTok.Text}
	if p.tok.Kind != token.RParen {
		for {
			call.Args = append(call.Args, p.parseExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	return call
}
