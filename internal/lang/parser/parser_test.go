package parser

import (
	"strings"
	"testing"

	"ilp/internal/lang/ast"
	"ilp/internal/lang/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return p
}

func TestGlobalsAndArrays(t *testing.T) {
	p := mustParse(t, `
var x, y: int;
var z: real = -1.5;
var a[10]: int;
var m[4, 8]: real;
func main() {}
`)
	if len(p.Globals) != 5 {
		t.Fatalf("globals = %d, want 5", len(p.Globals))
	}
	if p.Globals[0].Name != "x" || p.Globals[1].Name != "y" || p.Globals[0].Type != ast.Int {
		t.Error("grouped scalar declaration wrong")
	}
	z := p.Globals[2]
	if z.Init == nil || z.Type != ast.Real {
		t.Error("initializer lost")
	}
	a := p.Globals[3]
	if !a.IsArray() || len(a.Dims) != 1 || a.Dims[0] != 10 || a.Size() != 10 {
		t.Errorf("array a wrong: %+v", a)
	}
	m := p.Globals[4]
	if len(m.Dims) != 2 || m.Dims[0] != 4 || m.Dims[1] != 8 || m.Size() != 32 {
		t.Errorf("array m wrong: %+v", m)
	}
}

func TestFunctionSignatures(t *testing.T) {
	p := mustParse(t, `
func f(a, b: int, c: real): real { return c; }
func main() {}
`)
	f := p.Funcs[0]
	if f.Name != "f" || len(f.Params) != 3 || f.Result != ast.Real {
		t.Fatalf("signature wrong: %+v", f)
	}
	if f.Params[0].Name != "a" || f.Params[0].Type != ast.Int || f.Params[2].Type != ast.Real {
		t.Error("params wrong")
	}
}

func TestStatements(t *testing.T) {
	p := mustParse(t, `
var g[5]: int;
func main() {
	var i: int = 0;
	var s: int;
	s = 0;
	for i = 0 to 4 by 2 { s = s + g[i]; }
	while s > 0 { s = s - 1; if s == 3 { break; } else { print(s); } }
	g[s] = 7;
	helper(s);
	return;
}
func helper(n: int) {}
`)
	body := p.Funcs[0].Body.Stmts
	if len(body) != 8 {
		t.Fatalf("main has %d statements, want 8", len(body))
	}
	f, ok := body[3].(*ast.For)
	if !ok {
		t.Fatalf("stmt 3 is %T, want For", body[3])
	}
	if f.Step != 2 || f.Var.Name != "i" {
		t.Errorf("for loop: step %d var %q", f.Step, f.Var.Name)
	}
	w, ok := body[4].(*ast.While)
	if !ok {
		t.Fatalf("stmt 4 is %T, want While", body[4])
	}
	inner := w.Body.Stmts[1].(*ast.If)
	if inner.Else == nil {
		t.Error("else lost")
	}
	if _, ok := body[5].(*ast.Assign); !ok {
		t.Errorf("stmt 5 is %T, want array assign", body[5])
	}
	if _, ok := body[6].(*ast.ExprStmt); !ok {
		t.Errorf("stmt 6 is %T, want call stmt", body[6])
	}
}

func TestPrecedence(t *testing.T) {
	p := mustParse(t, `
var r: bool;
var a, b, c, d: int;
func main() { r = a + b * c < d && !r || a == b; }
`)
	assign := p.Funcs[0].Body.Stmts[0].(*ast.Assign)
	// ((a + (b*c) < d) && (!r)) || (a == b)
	or, ok := assign.RHS.(*ast.BinOp)
	if !ok || or.Op != token.OrOr {
		t.Fatalf("top is %v, want ||", assign.RHS)
	}
	and, ok := or.X.(*ast.BinOp)
	if !ok || and.Op != token.AndAnd {
		t.Fatalf("left of || is %T, want &&", or.X)
	}
	lt, ok := and.X.(*ast.BinOp)
	if !ok || lt.Op != token.Lt {
		t.Fatalf("left of && is not <")
	}
	plus, ok := lt.X.(*ast.BinOp)
	if !ok || plus.Op != token.Plus {
		t.Fatal("left of < is not +")
	}
	if mul, ok := plus.Y.(*ast.BinOp); !ok || mul.Op != token.Star {
		t.Fatal("* does not bind tighter than +")
	}
}

func TestUnaryChain(t *testing.T) {
	p := mustParse(t, `
var x: int;
func main() { x = --x; }
`)
	assign := p.Funcs[0].Body.Stmts[0].(*ast.Assign)
	u1, ok := assign.RHS.(*ast.UnOp)
	if !ok || u1.Op != token.Minus {
		t.Fatal("outer negate missing")
	}
	if _, ok := u1.X.(*ast.UnOp); !ok {
		t.Fatal("inner negate missing")
	}
}

func TestCallsAndIndexInExpr(t *testing.T) {
	p := mustParse(t, `
var a[3]: real;
func f(x: real): real { return x; }
func main() { a[0] = f(a[1]) + sqrt(a[2]); }
`)
	assign := p.Funcs[1].Body.Stmts[0].(*ast.Assign)
	add := assign.RHS.(*ast.BinOp)
	if _, ok := add.X.(*ast.Call); !ok {
		t.Error("call not parsed")
	}
	if c, ok := add.Y.(*ast.Call); !ok || c.Name != "sqrt" {
		t.Error("builtin call not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"func main() { x = ; }", "expected expression"},
		{"func main() { if x { }", "unexpected end of file"},
		{"var x int;", "expected :"},
		{"func main() { for i = 0 to 10 by -1 {} }", "expected integer literal"},
		{"func main() { for i = 0 to 10 by 0 {} }", "positive integer"},
		{"func f() { var a[3]: int; }", "file scope"},
		{"var x, y: int = 2;", "single scalar"},
		{"garbage", "expected declaration"},
		{"func main() { 3 = x; }", "expected statement"},
		{"func main() { x; }", "expected assignment or call"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.substr)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("func main() {\n  x = ;\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should carry line 2: %v", err)
	}
}

func TestElseIfChain(t *testing.T) {
	p := mustParse(t, `
var x: int;
func main() {
	if x == 1 { x = 10; } else if x == 2 { x = 20; } else { x = 30; }
}
`)
	s := p.Funcs[0].Body.Stmts[0].(*ast.If)
	elif, ok := s.Else.(*ast.If)
	if !ok {
		t.Fatalf("else-if is %T", s.Else)
	}
	if _, ok := elif.Else.(*ast.Block); !ok {
		t.Fatal("final else missing")
	}
}
