package trace

import (
	"testing"

	"ilp/internal/isa"
)

func TestIndependentInstructions(t *testing.T) {
	// Ten independent li's: both limits see full parallelism (all in one
	// cycle, plus the halt).
	b := isa.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Li(isa.R(10+i), int64(i))
	}
	b.Halt()
	l, err := Analyze(b.MustFinish(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.BlockedCycles != 1 || l.OracleCycles != 1 {
		t.Errorf("independent code: blocked %d, oracle %d, want 1", l.BlockedCycles, l.OracleCycles)
	}
	if p := l.BlockedParallelism(); p != 11 {
		t.Errorf("parallelism = %v, want 11", p)
	}
}

func TestSerialChain(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 1)
	for i := 0; i < 9; i++ {
		b.Imm(isa.OpAddi, isa.R(10), isa.R(10), 1)
	}
	b.Halt()
	l, err := Analyze(b.MustFinish(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.OracleCycles != 10 {
		t.Errorf("chain oracle cycles = %d, want 10", l.OracleCycles)
	}
	if p := l.OracleParallelism(); p > 1.2 {
		t.Errorf("chain parallelism = %v, want ~1", p)
	}
}

// loopProgram builds a counted loop with an independent body: the blocked
// model serializes iterations at the conditional branch; the oracle
// overlaps them completely.
func loopProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Li(isa.R(10), 100) // counter
	b.Label("loop")
	b.Li(isa.R(11), 1) // independent body work
	b.Li(isa.R(12), 2)
	b.Li(isa.R(13), 3)
	b.Imm(isa.OpAddi, isa.R(10), isa.R(10), -1)
	b.Branch(isa.OpBgt, isa.R(10), isa.RZero, "loop")
	b.Halt()
	return b.MustFinish()
}

func TestBranchInhibition(t *testing.T) {
	l, err := Analyze(loopProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bp, op := l.BlockedParallelism(), l.OracleParallelism()
	// The oracle overlaps iterations fully (bounded only by the counter
	// recurrence, ~5 instructions per cycle); the blocked model pays a
	// branch resolution per iteration.
	if !(op > 1.5*bp) {
		t.Errorf("oracle (%v) should far exceed blocked (%v) on branchy code — Riseman-Foster", op, bp)
	}
	// The blocked model still overlaps within an iteration.
	if bp < 1.5 {
		t.Errorf("blocked parallelism %v too low: body instructions are independent", bp)
	}
	// The oracle is limited only by the counter recurrence: ~5 instrs per
	// 1-cycle iteration step.
	if op < 3 {
		t.Errorf("oracle parallelism %v too low", op)
	}
}

func TestMemoryDependence(t *testing.T) {
	// store then load of the same address is serial; different addresses
	// are parallel. Data addresses 0 and 1.
	mk := func(sameAddr bool) *isa.Program {
		b := isa.NewBuilder()
		b.Data(0, 0)
		b.Li(isa.R(10), 7)
		b.Store(isa.OpSw, isa.R(10), isa.RZero, 0)
		off := int64(1)
		if sameAddr {
			off = 0
		}
		b.Load(isa.OpLw, isa.R(11), isa.RZero, off)
		b.Op1(isa.OpMov, isa.R(12), isa.R(11))
		b.Halt()
		return b.MustFinish()
	}
	same, err := Analyze(mk(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Analyze(mk(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(same.OracleCycles > diff.OracleCycles) {
		t.Errorf("same-address store->load should serialize: same %d, diff %d",
			same.OracleCycles, diff.OracleCycles)
	}
}

func TestPerfectRenaming(t *testing.T) {
	// WAW/WAR must not constrain the oracle: two independent computations
	// reusing one register.
	b := isa.NewBuilder()
	b.Li(isa.R(10), 1)
	b.Op1(isa.OpMov, isa.R(11), isa.R(10))
	b.Li(isa.R(10), 2) // reuse r10 (renamed)
	b.Op1(isa.OpMov, isa.R(12), isa.R(10))
	b.Halt()
	l, err := Analyze(b.MustFinish(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both chains are depth 2, independent: 2 cycles total.
	if l.OracleCycles != 2 {
		t.Errorf("renamed chains should take 2 cycles, got %d", l.OracleCycles)
	}
}

func TestTruncation(t *testing.T) {
	l, err := Analyze(loopProgram(), Options{MaxTrace: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Truncated || l.Instructions != 50 {
		t.Errorf("truncation: %+v", l)
	}
}
