// Package trace implements the trace-driven parallelism limits of the
// studies the paper builds on: Tjaden & Flynn [15] (parallelism within the
// reach of unresolved conditional jumps) and Riseman & Foster [14] (the
// inhibition those jumps cause, versus an oracle that predicts them all).
// "Studies dating from the late 1960's and early 1970's and continuing
// today have observed average instruction-level parallelism of around 2
// for code without loop unrolling" (§4.2).
//
// Given a program's dynamic instruction trace, the analysis schedules each
// instruction at the earliest cycle its inputs allow on an idealized
// machine: infinite issue width, unit latencies, perfect register renaming
// (no WAR/WAW constraints), and exact memory disambiguation by address.
// Two limits are computed:
//
//   - Blocked: control dependence respected — no instruction may execute
//     before the preceding (taken or untaken) conditional branch resolves.
//     This is the Riseman-Foster "inhibition" model and lands near the
//     famous ~2.
//
//   - Oracle: perfect branch prediction — control dependence ignored
//     entirely, only true data dependence (register and memory RAW, and
//     memory output order) constrains the schedule. Riseman & Foster found
//     this limit to be an order of magnitude higher.
//
// Comparing these to the paper's compile-time result (a real compiler, a
// real in-order machine) locates the paper between the two classical
// extremes.
package trace

import (
	"fmt"

	"ilp/internal/isa"
	"ilp/internal/machine"
	"ilp/internal/sim"
)

// Limits is the result of a trace analysis.
type Limits struct {
	// Instructions analyzed (the trace may be truncated by MaxTrace).
	Instructions int64
	// BlockedCycles is the schedule length with control dependence.
	BlockedCycles int64
	// OracleCycles is the schedule length with perfect prediction.
	OracleCycles int64
	// Truncated reports whether the trace hit MaxTrace.
	Truncated bool
}

// BlockedParallelism is instructions per cycle under control dependence.
func (l Limits) BlockedParallelism() float64 {
	if l.BlockedCycles == 0 {
		return 0
	}
	return float64(l.Instructions) / float64(l.BlockedCycles)
}

// OracleParallelism is instructions per cycle with perfect prediction.
func (l Limits) OracleParallelism() float64 {
	if l.OracleCycles == 0 {
		return 0
	}
	return float64(l.Instructions) / float64(l.OracleCycles)
}

// Options bounds the analysis.
type Options struct {
	// MaxTrace stops the analysis after this many dynamic instructions
	// (0 = DefaultMaxTrace). Memory use is O(registers + distinct
	// addresses).
	MaxTrace int64
}

// DefaultMaxTrace bounds trace length.
const DefaultMaxTrace = 2_000_000

// Analyze executes the program (on a base machine; timing of the host
// simulation is irrelevant) and computes the two limits from its trace.
func Analyze(p *isa.Program, opts Options) (*Limits, error) {
	maxTrace := opts.MaxTrace
	if maxTrace <= 0 {
		maxTrace = DefaultMaxTrace
	}

	l := &Limits{}
	// Completion time of the latest writer, per register (perfect
	// renaming: a new write creates a new name, so we only track the
	// value consumers read).
	var regReady [isa.NumRegs]int64
	var regReadyOracle [isa.NumRegs]int64
	// Memory: last store completion per address (RAW for loads, output
	// order for stores).
	memB := map[int64]int64{}
	memO := map[int64]int64{}
	// Control dependence frontier (blocked model only).
	var branchDone int64
	// Output (print) order.
	var outB, outO int64

	hook := func(idx int, in *isa.Instr, addr int64) {
		if l.Instructions >= maxTrace {
			l.Truncated = true
			return
		}
		l.Instructions++
		info := in.Op.Info()

		// Earliest start from register RAW.
		var tB, tO int64
		u1, u2 := in.Uses()
		for _, u := range []isa.Reg{u1, u2} {
			if u == isa.NoReg {
				continue
			}
			if regReady[u] > tB {
				tB = regReady[u]
			}
			if regReadyOracle[u] > tO {
				tO = regReadyOracle[u]
			}
		}
		// Memory dependence by exact address.
		if addr >= 0 {
			if info.Load {
				if v := memB[addr]; v > tB {
					tB = v
				}
				if v := memO[addr]; v > tO {
					tO = v
				}
			} else { // store: output order after previous store
				if v := memB[addr]; v > tB {
					tB = v
				}
				if v := memO[addr]; v > tO {
					tO = v
				}
			}
		}
		// Output stream stays ordered.
		if in.Op == isa.OpPrinti || in.Op == isa.OpPrintf {
			if outB > tB {
				tB = outB
			}
			if outO > tO {
				tO = outO
			}
		}
		// Control dependence (blocked model).
		if branchDone > tB {
			tB = branchDone
		}

		cB, cO := tB+1, tO+1 // unit latency
		if d := in.Def(); d != isa.NoReg && d != isa.RZero {
			regReady[d] = cB
			regReadyOracle[d] = cO
		}
		if addr >= 0 && info.Store {
			memB[addr] = cB
			memO[addr] = cO
		}
		if in.Op == isa.OpPrinti || in.Op == isa.OpPrintf {
			outB, outO = cB, cO
		}
		// Riseman-Foster inhibition: only branches whose outcome is not
		// statically known block later instructions — conditional
		// branches and indirect jumps (returns). Direct jumps and calls
		// are statically predictable.
		if info.Cond || in.Op == isa.OpJr {
			branchDone = cB
		}
		if cB > l.BlockedCycles {
			l.BlockedCycles = cB
		}
		if cO > l.OracleCycles {
			l.OracleCycles = cO
		}
	}

	_, err := sim.Run(p, sim.Options{
		Machine: machine.Base(),
		OnTrace: hook,
	})
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return l, nil
}
